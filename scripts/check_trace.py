#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by Session::DumpTrace.

Usage:
    python3 scripts/check_trace.py TRACE.json

Checks, in order:
  1. The file parses as JSON and has a non-empty `traceEvents` list.
  2. Every event is a complete ("ph": "X") event carrying the keys
     Perfetto/chrome://tracing need: name, cat, ph, ts, dur, pid, tid —
     with sane types (ts/dur numeric, dur >= 0).
  3. Span hierarchy is well-formed: every event's args.parent is -1 or
     the id of another event.
  4. At least one span exists in every instrumented layer:
     session, cache, plan, compile, kernel, views — a refactor that
     silently un-instruments a layer fails here.

Exit status: 0 = valid, 1 = validation failure, 2 = bad invocation.
"""

import json
import sys

REQUIRED_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid")
REQUIRED_CATEGORIES = ("session", "cache", "plan", "compile", "kernel",
                       "views")


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    return 1


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(f"{path}: traceEvents missing or empty")

    ids = set()
    for i, event in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in event:
                return fail(f"event {i}: missing key {key!r}: {event}")
        if event["ph"] != "X":
            return fail(f"event {i}: ph is {event['ph']!r}, expected 'X'")
        if not isinstance(event["ts"], (int, float)):
            return fail(f"event {i}: non-numeric ts {event['ts']!r}")
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            return fail(f"event {i}: bad dur {event['dur']!r}")
        args = event.get("args", {})
        if "id" in args:
            ids.add(args["id"])
    for i, event in enumerate(events):
        parent = event.get("args", {}).get("parent", -1)
        if parent != -1 and parent not in ids:
            return fail(f"event {i}: parent {parent} is not a recorded span")

    categories = {event["cat"] for event in events}
    missing = [c for c in REQUIRED_CATEGORIES if c not in categories]
    if missing:
        return fail(f"no spans in layer(s): {', '.join(missing)} "
                    f"(got: {', '.join(sorted(categories))})")

    print(f"check_trace: OK: {len(events)} events, "
          f"layers: {', '.join(sorted(categories))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
