#!/usr/bin/env bash
# CI entry points.
#   ./scripts/ci.sh          tier-1 verify: configure, build, full ctest run
#   ./scripts/ci.sh tsan     ThreadSanitizer build of the concurrency-bearing
#                            targets (exec, session, views, mutation tests)
#   ./scripts/ci.sh asan     AddressSanitizer+UBSan build, full ctest run
#   ./scripts/ci.sh bench    Release-mode bench smoke: builds and runs one
#                            small benchmark so perf binaries can't rot
#   ./scripts/ci.sh docs     Documentation checks: every relative link in
#                            docs/ and README.md resolves, and the README
#                            quickstart snippet still compiles and links
set -euxo pipefail

cd "$(dirname "$0")/.."
mode="${1:-tier1}"

case "$mode" in
  tier1)
    cmake -B build -S .
    cmake --build build -j
    cd build
    ctest --output-on-failure -j
    ;;
  tsan)
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target exec_test session_test views_test \
      mutation_test
    ./build-tsan/tests/exec_test
    ./build-tsan/tests/session_test
    ./build-tsan/tests/views_test
    ./build-tsan/tests/mutation_test
    ;;
  asan)
    cmake -B build-asan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-asan -j
    cd build-asan
    ctest --output-on-failure -j
    ;;
  bench)
    cmake -B build-bench -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DBUILD_TESTING=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-bench -j --target bench_session_cache \
      bench_update_refresh
    ./build-bench/bench/bench_session_cache
    ./build-bench/bench/bench_update_refresh
    ;;
  docs)
    # 1) Relative links in docs/ and README.md must resolve on disk
    #    (http(s)/mailto links and pure #fragments are skipped).
    status=0
    for f in README.md docs/*.md; do
      dir="$(dirname "$f")"
      while IFS= read -r target; do
        target="${target%%#*}"
        [ -z "$target" ] && continue
        case "$target" in
          http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$dir/$target" ]; then
          echo "broken link in $f: $target" >&2
          status=1
        fi
      done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
    done
    [ "$status" -eq 0 ]

    # 2) The README quickstart (first ```cpp block) must compile and link
    #    against the library: extract it, wrap the statements in main(),
    #    and build it for real.
    cmake -B build-docs -S . \
      -DBUILD_TESTING=OFF \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-docs -j --target hadad
    snippet_dir="$(mktemp -d)"
    awk '/^```cpp/{f=1; next} /^```/{if (f) exit} f' README.md \
      > "$snippet_dir/snippet.in"
    [ -s "$snippet_dir/snippet.in" ]
    {
      grep -E '^#include|^using namespace' "$snippet_dir/snippet.in"
      echo 'int main() {'
      grep -vE '^#include|^using namespace' "$snippet_dir/snippet.in"
      echo 'return 0; }'
    } > "$snippet_dir/quickstart.cc"
    g++ -std=c++20 -Isrc "$snippet_dir/quickstart.cc" \
      build-docs/libhadad.a -lpthread -o "$snippet_dir/quickstart"
    rm -rf "$snippet_dir"
    echo "docs checks passed"
    ;;
  *)
    echo "unknown mode: $mode (expected: tier1 | tsan | asan | bench | docs)" >&2
    exit 2
    ;;
esac
