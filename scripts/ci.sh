#!/usr/bin/env bash
# CI entry points.
#   ./scripts/ci.sh          tier-1 verify: configure, build, full ctest run
#                            (vector tier), then the kernel/bit-identity
#                            suites again under HADAD_FORCE_SCALAR=1 so both
#                            dispatch arms stay green on any CI hardware
#   ./scripts/ci.sh tsan     ThreadSanitizer build of the concurrency-bearing
#                            targets (exec, session, views, mutation, MVCC,
#                            obs, server tests); the MVCC snapshot-isolation
#                            stress suite runs at 1000 iterations
#   ./scripts/ci.sh asan     AddressSanitizer+UBSan build, full ctest run,
#                            then the MVCC stress suite again at 500
#                            iterations
#   ./scripts/ci.sh bench    Release-mode bench smoke: builds and runs the
#                            benchmark drivers, then diffs the merged
#                            results against the committed baseline with
#                            scripts/bench_diff.py (speedup regressions
#                            beyond 15% fail)
#   ./scripts/ci.sh trace    Observability validation: builds and runs
#                            examples/trace_demo with tracing on, then
#                            validates the emitted Chrome trace-event JSON
#                            with scripts/check_trace.py (one span per
#                            instrumented layer required)
#   ./scripts/ci.sh docs     Documentation checks: every relative link in
#                            docs/ and README.md resolves, and the README
#                            quickstart snippet still compiles and links
#   ./scripts/ci.sh lint     Static analysis: invariant cross-reference
#                            (always), then — when clang is available —
#                            a -Werror=thread-safety build, the expected-
#                            failure snippet harness, and clang-tidy over
#                            the library sources. Set
#                            HADAD_LINT_REQUIRE_CLANG=1 (CI does) to turn
#                            a missing clang/clang-tidy into a failure
#                            instead of a loud skip.
set -euxo pipefail

cd "$(dirname "$0")/.."
mode="${1:-tier1}"

case "$mode" in
  tier1)
    cmake -B build -S .
    cmake --build build -j
    cd build
    ctest --output-on-failure -j
    # Second dispatch arm: the kernel-bearing suites (SIMD microkernels,
    # exec bit-identity, matrix/engine/session pipelines) must also pass
    # with the vector tier pinned off — same binaries, scalar reference
    # dispatch. Results are bit-identical across tiers by contract, so any
    # divergence here is a real kernel bug, not noise. (-R must precede the
    # bare -j: ctest would otherwise parse -R as -j's level argument and
    # silently drop the filter.)
    HADAD_FORCE_SCALAR=1 ctest --output-on-failure -R \
      'simd_test|exec_test|matrix_test|matrix_edge_test|engine_test|mutation_test|session_test' \
      -j
    # Serving smoke: concurrent clients over one substrate, one
    # deadline-exceeded request, clean pool drain (exits nonzero on any
    # broken contract).
    ./examples/server_demo
    ;;
  tsan)
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target exec_test session_test views_test \
      mutation_test mvcc_test obs_test server_test
    ./build-tsan/tests/exec_test
    ./build-tsan/tests/session_test
    ./build-tsan/tests/views_test
    ./build-tsan/tests/mutation_test
    # The randomized snapshot-isolation stress suite is the tentpole TSan
    # workload: 1000 interleavings of concurrent readers, ticket-serialized
    # writers, and atomic batches over one MVCC workspace.
    HADAD_STRESS_ITERS=1000 ./build-tsan/tests/mvcc_test
    ./build-tsan/tests/obs_test
    ./build-tsan/tests/server_test
    ;;
  asan)
    cmake -B build-asan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-asan -j
    cd build-asan
    ctest --output-on-failure -j
    # Version-chain lifetime torture under ASan: the stress suite re-runs
    # with more iterations than the ctest default so retire/free races and
    # snapshot use-after-free get real soak time.
    HADAD_STRESS_ITERS=500 ./tests/mvcc_test \
      --gtest_filter='MvccStressTest.*:MvccLeakTest.*'
    ;;
  bench)
    cmake -B build-bench -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DBUILD_TESTING=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-bench -j --target bench_session_cache \
      bench_update_refresh bench_server_concurrency bench_simd_kernels
    ./build-bench/bench/bench_session_cache \
      --json=build-bench/bench_session_cache.json
    ./build-bench/bench/bench_update_refresh \
      --json=build-bench/bench_update_refresh.json
    ./build-bench/bench/bench_server_concurrency \
      --json=build-bench/bench_server_concurrency.json
    ./build-bench/bench/bench_simd_kernels \
      --json=build-bench/bench_simd_kernels.json
    # Merge the per-driver documents into the machine-readable summary that
    # perf tooling consumes (the stdout tables above are for humans).
    python3 - <<'PYEOF'
import json

drivers = ["bench_session_cache", "bench_update_refresh",
           "bench_server_concurrency", "bench_simd_kernels"]
merged = {"schema_version": 1, "generated_by": "scripts/ci.sh bench",
          "benchmarks": []}
for name in drivers:
    with open(f"build-bench/{name}.json") as f:
        merged["benchmarks"].append(json.load(f))
for b in merged["benchmarks"]:
    assert b["results"], f"{b['benchmark']} produced no results"
with open("BENCH_results.json", "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote BENCH_results.json "
      f"({sum(len(b['results']) for b in merged['benchmarks'])} workloads)")
PYEOF
    # Gate on the committed baseline: a >15% drop in any workload's
    # within-run speedup (machine-independent, unlike raw seconds) fails.
    python3 scripts/bench_diff.py bench/baseline/BENCH_results.json \
      BENCH_results.json
    ;;
  trace)
    cmake -B build-trace -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DBUILD_TESTING=OFF \
      -DHADAD_BUILD_BENCHMARKS=OFF
    cmake --build build-trace -j --target trace_demo
    ./build-trace/examples/trace_demo build-trace/trace.json
    python3 scripts/check_trace.py build-trace/trace.json
    ;;
  docs)
    # 1) Relative links in docs/ and README.md must resolve on disk
    #    (http(s)/mailto links and pure #fragments are skipped).
    status=0
    for f in README.md docs/*.md; do
      dir="$(dirname "$f")"
      while IFS= read -r target; do
        target="${target%%#*}"
        [ -z "$target" ] && continue
        case "$target" in
          http://*|https://*|mailto:*) continue ;;
        esac
        if [ ! -e "$dir/$target" ]; then
          echo "broken link in $f: $target" >&2
          status=1
        fi
      done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
    done
    [ "$status" -eq 0 ]

    # 2) The README quickstart (first ```cpp block) must compile and link
    #    against the library: extract it, wrap the statements in main(),
    #    and build it for real.
    cmake -B build-docs -S . \
      -DBUILD_TESTING=OFF \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-docs -j --target hadad
    snippet_dir="$(mktemp -d)"
    awk '/^```cpp/{f=1; next} /^```/{if (f) exit} f' README.md \
      > "$snippet_dir/snippet.in"
    [ -s "$snippet_dir/snippet.in" ]
    {
      grep -E '^#include|^using namespace' "$snippet_dir/snippet.in"
      echo 'int main() {'
      grep -vE '^#include|^using namespace' "$snippet_dir/snippet.in"
      echo 'return 0; }'
    } > "$snippet_dir/quickstart.cc"
    g++ -std=c++20 -Isrc "$snippet_dir/quickstart.cc" \
      build-docs/libhadad.a -lpthread -o "$snippet_dir/quickstart"
    rm -rf "$snippet_dir"
    echo "docs checks passed"
    ;;
  lint)
    require_clang="${HADAD_LINT_REQUIRE_CLANG:-0}"

    # 1) Invariant cross-reference: every sync member documented, every
    #    documented member real. Pure python3; runs everywhere.
    python3 scripts/check_invariants.py

    # 2) Thread-safety analysis needs a clang frontend (GCC parses the
    #    attributes away). Prefer an unversioned clang++, fall back to the
    #    newest versioned one on PATH.
    clangxx="$(command -v clang++ || true)"
    if [ -z "$clangxx" ]; then
      for v in 20 19 18 17 16 15 14; do
        if command -v "clang++-$v" >/dev/null 2>&1; then
          clangxx="clang++-$v"
          break
        fi
      done
    fi
    if [ -z "$clangxx" ]; then
      if [ "$require_clang" = "1" ]; then
        echo "lint: clang++ not found but HADAD_LINT_REQUIRE_CLANG=1" >&2
        exit 1
      fi
      echo "lint: SKIPPED thread-safety + clang-tidy (no clang++ on PATH;" \
           "install clang or run the CI lint job)" >&2
      exit 0
    fi

    # Full library build under -Werror=thread-safety. The compile_commands
    # export feeds clang-tidy below.
    cmake -B build-lint -S . \
      -DCMAKE_CXX_COMPILER="$clangxx" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DHADAD_THREAD_SAFETY=ON \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-lint -j

    # 3) Guard the guard: each expected-failure snippet must be REJECTED.
    #    A snippet that compiles cleanly means the annotations got neutered.
    for snippet in tests/lint_expected_fail/*.cc; do
      if "$clangxx" -std=c++20 -Isrc -Wthread-safety -Werror=thread-safety \
          -fsyntax-only "$snippet" 2>/dev/null; then
        echo "lint: $snippet compiled cleanly but must trip" \
             "-Werror=thread-safety — annotations are not being enforced" >&2
        exit 1
      fi
      # Distinguish "rejected for the right reason" from a bit-rotted
      # snippet: without -Werror it must compile, emitting only warnings.
      if ! "$clangxx" -std=c++20 -Isrc -Wthread-safety -fsyntax-only \
          "$snippet" 2>/dev/null; then
        echo "lint: $snippet has a non-thread-safety compile error;" \
             "fix the snippet" >&2
        exit 1
      fi
    done
    echo "lint: expected-failure snippets all rejected as intended"

    # 4) clang-tidy with the curated .clang-tidy over the library sources.
    tidy="$(command -v clang-tidy || true)"
    if [ -z "$tidy" ]; then
      for v in 20 19 18 17 16 15 14; do
        if command -v "clang-tidy-$v" >/dev/null 2>&1; then
          tidy="clang-tidy-$v"
          break
        fi
      done
    fi
    if [ -z "$tidy" ]; then
      if [ "$require_clang" = "1" ]; then
        echo "lint: clang-tidy not found but HADAD_LINT_REQUIRE_CLANG=1" >&2
        exit 1
      fi
      echo "lint: SKIPPED clang-tidy (not on PATH)" >&2
      exit 0
    fi
    "$tidy" -p build-lint --quiet src/*/*.cc
    echo "lint checks passed"
    ;;
  *)
    echo "unknown mode: $mode (expected: tier1 | tsan | asan | bench | trace | docs | lint)" >&2
    exit 2
    ;;
esac
