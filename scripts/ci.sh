#!/usr/bin/env bash
# CI entry points.
#   ./scripts/ci.sh          tier-1 verify: configure, build, full ctest run
#   ./scripts/ci.sh tsan     ThreadSanitizer build of the concurrency-bearing
#                            targets (exec_test, session_test)
set -euxo pipefail

cd "$(dirname "$0")/.."
mode="${1:-tier1}"

case "$mode" in
  tier1)
    cmake -B build -S .
    cmake --build build -j
    cd build
    ctest --output-on-failure -j
    ;;
  tsan)
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target exec_test session_test
    ./build-tsan/tests/exec_test
    ./build-tsan/tests/session_test
    ;;
  *)
    echo "unknown mode: $mode (expected: tier1 | tsan)" >&2
    exit 2
    ;;
esac
