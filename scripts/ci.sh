#!/usr/bin/env bash
# CI entry points.
#   ./scripts/ci.sh          tier-1 verify: configure, build, full ctest run
#   ./scripts/ci.sh tsan     ThreadSanitizer build of the concurrency-bearing
#                            targets (exec, session, views, mutation tests)
#   ./scripts/ci.sh asan     AddressSanitizer+UBSan build, full ctest run
#   ./scripts/ci.sh bench    Release-mode bench smoke: builds and runs one
#                            small benchmark so perf binaries can't rot
set -euxo pipefail

cd "$(dirname "$0")/.."
mode="${1:-tier1}"

case "$mode" in
  tier1)
    cmake -B build -S .
    cmake --build build -j
    cd build
    ctest --output-on-failure -j
    ;;
  tsan)
    cmake -B build-tsan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-tsan -j --target exec_test session_test views_test \
      mutation_test
    ./build-tsan/tests/exec_test
    ./build-tsan/tests/session_test
    ./build-tsan/tests/views_test
    ./build-tsan/tests/mutation_test
    ;;
  asan)
    cmake -B build-asan -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -fno-omit-frame-pointer" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
      -DHADAD_BUILD_BENCHMARKS=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-asan -j
    cd build-asan
    ctest --output-on-failure -j
    ;;
  bench)
    cmake -B build-bench -S . \
      -DCMAKE_BUILD_TYPE=Release \
      -DBUILD_TESTING=OFF \
      -DHADAD_BUILD_EXAMPLES=OFF
    cmake --build build-bench -j --target bench_session_cache \
      bench_update_refresh
    ./build-bench/bench/bench_session_cache
    ./build-bench/bench/bench_update_refresh
    ;;
  *)
    echo "unknown mode: $mode (expected: tier1 | tsan | asan | bench)" >&2
    exit 2
    ;;
esac
