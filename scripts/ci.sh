#!/usr/bin/env bash
# Tier-1 verify: configure (with -Wall -Wextra, set unconditionally by the
# root CMakeLists), build everything, run the test suite.
set -euxo pipefail

cd "$(dirname "$0")/.."
cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j
