#!/usr/bin/env python3
"""Compare two BENCH_results.json documents and gate on regressions.

Usage:
    python3 scripts/bench_diff.py BASELINE CURRENT [--threshold PCT]

Both inputs are the merged document `scripts/ci.sh bench` writes
(schema_version 1: a list of per-driver records, each with a `results`
list of workloads). The comparison joins workloads by
(benchmark, workload) name.

What gates and what doesn't
---------------------------
Raw `seconds` depend on the machine the run happened on — a laptop
baseline vs a CI runner would "regress" by whatever their clock-speed
ratio is. The committed baseline therefore cannot gate on seconds.
`speedup` is a within-run ratio (optimized vs unoptimized on the SAME
machine, same load), so it is machine-independent up to noise — that is
the regression signal:

  * A workload whose baseline speedup S_b drops to S_c with
    S_c < S_b * (1 - threshold/100) is a REGRESSION (exit 1).
  * A workload present in the baseline but missing from the current run
    is a REGRESSION (a silently dropped benchmark must not pass).
  * Workloads without a speedup (null, e.g. cold runs) and workloads new
    in the current run are reported informationally only.
  * Seconds deltas are printed for every workload, never gated on.

Exit status: 0 = no regressions, 1 = at least one, 2 = bad invocation.
"""

import argparse
import json
import sys


def load_workloads(path):
    """Returns {(benchmark, workload): result-dict}."""
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version "
                 f"{doc.get('schema_version')!r} (expected 1)")
    out = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("benchmark", "?")
        for result in bench.get("results", []):
            out[(name, result["workload"])] = result
    if not out:
        sys.exit(f"{path}: no workloads found")
    return out


def fmt_seconds(result):
    seconds = result.get("seconds")
    return f"{seconds * 1e3:9.3f}ms" if seconds is not None else "        -"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_results.json files; exit 1 on speedup "
                    "regressions beyond the threshold.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="allowed speedup drop in percent (default 15)")
    args = parser.parse_args()
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    base = load_workloads(args.baseline)
    curr = load_workloads(args.current)

    regressions = []
    print(f"{'benchmark/workload':48s} {'base':>10s} {'curr':>10s} "
          f"{'speedup':>16s}")
    for key in sorted(base):
        bench, workload = key
        label = f"{bench}/{workload}"
        b = base[key]
        c = curr.get(key)
        if c is None:
            regressions.append(f"{label}: missing from current run")
            print(f"{label:48s} {fmt_seconds(b)} {'MISSING':>10s}")
            continue
        line = f"{label:48s} {fmt_seconds(b)} {fmt_seconds(c)}"
        b_speedup, c_speedup = b.get("speedup"), c.get("speedup")
        if b_speedup is not None and c_speedup is not None:
            line += f" {b_speedup:7.2f}x->{c_speedup:6.2f}x"
            floor = b_speedup * (1.0 - args.threshold / 100.0)
            if c_speedup < floor:
                line += "  REGRESSION"
                regressions.append(
                    f"{label}: speedup {b_speedup:.2f}x -> {c_speedup:.2f}x "
                    f"(> {args.threshold:.0f}% drop)")
        print(line)
    for key in sorted(set(curr) - set(base)):
        print(f"{key[0]}/{key[1]:s} (new workload, not gated)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nno speedup regressions beyond {args.threshold:.0f}% "
          f"({len(base)} baseline workloads checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
