#!/usr/bin/env python3
"""Cross-references synchronization members against docs/ARCHITECTURE.md.

Discovers every `common::Mutex` / `common::SharedMutex` / `common::CondVar`
/ `std::atomic<...>` member declared under src/ and diffs the set against
the "Lock & capability cross-reference" table in docs/ARCHITECTURE.md
(the rows between the `sync-members:begin` / `sync-members:end` markers).

Fails (exit 1) when:
  * a declaration in src/ has no table row        (doc rot: table too old)
  * a table row has no declaration in src/        (doc rot: code moved on)
  * a row's Kind column disagrees with the code   (doc rot: type changed)

The discovery is a line regex, deliberately simple: it matches member-style
declarations (`[mutable] common::Mutex name;` / `std::atomic<T> name{...};`).
Function-local synchronization should use plain `std::mutex` — which this
script ignores — precisely so that everything in the wrapper types is
session-lifetime state worth documenting.

Run from anywhere: paths are resolved relative to the repo root.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "ARCHITECTURE.md"

DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:common::(?P<wrapper>Mutex|SharedMutex|CondVar)"
    r"|std::(?P<atomic>atomic)<[^>]*>)"
    r"\s+(?P<name>\w+)\s*(?:;|\{[^}]*\}\s*;|=)"
)

ROW_RE = re.compile(
    r"^\|\s*`(?P<file>[^`]+)`\s*"
    r"\|\s*`(?P<holder>[^`]+)`\s*"
    r"\|\s*`(?P<member>[^`]+)`\s*"
    r"\|\s*(?P<kind>\w+)\s*"
    r"\|\s*(?P<role>.+?)\s*\|\s*$"
)


def discover():
    """(file, member) -> kind for every sync member declared under src/."""
    found = {}
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(REPO).as_posix()
        for line in path.read_text().splitlines():
            m = DECL_RE.match(line)
            if not m:
                continue
            kind = m.group("wrapper") or "atomic"
            key = (rel, m.group("name"))
            if key in found:
                print(f"error: duplicate sync member name {key[1]} in {rel}; "
                      "rename one so the cross-reference stays unambiguous",
                      file=sys.stderr)
                sys.exit(1)
            found[key] = kind
    return found


def documented():
    """(file, member) -> kind from the ARCHITECTURE.md table."""
    text = DOC.read_text()
    try:
        begin = text.index("<!-- sync-members:begin -->")
        end = text.index("<!-- sync-members:end -->")
    except ValueError:
        print(f"error: sync-members markers missing from {DOC}",
              file=sys.stderr)
        sys.exit(1)
    rows = {}
    for line in text[begin:end].splitlines():
        m = ROW_RE.match(line)
        if not m:
            continue
        key = (m.group("file"), m.group("member"))
        if key in rows:
            print(f"error: duplicate table row for {key}", file=sys.stderr)
            sys.exit(1)
        rows[key] = m.group("kind")
    if not rows:
        print("error: sync-members table parsed to zero rows", file=sys.stderr)
        sys.exit(1)
    return rows


def main():
    code = discover()
    doc = documented()
    status = 0

    for key in sorted(set(code) - set(doc)):
        print(f"undocumented sync member: {key[1]} ({code[key]}) declared in "
              f"{key[0]} — add a row to the Lock & capability cross-reference "
              "table in docs/ARCHITECTURE.md", file=sys.stderr)
        status = 1
    for key in sorted(set(doc) - set(code)):
        print(f"stale table row: {key[1]} in {key[0]} no longer declared — "
              "remove or update the row in docs/ARCHITECTURE.md",
              file=sys.stderr)
        status = 1
    for key in sorted(set(doc) & set(code)):
        if doc[key] != code[key]:
            print(f"kind mismatch for {key[1]} in {key[0]}: table says "
                  f"{doc[key]}, code says {code[key]}", file=sys.stderr)
            status = 1

    if status == 0:
        print(f"check_invariants: {len(code)} sync members, all documented "
              "and in sync")
    return status


if __name__ == "__main__":
    sys.exit(main())
