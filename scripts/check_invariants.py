#!/usr/bin/env python3
"""Cross-references machine-checkable invariants against the docs.

Check 1 — synchronization members vs docs/ARCHITECTURE.md.
Discovers every `common::Mutex` / `common::SharedMutex` / `common::CondVar`
/ `std::atomic<...>` member declared under src/ and diffs the set against
the "Lock & capability cross-reference" table in docs/ARCHITECTURE.md
(the rows between the `sync-members:begin` / `sync-members:end` markers).

Fails (exit 1) when:
  * a declaration in src/ has no table row        (doc rot: table too old)
  * a table row has no declaration in src/        (doc rot: code moved on)
  * a row's Kind column disagrees with the code   (doc rot: type changed)

The discovery is a line regex, deliberately simple: it matches member-style
declarations (`[mutable] common::Mutex name;` / `std::atomic<T> name{...};`).
Function-local synchronization should use plain `std::mutex` — which this
script ignores — precisely so that everything in the wrapper types is
session-lifetime state worth documenting.

Check 2 — metric catalog vs docs/OBSERVABILITY.md.
Discovers every metric registered under src/ (single-line
`AddCounter("name"` / `AddGauge("name"` / `AddHistogram("name"` literal
calls — the registration style src/api/session.cc uses) and two-way-diffs
the set against the catalog table in docs/OBSERVABILITY.md (rows between
the `metrics:begin` / `metrics:end` markers). Fails on an unregistered
documented metric, an undocumented registered one, or a Type column that
disagrees with the registration call.

Run from anywhere: paths are resolved relative to the repo root.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "ARCHITECTURE.md"
OBS_DOC = REPO / "docs" / "OBSERVABILITY.md"

DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:common::(?P<wrapper>Mutex|SharedMutex|CondVar)"
    r"|std::(?P<atomic>atomic)<[^>]*>)"
    r"\s+(?P<name>\w+)\s*(?:;|\{[^}]*\}\s*;|=)"
)

ROW_RE = re.compile(
    r"^\|\s*`(?P<file>[^`]+)`\s*"
    r"\|\s*`(?P<holder>[^`]+)`\s*"
    r"\|\s*`(?P<member>[^`]+)`\s*"
    r"\|\s*(?P<kind>\w+)\s*"
    r"\|\s*(?P<role>.+?)\s*\|\s*$"
)

METRIC_DECL_RE = re.compile(
    r"\bAdd(?P<type>Counter|Gauge|Histogram)\(\s*\"(?P<name>[a-z0-9_]+)\""
)

METRIC_ROW_RE = re.compile(
    r"^\|\s*`(?P<name>[a-z0-9_]+)`\s*"
    r"\|\s*(?P<type>counter|gauge|histogram)\s*"
    r"\|\s*(?P<rest>.+?)\s*\|\s*$"
)


def discover():
    """(file, member) -> kind for every sync member declared under src/."""
    found = {}
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(REPO).as_posix()
        for line in path.read_text().splitlines():
            m = DECL_RE.match(line)
            if not m:
                continue
            kind = m.group("wrapper") or "atomic"
            key = (rel, m.group("name"))
            if key in found:
                print(f"error: duplicate sync member name {key[1]} in {rel}; "
                      "rename one so the cross-reference stays unambiguous",
                      file=sys.stderr)
                sys.exit(1)
            found[key] = kind
    return found


def documented():
    """(file, member) -> kind from the ARCHITECTURE.md table."""
    text = DOC.read_text()
    try:
        begin = text.index("<!-- sync-members:begin -->")
        end = text.index("<!-- sync-members:end -->")
    except ValueError:
        print(f"error: sync-members markers missing from {DOC}",
              file=sys.stderr)
        sys.exit(1)
    rows = {}
    for line in text[begin:end].splitlines():
        m = ROW_RE.match(line)
        if not m:
            continue
        key = (m.group("file"), m.group("member"))
        if key in rows:
            print(f"error: duplicate table row for {key}", file=sys.stderr)
            sys.exit(1)
        rows[key] = m.group("kind")
    if not rows:
        print("error: sync-members table parsed to zero rows", file=sys.stderr)
        sys.exit(1)
    return rows


def discover_metrics():
    """name -> (type, file) for every metric registered under src/.

    Registrations must keep the metric name on the same line as the
    Add{Counter,Gauge,Histogram}( call for the scanner to see them (the
    style src/api/session.cc uses). Tests register scratch metrics too —
    only src/ is scanned.
    """
    found = {}
    for path in sorted((REPO / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(REPO).as_posix()
        if rel.startswith("src/obs/"):
            continue  # The registry implementation itself, not a user.
        for m in METRIC_DECL_RE.finditer(path.read_text()):
            name = m.group("name")
            mtype = m.group("type").lower()
            if name in found and found[name][0] != mtype:
                print(f"error: metric {name} registered as {found[name][0]} "
                      f"in {found[name][1]} but {mtype} in {rel}",
                      file=sys.stderr)
                sys.exit(1)
            found[name] = (mtype, rel)
    return found


def documented_metrics():
    """name -> type from the docs/OBSERVABILITY.md catalog table."""
    try:
        text = OBS_DOC.read_text()
    except OSError as e:
        print(f"error: cannot read metric catalog doc: {e}", file=sys.stderr)
        sys.exit(1)
    try:
        begin = text.index("<!-- metrics:begin -->")
        end = text.index("<!-- metrics:end -->")
    except ValueError:
        print(f"error: metrics markers missing from {OBS_DOC}",
              file=sys.stderr)
        sys.exit(1)
    rows = {}
    for line in text[begin:end].splitlines():
        m = METRIC_ROW_RE.match(line)
        if not m:
            continue
        name = m.group("name")
        if name in rows:
            print(f"error: duplicate catalog row for {name}", file=sys.stderr)
            sys.exit(1)
        rows[name] = m.group("type")
    if not rows:
        print("error: metric catalog table parsed to zero rows",
              file=sys.stderr)
        sys.exit(1)
    return rows


def check_sync_members():
    code = discover()
    doc = documented()
    status = 0

    for key in sorted(set(code) - set(doc)):
        print(f"undocumented sync member: {key[1]} ({code[key]}) declared in "
              f"{key[0]} — add a row to the Lock & capability cross-reference "
              "table in docs/ARCHITECTURE.md", file=sys.stderr)
        status = 1
    for key in sorted(set(doc) - set(code)):
        print(f"stale table row: {key[1]} in {key[0]} no longer declared — "
              "remove or update the row in docs/ARCHITECTURE.md",
              file=sys.stderr)
        status = 1
    for key in sorted(set(doc) & set(code)):
        if doc[key] != code[key]:
            print(f"kind mismatch for {key[1]} in {key[0]}: table says "
                  f"{doc[key]}, code says {code[key]}", file=sys.stderr)
            status = 1

    if status == 0:
        print(f"check_invariants: {len(code)} sync members, all documented "
              "and in sync")
    return status


def check_metric_catalog():
    code = discover_metrics()
    doc = documented_metrics()
    status = 0

    for name in sorted(set(code) - set(doc)):
        print(f"undocumented metric: {name} ({code[name][0]}) registered in "
              f"{code[name][1]} — add a row to the catalog table in "
              "docs/OBSERVABILITY.md", file=sys.stderr)
        status = 1
    for name in sorted(set(doc) - set(code)):
        print(f"stale catalog row: {name} is not registered anywhere under "
              "src/ — remove or update the row in docs/OBSERVABILITY.md",
              file=sys.stderr)
        status = 1
    for name in sorted(set(doc) & set(code)):
        if doc[name] != code[name][0]:
            print(f"type mismatch for metric {name}: catalog says "
                  f"{doc[name]}, code says {code[name][0]}", file=sys.stderr)
            status = 1

    if status == 0:
        print(f"check_invariants: {len(code)} metrics, catalog in sync")
    return status


def main():
    return check_sync_members() | check_metric_catalog()


if __name__ == "__main__":
    sys.exit(main())
