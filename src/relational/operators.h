#ifndef HADAD_RELATIONAL_OPERATORS_H_
#define HADAD_RELATIONAL_OPERATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace hadad::relational {

// ---------------------------------------------------------------------------
// Predicates. Structured (not opaque lambdas) so that hybrid rewrites can
// *push selections* from the LA stage into the RA stage (§2's filter-level
// example) by manipulating predicate trees.
// ---------------------------------------------------------------------------

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

// A boolean condition over a row: either a comparison of a named column with
// a literal, or a conjunction/disjunction of sub-predicates.
class Predicate {
 public:
  static PredicatePtr Compare(std::string column, CompareOp op, Value literal);
  static PredicatePtr And(PredicatePtr lhs, PredicatePtr rhs);
  static PredicatePtr Or(PredicatePtr lhs, PredicatePtr rhs);

  // Evaluates against `row` under `table`'s schema.
  Result<bool> Eval(const Table& table, const Row& row) const;

  std::string ToString() const;

 private:
  enum class Kind { kCompare, kAnd, kOr };
  Kind kind_ = Kind::kCompare;
  std::string column_;
  CompareOp op_ = CompareOp::kEq;
  Value literal_;
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

// ---------------------------------------------------------------------------
// Relational operators (the R_ops set of §3: selection, projection, join).
// ---------------------------------------------------------------------------

// sigma_pred(t).
Result<Table> Select(const Table& t, const PredicatePtr& pred);

// pi_columns(t); columns are kept in the order given.
Result<Table> Project(const Table& t, const std::vector<std::string>& columns);

// Equi-join on t1.key1 = t2.key2 (hash join; build side = t2). Output schema
// is t1's columns followed by t2's columns minus its key (the key appears
// once), with name collisions suffixed by "_r".
Result<Table> HashJoin(const Table& t1, const std::string& key1,
                       const Table& t2, const std::string& key2);

// Grouped aggregation: groups `t` by `key` and aggregates the numeric
// column `value` per group. Output schema: (key, "<agg>_<value>").
enum class AggKind { kSum, kCount, kMin, kMax, kMean };
Result<Table> GroupByAggregate(const Table& t, const std::string& key,
                               const std::string& value, AggKind agg);

// One-hot encodes a string/int categorical column into indicator columns
// named "<col>=<value>" (MIMIC preprocessing, §9.2.2). The original column
// is dropped; indicator columns are appended in first-seen order.
Result<Table> OneHotEncode(const Table& t, const std::string& column);

}  // namespace hadad::relational

#endif  // HADAD_RELATIONAL_OPERATORS_H_
