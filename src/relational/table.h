#ifndef HADAD_RELATIONAL_TABLE_H_
#define HADAD_RELATIONAL_TABLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace hadad::relational {

// A cell value. The paper's hybrid model (§3) draws attribute values from
// typed domains D_i; we support integers, reals and strings.
using Value = std::variant<int64_t, double, std::string>;

enum class ValueType { kInt, kDouble, kString };

ValueType TypeOf(const Value& v);
std::string ValueToString(const Value& v);

// Numeric view of a value (ints widen to double); strings are an error.
Result<double> AsDouble(const Value& v);

struct ColumnSpec {
  std::string name;
  ValueType type;
};

using Row = std::vector<Value>;

// Row-oriented relation with a named, typed schema. The RA substrate the
// hybrid queries' preprocessing stage (Q_RA) runs on.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<ColumnSpec> schema) : schema_(std::move(schema)) {}

  const std::vector<ColumnSpec>& schema() const { return schema_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  int64_t num_cols() const { return static_cast<int64_t>(schema_.size()); }

  // Index of a column by name, or NotFound.
  Result<int64_t> ColumnIndex(const std::string& name) const;

  Status AppendRow(Row row);

  const Row& row(int64_t i) const { return rows_[static_cast<size_t>(i)]; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<ColumnSpec> schema_;
  std::vector<Row> rows_;
};

}  // namespace hadad::relational

#endif  // HADAD_RELATIONAL_TABLE_H_
