#include "relational/casting.h"

namespace hadad::relational {

Result<matrix::Matrix> TableToMatrix(const Table& t,
                                     const std::vector<std::string>& columns) {
  std::vector<int64_t> idx;
  idx.reserve(columns.size());
  for (const std::string& name : columns) {
    HADAD_ASSIGN_OR_RETURN(int64_t i, t.ColumnIndex(name));
    idx.push_back(i);
  }
  matrix::DenseMatrix out(t.num_rows(), static_cast<int64_t>(idx.size()));
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < idx.size(); ++c) {
      HADAD_ASSIGN_OR_RETURN(
          double v, AsDouble(t.row(r)[static_cast<size_t>(idx[c])]));
      out.At(r, static_cast<int64_t>(c)) = v;
    }
  }
  return matrix::Matrix(std::move(out));
}

Result<matrix::Matrix> FactsToSparseMatrix(const Table& t,
                                           const std::string& row_col,
                                           const std::string& col_col,
                                           const std::string& value_col,
                                           int64_t rows, int64_t cols) {
  HADAD_ASSIGN_OR_RETURN(int64_t ri, t.ColumnIndex(row_col));
  HADAD_ASSIGN_OR_RETURN(int64_t ci, t.ColumnIndex(col_col));
  HADAD_ASSIGN_OR_RETURN(int64_t vi, t.ColumnIndex(value_col));
  std::vector<matrix::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(t.num_rows()));
  for (const Row& row : t.rows()) {
    HADAD_ASSIGN_OR_RETURN(double r, AsDouble(row[static_cast<size_t>(ri)]));
    HADAD_ASSIGN_OR_RETURN(double c, AsDouble(row[static_cast<size_t>(ci)]));
    HADAD_ASSIGN_OR_RETURN(double v, AsDouble(row[static_cast<size_t>(vi)]));
    int64_t rr = static_cast<int64_t>(r);
    int64_t cc = static_cast<int64_t>(c);
    if (rr < 0 || rr >= rows || cc < 0 || cc >= cols) {
      return Status::OutOfRange("fact coordinate (" + std::to_string(rr) +
                                "," + std::to_string(cc) +
                                ") outside matrix bounds");
    }
    if (v != 0.0) triplets.push_back({rr, cc, v});
  }
  return matrix::Matrix(
      matrix::SparseMatrix::FromTriplets(rows, cols, std::move(triplets)));
}

Result<Table> MatrixToTable(const matrix::Matrix& m,
                            const std::string& prefix) {
  std::vector<ColumnSpec> schema;
  schema.reserve(static_cast<size_t>(m.cols()));
  for (int64_t j = 0; j < m.cols(); ++j) {
    schema.push_back({prefix + std::to_string(j), ValueType::kDouble});
  }
  Table out(std::move(schema));
  matrix::DenseMatrix d = m.ToDense();
  for (int64_t i = 0; i < d.rows(); ++i) {
    Row row;
    row.reserve(static_cast<size_t>(d.cols()));
    for (int64_t j = 0; j < d.cols(); ++j) row.push_back(d.At(i, j));
    HADAD_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

}  // namespace hadad::relational
