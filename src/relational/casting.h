#ifndef HADAD_RELATIONAL_CASTING_H_
#define HADAD_RELATIONAL_CASTING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "matrix/matrix.h"
#include "relational/table.h"

namespace hadad::relational {

// The implicit conversions of §3: a relation can be cast into a matrix (row
// order becomes positional) and back.

// Casts the named numeric columns of `t` into a dense |t| x |columns| matrix.
Result<matrix::Matrix> TableToMatrix(const Table& t,
                                     const std::vector<std::string>& columns);

// Casts a (row-id, col-id, value) fact table into a sparse rows x cols
// matrix — how the Twitter benchmark builds the tweet-hashtag matrix N.
// Row/col ids must be integers in range.
Result<matrix::Matrix> FactsToSparseMatrix(const Table& t,
                                           const std::string& row_col,
                                           const std::string& col_col,
                                           const std::string& value_col,
                                           int64_t rows, int64_t cols);

// Casts a matrix into a relation with double columns named `prefix0..`.
Result<Table> MatrixToTable(const matrix::Matrix& m,
                            const std::string& prefix = "c");

}  // namespace hadad::relational

#endif  // HADAD_RELATIONAL_CASTING_H_
