#include "relational/operators.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace hadad::relational {

namespace {

// Three-way comparison of two values with numeric widening.
Result<int> CompareValues(const Value& a, const Value& b) {
  if (TypeOf(a) == ValueType::kString || TypeOf(b) == ValueType::kString) {
    if (TypeOf(a) != ValueType::kString || TypeOf(b) != ValueType::kString) {
      return Status::InvalidArgument("cannot compare string with number");
    }
    const std::string& sa = std::get<std::string>(a);
    const std::string& sb = std::get<std::string>(b);
    return sa < sb ? -1 : (sa == sb ? 0 : 1);
  }
  HADAD_ASSIGN_OR_RETURN(double da, AsDouble(a));
  HADAD_ASSIGN_OR_RETURN(double db, AsDouble(b));
  return da < db ? -1 : (da == db ? 0 : 1);
}

std::string OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kContains: return "CONTAINS";
  }
  return "?";
}

// Hash key for join matching: type-tagged string form so 1 (int) and 1.0
// (double) hash-join consistently via numeric widening.
std::string JoinKey(const Value& v) {
  if (TypeOf(v) == ValueType::kString) {
    return "s:" + std::get<std::string>(v);
  }
  return "n:" + std::to_string(AsDouble(v).value());
}

}  // namespace

PredicatePtr Predicate::Compare(std::string column, CompareOp op,
                                Value literal) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kCompare;
  p->column_ = std::move(column);
  p->op_ = op;
  p->literal_ = std::move(literal);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr lhs, PredicatePtr rhs) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kAnd;
  p->lhs_ = std::move(lhs);
  p->rhs_ = std::move(rhs);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr lhs, PredicatePtr rhs) {
  auto p = std::make_shared<Predicate>();
  p->kind_ = Kind::kOr;
  p->lhs_ = std::move(lhs);
  p->rhs_ = std::move(rhs);
  return p;
}

Result<bool> Predicate::Eval(const Table& table, const Row& row) const {
  switch (kind_) {
    case Kind::kAnd: {
      HADAD_ASSIGN_OR_RETURN(bool l, lhs_->Eval(table, row));
      if (!l) return false;
      return rhs_->Eval(table, row);
    }
    case Kind::kOr: {
      HADAD_ASSIGN_OR_RETURN(bool l, lhs_->Eval(table, row));
      if (l) return true;
      return rhs_->Eval(table, row);
    }
    case Kind::kCompare: {
      HADAD_ASSIGN_OR_RETURN(int64_t idx, table.ColumnIndex(column_));
      const Value& cell = row[static_cast<size_t>(idx)];
      if (op_ == CompareOp::kContains) {
        if (TypeOf(cell) != ValueType::kString ||
            TypeOf(literal_) != ValueType::kString) {
          return Status::InvalidArgument("CONTAINS requires strings");
        }
        return std::get<std::string>(cell).find(
                   std::get<std::string>(literal_)) != std::string::npos;
      }
      HADAD_ASSIGN_OR_RETURN(int cmp, CompareValues(cell, literal_));
      switch (op_) {
        case CompareOp::kEq: return cmp == 0;
        case CompareOp::kNe: return cmp != 0;
        case CompareOp::kLt: return cmp < 0;
        case CompareOp::kLe: return cmp <= 0;
        case CompareOp::kGt: return cmp > 0;
        case CompareOp::kGe: return cmp >= 0;
        case CompareOp::kContains: break;  // Handled above.
      }
      return Status::Internal("unreachable");
    }
  }
  return Status::Internal("unreachable");
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kCompare:
      return column_ + " " + OpName(op_) + " " + ValueToString(literal_);
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
  }
  return "?";
}

Result<Table> Select(const Table& t, const PredicatePtr& pred) {
  Table out(t.schema());
  for (const Row& row : t.rows()) {
    HADAD_ASSIGN_OR_RETURN(bool keep, pred->Eval(t, row));
    if (keep) HADAD_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> Project(const Table& t, const std::vector<std::string>& columns) {
  std::vector<ColumnSpec> schema;
  std::vector<int64_t> idx;
  schema.reserve(columns.size());
  idx.reserve(columns.size());
  for (const std::string& name : columns) {
    HADAD_ASSIGN_OR_RETURN(int64_t i, t.ColumnIndex(name));
    schema.push_back(t.schema()[static_cast<size_t>(i)]);
    idx.push_back(i);
  }
  Table out(std::move(schema));
  for (const Row& row : t.rows()) {
    Row projected;
    projected.reserve(idx.size());
    for (int64_t i : idx) projected.push_back(row[static_cast<size_t>(i)]);
    HADAD_RETURN_IF_ERROR(out.AppendRow(std::move(projected)));
  }
  return out;
}

Result<Table> HashJoin(const Table& t1, const std::string& key1,
                       const Table& t2, const std::string& key2) {
  HADAD_ASSIGN_OR_RETURN(int64_t k1, t1.ColumnIndex(key1));
  HADAD_ASSIGN_OR_RETURN(int64_t k2, t2.ColumnIndex(key2));

  // Output schema: all of t1, then t2 minus its key column.
  std::vector<ColumnSpec> schema = t1.schema();
  std::vector<int64_t> right_cols;
  for (int64_t j = 0; j < t2.num_cols(); ++j) {
    if (j == k2) continue;
    ColumnSpec spec = t2.schema()[static_cast<size_t>(j)];
    for (const ColumnSpec& existing : t1.schema()) {
      if (existing.name == spec.name) {
        spec.name += "_r";
        break;
      }
    }
    schema.push_back(spec);
    right_cols.push_back(j);
  }
  Table out(std::move(schema));

  // Build on t2.
  std::unordered_map<std::string, std::vector<int64_t>> build;
  for (int64_t i = 0; i < t2.num_rows(); ++i) {
    build[JoinKey(t2.row(i)[static_cast<size_t>(k2)])].push_back(i);
  }
  // Probe with t1.
  for (int64_t i = 0; i < t1.num_rows(); ++i) {
    auto it = build.find(JoinKey(t1.row(i)[static_cast<size_t>(k1)]));
    if (it == build.end()) continue;
    for (int64_t j : it->second) {
      Row row = t1.row(i);
      for (int64_t c : right_cols) {
        row.push_back(t2.row(j)[static_cast<size_t>(c)]);
      }
      HADAD_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
    }
  }
  return out;
}

namespace {

const char* AggName(AggKind agg) {
  switch (agg) {
    case AggKind::kSum: return "sum";
    case AggKind::kCount: return "count";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kMean: return "mean";
  }
  return "?";
}

}  // namespace

Result<Table> GroupByAggregate(const Table& t, const std::string& key,
                               const std::string& value, AggKind agg) {
  HADAD_ASSIGN_OR_RETURN(int64_t ki, t.ColumnIndex(key));
  HADAD_ASSIGN_OR_RETURN(int64_t vi, t.ColumnIndex(value));
  struct Acc {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    int64_t count = 0;
    Value key_value;
  };
  // Group in first-seen order for deterministic output.
  std::unordered_map<std::string, size_t> position;
  std::vector<Acc> groups;
  for (const Row& row : t.rows()) {
    HADAD_ASSIGN_OR_RETURN(double v,
                           AsDouble(row[static_cast<size_t>(vi)]));
    const Value& kv = row[static_cast<size_t>(ki)];
    std::string gk = ValueToString(kv);
    auto [it, inserted] = position.emplace(gk, groups.size());
    if (inserted) {
      groups.push_back(Acc{v, v, v, 1, kv});
    } else {
      Acc& acc = groups[it->second];
      acc.sum += v;
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
      ++acc.count;
    }
  }
  Table out({t.schema()[static_cast<size_t>(ki)],
             {std::string(AggName(agg)) + "_" + value, ValueType::kDouble}});
  for (const Acc& acc : groups) {
    double result = 0.0;
    switch (agg) {
      case AggKind::kSum: result = acc.sum; break;
      case AggKind::kCount: result = static_cast<double>(acc.count); break;
      case AggKind::kMin: result = acc.min; break;
      case AggKind::kMax: result = acc.max; break;
      case AggKind::kMean:
        result = acc.sum / static_cast<double>(acc.count);
        break;
    }
    HADAD_RETURN_IF_ERROR(out.AppendRow({acc.key_value, result}));
  }
  return out;
}

Result<Table> OneHotEncode(const Table& t, const std::string& column) {
  HADAD_ASSIGN_OR_RETURN(int64_t idx, t.ColumnIndex(column));
  // Collect distinct values in first-seen order.
  std::vector<std::string> categories;
  std::unordered_map<std::string, int64_t> position;
  for (const Row& row : t.rows()) {
    std::string key = ValueToString(row[static_cast<size_t>(idx)]);
    if (position.emplace(key, static_cast<int64_t>(categories.size())).second) {
      categories.push_back(key);
    }
  }
  std::vector<ColumnSpec> schema;
  for (int64_t j = 0; j < t.num_cols(); ++j) {
    if (j != idx) schema.push_back(t.schema()[static_cast<size_t>(j)]);
  }
  for (const std::string& cat : categories) {
    schema.push_back({column + "=" + cat, ValueType::kDouble});
  }
  Table out(std::move(schema));
  for (const Row& row : t.rows()) {
    Row encoded;
    encoded.reserve(static_cast<size_t>(t.num_cols()) + categories.size() - 1);
    for (int64_t j = 0; j < t.num_cols(); ++j) {
      if (j != idx) encoded.push_back(row[static_cast<size_t>(j)]);
    }
    std::string key = ValueToString(row[static_cast<size_t>(idx)]);
    for (size_t c = 0; c < categories.size(); ++c) {
      encoded.push_back(
          position[key] == static_cast<int64_t>(c) ? 1.0 : 0.0);
    }
    HADAD_RETURN_IF_ERROR(out.AppendRow(std::move(encoded)));
  }
  return out;
}

}  // namespace hadad::relational
