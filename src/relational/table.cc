#include "relational/table.h"

namespace hadad::relational {

ValueType TypeOf(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) return ValueType::kInt;
  if (std::holds_alternative<double>(v)) return ValueType::kDouble;
  return ValueType::kString;
}

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble:
      return std::to_string(std::get<double>(v));
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "";
}

Result<double> AsDouble(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(v));
    case ValueType::kDouble:
      return std::get<double>(v);
    case ValueType::kString:
      return Status::InvalidArgument("string value is not numeric: " +
                                     std::get<std::string>(v));
  }
  return Status::Internal("unreachable");
}

Result<int64_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int64_t>(i);
  }
  return Status::NotFound("no column named '" + name + "'");
}

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (TypeOf(row[i]) != schema_[i].type) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     schema_[i].name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace hadad::relational
