#include "cost/estimator.h"

#include <algorithm>
#include <cmath>

#include "la/vrem.h"

namespace hadad::cost {

namespace {

namespace vrem = la::vrem;

bool Is(const std::string& op, const char* name) { return op == name; }

la::MatrixMeta ShapeOf(int64_t rows, int64_t cols) {
  la::MatrixMeta m;
  m.rows = rows;
  m.cols = cols;
  return m;
}

double Cells(const la::MatrixMeta& m) { return m.Cells(); }

}  // namespace

MncHistogram MncHistogram::FromMatrix(const matrix::Matrix& m) {
  MncHistogram h;
  matrix::SparseMatrix s = m.ToSparse();
  auto rows = s.RowNnzCounts();
  auto cols = s.ColNnzCounts();
  h.row_nnz.assign(rows.begin(), rows.end());
  h.col_nnz.assign(cols.begin(), cols.end());
  return h;
}

std::optional<la::MatrixMeta> PropagateShape(
    const std::string& op, const std::vector<la::MatrixMeta>& in,
    int output_index) {
  using la::MatrixMeta;
  if (Is(op, vrem::kTr) || Is(op, vrem::kRev)) {
    if (in.size() != 1) return std::nullopt;
    MatrixMeta out = ShapeOf(in[0].rows, in[0].cols);
    if (Is(op, vrem::kTr)) std::swap(out.rows, out.cols);
    return out;
  }
  if (Is(op, vrem::kInvM) || Is(op, vrem::kExp) || Is(op, vrem::kAdj)) {
    if (in.size() != 1 || in[0].rows != in[0].cols) return std::nullopt;
    return ShapeOf(in[0].rows, in[0].cols);
  }
  if (Is(op, vrem::kCho) || Is(op, vrem::kQr) || Is(op, vrem::kLu) ||
      Is(op, vrem::kLup)) {
    if (in.size() != 1 || in[0].rows != in[0].cols) return std::nullopt;
    MatrixMeta out = ShapeOf(in[0].rows, in[0].cols);
    if (Is(op, vrem::kCho)) {
      out.lower_triangular = true;
    } else if (Is(op, vrem::kQr)) {
      if (output_index == 0) {
        out.orthogonal = true;
      } else {
        out.upper_triangular = true;
      }
    } else if (Is(op, vrem::kLup) && output_index == 2) {
      out.permutation = true;
      out.orthogonal = true;
    } else {
      if (output_index == 0) {
        out.lower_triangular = true;
      } else {
        out.upper_triangular = true;
      }
    }
    return out;
  }
  if (Is(op, vrem::kDet) || Is(op, vrem::kTrace) || Is(op, vrem::kSum) ||
      Is(op, vrem::kMin) || Is(op, vrem::kMax) || Is(op, vrem::kMean) ||
      Is(op, vrem::kVar)) {
    if (in.size() != 1) return std::nullopt;
    return ShapeOf(1, 1);
  }
  if (Is(op, vrem::kDiag)) {
    if (in.size() != 1) return std::nullopt;
    if (in[0].cols == 1 && in[0].rows > 1) {
      return ShapeOf(in[0].rows, in[0].rows);
    }
    if (in[0].rows != in[0].cols) return std::nullopt;
    return ShapeOf(in[0].rows, 1);
  }
  if (Is(op, vrem::kRowSums) || Is(op, vrem::kRowMin) ||
      Is(op, vrem::kRowMax) || Is(op, vrem::kRowMean) ||
      Is(op, vrem::kRowVar)) {
    if (in.size() != 1) return std::nullopt;
    return ShapeOf(in[0].rows, 1);
  }
  if (Is(op, vrem::kColSums) || Is(op, vrem::kColMin) ||
      Is(op, vrem::kColMax) || Is(op, vrem::kColMean) ||
      Is(op, vrem::kColVar)) {
    if (in.size() != 1) return std::nullopt;
    return ShapeOf(1, in[0].cols);
  }
  if (Is(op, vrem::kMultiM)) {
    if (in.size() != 2 || in[0].cols != in[1].rows) return std::nullopt;
    return ShapeOf(in[0].rows, in[1].cols);
  }
  if (Is(op, vrem::kMultiMS)) {
    // multiMS(s, M, R): first input is the scalar.
    if (in.size() != 2) return std::nullopt;
    return ShapeOf(in[1].rows, in[1].cols);
  }
  if (Is(op, vrem::kDivMS)) {
    if (in.size() != 2) return std::nullopt;
    return ShapeOf(in[0].rows, in[0].cols);
  }
  if (Is(op, vrem::kAddM) || Is(op, vrem::kMultiE) || Is(op, vrem::kDivM)) {
    if (in.size() != 2 || in[0].rows != in[1].rows ||
        in[0].cols != in[1].cols) {
      return std::nullopt;
    }
    return ShapeOf(in[0].rows, in[0].cols);
  }
  if (Is(op, vrem::kSumD)) {
    if (in.size() != 2) return std::nullopt;
    return ShapeOf(in[0].rows + in[1].rows, in[0].cols + in[1].cols);
  }
  if (Is(op, vrem::kProductD)) {
    if (in.size() != 2) return std::nullopt;
    return ShapeOf(in[0].rows * in[1].rows, in[0].cols * in[1].cols);
  }
  if (Is(op, vrem::kCbind)) {
    if (in.size() != 2 || in[0].rows != in[1].rows) return std::nullopt;
    return ShapeOf(in[0].rows, in[0].cols + in[1].cols);
  }
  if (Is(op, vrem::kMultiS) || Is(op, vrem::kAddS) || Is(op, vrem::kDivS)) {
    if (in.size() != 2) return std::nullopt;
    return ShapeOf(1, 1);
  }
  if (Is(op, vrem::kInvS)) {
    if (in.size() != 1) return std::nullopt;
    return ShapeOf(1, 1);
  }
  return std::nullopt;  // Not an operation relation (name/size/type/...).
}

// ---------------------------------------------------------------------------
// Naive worst-case estimator.
// ---------------------------------------------------------------------------

ClassMeta NaiveMetadataEstimator::MakeBase(const la::MatrixMeta& meta,
                                           const matrix::Matrix* data) const {
  ClassMeta out;
  out.shape = meta;
  if (data != nullptr) out.shape.nnz = static_cast<double>(data->Nnz());
  return out;
}

std::optional<ClassMeta> NaiveMetadataEstimator::Propagate(
    const std::string& op, const std::vector<ClassMeta>& inputs,
    int output_index) const {
  std::vector<la::MatrixMeta> shapes;
  shapes.reserve(inputs.size());
  for (const ClassMeta& c : inputs) shapes.push_back(c.shape);
  auto shape = PropagateShape(op, shapes, output_index);
  if (!shape.has_value()) return std::nullopt;
  ClassMeta out;
  out.shape = *shape;
  const double cells = Cells(out.shape);
  double nnz = cells;  // Default: worst case dense.
  if (Is(op, vrem::kTr) || Is(op, vrem::kRev)) {
    nnz = inputs[0].shape.NnzOrDense();
  } else if (Is(op, vrem::kMultiM)) {
    // Worst case for a product [22]: every non-zero of A can meet every
    // column of B and vice versa.
    const double a = inputs[0].shape.NnzOrDense();
    const double b = inputs[1].shape.NnzOrDense();
    nnz = std::min({cells, a * static_cast<double>(inputs[1].shape.cols),
                    b * static_cast<double>(inputs[0].shape.rows)});
  } else if (Is(op, vrem::kAddM)) {
    nnz = std::min(cells, inputs[0].shape.NnzOrDense() +
                              inputs[1].shape.NnzOrDense());
  } else if (Is(op, vrem::kMultiE)) {
    nnz = std::min(inputs[0].shape.NnzOrDense(),
                   inputs[1].shape.NnzOrDense());
  } else if (Is(op, vrem::kDivM) || Is(op, vrem::kDivMS)) {
    nnz = inputs[0].shape.NnzOrDense();
  } else if (Is(op, vrem::kMultiMS)) {
    nnz = inputs[1].shape.NnzOrDense();
  } else if (Is(op, vrem::kRowSums) || Is(op, vrem::kColSums) ||
             Is(op, vrem::kRowMin) || Is(op, vrem::kRowMax) ||
             Is(op, vrem::kRowMean) || Is(op, vrem::kRowVar) ||
             Is(op, vrem::kColMin) || Is(op, vrem::kColMax) ||
             Is(op, vrem::kColMean) || Is(op, vrem::kColVar)) {
    nnz = std::min(cells, inputs[0].shape.NnzOrDense());
  } else if (Is(op, vrem::kDiag)) {
    nnz = std::min(cells, inputs[0].shape.NnzOrDense());
  } else if (Is(op, vrem::kSumD)) {
    nnz = inputs[0].shape.NnzOrDense() + inputs[1].shape.NnzOrDense();
  } else if (Is(op, vrem::kProductD)) {
    nnz = inputs[0].shape.NnzOrDense() * inputs[1].shape.NnzOrDense();
  } else if (Is(op, vrem::kCbind)) {
    nnz = inputs[0].shape.NnzOrDense() + inputs[1].shape.NnzOrDense();
  } else if (Is(op, vrem::kCho) || Is(op, vrem::kLu) || Is(op, vrem::kQr) ||
             Is(op, vrem::kLup)) {
    // Triangular factors are at most half dense; permutations have one
    // non-zero per row; Q is dense.
    const double n = static_cast<double>(out.shape.rows);
    if (out.shape.permutation) {
      nnz = n;
    } else if (out.shape.lower_triangular || out.shape.upper_triangular) {
      nnz = n * (n + 1) / 2;
    } else {
      nnz = cells;
    }
  }
  out.shape.nnz = std::min(nnz, cells);
  return out;
}

// ---------------------------------------------------------------------------
// MNC estimator.
// ---------------------------------------------------------------------------

ClassMeta MncEstimator::MakeBase(const la::MatrixMeta& meta,
                                 const matrix::Matrix* data) const {
  ClassMeta out;
  out.shape = meta;
  if (data != nullptr) {
    out.shape.nnz = static_cast<double>(data->Nnz());
    out.mnc = std::make_shared<MncHistogram>(MncHistogram::FromMatrix(*data));
  }
  return out;
}

namespace {

// Uniform histogram for inputs that lack one (e.g. derived dense results).
MncHistogram UniformHistogram(const la::MatrixMeta& shape) {
  MncHistogram h;
  const double per_row =
      shape.rows == 0 ? 0.0 : shape.NnzOrDense() / shape.rows;
  const double per_col =
      shape.cols == 0 ? 0.0 : shape.NnzOrDense() / shape.cols;
  h.row_nnz.assign(static_cast<size_t>(shape.rows), per_row);
  h.col_nnz.assign(static_cast<size_t>(shape.cols), per_col);
  return h;
}

double Total(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace

std::optional<ClassMeta> MncEstimator::Propagate(
    const std::string& op, const std::vector<ClassMeta>& inputs,
    int output_index) const {
  // Start from the worst-case result, then refine with histograms where the
  // structure helps (product, element-wise ops, partial aggregates).
  NaiveMetadataEstimator naive;
  auto base = naive.Propagate(op, inputs, output_index);
  if (!base.has_value()) return std::nullopt;
  ClassMeta out = *base;

  auto hist_of = [](const ClassMeta& c) -> MncHistogram {
    if (c.mnc != nullptr) return *c.mnc;
    return UniformHistogram(c.shape);
  };

  if (Is(op, vrem::kMultiM)) {
    const MncHistogram ha = hist_of(inputs[0]);
    const MncHistogram hb = hist_of(inputs[1]);
    // Expected non-zeros via the product-moment bound: each pairing of a
    // non-zero in A's column k with a non-zero in B's row k contributes at
    // most one output non-zero.
    double products = 0.0;
    const size_t k = std::min(ha.col_nnz.size(), hb.row_nnz.size());
    for (size_t i = 0; i < k; ++i) products += ha.col_nnz[i] * hb.row_nnz[i];
    MncHistogram h;
    const double avg_row_b =
        inputs[1].shape.rows == 0
            ? 0.0
            : inputs[1].shape.NnzOrDense() / inputs[1].shape.rows;
    const double avg_col_a =
        inputs[0].shape.cols == 0
            ? 0.0
            : inputs[0].shape.NnzOrDense() / inputs[0].shape.cols;
    h.row_nnz.reserve(ha.row_nnz.size());
    for (double r : ha.row_nnz) {
      h.row_nnz.push_back(
          std::min(static_cast<double>(out.shape.cols), r * avg_row_b));
    }
    h.col_nnz.reserve(hb.col_nnz.size());
    for (double c : hb.col_nnz) {
      h.col_nnz.push_back(
          std::min(static_cast<double>(out.shape.rows), c * avg_col_a));
    }
    const double est =
        std::min({products, Total(h.row_nnz), out.shape.NnzOrDense()});
    out.shape.nnz = std::max(0.0, est);
    out.mnc = std::make_shared<MncHistogram>(std::move(h));
    return out;
  }
  if (Is(op, vrem::kAddM)) {
    const MncHistogram ha = hist_of(inputs[0]);
    const MncHistogram hb = hist_of(inputs[1]);
    MncHistogram h;
    h.row_nnz.resize(ha.row_nnz.size());
    for (size_t i = 0; i < h.row_nnz.size(); ++i) {
      h.row_nnz[i] = std::min(static_cast<double>(out.shape.cols),
                              ha.row_nnz[i] + hb.row_nnz[i]);
    }
    h.col_nnz.resize(ha.col_nnz.size());
    for (size_t i = 0; i < h.col_nnz.size(); ++i) {
      h.col_nnz[i] = std::min(static_cast<double>(out.shape.rows),
                              ha.col_nnz[i] + hb.col_nnz[i]);
    }
    out.shape.nnz = std::min(Total(h.row_nnz), out.shape.NnzOrDense());
    out.mnc = std::make_shared<MncHistogram>(std::move(h));
    return out;
  }
  if (Is(op, vrem::kMultiE)) {
    const MncHistogram ha = hist_of(inputs[0]);
    const MncHistogram hb = hist_of(inputs[1]);
    MncHistogram h;
    h.row_nnz.resize(ha.row_nnz.size());
    for (size_t i = 0; i < h.row_nnz.size(); ++i) {
      h.row_nnz[i] = std::min(ha.row_nnz[i], hb.row_nnz[i]);
    }
    h.col_nnz.resize(ha.col_nnz.size());
    for (size_t i = 0; i < h.col_nnz.size(); ++i) {
      h.col_nnz[i] = std::min(ha.col_nnz[i], hb.col_nnz[i]);
    }
    out.shape.nnz = Total(h.row_nnz);
    out.mnc = std::make_shared<MncHistogram>(std::move(h));
    return out;
  }
  if (Is(op, vrem::kTr)) {
    if (inputs[0].mnc != nullptr) {
      MncHistogram h;
      h.row_nnz = inputs[0].mnc->col_nnz;
      h.col_nnz = inputs[0].mnc->row_nnz;
      out.mnc = std::make_shared<MncHistogram>(std::move(h));
    }
    return out;
  }
  if (Is(op, vrem::kRowSums)) {
    // A row sums to non-zero iff the row has any non-zero (cancellation
    // ignored, as in MNC).
    const MncHistogram ha = hist_of(inputs[0]);
    double nz_rows = 0.0;
    for (double r : ha.row_nnz) nz_rows += std::min(1.0, r);
    out.shape.nnz = nz_rows;
    return out;
  }
  if (Is(op, vrem::kColSums)) {
    const MncHistogram ha = hist_of(inputs[0]);
    double nz_cols = 0.0;
    for (double c : ha.col_nnz) nz_cols += std::min(1.0, c);
    out.shape.nnz = nz_cols;
    return out;
  }
  return out;
}

}  // namespace hadad::cost
