#ifndef HADAD_COST_COST_MODEL_H_
#define HADAD_COST_COST_MODEL_H_

#include <map>
#include <string>

#include "common/status.h"
#include "cost/estimator.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::cost {

// Actual matrix data by name; optional, used by the MNC estimator to build
// exact base histograms (the paper computes these offline, §7.2.2).
using DataCatalog = std::map<std::string, matrix::Matrix>;

struct ExprEstimate {
  // γ(E), §7.1: the sum of estimated intermediate-result sizes (in
  // non-zeros) when E is evaluated exactly as stated. Leaf scans and the
  // root's own output are free.
  double cost = 0.0;
  // Estimated metadata of E's output.
  ClassMeta output;
};

// Estimates `expr` under `estimator`. Fails on shape errors or unknown
// matrix names.
Result<ExprEstimate> EstimateExpression(const la::Expr& expr,
                                        const la::MetaCatalog& catalog,
                                        const SparsityEstimator& estimator,
                                        const DataCatalog* data = nullptr);

// The VREM relation that encodes `e`'s top operator given its children's
// scalar-ness, plus the input order convention. Shared by the encoder-side
// cost model and the decoder. `swap_args` is set when the relation expects
// the scalar first but the expression has it second (multiMS).
struct OpRelation {
  std::string relation;
  int output_index = 0;  // For qr/lu factor selection.
  bool swap_args = false;
};
Result<OpRelation> RelationFor(const la::Expr& e, bool lhs_scalar,
                               bool rhs_scalar);

}  // namespace hadad::cost

#endif  // HADAD_COST_COST_MODEL_H_
