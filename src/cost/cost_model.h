#ifndef HADAD_COST_COST_MODEL_H_
#define HADAD_COST_COST_MODEL_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "cost/estimator.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::cost {

// Actual matrix data by name; optional, used by the MNC estimator to build
// exact base histograms (the paper computes these offline, §7.2.2). Values
// are shared immutable versions: engine::Workspace multi-versions its
// entries, and this catalog mirrors each name's current version.
using DataCatalog =
    std::map<std::string, std::shared_ptr<const matrix::Matrix>>;

struct ExprEstimate {
  // γ(E), §7.1: the sum of estimated intermediate-result sizes (in
  // non-zeros) when E is evaluated exactly as stated. Leaf scans and the
  // root's own output are free.
  double cost = 0.0;
  // Estimated metadata of E's output.
  ClassMeta output;
};

// Estimates `expr` under `estimator`. Fails on shape errors or unknown
// matrix names.
Result<ExprEstimate> EstimateExpression(const la::Expr& expr,
                                        const la::MetaCatalog& catalog,
                                        const SparsityEstimator& estimator,
                                        const DataCatalog* data = nullptr);

// The VREM relation that encodes `e`'s top operator given its children's
// scalar-ness, plus the input order convention. Shared by the encoder-side
// cost model and the decoder. `swap_args` is set when the relation expects
// the scalar first but the expression has it second (multiMS).
struct OpRelation {
  std::string relation;
  int output_index = 0;  // For qr/lu factor selection.
  bool swap_args = false;
};
Result<OpRelation> RelationFor(const la::Expr& e, bool lhs_scalar,
                               bool rhs_scalar);

// ---------------------------------------------------------------------------
// Shape/nnz gates shared by the exec plan compiler (kernel selection, the
// operator-fusion pass, and aggregation pushdown). Centralized here so the
// compiler and the cost model agree on what "dense" and "heavy" mean.
// ---------------------------------------------------------------------------

// Estimated density at or above `dense_threshold` — the operand should be
// treated as dense when choosing between blocked-dense and sparse kernels.
// Unknown nnz counts as fully dense.
bool TreatAsDense(const ClassMeta& m, double dense_threshold);

// Output is large enough (>= `cell_threshold` estimated cells) to justify a
// partitioned/blocked kernel over the sequential generic one.
bool HeavyEnoughForParallel(const ClassMeta& out, int64_t cell_threshold);

// Default `cell_threshold` for the gate above (CompileOptions /
// ExecOptions::parallel_cell_threshold), tuned to the active SIMD kernel
// tier: the blocked kernels dispatch to vector microkernels while the
// generic path stays scalar, so on a vector tier the blocked path wins at
// ~4x smaller outputs and the gate drops accordingly. Callers that pin an
// explicit threshold are unaffected.
int64_t DefaultParallelCellThreshold();

// True when sum/rowSums/colSums over the product `a` x `b` should compile
// to a reducing GEMM kernel that never materializes the product: both
// operands estimated dense, neither a scalar, shapes conformable, and the
// product heavy enough that the saved materialization matters. Mirrors the
// conditions under which the product itself would pick the blocked dense
// GEMM, so pushdown never changes which multiply kernel semantics apply.
bool ReducingGemmProfitable(const ClassMeta& a, const ClassMeta& b,
                            const ClassMeta& product, double dense_threshold,
                            int64_t cell_threshold);

}  // namespace hadad::cost

#endif  // HADAD_COST_COST_MODEL_H_
