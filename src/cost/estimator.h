#ifndef HADAD_COST_ESTIMATOR_H_
#define HADAD_COST_ESTIMATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::cost {

// MNC sketch (Sommer et al. [46], §7.2.2): per-row and per-column non-zero
// counts. Base-matrix histograms are computed offline from the data;
// intermediate histograms are derived online during cost estimation — the
// overhead the paper measures in §9.1.3.
struct MncHistogram {
  std::vector<double> row_nnz;
  std::vector<double> col_nnz;

  static MncHistogram FromMatrix(const matrix::Matrix& m);
};

// Metadata tracked per VREM equivalence class: shape, estimated non-zero
// count (la::MatrixMeta::nnz) and, under the MNC estimator, histograms.
struct ClassMeta {
  la::MatrixMeta shape;
  std::shared_ptr<const MncHistogram> mnc;

  // The intermediate-size measure of §7.1: estimated non-zeros, never below
  // 1 (scalars count as 1).
  double SizeEstimate() const {
    double s = shape.NnzOrDense();
    return s < 1.0 ? 1.0 : s;
  }
};

// Estimates output sparsity of VREM operations from input metadata.
// Implementations: the naive worst-case metadata estimator (§7.2.1) and the
// structure-exploiting MNC estimator (§7.2.2).
class SparsityEstimator {
 public:
  virtual ~SparsityEstimator() = default;

  virtual std::string name() const = 0;

  // Metadata for a base matrix. `data` (optional) lets MNC build exact
  // base histograms; the naive estimator ignores it.
  virtual ClassMeta MakeBase(const la::MatrixMeta& meta,
                             const matrix::Matrix* data) const = 0;

  // Output metadata of VREM operation `op` (a hadad::la::vrem relation
  // name) applied to `inputs`, or nullopt when the operation is unknown or
  // the inputs are insufficient. For two-output decompositions (qr, lu),
  // `output_index` selects the factor.
  virtual std::optional<ClassMeta> Propagate(
      const std::string& op, const std::vector<ClassMeta>& inputs,
      int output_index = 0) const = 0;
};

// Worst-case estimator [22]: derives output sparsity from input dimensions
// and nnz alone (no structural information, no runtime overhead).
class NaiveMetadataEstimator : public SparsityEstimator {
 public:
  std::string name() const override { return "naive"; }
  ClassMeta MakeBase(const la::MatrixMeta& meta,
                     const matrix::Matrix* data) const override;
  std::optional<ClassMeta> Propagate(const std::string& op,
                                     const std::vector<ClassMeta>& inputs,
                                     int output_index = 0) const override;
};

// MNC estimator: propagates row/column non-zero count histograms, which
// capture structures like single-non-zero-per-row that the worst-case
// estimator cannot see.
class MncEstimator : public SparsityEstimator {
 public:
  std::string name() const override { return "mnc"; }
  ClassMeta MakeBase(const la::MatrixMeta& meta,
                     const matrix::Matrix* data) const override;
  std::optional<ClassMeta> Propagate(const std::string& op,
                                     const std::vector<ClassMeta>& inputs,
                                     int output_index = 0) const override;
};

// Shape-only propagation shared by both estimators; returns the output
// MatrixMeta with nnz unset (negative), or nullopt for non-operation
// relations. Exposed for testing.
std::optional<la::MatrixMeta> PropagateShape(
    const std::string& op, const std::vector<la::MatrixMeta>& inputs,
    int output_index);

}  // namespace hadad::cost

#endif  // HADAD_COST_ESTIMATOR_H_
