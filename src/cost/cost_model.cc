#include "cost/cost_model.h"

#include "la/vrem.h"
#include "matrix/simd.h"

namespace hadad::cost {

namespace {

namespace vrem = la::vrem;
using la::Expr;
using la::OpKind;

struct NodeEstimate {
  double inner_cost = 0.0;  // Intermediates strictly below this node.
  ClassMeta meta;
  bool is_leaf = false;
};

class Estimator {
 public:
  Estimator(const la::MetaCatalog& catalog,
            const SparsityEstimator& estimator, const DataCatalog* data)
      : catalog_(catalog), estimator_(estimator), data_(data) {}

  Result<NodeEstimate> Visit(const Expr& e) {
    NodeEstimate out;
    switch (e.kind()) {
      case OpKind::kMatrixRef: {
        auto it = catalog_.find(e.name());
        if (it == catalog_.end()) {
          return Status::NotFound("unknown matrix '" + e.name() + "'");
        }
        const matrix::Matrix* m = nullptr;
        if (data_ != nullptr) {
          auto dit = data_->find(e.name());
          if (dit != data_->end()) m = dit->second.get();
        }
        out.meta = estimator_.MakeBase(it->second, m);
        out.is_leaf = true;
        return out;
      }
      case OpKind::kScalarConst: {
        out.meta.shape.rows = 1;
        out.meta.shape.cols = 1;
        out.meta.shape.nnz = e.scalar_value() == 0.0 ? 0.0 : 1.0;
        out.is_leaf = true;
        return out;
      }
      default:
        break;
    }
    std::vector<NodeEstimate> kids;
    kids.reserve(e.children().size());
    for (const la::ExprPtr& c : e.children()) {
      HADAD_ASSIGN_OR_RETURN(NodeEstimate k, Visit(*c));
      kids.push_back(std::move(k));
    }
    const bool lhs_scalar = kids[0].meta.shape.rows == 1 &&
                            kids[0].meta.shape.cols == 1;
    const bool rhs_scalar = kids.size() > 1 &&
                            kids[1].meta.shape.rows == 1 &&
                            kids[1].meta.shape.cols == 1;
    HADAD_ASSIGN_OR_RETURN(OpRelation rel,
                           RelationFor(e, lhs_scalar, rhs_scalar));
    std::vector<ClassMeta> inputs;
    if (rel.swap_args) {
      inputs = {kids[1].meta, kids[0].meta};
    } else {
      for (const NodeEstimate& k : kids) inputs.push_back(k.meta);
    }
    auto meta = estimator_.Propagate(rel.relation, inputs, rel.output_index);
    if (!meta.has_value()) {
      return Status::DimensionMismatch("cannot estimate " + ToString(e));
    }
    out.meta = *meta;
    // γ accumulates each child's subtree cost plus the child's own output
    // when the child is itself computed (not a leaf scan).
    for (const NodeEstimate& k : kids) {
      out.inner_cost += k.inner_cost;
      if (!k.is_leaf) out.inner_cost += k.meta.SizeEstimate();
    }
    return out;
  }

 private:
  const la::MetaCatalog& catalog_;
  const SparsityEstimator& estimator_;
  const DataCatalog* data_;
};

}  // namespace

Result<OpRelation> RelationFor(const la::Expr& e, bool lhs_scalar,
                               bool rhs_scalar) {
  OpRelation out;
  switch (e.kind()) {
    case OpKind::kTranspose: out.relation = vrem::kTr; return out;
    case OpKind::kInverse: out.relation = vrem::kInvM; return out;
    case OpKind::kDet: out.relation = vrem::kDet; return out;
    case OpKind::kTrace: out.relation = vrem::kTrace; return out;
    case OpKind::kDiag: out.relation = vrem::kDiag; return out;
    case OpKind::kExp: out.relation = vrem::kExp; return out;
    case OpKind::kAdjoint: out.relation = vrem::kAdj; return out;
    case OpKind::kRev: out.relation = vrem::kRev; return out;
    case OpKind::kSum: out.relation = vrem::kSum; return out;
    case OpKind::kRowSums: out.relation = vrem::kRowSums; return out;
    case OpKind::kColSums: out.relation = vrem::kColSums; return out;
    case OpKind::kMin: out.relation = vrem::kMin; return out;
    case OpKind::kMax: out.relation = vrem::kMax; return out;
    case OpKind::kMean: out.relation = vrem::kMean; return out;
    case OpKind::kVar: out.relation = vrem::kVar; return out;
    case OpKind::kRowMins: out.relation = vrem::kRowMin; return out;
    case OpKind::kRowMaxs: out.relation = vrem::kRowMax; return out;
    case OpKind::kRowMeans: out.relation = vrem::kRowMean; return out;
    case OpKind::kRowVars: out.relation = vrem::kRowVar; return out;
    case OpKind::kColMins: out.relation = vrem::kColMin; return out;
    case OpKind::kColMaxs: out.relation = vrem::kColMax; return out;
    case OpKind::kColMeans: out.relation = vrem::kColMean; return out;
    case OpKind::kColVars: out.relation = vrem::kColVar; return out;
    case OpKind::kCholesky: out.relation = vrem::kCho; return out;
    case OpKind::kQrQ:
      out.relation = vrem::kQr;
      out.output_index = 0;
      return out;
    case OpKind::kQrR:
      out.relation = vrem::kQr;
      out.output_index = 1;
      return out;
    case OpKind::kLuL:
      out.relation = vrem::kLu;
      out.output_index = 0;
      return out;
    case OpKind::kLuU:
      out.relation = vrem::kLu;
      out.output_index = 1;
      return out;
    case OpKind::kPluL:
      out.relation = vrem::kLup;
      out.output_index = 0;
      return out;
    case OpKind::kPluU:
      out.relation = vrem::kLup;
      out.output_index = 1;
      return out;
    case OpKind::kPluP:
      out.relation = vrem::kLup;
      out.output_index = 2;
      return out;
    case OpKind::kMultiply:
    case OpKind::kHadamard:
      if (lhs_scalar && rhs_scalar) {
        out.relation = vrem::kMultiS;
      } else if (lhs_scalar) {
        out.relation = vrem::kMultiMS;
      } else if (rhs_scalar) {
        out.relation = vrem::kMultiMS;
        out.swap_args = true;
      } else if (e.kind() == OpKind::kMultiply) {
        out.relation = vrem::kMultiM;
      } else {
        out.relation = vrem::kMultiE;
      }
      return out;
    case OpKind::kAdd:
      out.relation = (lhs_scalar && rhs_scalar) ? vrem::kAddS : vrem::kAddM;
      return out;
    case OpKind::kDivide:
      if (lhs_scalar && rhs_scalar) {
        out.relation = vrem::kDivS;
      } else if (rhs_scalar) {
        out.relation = vrem::kDivMS;
      } else {
        out.relation = vrem::kDivM;
      }
      return out;
    case OpKind::kDirectSum: out.relation = vrem::kSumD; return out;
    case OpKind::kKronecker: out.relation = vrem::kProductD; return out;
    case OpKind::kCbind: out.relation = vrem::kCbind; return out;
    case OpKind::kMatrixRef:
    case OpKind::kScalarConst:
      break;
  }
  return Status::InvalidArgument("leaf has no operator relation");
}

Result<ExprEstimate> EstimateExpression(const la::Expr& expr,
                                        const la::MetaCatalog& catalog,
                                        const SparsityEstimator& estimator,
                                        const DataCatalog* data) {
  Estimator walker(catalog, estimator, data);
  HADAD_ASSIGN_OR_RETURN(NodeEstimate root, walker.Visit(expr));
  ExprEstimate out;
  out.cost = root.inner_cost;
  out.output = root.meta;
  return out;
}

bool TreatAsDense(const ClassMeta& m, double dense_threshold) {
  return m.shape.Sparsity() >= dense_threshold;
}

bool HeavyEnoughForParallel(const ClassMeta& out, int64_t cell_threshold) {
  return out.shape.Cells() >= static_cast<double>(cell_threshold);
}

int64_t DefaultParallelCellThreshold() {
  return matrix::ActiveTier() == matrix::SimdTier::kScalar ? 4096 : 1024;
}

bool ReducingGemmProfitable(const ClassMeta& a, const ClassMeta& b,
                            const ClassMeta& product, double dense_threshold,
                            int64_t cell_threshold) {
  const bool a_scalar = a.shape.rows == 1 && a.shape.cols == 1;
  const bool b_scalar = b.shape.rows == 1 && b.shape.cols == 1;
  if (a_scalar || b_scalar) return false;
  if (a.shape.cols != b.shape.rows) return false;
  return TreatAsDense(a, dense_threshold) && TreatAsDense(b, dense_threshold) &&
         HeavyEnoughForParallel(product, cell_threshold);
}

}  // namespace hadad::cost
