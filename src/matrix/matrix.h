#ifndef HADAD_MATRIX_MATRIX_H_
#define HADAD_MATRIX_MATRIX_H_

#include <cstdint>
#include <variant>

#include "common/status.h"
#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace hadad::matrix {

// Physical representation wrapper: a matrix is stored dense (row-major) or
// sparse (CSR). Operations dispatch on representation and pick the natural
// output representation (e.g. sparse * dense -> dense, sparse (+) sparse ->
// sparse). Scalars are 1x1 dense matrices, matching the paper's treatment of
// numbers as degenerate matrices (§3).
class Matrix {
 public:
  Matrix() : rep_(DenseMatrix()) {}
  Matrix(DenseMatrix dense) : rep_(std::move(dense)) {}    // NOLINT
  Matrix(SparseMatrix sparse) : rep_(std::move(sparse)) {} // NOLINT

  static Matrix Scalar(double v) { return Matrix(DenseMatrix::Scalar(v)); }
  static Matrix Identity(int64_t n) { return Matrix(DenseMatrix::Identity(n)); }
  static Matrix Zero(int64_t rows, int64_t cols) {
    return Matrix(DenseMatrix::Zero(rows, cols));
  }

  bool is_dense() const { return std::holds_alternative<DenseMatrix>(rep_); }
  bool is_sparse() const { return !is_dense(); }

  const DenseMatrix& dense() const {
    HADAD_CHECK(is_dense());
    return std::get<DenseMatrix>(rep_);
  }
  const SparseMatrix& sparse() const {
    HADAD_CHECK(is_sparse());
    return std::get<SparseMatrix>(rep_);
  }

  // Mutable access for in-place maintenance (row append). Same
  // representation-checked contract as the const accessors.
  DenseMatrix& mutable_dense() {
    HADAD_CHECK(is_dense());
    return std::get<DenseMatrix>(rep_);
  }
  SparseMatrix& mutable_sparse() {
    HADAD_CHECK(is_sparse());
    return std::get<SparseMatrix>(rep_);
  }

  int64_t rows() const {
    return is_dense() ? dense().rows() : sparse().rows();
  }
  int64_t cols() const {
    return is_dense() ? dense().cols() : sparse().cols();
  }
  bool IsScalar() const { return rows() == 1 && cols() == 1; }
  bool IsSquare() const { return rows() == cols(); }

  // The value of a 1x1 matrix.
  double ScalarValue() const;

  double At(int64_t r, int64_t c) const {
    return is_dense() ? dense().At(r, c) : sparse().At(r, c);
  }

  // Exact count of non-zero cells.
  int64_t Nnz() const {
    return is_dense() ? dense().CountNonZeros() : sparse().nnz();
  }

  // Total cells (rows * cols). This is the "dense size" used by the naive
  // cost model for dense intermediates.
  int64_t Cells() const { return rows() * cols(); }

  DenseMatrix ToDense() const {
    return is_dense() ? dense() : sparse().ToDense();
  }
  SparseMatrix ToSparse() const {
    return is_sparse() ? sparse() : SparseMatrix::FromDense(dense());
  }

  // Value-based comparison up to tolerance, representation-agnostic.
  bool ApproxEquals(const Matrix& other, double tol = 1e-8) const;

 private:
  std::variant<DenseMatrix, SparseMatrix> rep_;
};

// ---------------------------------------------------------------------------
// Lops kernels (§6.1). Every operation the paper's 𝐿𝑜𝑝𝑠 set supports.
// All functions validate dimensions and return Status on misuse.
// ---------------------------------------------------------------------------

// Matrix product A * B (multiM). Also covers scalar * matrix when one side is
// 1x1 (delegates to ScalarMultiply), mirroring LA-language conveniences.
Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

// Element-wise sum / difference (addM).
Result<Matrix> Add(const Matrix& a, const Matrix& b);
Result<Matrix> Subtract(const Matrix& a, const Matrix& b);

// Hadamard product (multiE) and element-wise division (divM).
Result<Matrix> ElementwiseMultiply(const Matrix& a, const Matrix& b);
Result<Matrix> ElementwiseDivide(const Matrix& a, const Matrix& b);

// Scalar-matrix product s * A (multiMS).
Matrix ScalarMultiply(double s, const Matrix& a);

// Transposition (tr).
Matrix Transpose(const Matrix& a);

// Reverses the row order (SystemML's rev, used by MMC_StatAgg rules).
Matrix Reverse(const Matrix& a);

// Inverse (invM); requires a square, non-singular matrix.
Result<Matrix> Inverse(const Matrix& a);

// Determinant (det); requires square.
Result<double> Determinant(const Matrix& a);

// Trace; requires square.
Result<double> Trace(const Matrix& a);

// diag: for an n-vector, the n x n diagonal matrix; for a square matrix, its
// diagonal as an n x 1 vector (R semantics).
Result<Matrix> Diag(const Matrix& a);

// Matrix exponential e^A via scaling-and-squaring; requires square.
Result<Matrix> MatrixExp(const Matrix& a);

// Adjugate (classical adjoint, adj): adj(A) with A * adj(A) = det(A) * I.
Result<Matrix> Adjugate(const Matrix& a);

// Direct sum (sumD): block-diagonal [[A, 0], [0, B]].
Matrix DirectSum(const Matrix& a, const Matrix& b);

// Direct (Kronecker) product (productD).
Result<Matrix> KroneckerProduct(const Matrix& a, const Matrix& b);

// Full and partial aggregations (sum / rowSums / colSums and the
// min/max/mean/var family needed by the SystemML MMC_StatAgg rules).
double Sum(const Matrix& a);
Matrix RowSums(const Matrix& a);   // n x 1
Matrix ColSums(const Matrix& a);   // 1 x m
double Min(const Matrix& a);
double Max(const Matrix& a);
double Mean(const Matrix& a);
double Var(const Matrix& a);       // sample variance over all cells
Matrix RowMins(const Matrix& a);
Matrix RowMaxs(const Matrix& a);
Matrix RowMeans(const Matrix& a);
Matrix RowVars(const Matrix& a);
Matrix ColMins(const Matrix& a);
Matrix ColMaxs(const Matrix& a);
Matrix ColMeans(const Matrix& a);
Matrix ColVars(const Matrix& a);

// Horizontal concatenation [A | B]; rows must match (used by Morpheus).
Result<Matrix> Cbind(const Matrix& a, const Matrix& b);

// Approximate resident payload size: dense cells, or the CSR value/index/
// row-pointer arrays. The adaptive view store budgets against this.
int64_t ApproxBytes(const Matrix& a);

// Appends the rows of `rows` below `*base` in place (the mutable data
// layer's row-append primitive). `rows` is converted to base's
// representation when they differ; column counts must match.
Status AppendRows(Matrix* base, const Matrix& rows);

// Keeps the first `rows` rows of `*base` in place — the inverse of
// AppendRows, used to roll a failed mutation back. OutOfRange when `rows`
// exceeds the current row count.
Status TruncateRows(Matrix* base, int64_t rows);

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_MATRIX_H_
