#include "matrix/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "matrix/decompositions.h"

namespace hadad::matrix {

namespace {

std::string DimStr(const Matrix& m) {
  return std::to_string(m.rows()) + "x" + std::to_string(m.cols());
}

Status DimMismatch(const char* op, const Matrix& a, const Matrix& b) {
  return Status::DimensionMismatch(std::string(op) + ": " + DimStr(a) +
                                   " vs " + DimStr(b));
}

DenseMatrix MultiplyDenseDense(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  const int64_t n = a.rows();
  const int64_t k = a.cols();
  const int64_t m = b.cols();
  for (int64_t i = 0; i < n; ++i) {
    double* out_row = out.row(i);
    const double* a_row = a.row(i);
    for (int64_t p = 0; p < k; ++p) {
      const double av = a_row[p];
      if (av == 0.0) continue;
      const double* b_row = b.row(p);
      for (int64_t j = 0; j < m; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
  return out;
}

DenseMatrix MultiplySparseDense(const SparseMatrix& a, const DenseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  const int64_t m = b.cols();
  const auto& rptr = a.row_ptr();
  const auto& cidx = a.col_idx();
  const auto& vals = a.values();
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.row(i);
    for (int64_t p = rptr[static_cast<size_t>(i)];
         p < rptr[static_cast<size_t>(i) + 1]; ++p) {
      const double av = vals[static_cast<size_t>(p)];
      const double* b_row = b.row(cidx[static_cast<size_t>(p)]);
      for (int64_t j = 0; j < m; ++j) {
        out_row[j] += av * b_row[j];
      }
    }
  }
  return out;
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const SparseMatrix& b) {
  DenseMatrix out(a.rows(), b.cols());
  const auto& rptr = b.row_ptr();
  const auto& cidx = b.col_idx();
  const auto& vals = b.values();
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* out_row = out.row(i);
    const double* a_row = a.row(i);
    for (int64_t p = 0; p < a.cols(); ++p) {
      const double av = a_row[p];
      if (av == 0.0) continue;
      for (int64_t q = rptr[static_cast<size_t>(p)];
           q < rptr[static_cast<size_t>(p) + 1]; ++q) {
        out_row[cidx[static_cast<size_t>(q)]] +=
            av * vals[static_cast<size_t>(q)];
      }
    }
  }
  return out;
}

// Gustavson's algorithm: row-by-row accumulation into a dense workspace.
SparseMatrix MultiplySparseSparse(const SparseMatrix& a,
                                  const SparseMatrix& b) {
  std::vector<Triplet> triplets;
  std::vector<double> acc(static_cast<size_t>(b.cols()), 0.0);
  std::vector<int64_t> touched;
  const auto& a_rptr = a.row_ptr();
  const auto& a_cidx = a.col_idx();
  const auto& a_vals = a.values();
  const auto& b_rptr = b.row_ptr();
  const auto& b_cidx = b.col_idx();
  const auto& b_vals = b.values();
  for (int64_t i = 0; i < a.rows(); ++i) {
    touched.clear();
    for (int64_t p = a_rptr[static_cast<size_t>(i)];
         p < a_rptr[static_cast<size_t>(i) + 1]; ++p) {
      const double av = a_vals[static_cast<size_t>(p)];
      const int64_t k = a_cidx[static_cast<size_t>(p)];
      for (int64_t q = b_rptr[static_cast<size_t>(k)];
           q < b_rptr[static_cast<size_t>(k) + 1]; ++q) {
        const int64_t j = b_cidx[static_cast<size_t>(q)];
        if (acc[static_cast<size_t>(j)] == 0.0) touched.push_back(j);
        acc[static_cast<size_t>(j)] += av * b_vals[static_cast<size_t>(q)];
      }
    }
    for (int64_t j : touched) {
      if (acc[static_cast<size_t>(j)] != 0.0) {
        triplets.push_back({i, j, acc[static_cast<size_t>(j)]});
      }
      acc[static_cast<size_t>(j)] = 0.0;
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), b.cols(), std::move(triplets));
}

SparseMatrix AddSparseSparse(const SparseMatrix& a, const SparseMatrix& b,
                             double b_sign) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t p = a.row_ptr()[static_cast<size_t>(i)];
         p < a.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
      triplets.push_back({i, a.col_idx()[static_cast<size_t>(p)],
                          a.values()[static_cast<size_t>(p)]});
    }
  }
  for (int64_t i = 0; i < b.rows(); ++i) {
    for (int64_t p = b.row_ptr()[static_cast<size_t>(i)];
         p < b.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
      triplets.push_back({i, b.col_idx()[static_cast<size_t>(p)],
                          b_sign * b.values()[static_cast<size_t>(p)]});
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets));
}

DenseMatrix AddDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                          double b_sign) {
  DenseMatrix out(a.rows(), a.cols());
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  const int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + b_sign * pb[i];
  return out;
}

Result<Matrix> AddImpl(const Matrix& a, const Matrix& b, double b_sign) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return DimMismatch("add", a, b);
  }
  if (a.is_sparse() && b.is_sparse()) {
    return Matrix(AddSparseSparse(a.sparse(), b.sparse(), b_sign));
  }
  return Matrix(AddDenseDense(a.ToDense(), b.ToDense(), b_sign));
}

DenseMatrix TransposeDense(const DenseMatrix& a) {
  DenseMatrix out(a.cols(), a.rows());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      out.At(j, i) = a.At(i, j);
    }
  }
  return out;
}

double InfNorm(const DenseMatrix& a) {
  double best = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) s += std::fabs(a.At(i, j));
    best = std::max(best, s);
  }
  return best;
}

// Determinant by cofactor expansion; used for adjugates of singular
// matrices where the det*inverse shortcut is unavailable. O(n!) — callers
// restrict to small n.
double CofactorDet(const DenseMatrix& a) {
  const int64_t n = a.rows();
  if (n == 1) return a.At(0, 0);
  if (n == 2) return a.At(0, 0) * a.At(1, 1) - a.At(0, 1) * a.At(1, 0);
  double det = 0.0;
  double sign = 1.0;
  for (int64_t j = 0; j < n; ++j) {
    DenseMatrix minor(n - 1, n - 1);
    for (int64_t r = 1; r < n; ++r) {
      int64_t cc = 0;
      for (int64_t c = 0; c < n; ++c) {
        if (c == j) continue;
        minor.At(r - 1, cc++) = a.At(r, c);
      }
    }
    det += sign * a.At(0, j) * CofactorDet(minor);
    sign = -sign;
  }
  return det;
}

}  // namespace

double Matrix::ScalarValue() const {
  HADAD_CHECK_MSG(IsScalar(), "ScalarValue on non-1x1 matrix");
  return At(0, 0);
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows() != other.rows() || cols() != other.cols()) return false;
  return ToDense().ApproxEquals(other.ToDense(), tol);
}

Result<Matrix> Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    // LA-language convenience: a 1x1 operand acts as a scalar.
    if (a.IsScalar()) return ScalarMultiply(a.ScalarValue(), b);
    if (b.IsScalar()) return ScalarMultiply(b.ScalarValue(), a);
    return DimMismatch("multiply", a, b);
  }
  if (a.is_sparse() && b.is_sparse()) {
    return Matrix(MultiplySparseSparse(a.sparse(), b.sparse()));
  }
  if (a.is_sparse()) {
    return Matrix(MultiplySparseDense(a.sparse(), b.dense()));
  }
  if (b.is_sparse()) {
    return Matrix(MultiplyDenseSparse(a.dense(), b.sparse()));
  }
  return Matrix(MultiplyDenseDense(a.dense(), b.dense()));
}

Result<Matrix> Add(const Matrix& a, const Matrix& b) {
  return AddImpl(a, b, 1.0);
}

Result<Matrix> Subtract(const Matrix& a, const Matrix& b) {
  return AddImpl(a, b, -1.0);
}

Result<Matrix> ElementwiseMultiply(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    // Scalar broadcast, matching R's `M * s`.
    if (a.IsScalar()) return ScalarMultiply(a.ScalarValue(), b);
    if (b.IsScalar()) return ScalarMultiply(b.ScalarValue(), a);
    return DimMismatch("hadamard", a, b);
  }
  if (a.is_sparse() || b.is_sparse()) {
    const SparseMatrix& s = a.is_sparse() ? a.sparse() : b.sparse();
    const Matrix& o = a.is_sparse() ? b : a;
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<size_t>(s.nnz()));
    for (int64_t i = 0; i < s.rows(); ++i) {
      for (int64_t p = s.row_ptr()[static_cast<size_t>(i)];
           p < s.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        int64_t j = s.col_idx()[static_cast<size_t>(p)];
        double v = s.values()[static_cast<size_t>(p)] * o.At(i, j);
        if (v != 0.0) triplets.push_back({i, j, v});
      }
    }
    return Matrix(
        SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
  }
  DenseMatrix out(a.rows(), a.cols());
  const double* pa = a.dense().data();
  const double* pb = b.dense().data();
  double* po = out.data();
  for (int64_t i = 0; i < out.size(); ++i) po[i] = pa[i] * pb[i];
  return Matrix(std::move(out));
}

Result<Matrix> ElementwiseDivide(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    if (b.IsScalar()) return ScalarMultiply(1.0 / b.ScalarValue(), a);
    return DimMismatch("divide", a, b);
  }
  if (a.is_sparse()) {
    // 0 / x stays 0 under sparse semantics (SystemML convention).
    const SparseMatrix& s = a.sparse();
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<size_t>(s.nnz()));
    for (int64_t i = 0; i < s.rows(); ++i) {
      for (int64_t p = s.row_ptr()[static_cast<size_t>(i)];
           p < s.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        int64_t j = s.col_idx()[static_cast<size_t>(p)];
        double denom = b.At(i, j);
        if (denom == 0.0) {
          return Status::InvalidArgument("divide: zero denominator");
        }
        triplets.push_back({i, j, s.values()[static_cast<size_t>(p)] / denom});
      }
    }
    return Matrix(
        SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
  }
  DenseMatrix da = a.ToDense();
  DenseMatrix db = b.ToDense();
  DenseMatrix out(a.rows(), a.cols());
  for (int64_t i = 0; i < out.size(); ++i) {
    if (db.data()[i] == 0.0) {
      return Status::InvalidArgument("divide: zero denominator");
    }
    out.data()[i] = da.data()[i] / db.data()[i];
  }
  return Matrix(std::move(out));
}

Matrix ScalarMultiply(double s, const Matrix& a) {
  if (a.is_sparse()) {
    const SparseMatrix& sp = a.sparse();
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<size_t>(sp.nnz()));
    for (int64_t i = 0; i < sp.rows(); ++i) {
      for (int64_t p = sp.row_ptr()[static_cast<size_t>(i)];
           p < sp.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        double v = s * sp.values()[static_cast<size_t>(p)];
        if (v != 0.0) {
          triplets.push_back({i, sp.col_idx()[static_cast<size_t>(p)], v});
        }
      }
    }
    return Matrix(
        SparseMatrix::FromTriplets(a.rows(), a.cols(), std::move(triplets)));
  }
  DenseMatrix out = a.dense();
  for (int64_t i = 0; i < out.size(); ++i) out.data()[i] *= s;
  return Matrix(std::move(out));
}

Matrix Transpose(const Matrix& a) {
  if (a.is_sparse()) return Matrix(a.sparse().Transpose());
  return Matrix(TransposeDense(a.dense()));
}

Matrix Reverse(const Matrix& a) {
  DenseMatrix d = a.ToDense();
  DenseMatrix out(d.rows(), d.cols());
  for (int64_t i = 0; i < d.rows(); ++i) {
    for (int64_t j = 0; j < d.cols(); ++j) {
      out.At(i, j) = d.At(d.rows() - 1 - i, j);
    }
  }
  if (a.is_sparse()) return Matrix(SparseMatrix::FromDense(out));
  return Matrix(std::move(out));
}

Result<Matrix> Inverse(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("inverse requires a square matrix, got " +
                                   DimStr(a));
  }
  HADAD_ASSIGN_OR_RETURN(PluResult plu, PluDecompose(a));
  const int64_t n = a.rows();
  for (int64_t i = 0; i < n; ++i) {
    if (std::fabs(plu.u.dense().At(i, i)) < 1e-13) {
      return Status::NotInvertible("singular matrix");
    }
  }
  // Solve A X = I column by column: A = P^T L U, so L U x = P b.
  const DenseMatrix& l = plu.l.dense();
  const DenseMatrix& u = plu.u.dense();
  DenseMatrix out(n, n);
  std::vector<double> y(static_cast<size_t>(n));
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t col = 0; col < n; ++col) {
    // b = I column `col`, permuted.
    for (int64_t i = 0; i < n; ++i) {
      y[static_cast<size_t>(i)] =
          (plu.perm[static_cast<size_t>(i)] == col) ? 1.0 : 0.0;
    }
    // Forward substitution L y' = y.
    for (int64_t i = 0; i < n; ++i) {
      double s = y[static_cast<size_t>(i)];
      for (int64_t j = 0; j < i; ++j) {
        s -= l.At(i, j) * y[static_cast<size_t>(j)];
      }
      y[static_cast<size_t>(i)] = s;  // L has unit diagonal.
    }
    // Back substitution U x = y'.
    for (int64_t i = n - 1; i >= 0; --i) {
      double s = y[static_cast<size_t>(i)];
      for (int64_t j = i + 1; j < n; ++j) {
        s -= u.At(i, j) * x[static_cast<size_t>(j)];
      }
      x[static_cast<size_t>(i)] = s / u.At(i, i);
    }
    for (int64_t i = 0; i < n; ++i) out.At(i, col) = x[static_cast<size_t>(i)];
  }
  return Matrix(std::move(out));
}

Result<double> Determinant(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument(
        "determinant requires a square matrix, got " + DimStr(a));
  }
  HADAD_ASSIGN_OR_RETURN(PluResult plu, PluDecompose(a));
  double det = plu.sign;
  for (int64_t i = 0; i < a.rows(); ++i) det *= plu.u.dense().At(i, i);
  return det;
}

Result<double> Trace(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("trace requires a square matrix, got " +
                                   DimStr(a));
  }
  double t = 0.0;
  for (int64_t i = 0; i < a.rows(); ++i) t += a.At(i, i);
  return t;
}

Result<Matrix> Diag(const Matrix& a) {
  if (a.cols() == 1 && a.rows() > 1) {
    // Vector -> diagonal matrix (kept sparse: it is n x n with n non-zeros).
    std::vector<Triplet> triplets;
    for (int64_t i = 0; i < a.rows(); ++i) {
      double v = a.At(i, 0);
      if (v != 0.0) triplets.push_back({i, i, v});
    }
    return Matrix(
        SparseMatrix::FromTriplets(a.rows(), a.rows(), std::move(triplets)));
  }
  if (!a.IsSquare()) {
    return Status::InvalidArgument(
        "diag requires a square matrix or a column vector, got " + DimStr(a));
  }
  DenseMatrix out(a.rows(), 1);
  for (int64_t i = 0; i < a.rows(); ++i) out.At(i, 0) = a.At(i, i);
  return Matrix(std::move(out));
}

Result<Matrix> MatrixExp(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("exp requires a square matrix, got " +
                                   DimStr(a));
  }
  DenseMatrix d = a.ToDense();
  const int64_t n = d.rows();
  // Scaling: bring the norm below 0.5 so the Taylor series converges fast.
  double norm = InfNorm(d);
  int squarings = 0;
  while (norm > 0.5 && squarings < 60) {
    norm /= 2.0;
    ++squarings;
  }
  const double scale = std::ldexp(1.0, -squarings);
  DenseMatrix scaled(n, n);
  for (int64_t i = 0; i < d.size(); ++i) {
    scaled.data()[i] = d.data()[i] * scale;
  }
  // Taylor series sum_k scaled^k / k!.
  DenseMatrix result = DenseMatrix::Identity(n);
  DenseMatrix term = DenseMatrix::Identity(n);
  for (int k = 1; k <= 30; ++k) {
    term = MultiplyDenseDense(term, scaled);
    const double inv_fact = 1.0 / k;
    bool significant = false;
    for (int64_t i = 0; i < term.size(); ++i) {
      term.data()[i] *= inv_fact;
      result.data()[i] += term.data()[i];
      if (std::fabs(term.data()[i]) > 1e-17) significant = true;
    }
    if (!significant) break;
  }
  for (int s = 0; s < squarings; ++s) {
    result = MultiplyDenseDense(result, result);
  }
  return Matrix(std::move(result));
}

Result<Matrix> Adjugate(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("adjugate requires a square matrix, got " +
                                   DimStr(a));
  }
  const int64_t n = a.rows();
  if (n == 1) return Matrix::Scalar(1.0);
  HADAD_ASSIGN_OR_RETURN(double det, Determinant(a));
  if (std::fabs(det) > 1e-10) {
    // adj(A) = det(A) * A^{-1}.
    HADAD_ASSIGN_OR_RETURN(Matrix inv, Inverse(a));
    return ScalarMultiply(det, inv);
  }
  if (n > 8) {
    return Status::NotSupported(
        "adjugate of a singular matrix larger than 8x8");
  }
  DenseMatrix d = a.ToDense();
  DenseMatrix out(n, n);
  DenseMatrix minor(n - 1, n - 1);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int64_t rr = 0;
      for (int64_t r = 0; r < n; ++r) {
        if (r == i) continue;
        int64_t cc = 0;
        for (int64_t c = 0; c < n; ++c) {
          if (c == j) continue;
          minor.At(rr, cc++) = d.At(r, c);
        }
        ++rr;
      }
      const double sign = ((i + j) % 2 == 0) ? 1.0 : -1.0;
      out.At(j, i) = sign * CofactorDet(minor);  // Transposed cofactor.
    }
  }
  return Matrix(std::move(out));
}

Matrix DirectSum(const Matrix& a, const Matrix& b) {
  // Block-diagonal result is at least half zeros; keep it sparse when either
  // input is sparse.
  if (a.is_sparse() || b.is_sparse()) {
    std::vector<Triplet> triplets;
    SparseMatrix sa = a.ToSparse();
    SparseMatrix sb = b.ToSparse();
    for (int64_t i = 0; i < sa.rows(); ++i) {
      for (int64_t p = sa.row_ptr()[static_cast<size_t>(i)];
           p < sa.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        triplets.push_back({i, sa.col_idx()[static_cast<size_t>(p)],
                            sa.values()[static_cast<size_t>(p)]});
      }
    }
    for (int64_t i = 0; i < sb.rows(); ++i) {
      for (int64_t p = sb.row_ptr()[static_cast<size_t>(i)];
           p < sb.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        triplets.push_back({a.rows() + i,
                            a.cols() + sb.col_idx()[static_cast<size_t>(p)],
                            sb.values()[static_cast<size_t>(p)]});
      }
    }
    return Matrix(SparseMatrix::FromTriplets(
        a.rows() + b.rows(), a.cols() + b.cols(), std::move(triplets)));
  }
  DenseMatrix out(a.rows() + b.rows(), a.cols() + b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) out.At(i, j) = a.At(i, j);
  }
  for (int64_t i = 0; i < b.rows(); ++i) {
    for (int64_t j = 0; j < b.cols(); ++j) {
      out.At(a.rows() + i, a.cols() + j) = b.At(i, j);
    }
  }
  return Matrix(std::move(out));
}

Result<Matrix> KroneckerProduct(const Matrix& a, const Matrix& b) {
  const int64_t rows = a.rows() * b.rows();
  const int64_t cols = a.cols() * b.cols();
  if (rows * cols > (int64_t{1} << 31)) {
    return Status::OutOfRange("kronecker result too large: " +
                              std::to_string(rows) + "x" +
                              std::to_string(cols));
  }
  if (a.is_sparse() && b.is_sparse()) {
    std::vector<Triplet> triplets;
    const SparseMatrix& sa = a.sparse();
    const SparseMatrix& sb = b.sparse();
    for (int64_t i = 0; i < sa.rows(); ++i) {
      for (int64_t p = sa.row_ptr()[static_cast<size_t>(i)];
           p < sa.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        const int64_t j = sa.col_idx()[static_cast<size_t>(p)];
        const double av = sa.values()[static_cast<size_t>(p)];
        for (int64_t r = 0; r < sb.rows(); ++r) {
          for (int64_t q = sb.row_ptr()[static_cast<size_t>(r)];
               q < sb.row_ptr()[static_cast<size_t>(r) + 1]; ++q) {
            triplets.push_back({i * sb.rows() + r,
                                j * sb.cols() +
                                    sb.col_idx()[static_cast<size_t>(q)],
                                av * sb.values()[static_cast<size_t>(q)]});
          }
        }
      }
    }
    return Matrix(SparseMatrix::FromTriplets(rows, cols, std::move(triplets)));
  }
  DenseMatrix da = a.ToDense();
  DenseMatrix db = b.ToDense();
  DenseMatrix out(rows, cols);
  for (int64_t i = 0; i < da.rows(); ++i) {
    for (int64_t j = 0; j < da.cols(); ++j) {
      const double av = da.At(i, j);
      if (av == 0.0) continue;
      for (int64_t r = 0; r < db.rows(); ++r) {
        for (int64_t c = 0; c < db.cols(); ++c) {
          out.At(i * db.rows() + r, j * db.cols() + c) = av * db.At(r, c);
        }
      }
    }
  }
  return Matrix(std::move(out));
}

double Sum(const Matrix& a) {
  if (a.is_sparse()) {
    double s = 0.0;
    for (double v : a.sparse().values()) s += v;
    return s;
  }
  double s = 0.0;
  const double* p = a.dense().data();
  for (int64_t i = 0; i < a.dense().size(); ++i) s += p[i];
  return s;
}

Matrix RowSums(const Matrix& a) {
  DenseMatrix out(a.rows(), 1);
  if (a.is_sparse()) {
    const SparseMatrix& s = a.sparse();
    for (int64_t i = 0; i < s.rows(); ++i) {
      double acc = 0.0;
      for (int64_t p = s.row_ptr()[static_cast<size_t>(i)];
           p < s.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        acc += s.values()[static_cast<size_t>(p)];
      }
      out.At(i, 0) = acc;
    }
  } else {
    for (int64_t i = 0; i < a.rows(); ++i) {
      double acc = 0.0;
      const double* row = a.dense().row(i);
      for (int64_t j = 0; j < a.cols(); ++j) acc += row[j];
      out.At(i, 0) = acc;
    }
  }
  return Matrix(std::move(out));
}

Matrix ColSums(const Matrix& a) {
  DenseMatrix out(1, a.cols());
  if (a.is_sparse()) {
    const SparseMatrix& s = a.sparse();
    for (int64_t i = 0; i < s.rows(); ++i) {
      for (int64_t p = s.row_ptr()[static_cast<size_t>(i)];
           p < s.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        out.At(0, s.col_idx()[static_cast<size_t>(p)]) +=
            s.values()[static_cast<size_t>(p)];
      }
    }
  } else {
    for (int64_t i = 0; i < a.rows(); ++i) {
      const double* row = a.dense().row(i);
      for (int64_t j = 0; j < a.cols(); ++j) out.At(0, j) += row[j];
    }
  }
  return Matrix(std::move(out));
}

namespace {

// Reduces over all cells; sparse matrices account for implicit zeros.
template <typename Fold>
double FullReduce(const Matrix& a, double init, Fold fold) {
  double acc = init;
  if (a.is_sparse()) {
    for (double v : a.sparse().values()) acc = fold(acc, v);
    if (a.sparse().nnz() < a.Cells()) acc = fold(acc, 0.0);
  } else {
    const double* p = a.dense().data();
    for (int64_t i = 0; i < a.dense().size(); ++i) acc = fold(acc, p[i]);
  }
  return acc;
}

}  // namespace

double Min(const Matrix& a) {
  return FullReduce(a, std::numeric_limits<double>::infinity(),
                    [](double x, double y) { return std::min(x, y); });
}

double Max(const Matrix& a) {
  return FullReduce(a, -std::numeric_limits<double>::infinity(),
                    [](double x, double y) { return std::max(x, y); });
}

double Mean(const Matrix& a) {
  int64_t n = a.Cells();
  return n == 0 ? 0.0 : Sum(a) / static_cast<double>(n);
}

double Var(const Matrix& a) {
  const int64_t n = a.Cells();
  if (n <= 1) return 0.0;
  const double mean = Mean(a);
  double ssq = 0.0;
  if (a.is_sparse()) {
    for (double v : a.sparse().values()) ssq += (v - mean) * (v - mean);
    ssq += static_cast<double>(n - a.sparse().nnz()) * mean * mean;
  } else {
    const double* p = a.dense().data();
    for (int64_t i = 0; i < a.dense().size(); ++i) {
      ssq += (p[i] - mean) * (p[i] - mean);
    }
  }
  return ssq / static_cast<double>(n - 1);
}

namespace {

// Row-wise reductions on the dense view. `stat` maps a row span to a value.
template <typename Stat>
Matrix RowStat(const Matrix& a, Stat stat) {
  DenseMatrix d = a.ToDense();
  DenseMatrix out(d.rows(), 1);
  for (int64_t i = 0; i < d.rows(); ++i) {
    out.At(i, 0) = stat(d.row(i), d.cols());
  }
  return Matrix(std::move(out));
}

template <typename Stat>
Matrix ColStat(const Matrix& a, Stat stat) {
  DenseMatrix d = a.ToDense();
  DenseMatrix t = TransposeDense(d);
  DenseMatrix out(1, d.cols());
  for (int64_t j = 0; j < d.cols(); ++j) {
    out.At(0, j) = stat(t.row(j), t.cols());
  }
  return Matrix(std::move(out));
}

double SpanMin(const double* p, int64_t n) {
  double m = p[0];
  for (int64_t i = 1; i < n; ++i) m = std::min(m, p[i]);
  return m;
}
double SpanMax(const double* p, int64_t n) {
  double m = p[0];
  for (int64_t i = 1; i < n; ++i) m = std::max(m, p[i]);
  return m;
}
double SpanMean(const double* p, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += p[i];
  return s / static_cast<double>(n);
}
double SpanVar(const double* p, int64_t n) {
  if (n <= 1) return 0.0;
  double mean = SpanMean(p, n);
  double ssq = 0.0;
  for (int64_t i = 0; i < n; ++i) ssq += (p[i] - mean) * (p[i] - mean);
  return ssq / static_cast<double>(n - 1);
}

}  // namespace

Matrix RowMins(const Matrix& a) { return RowStat(a, SpanMin); }
Matrix RowMaxs(const Matrix& a) { return RowStat(a, SpanMax); }
Matrix RowMeans(const Matrix& a) { return RowStat(a, SpanMean); }
Matrix RowVars(const Matrix& a) { return RowStat(a, SpanVar); }
Matrix ColMins(const Matrix& a) { return ColStat(a, SpanMin); }
Matrix ColMaxs(const Matrix& a) { return ColStat(a, SpanMax); }
Matrix ColMeans(const Matrix& a) { return ColStat(a, SpanMean); }
Matrix ColVars(const Matrix& a) { return ColStat(a, SpanVar); }

Result<Matrix> Cbind(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) return DimMismatch("cbind", a, b);
  if (a.is_sparse() && b.is_sparse()) {
    std::vector<Triplet> triplets;
    const SparseMatrix& sa = a.sparse();
    const SparseMatrix& sb = b.sparse();
    for (int64_t i = 0; i < sa.rows(); ++i) {
      for (int64_t p = sa.row_ptr()[static_cast<size_t>(i)];
           p < sa.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        triplets.push_back({i, sa.col_idx()[static_cast<size_t>(p)],
                            sa.values()[static_cast<size_t>(p)]});
      }
      for (int64_t p = sb.row_ptr()[static_cast<size_t>(i)];
           p < sb.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
        triplets.push_back({i, a.cols() + sb.col_idx()[static_cast<size_t>(p)],
                            sb.values()[static_cast<size_t>(p)]});
      }
    }
    return Matrix(SparseMatrix::FromTriplets(a.rows(), a.cols() + b.cols(),
                                             std::move(triplets)));
  }
  DenseMatrix out(a.rows(), a.cols() + b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) out.At(i, j) = a.At(i, j);
    for (int64_t j = 0; j < b.cols(); ++j) out.At(i, a.cols() + j) = b.At(i, j);
  }
  return Matrix(std::move(out));
}

int64_t ApproxBytes(const Matrix& a) {
  if (a.is_dense()) {
    return a.dense().size() * static_cast<int64_t>(sizeof(double));
  }
  const SparseMatrix& s = a.sparse();
  const int64_t per_entry = sizeof(double) + sizeof(int64_t);
  return s.nnz() * per_entry +
         (s.rows() + 1) * static_cast<int64_t>(sizeof(int64_t));
}

Status AppendRows(Matrix* base, const Matrix& rows) {
  if (base->cols() != rows.cols()) {
    return Status::DimensionMismatch("cannot append " + DimStr(rows) +
                                     " rows to a " + DimStr(*base) +
                                     " matrix");
  }
  if (rows.rows() == 0) return Status::OK();
  if (base->is_dense()) {
    base->mutable_dense().AppendRows(rows.ToDense());
  } else {
    base->mutable_sparse().AppendRows(rows.ToSparse());
  }
  return Status::OK();
}

Status TruncateRows(Matrix* base, int64_t rows) {
  if (rows < 0 || rows > base->rows()) {
    return Status::OutOfRange("cannot truncate " + DimStr(*base) + " to " +
                              std::to_string(rows) + " rows");
  }
  if (base->is_dense()) {
    base->mutable_dense().TruncateRows(rows);
  } else {
    base->mutable_sparse().TruncateRows(rows);
  }
  return Status::OK();
}

}  // namespace hadad::matrix
