#ifndef HADAD_MATRIX_DECOMPOSITIONS_H_
#define HADAD_MATRIX_DECOMPOSITIONS_H_

#include <vector>

#include "common/status.h"
#include "matrix/matrix.h"

namespace hadad::matrix {

// M = L * U with L unit lower-triangular, U upper-triangular, no pivoting
// (Doolittle). Fails with NotSupported when a zero pivot is hit — use
// PluDecompose then.
struct LuResult {
  Matrix l;
  Matrix u;
};
Result<LuResult> LuDecompose(const Matrix& m);

// P * M = L * U with partial pivoting. perm[i] gives the source row of
// permuted row i; sign is det(P) in {-1, +1}.
struct PluResult {
  Matrix l;
  Matrix u;
  std::vector<int64_t> perm;
  double sign = 1.0;
};
Result<PluResult> PluDecompose(const Matrix& m);

// M = Q * R with Q orthogonal, R upper-triangular (Householder reflections).
// Requires a square matrix, matching the paper's QR constraint (§6.2.5).
struct QrResult {
  Matrix q;
  Matrix r;
};
Result<QrResult> QrDecompose(const Matrix& m);

// M = L * L^T for a symmetric positive definite M; L lower-triangular.
Result<Matrix> CholeskyDecompose(const Matrix& m);

// Structural predicates used when declaring matrix `type` facts (§6.2.5):
// "S" symmetric positive definite, "L"/"U" triangular, "O" orthogonal.
bool IsSymmetric(const Matrix& m, double tol = 1e-9);
bool IsLowerTriangular(const Matrix& m, double tol = 1e-12);
bool IsUpperTriangular(const Matrix& m, double tol = 1e-12);
bool IsOrthogonal(const Matrix& m, double tol = 1e-8);

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_DECOMPOSITIONS_H_
