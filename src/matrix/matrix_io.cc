#include "matrix/matrix_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace hadad::matrix {

Status WriteCsv(const Matrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.precision(17);
  DenseMatrix d = m.ToDense();
  for (int64_t i = 0; i < d.rows(); ++i) {
    for (int64_t j = 0; j < d.cols(); ++j) {
      if (j > 0) out << ',';
      out << d.At(i, j);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<std::vector<double>> rows;
  std::string line;
  size_t width = 0;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& f : fields) {
      char* end = nullptr;
      std::string t = Trim(f);
      double v = std::strtod(t.c_str(), &end);
      if (end == t.c_str() || *end != '\0') {
        return Status::IoError("malformed CSV number '" + t + "' in " + path);
      }
      row.push_back(v);
    }
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      return Status::IoError("ragged CSV rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Status::IoError("empty CSV: " + path);
  DenseMatrix d(static_cast<int64_t>(rows.size()),
                static_cast<int64_t>(width));
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < width; ++j) {
      d.At(static_cast<int64_t>(i), static_cast<int64_t>(j)) = rows[i][j];
    }
  }
  return Matrix(std::move(d));
}

Status WriteMtx(const Matrix& m, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.precision(17);
  SparseMatrix s = m.ToSparse();
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << s.rows() << ' ' << s.cols() << ' ' << s.nnz() << '\n';
  for (int64_t i = 0; i < s.rows(); ++i) {
    for (int64_t p = s.row_ptr()[static_cast<size_t>(i)];
         p < s.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
      // MatrixMarket is 1-based.
      out << (i + 1) << ' ' << (s.col_idx()[static_cast<size_t>(p)] + 1) << ' '
          << s.values()[static_cast<size_t>(p)] << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Matrix> ReadMtx(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  // Header.
  if (!std::getline(in, line) || !StartsWith(line, "%%MatrixMarket")) {
    return Status::IoError("missing MatrixMarket header in " + path);
  }
  // Skip comments.
  do {
    if (!std::getline(in, line)) {
      return Status::IoError("truncated MTX file: " + path);
    }
  } while (!line.empty() && line[0] == '%');
  std::istringstream dims(line);
  int64_t rows = 0, cols = 0, nnz = 0;
  if (!(dims >> rows >> cols >> nnz) || rows <= 0 || cols <= 0 || nnz < 0) {
    return Status::IoError("malformed MTX size line in " + path);
  }
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz));
  for (int64_t k = 0; k < nnz; ++k) {
    int64_t r = 0, c = 0;
    double v = 0.0;
    if (!(in >> r >> c >> v)) {
      return Status::IoError("truncated MTX entries in " + path);
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return Status::IoError("MTX coordinate out of range in " + path);
    }
    triplets.push_back({r - 1, c - 1, v});
  }
  return Matrix(SparseMatrix::FromTriplets(rows, cols, std::move(triplets)));
}

}  // namespace hadad::matrix
