#include "matrix/generate.h"

#include <vector>

namespace hadad::matrix {

Matrix RandomDense(Rng& rng, int64_t rows, int64_t cols, double lo,
                   double hi) {
  DenseMatrix d(rows, cols);
  for (int64_t i = 0; i < d.size(); ++i) {
    d.data()[i] = rng.Uniform(lo, hi);
  }
  return Matrix(std::move(d));
}

Matrix RandomSparse(Rng& rng, int64_t rows, int64_t cols, double sparsity,
                    double lo, double hi) {
  const int64_t target =
      static_cast<int64_t>(sparsity * static_cast<double>(rows) *
                           static_cast<double>(cols));
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(target));
  for (int64_t k = 0; k < target; ++k) {
    // Duplicates are merged by FromTriplets; for the ultra-sparse regimes we
    // target, collisions are rare enough that nnz stays ~= target.
    triplets.push_back(
        {static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(rows))),
         static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(cols))),
         rng.Uniform(lo, hi)});
  }
  return Matrix(SparseMatrix::FromTriplets(rows, cols, std::move(triplets)));
}

Matrix RandomSpd(Rng& rng, int64_t n) {
  Matrix b = RandomDense(rng, n, n, -1.0, 1.0);
  Result<Matrix> btb = Multiply(Transpose(b), b);
  HADAD_CHECK(btb.ok());
  DenseMatrix out = btb->ToDense();
  for (int64_t i = 0; i < n; ++i) {
    out.At(i, i) += static_cast<double>(n);
  }
  return Matrix(std::move(out));
}

Matrix RandomInvertible(Rng& rng, int64_t n) {
  DenseMatrix d(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      d.At(i, j) = rng.Uniform(-1.0, 1.0);
    }
    // Diagonal dominance keeps the matrix far from singular.
    d.At(i, i) += static_cast<double>(n);
  }
  return Matrix(std::move(d));
}

}  // namespace hadad::matrix
