#include "matrix/sparse_matrix.h"

#include <algorithm>
#include <cmath>

namespace hadad::matrix {

SparseMatrix SparseMatrix::FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  SparseMatrix m(rows, cols);
  std::vector<int64_t> cidx;
  std::vector<double> vals;
  std::vector<int64_t> rptr(static_cast<size_t>(rows) + 1, 0);
  cidx.reserve(triplets.size());
  vals.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    const Triplet& t = triplets[i];
    HADAD_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols);
    size_t j = i + 1;
    double sum = t.value;
    while (j < triplets.size() && triplets[j].row == t.row &&
           triplets[j].col == t.col) {
      sum += triplets[j].value;
      ++j;
    }
    cidx.push_back(t.col);
    vals.push_back(sum);
    rptr[static_cast<size_t>(t.row) + 1]++;
    i = j;
  }
  for (int64_t r = 0; r < rows; ++r) {
    rptr[static_cast<size_t>(r) + 1] += rptr[static_cast<size_t>(r)];
  }
  m.row_ptr_ = std::move(rptr);
  m.col_idx_ = std::move(cidx);
  m.values_ = std::move(vals);
  m.Prune();
  return m;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense, double tol) {
  SparseMatrix m(dense.rows(), dense.cols());
  for (int64_t r = 0; r < dense.rows(); ++r) {
    for (int64_t c = 0; c < dense.cols(); ++c) {
      double v = dense.At(r, c);
      if (v != 0.0 && std::abs(v) > tol) {
        m.col_idx_.push_back(c);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.values_.size());
  }
  return m;
}

double SparseMatrix::At(int64_t r, int64_t c) const {
  HADAD_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  int64_t lo = row_ptr_[static_cast<size_t>(r)];
  int64_t hi = row_ptr_[static_cast<size_t>(r) + 1];
  auto begin = col_idx_.begin() + lo;
  auto end = col_idx_.begin() + hi;
  auto it = std::lower_bound(begin, end, c);
  if (it != end && *it == c) {
    return values_[static_cast<size_t>(it - col_idx_.begin())];
  }
  return 0.0;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix d(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      d.At(r, col_idx_[static_cast<size_t>(k)]) =
          values_[static_cast<size_t>(k)];
    }
  }
  return d;
}

SparseMatrix SparseMatrix::Transpose() const {
  SparseMatrix t(cols_, rows_);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  // Count entries per column of *this (= per row of t).
  std::vector<int64_t> count(static_cast<size_t>(cols_) + 1, 0);
  for (int64_t c : col_idx_) count[static_cast<size_t>(c) + 1]++;
  for (int64_t c = 0; c < cols_; ++c) {
    count[static_cast<size_t>(c) + 1] += count[static_cast<size_t>(c)];
  }
  t.row_ptr_ = count;
  std::vector<int64_t> next = count;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      int64_t c = col_idx_[static_cast<size_t>(k)];
      int64_t pos = next[static_cast<size_t>(c)]++;
      t.col_idx_[static_cast<size_t>(pos)] = r;
      t.values_[static_cast<size_t>(pos)] = values_[static_cast<size_t>(k)];
    }
  }
  return t;
}

void SparseMatrix::AppendRows(const SparseMatrix& rows) {
  HADAD_CHECK_EQ(cols_, rows.cols());
  const int64_t offset = nnz();
  col_idx_.insert(col_idx_.end(), rows.col_idx_.begin(), rows.col_idx_.end());
  values_.insert(values_.end(), rows.values_.begin(), rows.values_.end());
  row_ptr_.reserve(row_ptr_.size() + static_cast<size_t>(rows.rows()));
  for (int64_t r = 1; r <= rows.rows(); ++r) {
    row_ptr_.push_back(rows.row_ptr_[static_cast<size_t>(r)] + offset);
  }
  rows_ += rows.rows();
}

void SparseMatrix::TruncateRows(int64_t rows) {
  HADAD_CHECK(rows >= 0 && rows <= rows_);
  const size_t nnz = static_cast<size_t>(row_ptr_[static_cast<size_t>(rows)]);
  col_idx_.resize(nnz);
  values_.resize(nnz);
  row_ptr_.resize(static_cast<size_t>(rows) + 1);
  rows_ = rows;
}

void SparseMatrix::Prune() {
  std::vector<int64_t> cidx;
  std::vector<double> vals;
  std::vector<int64_t> rptr(static_cast<size_t>(rows_) + 1, 0);
  cidx.reserve(col_idx_.size());
  vals.reserve(values_.size());
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[static_cast<size_t>(r)];
         k < row_ptr_[static_cast<size_t>(r) + 1]; ++k) {
      if (values_[static_cast<size_t>(k)] != 0.0) {
        cidx.push_back(col_idx_[static_cast<size_t>(k)]);
        vals.push_back(values_[static_cast<size_t>(k)]);
      }
    }
    rptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(vals.size());
  }
  row_ptr_ = std::move(rptr);
  col_idx_ = std::move(cidx);
  values_ = std::move(vals);
}

std::vector<int64_t> SparseMatrix::RowNnzCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(rows_), 0);
  for (int64_t r = 0; r < rows_; ++r) {
    counts[static_cast<size_t>(r)] = row_ptr_[static_cast<size_t>(r) + 1] -
                                     row_ptr_[static_cast<size_t>(r)];
  }
  return counts;
}

std::vector<int64_t> SparseMatrix::ColNnzCounts() const {
  std::vector<int64_t> counts(static_cast<size_t>(cols_), 0);
  for (int64_t c : col_idx_) counts[static_cast<size_t>(c)]++;
  return counts;
}

}  // namespace hadad::matrix
