#ifndef HADAD_MATRIX_DENSE_MATRIX_H_
#define HADAD_MATRIX_DENSE_MATRIX_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace hadad::matrix {

// Row-major dense matrix of doubles. Scalars are represented as 1x1 matrices
// (the paper treats numbers as degenerate 1x1 matrices, §3).
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}
  DenseMatrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
    data_.assign(CheckedCells(rows, cols), 0.0);
  }
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    HADAD_CHECK_EQ(data_.size(), CheckedCells(rows, cols));
  }

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) = default;
  DenseMatrix& operator=(DenseMatrix&&) = default;

  // A 1x1 matrix holding `v` (scalar lifting).
  static DenseMatrix Scalar(double v) {
    DenseMatrix m(1, 1);
    m.At(0, 0) = v;
    return m;
  }

  static DenseMatrix Identity(int64_t n) {
    DenseMatrix m(n, n);
    for (int64_t i = 0; i < n; ++i) m.At(i, i) = 1.0;
    return m;
  }

  static DenseMatrix Zero(int64_t rows, int64_t cols) {
    return DenseMatrix(rows, cols);
  }

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double At(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double& At(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }
  const double* row(int64_t r) const { return data() + r * cols_; }
  double* row(int64_t r) { return data() + r * cols_; }

  // Number of non-zero entries (exact count).
  int64_t CountNonZeros() const;

  // Appends the rows of `rows` below this matrix (column counts must match).
  void AppendRows(const DenseMatrix& rows);

  // Keeps the first `rows` rows, discarding the rest (the inverse of
  // AppendRows — mutation rollback uses it).
  void TruncateRows(int64_t rows);

  // Validates a rows x cols shape and returns its cell count. The product
  // is formed in size_t (each factor cast *before* multiplying — the naive
  // `rows * cols` overflows int64_t first on huge shapes, which is UB) and
  // checked to fit, so every constructor rejects shapes whose cell count
  // cannot be represented instead of silently allocating a wrapped size.
  static size_t CheckedCells(int64_t rows, int64_t cols) {
    HADAD_CHECK_GE(rows, 0);
    HADAD_CHECK_GE(cols, 0);
    const size_t cells = static_cast<size_t>(rows) * static_cast<size_t>(cols);
    HADAD_CHECK_MSG(
        rows == 0 || (cells / static_cast<size_t>(rows) ==
                          static_cast<size_t>(cols) &&
                      cells <= static_cast<size_t>(
                                   std::numeric_limits<int64_t>::max())),
        "rows * cols overflows");
    return cells;
  }

  // True iff every cell differs from `other` by at most `tol`.
  bool ApproxEquals(const DenseMatrix& other, double tol = 1e-9) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_DENSE_MATRIX_H_
