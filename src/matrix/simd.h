#ifndef HADAD_MATRIX_SIMD_H_
#define HADAD_MATRIX_SIMD_H_

#include <cstdint>

namespace hadad::matrix {

// ---------------------------------------------------------------------------
// SIMD kernel tier with runtime CPU dispatch.
// ---------------------------------------------------------------------------
// The cache-blocked kernels and the fused-elementwise interpreter in
// blocked_kernels.cc route their innermost row loops through the function
// pointers below. The tier is selected ONCE per process, at first use, from
// runtime CPU-feature detection (overridable by environment variable), so
// one binary runs the widest vector width the host supports and still falls
// back to plain scalar C++ anywhere else.
//
// Bit-identity contract: every vector implementation performs EXACTLY the
// per-element operation sequence of the scalar reference — a separately
// rounded IEEE-754 multiply followed by a separately rounded add, lane by
// lane (the translation unit is compiled with -ffp-contract=off so neither
// the vector bodies nor the scalar tails can be contracted into FMA, whose
// single rounding would change low bits). Only loops whose iterations are
// independent per element are dispatched; every sequential reduction fold
// (rowSums/sum epilogues) stays scalar in blocked_kernels.cc. Consequently
// all tiers produce bit-for-bit identical results, and the existing
// fusion/thread-count bit-identity suites hold under any tier.
enum class SimdTier {
  kScalar = 0,  // Portable reference; always available.
  kAvx2 = 1,    // 4-wide doubles (ymm), x86-64 with AVX2.
  kAvx512 = 2,  // 8-wide doubles (zmm) with masked tails, x86-64 AVX-512F.
};

// "scalar" | "avx2" | "avx512" — stable strings used by metrics, spans,
// ExplainAnalyze, and the HADAD_SIMD_TIER override.
const char* TierName(SimdTier tier);

// Row-microkernel dispatch table of one tier. All pointers are non-null in
// every tier. `d` may alias `a` or `b` exactly (same base pointer); partial
// overlap is not supported.
struct SimdOps {
  SimdTier tier = SimdTier::kScalar;
  // out[j] += a * x[j] — the GEMM/SpMM inner loop (axpy epilogue seam).
  void (*axpy)(double* out, const double* x, double a, int64_t n) = nullptr;
  // d[j] = a[j] + b[j] / d[j] = a[j] * b[j] — fused-elementwise vector ops.
  void (*add_vv)(double* d, const double* a, const double* b,
                 int64_t n) = nullptr;
  void (*mul_vv)(double* d, const double* a, const double* b,
                 int64_t n) = nullptr;
  // d[j] = v[j] + s / d[j] = v[j] * s — scalar-broadcast forms.
  void (*add_vs)(double* d, const double* v, double s, int64_t n) = nullptr;
  void (*mul_vs)(double* d, const double* v, double s, int64_t n) = nullptr;
  // Inner-dimension (k) block depth for the cache-blocked GEMM: how many
  // rows of `b` stay hot while a chunk of output rows accumulates. Tunable
  // per tier; 256 measured best for every tier on the bench_simd_kernels
  // GEMM workloads (deeper tiles fell out of L2). Never affects results —
  // a cell's ascending-k accumulation order is tile-independent.
  int64_t k_tile = 256;
};

// The widest tier this CPU supports (pure CPUID probe, no env overrides).
SimdTier DetectedCpuTier();

// Applies the environment policy to a detected tier. Pure function, exposed
// for tests: `force_scalar` (HADAD_FORCE_SCALAR) set to "1" wins and pins
// kScalar; otherwise `tier_name` (HADAD_SIMD_TIER) of "scalar"/"avx2"/
// "avx512" requests that tier, clamped to `detected` (never selects an
// unsupported tier); unset/unknown values keep `detected`. Null pointers
// mean "variable unset".
SimdTier ResolveTier(SimdTier detected, const char* force_scalar,
                     const char* tier_name);

// The tier the process resolved at first use: ResolveTier(DetectedCpuTier(),
// getenv("HADAD_FORCE_SCALAR"), getenv("HADAD_SIMD_TIER")).
SimdTier ActiveTier();

// The dispatch table of ActiveTier(). Kernels read this once per call.
const SimdOps& ActiveOps();

// The dispatch table of any tier, clamped to DetectedCpuTier() (asking for
// kAvx512 on a non-AVX-512 host returns the widest supported table). The
// scalar table is always the portable reference.
const SimdOps& OpsForTier(SimdTier tier);

// Test-only: forces ActiveTier()/ActiveOps() to `tier` (clamped to the
// CPU's capability) for this object's lifetime, restoring the previous
// selection on destruction. Not thread-safe against concurrently running
// kernels — single-threaded test setup only.
class ScopedTierOverride {
 public:
  explicit ScopedTierOverride(SimdTier tier);
  ~ScopedTierOverride();
  ScopedTierOverride(const ScopedTierOverride&) = delete;
  ScopedTierOverride& operator=(const ScopedTierOverride&) = delete;

 private:
  const SimdOps* previous_;
};

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_SIMD_H_
