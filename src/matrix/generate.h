#ifndef HADAD_MATRIX_GENERATE_H_
#define HADAD_MATRIX_GENERATE_H_

#include <cstdint>

#include "common/rng.h"
#include "matrix/matrix.h"

namespace hadad::matrix {

// Dense matrix with i.i.d. uniform entries in [lo, hi).
Matrix RandomDense(Rng& rng, int64_t rows, int64_t cols, double lo = 0.0,
                   double hi = 1.0);

// Sparse matrix with the given fraction of non-zero cells (each non-zero
// uniform in [lo, hi)). `sparsity` is the non-zero fraction in [0, 1], the
// same convention as Table 4's S_X column.
Matrix RandomSparse(Rng& rng, int64_t rows, int64_t cols, double sparsity,
                    double lo = 0.1, double hi = 1.0);

// Symmetric positive definite n x n matrix (B^T B + n I for random B) —
// always Cholesky-decomposable and comfortably invertible.
Matrix RandomSpd(Rng& rng, int64_t n);

// Well-conditioned square matrix (diagonally dominated random matrix), for
// pipelines that apply inverses/determinants.
Matrix RandomInvertible(Rng& rng, int64_t n);

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_GENERATE_H_
