#include "matrix/decompositions.h"

#include <cmath>

namespace hadad::matrix {

Result<LuResult> LuDecompose(const Matrix& m) {
  if (!m.IsSquare()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const int64_t n = m.rows();
  DenseMatrix a = m.ToDense();
  DenseMatrix l = DenseMatrix::Identity(n);
  DenseMatrix u(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      double s = a.At(i, j);
      for (int64_t k = 0; k < i; ++k) s -= l.At(i, k) * u.At(k, j);
      u.At(i, j) = s;
    }
    if (std::fabs(u.At(i, i)) < 1e-13) {
      return Status::NotSupported(
          "LU without pivoting hit a zero pivot; use PLU");
    }
    for (int64_t j = i + 1; j < n; ++j) {
      double s = a.At(j, i);
      for (int64_t k = 0; k < i; ++k) s -= l.At(j, k) * u.At(k, i);
      l.At(j, i) = s / u.At(i, i);
    }
  }
  return LuResult{Matrix(std::move(l)), Matrix(std::move(u))};
}

Result<PluResult> PluDecompose(const Matrix& m) {
  if (!m.IsSquare()) {
    return Status::InvalidArgument("PLU requires a square matrix");
  }
  const int64_t n = m.rows();
  DenseMatrix a = m.ToDense();
  PluResult out;
  out.perm.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.perm[static_cast<size_t>(i)] = i;
  out.sign = 1.0;
  for (int64_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest remaining entry in this column.
    int64_t pivot = col;
    double best = std::fabs(a.At(col, col));
    for (int64_t r = col + 1; r < n; ++r) {
      if (std::fabs(a.At(r, col)) > best) {
        best = std::fabs(a.At(r, col));
        pivot = r;
      }
    }
    if (pivot != col) {
      for (int64_t j = 0; j < n; ++j) {
        std::swap(a.At(col, j), a.At(pivot, j));
      }
      std::swap(out.perm[static_cast<size_t>(col)],
                out.perm[static_cast<size_t>(pivot)]);
      out.sign = -out.sign;
    }
    const double p = a.At(col, col);
    if (p == 0.0) continue;  // Singular; U keeps the zero pivot.
    for (int64_t r = col + 1; r < n; ++r) {
      const double f = a.At(r, col) / p;
      a.At(r, col) = f;  // Store the L multiplier in place.
      for (int64_t j = col + 1; j < n; ++j) {
        a.At(r, j) -= f * a.At(col, j);
      }
    }
  }
  DenseMatrix l = DenseMatrix::Identity(n);
  DenseMatrix u(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (j < i) {
        l.At(i, j) = a.At(i, j);
      } else {
        u.At(i, j) = a.At(i, j);
      }
    }
  }
  out.l = Matrix(std::move(l));
  out.u = Matrix(std::move(u));
  return out;
}

Result<QrResult> QrDecompose(const Matrix& m) {
  if (!m.IsSquare()) {
    return Status::InvalidArgument("QR (as encoded in VREM) requires square");
  }
  const int64_t n = m.rows();
  DenseMatrix r = m.ToDense();
  DenseMatrix q = DenseMatrix::Identity(n);
  std::vector<double> v(static_cast<size_t>(n));
  for (int64_t col = 0; col < n - 1; ++col) {
    // If the column is already eliminated below the diagonal, skip the
    // reflection. This keeps QR(I) = [I, I] and QR(U) = [I, U] — the fixed
    // points the paper's MMC constraints (7)-(9) rely on.
    double below = 0.0;
    for (int64_t i = col + 1; i < n; ++i) {
      below += r.At(i, col) * r.At(i, col);
    }
    if (below < 1e-28) continue;
    // Householder vector for column `col` below the diagonal.
    double norm = below + r.At(col, col) * r.At(col, col);
    norm = std::sqrt(norm);
    if (norm < 1e-14) continue;
    const double alpha = (r.At(col, col) > 0) ? -norm : norm;
    // v = x - alpha * e1 over the trailing block.
    double vnorm_sq = 0.0;
    for (int64_t i = col; i < n; ++i) {
      v[static_cast<size_t>(i)] = r.At(i, col) - ((i == col) ? alpha : 0.0);
      vnorm_sq += v[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
    }
    if (vnorm_sq < 1e-28) continue;
    const double beta = 2.0 / vnorm_sq;
    // R <- (I - beta v v^T) R over rows col..n-1.
    for (int64_t j = col; j < n; ++j) {
      double dot = 0.0;
      for (int64_t i = col; i < n; ++i) {
        dot += v[static_cast<size_t>(i)] * r.At(i, j);
      }
      dot *= beta;
      for (int64_t i = col; i < n; ++i) {
        r.At(i, j) -= dot * v[static_cast<size_t>(i)];
      }
    }
    // Q <- Q (I - beta v v^T).
    for (int64_t i = 0; i < n; ++i) {
      double dot = 0.0;
      for (int64_t jj = col; jj < n; ++jj) {
        dot += q.At(i, jj) * v[static_cast<size_t>(jj)];
      }
      dot *= beta;
      for (int64_t jj = col; jj < n; ++jj) {
        q.At(i, jj) -= dot * v[static_cast<size_t>(jj)];
      }
    }
  }
  // Zero out numerical noise below the diagonal of R.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < i; ++j) r.At(i, j) = 0.0;
  }
  return QrResult{Matrix(std::move(q)), Matrix(std::move(r))};
}

Result<Matrix> CholeskyDecompose(const Matrix& m) {
  if (!m.IsSquare()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (!IsSymmetric(m, 1e-8)) {
    return Status::InvalidArgument("Cholesky requires a symmetric matrix");
  }
  const int64_t n = m.rows();
  DenseMatrix a = m.ToDense();
  DenseMatrix l(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double s = a.At(i, j);
      for (int64_t k = 0; k < j; ++k) s -= l.At(i, k) * l.At(j, k);
      if (i == j) {
        if (s <= 0.0) {
          return Status::InvalidArgument(
              "Cholesky requires positive definiteness");
        }
        l.At(i, j) = std::sqrt(s);
      } else {
        l.At(i, j) = s / l.At(j, j);
      }
    }
  }
  return Matrix(std::move(l));
}

bool IsSymmetric(const Matrix& m, double tol) {
  if (!m.IsSquare()) return false;
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = i + 1; j < m.cols(); ++j) {
      if (std::fabs(m.At(i, j) - m.At(j, i)) > tol) return false;
    }
  }
  return true;
}

bool IsLowerTriangular(const Matrix& m, double tol) {
  if (!m.IsSquare()) return false;
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = i + 1; j < m.cols(); ++j) {
      if (std::fabs(m.At(i, j)) > tol) return false;
    }
  }
  return true;
}

bool IsUpperTriangular(const Matrix& m, double tol) {
  if (!m.IsSquare()) return false;
  for (int64_t i = 0; i < m.rows(); ++i) {
    for (int64_t j = 0; j < i; ++j) {
      if (std::fabs(m.At(i, j)) > tol) return false;
    }
  }
  return true;
}

bool IsOrthogonal(const Matrix& m, double tol) {
  if (!m.IsSquare()) return false;
  auto prod = Multiply(Transpose(m), m);
  if (!prod.ok()) return false;
  return prod->ApproxEquals(Matrix::Identity(m.rows()), tol);
}

}  // namespace hadad::matrix
