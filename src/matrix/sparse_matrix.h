#ifndef HADAD_MATRIX_SPARSE_MATRIX_H_
#define HADAD_MATRIX_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "matrix/dense_matrix.h"

namespace hadad::matrix {

// One (row, col, value) entry; used to build sparse matrices.
struct Triplet {
  int64_t row;
  int64_t col;
  double value;
};

// Compressed Sparse Row matrix of doubles. Invariants: row_ptr has
// rows()+1 entries; column indices within each row are strictly increasing;
// stored values may include explicit zeros only transiently (Prune() drops
// them).
class SparseMatrix {
 public:
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}
  SparseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        row_ptr_(static_cast<size_t>(rows) + 1, 0) {}

  // Builds from unsorted triplets; duplicate coordinates are summed.
  static SparseMatrix FromTriplets(int64_t rows, int64_t cols,
                                   std::vector<Triplet> triplets);

  static SparseMatrix FromDense(const DenseMatrix& dense, double tol = 0.0);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  // Value at (r, c); O(log nnz_row).
  double At(int64_t r, int64_t c) const;

  DenseMatrix ToDense() const;

  // Transpose (CSR of the transposed matrix), O(nnz).
  SparseMatrix Transpose() const;

  // Appends the rows of `rows` below this matrix (column counts must
  // match); O(nnz(rows)) — existing storage is untouched.
  void AppendRows(const SparseMatrix& rows);

  // Keeps the first `rows` rows, discarding the rest (the inverse of
  // AppendRows — mutation rollback uses it).
  void TruncateRows(int64_t rows);

  // Drops stored zeros.
  void Prune();

  // Fraction of non-zero cells, in [0, 1].
  double Sparsity() const {
    int64_t cells = rows_ * cols_;
    return cells == 0 ? 0.0 : static_cast<double>(nnz()) / cells;
  }

  // Non-zero counts per row / per column (the MNC estimator's h^r, h^c).
  std::vector<int64_t> RowNnzCounts() const;
  std::vector<int64_t> ColNnzCounts() const;

 private:
  friend class SparseBuilder;

  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_SPARSE_MATRIX_H_
