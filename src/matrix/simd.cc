// SIMD tier implementations + runtime dispatch. See simd.h for the
// bit-identity contract; this file MUST be compiled with -ffp-contract=off
// (CMake pins it) so no multiply-add — vector body or scalar tail — is
// contracted into a single-rounded FMA.

#include "matrix/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HADAD_SIMD_X86 1
#include <immintrin.h>
#else
#define HADAD_SIMD_X86 0
#endif

namespace hadad::matrix {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference tier. These loops define the semantics every vector
// tier must reproduce bit for bit.
// ---------------------------------------------------------------------------

void AxpyScalar(double* out, const double* x, double a, int64_t n) {
  for (int64_t j = 0; j < n; ++j) out[j] += a * x[j];
}
void AddVvScalar(double* d, const double* a, const double* b, int64_t n) {
  for (int64_t j = 0; j < n; ++j) d[j] = a[j] + b[j];
}
void MulVvScalar(double* d, const double* a, const double* b, int64_t n) {
  for (int64_t j = 0; j < n; ++j) d[j] = a[j] * b[j];
}
void AddVsScalar(double* d, const double* v, double s, int64_t n) {
  for (int64_t j = 0; j < n; ++j) d[j] = v[j] + s;
}
void MulVsScalar(double* d, const double* v, double s, int64_t n) {
  for (int64_t j = 0; j < n; ++j) d[j] = v[j] * s;
}

constexpr SimdOps kScalarOps = {
    SimdTier::kScalar, AxpyScalar,  AddVvScalar,
    MulVvScalar,       AddVsScalar, MulVsScalar,
    /*k_tile=*/256,
};

#if HADAD_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 tier: 4-wide ymm, unaligned loads (rows are only 8-byte aligned),
// scalar tails. Separate mul/add intrinsics — never fmadd.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void AxpyAvx2(double* out, const double* x,
                                              double a, int64_t n) {
  const __m256d av = _mm256_set1_pd(a);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256d prod = _mm256_mul_pd(av, _mm256_loadu_pd(x + j));
    _mm256_storeu_pd(out + j, _mm256_add_pd(_mm256_loadu_pd(out + j), prod));
  }
  for (; j < n; ++j) out[j] += a * x[j];
}

__attribute__((target("avx2"))) void AddVvAvx2(double* d, const double* a,
                                               const double* b, int64_t n) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        d + j, _mm256_add_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
  }
  for (; j < n; ++j) d[j] = a[j] + b[j];
}

__attribute__((target("avx2"))) void MulVvAvx2(double* d, const double* a,
                                               const double* b, int64_t n) {
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(
        d + j, _mm256_mul_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j)));
  }
  for (; j < n; ++j) d[j] = a[j] * b[j];
}

__attribute__((target("avx2"))) void AddVsAvx2(double* d, const double* v,
                                               double s, int64_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(d + j, _mm256_add_pd(_mm256_loadu_pd(v + j), sv));
  }
  for (; j < n; ++j) d[j] = v[j] + s;
}

__attribute__((target("avx2"))) void MulVsAvx2(double* d, const double* v,
                                               double s, int64_t n) {
  const __m256d sv = _mm256_set1_pd(s);
  int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    _mm256_storeu_pd(d + j, _mm256_mul_pd(_mm256_loadu_pd(v + j), sv));
  }
  for (; j < n; ++j) d[j] = v[j] * s;
}

constexpr SimdOps kAvx2Ops = {
    SimdTier::kAvx2, AxpyAvx2,  AddVvAvx2,
    MulVvAvx2,       AddVsAvx2, MulVsAvx2,
    /*k_tile=*/256,
};

// ---------------------------------------------------------------------------
// AVX-512F tier: 8-wide zmm with masked tails — odd row widths never touch
// a scalar loop, the tail lanes just run under a write mask.
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) inline __mmask8 TailMask(int64_t rem) {
  return static_cast<__mmask8>((1u << rem) - 1u);
}

__attribute__((target("avx512f"))) void AxpyAvx512(double* out,
                                                   const double* x, double a,
                                                   int64_t n) {
  const __m512d av = _mm512_set1_pd(a);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m512d prod = _mm512_mul_pd(av, _mm512_loadu_pd(x + j));
    _mm512_storeu_pd(out + j, _mm512_add_pd(_mm512_loadu_pd(out + j), prod));
  }
  if (j < n) {
    const __mmask8 m = TailMask(n - j);
    const __m512d prod = _mm512_mul_pd(av, _mm512_maskz_loadu_pd(m, x + j));
    _mm512_mask_storeu_pd(
        out + j, m, _mm512_add_pd(_mm512_maskz_loadu_pd(m, out + j), prod));
  }
}

__attribute__((target("avx512f"))) void AddVvAvx512(double* d, const double* a,
                                                    const double* b,
                                                    int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(
        d + j, _mm512_add_pd(_mm512_loadu_pd(a + j), _mm512_loadu_pd(b + j)));
  }
  if (j < n) {
    const __mmask8 m = TailMask(n - j);
    _mm512_mask_storeu_pd(d + j, m,
                          _mm512_add_pd(_mm512_maskz_loadu_pd(m, a + j),
                                        _mm512_maskz_loadu_pd(m, b + j)));
  }
}

__attribute__((target("avx512f"))) void MulVvAvx512(double* d, const double* a,
                                                    const double* b,
                                                    int64_t n) {
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(
        d + j, _mm512_mul_pd(_mm512_loadu_pd(a + j), _mm512_loadu_pd(b + j)));
  }
  if (j < n) {
    const __mmask8 m = TailMask(n - j);
    _mm512_mask_storeu_pd(d + j, m,
                          _mm512_mul_pd(_mm512_maskz_loadu_pd(m, a + j),
                                        _mm512_maskz_loadu_pd(m, b + j)));
  }
}

__attribute__((target("avx512f"))) void AddVsAvx512(double* d, const double* v,
                                                    double s, int64_t n) {
  const __m512d sv = _mm512_set1_pd(s);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(d + j, _mm512_add_pd(_mm512_loadu_pd(v + j), sv));
  }
  if (j < n) {
    const __mmask8 m = TailMask(n - j);
    _mm512_mask_storeu_pd(
        d + j, m, _mm512_add_pd(_mm512_maskz_loadu_pd(m, v + j), sv));
  }
}

__attribute__((target("avx512f"))) void MulVsAvx512(double* d, const double* v,
                                                    double s, int64_t n) {
  const __m512d sv = _mm512_set1_pd(s);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    _mm512_storeu_pd(d + j, _mm512_mul_pd(_mm512_loadu_pd(v + j), sv));
  }
  if (j < n) {
    const __mmask8 m = TailMask(n - j);
    _mm512_mask_storeu_pd(
        d + j, m, _mm512_mul_pd(_mm512_maskz_loadu_pd(m, v + j), sv));
  }
}

// Same k-tile as the other tiers: measured on the bench_simd_kernels GEMM
// workloads (and a deep-k 2400-inner probe), doubling the tile to 512 ran
// ~5-10% SLOWER — 256 rows of `b` already fill L2, and a deeper tile only
// widens the reuse distance of the output-row chunk. Re-measure before
// changing; the tile depth never affects results, only speed.
constexpr SimdOps kAvx512Ops = {
    SimdTier::kAvx512, AxpyAvx512,  AddVvAvx512,
    MulVvAvx512,       AddVsAvx512, MulVsAvx512,
    /*k_tile=*/256,
};

#endif  // HADAD_SIMD_X86

const SimdOps& TableFor(SimdTier tier) {
#if HADAD_SIMD_X86
  switch (tier) {
    case SimdTier::kAvx512: return kAvx512Ops;
    case SimdTier::kAvx2: return kAvx2Ops;
    case SimdTier::kScalar: return kScalarOps;
  }
#else
  (void)tier;
#endif
  return kScalarOps;
}

// The active dispatch table. Initialized on first use from CPU detection +
// env policy; ScopedTierOverride swaps it for tests. Relaxed loads are
// enough: after the one-time lazy init the pointer only changes under
// test-controlled single-threaded sections.
std::atomic<const SimdOps*> g_active_ops{nullptr};

const SimdOps* InitActiveOps() {
  const SimdOps* ops = &TableFor(ResolveTier(DetectedCpuTier(),
                                             std::getenv("HADAD_FORCE_SCALAR"),
                                             std::getenv("HADAD_SIMD_TIER")));
  const SimdOps* expected = nullptr;
  // First caller wins; a racing caller adopts whatever was published.
  g_active_ops.compare_exchange_strong(expected, ops,
                                       std::memory_order_acq_rel);
  return g_active_ops.load(std::memory_order_acquire);
}

}  // namespace

const char* TierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "unknown";
}

SimdTier DetectedCpuTier() {
#if HADAD_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kScalar;
}

SimdTier ResolveTier(SimdTier detected, const char* force_scalar,
                     const char* tier_name) {
  if (force_scalar != nullptr && std::strcmp(force_scalar, "1") == 0) {
    return SimdTier::kScalar;
  }
  if (tier_name != nullptr) {
    const std::string name = tier_name;
    SimdTier requested = detected;
    if (name == "scalar") {
      requested = SimdTier::kScalar;
    } else if (name == "avx2") {
      requested = SimdTier::kAvx2;
    } else if (name == "avx512") {
      requested = SimdTier::kAvx512;
    }
    // Clamp: never select a tier the CPU cannot execute.
    return requested <= detected ? requested : detected;
  }
  return detected;
}

const SimdOps& ActiveOps() {
  const SimdOps* ops = g_active_ops.load(std::memory_order_acquire);
  if (ops == nullptr) ops = InitActiveOps();
  return *ops;
}

SimdTier ActiveTier() { return ActiveOps().tier; }

const SimdOps& OpsForTier(SimdTier tier) {
  const SimdTier detected = DetectedCpuTier();
  return TableFor(tier <= detected ? tier : detected);
}

ScopedTierOverride::ScopedTierOverride(SimdTier tier)
    : previous_(&ActiveOps()) {
  g_active_ops.store(&OpsForTier(tier), std::memory_order_release);
}

ScopedTierOverride::~ScopedTierOverride() {
  g_active_ops.store(previous_, std::memory_order_release);
}

}  // namespace hadad::matrix
