#include "matrix/blocked_kernels.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/check.h"
#include "matrix/simd.h"

namespace hadad::matrix {

namespace {

void RunRange(const RangeRunner& runner, int64_t n,
              const std::function<void(int64_t, int64_t)>& body) {
  if (runner) {
    runner(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace

DenseMatrix MultiplyDenseBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                 const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  const int64_t k = a.cols();
  const int64_t m = b.cols();
  // Row microkernels + inner-dimension tile depth of the active SIMD tier:
  // ops.k_tile rows of `b` stay hot while a chunk of output rows
  // accumulates. Tiling and dispatch never reorder a cell's ascending-k
  // accumulation, so results are tier- and partition-independent.
  const SimdOps& ops = ActiveOps();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; kk += ops.k_tile) {
      const int64_t kend = std::min(k, kk + ops.k_tile);
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* out_row = out.row(i);
        const double* a_row = a.row(i);
        for (int64_t p = kk; p < kend; ++p) {
          const double av = a_row[p];
          if (av == 0.0) continue;
          ops.axpy(out_row, b.row(p), av, m);
        }
      }
    }
  });
  return out;
}

DenseMatrix MultiplyTransposedDenseBlocked(const DenseMatrix& a,
                                           const DenseMatrix& b,
                                           const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.rows(), b.rows());
  DenseMatrix out(a.cols(), b.cols());
  const int64_t k = a.rows();  // Shared dimension: rows of both inputs.
  const int64_t m = b.cols();
  const SimdOps& ops = ActiveOps();
  RunRange(runner, a.cols(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; kk += ops.k_tile) {
      const int64_t kend = std::min(k, kk + ops.k_tile);
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* out_row = out.row(i);
        for (int64_t p = kk; p < kend; ++p) {
          const double av = a.At(p, i);
          if (av == 0.0) continue;
          ops.axpy(out_row, b.row(p), av, m);
        }
      }
    }
  });
  return out;
}

DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a,
                                        const DenseMatrix& b,
                                        const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  const int64_t m = b.cols();
  const auto& rptr = a.row_ptr();
  const auto& cidx = a.col_idx();
  const auto& vals = a.values();
  const SimdOps& ops = ActiveOps();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      double* out_row = out.row(i);
      for (int64_t p = rptr[static_cast<size_t>(i)];
           p < rptr[static_cast<size_t>(i) + 1]; ++p) {
        ops.axpy(out_row, b.row(cidx[static_cast<size_t>(p)]),
                 vals[static_cast<size_t>(p)], m);
      }
    }
  });
  return out;
}

SparseMatrix MultiplySparseSparseParallel(const SparseMatrix& a,
                                          const SparseMatrix& b,
                                          const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  const auto& a_rptr = a.row_ptr();
  const auto& a_cidx = a.col_idx();
  const auto& a_vals = a.values();
  const auto& b_rptr = b.row_ptr();
  const auto& b_cidx = b.col_idx();
  const auto& b_vals = b.values();

  // Each chunk owns a private accumulator and triplet buffer. Determinism
  // does not depend on chunk completion order: every output row is
  // produced by exactly one chunk with the sequential per-row accumulation
  // order, and FromTriplets sorts by (row, col) — so the assembled result
  // is bit-identical to the sequential kernel however the buffers land.
  std::mutex mu;
  std::vector<Triplet> triplets;
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    std::vector<Triplet> buf;
    std::vector<double> acc(static_cast<size_t>(b.cols()), 0.0);
    std::vector<int64_t> touched;
    for (int64_t i = row_begin; i < row_end; ++i) {
      touched.clear();
      for (int64_t p = a_rptr[static_cast<size_t>(i)];
           p < a_rptr[static_cast<size_t>(i) + 1]; ++p) {
        const double av = a_vals[static_cast<size_t>(p)];
        const int64_t k = a_cidx[static_cast<size_t>(p)];
        for (int64_t q = b_rptr[static_cast<size_t>(k)];
             q < b_rptr[static_cast<size_t>(k) + 1]; ++q) {
          const int64_t j = b_cidx[static_cast<size_t>(q)];
          if (acc[static_cast<size_t>(j)] == 0.0) touched.push_back(j);
          acc[static_cast<size_t>(j)] += av * b_vals[static_cast<size_t>(q)];
        }
      }
      for (int64_t j : touched) {
        if (acc[static_cast<size_t>(j)] != 0.0) {
          buf.push_back({i, j, acc[static_cast<size_t>(j)]});
        }
        acc[static_cast<size_t>(j)] = 0.0;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    triplets.insert(triplets.end(), buf.begin(), buf.end());
  });
  return SparseMatrix::FromTriplets(a.rows(), b.cols(), std::move(triplets));
}

namespace {

// Computes row `i` of a * b into `out_row` (length b.cols()), matching
// MultiplyDenseBlocked's per-cell bits: ascending-k accumulation with the
// zero-skip on a's entries (k-tiling never reorders a single cell's sum).
void ProductRow(const DenseMatrix& a, const DenseMatrix& b, int64_t i,
                double* out_row, const SimdOps& ops) {
  const int64_t k = a.cols();
  const int64_t m = b.cols();
  std::fill(out_row, out_row + m, 0.0);
  const double* a_row = a.row(i);
  for (int64_t p = 0; p < k; ++p) {
    const double av = a_row[p];
    if (av == 0.0) continue;
    ops.axpy(out_row, b.row(p), av, m);
  }
}

}  // namespace

DenseMatrix EvalFusedElementwise(const FusedElementwiseProgram& program,
                                 const std::vector<FusedInput>& inputs,
                                 int64_t rows, int64_t cols,
                                 const RangeRunner& runner) {
  DenseMatrix out(rows, cols);
  const size_t scratch_count = static_cast<size_t>(program.max_stack);
  const SimdOps& ops = ActiveOps();
  RunRange(runner, rows, [&](int64_t row_begin, int64_t row_end) {
    // One operand-stack value: a row view (borrowed input row or owned
    // scratch buffer) or a broadcast scalar.
    struct Val {
      const double* vec = nullptr;  // Null: broadcast scalar.
      double scalar = 0.0;
      int owned = -1;  // Scratch index backing `vec`, or -1 if borrowed.
    };
    std::vector<std::vector<double>> scratch(
        scratch_count, std::vector<double>(static_cast<size_t>(cols)));
    std::vector<Val> stack;
    std::vector<int> free_bufs;
    stack.reserve(scratch_count);
    for (int64_t i = row_begin; i < row_end; ++i) {
      stack.clear();
      free_bufs.clear();
      for (size_t s = 0; s < scratch_count; ++s) {
        free_bufs.push_back(static_cast<int>(s));
      }
      for (const FusedStep& step : program.steps) {
        switch (step.code) {
          case FusedStep::Code::kPushInput: {
            const FusedInput& in = inputs[static_cast<size_t>(step.input)];
            if (in.dense != nullptr) {
              stack.push_back(Val{in.dense->row(i), 0.0, -1});
            } else {
              stack.push_back(Val{nullptr, in.scalar, -1});
            }
            break;
          }
          case FusedStep::Code::kPushConst:
            stack.push_back(Val{nullptr, step.value, -1});
            break;
          case FusedStep::Code::kAdd:
          case FusedStep::Code::kMul: {
            const Val b = stack.back();
            stack.pop_back();
            const Val a = stack.back();
            stack.pop_back();
            const bool mul = step.code == FusedStep::Code::kMul;
            if (a.vec == nullptr && b.vec == nullptr) {
              // Scalar (x) scalar: the same value for every element, so one
              // evaluation matches the per-element result exactly.
              stack.push_back(Val{nullptr,
                                  mul ? a.scalar * b.scalar
                                      : a.scalar + b.scalar,
                                  -1});
              break;
            }
            // Reuse an operand's scratch as the destination when possible;
            // in-place is safe (element j reads only element j).
            int dest;
            if (a.owned >= 0) {
              dest = a.owned;
              if (b.owned >= 0) free_bufs.push_back(b.owned);
            } else if (b.owned >= 0) {
              dest = b.owned;
            } else {
              dest = free_bufs.back();
              free_bufs.pop_back();
            }
            double* d = scratch[static_cast<size_t>(dest)].data();
            // Dispatched row ops; `d` may exactly alias an operand (in-place
            // reuse above), which the SimdOps contract permits.
            if (a.vec != nullptr && b.vec != nullptr) {
              (mul ? ops.mul_vv : ops.add_vv)(d, a.vec, b.vec, cols);
            } else {
              const double* v = a.vec != nullptr ? a.vec : b.vec;
              const double s = a.vec != nullptr ? b.scalar : a.scalar;
              (mul ? ops.mul_vs : ops.add_vs)(d, v, s, cols);
            }
            stack.push_back(Val{d, 0.0, dest});
            break;
          }
        }
      }
      HADAD_CHECK_MSG(stack.size() == 1 && stack.back().vec != nullptr,
                      "fused elementwise program left a non-vector result");
      const double* result = stack.back().vec;
      std::copy(result, result + cols, out.row(i));
    }
  });
  return out;
}

DenseMatrix GemmRowSums(const DenseMatrix& a, const DenseMatrix& b,
                        const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), 1);
  const int64_t m = b.cols();
  const SimdOps& ops = ActiveOps();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    std::vector<double> buf(static_cast<size_t>(m));
    for (int64_t i = row_begin; i < row_end; ++i) {
      ProductRow(a, b, i, buf.data(), ops);
      double acc = 0.0;
      for (int64_t j = 0; j < m; ++j) acc += buf[static_cast<size_t>(j)];
      out.At(i, 0) = acc;
    }
  });
  return out;
}

DenseMatrix GemmColSums(const DenseMatrix& a, const DenseMatrix& b,
                        const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(1, b.cols());
  const int64_t n = a.rows();
  const int64_t k = a.cols();
  // Partition the OUTPUT COLUMNS: each chunk accumulates its columns over
  // every row in ascending order — the exact per-column association of
  // ColSums over the materialized product (partial sums per row chunk would
  // re-associate and break bit-identity).
  const SimdOps& ops = ActiveOps();
  RunRange(runner, b.cols(), [&](int64_t col_begin, int64_t col_end) {
    const int64_t width = col_end - col_begin;
    std::vector<double> buf(static_cast<size_t>(width));
    std::vector<double> acc(static_cast<size_t>(width), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      std::fill(buf.begin(), buf.end(), 0.0);
      const double* a_row = a.row(i);
      for (int64_t p = 0; p < k; ++p) {
        const double av = a_row[p];
        if (av == 0.0) continue;
        ops.axpy(buf.data(), b.row(p) + col_begin, av, width);
      }
      // acc[j] += buf[j]: per-column fold, independent across columns.
      ops.add_vv(acc.data(), acc.data(), buf.data(), width);
    }
    for (int64_t j = 0; j < width; ++j) {
      out.At(0, col_begin + j) = acc[static_cast<size_t>(j)];
    }
  });
  return out;
}

double GemmSum(const DenseMatrix& a, const DenseMatrix& b,
               const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  const int64_t n = a.rows();
  const int64_t m = b.cols();
  // Flat row-major accumulation into ONE accumulator (the association of
  // matrix::Sum over the materialized product) is inherently sequential, so
  // only the dot products parallelize: product rows are computed a block at
  // a time into a bounded buffer, then folded in order.
  const int64_t block = 8 * kRowGrain;
  DenseMatrix buf(std::min(block, std::max<int64_t>(n, 1)), m);
  const SimdOps& ops = ActiveOps();
  double acc = 0.0;
  for (int64_t i0 = 0; i0 < n; i0 += block) {
    const int64_t bn = std::min(block, n - i0);
    RunRange(runner, bn, [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        ProductRow(a, b, i0 + r, buf.row(r), ops);
      }
    });
    for (int64_t r = 0; r < bn; ++r) {
      const double* row = buf.row(r);
      for (int64_t j = 0; j < m; ++j) acc += row[j];
    }
  }
  return acc;
}

double GemmMean(const DenseMatrix& a, const DenseMatrix& b,
                const RangeRunner& runner) {
  // matrix::Mean divides ONCE after the complete flat sum, so dividing
  // GemmSum by the product's cell count reproduces its bits exactly
  // (including the empty-product convention of 0.0).
  const int64_t cells = a.rows() * b.cols();
  if (cells == 0) return 0.0;
  return GemmSum(a, b, runner) / static_cast<double>(cells);
}

DenseMatrix GemmColMeans(const DenseMatrix& a, const DenseMatrix& b,
                         const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(1, b.cols());
  const int64_t n = a.rows();
  const int64_t k = a.cols();
  // GemmColSums with a per-column divide at store time. matrix::ColMeans
  // (ColStat -> SpanMean) sums each column over ascending rows and divides
  // the finished sum by n once — exactly this kernel's fold + final /n.
  const SimdOps& ops = ActiveOps();
  RunRange(runner, b.cols(), [&](int64_t col_begin, int64_t col_end) {
    const int64_t width = col_end - col_begin;
    std::vector<double> buf(static_cast<size_t>(width));
    std::vector<double> acc(static_cast<size_t>(width), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      std::fill(buf.begin(), buf.end(), 0.0);
      const double* a_row = a.row(i);
      for (int64_t p = 0; p < k; ++p) {
        const double av = a_row[p];
        if (av == 0.0) continue;
        ops.axpy(buf.data(), b.row(p) + col_begin, av, width);
      }
      ops.add_vv(acc.data(), acc.data(), buf.data(), width);
    }
    const double denom = static_cast<double>(n);
    for (int64_t j = 0; j < width; ++j) {
      out.At(0, col_begin + j) = acc[static_cast<size_t>(j)] / denom;
    }
  });
  return out;
}

}  // namespace hadad::matrix
