#include "matrix/blocked_kernels.h"

#include <algorithm>
#include <mutex>
#include <vector>

#include "common/check.h"

namespace hadad::matrix {

namespace {

// Inner-dimension tile: kKTile rows of `b` (kKTile * cols doubles) are kept
// hot while a chunk of output rows accumulates into them.
constexpr int64_t kKTile = 256;

void RunRange(const RangeRunner& runner, int64_t n,
              const std::function<void(int64_t, int64_t)>& body) {
  if (runner) {
    runner(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace

DenseMatrix MultiplyDenseBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                 const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  const int64_t k = a.cols();
  const int64_t m = b.cols();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; kk += kKTile) {
      const int64_t kend = std::min(k, kk + kKTile);
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* out_row = out.row(i);
        const double* a_row = a.row(i);
        for (int64_t p = kk; p < kend; ++p) {
          const double av = a_row[p];
          if (av == 0.0) continue;
          const double* b_row = b.row(p);
          for (int64_t j = 0; j < m; ++j) {
            out_row[j] += av * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

DenseMatrix MultiplyTransposedDenseBlocked(const DenseMatrix& a,
                                           const DenseMatrix& b,
                                           const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.rows(), b.rows());
  DenseMatrix out(a.cols(), b.cols());
  const int64_t k = a.rows();  // Shared dimension: rows of both inputs.
  const int64_t m = b.cols();
  RunRange(runner, a.cols(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; kk += kKTile) {
      const int64_t kend = std::min(k, kk + kKTile);
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* out_row = out.row(i);
        for (int64_t p = kk; p < kend; ++p) {
          const double av = a.At(p, i);
          if (av == 0.0) continue;
          const double* b_row = b.row(p);
          for (int64_t j = 0; j < m; ++j) {
            out_row[j] += av * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a,
                                        const DenseMatrix& b,
                                        const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  const int64_t m = b.cols();
  const auto& rptr = a.row_ptr();
  const auto& cidx = a.col_idx();
  const auto& vals = a.values();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      double* out_row = out.row(i);
      for (int64_t p = rptr[static_cast<size_t>(i)];
           p < rptr[static_cast<size_t>(i) + 1]; ++p) {
        const double av = vals[static_cast<size_t>(p)];
        const double* b_row = b.row(cidx[static_cast<size_t>(p)]);
        for (int64_t j = 0; j < m; ++j) {
          out_row[j] += av * b_row[j];
        }
      }
    }
  });
  return out;
}

SparseMatrix MultiplySparseSparseParallel(const SparseMatrix& a,
                                          const SparseMatrix& b,
                                          const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  const auto& a_rptr = a.row_ptr();
  const auto& a_cidx = a.col_idx();
  const auto& a_vals = a.values();
  const auto& b_rptr = b.row_ptr();
  const auto& b_cidx = b.col_idx();
  const auto& b_vals = b.values();

  // Each chunk owns a private accumulator and triplet buffer. Determinism
  // does not depend on chunk completion order: every output row is
  // produced by exactly one chunk with the sequential per-row accumulation
  // order, and FromTriplets sorts by (row, col) — so the assembled result
  // is bit-identical to the sequential kernel however the buffers land.
  std::mutex mu;
  std::vector<Triplet> triplets;
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    std::vector<Triplet> buf;
    std::vector<double> acc(static_cast<size_t>(b.cols()), 0.0);
    std::vector<int64_t> touched;
    for (int64_t i = row_begin; i < row_end; ++i) {
      touched.clear();
      for (int64_t p = a_rptr[static_cast<size_t>(i)];
           p < a_rptr[static_cast<size_t>(i) + 1]; ++p) {
        const double av = a_vals[static_cast<size_t>(p)];
        const int64_t k = a_cidx[static_cast<size_t>(p)];
        for (int64_t q = b_rptr[static_cast<size_t>(k)];
             q < b_rptr[static_cast<size_t>(k) + 1]; ++q) {
          const int64_t j = b_cidx[static_cast<size_t>(q)];
          if (acc[static_cast<size_t>(j)] == 0.0) touched.push_back(j);
          acc[static_cast<size_t>(j)] += av * b_vals[static_cast<size_t>(q)];
        }
      }
      for (int64_t j : touched) {
        if (acc[static_cast<size_t>(j)] != 0.0) {
          buf.push_back({i, j, acc[static_cast<size_t>(j)]});
        }
        acc[static_cast<size_t>(j)] = 0.0;
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    triplets.insert(triplets.end(), buf.begin(), buf.end());
  });
  return SparseMatrix::FromTriplets(a.rows(), b.cols(), std::move(triplets));
}

}  // namespace hadad::matrix
