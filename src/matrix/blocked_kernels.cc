#include "matrix/blocked_kernels.h"

#include <algorithm>

#include "common/check.h"

namespace hadad::matrix {

namespace {

// Inner-dimension tile: kKTile rows of `b` (kKTile * cols doubles) are kept
// hot while a chunk of output rows accumulates into them.
constexpr int64_t kKTile = 256;

void RunRange(const RangeRunner& runner, int64_t n,
              const std::function<void(int64_t, int64_t)>& body) {
  if (runner) {
    runner(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace

DenseMatrix MultiplyDenseBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                 const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  const int64_t k = a.cols();
  const int64_t m = b.cols();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; kk += kKTile) {
      const int64_t kend = std::min(k, kk + kKTile);
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* out_row = out.row(i);
        const double* a_row = a.row(i);
        for (int64_t p = kk; p < kend; ++p) {
          const double av = a_row[p];
          if (av == 0.0) continue;
          const double* b_row = b.row(p);
          for (int64_t j = 0; j < m; ++j) {
            out_row[j] += av * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

DenseMatrix MultiplyTransposedDenseBlocked(const DenseMatrix& a,
                                           const DenseMatrix& b,
                                           const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.rows(), b.rows());
  DenseMatrix out(a.cols(), b.cols());
  const int64_t k = a.rows();  // Shared dimension: rows of both inputs.
  const int64_t m = b.cols();
  RunRange(runner, a.cols(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t kk = 0; kk < k; kk += kKTile) {
      const int64_t kend = std::min(k, kk + kKTile);
      for (int64_t i = row_begin; i < row_end; ++i) {
        double* out_row = out.row(i);
        for (int64_t p = kk; p < kend; ++p) {
          const double av = a.At(p, i);
          if (av == 0.0) continue;
          const double* b_row = b.row(p);
          for (int64_t j = 0; j < m; ++j) {
            out_row[j] += av * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a,
                                        const DenseMatrix& b,
                                        const RangeRunner& runner) {
  HADAD_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  const int64_t m = b.cols();
  const auto& rptr = a.row_ptr();
  const auto& cidx = a.col_idx();
  const auto& vals = a.values();
  RunRange(runner, a.rows(), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      double* out_row = out.row(i);
      for (int64_t p = rptr[static_cast<size_t>(i)];
           p < rptr[static_cast<size_t>(i) + 1]; ++p) {
        const double av = vals[static_cast<size_t>(p)];
        const double* b_row = b.row(cidx[static_cast<size_t>(p)]);
        for (int64_t j = 0; j < m; ++j) {
          out_row[j] += av * b_row[j];
        }
      }
    }
  });
  return out;
}

}  // namespace hadad::matrix
