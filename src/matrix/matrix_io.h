#ifndef HADAD_MATRIX_MATRIX_IO_H_
#define HADAD_MATRIX_MATRIX_IO_H_

#include <string>

#include "common/status.h"
#include "matrix/matrix.h"

namespace hadad::matrix {

// Dense CSV (comma-separated rows of doubles, no header) — the paper's
// materialized-view storage format ("V.csv").
Status WriteCsv(const Matrix& m, const std::string& path);
Result<Matrix> ReadCsv(const std::string& path);

// MatrixMarket coordinate format ("%%MatrixMarket matrix coordinate real
// general") — used by the paper for ultra-sparse matrices (footnote 1, §2).
Status WriteMtx(const Matrix& m, const std::string& path);
Result<Matrix> ReadMtx(const std::string& path);

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_MATRIX_IO_H_
