#ifndef HADAD_MATRIX_BLOCKED_KERNELS_H_
#define HADAD_MATRIX_BLOCKED_KERNELS_H_

#include <cstdint>
#include <functional>

#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace hadad::matrix {

// Partitioning hook the parallel kernels below use to split their row range:
// runner(n, body) must invoke body(begin, end) over a disjoint cover of
// [0, n), possibly concurrently (exec::ThreadPool::ParallelFor adapts to
// this signature). A null runner means sequential: body(0, n).
//
// Every kernel assigns each output row to exactly one chunk and keeps its
// per-row accumulation order independent of the partition, so results are
// bit-for-bit identical at every thread count — and bit-for-bit identical
// to the naive kernels in matrix.cc, which these supersede on large inputs.
using RangeRunner =
    std::function<void(int64_t n, const std::function<void(int64_t, int64_t)>&)>;

// Recommended partition grain (rows per chunk) for these kernels. Callers
// adapting a thread pool should split row ranges at multiples of this so
// chunking stays independent of the worker count.
inline constexpr int64_t kRowGrain = 64;

// Cache-blocked, row-partitioned dense GEMM: out = a * b. Tiles the inner
// (k) dimension so the active rows of `b` stay hot in cache while a block of
// output rows is computed; parallelism partitions the output rows.
DenseMatrix MultiplyDenseBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                 const RangeRunner& runner = nullptr);

// Transpose-fused dense GEMM: out = t(a) * b without materializing t(a).
// a is read row-wise (row p of `a` contributes a[p][i] to output row i), so
// the fused kernel streams both inputs sequentially.
DenseMatrix MultiplyTransposedDenseBlocked(const DenseMatrix& a,
                                           const DenseMatrix& b,
                                           const RangeRunner& runner = nullptr);

// Row-parallel CSR SpMM: out = a * b with a sparse, b dense. Covers SpMV as
// the b.cols() == 1 case. Each output row depends on one CSR row only.
DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a,
                                        const DenseMatrix& b,
                                        const RangeRunner& runner = nullptr);

// Parallel sparse x sparse product (SpGEMM): Gustavson per-row accumulation
// with one dense accumulator and one triplet buffer per chunk of output
// rows. Each output row is produced by exactly one chunk with the
// sequential per-row accumulation order, and triplet assembly sorts by
// (row, col) — so the result is bit-identical to the sequential Gustavson
// kernel in matrix.cc at every thread count.
SparseMatrix MultiplySparseSparseParallel(const SparseMatrix& a,
                                          const SparseMatrix& b,
                                          const RangeRunner& runner = nullptr);

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_BLOCKED_KERNELS_H_
