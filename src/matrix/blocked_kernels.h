#ifndef HADAD_MATRIX_BLOCKED_KERNELS_H_
#define HADAD_MATRIX_BLOCKED_KERNELS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace hadad::matrix {

// Partitioning hook the parallel kernels below use to split their row range:
// runner(n, body) must invoke body(begin, end) over a disjoint cover of
// [0, n), possibly concurrently (exec::ThreadPool::ParallelFor adapts to
// this signature). A null runner means sequential: body(0, n).
//
// Every kernel assigns each output row to exactly one chunk and keeps its
// per-row accumulation order independent of the partition, so results are
// bit-for-bit identical at every thread count — and bit-for-bit identical
// to the naive kernels in matrix.cc, which these supersede on large inputs.
using RangeRunner =
    std::function<void(int64_t n, const std::function<void(int64_t, int64_t)>&)>;

// Recommended partition grain (rows per chunk) for these kernels. Callers
// adapting a thread pool should split row ranges at multiples of this so
// chunking stays independent of the worker count.
inline constexpr int64_t kRowGrain = 64;

// Cache-blocked, row-partitioned dense GEMM: out = a * b. Tiles the inner
// (k) dimension so the active rows of `b` stay hot in cache while a block of
// output rows is computed; parallelism partitions the output rows.
DenseMatrix MultiplyDenseBlocked(const DenseMatrix& a, const DenseMatrix& b,
                                 const RangeRunner& runner = nullptr);

// Transpose-fused dense GEMM: out = t(a) * b without materializing t(a).
// a is read row-wise (row p of `a` contributes a[p][i] to output row i), so
// the fused kernel streams both inputs sequentially.
DenseMatrix MultiplyTransposedDenseBlocked(const DenseMatrix& a,
                                           const DenseMatrix& b,
                                           const RangeRunner& runner = nullptr);

// Row-parallel CSR SpMM: out = a * b with a sparse, b dense. Covers SpMV as
// the b.cols() == 1 case. Each output row depends on one CSR row only.
DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a,
                                        const DenseMatrix& b,
                                        const RangeRunner& runner = nullptr);

// Parallel sparse x sparse product (SpGEMM): Gustavson per-row accumulation
// with one dense accumulator and one triplet buffer per chunk of output
// rows. Each output row is produced by exactly one chunk with the
// sequential per-row accumulation order, and triplet assembly sorts by
// (row, col) — so the result is bit-identical to the sequential Gustavson
// kernel in matrix.cc at every thread count.
SparseMatrix MultiplySparseSparseParallel(const SparseMatrix& a,
                                          const SparseMatrix& b,
                                          const RangeRunner& runner = nullptr);

// ---------------------------------------------------------------------------
// Fused elementwise programs (operator fusion).
// ---------------------------------------------------------------------------
// A chain of elementwise operators (add / hadamard / scalar-multiply) over
// same-shape dense operands is evaluated in ONE pass: per output row, a tiny
// stack machine interprets the program with row-sized scratch buffers that
// stay cache-hot, instead of allocating one full intermediate matrix per
// operator. Per-element operation order equals applying the operators one at
// a time, so results are bit-identical to the unfused evaluation — at every
// thread count (rows are partitioned, each row belongs to one chunk).
//
// This is the physical form of la::ElemProgram; exec/ lowers the semantic
// program (which still carries la::OpKind for the non-dense fallback) into
// these steps so the matrix layer stays independent of la/.

// A program input: a same-shape dense operand, or a broadcast scalar
// (dense == nullptr) whose single value applies to every element.
struct FusedInput {
  const DenseMatrix* dense = nullptr;
  double scalar = 0.0;
};

struct FusedStep {
  enum class Code {
    kPushInput,  // Push inputs[input] (broadcast when scalar).
    kPushConst,  // Push the literal `value`.
    kAdd,        // Pop rhs then lhs, push lhs + rhs.
    kMul,        // Pop rhs then lhs, push lhs * rhs.
  };
  Code code = Code::kPushInput;
  int32_t input = 0;
  double value = 0.0;
};

struct FusedElementwiseProgram {
  std::vector<FusedStep> steps;
  int32_t max_stack = 0;  // Peak operand-stack depth (scratch buffer count).
};

// Evaluates `program` over `inputs` into a rows x cols dense matrix. Every
// non-scalar input must be rows x cols. Row-parallel via `runner`; the
// result never depends on the partition.
DenseMatrix EvalFusedElementwise(const FusedElementwiseProgram& program,
                                 const std::vector<FusedInput>& inputs,
                                 int64_t rows, int64_t cols,
                                 const RangeRunner& runner = nullptr);

// ---------------------------------------------------------------------------
// Aggregation-pushdown (reducing) GEMM kernels.
// ---------------------------------------------------------------------------
// sum / rowSums / colSums of a dense product a * b, computed WITHOUT
// materializing the product: each kernel streams product rows through a
// bounded buffer and reduces on the fly. Per-cell dot products accumulate in
// ascending-k order with the same zero-skip as MultiplyDenseBlocked, and the
// reduction visits cells in exactly the order the unfused aggregate
// (matrix.cc Sum/RowSums/ColSums over the materialized product) would — so
// all three are bit-identical to the unfused pipeline at every thread count.

// rowSums(a * b) as an a.rows() x 1 matrix. Row-parallel; O(b.cols()) extra
// memory per chunk.
DenseMatrix GemmRowSums(const DenseMatrix& a, const DenseMatrix& b,
                        const RangeRunner& runner = nullptr);

// colSums(a * b) as a 1 x b.cols() matrix. Column-parallel (each chunk owns
// a column range and accumulates rows in ascending order); O(chunk width)
// extra memory per chunk.
DenseMatrix GemmColSums(const DenseMatrix& a, const DenseMatrix& b,
                        const RangeRunner& runner = nullptr);

// sum(a * b): the full reduction. Product rows are computed block-by-block
// (rows within a block in parallel) and folded into one accumulator in flat
// row-major order — the exact association of matrix::Sum over the
// materialized product.
double GemmSum(const DenseMatrix& a, const DenseMatrix& b,
               const RangeRunner& runner = nullptr);

// mean(a * b) = GemmSum / cell count. matrix::Mean divides once after the
// complete flat sum, so this is bit-identical to Mean over the materialized
// product (0.0 for an empty product, matching matrix::Mean).
double GemmMean(const DenseMatrix& a, const DenseMatrix& b,
                const RangeRunner& runner = nullptr);

// colMeans(a * b) as a 1 x b.cols() matrix: the GemmColSums fold with each
// finished column sum divided by a.rows() once at store time — the exact
// association of matrix::ColMeans (ascending-row SpanMean per column) over
// the materialized product. Column-parallel like GemmColSums.
DenseMatrix GemmColMeans(const DenseMatrix& a, const DenseMatrix& b,
                         const RangeRunner& runner = nullptr);

}  // namespace hadad::matrix

#endif  // HADAD_MATRIX_BLOCKED_KERNELS_H_
