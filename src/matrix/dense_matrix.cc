#include "matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>

namespace hadad::matrix {

int64_t DenseMatrix::CountNonZeros() const {
  int64_t nnz = 0;
  for (double v : data_) {
    if (v != 0.0) ++nnz;
  }
  return nnz;
}

void DenseMatrix::AppendRows(const DenseMatrix& rows) {
  HADAD_CHECK_EQ(cols_, rows.cols());
  CheckedCells(rows_ + rows.rows(), cols_);
  data_.insert(data_.end(), rows.data_.begin(), rows.data_.end());
  rows_ += rows.rows();
}

void DenseMatrix::TruncateRows(int64_t rows) {
  HADAD_CHECK(rows >= 0 && rows <= rows_);
  data_.resize(static_cast<size_t>(rows) * static_cast<size_t>(cols_));
  rows_ = rows;
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    double a = data_[i];
    double b = other.data_[i];
    double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    if (std::fabs(a - b) > tol * scale) return false;
  }
  return true;
}

}  // namespace hadad::matrix
