#include "chase/homomorphism.h"

#include <cstdint>

#include "common/check.h"

namespace hadad::chase {

namespace {

struct SearchState {
  const std::vector<Atom>* pattern;
  const Instance* instance;
  const std::function<bool(const Binding&, const std::vector<FactId>&)>* cb;
  const std::vector<FactRange>* ranges = nullptr;  // Optional, per atom.
  Binding binding;
  std::vector<FactId> matched;  // Indexed by pattern-atom position.
  uint32_t done_mask = 0;
  bool stopped = false;
};

// Tries to unify pattern atom `atom` with fact `f`. Newly bound variables
// are recorded in `bound_here` for backtracking.
bool UnifyAtom(const Atom& atom, const Fact& f, const Instance& instance,
               Binding& binding, std::vector<std::string>& bound_here) {
  if (atom.args.size() != f.args.size()) return false;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    NodeId node = instance.Find(f.args[i]);
    if (t.is_constant()) {
      NodeId c = instance.LookupConstant(t.text);
      if (c == kNoNode || c != node) return false;
    } else {
      auto it = binding.find(t.text);
      if (it != binding.end()) {
        if (instance.Find(it->second) != node) return false;
      } else {
        binding.emplace(t.text, node);
        bound_here.push_back(t.text);
      }
    }
  }
  return true;
}

// Candidate facts for `atom` under the current binding: the smallest
// argument-index bucket among bound positions, else the whole relation.
// Returns nullptr when the atom provably has no matches.
const std::vector<FactId>* CandidatesFor(const Atom& atom,
                                         const SearchState& st,
                                         size_t* size_estimate) {
  int32_t pred = st.instance->LookupPredicate(atom.predicate);
  if (pred < 0) return nullptr;
  const std::vector<FactId>* best = &st.instance->FactsOf(pred);
  for (size_t p = 0; p < atom.args.size(); ++p) {
    const Term& t = atom.args[p];
    NodeId node = kNoNode;
    if (t.is_constant()) {
      node = st.instance->LookupConstant(t.text);
      if (node == kNoNode) return nullptr;  // Constant never interned.
    } else {
      auto it = st.binding.find(t.text);
      if (it == st.binding.end()) continue;
      node = st.instance->Find(it->second);
    }
    const std::vector<FactId>& bucket =
        st.instance->FactsWith(pred, static_cast<int>(p), node);
    if (bucket.size() < best->size()) best = &bucket;
  }
  *size_estimate = best->size();
  return best;
}

void Search(SearchState& st, size_t remaining) {
  if (st.stopped) return;
  if (remaining == 0) {
    if (!(*st.cb)(st.binding, st.matched)) st.stopped = true;
    return;
  }
  // Dynamic atom ordering: expand the most selective remaining atom.
  size_t best_atom = st.pattern->size();
  const std::vector<FactId>* best_list = nullptr;
  size_t best_size = SIZE_MAX;
  for (size_t i = 0; i < st.pattern->size(); ++i) {
    if (st.done_mask & (1u << i)) continue;
    size_t est = 0;
    const std::vector<FactId>* list = CandidatesFor((*st.pattern)[i], st, &est);
    if (list == nullptr) return;  // Some atom can never match: dead branch.
    if (est < best_size) {
      best_size = est;
      best_list = list;
      best_atom = i;
      if (est == 0) break;
    }
  }
  const Atom& atom = (*st.pattern)[best_atom];
  FactRange range;
  if (st.ranges != nullptr) range = (*st.ranges)[best_atom];
  st.done_mask |= (1u << best_atom);
  // Take a snapshot: the index buckets can grow if a callback adds facts.
  const std::vector<FactId> candidates = *best_list;
  for (FactId fid : candidates) {
    if (fid < range.lo || fid >= range.hi) continue;
    std::vector<std::string> bound_here;
    if (UnifyAtom(atom, st.instance->fact(fid), *st.instance, st.binding,
                  bound_here)) {
      st.matched[best_atom] = fid;
      Search(st, remaining - 1);
    }
    for (const std::string& v : bound_here) st.binding.erase(v);
    if (st.stopped) break;
  }
  st.done_mask &= ~(1u << best_atom);
}

void Run(const std::vector<Atom>& pattern, const Instance& instance,
         const Binding& seed, const std::vector<FactRange>* ranges,
         const std::function<bool(const Binding&, const std::vector<FactId>&)>&
             cb) {
  HADAD_CHECK_LE(pattern.size(), 32u);  // done_mask is 32 bits.
  SearchState st;
  st.pattern = &pattern;
  st.instance = &instance;
  st.cb = &cb;
  st.ranges = ranges;
  st.binding = seed;
  st.matched.assign(pattern.size(), -1);
  for (auto& [var, node] : st.binding) node = instance.Find(node);
  Search(st, pattern.size());
}

}  // namespace

void FindHomomorphisms(
    const std::vector<Atom>& pattern, const Instance& instance,
    const Binding& seed,
    const std::function<bool(const Binding&, const std::vector<FactId>&)>&
        cb) {
  Run(pattern, instance, seed, nullptr, cb);
}

void FindHomomorphismsRanged(
    const std::vector<Atom>& pattern, const Instance& instance,
    const Binding& seed, const std::vector<FactRange>& ranges,
    const std::function<bool(const Binding&, const std::vector<FactId>&)>&
        cb) {
  Run(pattern, instance, seed, &ranges, cb);
}

bool HasHomomorphism(const std::vector<Atom>& pattern,
                     const Instance& instance, const Binding& seed) {
  bool found = false;
  FindHomomorphisms(pattern, instance, seed,
                    [&found](const Binding&, const std::vector<FactId>&) {
                      found = true;
                      return false;  // Stop at the first match.
                    });
  return found;
}

}  // namespace hadad::chase
