#ifndef HADAD_CHASE_AST_H_
#define HADAD_CHASE_AST_H_

#include <string>
#include <utility>
#include <vector>

namespace hadad::chase {

// A term in a constraint or conjunctive query: a named variable or a string
// constant (matrix names, type tags like "S", dimension literals, ...).
struct Term {
  enum class Kind { kVariable, kConstant };

  Kind kind = Kind::kVariable;
  std::string text;

  bool is_variable() const { return kind == Kind::kVariable; }
  bool is_constant() const { return kind == Kind::kConstant; }

  bool operator==(const Term& other) const {
    return kind == other.kind && text == other.text;
  }
};

inline Term Var(std::string name) {
  return Term{Term::Kind::kVariable, std::move(name)};
}
inline Term Cst(std::string value) {
  return Term{Term::Kind::kConstant, std::move(value)};
}

// A relational atom P(t1, ..., tk) over the VREM schema (Table 1) or a user
// schema.
struct Atom {
  std::string predicate;
  std::vector<Term> args;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }
};

inline Atom MakeAtom(std::string predicate, std::vector<Term> args) {
  return Atom{std::move(predicate), std::move(args)};
}

std::string ToString(const Term& t);
std::string ToString(const Atom& a);

// Q(head) :- body. (§4.1)
struct ConjunctiveQuery {
  std::vector<Term> head;
  std::vector<Atom> body;
};

// A TGD  ∀x̄ premise(x̄) → ∃z̄ conclusion(x̄, z̄), or an EGD
// ∀x̄ premise(x̄) → w = w' (§4.1). Conclusion variables not appearing in the
// premise are existential. `name` identifies the constraint in provenance
// and debug output (e.g. "mul-associativity").
struct Constraint {
  enum class Kind { kTgd, kEgd };

  Kind kind = Kind::kTgd;
  std::string name;
  std::vector<Atom> premise;
  // TGD only.
  std::vector<Atom> conclusion;
  // EGD only: pairs of premise terms to equate.
  std::vector<std::pair<Term, Term>> equalities;
};

Constraint MakeTgd(std::string name, std::vector<Atom> premise,
                   std::vector<Atom> conclusion);
Constraint MakeEgd(std::string name, std::vector<Atom> premise,
                   std::vector<std::pair<Term, Term>> equalities);

std::string ToString(const Constraint& c);

}  // namespace hadad::chase

#endif  // HADAD_CHASE_AST_H_
