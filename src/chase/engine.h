#ifndef HADAD_CHASE_ENGINE_H_
#define HADAD_CHASE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "chase/ast.h"
#include "chase/homomorphism.h"
#include "chase/instance.h"
#include "common/status.h"

namespace hadad::chase {

struct ChaseOptions {
  // Breadth-first saturation rounds. Benchmark pipelines need at most ~6
  // rounds to reach their rewritings (view chains included); on pipelines
  // whose intermediates all share one size, cost pruning cannot bite
  // (everything costs the same), so the round bound is what keeps the
  // commutativity/associativity blowup in check.
  int max_rounds = 8;
  // Hard budgets that keep non-terminating constraint sets in check (§8's
  // termination requirement is delegated to these when violated).
  int64_t max_facts = 30000;
  int64_t max_nodes = 60000;
};

struct ChaseStats {
  int rounds = 0;
  int64_t tgd_applications = 0;
  int64_t facts_added = 0;
  int64_t merges = 0;
  int64_t pruned_applications = 0;  // Skipped by the Prune_prov gate.
  bool budget_exhausted = false;
};

// Called before applying a TGD match. Returning false skips the application
// — the Prune_prov hook (§7.3): PACB++ passes a gate that rejects premise
// images whose fragment cost exceeds the best-rewriting threshold T, and
// uses the binding to bound the sizes the conclusion would introduce.
using TgdGate =
    std::function<bool(int32_t constraint_index, const Binding& binding,
                       const std::vector<FactId>& premise_facts)>;

// Called after a TGD application with the fact ids it created, so cost /
// metadata layers can propagate dimensions and sparsity incrementally.
using FactsAddedObserver = std::function<void(const std::vector<FactId>&)>;

// The restricted chase (§4.2): applies TGDs breadth-first per round (a TGD
// fires only when its conclusion is not already satisfied by any extension
// of the match), then EGDs (merging equivalence classes), then
// re-canonicalizes. Deterministic: constraints and facts are visited in
// declaration order.
class ChaseEngine {
 public:
  ChaseEngine(Instance* instance, std::vector<Constraint> constraints,
              ChaseOptions options = {});

  void set_gate(TgdGate gate) { gate_ = std::move(gate); }
  void set_facts_added_observer(FactsAddedObserver obs) {
    facts_added_ = std::move(obs);
  }

  const std::vector<Constraint>& constraints() const { return constraints_; }

  // Runs to fixpoint (or budget). Fails only on unsatisfiability (an EGD
  // equating distinct constants).
  Result<ChaseStats> Run();

 private:
  struct PendingTgd {
    int32_t constraint_index;
    Binding binding;
    std::vector<FactId> premise_facts;
  };

  // Applies one TGD match; returns the number of facts added.
  int64_t ApplyTgd(const PendingTgd& pending);

  Instance* instance_;
  std::vector<Constraint> constraints_;
  ChaseOptions options_;
  TgdGate gate_;
  FactsAddedObserver facts_added_;
  ChaseStats stats_;
};

}  // namespace hadad::chase

#endif  // HADAD_CHASE_ENGINE_H_
