#ifndef HADAD_CHASE_INSTANCE_H_
#define HADAD_CHASE_INSTANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chase/ast.h"
#include "common/status.h"

namespace hadad::chase {

// A node in the canonical instance: either an interned constant or a
// labelled null. Node ids double as the equivalence-class ids of §6.2.1 —
// two expressions mapped to the same (canonical) node are value-equal.
using NodeId = int32_t;
using FactId = int32_t;

inline constexpr NodeId kNoNode = -1;

// How a fact entered the instance: as part of the initial (encoded query)
// body, or by a chase step of `constraint` matched on `premise_facts`.
// PACB's provenance formulas (§4.2) are read off these records: the initial
// facts are the provenance terms, and a derived fact's provenance is the
// disjunction over its derivations of the conjunction of its premises'
// provenance.
struct Derivation {
  int32_t constraint_index = -1;      // Index into the engine's constraints.
  std::vector<FactId> premise_facts;  // Canonical fact ids at creation time.
};

struct Fact {
  int32_t predicate;
  std::vector<NodeId> args;     // Canonical as of the last Rebuild().
  bool initial = false;
  std::vector<Derivation> derivations;
};

// The evolving symbolic/canonical database the chase runs on (§7.3 calls it
// the evolving universal-plan instance). Maintains a union-find over nodes;
// EGD steps merge nodes, and Rebuild() re-canonicalizes facts, fusing
// duplicates (their derivation lists are concatenated).
class Instance {
 public:
  Instance() = default;
  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  // --- Nodes -----------------------------------------------------------

  // The node for a constant, interning it on first use.
  NodeId InternConstant(const std::string& value);
  // The node for a constant if already interned, else kNoNode.
  NodeId LookupConstant(const std::string& value) const;
  // A fresh labelled null.
  NodeId FreshNull();

  // Canonical representative (path-halving union-find).
  NodeId Find(NodeId n) const;

  bool IsConstant(NodeId n) const;
  // Value of a constant node (must be constant).
  const std::string& ConstantValue(NodeId n) const;

  // Equates two nodes. Fails if both are distinct constants (EGD clash on
  // constants = unsatisfiable constraints, §4.1).
  Status Merge(NodeId a, NodeId b);

  // Called with (absorbed_root, surviving_root) on every successful merge so
  // cost/metadata layers can fold their per-node state.
  void SetMergeObserver(std::function<void(NodeId, NodeId)> observer) {
    merge_observer_ = std::move(observer);
  }

  int64_t num_nodes() const { return static_cast<int64_t>(parent_.size()); }

  // --- Predicates ------------------------------------------------------

  int32_t InternPredicate(const std::string& name);
  int32_t LookupPredicate(const std::string& name) const;  // -1 if absent.
  const std::string& PredicateName(int32_t id) const;

  // --- Facts -----------------------------------------------------------

  // Adds (or finds) the fact predicate(args). If it already exists, the
  // derivation is appended to the existing fact (provenance disjunction) and
  // `added` is set false. Args are canonicalized on entry.
  FactId AddFact(int32_t predicate, std::vector<NodeId> args,
                 Derivation derivation, bool initial, bool* added);

  bool HasFact(int32_t predicate, const std::vector<NodeId>& args) const;

  const Fact& fact(FactId id) const { return facts_[static_cast<size_t>(id)]; }
  int64_t num_facts() const { return static_cast<int64_t>(facts_.size()); }

  // Fact ids with the given predicate (canonical, post-rebuild view).
  const std::vector<FactId>& FactsOf(int32_t predicate) const;

  // Fact ids with `predicate` whose argument at `position` is (canonically)
  // `node` — the join index the homomorphism search uses to avoid scanning
  // whole relations. Valid only on a clean (rebuilt) instance, except that
  // facts added since the last rebuild are indexed incrementally.
  const std::vector<FactId>& FactsWith(int32_t predicate, int position,
                                       NodeId node) const;

  // Re-canonicalizes all facts after merges; fuses facts that became equal
  // (derivations concatenated; `initial` is OR-ed). Remaps every stored
  // FactId in derivations to the surviving fact. No-op when clean.
  void Rebuild();

  bool dirty() const { return dirty_; }

  std::string DebugString() const;

 private:
  std::string FactKey(int32_t predicate, const std::vector<NodeId>& args) const;
  void IndexFact(FactId id);

  // Union-find state. rank via size; constants always win as root.
  mutable std::vector<NodeId> parent_;
  std::vector<int32_t> size_;
  std::vector<bool> is_constant_;
  std::vector<std::string> constant_value_;
  std::unordered_map<std::string, NodeId> constant_ids_;

  std::vector<std::string> predicate_names_;
  std::unordered_map<std::string, int32_t> predicate_ids_;

  std::vector<Fact> facts_;
  std::unordered_map<std::string, FactId> fact_index_;
  std::vector<std::vector<FactId>> facts_by_predicate_;
  // (predicate, position, node) -> fact ids.
  std::unordered_map<uint64_t, std::vector<FactId>> arg_index_;
  std::vector<FactId> empty_;

  bool dirty_ = false;
  std::function<void(NodeId, NodeId)> merge_observer_;
};

}  // namespace hadad::chase

#endif  // HADAD_CHASE_INSTANCE_H_
