#include "chase/instance.h"

#include <algorithm>

#include "common/check.h"

namespace hadad::chase {

NodeId Instance::InternConstant(const std::string& value) {
  auto it = constant_ids_.find(value);
  if (it != constant_ids_.end()) return it->second;
  NodeId id = static_cast<NodeId>(parent_.size());
  parent_.push_back(id);
  size_.push_back(1);
  is_constant_.push_back(true);
  constant_value_.push_back(value);
  constant_ids_.emplace(value, id);
  return id;
}

NodeId Instance::LookupConstant(const std::string& value) const {
  auto it = constant_ids_.find(value);
  return it == constant_ids_.end() ? kNoNode : Find(it->second);
}

NodeId Instance::FreshNull() {
  NodeId id = static_cast<NodeId>(parent_.size());
  parent_.push_back(id);
  size_.push_back(1);
  is_constant_.push_back(false);
  constant_value_.emplace_back();
  return id;
}

NodeId Instance::Find(NodeId n) const {
  HADAD_CHECK(n >= 0 && n < static_cast<NodeId>(parent_.size()));
  while (parent_[static_cast<size_t>(n)] != n) {
    // Path halving.
    parent_[static_cast<size_t>(n)] =
        parent_[static_cast<size_t>(parent_[static_cast<size_t>(n)])];
    n = parent_[static_cast<size_t>(n)];
  }
  return n;
}

bool Instance::IsConstant(NodeId n) const {
  return is_constant_[static_cast<size_t>(Find(n))];
}

const std::string& Instance::ConstantValue(NodeId n) const {
  NodeId root = Find(n);
  HADAD_CHECK_MSG(is_constant_[static_cast<size_t>(root)],
                  "ConstantValue on a labelled null");
  return constant_value_[static_cast<size_t>(root)];
}

Status Instance::Merge(NodeId a, NodeId b) {
  NodeId ra = Find(a);
  NodeId rb = Find(b);
  if (ra == rb) return Status::OK();
  const bool ca = is_constant_[static_cast<size_t>(ra)];
  const bool cb = is_constant_[static_cast<size_t>(rb)];
  if (ca && cb) {
    return Status::InvalidArgument(
        "EGD equates distinct constants \"" +
        constant_value_[static_cast<size_t>(ra)] + "\" and \"" +
        constant_value_[static_cast<size_t>(rb)] +
        "\": constraints are unsatisfiable on this instance");
  }
  // Constants always survive as root; otherwise union by size.
  NodeId survivor = ra;
  NodeId absorbed = rb;
  if (cb || (!ca && size_[static_cast<size_t>(rb)] >
                         size_[static_cast<size_t>(ra)])) {
    survivor = rb;
    absorbed = ra;
  }
  parent_[static_cast<size_t>(absorbed)] = survivor;
  size_[static_cast<size_t>(survivor)] += size_[static_cast<size_t>(absorbed)];
  dirty_ = true;
  if (merge_observer_) merge_observer_(absorbed, survivor);
  return Status::OK();
}

int32_t Instance::InternPredicate(const std::string& name) {
  auto it = predicate_ids_.find(name);
  if (it != predicate_ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(predicate_names_.size());
  predicate_names_.push_back(name);
  predicate_ids_.emplace(name, id);
  facts_by_predicate_.emplace_back();
  return id;
}

int32_t Instance::LookupPredicate(const std::string& name) const {
  auto it = predicate_ids_.find(name);
  return it == predicate_ids_.end() ? -1 : it->second;
}

const std::string& Instance::PredicateName(int32_t id) const {
  return predicate_names_[static_cast<size_t>(id)];
}

std::string Instance::FactKey(int32_t predicate,
                              const std::vector<NodeId>& args) const {
  std::string key = std::to_string(predicate);
  for (NodeId a : args) {
    key += '|';
    key += std::to_string(a);
  }
  return key;
}

FactId Instance::AddFact(int32_t predicate, std::vector<NodeId> args,
                         Derivation derivation, bool initial, bool* added) {
  for (NodeId& a : args) a = Find(a);
  std::string key = FactKey(predicate, args);
  auto it = fact_index_.find(key);
  if (it != fact_index_.end()) {
    Fact& existing = facts_[static_cast<size_t>(it->second)];
    if (derivation.constraint_index >= 0 ||
        !derivation.premise_facts.empty()) {
      existing.derivations.push_back(std::move(derivation));
    }
    existing.initial = existing.initial || initial;
    if (added != nullptr) *added = false;
    return it->second;
  }
  FactId id = static_cast<FactId>(facts_.size());
  Fact fact;
  fact.predicate = predicate;
  fact.args = std::move(args);
  fact.initial = initial;
  if (derivation.constraint_index >= 0 || !derivation.premise_facts.empty()) {
    fact.derivations.push_back(std::move(derivation));
  }
  facts_.push_back(std::move(fact));
  fact_index_.emplace(std::move(key), id);
  facts_by_predicate_[static_cast<size_t>(predicate)].push_back(id);
  IndexFact(id);
  if (added != nullptr) *added = true;
  return id;
}

namespace {

uint64_t ArgKey(int32_t predicate, int position, NodeId node) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(predicate)) << 40) ^
         (static_cast<uint64_t>(static_cast<uint32_t>(position)) << 32) ^
         static_cast<uint64_t>(static_cast<uint32_t>(node));
}

}  // namespace

void Instance::IndexFact(FactId id) {
  const Fact& f = facts_[static_cast<size_t>(id)];
  for (size_t pos = 0; pos < f.args.size(); ++pos) {
    arg_index_[ArgKey(f.predicate, static_cast<int>(pos), f.args[pos])]
        .push_back(id);
  }
}

const std::vector<FactId>& Instance::FactsWith(int32_t predicate,
                                               int position,
                                               NodeId node) const {
  auto it = arg_index_.find(ArgKey(predicate, position, Find(node)));
  return it == arg_index_.end() ? empty_ : it->second;
}

bool Instance::HasFact(int32_t predicate,
                       const std::vector<NodeId>& args) const {
  std::vector<NodeId> canonical = args;
  for (NodeId& a : canonical) a = Find(a);
  return fact_index_.contains(FactKey(predicate, canonical));
}

const std::vector<FactId>& Instance::FactsOf(int32_t predicate) const {
  if (predicate < 0 ||
      predicate >= static_cast<int32_t>(facts_by_predicate_.size())) {
    return empty_;
  }
  return facts_by_predicate_[static_cast<size_t>(predicate)];
}

void Instance::Rebuild() {
  if (!dirty_) return;
  std::vector<Fact> new_facts;
  new_facts.reserve(facts_.size());
  std::unordered_map<std::string, FactId> new_index;
  std::vector<FactId> remap(facts_.size(), -1);
  for (size_t old_id = 0; old_id < facts_.size(); ++old_id) {
    Fact& f = facts_[old_id];
    for (NodeId& a : f.args) a = Find(a);
    std::string key = FactKey(f.predicate, f.args);
    auto it = new_index.find(key);
    if (it != new_index.end()) {
      // Fuse into the surviving fact: provenance becomes a disjunction.
      Fact& survivor = new_facts[static_cast<size_t>(it->second)];
      survivor.initial = survivor.initial || f.initial;
      for (Derivation& d : f.derivations) {
        survivor.derivations.push_back(std::move(d));
      }
      remap[old_id] = it->second;
    } else {
      FactId id = static_cast<FactId>(new_facts.size());
      new_index.emplace(std::move(key), id);
      new_facts.push_back(std::move(f));
      remap[old_id] = id;
    }
  }
  // Remap derivation premises to surviving fact ids.
  for (Fact& f : new_facts) {
    for (Derivation& d : f.derivations) {
      for (FactId& p : d.premise_facts) {
        p = remap[static_cast<size_t>(p)];
      }
    }
  }
  facts_ = std::move(new_facts);
  fact_index_ = std::move(new_index);
  for (auto& bucket : facts_by_predicate_) bucket.clear();
  arg_index_.clear();
  for (size_t id = 0; id < facts_.size(); ++id) {
    facts_by_predicate_[static_cast<size_t>(facts_[id].predicate)].push_back(
        static_cast<FactId>(id));
    IndexFact(static_cast<FactId>(id));
  }
  dirty_ = false;
}

std::string Instance::DebugString() const {
  std::string out;
  for (size_t id = 0; id < facts_.size(); ++id) {
    const Fact& f = facts_[id];
    out += PredicateName(f.predicate);
    out += '(';
    for (size_t i = 0; i < f.args.size(); ++i) {
      if (i > 0) out += ", ";
      NodeId n = Find(f.args[i]);
      if (is_constant_[static_cast<size_t>(n)]) {
        out += '"' + constant_value_[static_cast<size_t>(n)] + '"';
      } else {
        out += '_' + std::to_string(n);
      }
    }
    out += ")\n";
  }
  return out;
}

}  // namespace hadad::chase
