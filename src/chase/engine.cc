#include "chase/engine.h"

#include <utility>

#include "common/check.h"

namespace hadad::chase {

ChaseEngine::ChaseEngine(Instance* instance,
                         std::vector<Constraint> constraints,
                         ChaseOptions options)
    : instance_(instance),
      constraints_(std::move(constraints)),
      options_(options) {
  HADAD_CHECK(instance != nullptr);
  // Intern every predicate mentioned by the constraints so lookups during
  // matching are total.
  for (const Constraint& c : constraints_) {
    for (const Atom& a : c.premise) instance_->InternPredicate(a.predicate);
    for (const Atom& a : c.conclusion) instance_->InternPredicate(a.predicate);
  }
}

int64_t ChaseEngine::ApplyTgd(const PendingTgd& pending) {
  const Constraint& c =
      constraints_[static_cast<size_t>(pending.constraint_index)];
  // Restricted chase: skip if some extension of the match already satisfies
  // the conclusion (checked at application time — an earlier application in
  // this round may have satisfied it).
  if (HasHomomorphism(c.conclusion, *instance_, pending.binding)) return 0;
  if (gate_ &&
      !gate_(pending.constraint_index, pending.binding,
             pending.premise_facts)) {
    ++stats_.pruned_applications;
    return 0;
  }
  // Existential variables get one fresh labelled null shared across all
  // conclusion atoms of this application.
  Binding binding = pending.binding;
  std::vector<FactId> added_facts;
  int64_t added = 0;
  for (const Atom& atom : c.conclusion) {
    std::vector<NodeId> args;
    args.reserve(atom.args.size());
    for (const Term& t : atom.args) {
      if (t.is_constant()) {
        args.push_back(instance_->InternConstant(t.text));
        continue;
      }
      auto it = binding.find(t.text);
      if (it == binding.end()) {
        it = binding.emplace(t.text, instance_->FreshNull()).first;
      }
      args.push_back(it->second);
    }
    Derivation derivation;
    derivation.constraint_index = pending.constraint_index;
    derivation.premise_facts = pending.premise_facts;
    bool was_added = false;
    FactId fid =
        instance_->AddFact(instance_->InternPredicate(atom.predicate),
                           std::move(args), std::move(derivation),
                           /*initial=*/false, &was_added);
    if (was_added) {
      ++added;
      added_facts.push_back(fid);
    }
  }
  if (added > 0) {
    ++stats_.tgd_applications;
    stats_.facts_added += added;
    if (facts_added_) facts_added_(added_facts);
  }
  return added;
}

Result<ChaseStats> ChaseEngine::Run() {
  stats_ = ChaseStats{};
  instance_->Rebuild();
  // Semi-naive state: in rounds after the first, a premise only needs
  // re-matching if at least one of its atoms binds a fact added since the
  // previous collection (watermark). EGD merges can create matches between
  // old facts (their nodes become equal) and also remap fact ids, so any
  // round that merged forces a full re-match next round.
  int64_t watermark = 0;
  bool full_match = true;
  for (int round = 0; round < options_.max_rounds; ++round) {
    stats_.rounds = round + 1;
    bool progress = false;
    const int64_t round_start_facts = instance_->num_facts();
    const int64_t round_start_merges = stats_.merges;
    // Mid-round rebuilds (EGD merges) remap fact ids, invalidating the
    // watermark; fall back to full matching for the rest of the round.
    bool merged_this_round = false;

    // Enumerates matches of `pattern`, full or semi-naive.
    auto collect = [&](const std::vector<Atom>& pattern,
                       const std::function<void(
                           const Binding&, const std::vector<FactId>&)>& emit) {
      auto cb = [&emit](const Binding& b, const std::vector<FactId>& facts) {
        emit(b, facts);
        return true;
      };
      if (full_match || merged_this_round) {
        FindHomomorphisms(pattern, *instance_, Binding{}, cb);
        return;
      }
      const FactId wm = static_cast<FactId>(watermark);
      for (size_t pivot = 0; pivot < pattern.size(); ++pivot) {
        std::vector<FactRange> ranges(pattern.size());
        for (size_t i = 0; i < pivot; ++i) ranges[i].hi = wm;  // Old only.
        ranges[pivot].lo = wm;                                 // New only.
        FindHomomorphismsRanged(pattern, *instance_, Binding{}, ranges, cb);
      }
    };

    // --- TGD phase: collect matches against the clean instance, then apply.
    std::vector<PendingTgd> pending;
    for (size_t ci = 0; ci < constraints_.size(); ++ci) {
      const Constraint& c = constraints_[ci];
      if (c.kind != Constraint::Kind::kTgd) continue;
      collect(c.premise,
              [&](const Binding& b, const std::vector<FactId>& facts) {
                pending.push_back(
                    PendingTgd{static_cast<int32_t>(ci), b, facts});
              });
    }
    for (const PendingTgd& p : pending) {
      if (instance_->num_facts() >= options_.max_facts ||
          instance_->num_nodes() >= options_.max_nodes) {
        stats_.budget_exhausted = true;
        break;
      }
      if (ApplyTgd(p) > 0) progress = true;
    }

    // --- EGD phase: merges applied eagerly (Find() at application time
    // keeps them sound even as classes collapse mid-phase).
    for (size_t ci = 0; ci < constraints_.size(); ++ci) {
      const Constraint& c = constraints_[ci];
      if (c.kind != Constraint::Kind::kEgd) continue;
      std::vector<Binding> matches;
      collect(c.premise, [&](const Binding& b, const std::vector<FactId>&) {
        matches.push_back(b);
      });
      for (const Binding& b : matches) {
        for (const auto& [lhs, rhs] : c.equalities) {
          NodeId a = lhs.is_constant()
                         ? instance_->InternConstant(lhs.text)
                         : b.at(lhs.text);
          NodeId z = rhs.is_constant()
                         ? instance_->InternConstant(rhs.text)
                         : b.at(rhs.text);
          if (instance_->Find(a) != instance_->Find(z)) {
            Status st = instance_->Merge(a, z);
            if (!st.ok()) {
              return Status(st.code(),
                            "EGD '" + c.name + "': " + st.message());
            }
            ++stats_.merges;
            progress = true;
            merged_this_round = true;
          }
        }
      }
      // Matching requires a clean instance; re-canonicalize between EGDs.
      instance_->Rebuild();
    }
    instance_->Rebuild();
    // Semi-naive bookkeeping for the next round.
    full_match = stats_.merges != round_start_merges;
    watermark = round_start_facts;
    if (!progress || stats_.budget_exhausted) break;
  }
  return stats_;
}

}  // namespace hadad::chase
