#include "chase/ast.h"

namespace hadad::chase {

std::string ToString(const Term& t) {
  if (t.is_constant()) return "\"" + t.text + "\"";
  return t.text;
}

std::string ToString(const Atom& a) {
  std::string out = a.predicate + "(";
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += ToString(a.args[i]);
  }
  out += ")";
  return out;
}

Constraint MakeTgd(std::string name, std::vector<Atom> premise,
                   std::vector<Atom> conclusion) {
  Constraint c;
  c.kind = Constraint::Kind::kTgd;
  c.name = std::move(name);
  c.premise = std::move(premise);
  c.conclusion = std::move(conclusion);
  return c;
}

Constraint MakeEgd(std::string name, std::vector<Atom> premise,
                   std::vector<std::pair<Term, Term>> equalities) {
  Constraint c;
  c.kind = Constraint::Kind::kEgd;
  c.name = std::move(name);
  c.premise = std::move(premise);
  c.equalities = std::move(equalities);
  return c;
}

std::string ToString(const Constraint& c) {
  std::string out = c.name + ": ";
  for (size_t i = 0; i < c.premise.size(); ++i) {
    if (i > 0) out += " ∧ ";
    out += ToString(c.premise[i]);
  }
  out += " → ";
  if (c.kind == Constraint::Kind::kTgd) {
    for (size_t i = 0; i < c.conclusion.size(); ++i) {
      if (i > 0) out += " ∧ ";
      out += ToString(c.conclusion[i]);
    }
  } else {
    for (size_t i = 0; i < c.equalities.size(); ++i) {
      if (i > 0) out += " ∧ ";
      out += ToString(c.equalities[i].first) + " = " +
             ToString(c.equalities[i].second);
    }
  }
  return out;
}

}  // namespace hadad::chase
