#ifndef HADAD_CHASE_HOMOMORPHISM_H_
#define HADAD_CHASE_HOMOMORPHISM_H_

#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "chase/ast.h"
#include "chase/instance.h"

namespace hadad::chase {

// A partial assignment of pattern variables to instance nodes.
using Binding = std::unordered_map<std::string, NodeId>;

// Enumerates the homomorphisms (containment mappings, §4.2) of `pattern`
// into `instance`, extending `seed`. For each match, calls `cb` with the
// completed binding and the matched fact ids (one per pattern atom, in
// pattern order). Return false from `cb` to stop the enumeration early.
//
// Constants in the pattern match only their interned node; a constant never
// interned in the instance cannot match. Repeated variables enforce
// equality. The instance must be clean (Rebuild() called after merges) for
// matches to be exhaustive.
void FindHomomorphisms(
    const std::vector<Atom>& pattern, const Instance& instance,
    const Binding& seed,
    const std::function<bool(const Binding&, const std::vector<FactId>&)>& cb);

// Per-atom fact-id window [lo, hi) used by semi-naive matching: atom i may
// only match facts whose id lies in ranges[i]. Pass one range per atom.
struct FactRange {
  FactId lo = 0;
  FactId hi = std::numeric_limits<FactId>::max();
};

// As FindHomomorphisms, but restricts each pattern atom to its FactRange.
// The chase engine uses this for semi-naive rounds: enumerating, for each
// pivot position p, matches where atom p binds a *new* fact, atoms before p
// bind old facts, and atoms after p are unrestricted — every new match is
// produced exactly once.
void FindHomomorphismsRanged(
    const std::vector<Atom>& pattern, const Instance& instance,
    const Binding& seed, const std::vector<FactRange>& ranges,
    const std::function<bool(const Binding&, const std::vector<FactId>&)>& cb);

// True iff at least one homomorphism of `pattern` extending `seed` exists.
bool HasHomomorphism(const std::vector<Atom>& pattern,
                     const Instance& instance, const Binding& seed);

}  // namespace hadad::chase

#endif  // HADAD_CHASE_HOMOMORPHISM_H_
