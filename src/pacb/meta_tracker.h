#ifndef HADAD_PACB_META_TRACKER_H_
#define HADAD_PACB_META_TRACKER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "chase/instance.h"
#include "cost/estimator.h"

namespace hadad::pacb {

// Tracks cost::ClassMeta per equivalence class while the chase runs:
// propagates dimensions and sparsity estimates through newly added operation
// facts (the "incremental evaluation" of §7.3), folds metadata across EGD
// merges, and materializes `size` facts so that dimension-sensitive
// constraints (the row/column-vector rules of MMC_StatAgg) can fire.
class MetaTracker {
 public:
  MetaTracker(chase::Instance* instance,
              const cost::SparsityEstimator* estimator);

  // Seeds the metadata of a class (canonicalized). Emits its size fact.
  void Seed(chase::NodeId node, cost::ClassMeta meta);

  // Metadata of a class, or nullptr if unknown. Canonicalizes internally.
  const cost::ClassMeta* Get(chase::NodeId node) const;

  // Estimated intermediate size of a class (§7.1's measure), or +inf when
  // unknown.
  double SizeOf(chase::NodeId node) const;

  // Largest known class size. PACB++ floors its pruning bound here so that
  // chase-phase derivations at the scale of the query's own operands are
  // never pruned (only super-linear blowups are).
  double MaxKnownSize() const;

  // Hook for ChaseEngine::set_facts_added_observer.
  void OnFactsAdded(const std::vector<chase::FactId>& ids);

  // Hook for Instance::SetMergeObserver.
  void OnMerge(chase::NodeId absorbed, chase::NodeId survivor);

  // Propagates through every fact until fixpoint (used after seeding the
  // initial instance).
  void PropagateAll();

 private:
  // Attempts to derive output metadata for fact `id`; returns true if any
  // class meta was newly set.
  bool TryPropagate(chase::FactId id);

  void SetMeta(chase::NodeId canonical, cost::ClassMeta meta);
  void EmitSizeFact(chase::NodeId canonical, const cost::ClassMeta& meta);
  void EmitTypeFacts(chase::NodeId canonical, const cost::ClassMeta& meta);

  chase::Instance* instance_;
  const cost::SparsityEstimator* estimator_;
  std::unordered_map<chase::NodeId, cost::ClassMeta> meta_;
  // Facts to revisit when a class gains metadata.
  std::unordered_map<chase::NodeId, std::vector<chase::FactId>> waiters_;
};

}  // namespace hadad::pacb

#endif  // HADAD_PACB_META_TRACKER_H_
