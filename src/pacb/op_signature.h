#ifndef HADAD_PACB_OP_SIGNATURE_H_
#define HADAD_PACB_OP_SIGNATURE_H_

#include <string>
#include <vector>

#include "la/expr.h"

namespace hadad::pacb {

// Structural description of a VREM operation relation: which argument
// positions are inputs, which are outputs, and how each output decodes back
// to an LA operator (dec_LA's table).
struct OpOutput {
  int position;        // Argument position of the output class.
  int output_index;    // Estimator output selector (qr/lu factor).
  la::OpKind decode_kind;
};

struct OpSignature {
  std::vector<int> input_positions;
  std::vector<OpOutput> outputs;
};

// Signature for `predicate`, or nullptr when the relation is not an
// operation (name/size/type/sconst/zero/identity/morpheusJoin).
const OpSignature* GetOpSignature(const std::string& predicate);

}  // namespace hadad::pacb

#endif  // HADAD_PACB_OP_SIGNATURE_H_
