#include "pacb/meta_tracker.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <string>

#include "common/check.h"
#include "la/vrem.h"
#include "pacb/op_signature.h"

namespace hadad::pacb {

namespace {
namespace vrem = la::vrem;
}

MetaTracker::MetaTracker(chase::Instance* instance,
                         const cost::SparsityEstimator* estimator)
    : instance_(instance), estimator_(estimator) {
  HADAD_CHECK(instance != nullptr);
  HADAD_CHECK(estimator != nullptr);
}

void MetaTracker::Seed(chase::NodeId node, cost::ClassMeta meta) {
  SetMeta(instance_->Find(node), std::move(meta));
}

const cost::ClassMeta* MetaTracker::Get(chase::NodeId node) const {
  auto it = meta_.find(instance_->Find(node));
  return it == meta_.end() ? nullptr : &it->second;
}

double MetaTracker::SizeOf(chase::NodeId node) const {
  const cost::ClassMeta* m = Get(node);
  if (m == nullptr) return std::numeric_limits<double>::infinity();
  return m->SizeEstimate();
}

double MetaTracker::MaxKnownSize() const {
  double best = 0.0;
  for (const auto& [node, meta] : meta_) {
    best = std::max(best, meta.SizeEstimate());
  }
  return best;
}

void MetaTracker::SetMeta(chase::NodeId canonical, cost::ClassMeta meta) {
  auto [it, inserted] = meta_.emplace(canonical, meta);
  if (!inserted) {
    // Two estimates for one class (different derivations): keep the tighter
    // nnz; shapes of value-equal classes always agree under sound
    // constraints.
    if (meta.shape.NnzOrDense() < it->second.shape.NnzOrDense()) {
      it->second.shape.nnz = meta.shape.NnzOrDense();
      if (meta.mnc != nullptr) it->second.mnc = meta.mnc;
    }
    return;
  }
  EmitSizeFact(canonical, it->second);
  EmitTypeFacts(canonical, it->second);
  // Revisit facts that were waiting on this class.
  auto wit = waiters_.find(canonical);
  if (wit == waiters_.end()) return;
  std::vector<chase::FactId> pending = std::move(wit->second);
  waiters_.erase(wit);
  for (chase::FactId id : pending) TryPropagate(id);
}

void MetaTracker::EmitSizeFact(chase::NodeId canonical,
                               const cost::ClassMeta& meta) {
  int32_t size_pred = instance_->InternPredicate(vrem::kSize);
  chase::NodeId rows =
      instance_->InternConstant(std::to_string(meta.shape.rows));
  chase::NodeId cols =
      instance_->InternConstant(std::to_string(meta.shape.cols));
  instance_->AddFact(size_pred, {canonical, rows, cols}, chase::Derivation{},
                     /*initial=*/false, nullptr);
}

void MetaTracker::EmitTypeFacts(chase::NodeId canonical,
                                const cost::ClassMeta& meta) {
  int32_t type_pred = instance_->InternPredicate(vrem::kType);
  auto emit = [&](const char* tag) {
    instance_->AddFact(type_pred, {canonical, instance_->InternConstant(tag)},
                       chase::Derivation{}, /*initial=*/false, nullptr);
  };
  if (meta.shape.symmetric_pd) emit(vrem::kTypeSpd);
  if (meta.shape.lower_triangular) emit(vrem::kTypeLower);
  if (meta.shape.upper_triangular) emit(vrem::kTypeUpper);
  if (meta.shape.orthogonal) emit(vrem::kTypeOrthogonal);
  if (meta.shape.permutation) emit(vrem::kTypePermutation);
}

void MetaTracker::OnFactsAdded(const std::vector<chase::FactId>& ids) {
  for (chase::FactId id : ids) TryPropagate(id);
}

void MetaTracker::OnMerge(chase::NodeId absorbed, chase::NodeId survivor) {
  auto ait = meta_.find(absorbed);
  if (ait != meta_.end()) {
    cost::ClassMeta meta = std::move(ait->second);
    meta_.erase(ait);
    SetMeta(survivor, std::move(meta));
  }
  auto wit = waiters_.find(absorbed);
  if (wit != waiters_.end()) {
    std::vector<chase::FactId> pending = std::move(wit->second);
    waiters_.erase(wit);
    auto& dst = waiters_[survivor];
    dst.insert(dst.end(), pending.begin(), pending.end());
  }
}

bool MetaTracker::TryPropagate(chase::FactId id) {
  // Copy, not reference: SetMeta below emits size/type facts, and the
  // resulting AddFact can reallocate the instance's fact storage, which
  // would dangle a reference mid-loop.
  const chase::Fact f = instance_->fact(id);
  const std::string& pred = instance_->PredicateName(f.predicate);
  // Scalar literals carry their own metadata.
  if (pred == vrem::kSconst) {
    chase::NodeId node = instance_->Find(f.args[0]);
    if (meta_.contains(node)) return false;
    cost::ClassMeta meta;
    meta.shape.rows = 1;
    meta.shape.cols = 1;
    meta.shape.nnz = 1;
    SetMeta(node, std::move(meta));
    return true;
  }
  const OpSignature* sig = GetOpSignature(pred);
  if (sig == nullptr) return false;
  // Gather input metadata; park the fact on the first unknown input.
  std::vector<cost::ClassMeta> inputs;
  inputs.reserve(sig->input_positions.size());
  for (int pos : sig->input_positions) {
    chase::NodeId in = instance_->Find(f.args[static_cast<size_t>(pos)]);
    const cost::ClassMeta* m = Get(in);
    if (m == nullptr) {
      waiters_[in].push_back(id);
      return false;
    }
    inputs.push_back(*m);
  }
  bool changed = false;
  for (const OpOutput& out : sig->outputs) {
    chase::NodeId out_node =
        instance_->Find(f.args[static_cast<size_t>(out.position)]);
    if (meta_.contains(out_node)) continue;
    auto derived = estimator_->Propagate(pred, inputs, out.output_index);
    if (!derived.has_value()) continue;
    SetMeta(out_node, std::move(*derived));
    changed = true;
  }
  return changed;
}

void MetaTracker::PropagateAll() {
  // Iterate to fixpoint: the waiter queues handle most ordering, but seeded
  // metas may arrive after facts, so sweep until stable.
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (chase::FactId id = 0; id < instance_->num_facts(); ++id) {
      if (TryPropagate(id)) changed = true;
    }
  }
}

}  // namespace hadad::pacb
