#include "pacb/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/timer.h"
#include "la/encoder.h"
#include "la/parser.h"
#include "la/vrem.h"
#include "pacb/meta_tracker.h"
#include "pacb/op_signature.h"

namespace hadad::pacb {

namespace {

namespace vrem = la::vrem;
using chase::Binding;
using chase::FactId;
using chase::Instance;
using chase::NodeId;
using la::Expr;
using la::ExprPtr;
using la::OpKind;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;

// One way to obtain a class: scan a named input (base matrix or view), use
// a scalar literal, or apply the operator of fact `fact` (output
// `output_slot` of its signature).
struct Derivation {
  enum class Kind { kScan, kScalar, kOp };
  Kind kind;
  std::string scan_name;   // kScan.
  double scalar_value = 0; // kScalar.
  FactId fact = -1;        // kOp.
  int output_slot = 0;     // kOp: index into OpSignature::outputs.
};

struct ClassState {
  double contrib = kInf;  // Min cost of producing this class, counting its
                          // own output size when operator-derived (§7.1).
  Derivation best;
  bool has_option = false;
};

// The per-call rewriting machinery: one saturated instance per Optimize().
class RewriteSession {
 public:
  RewriteSession(const la::MetaCatalog& catalog,
                 const OptimizerOptions& options,
                 const std::vector<chase::Constraint>& constraints,
                 const std::vector<MorpheusJoinDecl>& morpheus_joins,
                 const cost::DataCatalog* data,
                 const cost::SparsityEstimator* estimator)
      : catalog_(catalog),
        options_(options),
        constraints_(constraints),
        morpheus_joins_(morpheus_joins),
        data_(data),
        estimator_(estimator),
        tracker_(&instance_, estimator) {}

  Result<RewriteResult> Run(const ExprPtr& expr);

 private:
  const matrix::Matrix* DataFor(const std::string& name) const {
    if (data_ == nullptr) return nullptr;
    auto it = data_->find(name);
    return it == data_->end() ? nullptr : it->second.get();
  }

  Status SeedInstance(const la::EncodedExpr& enc);
  bool Gate(int32_t constraint_index, const Binding& binding,
            const std::vector<FactId>& premise);
  void ComputeContribs();
  Result<ExprPtr> Decode(NodeId cls, int depth) const;

  const la::MetaCatalog& catalog_;
  const OptimizerOptions& options_;
  const std::vector<chase::Constraint>& constraints_;
  const std::vector<MorpheusJoinDecl>& morpheus_joins_;
  const cost::DataCatalog* data_;
  const cost::SparsityEstimator* estimator_;

  Instance instance_;
  MetaTracker tracker_;
  double threshold_ = kInf;  // T: cost of the best rewriting known so far.
  // Pruning bound: max(T, largest class of the original encoding). Chase
  // steps at the scale of the query's own operands always pass (they belong
  // to the unpruned chase phase of PACB); only super-linear blowups like
  // Example 7.2's (MN)M fragment are rejected.
  double prune_bound_ = kInf;
  NodeId root_ = chase::kNoNode;
  std::unordered_map<NodeId, ClassState> classes_;
};

Status RewriteSession::SeedInstance(const la::EncodedExpr& enc) {
  std::unordered_map<std::string, NodeId> var_nodes;
  auto node_of = [&](const chase::Term& t) -> NodeId {
    if (t.is_constant()) return instance_.InternConstant(t.text);
    auto it = var_nodes.find(t.text);
    if (it == var_nodes.end()) {
      it = var_nodes.emplace(t.text, instance_.FreshNull()).first;
    }
    return it->second;
  };
  auto add_atom = [&](const chase::Atom& atom) {
    std::vector<NodeId> args;
    args.reserve(atom.args.size());
    for (const chase::Term& t : atom.args) args.push_back(node_of(t));
    instance_.AddFact(instance_.InternPredicate(atom.predicate),
                      std::move(args), chase::Derivation{}, /*initial=*/true,
                      nullptr);
  };
  for (const chase::Atom& atom : enc.query.body) add_atom(atom);
  root_ = var_nodes.at(enc.root_var);

  // Seed base metadata on every named class (and every view name the query
  // mentions); everything else is derived by propagation.
  for (const chase::Atom& atom : enc.query.body) {
    if (atom.predicate != vrem::kName) continue;
    const std::string& name = atom.args[1].text;
    auto it = catalog_.find(name);
    if (it == catalog_.end()) {
      return Status::NotFound("no metadata for matrix '" + name + "'");
    }
    tracker_.Seed(var_nodes.at(atom.args[0].text),
                  estimator_->MakeBase(it->second, DataFor(name)));
  }

  // Morpheus normalized-matrix declarations: bind by name (I_name merges
  // these nodes with the query's if it mentions the same matrices).
  int32_t name_pred = instance_.InternPredicate(vrem::kName);
  int32_t mj_pred = instance_.InternPredicate(vrem::kMorpheusJoin);
  for (const MorpheusJoinDecl& decl : morpheus_joins_) {
    std::vector<NodeId> nodes;
    for (const std::string& n : {decl.t, decl.k, decl.u, decl.m}) {
      auto it = catalog_.find(n);
      if (it == catalog_.end()) {
        return Status::NotFound("morpheus join references unknown matrix '" +
                                n + "'");
      }
      NodeId node = instance_.FreshNull();
      instance_.AddFact(name_pred, {node, instance_.InternConstant(n)},
                        chase::Derivation{}, /*initial=*/true, nullptr);
      tracker_.Seed(node, estimator_->MakeBase(it->second, DataFor(n)));
      nodes.push_back(node);
    }
    instance_.AddFact(mj_pred, std::move(nodes), chase::Derivation{},
                      /*initial=*/true, nullptr);
  }
  tracker_.PropagateAll();
  return Status::OK();
}

bool RewriteSession::Gate(int32_t constraint_index, const Binding& binding,
                          const std::vector<FactId>& premise) {
  // View-IO constraints belong to PACB's chase phase, which is never pruned
  // (§4.2): their premise is the view's body, but *using* the view computes
  // none of it. They conclude only `name` atoms.
  {
    const chase::Constraint& c =
        constraints_[static_cast<size_t>(constraint_index)];
    bool names_only = true;
    for (const chase::Atom& atom : c.conclusion) {
      if (atom.predicate != vrem::kName) {
        names_only = false;
        break;
      }
    }
    if (names_only) return true;
  }
  // (1) Premise-fragment pruning (Example 7.2): the subquery determined by
  // the premise image must not already cost more than T. Its cost is the
  // total size of operator outputs consumed *within* the fragment.
  std::unordered_set<NodeId> used_as_input;
  std::vector<NodeId> outputs;
  for (FactId fid : premise) {
    const chase::Fact& f = instance_.fact(fid);
    const OpSignature* sig =
        GetOpSignature(instance_.PredicateName(f.predicate));
    if (sig == nullptr) continue;
    for (int pos : sig->input_positions) {
      used_as_input.insert(instance_.Find(f.args[static_cast<size_t>(pos)]));
    }
    for (const OpOutput& out : sig->outputs) {
      outputs.push_back(
          instance_.Find(f.args[static_cast<size_t>(out.position)]));
    }
  }
  double fragment = 0.0;
  for (NodeId n : outputs) {
    if (!used_as_input.contains(n)) continue;
    double s = tracker_.SizeOf(n);
    if (!std::isinf(s)) fragment += s;
  }
  if (fragment > prune_bound_ + kEps) return false;

  // (2) Conclusion-output pruning: an operator output larger than T can
  // only appear in plans costing more than T (γ is monotone), unless it is
  // the goal class itself.
  const chase::Constraint& c =
      constraints_[static_cast<size_t>(constraint_index)];
  const NodeId root = instance_.Find(root_);
  for (const chase::Atom& atom : c.conclusion) {
    const OpSignature* sig = GetOpSignature(atom.predicate);
    if (sig == nullptr) continue;
    std::vector<cost::ClassMeta> inputs;
    bool all_known = true;
    for (int pos : sig->input_positions) {
      const chase::Term& t = atom.args[static_cast<size_t>(pos)];
      NodeId n = chase::kNoNode;
      if (t.is_constant()) {
        n = instance_.LookupConstant(t.text);
      } else {
        auto it = binding.find(t.text);
        if (it != binding.end()) n = it->second;
      }
      const cost::ClassMeta* m =
          (n == chase::kNoNode) ? nullptr : tracker_.Get(n);
      if (m == nullptr) {
        all_known = false;
        break;
      }
      inputs.push_back(*m);
    }
    if (!all_known) continue;
    for (const OpOutput& out : sig->outputs) {
      const chase::Term& t = atom.args[static_cast<size_t>(out.position)];
      if (t.is_variable()) {
        auto it = binding.find(t.text);
        if (it != binding.end() && instance_.Find(it->second) == root) {
          continue;  // The goal class: its own size never counts.
        }
      }
      auto meta = estimator_->Propagate(atom.predicate, inputs,
                                        out.output_index);
      if (meta.has_value() && meta->SizeEstimate() > prune_bound_ + kEps) {
        return false;
      }
    }
  }
  return true;
}

void RewriteSession::ComputeContribs() {
  classes_.clear();
  // Scan/scalar options.
  int32_t name_pred = instance_.LookupPredicate(vrem::kName);
  if (name_pred >= 0) {
    for (FactId fid : instance_.FactsOf(name_pred)) {
      const chase::Fact& f = instance_.fact(fid);
      const std::string& nm = instance_.ConstantValue(f.args[1]);
      if (!catalog_.contains(nm)) continue;
      ClassState& st = classes_[instance_.Find(f.args[0])];
      if (0.0 < st.contrib) {
        st.contrib = 0.0;
        st.best = Derivation{Derivation::Kind::kScan, nm, 0, -1, 0};
        st.has_option = true;
      }
    }
  }
  int32_t sconst_pred = instance_.LookupPredicate(vrem::kSconst);
  if (sconst_pred >= 0) {
    for (FactId fid : instance_.FactsOf(sconst_pred)) {
      const chase::Fact& f = instance_.fact(fid);
      ClassState& st = classes_[instance_.Find(f.args[0])];
      if (0.0 < st.contrib) {
        st.contrib = 0.0;
        st.best = Derivation{Derivation::Kind::kScalar, "",
                             std::strtod(
                                 instance_.ConstantValue(f.args[1]).c_str(),
                                 nullptr),
                             -1, 0};
        st.has_option = true;
      }
    }
  }
  // Operator options, relaxed to fixpoint (derivations can be cyclic; every
  // operator option has weight ≥ its output size ≥ 1, so Bellman-Ford
  // converges).
  struct OpOption {
    NodeId out;
    std::vector<NodeId> ins;
    FactId fact;
    int slot;
    double out_size;
  };
  std::vector<OpOption> ops;
  for (FactId fid = 0; fid < instance_.num_facts(); ++fid) {
    const chase::Fact& f = instance_.fact(fid);
    const OpSignature* sig =
        GetOpSignature(instance_.PredicateName(f.predicate));
    if (sig == nullptr) continue;
    std::vector<NodeId> ins;
    ins.reserve(sig->input_positions.size());
    for (int pos : sig->input_positions) {
      ins.push_back(instance_.Find(f.args[static_cast<size_t>(pos)]));
    }
    for (size_t slot = 0; slot < sig->outputs.size(); ++slot) {
      NodeId out = instance_.Find(
          f.args[static_cast<size_t>(sig->outputs[slot].position)]);
      double out_size = tracker_.SizeOf(out);
      if (std::isinf(out_size)) continue;
      ops.push_back(OpOption{out, ins, fid, static_cast<int>(slot),
                             out_size});
    }
  }
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 256) {
    changed = false;
    for (const OpOption& op : ops) {
      double cand = op.out_size;
      for (NodeId in : op.ins) {
        auto it = classes_.find(in);
        if (it == classes_.end() || !it->second.has_option) {
          cand = kInf;
          break;
        }
        cand += it->second.contrib;
      }
      if (std::isinf(cand)) continue;
      ClassState& st = classes_[op.out];
      if (cand < st.contrib - kEps) {
        st.contrib = cand;
        st.best = Derivation{Derivation::Kind::kOp, "", 0, op.fact, op.slot};
        st.has_option = true;
        changed = true;
      }
    }
  }
}

Result<ExprPtr> RewriteSession::Decode(NodeId cls, int depth) const {
  if (depth > 256) {
    return Status::Internal("decode recursion limit hit (cyclic extraction)");
  }
  auto it = classes_.find(instance_.Find(cls));
  if (it == classes_.end() || !it->second.has_option) {
    return Status::NotFound("class has no decodable derivation");
  }
  const Derivation& d = it->second.best;
  switch (d.kind) {
    case Derivation::Kind::kScan:
      return Expr::MatrixRef(d.scan_name);
    case Derivation::Kind::kScalar:
      return Expr::Scalar(d.scalar_value);
    case Derivation::Kind::kOp:
      break;
  }
  const chase::Fact& f = instance_.fact(d.fact);
  const std::string& pred = instance_.PredicateName(f.predicate);
  const OpSignature* sig = GetOpSignature(pred);
  HADAD_CHECK(sig != nullptr);
  std::vector<ExprPtr> kids;
  kids.reserve(sig->input_positions.size());
  for (int pos : sig->input_positions) {
    HADAD_ASSIGN_OR_RETURN(
        ExprPtr kid,
        Decode(f.args[static_cast<size_t>(pos)], depth + 1));
    kids.push_back(std::move(kid));
  }
  const OpKind kind =
      sig->outputs[static_cast<size_t>(d.output_slot)].decode_kind;
  // Special spellings.
  if (pred == vrem::kInvS) {
    return Expr::Binary(OpKind::kDivide, Expr::Scalar(1.0), kids[0]);
  }
  if (la::Arity(kind) == 1) {
    return Expr::Unary(kind, kids[0]);
  }
  HADAD_CHECK_EQ(kids.size(), 2u);
  return Expr::Binary(kind, kids[0], kids[1]);
}

Result<RewriteResult> RewriteSession::Run(const ExprPtr& expr) {
  Timer timer;
  RewriteResult result;

  // γ(E): the threshold T starts at the cost of running E as stated.
  HADAD_ASSIGN_OR_RETURN(
      cost::ExprEstimate original,
      cost::EstimateExpression(*expr, catalog_, *estimator_, data_));
  result.original_cost = original.cost;
  threshold_ = original.cost;

  HADAD_ASSIGN_OR_RETURN(la::EncodedExpr enc,
                         la::EncodeExpression(*expr, catalog_));
  instance_.SetMergeObserver(
      [this](NodeId absorbed, NodeId survivor) {
        tracker_.OnMerge(absorbed, survivor);
      });
  HADAD_RETURN_IF_ERROR(SeedInstance(enc));
  prune_bound_ = std::max(threshold_, tracker_.MaxKnownSize());

  chase::ChaseEngine engine(&instance_, constraints_, options_.chase);
  engine.set_facts_added_observer(
      [this](const std::vector<FactId>& ids) { tracker_.OnFactsAdded(ids); });
  if (options_.prune) {
    engine.set_gate([this](int32_t ci, const Binding& b,
                           const std::vector<FactId>& premise) {
      return Gate(ci, b, premise);
    });
  }
  HADAD_ASSIGN_OR_RETURN(result.chase_stats, engine.Run());

  ComputeContribs();

  // Enumerate goal-class alternatives: the scan/scalar option plus every
  // operator fact producing the goal class, each with min-cost subplans.
  const NodeId root = instance_.Find(root_);
  struct Candidate {
    ExprPtr expr;
    double cost;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({expr, result.original_cost});
  auto try_candidate = [&](const Derivation& d, double cost) {
    // Temporarily install `d` as the root's best and decode.
    auto it = classes_.find(root);
    if (it == classes_.end()) return;
    ClassState saved = it->second;
    it->second.best = d;
    it->second.has_option = true;
    auto decoded = Decode(root, 0);
    it->second = saved;
    if (!decoded.ok()) return;
    // Re-estimate the decoded tree for the reported cost; fall back to the
    // extraction cost if estimation fails (it should not).
    double reported = cost;
    auto est = cost::EstimateExpression(**decoded, catalog_, *estimator_,
                                        data_);
    if (est.ok()) reported = est->cost;
    candidates.push_back({*decoded, reported});
  };
  auto root_state = classes_.find(root);
  if (root_state != classes_.end() && root_state->second.has_option) {
    // Scan/scalar option (view-only rewriting, RW_0 of §6.3).
    if (root_state->second.best.kind != Derivation::Kind::kOp) {
      try_candidate(root_state->second.best, 0.0);
    }
  }
  for (FactId fid = 0; fid < instance_.num_facts(); ++fid) {
    const chase::Fact& f = instance_.fact(fid);
    const std::string& pred = instance_.PredicateName(f.predicate);
    const OpSignature* sig = GetOpSignature(pred);
    if (sig == nullptr) continue;
    for (size_t slot = 0; slot < sig->outputs.size(); ++slot) {
      NodeId out = instance_.Find(
          f.args[static_cast<size_t>(sig->outputs[slot].position)]);
      if (out != root) continue;
      // Root cost: children contribs only (the root's own size is free).
      double cost = 0.0;
      bool ok = true;
      for (int pos : sig->input_positions) {
        auto it = classes_.find(
            instance_.Find(f.args[static_cast<size_t>(pos)]));
        if (it == classes_.end() || !it->second.has_option) {
          ok = false;
          break;
        }
        cost += it->second.contrib;
      }
      // PACB++ only surfaces minimum-cost-bounded rewritings; the naive
      // algorithm (prune = false) enumerates all of them (§7.3).
      if (!ok || (options_.prune && cost > threshold_ + kEps)) continue;
      try_candidate(
          Derivation{Derivation::Kind::kOp, "", 0, fid,
                     static_cast<int>(slot)},
          cost);
    }
  }

  // Dedupe (by rendered text), sort by (cost, tree size, text).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              int64_t sa = a.expr->TreeSize();
              int64_t sb = b.expr->TreeSize();
              if (sa != sb) return sa < sb;
              return ToString(a.expr) < ToString(b.expr);
            });
  std::unordered_set<std::string> seen;
  for (const Candidate& c : candidates) {
    if (!seen.insert(ToString(c.expr)).second) continue;
    if (static_cast<int>(result.rewrites.size()) < options_.max_rewrites) {
      result.rewrites.push_back(c.expr);
    }
    if (result.best == nullptr) {
      result.best = c.expr;
      result.best_cost = c.cost;
    }
  }
  HADAD_CHECK(result.best != nullptr);  // The original is always a candidate.
  // Ties on cost fall to the smaller tree (a view scan beats re-evaluating
  // an equal-cost pipeline, §6.3's RW_0), then to text for determinism.
  result.improved = !result.best->Equals(*expr);
  result.optimize_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace

Optimizer::Optimizer(la::MetaCatalog catalog, OptimizerOptions options)
    : catalog_(std::move(catalog)), options_(options) {}

std::unique_ptr<cost::SparsityEstimator> Optimizer::MakeEstimator() const {
  if (options_.estimator == EstimatorKind::kMnc) {
    return std::make_unique<cost::MncEstimator>();
  }
  return std::make_unique<cost::NaiveMetadataEstimator>();
}

Status Optimizer::AddView(const std::string& name,
                          const la::ExprPtr& definition) {
  if (catalog_.contains(name)) {
    return Status::InvalidArgument("name '" + name + "' already registered");
  }
  auto estimator = MakeEstimator();
  HADAD_ASSIGN_OR_RETURN(
      cost::ExprEstimate est,
      cost::EstimateExpression(*definition, catalog_, *estimator, data_));
  HADAD_ASSIGN_OR_RETURN(
      std::vector<chase::Constraint> constraints,
      la::EncodeViewConstraints(name, *definition, catalog_));
  catalog_[name] = est.output.shape;
  views_.push_back(ViewDef{name, definition, std::move(constraints)});
  return Status::OK();
}

Status Optimizer::AddViewText(const std::string& name,
                              const std::string& definition_text) {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr def,
                         la::ParseExpression(definition_text));
  return AddView(name, def);
}

Status Optimizer::RemoveView(const std::string& name) {
  auto it = std::find_if(views_.begin(), views_.end(),
                         [&name](const ViewDef& v) { return v.name == name; });
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "' registered");
  }
  views_.erase(it);
  catalog_.erase(name);
  return Status::OK();
}

Status Optimizer::UpdateBaseMeta(const std::string& name,
                                 const la::MatrixMeta& meta) {
  if (std::any_of(views_.begin(), views_.end(),
                  [&name](const ViewDef& v) { return v.name == name; })) {
    return Status::InvalidArgument(
        "'" + name + "' is a registered view; re-register it instead");
  }
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no metadata for matrix '" + name + "'");
  }
  it->second = meta;
  return Status::OK();
}

Status Optimizer::AddBaseMeta(const std::string& name,
                              const la::MatrixMeta& meta) {
  if (catalog_.contains(name)) {
    return Status::InvalidArgument(
        "metadata for '" + name + "' already registered; use UpdateBaseMeta");
  }
  catalog_.emplace(name, meta);
  return Status::OK();
}

Status Optimizer::RemoveBaseMeta(const std::string& name) {
  if (std::any_of(views_.begin(), views_.end(),
                  [&name](const ViewDef& v) { return v.name == name; })) {
    return Status::InvalidArgument(
        "'" + name + "' is a registered view; use RemoveView");
  }
  if (catalog_.erase(name) == 0) {
    return Status::NotFound("no metadata for matrix '" + name + "'");
  }
  return Status::OK();
}

Status Optimizer::AddMorpheusJoin(const MorpheusJoinDecl& decl) {
  for (const std::string& n : {decl.t, decl.k, decl.u, decl.m}) {
    if (!catalog_.contains(n)) {
      return Status::NotFound("morpheus join references unknown matrix '" +
                              n + "'");
    }
  }
  morpheus_joins_.push_back(decl);
  return Status::OK();
}

void Optimizer::AddConstraints(std::vector<chase::Constraint> constraints) {
  for (chase::Constraint& c : constraints) {
    extra_constraints_.push_back(std::move(c));
  }
}

Result<RewriteResult> Optimizer::Optimize(const la::ExprPtr& expr) const {
  auto estimator = MakeEstimator();
  std::vector<chase::Constraint> constraints = la::BuildMmc(options_.catalog);
  for (const ViewDef& v : views_) {
    for (const chase::Constraint& c : v.constraints) {
      constraints.push_back(c);
    }
  }
  for (const chase::Constraint& c : extra_constraints_) {
    constraints.push_back(c);
  }
  RewriteSession session(catalog_, options_, constraints, morpheus_joins_,
                         data_, estimator.get());
  return session.Run(expr);
}

Result<RewriteResult> Optimizer::OptimizeText(
    const std::string& expr_text) const {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr expr, la::ParseExpression(expr_text));
  return Optimize(expr);
}

}  // namespace hadad::pacb
