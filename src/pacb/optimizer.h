#ifndef HADAD_PACB_OPTIMIZER_H_
#define HADAD_PACB_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "chase/engine.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "cost/estimator.h"
#include "la/catalog.h"
#include "la/expr.h"

namespace hadad::pacb {

enum class EstimatorKind { kNaive, kMnc };

struct OptimizerOptions {
  EstimatorKind estimator = EstimatorKind::kNaive;
  // Prune_prov (§7.3): reject chase steps whose premise fragment or
  // conclusion outputs exceed the best-known rewriting cost.
  bool prune = true;
  la::CatalogOptions catalog;
  chase::ChaseOptions chase;
  // Cap on enumerated alternative rewritings returned in RewriteResult.
  int max_rewrites = 32;
};

// A materialized view: `name` is its scan name (how rewritings refer to it),
// `definition` the LA expression it materializes, `constraints` the view-IO
// TGDs encoded from the definition (kept per view so RemoveView can retract
// them).
struct ViewDef {
  std::string name;
  la::ExprPtr definition;
  std::vector<chase::Constraint> constraints;
};

// A Morpheus normalized-matrix declaration: matrix `m` is the PK-FK join of
// `t` and `u` with indicator `k` (M = [T | K U]). Lets the Morpheus rewrite
// rules fire on expressions over `m` (§9.2).
struct MorpheusJoinDecl {
  std::string t;
  std::string k;
  std::string u;
  std::string m;
};

struct RewriteResult {
  la::ExprPtr best;           // Minimum-cost rewriting (== input if optimal).
  double best_cost = 0.0;     // γ(best).
  double original_cost = 0.0; // γ(input).
  bool improved = false;
  // Distinct equivalent rewritings discovered (root-level alternatives with
  // min-cost subplans), sorted by cost; includes `best`.
  std::vector<la::ExprPtr> rewrites;
  chase::ChaseStats chase_stats;
  double optimize_seconds = 0.0;  // RW_find in the paper's terminology.
};

// HADAD⟨LAprop, V, γ⟩ (§8): relational encoding → PACB++ chase with
// cost-based pruning → minimum-cost decoding.
//
// Construction declares the static environment (base-matrix metadata, views,
// Morpheus joins, data for MNC base histograms); Optimize() rewrites one
// expression against it.
class Optimizer {
 public:
  explicit Optimizer(la::MetaCatalog catalog, OptimizerOptions options = {});

  // Registers a materialized view. Its output shape joins the metadata
  // catalog under `name`, so both queries and rewritings may reference it.
  Status AddView(const std::string& name, const la::ExprPtr& definition);
  // Convenience: parse `definition_text` first.
  Status AddViewText(const std::string& name,
                     const std::string& definition_text);
  // Unregisters a view added with AddView: drops its catalog entry and its
  // view-IO constraints, so later Optimize() calls can no longer answer
  // queries from it. NotFound when `name` is not a registered view. The
  // adaptive view store calls this on eviction.
  Status RemoveView(const std::string& name);
  const std::vector<ViewDef>& views() const { return views_; }

  Status AddMorpheusJoin(const MorpheusJoinDecl& decl);

  // Retracts and re-asserts the base-metadata facts for `name` after a data
  // mutation: later Optimize() calls seed shape/sparsity/type flags from
  // `meta` (all of them can change under Update/Append). InvalidArgument
  // when `name` is a registered view — a view's metadata follows from its
  // definition, so mutated views are re-registered via RemoveView+AddView.
  // NotFound when the name was never registered.
  Status UpdateBaseMeta(const std::string& name, const la::MatrixMeta& meta);
  // Registers the base-metadata facts for a name introduced after
  // construction (api::Session::Put binding a brand-new matrix).
  // InvalidArgument when the name is already registered — the caller must
  // choose Update semantics explicitly for an existing binding.
  Status AddBaseMeta(const std::string& name, const la::MatrixMeta& meta);
  // Drops the base-metadata entry for `name` (its data left the session).
  // Same view/NotFound contract as UpdateBaseMeta.
  Status RemoveBaseMeta(const std::string& name);

  // Supplies actual matrices (by name) so the MNC estimator can build exact
  // base histograms; also used for materialized view contents. Not owned;
  // must outlive the optimizer.
  void SetData(const cost::DataCatalog* data) { data_ = data; }

  // Extends HADAD's semantic knowledge: appends user constraints to MMC
  // (the extensibility contract of §1 — declare, don't code).
  void AddConstraints(std::vector<chase::Constraint> constraints);

  // The metadata catalog including registered view shapes.
  const la::MetaCatalog& catalog() const { return catalog_; }

  Result<RewriteResult> Optimize(const la::ExprPtr& expr) const;
  // Convenience: parse + optimize.
  Result<RewriteResult> OptimizeText(const std::string& expr_text) const;

 private:
  std::unique_ptr<cost::SparsityEstimator> MakeEstimator() const;

  la::MetaCatalog catalog_;
  OptimizerOptions options_;
  std::vector<ViewDef> views_;
  std::vector<chase::Constraint> extra_constraints_;
  std::vector<MorpheusJoinDecl> morpheus_joins_;
  const cost::DataCatalog* data_ = nullptr;
};

}  // namespace hadad::pacb

#endif  // HADAD_PACB_OPTIMIZER_H_
