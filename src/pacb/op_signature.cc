#include "pacb/op_signature.h"

#include <map>

#include "la/vrem.h"

namespace hadad::pacb {

namespace {

namespace vrem = la::vrem;
using la::OpKind;

std::map<std::string, OpSignature> BuildTable() {
  std::map<std::string, OpSignature> t;
  auto unary = [&t](const char* pred, OpKind kind) {
    t[pred] = OpSignature{{0}, {{1, 0, kind}}};
  };
  auto binary = [&t](const char* pred, OpKind kind) {
    t[pred] = OpSignature{{0, 1}, {{2, 0, kind}}};
  };
  unary(vrem::kTr, OpKind::kTranspose);
  unary(vrem::kInvM, OpKind::kInverse);
  unary(vrem::kDet, OpKind::kDet);
  unary(vrem::kTrace, OpKind::kTrace);
  unary(vrem::kDiag, OpKind::kDiag);
  unary(vrem::kExp, OpKind::kExp);
  unary(vrem::kAdj, OpKind::kAdjoint);
  unary(vrem::kRev, OpKind::kRev);
  unary(vrem::kSum, OpKind::kSum);
  unary(vrem::kRowSums, OpKind::kRowSums);
  unary(vrem::kColSums, OpKind::kColSums);
  unary(vrem::kMin, OpKind::kMin);
  unary(vrem::kMax, OpKind::kMax);
  unary(vrem::kMean, OpKind::kMean);
  unary(vrem::kVar, OpKind::kVar);
  unary(vrem::kRowMin, OpKind::kRowMins);
  unary(vrem::kRowMax, OpKind::kRowMaxs);
  unary(vrem::kRowMean, OpKind::kRowMeans);
  unary(vrem::kRowVar, OpKind::kRowVars);
  unary(vrem::kColMin, OpKind::kColMins);
  unary(vrem::kColMax, OpKind::kColMaxs);
  unary(vrem::kColMean, OpKind::kColMeans);
  unary(vrem::kColVar, OpKind::kColVars);
  unary(vrem::kCho, OpKind::kCholesky);
  binary(vrem::kMultiM, OpKind::kMultiply);
  binary(vrem::kAddM, OpKind::kAdd);
  binary(vrem::kMultiE, OpKind::kHadamard);
  binary(vrem::kDivM, OpKind::kDivide);
  binary(vrem::kDivMS, OpKind::kDivide);
  binary(vrem::kSumD, OpKind::kDirectSum);
  binary(vrem::kProductD, OpKind::kKronecker);
  binary(vrem::kCbind, OpKind::kCbind);
  // Scalar arithmetic decodes to the 1x1-matrix operators.
  binary(vrem::kMultiS, OpKind::kHadamard);
  binary(vrem::kAddS, OpKind::kAdd);
  binary(vrem::kDivS, OpKind::kDivide);
  // multiMS(s, M, R): scalar-first product decodes to s * M.
  binary(vrem::kMultiMS, OpKind::kHadamard);
  // invS(a, b) decodes via 1/a — handled specially by the decoder.
  t[vrem::kInvS] = OpSignature{{0}, {{1, 0, OpKind::kDivide}}};
  // Two-output decompositions.
  t[vrem::kQr] = OpSignature{
      {0}, {{1, 0, OpKind::kQrQ}, {2, 1, OpKind::kQrR}}};
  t[vrem::kLu] = OpSignature{
      {0}, {{1, 0, OpKind::kLuL}, {2, 1, OpKind::kLuU}}};
  t[vrem::kLup] = OpSignature{{0},
                              {{1, 0, OpKind::kPluL},
                               {2, 1, OpKind::kPluU},
                               {3, 2, OpKind::kPluP}}};
  return t;
}

}  // namespace

const OpSignature* GetOpSignature(const std::string& predicate) {
  static const auto* kTable = new std::map<std::string, OpSignature>(
      BuildTable());
  auto it = kTable->find(predicate);
  return it == kTable->end() ? nullptr : &it->second;
}

}  // namespace hadad::pacb
