#ifndef HADAD_MORPHEUS_GENERATOR_H_
#define HADAD_MORPHEUS_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "morpheus/normalized_matrix.h"

namespace hadad::morpheus {

// §9.2.1's synthetic PK-FK setup: tables R (dimension, nR rows, dR
// features) and S (fact, nS rows, dS features); M = S ⋈ R cast as a
// nS x (dS + dR) dense matrix. The sweep fixes nR and dS and varies the
// tuple ratio (nS/nR) and feature ratio (dR/dS).
struct PkFkConfig {
  int64_t n_r = 1000;    // Dimension-table rows (paper: 1M; scaled).
  int64_t d_s = 20;      // Fact-table features (paper's fixed dS).
  double tuple_ratio = 5.0;    // nS / nR.
  double feature_ratio = 2.0;  // dR / dS.
};

// Builds the normalized matrix for a configuration: T = S's features
// (dense), K = FK indicator (sparse, uniform foreign keys), U = R's
// features (dense).
NormalizedMatrix GeneratePkFk(Rng& rng, const PkFkConfig& config);

}  // namespace hadad::morpheus

#endif  // HADAD_MORPHEUS_GENERATOR_H_
