#include "morpheus/engine.h"

#include "common/timer.h"

namespace hadad::morpheus {

namespace {

using la::Expr;
using la::ExprPtr;
using la::OpKind;
using matrix::Matrix;

class Evaluator {
 public:
  Evaluator(const MorpheusEngine& owner, const engine::Workspace& workspace,
            engine::ExecStats* stats)
      : owner_(owner), workspace_(workspace), stats_(stats) {}

  Result<Matrix> Eval(const Expr& e, bool is_root) {
    // --- Morpheus pushdown patterns --------------------------------------
    const NormalizedMatrix* nm;
    bool transposed;
    if (e.kind() == OpKind::kColSums &&
        MatchNormalized(*e.child(0), &nm, &transposed)) {
      // colSums(M) factorized; colSums(t(M)) = t(rowSums(M)).
      auto out = transposed ? Transposed(nm->RowSums()) : nm->ColSums();
      return Record(std::move(out), is_root);
    }
    if (e.kind() == OpKind::kRowSums &&
        MatchNormalized(*e.child(0), &nm, &transposed)) {
      auto out = transposed ? Transposed(nm->ColSums()) : nm->RowSums();
      return Record(std::move(out), is_root);
    }
    if (e.kind() == OpKind::kSum &&
        MatchNormalized(*e.child(0), &nm, &transposed)) {
      HADAD_ASSIGN_OR_RETURN(double s, nm->Sum());  // sum(M^T) = sum(M).
      return Record(Matrix::Scalar(s), is_root);
    }
    if (e.kind() == OpKind::kMultiply) {
      // M %*% N (right multiply) and C %*% M (left multiply), including the
      // M^T variants via Morpheus's transpose rewrite rules.
      if (MatchNormalized(*e.child(0), &nm, &transposed)) {
        HADAD_ASSIGN_OR_RETURN(Matrix rhs, Eval(*e.child(1), false));
        if (!rhs.IsScalar()) {
          if (!transposed && nm->cols() == rhs.rows()) {
            return Record(nm->RightMultiply(rhs), is_root);
          }
          if (transposed && nm->rows() == rhs.rows()) {
            // t(M) %*% N = t(t(N) %*% M).
            return Record(
                Transposed(nm->LeftMultiply(matrix::Transpose(rhs))),
                is_root);
          }
        }
        HADAD_ASSIGN_OR_RETURN(Matrix lhs, Eval(*e.child(0), false));
        return Record(matrix::Multiply(lhs, rhs), is_root);
      }
      if (MatchNormalized(*e.child(1), &nm, &transposed)) {
        HADAD_ASSIGN_OR_RETURN(Matrix lhs, Eval(*e.child(0), false));
        if (!lhs.IsScalar()) {
          if (!transposed && lhs.cols() == nm->rows()) {
            return Record(nm->LeftMultiply(lhs), is_root);
          }
          if (transposed && lhs.cols() == nm->cols()) {
            // N %*% t(M) = t(M %*% t(N)).
            return Record(
                Transposed(nm->RightMultiply(matrix::Transpose(lhs))),
                is_root);
          }
        }
        HADAD_ASSIGN_OR_RETURN(Matrix rhs, Eval(*e.child(1), false));
        return Record(matrix::Multiply(lhs, rhs), is_root);
      }
    }
    // --- No pushdown: normalized refs materialize; otherwise recurse. ----
    if (e.kind() == OpKind::kMatrixRef) {
      const NormalizedMatrix* ref = owner_.Lookup(e.name());
      if (ref != nullptr) {
        HADAD_ASSIGN_OR_RETURN(Matrix m, ref->Materialize());
        return Record(std::move(m), is_root);
      }
      HADAD_ASSIGN_OR_RETURN(const Matrix* m, workspace_.Get(e.name()));
      return *m;
    }
    if (e.kind() == OpKind::kScalarConst) {
      return Matrix::Scalar(e.scalar_value());
    }
    // Generic evaluation over materialized children: reuse the base
    // engine's kernels by building a one-off expression over literals is
    // overkill; instead apply the kernel directly.
    std::vector<Matrix> kids;
    kids.reserve(e.children().size());
    for (const ExprPtr& c : e.children()) {
      HADAD_ASSIGN_OR_RETURN(Matrix m, Eval(*c, false));
      kids.push_back(std::move(m));
    }
    HADAD_ASSIGN_OR_RETURN(Matrix out, ApplyKernel(e, kids));
    return Record(std::move(out), is_root);
  }

 private:
  // Matches Ref(name) or t(Ref(name)) for a registered normalized matrix.
  bool MatchNormalized(const Expr& e, const NormalizedMatrix** nm,
                       bool* transposed) {
    if (e.kind() == OpKind::kMatrixRef) {
      *nm = owner_.Lookup(e.name());
      *transposed = false;
      return *nm != nullptr;
    }
    if (e.kind() == OpKind::kTranspose &&
        e.child(0)->kind() == OpKind::kMatrixRef) {
      *nm = owner_.Lookup(e.child(0)->name());
      *transposed = true;
      return *nm != nullptr;
    }
    return false;
  }

  Result<Matrix> Transposed(Result<Matrix> m) {
    if (!m.ok()) return m;
    return matrix::Transpose(*m);
  }

  Result<Matrix> Record(Result<Matrix> m, bool is_root) {
    if (!m.ok()) return m;
    if (stats_ != nullptr) {
      ++stats_->operators;
      if (!is_root) {
        stats_->intermediate_nnz += static_cast<double>(m->Nnz());
      }
    }
    return m;
  }

  Result<Matrix> ApplyKernel(const Expr& e, const std::vector<Matrix>& in) {
    // Delegate to the base evaluator by wrapping inputs in a scratch
    // workspace keyed positionally.
    engine::Workspace scratch;
    std::vector<ExprPtr> leaves;
    for (size_t i = 0; i < in.size(); ++i) {
      std::string name = "__arg" + std::to_string(i);
      scratch.Put(name, in[i]);
      leaves.push_back(Expr::MatrixRef(name));
    }
    ExprPtr wrapper;
    if (la::Arity(e.kind()) == 1) {
      wrapper = Expr::Unary(e.kind(), leaves[0]);
    } else {
      wrapper = Expr::Binary(e.kind(), leaves[0], leaves[1]);
    }
    return engine::Execute(*wrapper, scratch);
  }

  const MorpheusEngine& owner_;
  const engine::Workspace& workspace_;
  engine::ExecStats* stats_;
};

}  // namespace

Result<matrix::Matrix> MorpheusEngine::Run(const la::ExprPtr& expr,
                                           engine::ExecStats* stats) const {
  Timer timer;
  Evaluator evaluator(*this, *workspace_, stats);
  Result<matrix::Matrix> out = evaluator.Eval(*expr, /*is_root=*/true);
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace hadad::morpheus
