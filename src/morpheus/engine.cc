#include "morpheus/engine.h"

#include <thread>

#include "common/timer.h"

namespace hadad::morpheus {

namespace {

using la::Expr;
using la::ExprPtr;
using la::OpKind;
using matrix::Matrix;

class Evaluator {
 public:
  Evaluator(const MorpheusEngine& owner, const engine::Workspace& workspace,
            engine::ExecStats* stats, const matrix::RangeRunner& runner,
            const obs::TraceContext* trace)
      : owner_(owner),
        workspace_(workspace),
        stats_(stats),
        runner_(runner),
        trace_(trace) {}

  Result<Matrix> Eval(const Expr& e, bool is_root) {
    // --- Morpheus pushdown patterns --------------------------------------
    const NormalizedMatrix* nm;
    bool transposed;
    if (e.kind() == OpKind::kColSums &&
        MatchNormalized(*e.child(0), &nm, &transposed)) {
      // colSums(M) factorized; colSums(t(M)) = t(rowSums(M)).
      auto out = transposed
                     ? Traced("nm_rowsums",
                              [&] { return Transposed(nm->RowSums(runner_)); })
                     : Traced("nm_colsums",
                              [&] { return nm->ColSums(runner_); });
      return Record(std::move(out), is_root);
    }
    if (e.kind() == OpKind::kRowSums &&
        MatchNormalized(*e.child(0), &nm, &transposed)) {
      auto out = transposed
                     ? Traced("nm_colsums",
                              [&] { return Transposed(nm->ColSums(runner_)); })
                     : Traced("nm_rowsums",
                              [&] { return nm->RowSums(runner_); });
      return Record(std::move(out), is_root);
    }
    if (e.kind() == OpKind::kSum &&
        MatchNormalized(*e.child(0), &nm, &transposed)) {
      auto out = Traced("nm_sum", [&]() -> Result<Matrix> {
        HADAD_ASSIGN_OR_RETURN(double s, nm->Sum(runner_));  // sum(M^T)=sum(M)
        return Matrix::Scalar(s);
      });
      return Record(std::move(out), is_root);
    }
    if (e.kind() == OpKind::kMultiply) {
      // M %*% N (right multiply) and C %*% M (left multiply), including the
      // M^T variants via Morpheus's transpose rewrite rules.
      if (MatchNormalized(*e.child(0), &nm, &transposed)) {
        HADAD_ASSIGN_OR_RETURN(Matrix rhs, Eval(*e.child(1), false));
        if (!rhs.IsScalar()) {
          if (!transposed && nm->cols() == rhs.rows()) {
            return Record(Traced("nm_right_multiply",
                                 [&] { return nm->RightMultiply(rhs, runner_); }),
                          is_root);
          }
          if (transposed && nm->rows() == rhs.rows()) {
            // t(M) %*% N = t(t(N) %*% M).
            return Record(
                Traced("nm_left_multiply",
                       [&] {
                         return Transposed(nm->LeftMultiply(
                             matrix::Transpose(rhs), runner_));
                       }),
                is_root);
          }
        }
        HADAD_ASSIGN_OR_RETURN(Matrix lhs, Eval(*e.child(0), false));
        return Record(matrix::Multiply(lhs, rhs), is_root);
      }
      if (MatchNormalized(*e.child(1), &nm, &transposed)) {
        HADAD_ASSIGN_OR_RETURN(Matrix lhs, Eval(*e.child(0), false));
        if (!lhs.IsScalar()) {
          if (!transposed && lhs.cols() == nm->rows()) {
            return Record(Traced("nm_left_multiply",
                                 [&] { return nm->LeftMultiply(lhs, runner_); }),
                          is_root);
          }
          if (transposed && lhs.cols() == nm->cols()) {
            // N %*% t(M) = t(M %*% t(N)).
            return Record(
                Traced("nm_right_multiply",
                       [&] {
                         return Transposed(nm->RightMultiply(
                             matrix::Transpose(lhs), runner_));
                       }),
                is_root);
          }
        }
        HADAD_ASSIGN_OR_RETURN(Matrix rhs, Eval(*e.child(1), false));
        return Record(matrix::Multiply(lhs, rhs), is_root);
      }
    }
    // --- No pushdown: normalized refs materialize; otherwise recurse. ----
    if (e.kind() == OpKind::kMatrixRef) {
      const NormalizedMatrix* ref = owner_.Lookup(e.name());
      if (ref != nullptr) {
        HADAD_ASSIGN_OR_RETURN(
            Matrix m,
            Traced("nm_materialize", [&] { return ref->Materialize(); }));
        return Record(std::move(m), is_root);
      }
      HADAD_ASSIGN_OR_RETURN(const Matrix* m, workspace_.Get(e.name()));
      return *m;
    }
    if (e.kind() == OpKind::kScalarConst) {
      return Matrix::Scalar(e.scalar_value());
    }
    // Generic evaluation over materialized children: reuse the base
    // engine's kernels by building a one-off expression over literals is
    // overkill; instead apply the kernel directly.
    std::vector<Matrix> kids;
    kids.reserve(e.children().size());
    for (const ExprPtr& c : e.children()) {
      HADAD_ASSIGN_OR_RETURN(Matrix m, Eval(*c, false));
      kids.push_back(std::move(m));
    }
    HADAD_ASSIGN_OR_RETURN(Matrix out, ApplyKernel(e, kids));
    return Record(std::move(out), is_root);
  }

 private:
  // Matches Ref(name) or t(Ref(name)) for a registered normalized matrix.
  bool MatchNormalized(const Expr& e, const NormalizedMatrix** nm,
                       bool* transposed) {
    if (e.kind() == OpKind::kMatrixRef) {
      *nm = owner_.Lookup(e.name());
      *transposed = false;
      return *nm != nullptr;
    }
    if (e.kind() == OpKind::kTranspose &&
        e.child(0)->kind() == OpKind::kMatrixRef) {
      *nm = owner_.Lookup(e.child(0)->name());
      *transposed = true;
      return *nm != nullptr;
    }
    return false;
  }

  Result<Matrix> Transposed(Result<Matrix> m) {
    if (!m.ok()) return m;
    return matrix::Transpose(*m);
  }

  // Wraps one factorized pushdown in a "kernel" trace span (same category
  // as the DAG scheduler's per-operator spans, so tooling sees one uniform
  // kernel layer). Measured around `fn` and published in a single
  // AddCompleteSpan call — no trace-lock traffic inside the kernel itself.
  template <typename Fn>
  Result<Matrix> Traced(const char* kernel, Fn&& fn) {
    if (trace_ == nullptr || trace_->recorder == nullptr ||
        !trace_->recorder->enabled()) {
      return fn();
    }
    obs::TraceRecorder* rec = trace_->recorder;
    const int64_t start = rec->NowMicros();
    Result<Matrix> out = fn();
    std::vector<std::pair<std::string, std::string>> attrs;
    if (out.ok()) {
      attrs.emplace_back("rows", std::to_string(out->rows()));
      attrs.emplace_back("cols", std::to_string(out->cols()));
    }
    attrs.emplace_back("parallel", runner_ != nullptr ? "1" : "0");
    rec->AddCompleteSpan(
        kernel, "kernel", trace_->parent, start, rec->NowMicros() - start,
        std::hash<std::thread::id>{}(std::this_thread::get_id()),
        std::move(attrs));
    return out;
  }

  Result<Matrix> Record(Result<Matrix> m, bool is_root) {
    if (!m.ok()) return m;
    if (stats_ != nullptr) {
      ++stats_->operators;
      if (!is_root) {
        stats_->intermediate_nnz += static_cast<double>(m->Nnz());
      }
    }
    return m;
  }

  Result<Matrix> ApplyKernel(const Expr& e, const std::vector<Matrix>& in) {
    // Delegate to the base evaluator by wrapping inputs in a scratch
    // workspace keyed positionally.
    engine::Workspace scratch;
    std::vector<ExprPtr> leaves;
    for (size_t i = 0; i < in.size(); ++i) {
      std::string name = "__arg" + std::to_string(i);
      scratch.Put(name, in[i]);
      leaves.push_back(Expr::MatrixRef(name));
    }
    ExprPtr wrapper;
    if (la::Arity(e.kind()) == 1) {
      wrapper = Expr::Unary(e.kind(), leaves[0]);
    } else {
      wrapper = Expr::Binary(e.kind(), leaves[0], leaves[1]);
    }
    return engine::Execute(*wrapper, scratch);
  }

  const MorpheusEngine& owner_;
  const engine::Workspace& workspace_;
  engine::ExecStats* stats_;
  const matrix::RangeRunner& runner_;
  const obs::TraceContext* trace_;
};

}  // namespace

bool MorpheusEngine::ReferencesNormalized(const la::Expr& expr) const {
  if (expr.kind() == OpKind::kMatrixRef) {
    return Lookup(expr.name()) != nullptr;
  }
  for (const ExprPtr& child : expr.children()) {
    if (ReferencesNormalized(*child)) return true;
  }
  return false;
}

Result<matrix::Matrix> MorpheusEngine::Run(
    const la::ExprPtr& expr, engine::ExecStats* stats,
    const matrix::RangeRunner& runner, const obs::TraceContext* trace) const {
  Timer timer;
  Evaluator evaluator(*this, *workspace_, stats, runner, trace);
  Result<matrix::Matrix> out = evaluator.Eval(*expr, /*is_root=*/true);
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace hadad::morpheus
