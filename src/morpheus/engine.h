#ifndef HADAD_MORPHEUS_ENGINE_H_
#define HADAD_MORPHEUS_ENGINE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/blocked_kernels.h"
#include "morpheus/normalized_matrix.h"
#include "obs/trace.h"

namespace hadad::morpheus {

// MorpheusR-like executor (§9.2.1): evaluates LA expressions where some
// named matrices are backed by normalized (factorized) join outputs.
//
// Faithful to Morpheus's limits:
//  * operator pushdown fires only when the operator *directly* touches a
//    normalized matrix (or its transpose, via the M^T special rules);
//  * element-wise operators are never factorized (P2.11's discussion);
//  * no chain reordering and no algebraic reasoning — Morpheus cannot turn
//    colSums(M N) into colSums(M) N; that rewriting must come from HADAD.
// Anything not matching a pushdown pattern materializes M and evaluates
// normally.
class MorpheusEngine {
 public:
  explicit MorpheusEngine(const engine::Workspace* workspace)
      : workspace_(workspace) {}

  // Registers `name` as a normalized matrix. Expressions mentioning `name`
  // are evaluated factorized where the rules allow.
  void Register(const std::string& name, NormalizedMatrix nm) {
    normalized_.insert_or_assign(name, std::move(nm));
  }

  const NormalizedMatrix* Lookup(const std::string& name) const {
    auto it = normalized_.find(name);
    return it == normalized_.end() ? nullptr : &it->second;
  }

  // True when `expr` mentions any registered normalized matrix. The api
  // layer uses this to route: expressions over normalized data come here,
  // everything else goes to the parallel DAG engine (which cannot resolve
  // normalized names — their data lives in this engine, not the workspace).
  bool ReferencesNormalized(const la::Expr& expr) const;

  // Evaluates `expr`, pushing operators through registered factorizations
  // where Morpheus's rules allow. `runner`, when non-null, parallelizes the
  // pushdown kernels over a thread pool (api::Session passes the DAG
  // executor's pool; results are bit-identical at every thread count).
  // `trace`, when non-null with a live recorder, receives one "kernel" span
  // per factorized pushdown (nm_* names), parented under trace->parent.
  Result<matrix::Matrix> Run(const la::ExprPtr& expr,
                             engine::ExecStats* stats = nullptr,
                             const matrix::RangeRunner& runner = nullptr,
                             const obs::TraceContext* trace = nullptr) const;

 private:
  const engine::Workspace* workspace_;
  std::map<std::string, NormalizedMatrix> normalized_;
};

}  // namespace hadad::morpheus

#endif  // HADAD_MORPHEUS_ENGINE_H_
