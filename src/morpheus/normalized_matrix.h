#ifndef HADAD_MORPHEUS_NORMALIZED_MATRIX_H_
#define HADAD_MORPHEUS_NORMALIZED_MATRIX_H_

#include "common/status.h"
#include "matrix/blocked_kernels.h"
#include "matrix/matrix.h"

namespace hadad::morpheus {

// Morpheus's normalized matrix (Chen et al. [27]): the output of a PK-FK
// join cast as a matrix, M = [T | K U], kept *factorized*:
//   T: nS x dS   — the fact table's own features,
//   K: nS x nR   — the sparse indicator matrix of the FK (one 1 per row),
//   U: nR x dR   — the joined dimension table's features.
// Morpheus evaluates LA operators over M by pushing them through the
// factorization instead of materializing the (large, redundant) join.
class NormalizedMatrix {
 public:
  NormalizedMatrix(matrix::Matrix t, matrix::Matrix k, matrix::Matrix u);

  int64_t rows() const { return t_.rows(); }
  int64_t cols() const { return t_.cols() + u_.cols(); }

  const matrix::Matrix& t() const { return t_; }
  const matrix::Matrix& k() const { return k_; }
  const matrix::Matrix& u() const { return u_; }

  // The denormalized join output [T | K U] — what Morpheus avoids.
  Result<matrix::Matrix> Materialize() const;

  // --- Factorized operator pushdowns (Morpheus's rewrite rules) -----------
  // Every pushdown takes an optional RangeRunner: non-null partitions the
  // inner products over a thread pool via the blocked kernels in
  // matrix/blocked_kernels.h, which are bit-for-bit identical to the naive
  // kernels at every thread count — factorized results never depend on the
  // degree of parallelism. Null (the default) keeps the sequential kernels.

  // M %*% N = T N_top + K (U N_bottom), splitting N's rows at dS.
  Result<matrix::Matrix> RightMultiply(
      const matrix::Matrix& n, const matrix::RangeRunner& runner = nullptr) const;

  // C %*% M = [C T | (C K) U].
  Result<matrix::Matrix> LeftMultiply(
      const matrix::Matrix& c, const matrix::RangeRunner& runner = nullptr) const;

  // colSums(M) = [colSums(T) | colSums(K) U].
  Result<matrix::Matrix> ColSums(
      const matrix::RangeRunner& runner = nullptr) const;

  // rowSums(M) = rowSums(T) + K rowSums(U).
  Result<matrix::Matrix> RowSums(
      const matrix::RangeRunner& runner = nullptr) const;

  // sum(M) = sum(T) + sum(colSums(K) U).
  Result<double> Sum(const matrix::RangeRunner& runner = nullptr) const;

 private:
  matrix::Matrix t_;
  matrix::Matrix k_;
  matrix::Matrix u_;
};

}  // namespace hadad::morpheus

#endif  // HADAD_MORPHEUS_NORMALIZED_MATRIX_H_
