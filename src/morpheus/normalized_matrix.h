#ifndef HADAD_MORPHEUS_NORMALIZED_MATRIX_H_
#define HADAD_MORPHEUS_NORMALIZED_MATRIX_H_

#include "common/status.h"
#include "matrix/matrix.h"

namespace hadad::morpheus {

// Morpheus's normalized matrix (Chen et al. [27]): the output of a PK-FK
// join cast as a matrix, M = [T | K U], kept *factorized*:
//   T: nS x dS   — the fact table's own features,
//   K: nS x nR   — the sparse indicator matrix of the FK (one 1 per row),
//   U: nR x dR   — the joined dimension table's features.
// Morpheus evaluates LA operators over M by pushing them through the
// factorization instead of materializing the (large, redundant) join.
class NormalizedMatrix {
 public:
  NormalizedMatrix(matrix::Matrix t, matrix::Matrix k, matrix::Matrix u);

  int64_t rows() const { return t_.rows(); }
  int64_t cols() const { return t_.cols() + u_.cols(); }

  const matrix::Matrix& t() const { return t_; }
  const matrix::Matrix& k() const { return k_; }
  const matrix::Matrix& u() const { return u_; }

  // The denormalized join output [T | K U] — what Morpheus avoids.
  Result<matrix::Matrix> Materialize() const;

  // --- Factorized operator pushdowns (Morpheus's rewrite rules) -----------

  // M %*% N = T N_top + K (U N_bottom), splitting N's rows at dS.
  Result<matrix::Matrix> RightMultiply(const matrix::Matrix& n) const;

  // C %*% M = [C T | (C K) U].
  Result<matrix::Matrix> LeftMultiply(const matrix::Matrix& c) const;

  // colSums(M) = [colSums(T) | colSums(K) U].
  Result<matrix::Matrix> ColSums() const;

  // rowSums(M) = rowSums(T) + K rowSums(U).
  Result<matrix::Matrix> RowSums() const;

  // sum(M) = sum(T) + sum(colSums(K) U).
  Result<double> Sum() const;

 private:
  matrix::Matrix t_;
  matrix::Matrix k_;
  matrix::Matrix u_;
};

}  // namespace hadad::morpheus

#endif  // HADAD_MORPHEUS_NORMALIZED_MATRIX_H_
