#include "morpheus/generator.h"

#include <vector>

#include "matrix/generate.h"

namespace hadad::morpheus {

NormalizedMatrix GeneratePkFk(Rng& rng, const PkFkConfig& config) {
  const int64_t n_s = static_cast<int64_t>(
      config.tuple_ratio * static_cast<double>(config.n_r));
  const int64_t d_r = static_cast<int64_t>(
      config.feature_ratio * static_cast<double>(config.d_s));
  matrix::Matrix t = matrix::RandomDense(rng, n_s, config.d_s);
  matrix::Matrix u = matrix::RandomDense(rng, config.n_r, d_r);
  // One foreign key per fact row, uniform over the dimension table.
  std::vector<matrix::Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n_s));
  for (int64_t i = 0; i < n_s; ++i) {
    triplets.push_back(
        {i,
         static_cast<int64_t>(rng.NextBelow(
             static_cast<uint64_t>(config.n_r))),
         1.0});
  }
  matrix::Matrix k(matrix::SparseMatrix::FromTriplets(n_s, config.n_r,
                                                      std::move(triplets)));
  return NormalizedMatrix(std::move(t), std::move(k), std::move(u));
}

}  // namespace hadad::morpheus
