#include "morpheus/normalized_matrix.h"

#include "common/check.h"

namespace hadad::morpheus {

namespace {

// Rows [from, to) of a matrix as a dense block.
matrix::Matrix SliceRows(const matrix::Matrix& m, int64_t from, int64_t to) {
  matrix::DenseMatrix d = m.ToDense();
  matrix::DenseMatrix out(to - from, m.cols());
  for (int64_t i = from; i < to; ++i) {
    for (int64_t j = 0; j < m.cols(); ++j) {
      out.At(i - from, j) = d.At(i, j);
    }
  }
  return matrix::Matrix(std::move(out));
}

}  // namespace

NormalizedMatrix::NormalizedMatrix(matrix::Matrix t, matrix::Matrix k,
                                   matrix::Matrix u)
    : t_(std::move(t)), k_(std::move(k)), u_(std::move(u)) {
  HADAD_CHECK_EQ(t_.rows(), k_.rows());
  HADAD_CHECK_EQ(k_.cols(), u_.rows());
}

Result<matrix::Matrix> NormalizedMatrix::Materialize() const {
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ku, matrix::Multiply(k_, u_));
  return matrix::Cbind(t_, ku);
}

Result<matrix::Matrix> NormalizedMatrix::RightMultiply(
    const matrix::Matrix& n) const {
  if (n.rows() != cols()) {
    return Status::DimensionMismatch(
        "normalized right-multiply: inner dims disagree");
  }
  matrix::Matrix n_top = SliceRows(n, 0, t_.cols());
  matrix::Matrix n_bottom = SliceRows(n, t_.cols(), n.rows());
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix tn, matrix::Multiply(t_, n_top));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix un, matrix::Multiply(u_, n_bottom));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix kun, matrix::Multiply(k_, un));
  return matrix::Add(tn, kun);
}

Result<matrix::Matrix> NormalizedMatrix::LeftMultiply(
    const matrix::Matrix& c) const {
  if (c.cols() != rows()) {
    return Status::DimensionMismatch(
        "normalized left-multiply: inner dims disagree");
  }
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ct, matrix::Multiply(c, t_));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ck, matrix::Multiply(c, k_));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix cku, matrix::Multiply(ck, u_));
  return matrix::Cbind(ct, cku);
}

Result<matrix::Matrix> NormalizedMatrix::ColSums() const {
  matrix::Matrix cst = matrix::ColSums(t_);
  matrix::Matrix csk = matrix::ColSums(k_);
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix csku, matrix::Multiply(csk, u_));
  return matrix::Cbind(cst, csku);
}

Result<matrix::Matrix> NormalizedMatrix::RowSums() const {
  matrix::Matrix rst = matrix::RowSums(t_);
  matrix::Matrix rsu = matrix::RowSums(u_);
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix krsu, matrix::Multiply(k_, rsu));
  return matrix::Add(rst, krsu);
}

Result<double> NormalizedMatrix::Sum() const {
  matrix::Matrix csk = matrix::ColSums(k_);
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix csku, matrix::Multiply(csk, u_));
  return matrix::Sum(t_) + matrix::Sum(csku);
}

}  // namespace hadad::morpheus
