#include "morpheus/normalized_matrix.h"

#include "common/check.h"

namespace hadad::morpheus {

namespace {

// Product dispatch for the pushdown kernels: with a runner, route to the
// blocked/row-parallel kernels (bit-for-bit identical to the naive ones —
// the contract in matrix/blocked_kernels.h); without one, or for a
// representation mix the parallel tier does not cover, keep the exact
// sequential kernel. Shape errors fall through to matrix::Multiply so the
// error message stays the same either way.
Result<matrix::Matrix> Mul(const matrix::Matrix& a, const matrix::Matrix& b,
                           const matrix::RangeRunner& runner) {
  if (runner != nullptr && a.cols() == b.rows()) {
    if (a.is_dense() && b.is_dense()) {
      return matrix::Matrix(
          matrix::MultiplyDenseBlocked(a.dense(), b.dense(), runner));
    }
    if (a.is_sparse() && b.is_dense()) {
      return matrix::Matrix(
          matrix::MultiplySparseDenseParallel(a.sparse(), b.dense(), runner));
    }
    if (a.is_sparse() && b.is_sparse()) {
      return matrix::Matrix(
          matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse(),
                                               runner));
    }
  }
  return matrix::Multiply(a, b);
}

// Rows [from, to) of a matrix as a dense block.
matrix::Matrix SliceRows(const matrix::Matrix& m, int64_t from, int64_t to) {
  matrix::DenseMatrix d = m.ToDense();
  matrix::DenseMatrix out(to - from, m.cols());
  for (int64_t i = from; i < to; ++i) {
    for (int64_t j = 0; j < m.cols(); ++j) {
      out.At(i - from, j) = d.At(i, j);
    }
  }
  return matrix::Matrix(std::move(out));
}

}  // namespace

NormalizedMatrix::NormalizedMatrix(matrix::Matrix t, matrix::Matrix k,
                                   matrix::Matrix u)
    : t_(std::move(t)), k_(std::move(k)), u_(std::move(u)) {
  HADAD_CHECK_EQ(t_.rows(), k_.rows());
  HADAD_CHECK_EQ(k_.cols(), u_.rows());
}

Result<matrix::Matrix> NormalizedMatrix::Materialize() const {
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ku, matrix::Multiply(k_, u_));
  return matrix::Cbind(t_, ku);
}

Result<matrix::Matrix> NormalizedMatrix::RightMultiply(
    const matrix::Matrix& n, const matrix::RangeRunner& runner) const {
  if (n.rows() != cols()) {
    return Status::DimensionMismatch(
        "normalized right-multiply: inner dims disagree");
  }
  matrix::Matrix n_top = SliceRows(n, 0, t_.cols());
  matrix::Matrix n_bottom = SliceRows(n, t_.cols(), n.rows());
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix tn, Mul(t_, n_top, runner));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix un, Mul(u_, n_bottom, runner));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix kun, Mul(k_, un, runner));
  return matrix::Add(tn, kun);
}

Result<matrix::Matrix> NormalizedMatrix::LeftMultiply(
    const matrix::Matrix& c, const matrix::RangeRunner& runner) const {
  if (c.cols() != rows()) {
    return Status::DimensionMismatch(
        "normalized left-multiply: inner dims disagree");
  }
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ct, Mul(c, t_, runner));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ck, Mul(c, k_, runner));
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix cku, Mul(ck, u_, runner));
  return matrix::Cbind(ct, cku);
}

Result<matrix::Matrix> NormalizedMatrix::ColSums(
    const matrix::RangeRunner& runner) const {
  matrix::Matrix cst = matrix::ColSums(t_);
  matrix::Matrix csk = matrix::ColSums(k_);
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix csku, Mul(csk, u_, runner));
  return matrix::Cbind(cst, csku);
}

Result<matrix::Matrix> NormalizedMatrix::RowSums(
    const matrix::RangeRunner& runner) const {
  matrix::Matrix rst = matrix::RowSums(t_);
  matrix::Matrix rsu = matrix::RowSums(u_);
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix krsu, Mul(k_, rsu, runner));
  return matrix::Add(rst, krsu);
}

Result<double> NormalizedMatrix::Sum(
    const matrix::RangeRunner& runner) const {
  matrix::Matrix csk = matrix::ColSums(k_);
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix csku, Mul(csk, u_, runner));
  return matrix::Sum(t_) + matrix::Sum(csku);
}

}  // namespace hadad::morpheus
