#ifndef HADAD_ENGINE_WORKSPACE_H_
#define HADAD_ENGINE_WORKSPACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cost/cost_model.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::engine {

class Workspace;

// A point-in-time stamp of the workspace entries a consumer depends on: the
// workspace generation at capture plus the epoch of each named entry (names
// never stored stamp kNeverStored). Matrices are not copied — this is
// validity metadata, not data; consumers that must also *read* a stable
// state pin a Snapshot (below).
struct WorkspaceSnapshot {
  int64_t generation = 0;
  std::vector<std::pair<std::string, int64_t>> epochs;
};

// An immutable point-in-time view of every workspace entry, pinned against
// version retirement: the matrix versions reachable through a live Snapshot
// are never freed or modified, so queries resolve leaves against it with no
// lock held while writers install new versions concurrently. Obtained via
// Workspace::PinSnapshot(); destroying the last handle unpins and lets the
// workspace reclaim versions no remaining snapshot can see.
class Snapshot {
 public:
  ~Snapshot();
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  // Single-lookup access; nullptr when the name was absent at pin time.
  const matrix::Matrix* Find(const std::string& name) const {
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.get();
  }
  Result<const matrix::Matrix*> Get(const std::string& name) const {
    if (const matrix::Matrix* m = Find(name)) return m;
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }

  // The workspace generation this snapshot was pinned at.
  int64_t generation() const { return generation_; }
  size_t size() const { return entries_.size(); }

 private:
  friend class Workspace;
  Snapshot() = default;

  const Workspace* owner_ = nullptr;
  int64_t generation_ = 0;
  // Name -> pinned version value. The shared_ptrs keep the versions alive
  // even after a writer retires them.
  std::map<std::string, std::shared_ptr<const matrix::Matrix>> entries_;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

// The named matrices an engine run can see: base data plus materialized
// views. Doubles as the cost::DataCatalog handed to the optimizer (for MNC
// base histograms).
//
// The catalog is *multi-versioned*: each name holds a small version chain.
// Every mutation (Put/Update/Append/Erase/Take) installs a new immutable
// version under a short writer critical section, bumps a session-wide data
// generation, and stamps the touched entry with it as that entry's epoch;
// the superseded version is retired (stamped with the retiring generation)
// but stays alive until every Snapshot pinned before the mutation drains —
// readers execute against their pinned versions with no shared state lock
// held, so writers never block readers. Dependents (the api::Session plan
// cache, compiled DAGs, materialized views) record a WorkspaceSnapshot at
// derivation time and re-derive when any recorded epoch moved — mutations
// of unrelated entries leave them warm.
//
// Thread-safety: generation/epoch reads (generation(), EpochOf,
// SnapshotFor, SnapshotCurrent), snapshot release (handles may be dropped
// from any thread), and the version-accounting accessors (PinnedSnapshots,
// LiveVersions, RetiredTotal, RetainedBytes) are safe from any thread.
// Mutators and PinSnapshot() itself are externally synchronized —
// api::Session mutates only under its unique state lock and pins under the
// shared one (the pin must be atomic with the freshness check before it).
class Workspace {
 public:
  // EpochOf() for a name that holds no live version.
  static constexpr int64_t kNeverStored = -1;

  Workspace() = default;

  // Movable for by-value construction (dataset factories); the versioning
  // members make it non-copyable. Moves are construction-time only — never
  // move a workspace that concurrent readers can see or that has pinned
  // snapshots (Snapshot handles point back at their owner). The source's
  // version lock is still taken: it is cheap, and it keeps the guarded
  // access to `other.chains_` visible to the thread-safety analysis.
  Workspace(Workspace&& other) noexcept
      : data_(std::move(other.data_)),
        generation_(other.generation_.load(std::memory_order_acquire)) {
    common::MutexLock theirs(&other.mu_);
    HADAD_CHECK_MSG(other.pins_.empty(),
                    "moving a workspace with pinned snapshots");
    chains_ = std::move(other.chains_);
    retired_total_ = other.retired_total_;
  }
  Workspace& operator=(Workspace&& other) noexcept {
    if (this == &other) return *this;
    data_ = std::move(other.data_);
    generation_.store(other.generation_.load(std::memory_order_acquire),
                      std::memory_order_release);
    common::MutexLock mine(&mu_);
    common::MutexLock theirs(&other.mu_);
    HADAD_CHECK_MSG(pins_.empty() && other.pins_.empty(),
                    "moving a workspace with pinned snapshots");
    chains_ = std::move(other.chains_);
    retired_total_ = other.retired_total_;
    return *this;
  }

  // Binds (or rebinds) `name`: installs a new version, bumps its epoch and
  // the data generation, and retires the superseded version (if any).
  void Put(const std::string& name, matrix::Matrix m);

  // Replaces the value of the existing entry `name`; NotFound when absent.
  Status Update(const std::string& name, matrix::Matrix m);

  // Appends rows below the existing entry `name` (column counts must
  // match); NotFound when absent. Copy-on-write: the grown matrix is a new
  // version, so snapshots pinned before the append keep the un-grown one.
  Status Append(const std::string& name, const matrix::Matrix& rows);

  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  // Removes `name`; false when absent. The live version is retired (it
  // drains with the pinned readers) and the entry's epoch reads
  // kNeverStored again: snapshots that stamped a live epoch then read
  // kNeverStored — stale, as required. The one blind spot is a stamp of
  // kNeverStored racing a full Put+Erase cycle; consumers only stamp names
  // that exist (or durably never exist) at stamp time, so the cycle is
  // unobservable.
  bool Erase(const std::string& name);

  // Removes `name` and returns its value (incremental view refresh reuses
  // the detached matrix); nullopt when absent. Epoch semantics as Erase.
  // Returns a copy: the retired version may still be pinned by snapshots.
  std::optional<matrix::Matrix> Take(const std::string& name);

  Result<const matrix::Matrix*> Get(const std::string& name) const {
    if (const matrix::Matrix* m = Find(name)) return m;
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }

  // Single-lookup access to the current version; nullptr when absent.
  const matrix::Matrix* Find(const std::string& name) const {
    auto it = data_.find(name);
    return it == data_.end() ? nullptr : it->second.get();
  }

  // Current versions by name (the optimizer's MNC histogram source). The
  // map shape follows the owner's external locking; the pointed-at
  // matrices are immutable versions.
  const cost::DataCatalog& data() const { return data_; }

  // Pins the current version of every entry into an immutable Snapshot.
  // Callers hold the owner's state lock (at least shared) so the pin is
  // atomic with the plan-freshness check that precedes it; the returned
  // handle may be released from any thread, with no lock held.
  SnapshotPtr PinSnapshot() const HADAD_EXCLUDES(mu_);

  // Monotone counter bumped by every mutation.
  int64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // The generation at which `name` was last mutated; kNeverStored when the
  // name holds no live version.
  int64_t EpochOf(const std::string& name) const HADAD_EXCLUDES(mu_);

  // Captures the current epochs of `names` (cheap: no matrix copies).
  WorkspaceSnapshot SnapshotFor(const std::vector<std::string>& names) const
      HADAD_EXCLUDES(mu_);

  // True when every stamped entry's epoch is unchanged. The workspace
  // generation may have moved — unrelated entries never invalidate.
  bool SnapshotCurrent(const WorkspaceSnapshot& snapshot) const
      HADAD_EXCLUDES(mu_);

  // --- Version accounting (the hadad_workspace_* metrics read these) -----

  // Snapshot handles currently pinned by in-flight readers.
  int64_t PinnedSnapshots() const HADAD_EXCLUDES(mu_);
  // Versions currently held across all chains: one live version per bound
  // name plus retired versions awaiting reader drain.
  int64_t LiveVersions() const HADAD_EXCLUDES(mu_);
  // Versions retired by mutations since construction (monotone).
  int64_t RetiredTotal() const HADAD_EXCLUDES(mu_);
  // matrix::ApproxBytes summed over every version still held (live +
  // awaiting drain) — the leak test's accounting hook.
  int64_t RetainedBytes() const HADAD_EXCLUDES(mu_);

  // Derives the metadata catalog (shapes + exact nnz) from the stored
  // matrices; flags are detected structurally for square matrices up to
  // `flag_detect_limit` rows (type detection is O(n^2)).
  la::MetaCatalog BuildMetaCatalog(int64_t flag_detect_limit = 0) const;

  // Metadata of a single matrix, with the same flag-detection policy.
  static la::MatrixMeta MetaFor(const matrix::Matrix& m,
                                int64_t flag_detect_limit = 0);

 private:
  friend class Snapshot;

  static constexpr int64_t kNotRetired = -1;

  // One installed value of an entry. Immutable once installed; `retired_at`
  // is stamped when a later mutation supersedes it (kNotRetired = live).
  struct Version {
    std::shared_ptr<const matrix::Matrix> value;
    int64_t epoch = 0;  // Generation stamped at install.
    int64_t retired_at = kNotRetired;
  };

  // Installs `value` as the new current version of `name`, retiring the
  // superseded one.
  void Install(const std::string& name,
               std::shared_ptr<const matrix::Matrix> value)
      HADAD_EXCLUDES(mu_);
  // Retires the live version of `name` (Erase/Take); true when one existed.
  bool Retire(const std::string& name) HADAD_EXCLUDES(mu_);
  // Snapshot destructors call this; safe from any thread, independent of
  // the owner's state lock.
  void Unpin(int64_t generation) const HADAD_EXCLUDES(mu_);
  // Frees retired versions no pinned snapshot can still see, moving their
  // values into `drained` so deallocation happens outside mu_.
  void TrimLocked(
      std::vector<std::shared_ptr<const matrix::Matrix>>* drained) const
      HADAD_REQUIRES(mu_);

  // Current versions, mirrored out of chains_ so data() can hand the
  // optimizer a stable map. Map shape follows the owner's external locking.
  cost::DataCatalog data_;
  std::atomic<int64_t> generation_{0};
  // Guards the version chains and the pin registry; never held while a
  // matrix is evaluated or freed. Mutable: pins/unpins and the accounting
  // accessors are logically const.
  mutable common::Mutex mu_;
  // Per-name version chains, oldest first; at most the last version is
  // live. A chain outlives Erase until its retired versions drain. Mutable
  // only through TrimLocked from const pin/unpin paths.
  mutable std::map<std::string, std::vector<Version>> chains_
      HADAD_GUARDED_BY(mu_);
  // Pinned-snapshot registry: generation -> live handle count. A retired
  // version is freed once no pinned generation precedes its retirement.
  mutable std::map<int64_t, int64_t> pins_ HADAD_GUARDED_BY(mu_);
  int64_t retired_total_ HADAD_GUARDED_BY(mu_) = 0;
};

// Leaf resolver the execution layers run against: either a live Workspace
// (callers then hold the owner's state lock for the duration) or a pinned
// Snapshot (no lock needed — the snapshot-isolated fast path). Two pointers
// wide; pass by value. Implicit conversions keep existing
// Execute(expr, workspace) call sites source-compatible.
class WorkspaceView {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  WorkspaceView(const Workspace& workspace) : workspace_(&workspace) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  WorkspaceView(const Snapshot& snapshot) : snapshot_(&snapshot) {}

  const matrix::Matrix* Find(const std::string& name) const {
    return workspace_ != nullptr ? workspace_->Find(name)
                                 : snapshot_->Find(name);
  }
  Result<const matrix::Matrix*> Get(const std::string& name) const {
    return workspace_ != nullptr ? workspace_->Get(name)
                                 : snapshot_->Get(name);
  }

 private:
  const Workspace* workspace_ = nullptr;
  const Snapshot* snapshot_ = nullptr;
};

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_WORKSPACE_H_
