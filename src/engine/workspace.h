#ifndef HADAD_ENGINE_WORKSPACE_H_
#define HADAD_ENGINE_WORKSPACE_H_

#include <string>

#include "common/status.h"
#include "cost/cost_model.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::engine {

// The named matrices an engine run can see: base data plus materialized
// views. Doubles as the cost::DataCatalog handed to the optimizer (for MNC
// base histograms).
class Workspace {
 public:
  Workspace() = default;

  void Put(const std::string& name, matrix::Matrix m) {
    data_.insert_or_assign(name, std::move(m));
  }

  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  // Removes `name`; false when absent. Used by adaptive-view eviction.
  bool Erase(const std::string& name) { return data_.erase(name) > 0; }

  Result<const matrix::Matrix*> Get(const std::string& name) const {
    if (const matrix::Matrix* m = Find(name)) return m;
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }

  // Single-lookup access; nullptr when absent.
  const matrix::Matrix* Find(const std::string& name) const {
    auto it = data_.find(name);
    return it == data_.end() ? nullptr : &it->second;
  }

  const cost::DataCatalog& data() const { return data_; }

  // Derives the metadata catalog (shapes + exact nnz) from the stored
  // matrices; flags are detected structurally for square matrices up to
  // `flag_detect_limit` rows (type detection is O(n^2)).
  la::MetaCatalog BuildMetaCatalog(int64_t flag_detect_limit = 0) const;

 private:
  cost::DataCatalog data_;
};

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_WORKSPACE_H_
