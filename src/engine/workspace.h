#ifndef HADAD_ENGINE_WORKSPACE_H_
#define HADAD_ENGINE_WORKSPACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cost/cost_model.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::engine {

// A point-in-time stamp of the workspace entries a consumer depends on: the
// workspace generation at capture plus the epoch of each named entry (names
// never stored stamp kNeverStored). Matrices are not copied — a snapshot is
// validity metadata, not data; the owner's state lock keeps the underlying
// matrices physically stable while a query is in flight.
struct WorkspaceSnapshot {
  int64_t generation = 0;
  std::vector<std::pair<std::string, int64_t>> epochs;
};

// The named matrices an engine run can see: base data plus materialized
// views. Doubles as the cost::DataCatalog handed to the optimizer (for MNC
// base histograms).
//
// The catalog is *versioned*: every mutation (Put/Update/Append/Erase/Take)
// bumps a session-wide data generation and stamps the touched entry with it
// as that entry's epoch. Dependents (the api::Session plan cache, compiled
// DAGs, materialized views) record a WorkspaceSnapshot at derivation time
// and re-derive when any recorded epoch moved — mutations of unrelated
// entries leave them warm.
//
// Thread-safety: generation/epoch reads (generation(), EpochOf,
// SnapshotFor, SnapshotCurrent) are safe from any thread. Access to the
// matrix data itself is externally synchronized — api::Session mutates only
// under its unique state lock and executes under the shared one.
class Workspace {
 public:
  // EpochOf() for a name that was never stored.
  static constexpr int64_t kNeverStored = -1;

  Workspace() = default;

  // Movable for by-value construction (dataset factories); the versioning
  // members make it non-copyable. Moves are construction-time only — never
  // move a workspace that concurrent readers can see. The source's epoch
  // lock is still taken: it is cheap, and it keeps the guarded access to
  // `other.epochs_` visible to the thread-safety analysis.
  Workspace(Workspace&& other) noexcept
      : data_(std::move(other.data_)),
        generation_(other.generation_.load(std::memory_order_acquire)) {
    common::MutexLock theirs(&other.epoch_mu_);
    epochs_ = std::move(other.epochs_);
  }
  Workspace& operator=(Workspace&& other) noexcept {
    if (this == &other) return *this;
    data_ = std::move(other.data_);
    generation_.store(other.generation_.load(std::memory_order_acquire),
                      std::memory_order_release);
    common::MutexLock mine(&epoch_mu_);
    common::MutexLock theirs(&other.epoch_mu_);
    epochs_ = std::move(other.epochs_);
    return *this;
  }

  // Binds (or rebinds) `name`; bumps its epoch and the data generation.
  void Put(const std::string& name, matrix::Matrix m);

  // Replaces the value of the existing entry `name`; NotFound when absent.
  Status Update(const std::string& name, matrix::Matrix m);

  // Appends rows in place to the existing entry `name` (column counts must
  // match); NotFound when absent.
  Status Append(const std::string& name, const matrix::Matrix& rows);

  bool Has(const std::string& name) const { return Find(name) != nullptr; }

  // Removes `name`; false when absent. The entry's epoch record is dropped
  // (bounding epochs_ by the live names even under transient Put/Erase
  // churn): snapshots that stamped a live epoch then read kNeverStored —
  // stale, as required. The one blind spot is a snapshot that stamped
  // kNeverStored itself racing a full Put+Erase cycle; consumers only
  // stamp names that exist (or durably never exist) at stamp time, so the
  // cycle is unobservable.
  bool Erase(const std::string& name);

  // Removes `name` and moves its value out (incremental view refresh reuses
  // the detached matrix); nullopt when absent. Epoch semantics as Erase.
  std::optional<matrix::Matrix> Take(const std::string& name);

  Result<const matrix::Matrix*> Get(const std::string& name) const {
    if (const matrix::Matrix* m = Find(name)) return m;
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }

  // Single-lookup access; nullptr when absent.
  const matrix::Matrix* Find(const std::string& name) const {
    auto it = data_.find(name);
    return it == data_.end() ? nullptr : &it->second;
  }

  const cost::DataCatalog& data() const { return data_; }

  // Monotone counter bumped by every mutation.
  int64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // The generation at which `name` was last mutated; kNeverStored when the
  // name was never bound.
  int64_t EpochOf(const std::string& name) const;

  // Captures the current epochs of `names` (cheap: no matrix copies).
  WorkspaceSnapshot SnapshotFor(const std::vector<std::string>& names) const;

  // True when every stamped entry's epoch is unchanged. The workspace
  // generation may have moved — unrelated entries never invalidate.
  bool SnapshotCurrent(const WorkspaceSnapshot& snapshot) const;

  // Derives the metadata catalog (shapes + exact nnz) from the stored
  // matrices; flags are detected structurally for square matrices up to
  // `flag_detect_limit` rows (type detection is O(n^2)).
  la::MetaCatalog BuildMetaCatalog(int64_t flag_detect_limit = 0) const;

  // Metadata of a single matrix, with the same flag-detection policy.
  static la::MatrixMeta MetaFor(const matrix::Matrix& m,
                                int64_t flag_detect_limit = 0);

 private:
  void Bump(const std::string& name) HADAD_EXCLUDES(epoch_mu_);
  void DropEpoch(const std::string& name) HADAD_EXCLUDES(epoch_mu_);

  cost::DataCatalog data_;
  std::atomic<int64_t> generation_{0};
  // Guards epochs_ only; data_ follows the owner's external locking.
  mutable common::Mutex epoch_mu_;
  std::map<std::string, int64_t> epochs_ HADAD_GUARDED_BY(epoch_mu_);
};

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_WORKSPACE_H_
