#ifndef HADAD_ENGINE_PROFILES_H_
#define HADAD_ENGINE_PROFILES_H_

#include "common/status.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/expr.h"

namespace hadad::engine {

// Execution-engine profiles standing in for the systems of §9's evaluation
// (see DESIGN.md's substitution table):
//  - kNaive: R/NumPy-like — runs the pipeline exactly as stated.
//  - kSmart: SystemML-like — applies its own *internal* static rewrites
//    first (matrix-chain reordering, a subset of algebraic simplifications)
//    but, like SystemML, cannot exploit the cross-rule interplay or views
//    that HADAD finds (§6.2.6, Example 6.3).
enum class Profile { kNaive, kSmart };

class Engine {
 public:
  Engine(Profile profile, const Workspace* workspace)
      : profile_(profile), workspace_(workspace) {}

  Profile profile() const { return profile_; }

  // The plan the engine would actually run (identity for kNaive; internal
  // rewrites applied for kSmart). Exposed for inspection/tests.
  Result<la::ExprPtr> Plan(const la::ExprPtr& expr) const;

  // Plans then executes.
  Result<matrix::Matrix> Run(const la::ExprPtr& expr,
                             ExecStats* stats = nullptr) const;

 private:
  Profile profile_;
  const Workspace* workspace_;
};

// The kSmart profile's internal rewriter, exposed for testing: reorders
// %*% chains optimally (dims from `catalog`) and applies local static
// simplifications (sum(t(M)) -> sum(M), t(t(M)) -> M, sum(rowSums(M)) ->
// sum(M), ...).
Result<la::ExprPtr> ApplySmartRewrites(const la::ExprPtr& expr,
                                       const la::MetaCatalog& catalog);

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_PROFILES_H_
