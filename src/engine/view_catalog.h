#ifndef HADAD_ENGINE_VIEW_CATALOG_H_
#define HADAD_ENGINE_VIEW_CATALOG_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/workspace.h"
#include "la/expr.h"

namespace hadad::engine {

// Materialized-view management: evaluates view definitions against the
// workspace's base data and stores the results under the view names (the
// paper materializes V_exp to CSV files, §9.1.2; Workspace is our store).
class ViewCatalog {
 public:
  explicit ViewCatalog(Workspace* workspace) : workspace_(workspace) {}

  // Evaluates `definition` and stores the result as `name`. Fails if the
  // name is taken or evaluation fails.
  Status Materialize(const std::string& name, const la::ExprPtr& definition);
  Status MaterializeText(const std::string& name,
                         const std::string& definition_text);

  struct Entry {
    std::string name;
    la::ExprPtr definition;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  Workspace* workspace_;
  std::vector<Entry> entries_;
};

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_VIEW_CATALOG_H_
