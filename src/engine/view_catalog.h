#ifndef HADAD_ENGINE_VIEW_CATALOG_H_
#define HADAD_ENGINE_VIEW_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::engine {

// Materialized-view management: evaluates view definitions against the
// workspace's base data and stores the results under the view names (the
// paper materializes V_exp to CSV files, §9.1.2; Workspace is our store).
// Tracks the resident bytes of every entry so a budgeted store (the
// adaptive-view subsystem) can account for and evict views.
class ViewCatalog {
 public:
  explicit ViewCatalog(Workspace* workspace) : workspace_(workspace) {}

  // Evaluates `definition` and stores the result as `name`. Fails if the
  // name is taken or evaluation fails.
  Status Materialize(const std::string& name, const la::ExprPtr& definition);
  Status MaterializeText(const std::string& name,
                         const std::string& definition_text);

  // Registers an already-evaluated view value (background materialization
  // computes outside any lock, then installs here). Fails on a taken name.
  Status Install(const std::string& name, const la::ExprPtr& definition,
                 matrix::Matrix value);

  // Unregisters `name` and removes it from the workspace. NotFound when the
  // catalog holds no such view (base matrices are never dropped here).
  Status Drop(const std::string& name);

  // Drop, but moves the materialized value out instead of destroying it —
  // incremental view refresh reuses it (V ← V + f(Δ)).
  Result<matrix::Matrix> Detach(const std::string& name);

  struct Entry {
    std::string name;
    la::ExprPtr definition;
    int64_t bytes = 0;  // matrix::ApproxBytes of the materialized value.
  };
  const std::vector<Entry>& entries() const { return entries_; }
  // nullptr when `name` is not a registered view.
  const Entry* FindEntry(const std::string& name) const;
  // Summed bytes across all entries.
  int64_t total_bytes() const;

 private:
  Workspace* workspace_;
  std::vector<Entry> entries_;
};

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_VIEW_CATALOG_H_
