#include "engine/evaluator.h"

#include "common/timer.h"
#include "matrix/decompositions.h"

namespace hadad::engine {

namespace {

using la::Expr;
using la::OpKind;
using matrix::Matrix;

class Evaluator {
 public:
  Evaluator(WorkspaceView workspace, ExecStats* stats)
      : workspace_(workspace), stats_(stats) {}

  Result<Matrix> Eval(const Expr& e, bool is_root) {
    switch (e.kind()) {
      case OpKind::kMatrixRef: {
        HADAD_ASSIGN_OR_RETURN(const Matrix* m, workspace_.Get(e.name()));
        return *m;
      }
      case OpKind::kScalarConst:
        return Matrix::Scalar(e.scalar_value());
      default:
        break;
    }
    std::vector<Matrix> kids;
    kids.reserve(e.children().size());
    for (const la::ExprPtr& c : e.children()) {
      HADAD_ASSIGN_OR_RETURN(Matrix m, Eval(*c, /*is_root=*/false));
      kids.push_back(std::move(m));
    }
    std::vector<const Matrix*> kid_ptrs;
    kid_ptrs.reserve(kids.size());
    for (const Matrix& m : kids) kid_ptrs.push_back(&m);
    HADAD_ASSIGN_OR_RETURN(Matrix out, ApplyOp(e, kid_ptrs));
    if (stats_ != nullptr) {
      ++stats_->operators;
      if (!is_root) {
        stats_->intermediate_nnz += static_cast<double>(out.Nnz());
      }
    }
    return out;
  }

 private:
  WorkspaceView workspace_;
  ExecStats* stats_;
};

}  // namespace

Result<Matrix> ApplyOp(const Expr& e,
                       const std::vector<const Matrix*>& in) {
  switch (e.kind()) {
    case OpKind::kTranspose:
      return matrix::Transpose(*in[0]);
    case OpKind::kInverse:
      return matrix::Inverse(*in[0]);
    case OpKind::kDet: {
      HADAD_ASSIGN_OR_RETURN(double d, matrix::Determinant(*in[0]));
      return Matrix::Scalar(d);
    }
    case OpKind::kTrace: {
      HADAD_ASSIGN_OR_RETURN(double t, matrix::Trace(*in[0]));
      return Matrix::Scalar(t);
    }
    case OpKind::kDiag:
      return matrix::Diag(*in[0]);
    case OpKind::kExp:
      return matrix::MatrixExp(*in[0]);
    case OpKind::kAdjoint:
      return matrix::Adjugate(*in[0]);
    case OpKind::kRev:
      return matrix::Reverse(*in[0]);
    case OpKind::kSum:
      return Matrix::Scalar(matrix::Sum(*in[0]));
    case OpKind::kRowSums:
      return matrix::RowSums(*in[0]);
    case OpKind::kColSums:
      return matrix::ColSums(*in[0]);
    case OpKind::kMin:
      return Matrix::Scalar(matrix::Min(*in[0]));
    case OpKind::kMax:
      return Matrix::Scalar(matrix::Max(*in[0]));
    case OpKind::kMean:
      return Matrix::Scalar(matrix::Mean(*in[0]));
    case OpKind::kVar:
      return Matrix::Scalar(matrix::Var(*in[0]));
    case OpKind::kRowMins:
      return matrix::RowMins(*in[0]);
    case OpKind::kRowMaxs:
      return matrix::RowMaxs(*in[0]);
    case OpKind::kRowMeans:
      return matrix::RowMeans(*in[0]);
    case OpKind::kRowVars:
      return matrix::RowVars(*in[0]);
    case OpKind::kColMins:
      return matrix::ColMins(*in[0]);
    case OpKind::kColMaxs:
      return matrix::ColMaxs(*in[0]);
    case OpKind::kColMeans:
      return matrix::ColMeans(*in[0]);
    case OpKind::kColVars:
      return matrix::ColVars(*in[0]);
    case OpKind::kCholesky:
      return matrix::CholeskyDecompose(*in[0]);
    case OpKind::kQrQ: {
      HADAD_ASSIGN_OR_RETURN(matrix::QrResult qr,
                             matrix::QrDecompose(*in[0]));
      return qr.q;
    }
    case OpKind::kQrR: {
      HADAD_ASSIGN_OR_RETURN(matrix::QrResult qr,
                             matrix::QrDecompose(*in[0]));
      return qr.r;
    }
    case OpKind::kLuL: {
      HADAD_ASSIGN_OR_RETURN(matrix::LuResult lu, matrix::LuDecompose(*in[0]));
      return lu.l;
    }
    case OpKind::kLuU: {
      HADAD_ASSIGN_OR_RETURN(matrix::LuResult lu, matrix::LuDecompose(*in[0]));
      return lu.u;
    }
    case OpKind::kPluL: {
      HADAD_ASSIGN_OR_RETURN(matrix::PluResult plu,
                             matrix::PluDecompose(*in[0]));
      return plu.l;
    }
    case OpKind::kPluU: {
      HADAD_ASSIGN_OR_RETURN(matrix::PluResult plu,
                             matrix::PluDecompose(*in[0]));
      return plu.u;
    }
    case OpKind::kPluP: {
      HADAD_ASSIGN_OR_RETURN(matrix::PluResult plu,
                             matrix::PluDecompose(*in[0]));
      // Permutation matrix: row i of P M is row perm[i] of M.
      std::vector<matrix::Triplet> triplets;
      for (size_t i = 0; i < plu.perm.size(); ++i) {
        triplets.push_back({static_cast<int64_t>(i), plu.perm[i], 1.0});
      }
      return matrix::Matrix(matrix::SparseMatrix::FromTriplets(
          in[0]->rows(), in[0]->rows(), std::move(triplets)));
    }
    case OpKind::kMultiply:
      return matrix::Multiply(*in[0], *in[1]);
    case OpKind::kAdd:
      return matrix::Add(*in[0], *in[1]);
    case OpKind::kHadamard:
      return matrix::ElementwiseMultiply(*in[0], *in[1]);
    case OpKind::kDivide:
      return matrix::ElementwiseDivide(*in[0], *in[1]);
    case OpKind::kDirectSum:
      return matrix::DirectSum(*in[0], *in[1]);
    case OpKind::kKronecker:
      return matrix::KroneckerProduct(*in[0], *in[1]);
    case OpKind::kCbind:
      return matrix::Cbind(*in[0], *in[1]);
    case OpKind::kMatrixRef:
    case OpKind::kScalarConst:
      break;
  }
  return Status::Internal("unhandled operator in evaluator");
}

Result<Matrix> Execute(const Expr& expr, WorkspaceView workspace,
                       ExecStats* stats) {
  Timer timer;
  Evaluator evaluator(workspace, stats);
  Result<Matrix> out = evaluator.Eval(expr, /*is_root=*/true);
  if (stats != nullptr) stats->seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace hadad::engine
