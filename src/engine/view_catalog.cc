#include "engine/view_catalog.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "engine/evaluator.h"
#include "la/parser.h"

namespace hadad::engine {

Status ViewCatalog::Materialize(const std::string& name,
                                const la::ExprPtr& definition) {
  // Fail before evaluating: view definitions can be expensive.
  if (workspace_->Has(name)) {
    return Status::InvalidArgument("workspace already has '" + name + "'");
  }
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix value,
                         Execute(*definition, *workspace_));
  return Install(name, definition, std::move(value));
}

Status ViewCatalog::MaterializeText(const std::string& name,
                                    const std::string& definition_text) {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr def,
                         la::ParseExpression(definition_text));
  return Materialize(name, def);
}

Status ViewCatalog::Install(const std::string& name,
                            const la::ExprPtr& definition,
                            matrix::Matrix value) {
  if (workspace_->Has(name)) {
    return Status::InvalidArgument("workspace already has '" + name + "'");
  }
  const int64_t bytes = matrix::ApproxBytes(value);
  workspace_->Put(name, std::move(value));
  entries_.push_back(Entry{name, definition, bytes});
  return Status::OK();
}

Status ViewCatalog::Drop(const std::string& name) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&name](const Entry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return Status::NotFound("no view named '" + name + "' in catalog");
  }
  entries_.erase(it);
  workspace_->Erase(name);
  return Status::OK();
}

Result<matrix::Matrix> ViewCatalog::Detach(const std::string& name) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&name](const Entry& e) { return e.name == name; });
  if (it == entries_.end()) {
    return Status::NotFound("no view named '" + name + "' in catalog");
  }
  entries_.erase(it);
  std::optional<matrix::Matrix> value = workspace_->Take(name);
  if (!value.has_value()) {
    return Status::Internal("view '" + name + "' missing from workspace");
  }
  return std::move(*value);
}

const ViewCatalog::Entry* ViewCatalog::FindEntry(
    const std::string& name) const {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&name](const Entry& e) { return e.name == name; });
  return it == entries_.end() ? nullptr : &*it;
}

int64_t ViewCatalog::total_bytes() const {
  int64_t total = 0;
  for (const Entry& e : entries_) total += e.bytes;
  return total;
}

}  // namespace hadad::engine
