#include "engine/view_catalog.h"

#include "engine/evaluator.h"
#include "la/parser.h"

namespace hadad::engine {

Status ViewCatalog::Materialize(const std::string& name,
                                const la::ExprPtr& definition) {
  if (workspace_->Has(name)) {
    return Status::InvalidArgument("workspace already has '" + name + "'");
  }
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix value,
                         Execute(*definition, *workspace_));
  workspace_->Put(name, std::move(value));
  entries_.push_back(Entry{name, definition});
  return Status::OK();
}

Status ViewCatalog::MaterializeText(const std::string& name,
                                    const std::string& definition_text) {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr def,
                         la::ParseExpression(definition_text));
  return Materialize(name, def);
}

}  // namespace hadad::engine
