#include "engine/profiles.h"

#include <functional>
#include <limits>
#include <vector>

#include "common/check.h"

namespace hadad::engine {

namespace {

using la::Expr;
using la::ExprPtr;
using la::MatrixMeta;
using la::MetaCatalog;
using la::OpKind;

bool IsScalarShaped(const ExprPtr& e, const MetaCatalog& catalog) {
  auto shape = la::InferShape(*e, catalog);
  return shape.ok() && shape->rows == 1 && shape->cols == 1;
}

// Flattens a pure matrix-multiplication chain (no scalar-shaped factors).
void FlattenChain(const ExprPtr& e, const MetaCatalog& catalog,
                  std::vector<ExprPtr>& factors) {
  if (e->kind() == OpKind::kMultiply && !IsScalarShaped(e->child(0), catalog) &&
      !IsScalarShaped(e->child(1), catalog)) {
    FlattenChain(e->child(0), catalog, factors);
    FlattenChain(e->child(1), catalog, factors);
    return;
  }
  factors.push_back(e);
}

// Optimal matrix-chain multiplication order (the SystemML `mmchain`
// optimization): minimizes the total size of produced intermediates.
Result<ExprPtr> ReorderChain(const std::vector<ExprPtr>& factors,
                             const MetaCatalog& catalog) {
  const size_t n = factors.size();
  std::vector<int64_t> dims(n + 1);
  for (size_t i = 0; i < n; ++i) {
    HADAD_ASSIGN_OR_RETURN(MatrixMeta m, la::InferShape(*factors[i], catalog));
    if (i == 0) dims[0] = m.rows;
    dims[i + 1] = m.cols;
  }
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<size_t>> split(n, std::vector<size_t>(n, 0));
  for (size_t len = 2; len <= n; ++len) {
    for (size_t i = 0; i + len <= n; ++i) {
      size_t j = i + len - 1;
      cost[i][j] = std::numeric_limits<double>::infinity();
      for (size_t k = i; k < j; ++k) {
        double c = cost[i][k] + cost[k + 1][j] +
                   static_cast<double>(dims[i]) *
                       static_cast<double>(dims[j + 1]);
        if (c < cost[i][j]) {
          cost[i][j] = c;
          split[i][j] = k;
        }
      }
    }
  }
  std::function<ExprPtr(size_t, size_t)> build = [&](size_t i,
                                                     size_t j) -> ExprPtr {
    if (i == j) return factors[i];
    size_t k = split[i][j];
    return Expr::Binary(OpKind::kMultiply, build(i, k), build(k + 1, j));
  };
  return build(0, n - 1);
}

// One bottom-up pass of the kSmart profile's rewrites. Mirrors a subset of
// SystemML's *static* simplification rules — deliberately not the full
// MMC_StatAgg family, and with no cross-rule semantic reasoning (that is
// HADAD's value-add, §6.2.6).
Result<ExprPtr> SmartPass(const ExprPtr& e, const MetaCatalog& catalog,
                          bool* changed) {
  if (e->is_leaf()) return e;
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  for (const ExprPtr& c : e->children()) {
    HADAD_ASSIGN_OR_RETURN(ExprPtr k, SmartPass(c, catalog, changed));
    kids.push_back(std::move(k));
  }
  ExprPtr node = e;
  if (la::Arity(e->kind()) == 1) {
    node = Expr::Unary(e->kind(), kids[0]);
  } else {
    node = Expr::Binary(e->kind(), kids[0], kids[1]);
  }

  const ExprPtr& a = node->children().empty() ? node : node->child(0);
  switch (node->kind()) {
    case OpKind::kTranspose:
      // t(t(X)) -> X.
      if (a->kind() == OpKind::kTranspose) {
        *changed = true;
        return a->child(0);
      }
      break;
    case OpKind::kSum:
      // sum(t(X)) / sum(rev(X)) / sum(rowSums(X)) / sum(colSums(X)) -> sum(X).
      if (a->kind() == OpKind::kTranspose || a->kind() == OpKind::kRev ||
          a->kind() == OpKind::kRowSums || a->kind() == OpKind::kColSums) {
        *changed = true;
        return Expr::Unary(OpKind::kSum, a->child(0));
      }
      break;
    case OpKind::kTrace:
      if (a->kind() == OpKind::kTranspose) {
        *changed = true;
        return Expr::Unary(OpKind::kTrace, a->child(0));
      }
      break;
    case OpKind::kRowSums:
      // rowSums(t(X)) -> t(colSums(X)).
      if (a->kind() == OpKind::kTranspose) {
        *changed = true;
        return Expr::Unary(
            OpKind::kTranspose,
            Expr::Unary(OpKind::kColSums, a->child(0)));
      }
      break;
    case OpKind::kColSums:
      if (a->kind() == OpKind::kTranspose) {
        *changed = true;
        return Expr::Unary(
            OpKind::kTranspose,
            Expr::Unary(OpKind::kRowSums, a->child(0)));
      }
      break;
    case OpKind::kMultiply: {
      std::vector<ExprPtr> factors;
      FlattenChain(node, catalog, factors);
      if (factors.size() >= 3) {
        HADAD_ASSIGN_OR_RETURN(ExprPtr reordered,
                               ReorderChain(factors, catalog));
        if (!reordered->Equals(*node)) {
          *changed = true;
          return reordered;
        }
      }
      break;
    }
    default:
      break;
  }
  return node;
}

}  // namespace

Result<ExprPtr> ApplySmartRewrites(const ExprPtr& expr,
                                   const MetaCatalog& catalog) {
  ExprPtr current = expr;
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    HADAD_ASSIGN_OR_RETURN(current, SmartPass(current, catalog, &changed));
    if (!changed) break;
  }
  return current;
}

Result<la::ExprPtr> Engine::Plan(const la::ExprPtr& expr) const {
  if (profile_ == Profile::kNaive) return expr;
  return ApplySmartRewrites(expr, workspace_->BuildMetaCatalog());
}

Result<matrix::Matrix> Engine::Run(const la::ExprPtr& expr,
                                   ExecStats* stats) const {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr plan, Plan(expr));
  return Execute(*plan, *workspace_, stats);
}

}  // namespace hadad::engine
