#include "engine/workspace.h"

#include <algorithm>
#include <limits>

#include "matrix/decompositions.h"

namespace hadad::engine {

Snapshot::~Snapshot() {
  if (owner_ != nullptr) owner_->Unpin(generation_);
}

void Workspace::Install(const std::string& name,
                        std::shared_ptr<const matrix::Matrix> value) {
  const int64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  data_.insert_or_assign(name, value);
  std::vector<std::shared_ptr<const matrix::Matrix>> drained;
  {
    common::MutexLock lock(&mu_);
    std::vector<Version>& chain = chains_[name];
    if (!chain.empty() && chain.back().retired_at == kNotRetired) {
      chain.back().retired_at = gen;
      ++retired_total_;
    }
    chain.push_back(Version{std::move(value), gen, kNotRetired});
    TrimLocked(&drained);
  }
  // `drained` destroys the reclaimed matrices here, outside mu_.
}

bool Workspace::Retire(const std::string& name) {
  const int64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  bool retired = false;
  std::vector<std::shared_ptr<const matrix::Matrix>> drained;
  {
    common::MutexLock lock(&mu_);
    auto it = chains_.find(name);
    if (it != chains_.end() && !it->second.empty() &&
        it->second.back().retired_at == kNotRetired) {
      it->second.back().retired_at = gen;
      ++retired_total_;
      retired = true;
    }
    TrimLocked(&drained);
  }
  return retired;
}

void Workspace::Unpin(int64_t generation) const {
  std::vector<std::shared_ptr<const matrix::Matrix>> drained;
  {
    common::MutexLock lock(&mu_);
    auto it = pins_.find(generation);
    HADAD_CHECK_MSG(it != pins_.end(), "unpin of unregistered snapshot");
    if (--it->second == 0) pins_.erase(it);
    TrimLocked(&drained);
  }
}

void Workspace::TrimLocked(
    std::vector<std::shared_ptr<const matrix::Matrix>>* drained) const {
  // A snapshot pinned at generation g reads, for each name, the version
  // with epoch <= g < retired_at. A retired version is therefore still
  // visible to some pin iff a pinned generation precedes its retirement;
  // free it once min(pins) >= retired_at.
  const int64_t min_pinned = pins_.empty()
                                 ? std::numeric_limits<int64_t>::max()
                                 : pins_.begin()->first;
  for (auto it = chains_.begin(); it != chains_.end();) {
    std::vector<Version>& chain = it->second;
    auto keep = std::remove_if(
        chain.begin(), chain.end(), [&](Version& v) {
          if (v.retired_at == kNotRetired || v.retired_at > min_pinned) {
            return false;
          }
          drained->push_back(std::move(v.value));
          return true;
        });
    chain.erase(keep, chain.end());
    it = chain.empty() ? chains_.erase(it) : std::next(it);
  }
}

SnapshotPtr Workspace::PinSnapshot() const {
  auto snapshot = std::shared_ptr<Snapshot>(new Snapshot());
  snapshot->entries_ = data_;
  common::MutexLock lock(&mu_);
  snapshot->owner_ = this;
  snapshot->generation_ = generation();
  ++pins_[snapshot->generation_];
  return snapshot;
}

void Workspace::Put(const std::string& name, matrix::Matrix m) {
  // Versions are created non-const (and viewed through const pointers) so
  // the in-place Append fast path may legally cast mutability back on.
  Install(name, std::make_shared<matrix::Matrix>(std::move(m)));
}

Status Workspace::Update(const std::string& name, matrix::Matrix m) {
  if (data_.find(name) == data_.end()) {
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }
  Install(name, std::make_shared<matrix::Matrix>(std::move(m)));
  return Status::OK();
}

Status Workspace::Append(const std::string& name,
                         const matrix::Matrix& rows) {
  auto it = data_.find(name);
  if (it == data_.end()) {
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }
  // Fast path: when no pinned snapshot can see the live version, grow it
  // in place — O(|Δ|) instead of a whole-matrix copy-on-write. Pinning
  // happens under the owner's shared state lock while mutators hold it
  // uniquely, so no pin can appear mid-append; existing pins only drain,
  // which never makes an invisible version visible.
  std::shared_ptr<matrix::Matrix> in_place;
  {
    common::MutexLock lock(&mu_);
    auto chain_it = chains_.find(name);
    if (chain_it != chains_.end() && !chain_it->second.empty() &&
        chain_it->second.back().retired_at == kNotRetired &&
        (pins_.empty() ||
         pins_.rbegin()->first < chain_it->second.back().epoch)) {
      in_place = std::const_pointer_cast<matrix::Matrix>(
          chain_it->second.back().value);
    }
  }
  if (in_place != nullptr) {
    HADAD_RETURN_IF_ERROR(matrix::AppendRows(in_place.get(), rows));
    // The grown value is a *new* epoch of the same version slot: bump it
    // so dependent WorkspaceSnapshots go stale exactly as a reinstall
    // would, without retiring anything.
    const int64_t gen =
        generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
    common::MutexLock lock(&mu_);
    chains_.find(name)->second.back().epoch = gen;
    return Status::OK();
  }
  // Copy-on-write: grow a copy and install it as a new version so pinned
  // readers keep the un-grown matrix.
  matrix::Matrix grown = *it->second;
  HADAD_RETURN_IF_ERROR(matrix::AppendRows(&grown, rows));
  Install(name, std::make_shared<matrix::Matrix>(std::move(grown)));
  return Status::OK();
}

bool Workspace::Erase(const std::string& name) {
  if (data_.erase(name) == 0) return false;
  Retire(name);
  return true;
}

std::optional<matrix::Matrix> Workspace::Take(const std::string& name) {
  auto it = data_.find(name);
  if (it == data_.end()) return std::nullopt;
  // Copy, not move: the retired version may still be pinned by snapshots.
  matrix::Matrix value = *it->second;
  data_.erase(it);
  Retire(name);
  return value;
}

int64_t Workspace::EpochOf(const std::string& name) const {
  common::MutexLock lock(&mu_);
  auto it = chains_.find(name);
  if (it == chains_.end() || it->second.empty() ||
      it->second.back().retired_at != kNotRetired) {
    return kNeverStored;
  }
  return it->second.back().epoch;
}

WorkspaceSnapshot Workspace::SnapshotFor(
    const std::vector<std::string>& names) const {
  WorkspaceSnapshot snapshot;
  snapshot.generation = generation();
  snapshot.epochs.reserve(names.size());
  common::MutexLock lock(&mu_);
  for (const std::string& name : names) {
    auto it = chains_.find(name);
    const bool live = it != chains_.end() && !it->second.empty() &&
                      it->second.back().retired_at == kNotRetired;
    snapshot.epochs.emplace_back(
        name, live ? it->second.back().epoch : kNeverStored);
  }
  return snapshot;
}

bool Workspace::SnapshotCurrent(const WorkspaceSnapshot& snapshot) const {
  common::MutexLock lock(&mu_);
  for (const auto& [name, epoch] : snapshot.epochs) {
    auto it = chains_.find(name);
    const bool live = it != chains_.end() && !it->second.empty() &&
                      it->second.back().retired_at == kNotRetired;
    if ((live ? it->second.back().epoch : kNeverStored) != epoch) {
      return false;
    }
  }
  return true;
}

int64_t Workspace::PinnedSnapshots() const {
  common::MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [gen, count] : pins_) total += count;
  return total;
}

int64_t Workspace::LiveVersions() const {
  common::MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [name, chain] : chains_) {
    total += static_cast<int64_t>(chain.size());
  }
  return total;
}

int64_t Workspace::RetiredTotal() const {
  common::MutexLock lock(&mu_);
  return retired_total_;
}

int64_t Workspace::RetainedBytes() const {
  common::MutexLock lock(&mu_);
  int64_t total = 0;
  for (const auto& [name, chain] : chains_) {
    for (const Version& v : chain) total += matrix::ApproxBytes(*v.value);
  }
  return total;
}

la::MatrixMeta Workspace::MetaFor(const matrix::Matrix& m,
                                  int64_t flag_detect_limit) {
  la::MatrixMeta meta;
  meta.rows = m.rows();
  meta.cols = m.cols();
  meta.nnz = static_cast<double>(m.Nnz());
  if (m.IsSquare() && m.rows() <= flag_detect_limit) {
    meta.lower_triangular = matrix::IsLowerTriangular(m);
    meta.upper_triangular = matrix::IsUpperTriangular(m);
    meta.orthogonal = matrix::IsOrthogonal(m);
    if (matrix::IsSymmetric(m)) {
      // Positive definiteness via an attempted Cholesky.
      meta.symmetric_pd = matrix::CholeskyDecompose(m).ok();
    }
  }
  return meta;
}

la::MetaCatalog Workspace::BuildMetaCatalog(int64_t flag_detect_limit) const {
  la::MetaCatalog catalog;
  for (const auto& [name, m] : data_) {
    catalog[name] = MetaFor(*m, flag_detect_limit);
  }
  return catalog;
}

}  // namespace hadad::engine
