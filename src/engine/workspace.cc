#include "engine/workspace.h"

#include "matrix/decompositions.h"

namespace hadad::engine {

void Workspace::Bump(const std::string& name) {
  const int64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  common::MutexLock lock(&epoch_mu_);
  epochs_[name] = gen;
}

void Workspace::Put(const std::string& name, matrix::Matrix m) {
  data_.insert_or_assign(name, std::move(m));
  Bump(name);
}

Status Workspace::Update(const std::string& name, matrix::Matrix m) {
  auto it = data_.find(name);
  if (it == data_.end()) {
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }
  it->second = std::move(m);
  Bump(name);
  return Status::OK();
}

Status Workspace::Append(const std::string& name,
                         const matrix::Matrix& rows) {
  auto it = data_.find(name);
  if (it == data_.end()) {
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }
  HADAD_RETURN_IF_ERROR(matrix::AppendRows(&it->second, rows));
  Bump(name);
  return Status::OK();
}

void Workspace::DropEpoch(const std::string& name) {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  common::MutexLock lock(&epoch_mu_);
  epochs_.erase(name);
}

bool Workspace::Erase(const std::string& name) {
  if (data_.erase(name) == 0) return false;
  DropEpoch(name);
  return true;
}

std::optional<matrix::Matrix> Workspace::Take(const std::string& name) {
  auto it = data_.find(name);
  if (it == data_.end()) return std::nullopt;
  matrix::Matrix value = std::move(it->second);
  data_.erase(it);
  DropEpoch(name);
  return value;
}

int64_t Workspace::EpochOf(const std::string& name) const {
  common::MutexLock lock(&epoch_mu_);
  auto it = epochs_.find(name);
  return it == epochs_.end() ? kNeverStored : it->second;
}

WorkspaceSnapshot Workspace::SnapshotFor(
    const std::vector<std::string>& names) const {
  WorkspaceSnapshot snapshot;
  snapshot.generation = generation();
  snapshot.epochs.reserve(names.size());
  common::MutexLock lock(&epoch_mu_);
  for (const std::string& name : names) {
    auto it = epochs_.find(name);
    snapshot.epochs.emplace_back(
        name, it == epochs_.end() ? kNeverStored : it->second);
  }
  return snapshot;
}

bool Workspace::SnapshotCurrent(const WorkspaceSnapshot& snapshot) const {
  common::MutexLock lock(&epoch_mu_);
  for (const auto& [name, epoch] : snapshot.epochs) {
    auto it = epochs_.find(name);
    if ((it == epochs_.end() ? kNeverStored : it->second) != epoch) {
      return false;
    }
  }
  return true;
}

la::MatrixMeta Workspace::MetaFor(const matrix::Matrix& m,
                                  int64_t flag_detect_limit) {
  la::MatrixMeta meta;
  meta.rows = m.rows();
  meta.cols = m.cols();
  meta.nnz = static_cast<double>(m.Nnz());
  if (m.IsSquare() && m.rows() <= flag_detect_limit) {
    meta.lower_triangular = matrix::IsLowerTriangular(m);
    meta.upper_triangular = matrix::IsUpperTriangular(m);
    meta.orthogonal = matrix::IsOrthogonal(m);
    if (matrix::IsSymmetric(m)) {
      // Positive definiteness via an attempted Cholesky.
      meta.symmetric_pd = matrix::CholeskyDecompose(m).ok();
    }
  }
  return meta;
}

la::MetaCatalog Workspace::BuildMetaCatalog(int64_t flag_detect_limit) const {
  la::MetaCatalog catalog;
  for (const auto& [name, m] : data_) {
    catalog[name] = MetaFor(m, flag_detect_limit);
  }
  return catalog;
}

}  // namespace hadad::engine
