#include "engine/workspace.h"

#include "matrix/decompositions.h"

namespace hadad::engine {

la::MetaCatalog Workspace::BuildMetaCatalog(int64_t flag_detect_limit) const {
  la::MetaCatalog catalog;
  for (const auto& [name, m] : data_) {
    la::MatrixMeta meta;
    meta.rows = m.rows();
    meta.cols = m.cols();
    meta.nnz = static_cast<double>(m.Nnz());
    if (m.IsSquare() && m.rows() <= flag_detect_limit) {
      meta.lower_triangular = matrix::IsLowerTriangular(m);
      meta.upper_triangular = matrix::IsUpperTriangular(m);
      meta.orthogonal = matrix::IsOrthogonal(m);
      if (matrix::IsSymmetric(m)) {
        // Positive definiteness via an attempted Cholesky.
        meta.symmetric_pd = matrix::CholeskyDecompose(m).ok();
      }
    }
    catalog[name] = meta;
  }
  return catalog;
}

}  // namespace hadad::engine
