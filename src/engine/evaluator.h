#ifndef HADAD_ENGINE_EVALUATOR_H_
#define HADAD_ENGINE_EVALUATOR_H_

#include "common/status.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::engine {

struct ExecStats {
  // Wall-clock seconds for the evaluation.
  double seconds = 0.0;
  // Actual total non-zeros across all intermediate results (every internal
  // node except the root) — the ground truth of the paper's cost measure γ.
  double intermediate_nnz = 0.0;
  // Number of operator applications executed.
  int64_t operators = 0;
};

// Evaluates `expr` over `workspace` bottom-up, in the exact syntactic order
// given — the paper's "as stated" semantics (§7.1): no reordering, no
// simplification. Engine profiles build on top of this.
Result<matrix::Matrix> Execute(const la::Expr& expr,
                               const Workspace& workspace,
                               ExecStats* stats = nullptr);

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_EVALUATOR_H_
