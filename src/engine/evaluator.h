#ifndef HADAD_ENGINE_EVALUATOR_H_
#define HADAD_ENGINE_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::engine {

// Aggregated wall-clock per operator kind, accumulated by the exec:: DAG
// runtime (the tree-walking evaluator leaves `op_timings` empty).
struct OpTiming {
  std::string op;        // la::OpName of the operator kind.
  int64_t count = 0;     // Physical nodes executed with this kind.
  double seconds = 0.0;  // Summed kernel wall-clock.
};

// Measured execution of one physical plan node. The vector in ExecStats is
// index-aligned with exec::CompiledPlan::nodes, so consumers (EXPLAIN
// ANALYZE, the trace exporter) can join measured time back onto the plan
// shape without a side channel. Loads and the root report nnz = 0 (they
// are not intermediates under the paper's γ measure).
struct NodeTiming {
  double seconds = 0.0;  // Kernel wall-clock of this node.
  double nnz = 0.0;      // Actual non-zeros of the node's output.
};

struct ExecStats {
  // Wall-clock seconds for the evaluation.
  double seconds = 0.0;
  // Actual total non-zeros across all intermediate results (every internal
  // node except the root) — the ground truth of the paper's cost measure γ.
  // Under the DAG engine a CSE-shared intermediate counts once.
  double intermediate_nnz = 0.0;
  // Number of operator applications executed.
  int64_t operators = 0;

  // --- DAG-engine breakdown (zero / empty under the tree evaluator) -------
  // Expression-tree nodes folded into already-compiled DAG nodes by
  // common-subexpression elimination.
  int64_t cse_hits = 0;
  // Physical plan nodes (leaves included) in the executed DAG.
  int64_t plan_nodes = 0;
  // Operator-fusion outcome: physical nodes that fuse several logical
  // operators (elementwise chains collapsed to one single-pass kernel,
  // aggregations pushed into their producing GEMM), and how many operator
  // nodes — one materialized intermediate each — fusion eliminated.
  int64_t fused_nodes = 0;
  int64_t fused_ops_eliminated = 0;
  // Degree of parallelism the run was scheduled with.
  int threads = 1;
  // SIMD kernel tier the dispatched matrix kernels ran on ("scalar",
  // "avx2", "avx512"); empty under the tree evaluator. All tiers are
  // bit-identical — this records speed, not semantics.
  std::string kernel_tier;
  // Total kernel wall-clock summed over nodes ("work") and the longest
  // dependency chain of kernel times ("span"). work / span bounds the
  // achievable parallel speedup of the plan, so `parallel_speedup` is ready
  // to be read off as total_operator_seconds / critical_path_seconds.
  double total_operator_seconds = 0.0;
  double critical_path_seconds = 0.0;
  // Per-operator-kind timing, sorted by descending total seconds.
  std::vector<OpTiming> op_timings;
  // Per-physical-node timing, index-aligned with CompiledPlan::nodes.
  // Filled by the DAG scheduler when stats are requested; empty under the
  // tree evaluator.
  std::vector<NodeTiming> node_timings;
};

// Evaluates `expr` over `workspace` bottom-up, in the exact syntactic order
// given — the paper's "as stated" semantics (§7.1): no reordering, no
// simplification. Engine profiles build on top of this. Accepts a live
// Workspace (implicitly converted; caller holds its state stable) or a
// pinned Snapshot (lock-free MVCC read path).
Result<matrix::Matrix> Execute(const la::Expr& expr,
                               WorkspaceView workspace,
                               ExecStats* stats = nullptr);

// Options for the parallel DAG engine (src/exec/): how many threads to
// schedule on and whether to hash-cons repeated subexpressions.
struct ExecOptions {
  // Degree of parallelism; 0 resolves to hardware_concurrency(), 1 runs the
  // DAG sequentially (still with CSE and blocked kernels).
  int threads = 0;
  // Fold structurally identical subtrees into one plan node.
  bool enable_cse = true;
  // Outputs with fewer cells than this run on the generic sequential
  // kernels; at or above it the compiler picks blocked/partitioned ones.
  // Tier-aware default (see cost::DefaultParallelCellThreshold).
  int64_t parallel_cell_threshold = cost::DefaultParallelCellThreshold();
  // Collapse elementwise chains into single-pass kernels and push
  // sum/rowSums/colSums into their producing GEMM (bit-identical results;
  // see exec::CompileOptions::enable_fusion).
  bool enable_fusion = true;
};

// Compiles `expr` into a physical operator DAG (CSE + representation-aware
// kernel selection) and executes it on a transient thread pool. Semantics
// match Execute() above; results are bit-for-bit identical at any thread
// count. Implemented in src/exec/executor.cc. Callers with a long-lived
// session should prefer exec::Executor (or api::SessionBuilder::Threads),
// which reuses one pool across runs.
Result<matrix::Matrix> Execute(const la::Expr& expr,
                               WorkspaceView workspace,
                               const ExecOptions& options,
                               ExecStats* stats = nullptr);

// Applies a single operator to already-evaluated inputs — the per-node
// kernel shared by the tree-walking evaluator and the exec:: DAG runtime.
// `e` supplies the operator kind only; inputs.size() must equal its arity.
Result<matrix::Matrix> ApplyOp(const la::Expr& e,
                               const std::vector<const matrix::Matrix*>& inputs);

}  // namespace hadad::engine

#endif  // HADAD_ENGINE_EVALUATOR_H_
