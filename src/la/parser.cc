#include "la/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

namespace hadad::la {

namespace {

enum class TokKind { kNumber, kIdent, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        char* end = nullptr;
        double v = std::strtod(text_.c_str() + i, &end);
        size_t len = static_cast<size_t>(end - (text_.c_str() + i));
        if (len == 0) {
          return Status::InvalidArgument("malformed number at offset " +
                                         std::to_string(i));
        }
        out.push_back({TokKind::kNumber, text_.substr(i, len), v});
        i += len;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_' || text_[j] == '.')) {
          ++j;
        }
        out.push_back({TokKind::kIdent, text_.substr(i, j - i), 0.0});
        i = j;
        continue;
      }
      if (c == '%') {
        if (text_.compare(i, 3, "%*%") == 0) {
          out.push_back({TokKind::kSymbol, "%*%", 0.0});
          i += 3;
          continue;
        }
        return Status::InvalidArgument("unexpected '%' at offset " +
                                       std::to_string(i));
      }
      if (std::string("+-*/(),").find(c) != std::string::npos) {
        out.push_back({TokKind::kSymbol, std::string(1, c), 0.0});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' at offset " + std::to_string(i));
    }
    out.push_back({TokKind::kEnd, "", 0.0});
    return out;
  }

 private:
  const std::string& text_;
};

const std::map<std::string, OpKind>& UnaryFunctions() {
  static const auto* kMap = new std::map<std::string, OpKind>{
      {"t", OpKind::kTranspose},   {"inv", OpKind::kInverse},
      {"det", OpKind::kDet},       {"trace", OpKind::kTrace},
      {"diag", OpKind::kDiag},     {"exp", OpKind::kExp},
      {"adj", OpKind::kAdjoint},   {"rev", OpKind::kRev},
      {"sum", OpKind::kSum},       {"rowSums", OpKind::kRowSums},
      {"colSums", OpKind::kColSums},
      {"min", OpKind::kMin},       {"max", OpKind::kMax},
      {"mean", OpKind::kMean},     {"var", OpKind::kVar},
      {"rowMins", OpKind::kRowMins},   {"rowMaxs", OpKind::kRowMaxs},
      {"rowMeans", OpKind::kRowMeans}, {"rowVars", OpKind::kRowVars},
      {"colMins", OpKind::kColMins},   {"colMaxs", OpKind::kColMaxs},
      {"colMeans", OpKind::kColMeans}, {"colVars", OpKind::kColVars},
      {"cho", OpKind::kCholesky},  {"qr_q", OpKind::kQrQ},
      {"qr_r", OpKind::kQrR},      {"lu_l", OpKind::kLuL},
      {"lu_u", OpKind::kLuU},
      {"lup_l", OpKind::kPluL},
      {"lup_u", OpKind::kPluU},
      {"lup_p", OpKind::kPluP},
  };
  return *kMap;
}

const std::map<std::string, OpKind>& BinaryFunctions() {
  static const auto* kMap = new std::map<std::string, OpKind>{
      {"dsum", OpKind::kDirectSum},
      {"kron", OpKind::kKronecker},
      {"cbind", OpKind::kCbind},
  };
  return *kMap;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    HADAD_ASSIGN_OR_RETURN(ExprPtr e, ParseAdd());
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input after expression: '" +
                                     Peek().text + "'");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool ConsumeSymbol(const std::string& s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ExprPtr> ParseAdd() {
    HADAD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (true) {
      if (ConsumeSymbol("+")) {
        HADAD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
        lhs = Expr::Binary(OpKind::kAdd, lhs, rhs);
      } else if (ConsumeSymbol("-")) {
        HADAD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
        // A - B desugars to A + (-1 * B): the addition/scalar constraint
        // families then cover subtraction with no extra rules.
        lhs = Expr::Binary(
            OpKind::kAdd, lhs,
            Expr::Binary(OpKind::kHadamard, Expr::Scalar(-1.0), rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseTerm() {
    HADAD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMatProd());
    while (true) {
      if (ConsumeSymbol("*")) {
        HADAD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMatProd());
        lhs = Expr::Binary(OpKind::kHadamard, lhs, rhs);
      } else if (ConsumeSymbol("/")) {
        HADAD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMatProd());
        lhs = Expr::Binary(OpKind::kDivide, lhs, rhs);
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMatProd() {
    HADAD_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (ConsumeSymbol("%*%")) {
      HADAD_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::Binary(OpKind::kMultiply, lhs, rhs);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      HADAD_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      if (inner->kind() == OpKind::kScalarConst) {
        return Expr::Scalar(-inner->scalar_value());
      }
      return 
          Expr::Binary(OpKind::kHadamard, Expr::Scalar(-1.0), inner);
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == TokKind::kNumber) {
      ++pos_;
      return Expr::Scalar(tok.number);
    }
    if (ConsumeSymbol("(")) {
      HADAD_ASSIGN_OR_RETURN(ExprPtr e, ParseAdd());
      if (!ConsumeSymbol(")")) {
        return Status::InvalidArgument("expected ')'");
      }
      return e;
    }
    if (tok.kind == TokKind::kIdent) {
      std::string name = tok.text;
      ++pos_;
      if (!ConsumeSymbol("(")) {
        return Expr::MatrixRef(name);
      }
      // Function call.
      std::vector<ExprPtr> args;
      if (!ConsumeSymbol(")")) {
        while (true) {
          HADAD_ASSIGN_OR_RETURN(ExprPtr arg, ParseAdd());
          args.push_back(arg);
          if (ConsumeSymbol(")")) break;
          if (!ConsumeSymbol(",")) {
            return Status::InvalidArgument("expected ',' or ')' in call to " +
                                           name);
          }
        }
      }
      auto unary = UnaryFunctions().find(name);
      if (unary != UnaryFunctions().end()) {
        if (args.size() != 1) {
          return Status::InvalidArgument(name + " takes exactly 1 argument");
        }
        return Expr::Unary(unary->second, args[0]);
      }
      auto binary = BinaryFunctions().find(name);
      if (binary != BinaryFunctions().end()) {
        if (args.size() != 2) {
          return Status::InvalidArgument(name + " takes exactly 2 arguments");
        }
        return Expr::Binary(binary->second, args[0], args[1]);
      }
      return Status::InvalidArgument("unknown function '" + name + "'");
    }
    return Status::InvalidArgument("unexpected token '" + tok.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpression(const std::string& text) {
  Lexer lexer(text);
  HADAD_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace hadad::la
