#include "la/encoder.h"

#include <sstream>
#include <unordered_map>

#include "la/vrem.h"

namespace hadad::la {

namespace {

using chase::Atom;
using chase::Cst;
using chase::MakeAtom;
using chase::Var;

class EncoderImpl {
 public:
  explicit EncoderImpl(const MetaCatalog& catalog) : catalog_(catalog) {}

  Result<EncodedExpr> Encode(const Expr& expr) {
    HADAD_ASSIGN_OR_RETURN(std::string root, EncodeNode(expr));
    out_.root_var = root;
    out_.query.head = {Var(root)};
    return std::move(out_);
  }

 private:
  std::string FreshVar() { return "v" + std::to_string(counter_++); }

  void Emit(const char* predicate, std::vector<chase::Term> args) {
    out_.query.body.push_back(MakeAtom(predicate, std::move(args)));
  }

  // Encodes a node, returning its encoding variable. Structurally equal
  // subtrees are memoized onto one variable.
  Result<std::string> EncodeNode(const Expr& e) {
    const std::string key = ToString(e);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    HADAD_ASSIGN_OR_RETURN(MatrixMeta meta, InferShape(e, catalog_));

    std::string var;
    switch (e.kind()) {
      case OpKind::kMatrixRef:
        var = FreshVar();
        Emit(vrem::kName, {Var(var), Cst(e.name())});
        break;
      case OpKind::kScalarConst:
        var = FreshVar();
        Emit(vrem::kSconst, {Var(var), Cst(FormatScalar(e.scalar_value()))});
        break;
      default: {
        HADAD_ASSIGN_OR_RETURN(var, EncodeOperator(e));
        break;
      }
    }
    memo_.emplace(key, var);
    out_.var_meta.emplace(var, meta);
    return var;
  }

  bool IsScalarShaped(const Expr& e) {
    auto shape = InferShape(e, catalog_);
    return shape.ok() && shape->rows == 1 && shape->cols == 1;
  }

  Result<std::string> EncodeOperator(const Expr& e) {
    std::vector<std::string> kid_vars;
    kid_vars.reserve(e.children().size());
    for (const ExprPtr& c : e.children()) {
      HADAD_ASSIGN_OR_RETURN(std::string v, EncodeNode(*c));
      kid_vars.push_back(v);
    }
    const std::string res = FreshVar();
    auto emit3 = [&](const char* pred) {
      Emit(pred, {Var(kid_vars[0]), Var(kid_vars[1]), Var(res)});
    };
    auto emit2 = [&](const char* pred) {
      Emit(pred, {Var(kid_vars[0]), Var(res)});
    };
    switch (e.kind()) {
      case OpKind::kTranspose: emit2(vrem::kTr); break;
      case OpKind::kInverse: emit2(vrem::kInvM); break;
      case OpKind::kDet: emit2(vrem::kDet); break;
      case OpKind::kTrace: emit2(vrem::kTrace); break;
      case OpKind::kDiag: emit2(vrem::kDiag); break;
      case OpKind::kExp: emit2(vrem::kExp); break;
      case OpKind::kAdjoint: emit2(vrem::kAdj); break;
      case OpKind::kRev: emit2(vrem::kRev); break;
      case OpKind::kSum: emit2(vrem::kSum); break;
      case OpKind::kRowSums: emit2(vrem::kRowSums); break;
      case OpKind::kColSums: emit2(vrem::kColSums); break;
      case OpKind::kMin: emit2(vrem::kMin); break;
      case OpKind::kMax: emit2(vrem::kMax); break;
      case OpKind::kMean: emit2(vrem::kMean); break;
      case OpKind::kVar: emit2(vrem::kVar); break;
      case OpKind::kRowMins: emit2(vrem::kRowMin); break;
      case OpKind::kRowMaxs: emit2(vrem::kRowMax); break;
      case OpKind::kRowMeans: emit2(vrem::kRowMean); break;
      case OpKind::kRowVars: emit2(vrem::kRowVar); break;
      case OpKind::kColMins: emit2(vrem::kColMin); break;
      case OpKind::kColMaxs: emit2(vrem::kColMax); break;
      case OpKind::kColMeans: emit2(vrem::kColMean); break;
      case OpKind::kColVars: emit2(vrem::kColVar); break;
      case OpKind::kCholesky: emit2(vrem::kCho); break;
      case OpKind::kQrQ:
        Emit(vrem::kQr, {Var(kid_vars[0]), Var(res), Var(FreshVar())});
        break;
      case OpKind::kQrR:
        Emit(vrem::kQr, {Var(kid_vars[0]), Var(FreshVar()), Var(res)});
        break;
      case OpKind::kLuL:
        Emit(vrem::kLu, {Var(kid_vars[0]), Var(res), Var(FreshVar())});
        break;
      case OpKind::kLuU:
        Emit(vrem::kLu, {Var(kid_vars[0]), Var(FreshVar()), Var(res)});
        break;
      case OpKind::kPluL:
        Emit(vrem::kLup,
             {Var(kid_vars[0]), Var(res), Var(FreshVar()), Var(FreshVar())});
        break;
      case OpKind::kPluU:
        Emit(vrem::kLup,
             {Var(kid_vars[0]), Var(FreshVar()), Var(res), Var(FreshVar())});
        break;
      case OpKind::kPluP:
        Emit(vrem::kLup,
             {Var(kid_vars[0]), Var(FreshVar()), Var(FreshVar()), Var(res)});
        break;
      case OpKind::kMultiply:
      case OpKind::kHadamard: {
        // Scalar flavoring (§3: numbers are 1x1 matrices): both 1x1 ->
        // multiS; one 1x1 -> multiMS (scalar first); otherwise the matrix
        // operator.
        const bool lhs_scalar = IsScalarShaped(*e.child(0));
        const bool rhs_scalar = IsScalarShaped(*e.child(1));
        if (lhs_scalar && rhs_scalar) {
          emit3(vrem::kMultiS);
        } else if (lhs_scalar) {
          emit3(vrem::kMultiMS);
        } else if (rhs_scalar) {
          Emit(vrem::kMultiMS, {Var(kid_vars[1]), Var(kid_vars[0]), Var(res)});
        } else if (e.kind() == OpKind::kMultiply) {
          emit3(vrem::kMultiM);
        } else {
          emit3(vrem::kMultiE);
        }
        break;
      }
      case OpKind::kAdd:
        if (IsScalarShaped(*e.child(0)) && IsScalarShaped(*e.child(1))) {
          emit3(vrem::kAddS);
        } else {
          emit3(vrem::kAddM);
        }
        break;
      case OpKind::kDivide: {
        const bool lhs_scalar = IsScalarShaped(*e.child(0));
        const bool rhs_scalar = IsScalarShaped(*e.child(1));
        if (lhs_scalar && rhs_scalar) {
          emit3(vrem::kDivS);
        } else if (rhs_scalar) {
          Emit(vrem::kDivMS, {Var(kid_vars[0]), Var(kid_vars[1]), Var(res)});
        } else {
          emit3(vrem::kDivM);
        }
        break;
      }
      case OpKind::kDirectSum: emit3(vrem::kSumD); break;
      case OpKind::kKronecker: emit3(vrem::kProductD); break;
      case OpKind::kCbind: emit3(vrem::kCbind); break;
      default:
        return Status::Internal("unhandled operator in encoder");
    }
    return res;
  }

  const MetaCatalog& catalog_;
  EncodedExpr out_;
  std::unordered_map<std::string, std::string> memo_;
  int counter_ = 0;
};

}  // namespace

std::string FormatScalar(double v) {
  std::ostringstream ss;
  ss.precision(15);
  ss << v;
  return ss.str();
}

Result<EncodedExpr> EncodeExpression(const Expr& expr,
                                     const MetaCatalog& catalog) {
  // Validate up front so encoding failures are always shape errors with the
  // full expression in the message.
  HADAD_RETURN_IF_ERROR(InferShape(expr, catalog).status());
  EncoderImpl impl(catalog);
  return impl.Encode(expr);
}

}  // namespace hadad::la
