#ifndef HADAD_LA_PARSER_H_
#define HADAD_LA_PARSER_H_

#include <string>

#include "common/status.h"
#include "la/expr.h"

namespace hadad::la {

// Parses an R-like LA expression, e.g.
//   "inv(t(X) %*% X) %*% (t(X) %*% y)"        (the OLS pipeline, §2)
//   "colSums(M %*% N)"                        (P1.12)
//   "sum(t(colSums(M)) * rowSums(N))"         (rewritten P1.13)
//
// Grammar (precedence mirrors R):
//   expr    := term (('+' | '-') term)*
//   term    := matprod (('*' | '/') matprod)*
//   matprod := unary ('%*%' unary)*
//   unary   := '-' unary | primary
//   primary := NUMBER | IDENT | IDENT '(' expr (',' expr)* ')' | '(' expr ')'
//
// '-' desugars to + (-1 * x); unary functions are the OpName() spellings
// (t, inv, det, trace, diag, exp, adj, rev, sum, rowSums, colSums, min, max,
// mean, var, rowMins/..., cho, qr_q, qr_r, lu_l, lu_u); binary functions are
// dsum, kron, cbind.
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace hadad::la

#endif  // HADAD_LA_PARSER_H_
