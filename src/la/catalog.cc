#include "la/catalog.h"

#include <initializer_list>

#include "la/encoder.h"
#include "la/vrem.h"

namespace hadad::la {

namespace {

using chase::Atom;
using chase::Constraint;
using chase::Cst;
using chase::MakeAtom;
using chase::MakeEgd;
using chase::MakeTgd;
using chase::Term;
using chase::Var;

Atom A(const char* pred, std::initializer_list<Term> args) {
  return MakeAtom(pred, std::vector<Term>(args));
}

// Emits lhs → rhs and rhs → lhs for an equality-shaped property. Variables
// appearing on only one side are existential in the direction that
// introduces them.
void Both(const std::string& name, std::vector<Atom> lhs,
          std::vector<Atom> rhs, std::vector<Constraint>& out) {
  out.push_back(MakeTgd(name + ">", lhs, rhs));
  out.push_back(MakeTgd(name + "<", std::move(rhs), std::move(lhs)));
}

}  // namespace

std::vector<Constraint> MmcCoreKeys() {
  std::vector<Constraint> out;
  // I_name: one class per logical name.
  out.push_back(MakeEgd("I_name",
                        {A(vrem::kName, {Var("M"), Var("n")}),
                         A(vrem::kName, {Var("N"), Var("n")})},
                        {{Var("M"), Var("N")}}));
  // I_size: the class determines the dimensions.
  out.push_back(MakeEgd("I_size",
                        {A(vrem::kSize, {Var("M"), Var("k1"), Var("z1")}),
                         A(vrem::kSize, {Var("M"), Var("k2"), Var("z2")})},
                        {{Var("k1"), Var("k2")}, {Var("z1"), Var("z2")}}));
  // Scalar literals are interned per value.
  out.push_back(MakeEgd("I_sconst",
                        {A(vrem::kSconst, {Var("S1"), Var("v")}),
                         A(vrem::kSconst, {Var("S2"), Var("v")})},
                        {{Var("S1"), Var("S2")}}));
  // I_zero / I_iden: one zero (identity) class per shape.
  out.push_back(MakeEgd("I_zero",
                        {A(vrem::kZero, {Var("O1")}),
                         A(vrem::kSize, {Var("O1"), Var("k"), Var("z")}),
                         A(vrem::kZero, {Var("O2")}),
                         A(vrem::kSize, {Var("O2"), Var("k"), Var("z")})},
                        {{Var("O1"), Var("O2")}}));
  out.push_back(MakeEgd("I_iden",
                        {A(vrem::kIdentity, {Var("I1")}),
                         A(vrem::kSize, {Var("I1"), Var("k"), Var("k")}),
                         A(vrem::kIdentity, {Var("I2")}),
                         A(vrem::kSize, {Var("I2"), Var("k"), Var("k")})},
                        {{Var("I1"), Var("I2")}}));
  return out;
}

std::vector<Constraint> MmcFunctionalKeys() {
  std::vector<Constraint> out;
  // Unary functional relations: op(M, R1) ∧ op(M, R2) → R1 = R2.
  for (const char* pred :
       {vrem::kTr, vrem::kInvM, vrem::kDet, vrem::kTrace, vrem::kDiag,
        vrem::kExp, vrem::kAdj, vrem::kRev, vrem::kSum, vrem::kRowSums,
        vrem::kColSums, vrem::kMin, vrem::kMax, vrem::kMean, vrem::kVar,
        vrem::kRowMin, vrem::kRowMax, vrem::kRowMean, vrem::kRowVar,
        vrem::kColMin, vrem::kColMax, vrem::kColMean, vrem::kColVar,
        vrem::kCho, vrem::kInvS}) {
    out.push_back(MakeEgd(std::string("I_") + pred,
                          {A(pred, {Var("M"), Var("R1")}),
                           A(pred, {Var("M"), Var("R2")})},
                          {{Var("R1"), Var("R2")}}));
  }
  // Binary functional relations.
  for (const char* pred :
       {vrem::kMultiM, vrem::kMultiMS, vrem::kMultiE, vrem::kAddM,
        vrem::kDivM, vrem::kDivMS, vrem::kSumD, vrem::kProductD,
        vrem::kCbind, vrem::kMultiS, vrem::kAddS, vrem::kDivS}) {
    out.push_back(MakeEgd(std::string("I_") + pred,
                          {A(pred, {Var("M"), Var("N"), Var("R1")}),
                           A(pred, {Var("M"), Var("N"), Var("R2")})},
                          {{Var("R1"), Var("R2")}}));
  }
  // Two-output decompositions.
  out.push_back(MakeEgd("I_qr",
                        {A(vrem::kQr, {Var("M"), Var("Q1"), Var("R1")}),
                         A(vrem::kQr, {Var("M"), Var("Q2"), Var("R2")})},
                        {{Var("Q1"), Var("Q2")}, {Var("R1"), Var("R2")}}));
  out.push_back(MakeEgd("I_lu",
                        {A(vrem::kLu, {Var("M"), Var("L1"), Var("U1")}),
                         A(vrem::kLu, {Var("M"), Var("L2"), Var("U2")})},
                        {{Var("L1"), Var("L2")}, {Var("U1"), Var("U2")}}));
  out.push_back(MakeEgd(
      "I_lup",
      {A(vrem::kLup, {Var("M"), Var("L1"), Var("U1"), Var("P1")}),
       A(vrem::kLup, {Var("M"), Var("L2"), Var("U2"), Var("P2")})},
      {{Var("L1"), Var("L2")},
       {Var("U1"), Var("U2")},
       {Var("P1"), Var("P2")}}));
  return out;
}

std::vector<Constraint> MmcLaProperties() {
  std::vector<Constraint> out;

  // ----- Addition (Table 8) ------------------------------------------------
  // M + N = N + M.
  out.push_back(MakeTgd("add-comm",
                        {A(vrem::kAddM, {Var("M"), Var("N"), Var("R")})},
                        {A(vrem::kAddM, {Var("N"), Var("M"), Var("R")})}));
  // (M + N) + D = M + (N + D).
  Both("add-assoc",
       {A(vrem::kAddM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kAddM, {Var("R1"), Var("D"), Var("R2")})},
       {A(vrem::kAddM, {Var("N"), Var("D"), Var("R3")}),
        A(vrem::kAddM, {Var("M"), Var("R3"), Var("R2")})},
       out);
  // c (M + N) = c M + c N.
  Both("scalar-dist-add",
       {A(vrem::kAddM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kMultiMS, {Var("c"), Var("R1"), Var("R2")})},
       {A(vrem::kMultiMS, {Var("c"), Var("M"), Var("R3")}),
        A(vrem::kMultiMS, {Var("c"), Var("N"), Var("R4")}),
        A(vrem::kAddM, {Var("R3"), Var("R4"), Var("R2")})},
       out);
  // (c + d) M = c M + d M.
  Both("scalar-sum-dist",
       {A(vrem::kAddS, {Var("c"), Var("d"), Var("s")}),
        A(vrem::kMultiMS, {Var("s"), Var("M"), Var("R1")})},
       {A(vrem::kMultiMS, {Var("c"), Var("M"), Var("R2")}),
        A(vrem::kMultiMS, {Var("d"), Var("M"), Var("R3")}),
        A(vrem::kAddM, {Var("R2"), Var("R3"), Var("R1")})},
       out);
  // M + 0 = M.
  out.push_back(MakeEgd("add-zero",
                        {A(vrem::kZero, {Var("O")}),
                         A(vrem::kAddM, {Var("M"), Var("O"), Var("R")})},
                        {{Var("R"), Var("M")}}));

  // ----- Product (Table 8) -------------------------------------------------
  // (M N) D = M (N D).
  Both("mul-assoc",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kMultiM, {Var("R1"), Var("D"), Var("R2")})},
       {A(vrem::kMultiM, {Var("N"), Var("D"), Var("R3")}),
        A(vrem::kMultiM, {Var("M"), Var("R3"), Var("R2")})},
       out);
  // M (N + D) = M N + M D.
  Both("mul-dist-left",
       {A(vrem::kAddM, {Var("N"), Var("D"), Var("R1")}),
        A(vrem::kMultiM, {Var("M"), Var("R1"), Var("R2")})},
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R3")}),
        A(vrem::kMultiM, {Var("M"), Var("D"), Var("R4")}),
        A(vrem::kAddM, {Var("R3"), Var("R4"), Var("R2")})},
       out);
  // (M + N) D = M D + N D.
  Both("mul-dist-right",
       {A(vrem::kAddM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kMultiM, {Var("R1"), Var("D"), Var("R2")})},
       {A(vrem::kMultiM, {Var("M"), Var("D"), Var("R3")}),
        A(vrem::kMultiM, {Var("N"), Var("D"), Var("R4")}),
        A(vrem::kAddM, {Var("R3"), Var("R4"), Var("R2")})},
       out);
  // d (M N) = (d M) N.
  Both("scalar-mul-left",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kMultiMS, {Var("d"), Var("R1"), Var("R2")})},
       {A(vrem::kMultiMS, {Var("d"), Var("M"), Var("R3")}),
        A(vrem::kMultiM, {Var("R3"), Var("N"), Var("R2")})},
       out);
  // d (M N) = M (d N).
  Both("scalar-mul-right",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kMultiMS, {Var("d"), Var("R1"), Var("R2")})},
       {A(vrem::kMultiMS, {Var("d"), Var("N"), Var("R3")}),
        A(vrem::kMultiM, {Var("M"), Var("R3"), Var("R2")})},
       out);
  // c (d M) = (c d) M.
  out.push_back(
      MakeTgd("scalar-fold",
              {A(vrem::kMultiMS, {Var("d"), Var("M"), Var("R1")}),
               A(vrem::kMultiMS, {Var("c"), Var("R1"), Var("R2")})},
              {A(vrem::kMultiS, {Var("c"), Var("d"), Var("s")}),
               A(vrem::kMultiMS, {Var("s"), Var("M"), Var("R2")})}));
  // I M = M and M I = M.
  out.push_back(MakeEgd("iden-mul-left",
                        {A(vrem::kIdentity, {Var("I")}),
                         A(vrem::kMultiM, {Var("I"), Var("M"), Var("R")})},
                        {{Var("R"), Var("M")}}));
  out.push_back(MakeEgd("iden-mul-right",
                        {A(vrem::kIdentity, {Var("I")}),
                         A(vrem::kMultiM, {Var("M"), Var("I"), Var("R")})},
                        {{Var("R"), Var("M")}}));
  // M^{-1} M = I = M M^{-1}.
  out.push_back(MakeTgd("inv-cancel-left",
                        {A(vrem::kInvM, {Var("M"), Var("R1")}),
                         A(vrem::kMultiM, {Var("R1"), Var("M"), Var("R2")})},
                        {A(vrem::kIdentity, {Var("R2")})}));
  out.push_back(MakeTgd("inv-cancel-right",
                        {A(vrem::kInvM, {Var("M"), Var("R1")}),
                         A(vrem::kMultiM, {Var("M"), Var("R1"), Var("R2")})},
                        {A(vrem::kIdentity, {Var("R2")})}));
  // Hadamard commutes.
  out.push_back(MakeTgd("hadamard-comm",
                        {A(vrem::kMultiE, {Var("M"), Var("N"), Var("R")})},
                        {A(vrem::kMultiE, {Var("N"), Var("M"), Var("R")})}));
  // Scalar product commutes.
  out.push_back(MakeTgd("multiS-comm",
                        {A(vrem::kMultiS, {Var("a"), Var("b"), Var("c")})},
                        {A(vrem::kMultiS, {Var("b"), Var("a"), Var("c")})}));
  out.push_back(MakeTgd("addS-comm",
                        {A(vrem::kAddS, {Var("a"), Var("b"), Var("c")})},
                        {A(vrem::kAddS, {Var("b"), Var("a"), Var("c")})}));

  // ----- Transposition (Table 8) --------------------------------------------
  // (M^T)^T = M, generalized to the involution tr(M,R) → tr(R,M).
  out.push_back(MakeTgd("tr-involution",
                        {A(vrem::kTr, {Var("M"), Var("R")})},
                        {A(vrem::kTr, {Var("R"), Var("M")})}));
  // (M N)^T = N^T M^T.
  Both("tr-mul",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kTr, {Var("R1"), Var("R2")})},
       {A(vrem::kTr, {Var("M"), Var("R3")}),
        A(vrem::kTr, {Var("N"), Var("R4")}),
        A(vrem::kMultiM, {Var("R4"), Var("R3"), Var("R2")})},
       out);
  // (M + N)^T = M^T + N^T.
  Both("tr-add",
       {A(vrem::kAddM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kTr, {Var("R1"), Var("R2")})},
       {A(vrem::kTr, {Var("M"), Var("R3")}),
        A(vrem::kTr, {Var("N"), Var("R4")}),
        A(vrem::kAddM, {Var("R3"), Var("R4"), Var("R2")})},
       out);
  // (c M)^T = c M^T.
  Both("tr-scalar",
       {A(vrem::kMultiMS, {Var("c"), Var("M"), Var("R1")}),
        A(vrem::kTr, {Var("R1"), Var("R2")})},
       {A(vrem::kTr, {Var("M"), Var("R3")}),
        A(vrem::kMultiMS, {Var("c"), Var("R3"), Var("R2")})},
       out);
  // (M ⊙ N)^T = M^T ⊙ N^T.
  Both("tr-hadamard",
       {A(vrem::kMultiE, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kTr, {Var("R1"), Var("R2")})},
       {A(vrem::kTr, {Var("M"), Var("R3")}),
        A(vrem::kTr, {Var("N"), Var("R4")}),
        A(vrem::kMultiE, {Var("R3"), Var("R4"), Var("R2")})},
       out);
  // I^T = I; O^T = O for square zero matrices.
  out.push_back(MakeTgd("tr-identity", {A(vrem::kIdentity, {Var("I")})},
                        {A(vrem::kTr, {Var("I"), Var("I")})}));
  out.push_back(MakeTgd("tr-zero",
                        {A(vrem::kZero, {Var("O")}),
                         A(vrem::kSize, {Var("O"), Var("k"), Var("k")})},
                        {A(vrem::kTr, {Var("O"), Var("O")})}));

  // ----- Inverses (Table 8) --------------------------------------------------
  // (M^{-1})^{-1} = M as the involution invM(M,R) → invM(R,M).
  out.push_back(MakeTgd("inv-involution",
                        {A(vrem::kInvM, {Var("M"), Var("R")})},
                        {A(vrem::kInvM, {Var("R"), Var("M")})}));
  // (M N)^{-1} = N^{-1} M^{-1}.
  Both("inv-mul",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kInvM, {Var("R1"), Var("R2")})},
       {A(vrem::kInvM, {Var("M"), Var("R3")}),
        A(vrem::kInvM, {Var("N"), Var("R4")}),
        A(vrem::kMultiM, {Var("R4"), Var("R3"), Var("R2")})},
       out);
  // (M^T)^{-1} = (M^{-1})^T.
  Both("inv-tr",
       {A(vrem::kTr, {Var("M"), Var("R1")}),
        A(vrem::kInvM, {Var("R1"), Var("R2")})},
       {A(vrem::kInvM, {Var("M"), Var("R3")}),
        A(vrem::kTr, {Var("R3"), Var("R2")})},
       out);
  // (k M)^{-1} = k^{-1} M^{-1}.
  out.push_back(
      MakeTgd("inv-scalar",
              {A(vrem::kMultiMS, {Var("k"), Var("M"), Var("R1")}),
               A(vrem::kInvM, {Var("R1"), Var("R2")})},
              {A(vrem::kInvS, {Var("k"), Var("s")}),
               A(vrem::kInvM, {Var("M"), Var("R3")}),
               A(vrem::kMultiMS, {Var("s"), Var("R3"), Var("R2")})}));
  // I^{-1} = I.
  out.push_back(MakeTgd("inv-identity", {A(vrem::kIdentity, {Var("I")})},
                        {A(vrem::kInvM, {Var("I"), Var("I")})}));
  // 1/x involution and the divS(1, x, r) = invS(x, r) bridge.
  out.push_back(MakeTgd("invS-involution",
                        {A(vrem::kInvS, {Var("a"), Var("b")})},
                        {A(vrem::kInvS, {Var("b"), Var("a")})}));
  Both("divS-one-invS",
       {A(vrem::kSconst, {Var("one"), Cst("1")}),
        A(vrem::kDivS, {Var("one"), Var("x"), Var("r")})},
       {A(vrem::kSconst, {Var("one"), Cst("1")}),
        A(vrem::kInvS, {Var("x"), Var("r")})},
       out);

  // ----- Determinant (Table 9) -------------------------------------------------
  // det(M N) = det(M) * det(N).
  Both("det-mul",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kDet, {Var("R1"), Var("d")})},
       {A(vrem::kDet, {Var("M"), Var("d1")}),
        A(vrem::kDet, {Var("N"), Var("d2")}),
        A(vrem::kMultiS, {Var("d1"), Var("d2"), Var("d")})},
       out);
  // det(M^T) = det(M).
  out.push_back(MakeTgd("det-tr",
                        {A(vrem::kTr, {Var("M"), Var("R1")}),
                         A(vrem::kDet, {Var("R1"), Var("d")})},
                        {A(vrem::kDet, {Var("M"), Var("d")})}));
  // det(M^{-1}) = det(M)^{-1}.
  Both("det-inv",
       {A(vrem::kInvM, {Var("M"), Var("R1")}),
        A(vrem::kDet, {Var("R1"), Var("d")})},
       {A(vrem::kDet, {Var("M"), Var("d1")}),
        A(vrem::kInvS, {Var("d1"), Var("d")})},
       out);
  // det(I) = 1.
  out.push_back(MakeEgd("det-identity",
                        {A(vrem::kIdentity, {Var("I")}),
                         A(vrem::kDet, {Var("I"), Var("d")})},
                        {{Var("d"), Cst("1")}}));

  // ----- Adjugate (Table 9) ------------------------------------------------------
  // adj(M)^T = adj(M^T).
  Both("adj-tr",
       {A(vrem::kAdj, {Var("M"), Var("R1")}),
        A(vrem::kTr, {Var("R1"), Var("R2")})},
       {A(vrem::kTr, {Var("M"), Var("R3")}),
        A(vrem::kAdj, {Var("R3"), Var("R2")})},
       out);
  // adj(M)^{-1} = adj(M^{-1}).
  Both("adj-inv",
       {A(vrem::kAdj, {Var("M"), Var("R1")}),
        A(vrem::kInvM, {Var("R1"), Var("R2")})},
       {A(vrem::kInvM, {Var("M"), Var("R3")}),
        A(vrem::kAdj, {Var("R3"), Var("R2")})},
       out);
  // adj(M N) = adj(N) adj(M).
  Both("adj-mul",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kAdj, {Var("R1"), Var("R2")})},
       {A(vrem::kAdj, {Var("N"), Var("R3")}),
        A(vrem::kAdj, {Var("M"), Var("R4")}),
        A(vrem::kMultiM, {Var("R3"), Var("R4"), Var("R2")})},
       out);

  // ----- Trace (Table 9) --------------------------------------------------------
  // trace(M + N) = trace(M) + trace(N).
  Both("trace-add",
       {A(vrem::kAddM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kTrace, {Var("R1"), Var("s1")})},
       {A(vrem::kTrace, {Var("M"), Var("s2")}),
        A(vrem::kTrace, {Var("N"), Var("s3")}),
        A(vrem::kAddS, {Var("s2"), Var("s3"), Var("s1")})},
       out);
  // trace(M N) = trace(N M).
  out.push_back(
      MakeTgd("trace-cyclic",
              {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
               A(vrem::kTrace, {Var("R1"), Var("s")})},
              {A(vrem::kMultiM, {Var("N"), Var("M"), Var("R2")}),
               A(vrem::kTrace, {Var("R2"), Var("s")})}));
  // trace(M^T) = trace(M).
  out.push_back(MakeTgd("trace-tr",
                        {A(vrem::kTr, {Var("M"), Var("R1")}),
                         A(vrem::kTrace, {Var("R1"), Var("s")})},
                        {A(vrem::kTrace, {Var("M"), Var("s")})}));
  // trace(c M) = c trace(M).
  Both("trace-scalar",
       {A(vrem::kMultiMS, {Var("c"), Var("M"), Var("R1")}),
        A(vrem::kTrace, {Var("R1"), Var("s1")})},
       {A(vrem::kTrace, {Var("M"), Var("s2")}),
        A(vrem::kMultiS, {Var("c"), Var("s2"), Var("s1")})},
       out);

  // ----- Direct sum (Table 8) -----------------------------------------------------
  // (M ⊕ N) + (C ⊕ D) = (M + C) ⊕ (N + D).
  out.push_back(
      MakeTgd("dsum-add",
              {A(vrem::kSumD, {Var("M"), Var("N"), Var("R1")}),
               A(vrem::kSumD, {Var("C"), Var("D"), Var("R2")}),
               A(vrem::kAddM, {Var("R1"), Var("R2"), Var("R3")})},
              {A(vrem::kAddM, {Var("M"), Var("C"), Var("R4")}),
               A(vrem::kAddM, {Var("N"), Var("D"), Var("R5")}),
               A(vrem::kSumD, {Var("R4"), Var("R5"), Var("R3")})}));
  // (M ⊕ N)(C ⊕ D) = (M C) ⊕ (N D).
  out.push_back(
      MakeTgd("dsum-mul",
              {A(vrem::kSumD, {Var("M"), Var("N"), Var("R1")}),
               A(vrem::kSumD, {Var("C"), Var("D"), Var("R2")}),
               A(vrem::kMultiM, {Var("R1"), Var("R2"), Var("R3")})},
              {A(vrem::kMultiM, {Var("M"), Var("C"), Var("R4")}),
               A(vrem::kMultiM, {Var("N"), Var("D"), Var("R5")}),
               A(vrem::kSumD, {Var("R4"), Var("R5"), Var("R3")})}));

  // ----- Exponential (Table 9) ------------------------------------------------------
  // exp(0) = I.
  out.push_back(MakeTgd("exp-zero",
                        {A(vrem::kZero, {Var("O")}),
                         A(vrem::kExp, {Var("O"), Var("R")})},
                        {A(vrem::kIdentity, {Var("R")})}));
  // exp(M^T) = exp(M)^T.
  Both("exp-tr",
       {A(vrem::kTr, {Var("M"), Var("R1")}),
        A(vrem::kExp, {Var("R1"), Var("R2")})},
       {A(vrem::kExp, {Var("M"), Var("R3")}),
        A(vrem::kTr, {Var("R3"), Var("R2")})},
       out);

  return out;
}

std::vector<Constraint> MmcDecompositions() {
  std::vector<Constraint> out;
  // I_cho (constraint (4), §6.2.5): every SPD matrix M has CHO(M) = L with
  // M = L L^T and L lower-triangular.
  out.push_back(
      MakeTgd("cho-def", {A(vrem::kType, {Var("M"), Cst(vrem::kTypeSpd)})},
              {A(vrem::kCho, {Var("M"), Var("L1")}),
               A(vrem::kType, {Var("L1"), Cst(vrem::kTypeLower)}),
               A(vrem::kTr, {Var("L1"), Var("L2")}),
               A(vrem::kMultiM, {Var("L1"), Var("L2"), Var("M")})}));
  // QR (constraints (6)-(9)): every named square matrix decomposes.
  out.push_back(
      MakeTgd("qr-def",
              {A(vrem::kName, {Var("M"), Var("n")}),
               A(vrem::kSize, {Var("M"), Var("k"), Var("k")})},
              {A(vrem::kQr, {Var("M"), Var("Q"), Var("R")}),
               A(vrem::kType, {Var("Q"), Cst(vrem::kTypeOrthogonal)}),
               A(vrem::kType, {Var("R"), Cst(vrem::kTypeUpper)}),
               A(vrem::kMultiM, {Var("Q"), Var("R"), Var("M")})}));
  out.push_back(
      MakeTgd("qr-orthogonal-fixpoint",
              {A(vrem::kType, {Var("Q"), Cst(vrem::kTypeOrthogonal)})},
              {A(vrem::kQr, {Var("Q"), Var("Q"), Var("I")}),
               A(vrem::kIdentity, {Var("I")}),
               A(vrem::kMultiM, {Var("Q"), Var("I"), Var("Q")})}));
  out.push_back(
      MakeTgd("qr-upper-fixpoint",
              {A(vrem::kType, {Var("R"), Cst(vrem::kTypeUpper)})},
              {A(vrem::kQr, {Var("R"), Var("I"), Var("R")}),
               A(vrem::kIdentity, {Var("I")}),
               A(vrem::kMultiM, {Var("I"), Var("R"), Var("R")})}));
  out.push_back(MakeTgd("qr-identity-fixpoint",
                        {A(vrem::kIdentity, {Var("I")})},
                        {A(vrem::kQr, {Var("I"), Var("I"), Var("I")})}));
  // LU (Table 10).
  out.push_back(
      MakeTgd("lu-def",
              {A(vrem::kName, {Var("M"), Var("n")}),
               A(vrem::kSize, {Var("M"), Var("k"), Var("k")})},
              {A(vrem::kLu, {Var("M"), Var("L"), Var("U")}),
               A(vrem::kType, {Var("L"), Cst(vrem::kTypeLower)}),
               A(vrem::kType, {Var("U"), Cst(vrem::kTypeUpper)}),
               A(vrem::kMultiM, {Var("L"), Var("U"), Var("M")})}));
  out.push_back(
      MakeTgd("lu-lower-fixpoint",
              {A(vrem::kType, {Var("L"), Cst(vrem::kTypeLower)})},
              {A(vrem::kLu, {Var("L"), Var("L"), Var("I")}),
               A(vrem::kIdentity, {Var("I")}),
               A(vrem::kMultiM, {Var("L"), Var("I"), Var("L")})}));
  out.push_back(
      MakeTgd("lu-upper-fixpoint",
              {A(vrem::kType, {Var("U"), Cst(vrem::kTypeUpper)})},
              {A(vrem::kLu, {Var("U"), Var("I"), Var("U")}),
               A(vrem::kIdentity, {Var("I")}),
               A(vrem::kMultiM, {Var("I"), Var("U"), Var("U")})}));
  out.push_back(MakeTgd("lu-identity-fixpoint",
                        {A(vrem::kIdentity, {Var("I")})},
                        {A(vrem::kLu, {Var("I"), Var("I"), Var("I")})}));
  // Pivoted LU (Table 10): P M = L U.
  out.push_back(
      MakeTgd("lup-def",
              {A(vrem::kName, {Var("M"), Var("n")}),
               A(vrem::kSize, {Var("M"), Var("k"), Var("k")})},
              {A(vrem::kLup, {Var("M"), Var("L"), Var("U"), Var("P")}),
               A(vrem::kType, {Var("L"), Cst(vrem::kTypeLower)}),
               A(vrem::kType, {Var("U"), Cst(vrem::kTypeUpper)}),
               A(vrem::kType, {Var("P"), Cst(vrem::kTypePermutation)}),
               A(vrem::kMultiM, {Var("L"), Var("U"), Var("R")}),
               A(vrem::kMultiM, {Var("P"), Var("M"), Var("R")})}));
  out.push_back(
      MakeTgd("lup-lower-fixpoint",
              {A(vrem::kType, {Var("L"), Cst(vrem::kTypeLower)})},
              {A(vrem::kLup, {Var("L"), Var("L"), Var("I"), Var("I")}),
               A(vrem::kIdentity, {Var("I")}),
               A(vrem::kMultiM, {Var("L"), Var("I"), Var("L")}),
               A(vrem::kMultiM, {Var("I"), Var("L"), Var("L")})}));
  out.push_back(
      MakeTgd("lup-upper-fixpoint",
              {A(vrem::kType, {Var("U"), Cst(vrem::kTypeUpper)})},
              {A(vrem::kLup, {Var("U"), Var("I"), Var("U"), Var("I")}),
               A(vrem::kIdentity, {Var("I")}),
               A(vrem::kMultiM, {Var("I"), Var("U"), Var("U")})}));
  return out;
}

std::vector<Constraint> MmcStatAgg() {
  std::vector<Constraint> out;

  // --- UnnecessaryAggregates: agg(shuffle(M)) = agg(M). -----------------
  struct Collapse {
    const char* inner;
    const char* agg;
  };
  for (const Collapse& c : std::initializer_list<Collapse>{
           {vrem::kTr, vrem::kSum},      {vrem::kRev, vrem::kSum},
           {vrem::kRowSums, vrem::kSum}, {vrem::kColSums, vrem::kSum},
           {vrem::kRowMin, vrem::kMin},  {vrem::kColMin, vrem::kMin},
           {vrem::kRowMax, vrem::kMax},  {vrem::kColMax, vrem::kMax},
           {vrem::kTr, vrem::kMean},     {vrem::kRev, vrem::kMean}}) {
    out.push_back(
        MakeTgd(std::string("collapse-") + c.agg + "-" + c.inner,
                {A(c.inner, {Var("M"), Var("R1")}),
                 A(c.agg, {Var("R1"), Var("s")})},
                {A(c.agg, {Var("M"), Var("s")})}));
  }

  // --- pushdownUnaryAggTransposeOp: rowAgg(t(M)) = t(colAgg(M)) etc. ----
  struct TransposeSwap {
    const char* row_op;
    const char* col_op;
  };
  for (const TransposeSwap& s : std::initializer_list<TransposeSwap>{
           {vrem::kRowSums, vrem::kColSums},
           {vrem::kRowMean, vrem::kColMean},
           {vrem::kRowVar, vrem::kColVar},
           {vrem::kRowMax, vrem::kColMax},
           {vrem::kRowMin, vrem::kColMin}}) {
    // rowOp(t(M)) -> t(colOp(M)).
    out.push_back(
        MakeTgd(std::string("tr-push-") + s.row_op,
                {A(vrem::kTr, {Var("M"), Var("R1")}),
                 A(s.row_op, {Var("R1"), Var("R2")})},
                {A(s.col_op, {Var("M"), Var("R3")}),
                 A(vrem::kTr, {Var("R3"), Var("R2")})}));
    // colOp(t(M)) -> t(rowOp(M)).
    out.push_back(
        MakeTgd(std::string("tr-push-") + s.col_op,
                {A(vrem::kTr, {Var("M"), Var("R1")}),
                 A(s.col_op, {Var("R1"), Var("R2")})},
                {A(s.row_op, {Var("M"), Var("R3")}),
                 A(vrem::kTr, {Var("R3"), Var("R2")})}));
  }

  // --- simplifyTraceMatrixMult: trace(MN) = sum(M ⊙ t(N)). ---------------
  out.push_back(
      MakeTgd("trace-mul-sum",
              {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
               A(vrem::kTrace, {Var("R1"), Var("s")})},
              {A(vrem::kTr, {Var("N"), Var("R3")}),
               A(vrem::kMultiE, {Var("M"), Var("R3"), Var("R4")}),
               A(vrem::kSum, {Var("R4"), Var("s")})}));

  // --- simplifySumMatrixMult (rule (i) of §6.2.6 and friends). -----------
  // sum(M N) = sum(t(colSums(M)) ⊙ rowSums(N)).
  out.push_back(
      MakeTgd("sum-mul",
              {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R")}),
               A(vrem::kSum, {Var("R"), Var("s")})},
              {A(vrem::kColSums, {Var("M"), Var("R1")}),
               A(vrem::kTr, {Var("R1"), Var("R2")}),
               A(vrem::kRowSums, {Var("N"), Var("R3")}),
               A(vrem::kMultiE, {Var("R2"), Var("R3"), Var("R4")}),
               A(vrem::kSum, {Var("R4"), Var("s")})}));
  // colSums(M N) = colSums(M) N.
  Both("colSums-mul",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kColSums, {Var("R1"), Var("R2")})},
       {A(vrem::kColSums, {Var("M"), Var("R3")}),
        A(vrem::kMultiM, {Var("R3"), Var("N"), Var("R2")})},
       out);
  // rowSums(M N) = M rowSums(N).
  Both("rowSums-mul",
       {A(vrem::kMultiM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kRowSums, {Var("R1"), Var("R2")})},
       {A(vrem::kRowSums, {Var("N"), Var("R3")}),
        A(vrem::kMultiM, {Var("M"), Var("R3"), Var("R2")})},
       out);

  // --- Row/column vector simplifications (need `size` facts). ------------
  // Row vectors (1 x j): column-wise aggregation is the identity.
  for (const char* op : {vrem::kColSums, vrem::kColMean, vrem::kColMin,
                         vrem::kColMax}) {
    out.push_back(MakeTgd(std::string("rowvec-") + op,
                          {A(vrem::kSize, {Var("M"), Cst("1"), Var("j")})},
                          {A(op, {Var("M"), Var("M")})}));
  }
  // Column vectors (i x 1): row-wise aggregation is the identity.
  for (const char* op : {vrem::kRowSums, vrem::kRowMean, vrem::kRowMin,
                         vrem::kRowMax}) {
    out.push_back(MakeTgd(std::string("colvec-") + op,
                          {A(vrem::kSize, {Var("M"), Var("i"), Cst("1")})},
                          {A(op, {Var("M"), Var("M")})}));
  }
  // Column vectors: colSums collapses to the full aggregate (and duals).
  struct VecCollapse {
    const char* partial;
    const char* full;
    bool col_vector;  // true: i x 1, false: 1 x j.
  };
  for (const VecCollapse& v : std::initializer_list<VecCollapse>{
           {vrem::kColSums, vrem::kSum, true},
           {vrem::kColMean, vrem::kMean, true},
           {vrem::kColMin, vrem::kMin, true},
           {vrem::kColMax, vrem::kMax, true},
           {vrem::kColVar, vrem::kVar, true},
           {vrem::kRowSums, vrem::kSum, false},
           {vrem::kRowMean, vrem::kMean, false},
           {vrem::kRowMin, vrem::kMin, false},
           {vrem::kRowMax, vrem::kMax, false},
           {vrem::kRowVar, vrem::kVar, false}}) {
    std::vector<Atom> premise;
    if (v.col_vector) {
      premise = {A(vrem::kSize, {Var("M"), Var("i"), Cst("1")}),
                 A(v.partial, {Var("M"), Var("R1")})};
    } else {
      premise = {A(vrem::kSize, {Var("M"), Cst("1"), Var("j")}),
                 A(v.partial, {Var("M"), Var("R1")})};
    }
    out.push_back(MakeTgd(std::string("veccollapse-") + v.partial + "-" +
                              (v.col_vector ? "c" : "r"),
                          std::move(premise),
                          {A(v.full, {Var("M"), Var("R1")})}));
  }

  // --- pushdownSumOnAdd: sum(M + N) = sum(M) + sum(N). --------------------
  Both("sum-add",
       {A(vrem::kAddM, {Var("M"), Var("N"), Var("R1")}),
        A(vrem::kSum, {Var("R1"), Var("s1")})},
       {A(vrem::kSum, {Var("M"), Var("s2")}),
        A(vrem::kSum, {Var("N"), Var("s3")}),
        A(vrem::kAddS, {Var("s2"), Var("s3"), Var("s1")})},
       out);
  // sum(c ⊙ M) = c * sum(M) (scalar pulled out of a full aggregate).
  Both("sum-scalar",
       {A(vrem::kMultiMS, {Var("c"), Var("M"), Var("R1")}),
        A(vrem::kSum, {Var("R1"), Var("s1")})},
       {A(vrem::kSum, {Var("M"), Var("s2")}),
        A(vrem::kMultiS, {Var("c"), Var("s2"), Var("s1")})},
       out);

  // --- ColSumsMVMult. -------------------------------------------------------
  // colSums(M ⊙ N) = t(M) N when N is a column vector.
  out.push_back(
      MakeTgd("colSums-hadamard-vector",
              {A(vrem::kSize, {Var("N"), Var("i"), Cst("1")}),
               A(vrem::kMultiE, {Var("M"), Var("N"), Var("R1")}),
               A(vrem::kColSums, {Var("R1"), Var("R2")})},
              {A(vrem::kTr, {Var("M"), Var("R3")}),
               A(vrem::kMultiM, {Var("R3"), Var("N"), Var("R2")})}));
  // rowSums(M ⊙ N) = M t(N) when N is a row vector.
  out.push_back(
      MakeTgd("rowSums-hadamard-vector",
              {A(vrem::kSize, {Var("N"), Cst("1"), Var("j")}),
               A(vrem::kMultiE, {Var("M"), Var("N"), Var("R1")}),
               A(vrem::kRowSums, {Var("R1"), Var("R2")})},
              {A(vrem::kTr, {Var("N"), Var("R3")}),
               A(vrem::kMultiM, {Var("M"), Var("R3"), Var("R2")})}));

  return out;
}

std::vector<Constraint> MorpheusRules() {
  std::vector<Constraint> out;
  // M = [T | K U] (PK-FK join output). Morpheus's factorized rewrite rules
  // (Chen et al. [27]), §9.2's footnote 4.
  // rowSums(M) = rowSums(T) + K rowSums(U).
  Both("morpheus-rowSums",
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kRowSums, {Var("M"), Var("R")})},
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kRowSums, {Var("T"), Var("R1")}),
        A(vrem::kRowSums, {Var("U"), Var("R2")}),
        A(vrem::kMultiM, {Var("K"), Var("R2"), Var("R3")}),
        A(vrem::kAddM, {Var("R1"), Var("R3"), Var("R")})},
       out);
  // colSums(M) = [colSums(T) | colSums(K) U].
  Both("morpheus-colSums",
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kColSums, {Var("M"), Var("R")})},
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kColSums, {Var("T"), Var("R1")}),
        A(vrem::kColSums, {Var("K"), Var("R2")}),
        A(vrem::kMultiM, {Var("R2"), Var("U"), Var("R3")}),
        A(vrem::kCbind, {Var("R1"), Var("R3"), Var("R")})},
       out);
  // C M = [C T | (C K) U].
  Both("morpheus-leftmul",
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kMultiM, {Var("C"), Var("M"), Var("R")})},
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kMultiM, {Var("C"), Var("T"), Var("R1")}),
        A(vrem::kMultiM, {Var("C"), Var("K"), Var("R2")}),
        A(vrem::kMultiM, {Var("R2"), Var("U"), Var("R3")}),
        A(vrem::kCbind, {Var("R1"), Var("R3"), Var("R")})},
       out);
  // sum(M) = sum(T) + sum(colSums(K) U).
  Both("morpheus-sum",
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kSum, {Var("M"), Var("s")})},
       {A(vrem::kMorpheusJoin, {Var("T"), Var("K"), Var("U"), Var("M")}),
        A(vrem::kSum, {Var("T"), Var("s1")}),
        A(vrem::kColSums, {Var("K"), Var("R1")}),
        A(vrem::kMultiM, {Var("R1"), Var("U"), Var("R2")}),
        A(vrem::kSum, {Var("R2"), Var("s2")}),
        A(vrem::kAddS, {Var("s1"), Var("s2"), Var("s")})},
       out);
  return out;
}

std::vector<Constraint> BuildMmc(const CatalogOptions& options) {
  std::vector<Constraint> out = MmcCoreKeys();
  auto append = [&out](std::vector<Constraint> more) {
    for (Constraint& c : more) out.push_back(std::move(c));
  };
  append(MmcFunctionalKeys());
  append(MmcLaProperties());
  if (options.decompositions) append(MmcDecompositions());
  if (options.stat_agg) append(MmcStatAgg());
  if (options.morpheus) append(MorpheusRules());
  return out;
}

Result<std::vector<Constraint>> EncodeViewConstraints(
    const std::string& name, const Expr& definition,
    const MetaCatalog& catalog) {
  HADAD_ASSIGN_OR_RETURN(EncodedExpr enc, EncodeExpression(definition, catalog));
  // V_IO: body pattern → the root class carries the view's name.
  std::vector<Atom> body = enc.query.body;
  std::vector<Atom> head = {
      MakeAtom(vrem::kName, {Var(enc.root_var), Cst(name)})};
  std::vector<Constraint> out;
  out.push_back(MakeTgd("view-io:" + name, body, head));
  // V_OI: a class named like the view exhibits the definition's pattern
  // (inner classes existential).
  out.push_back(MakeTgd("view-oi:" + name, std::move(head), std::move(body)));
  return out;
}

}  // namespace hadad::la
