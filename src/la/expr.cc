#include "la/expr.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace hadad::la {

const char* OpName(OpKind kind) {
  switch (kind) {
    case OpKind::kMatrixRef: return "ref";
    case OpKind::kScalarConst: return "const";
    case OpKind::kTranspose: return "t";
    case OpKind::kInverse: return "inv";
    case OpKind::kDet: return "det";
    case OpKind::kTrace: return "trace";
    case OpKind::kDiag: return "diag";
    case OpKind::kExp: return "exp";
    case OpKind::kAdjoint: return "adj";
    case OpKind::kRev: return "rev";
    case OpKind::kSum: return "sum";
    case OpKind::kRowSums: return "rowSums";
    case OpKind::kColSums: return "colSums";
    case OpKind::kMin: return "min";
    case OpKind::kMax: return "max";
    case OpKind::kMean: return "mean";
    case OpKind::kVar: return "var";
    case OpKind::kRowMins: return "rowMins";
    case OpKind::kRowMaxs: return "rowMaxs";
    case OpKind::kRowMeans: return "rowMeans";
    case OpKind::kRowVars: return "rowVars";
    case OpKind::kColMins: return "colMins";
    case OpKind::kColMaxs: return "colMaxs";
    case OpKind::kColMeans: return "colMeans";
    case OpKind::kColVars: return "colVars";
    case OpKind::kCholesky: return "cho";
    case OpKind::kQrQ: return "qr_q";
    case OpKind::kQrR: return "qr_r";
    case OpKind::kLuL: return "lu_l";
    case OpKind::kLuU: return "lu_u";
    case OpKind::kPluL: return "lup_l";
    case OpKind::kPluU: return "lup_u";
    case OpKind::kPluP: return "lup_p";
    case OpKind::kMultiply: return "%*%";
    case OpKind::kAdd: return "+";
    case OpKind::kHadamard: return "*";
    case OpKind::kDivide: return "/";
    case OpKind::kDirectSum: return "dsum";
    case OpKind::kKronecker: return "kron";
    case OpKind::kCbind: return "cbind";
  }
  return "?";
}

int Arity(OpKind kind) {
  switch (kind) {
    case OpKind::kMatrixRef:
    case OpKind::kScalarConst:
      return 0;
    case OpKind::kMultiply:
    case OpKind::kAdd:
    case OpKind::kHadamard:
    case OpKind::kDivide:
    case OpKind::kDirectSum:
    case OpKind::kKronecker:
    case OpKind::kCbind:
      return 2;
    default:
      return 1;
  }
}

ExprPtr Expr::MatrixRef(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = OpKind::kMatrixRef;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Scalar(double value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = OpKind::kScalarConst;
  e->scalar_value_ = value;
  return e;
}

ExprPtr Expr::Unary(OpKind kind, ExprPtr child) {
  HADAD_CHECK_EQ(Arity(kind), 1);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->children_.push_back(std::move(child));
  return e;
}

ExprPtr Expr::Binary(OpKind kind, ExprPtr lhs, ExprPtr rhs) {
  HADAD_CHECK_EQ(Arity(kind), 2);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->children_.push_back(std::move(lhs));
  e->children_.push_back(std::move(rhs));
  return e;
}

int64_t Expr::TreeSize() const {
  int64_t size = 1;
  for (const ExprPtr& c : children_) size += c->TreeSize();
  return size;
}

void CollectMatrixRefs(const Expr& expr, std::set<std::string>* out) {
  if (expr.kind() == OpKind::kMatrixRef) {
    out->insert(expr.name());
    return;
  }
  for (const ExprPtr& c : expr.children()) CollectMatrixRefs(*c, out);
}

bool ReferencesMatrix(const Expr& expr, const std::string& name) {
  if (expr.kind() == OpKind::kMatrixRef) return expr.name() == name;
  for (const ExprPtr& c : expr.children()) {
    if (ReferencesMatrix(*c, name)) return true;
  }
  return false;
}

bool IsElementwiseFusableKind(OpKind kind) {
  return kind == OpKind::kAdd || kind == OpKind::kHadamard ||
         kind == OpKind::kMultiply;
}

ElemProgram FlattenElementwise(
    const Expr& root, const std::function<int32_t(const Expr&)>& classify) {
  ElemProgram program;
  int32_t depth = 0;
  const std::function<void(const Expr&, bool)> walk = [&](const Expr& e,
                                                          bool is_root) {
    if (e.kind() == OpKind::kScalarConst) {
      ElemStep step;
      step.kind = ElemStep::Kind::kPushConst;
      step.value = e.scalar_value();
      program.steps.push_back(step);
      program.max_stack = std::max(program.max_stack, ++depth);
      return;
    }
    const int32_t slot = is_root ? -1 : classify(e);
    if (slot >= 0) {
      ElemStep step;
      step.kind = ElemStep::Kind::kPushInput;
      step.input = slot;
      program.steps.push_back(step);
      program.input_count = std::max(program.input_count, slot + 1);
      program.max_stack = std::max(program.max_stack, ++depth);
      return;
    }
    HADAD_CHECK_MSG(IsElementwiseFusableKind(e.kind()) &&
                        e.children().size() == 2,
                    "FlattenElementwise: interior node is not a binary "
                    "elementwise operator");
    walk(*e.child(0), false);
    walk(*e.child(1), false);
    ElemStep step;
    step.kind = ElemStep::Kind::kApply;
    step.op = e.kind();
    program.steps.push_back(step);
    ++program.fused_ops;
    --depth;  // Two operands popped, one result pushed.
  };
  walk(root, true);
  return program;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  if (kind_ == OpKind::kMatrixRef) return name_ == other.name_;
  if (kind_ == OpKind::kScalarConst) {
    return scalar_value_ == other.scalar_value_;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

namespace {

// Infix binding strengths, mirroring R: %*% binds tighter than * and /,
// which bind tighter than + .
int Precedence(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return 1;
    case OpKind::kHadamard:
    case OpKind::kDivide: return 2;
    case OpKind::kMultiply: return 3;
    default: return 4;
  }
}

bool IsInfix(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd:
    case OpKind::kHadamard:
    case OpKind::kDivide:
    case OpKind::kMultiply:
      return true;
    default:
      return false;
  }
}

void Render(const Expr& e, int parent_prec, std::string& out) {
  switch (e.kind()) {
    case OpKind::kMatrixRef:
      out += e.name();
      return;
    case OpKind::kScalarConst: {
      std::ostringstream ss;
      ss << e.scalar_value();
      out += ss.str();
      return;
    }
    default:
      break;
  }
  if (IsInfix(e.kind())) {
    const int prec = Precedence(e.kind());
    const bool parens = prec < parent_prec;
    if (parens) out += '(';
    Render(*e.child(0), prec, out);
    out += ' ';
    out += OpName(e.kind());
    out += ' ';
    // Left-associative: the right child needs parens at equal precedence.
    Render(*e.child(1), prec + 1, out);
    if (parens) out += ')';
    return;
  }
  out += OpName(e.kind());
  out += '(';
  for (size_t i = 0; i < e.children().size(); ++i) {
    if (i > 0) out += ", ";
    Render(*e.children()[i], 0, out);
  }
  out += ')';
}

}  // namespace

std::string ToString(const Expr& expr) {
  std::string out;
  Render(expr, 0, out);
  return out;
}

std::string ToString(const ExprPtr& expr) { return ToString(*expr); }

namespace {

Status ShapeError(const Expr& e, const std::string& detail) {
  return Status::DimensionMismatch(detail + " in " + ToString(e));
}

}  // namespace

Result<MatrixMeta> InferShape(const Expr& expr, const MetaCatalog& catalog) {
  switch (expr.kind()) {
    case OpKind::kMatrixRef: {
      auto it = catalog.find(expr.name());
      if (it == catalog.end()) {
        return Status::NotFound("unknown matrix '" + expr.name() + "'");
      }
      return it->second;
    }
    case OpKind::kScalarConst: {
      MatrixMeta m;
      m.rows = 1;
      m.cols = 1;
      m.nnz = expr.scalar_value() == 0.0 ? 0.0 : 1.0;
      return m;
    }
    default:
      break;
  }
  std::vector<MatrixMeta> kids;
  kids.reserve(expr.children().size());
  for (const ExprPtr& c : expr.children()) {
    HADAD_ASSIGN_OR_RETURN(MatrixMeta m, InferShape(*c, catalog));
    kids.push_back(m);
  }
  MatrixMeta out;
  auto scalar = [] {
    MatrixMeta m;
    m.rows = 1;
    m.cols = 1;
    m.nnz = 1;
    return m;
  };
  switch (expr.kind()) {
    case OpKind::kTranspose:
    case OpKind::kRev:
      out = kids[0];
      if (expr.kind() == OpKind::kTranspose) {
        std::swap(out.rows, out.cols);
        std::swap(out.lower_triangular, out.upper_triangular);
      }
      return out;
    case OpKind::kInverse:
    case OpKind::kExp:
    case OpKind::kAdjoint:
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "square matrix required");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols;
      return out;
    case OpKind::kCholesky:
    case OpKind::kLuL:
    case OpKind::kPluL:
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "square matrix required");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols;
      out.lower_triangular = true;
      return out;
    case OpKind::kQrR:
    case OpKind::kLuU:
    case OpKind::kPluU:
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "square matrix required");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols;
      out.upper_triangular = true;
      return out;
    case OpKind::kQrQ:
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "square matrix required");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols;
      out.orthogonal = true;
      return out;
    case OpKind::kPluP:
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "square matrix required");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols;
      out.permutation = true;
      out.orthogonal = true;  // Permutation matrices are orthogonal.
      out.nnz = static_cast<double>(kids[0].rows);
      return out;
    case OpKind::kDet:
    case OpKind::kTrace:
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "square matrix required");
      }
      return scalar();
    case OpKind::kSum:
    case OpKind::kMin:
    case OpKind::kMax:
    case OpKind::kMean:
    case OpKind::kVar:
      return scalar();
    case OpKind::kDiag:
      if (kids[0].cols == 1 && kids[0].rows > 1) {
        out.rows = kids[0].rows;
        out.cols = kids[0].rows;
        return out;
      }
      if (kids[0].rows != kids[0].cols) {
        return ShapeError(expr, "diag requires a square matrix or vector");
      }
      out.rows = kids[0].rows;
      out.cols = 1;
      return out;
    case OpKind::kRowSums:
    case OpKind::kRowMins:
    case OpKind::kRowMaxs:
    case OpKind::kRowMeans:
    case OpKind::kRowVars:
      out.rows = kids[0].rows;
      out.cols = 1;
      return out;
    case OpKind::kColSums:
    case OpKind::kColMins:
    case OpKind::kColMaxs:
    case OpKind::kColMeans:
    case OpKind::kColVars:
      out.rows = 1;
      out.cols = kids[0].cols;
      return out;
    case OpKind::kMultiply:
      // Scalar operands broadcast.
      if (kids[0].rows == 1 && kids[0].cols == 1) return kids[1];
      if (kids[1].rows == 1 && kids[1].cols == 1) return kids[0];
      if (kids[0].cols != kids[1].rows) {
        return ShapeError(expr, "inner dimensions disagree");
      }
      out.rows = kids[0].rows;
      out.cols = kids[1].cols;
      return out;
    case OpKind::kAdd:
    case OpKind::kHadamard:
    case OpKind::kDivide:
      if (kids[0].rows == 1 && kids[0].cols == 1 &&
          expr.kind() != OpKind::kAdd) {
        return kids[1];
      }
      if (kids[1].rows == 1 && kids[1].cols == 1 &&
          expr.kind() != OpKind::kAdd) {
        return kids[0];
      }
      if (kids[0].rows != kids[1].rows || kids[0].cols != kids[1].cols) {
        return ShapeError(expr, "element-wise shapes disagree");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols;
      return out;
    case OpKind::kDirectSum:
      out.rows = kids[0].rows + kids[1].rows;
      out.cols = kids[0].cols + kids[1].cols;
      return out;
    case OpKind::kKronecker:
      out.rows = kids[0].rows * kids[1].rows;
      out.cols = kids[0].cols * kids[1].cols;
      return out;
    case OpKind::kCbind:
      if (kids[0].rows != kids[1].rows) {
        return ShapeError(expr, "cbind row counts disagree");
      }
      out.rows = kids[0].rows;
      out.cols = kids[0].cols + kids[1].cols;
      return out;
    default:
      return Status::Internal("unhandled op in InferShape");
  }
}

}  // namespace hadad::la
