#ifndef HADAD_LA_EXPR_H_
#define HADAD_LA_EXPR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace hadad::la {

// Operator kinds of the hybrid language's LA fragment (𝐿𝑜𝑝𝑠, §6.1), plus
// the aggregate/statistical operators needed by the SystemML rewrite rules
// (Appendix B) and the factor operators of the matrix decompositions
// (§6.2.5). Scalars are 1x1 matrices (§3), so scalar-valued operators
// (det, trace, sum, ...) produce 1x1 results and scalar arithmetic reuses
// kAdd / kMultiply.
enum class OpKind {
  // Leaves.
  kMatrixRef,    // A named base matrix or materialized view.
  kScalarConst,  // A numeric literal (1x1).

  // Unary.
  kTranspose,
  kInverse,
  kDet,
  kTrace,
  kDiag,
  kExp,
  kAdjoint,
  kRev,
  kSum,
  kRowSums,
  kColSums,
  kMin,
  kMax,
  kMean,
  kVar,
  kRowMins,
  kRowMaxs,
  kRowMeans,
  kRowVars,
  kColMins,
  kColMaxs,
  kColMeans,
  kColVars,
  kCholesky,  // The L factor of CHO(M) = L L^T.
  kQrQ,       // The Q factor of QR(M).
  kQrR,       // The R factor of QR(M).
  kLuL,       // The L factor of LU(M).
  kLuU,       // The U factor of LU(M).
  kPluL,      // The L factor of LUP(M): P M = L U.
  kPluU,      // The U factor of LUP(M).
  kPluP,      // The permutation factor of LUP(M).

  // Binary.
  kMultiply,   // Matrix product; scalar*matrix when either side is 1x1.
  kAdd,        // Element-wise sum (scalar sum on 1x1).
  kHadamard,   // Element-wise product.
  kDivide,     // Element-wise division.
  kDirectSum,  // Block diagonal (⊕).
  kKronecker,  // Direct product (⊗).
  kCbind,      // Horizontal concatenation (Morpheus factorized results).
};

const char* OpName(OpKind kind);
int Arity(OpKind kind);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// An immutable LA expression tree. Subexpressions are shared freely
// (value semantics via shared_ptr-to-const).
class Expr {
 public:
  static ExprPtr MatrixRef(std::string name);
  static ExprPtr Scalar(double value);
  static ExprPtr Unary(OpKind kind, ExprPtr child);
  static ExprPtr Binary(OpKind kind, ExprPtr lhs, ExprPtr rhs);

  OpKind kind() const { return kind_; }
  const std::string& name() const { return name_; }
  double scalar_value() const { return scalar_value_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(int i) const {
    return children_[static_cast<size_t>(i)];
  }

  bool is_leaf() const {
    return kind_ == OpKind::kMatrixRef || kind_ == OpKind::kScalarConst;
  }

  // Number of nodes in the tree.
  int64_t TreeSize() const;

  // Structural equality.
  bool Equals(const Expr& other) const;

 private:
  Expr() = default;

  OpKind kind_ = OpKind::kMatrixRef;
  std::string name_;
  double scalar_value_ = 0.0;
  std::vector<ExprPtr> children_;
};

// R-like rendering, e.g. "t(M %*% N)", "colSums(M) %*% N". Round-trips
// through ParseExpression.
std::string ToString(const Expr& expr);
std::string ToString(const ExprPtr& expr);

// Inserts every matrix name `expr` scans into `out` (the expression's leaf
// dependency set — what plan invalidation and view maintenance key on).
void CollectMatrixRefs(const Expr& expr, std::set<std::string>* out);
// True when `expr` scans `name` anywhere in its tree.
bool ReferencesMatrix(const Expr& expr, const std::string& name);

// ---------------------------------------------------------------------------
// Flat elementwise op-programs (operator fusion).
// ---------------------------------------------------------------------------
// A maximal same-shape subtree of elementwise operators (add, hadamard,
// scalar-multiply) can be evaluated in one pass over the output cells
// instead of one materialized intermediate per operator. FlattenElementwise
// turns such a subtree into a small postorder stack program; the exec plan
// compiler decides where the subtree's frontier is (CSE-shared nodes and
// adaptive-view candidate roots stay materialized) and the runtime
// interprets the program per row block (src/matrix/blocked_kernels.h).

// One step of the stack program. Evaluation is strictly postorder
// left-to-right, so per-element results are bit-identical to applying the
// original operators one at a time.
struct ElemStep {
  enum class Kind {
    kPushInput,  // Push program input `input` (broadcast when it is 1x1).
    kPushConst,  // Push the literal `value`.
    kApply,      // Pop rhs then lhs, push `op`(lhs, rhs).
  };
  Kind kind = Kind::kPushInput;
  int32_t input = 0;         // kPushInput: program-input ordinal.
  double value = 0.0;        // kPushConst: the literal.
  OpKind op = OpKind::kAdd;  // kApply: kAdd, kHadamard, or kMultiply.
};

struct ElemProgram {
  std::vector<ElemStep> steps;
  int32_t input_count = 0;  // Distinct kPushInput slots (max ordinal + 1).
  int32_t max_stack = 0;    // Peak operand-stack depth during evaluation.
  int64_t fused_ops = 0;    // kApply steps: operator applications fused in.
};

// True for operator kinds whose per-element semantics the fused interpreter
// reproduces exactly: kAdd (same-shape sum), kHadamard (element product or
// scalar broadcast), and kMultiply in its scalar-times-matrix form. Whether
// a *specific* node qualifies additionally depends on operand shapes (a
// non-scalar kMultiply is a matrix product) — the plan compiler checks that.
bool IsElementwiseFusableKind(OpKind kind);

// Flattens the elementwise subtree at `root` into a postorder stack
// program. `classify(e)` returns a program-input slot (>= 0) to stop
// recursion and push that input, or a negative value to recurse into `e` as
// an interior operator; it is never consulted for `root` (always interior)
// or for scalar constants (always embedded as kPushConst). The caller
// guarantees every interior node is a binary operator satisfying
// IsElementwiseFusableKind and assigns slot ordinals contiguously from 0.
ElemProgram FlattenElementwise(
    const Expr& root, const std::function<int32_t(const Expr&)>& classify);

// ---------------------------------------------------------------------------
// Shape metadata and type flags (the `size` and `type` relations of §6.2).
// ---------------------------------------------------------------------------

struct MatrixMeta {
  int64_t rows = 0;
  int64_t cols = 0;
  // Estimated (or exact, for base matrices) non-zero count. Negative means
  // "unknown": treated as fully dense.
  double nnz = -1.0;
  // Structural type tags used by the decomposition constraints (§6.2.5):
  // "S" symmetric positive definite, "L"/"U" triangular, "O" orthogonal.
  bool symmetric_pd = false;
  bool lower_triangular = false;
  bool upper_triangular = false;
  bool orthogonal = false;
  bool permutation = false;

  double Cells() const {
    return static_cast<double>(rows) * static_cast<double>(cols);
  }
  double NnzOrDense() const { return nnz < 0 ? Cells() : nnz; }
  double Sparsity() const {
    return Cells() == 0 ? 0.0 : NnzOrDense() / Cells();
  }
};

// Base-matrix metadata by name; what the paper reads from the "metadata
// file" (§7.2.1).
using MetaCatalog = std::map<std::string, MatrixMeta>;

// Infers the output shape of `expr` given base-matrix metadata, validating
// operator/operand compatibility (dimension mismatches, unknown names, and
// non-square inputs to square-only operators are errors). Only shape is
// inferred here; sparsity estimation lives in hadad::cost.
Result<MatrixMeta> InferShape(const Expr& expr, const MetaCatalog& catalog);

}  // namespace hadad::la

#endif  // HADAD_LA_EXPR_H_
