#ifndef HADAD_LA_VREM_H_
#define HADAD_LA_VREM_H_

namespace hadad::la::vrem {

// Virtual Relational Encoding of Matrices — the relation names of Table 1
// plus the decomposition relations (§6.2.5), scalar-arithmetic relations and
// the Morpheus join relation used by the hybrid benchmarks (§9.2).
//
// Conventions: the last argument is the output equivalence-class ID unless
// noted; `s` arguments are scalar classes; constants are strings.

// --- Base facts -----------------------------------------------------------
inline constexpr char kName[] = "name";          // name(M, "logical-name")
inline constexpr char kSize[] = "size";          // size(M, "rows", "cols")
inline constexpr char kType[] = "type";          // type(M, "S"|"L"|"U"|"O")
inline constexpr char kSconst[] = "sconst";      // sconst(s, "3.5")
inline constexpr char kZero[] = "zero";          // zero(O)
inline constexpr char kIdentity[] = "identity";  // identity(I)

// --- Matrix operators (Table 1) --------------------------------------------
inline constexpr char kMultiM[] = "multiM";    // multiM(M, N, R)
inline constexpr char kMultiMS[] = "multiMS";  // multiMS(s, M, R)
inline constexpr char kMultiE[] = "multiE";    // Hadamard product
inline constexpr char kAddM[] = "addM";
inline constexpr char kDivM[] = "divM";
inline constexpr char kDivMS[] = "divMS";      // divMS(M, s, R) = M / s
inline constexpr char kTr[] = "tr";            // transposition
inline constexpr char kInvM[] = "invM";
inline constexpr char kDet[] = "det";          // det(M, s)
inline constexpr char kTrace[] = "trace";      // trace(M, s)
inline constexpr char kDiag[] = "diag";
inline constexpr char kExp[] = "exp";
inline constexpr char kAdj[] = "adj";
inline constexpr char kSumD[] = "sumD";        // direct sum
inline constexpr char kProductD[] = "productD";  // Kronecker
inline constexpr char kRev[] = "rev";
inline constexpr char kCbind[] = "cbind";      // cbind(A, B, R)

// --- Aggregations (Table 1 + SystemML rule vocabulary, Appendix B) ---------
inline constexpr char kSum[] = "sum";          // sum(M, s)
inline constexpr char kRowSums[] = "rowSums";
inline constexpr char kColSums[] = "colSums";
inline constexpr char kMin[] = "minA";         // minA(M, s)
inline constexpr char kMax[] = "maxA";
inline constexpr char kMean[] = "meanA";
inline constexpr char kVar[] = "varA";
inline constexpr char kRowMin[] = "rowMin";
inline constexpr char kRowMax[] = "rowMax";
inline constexpr char kRowMean[] = "rowMean";
inline constexpr char kRowVar[] = "rowVar";
inline constexpr char kColMin[] = "colMin";
inline constexpr char kColMax[] = "colMax";
inline constexpr char kColMean[] = "colMean";
inline constexpr char kColVar[] = "colVar";

// --- Decompositions (§6.2.5) ------------------------------------------------
inline constexpr char kCho[] = "cho";  // cho(M, L)
inline constexpr char kQr[] = "qr";    // qr(M, Q, R)
inline constexpr char kLu[] = "lu";    // lu(M, L, U)
inline constexpr char kLup[] = "lup";  // lup(M, L, U, P): P M = L U

// --- Scalar arithmetic -------------------------------------------------------
inline constexpr char kMultiS[] = "multiS";  // multiS(a, b, c)
inline constexpr char kAddS[] = "addS";
inline constexpr char kInvS[] = "invS";      // invS(a, b): b = 1/a
inline constexpr char kDivS[] = "divS";

// --- Morpheus normalized-matrix join (§9.2) ---------------------------------
// morpheusJoin(T, K, U, M): M is the PK-FK join of tables T and U cast as a
// matrix, M = [T | K U], with K the indicator matrix.
inline constexpr char kMorpheusJoin[] = "morpheusJoin";

// Type-tag constants used in `type` facts (§6.2.5).
inline constexpr char kTypeSpd[] = "S";
inline constexpr char kTypeLower[] = "L";
inline constexpr char kTypeUpper[] = "U";
inline constexpr char kTypeOrthogonal[] = "O";
inline constexpr char kTypePermutation[] = "P";

}  // namespace hadad::la::vrem

#endif  // HADAD_LA_VREM_H_
