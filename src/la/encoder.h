#ifndef HADAD_LA_ENCODER_H_
#define HADAD_LA_ENCODER_H_

#include <map>
#include <string>

#include "chase/ast.h"
#include "common/status.h"
#include "la/expr.h"

namespace hadad::la {

// The relational encoding enc_LA(E) of an LA expression (§6.2.2): a
// conjunctive query over the VREM schema whose single head variable denotes
// the equivalence class of E's value. Structurally identical subexpressions
// share one variable (the chase's functional EGDs would merge them anyway).
struct EncodedExpr {
  chase::ConjunctiveQuery query;
  std::string root_var;
  // Shape/type metadata per encoding variable, inferred during encoding —
  // used by PACB++ to seed the cost model with `size`/`type` facts.
  std::map<std::string, MatrixMeta> var_meta;
};

// Encodes `expr`. The catalog supplies base-matrix shapes (needed to decide
// whether an operator instance is scalar or matrix flavored, e.g. multiS vs
// multiMS vs multiM) and to validate the expression.
Result<EncodedExpr> EncodeExpression(const Expr& expr,
                                     const MetaCatalog& catalog);

// Renders a scalar constant canonically for `sconst` facts (and parses back
// in the decoder).
std::string FormatScalar(double v);

}  // namespace hadad::la

#endif  // HADAD_LA_ENCODER_H_
