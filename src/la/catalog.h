#ifndef HADAD_LA_CATALOG_H_
#define HADAD_LA_CATALOG_H_

#include <string>
#include <vector>

#include "chase/ast.h"
#include "common/status.h"
#include "la/expr.h"

namespace hadad::la {

// The MMC constraint families of §6.2. Constraints are *data*: extending
// HADAD's semantic knowledge of an operator means appending constraints
// here (or passing extra ones to the optimizer) — no engine changes.

// MMC_m: naming/dimension key dependencies (I_name, I_size, I_zero, I_iden,
// plus scalar-literal interning).
std::vector<chase::Constraint> MmcCoreKeys();

// Functionality EGDs: every VREM operation relation is a function of its
// inputs (I_multiM and friends, §6.2.3).
std::vector<chase::Constraint> MmcFunctionalKeys();

// MMC_LAprop: the textbook LA properties of Appendix A (Tables 8 and 9).
// Equality-shaped properties are emitted in both rewrite directions.
std::vector<chase::Constraint> MmcLaProperties();

// Matrix-decomposition properties of §6.2.5 / Table 10 (Cholesky, QR, LU
// definitions and fixed points).
std::vector<chase::Constraint> MmcDecompositions();

// MMC_StatAgg: SystemML's algebraic aggregate rewrite rules, Appendix B
// (Table 11). Deviation from the paper's table: the `colVar(M)->M` /
// `rowVar(M)->M` row-/column-vector rules are omitted because they do not
// hold under sample-variance semantics (var of a single cell is 0, not the
// cell); see DESIGN.md.
std::vector<chase::Constraint> MmcStatAgg();

// Morpheus's factorized-learning rewrite rules over the normalized matrix
// M = [T | K U], encoded as constraints over the morpheusJoin relation
// (§9.2.2: "we incorporated them in our framework as a set of integrity
// constraints").
std::vector<chase::Constraint> MorpheusRules();

struct CatalogOptions {
  bool stat_agg = true;
  bool decompositions = true;
  bool morpheus = true;
};

// The full MMC = MMC_m ∪ functional keys ∪ MMC_LAprop [∪ decompositions]
// [∪ MMC_StatAgg] [∪ Morpheus].
std::vector<chase::Constraint> BuildMmc(const CatalogOptions& options = {});

// enc_LA(V) (§6.2.4): the constraint pair for a materialized view `name`
// defined by `definition`. V_IO maps the definition's body pattern to a
// name(root, name) fact ("the view can answer this class"); V_OI expands a
// name(root, name) fact into the definition's pattern with existential
// inner classes.
Result<std::vector<chase::Constraint>> EncodeViewConstraints(
    const std::string& name, const Expr& definition,
    const MetaCatalog& catalog);

}  // namespace hadad::la

#endif  // HADAD_LA_CATALOG_H_
