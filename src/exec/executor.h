#ifndef HADAD_EXEC_EXECUTOR_H_
#define HADAD_EXEC_EXECUTOR_H_

#include <memory>
#include <set>
#include <string>

#include "common/status.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "exec/cancel.h"
#include "exec/plan.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "la/expr.h"
#include "matrix/blocked_kernels.h"
#include "matrix/matrix.h"

namespace hadad::exec {

// The parallel physical engine's front door: owns one ThreadPool across
// runs (spawning threads per query would dominate small pipelines) and
// compiles + schedules each expression. Thread-safe: concurrent Run()s
// share the pool.
//
//   exec::Executor executor(engine::ExecOptions{.threads = 8});
//   auto result = executor.Run(expr, workspace, &stats);
class Executor {
 public:
  explicit Executor(const engine::ExecOptions& options = {});

  // The resolved degree of parallelism (>= 1). Thread-safe (immutable).
  int threads() const { return pool_->threads(); }
  // The options this executor was built with. Thread-safe (immutable).
  const engine::ExecOptions& options() const { return options_; }

  // Compile (CSE + kernel selection + operator fusion) and execute over
  // `workspace`. `catalog`, when non-null, supplies leaf metadata without
  // rescanning the workspace (api::Session passes its maintained leaf
  // catalog). `fusion_barriers`, when non-null, names canonical forms the
  // fusion pass must keep materialized (adaptive-view candidate roots); it
  // only needs to outlive this call. Thread-safe: concurrent Run()s share
  // the pool; the caller must ensure `workspace` does not mutate mid-call.
  Result<matrix::Matrix> Run(
      const la::ExprPtr& expr, engine::WorkspaceView workspace,
      engine::ExecStats* stats = nullptr,
      const la::MetaCatalog* catalog = nullptr,
      const std::set<std::string>* fusion_barriers = nullptr) const;

  // The physical plan Run() would execute; exposed for tests, Explain, and
  // api::Session's per-plan DAG cache. Thread-safe (pure function of its
  // arguments plus the frozen compile options).
  Result<CompiledPlan> Compile(
      const la::ExprPtr& expr, engine::WorkspaceView workspace,
      const la::MetaCatalog* catalog = nullptr,
      const std::set<std::string>* fusion_barriers = nullptr) const;

  // Executes an already-compiled plan (api::PreparedQuery caches one per
  // plan so the hit path skips DAG recompilation). The plan must have been
  // compiled against a workspace whose referenced names still resolve.
  // `trace`, when non-null and enabled, receives one "kernel" span per
  // executed operator node, parented under trace->parent (see
  // Scheduler::Run). `cancel`, when non-null, is checked before every node
  // launch; a cancelled/past-deadline token aborts with the typed serving
  // error (see Scheduler::Run). Thread-safe under the same
  // workspace-stability contract as Run().
  Result<matrix::Matrix> RunCompiled(
      const CompiledPlan& plan, engine::WorkspaceView workspace,
      engine::ExecStats* stats = nullptr,
      const obs::TraceContext* trace = nullptr,
      const CancelToken* cancel = nullptr) const;

  // The executor's pool adapted to the matrix kernels' RangeRunner
  // signature with the fixed kernel grain (chunking never depends on the
  // worker count, so results stay bit-identical at every thread count).
  // Null in inline mode (threads <= 1) — kernels then run sequentially.
  // Thread-safe; the Morpheus engine borrows this so factorized pushdown
  // kernels parallelize on the session pool.
  matrix::RangeRunner range_runner() const;

 private:
  engine::ExecOptions options_;
  CompileOptions compile_options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace hadad::exec

#endif  // HADAD_EXEC_EXECUTOR_H_
