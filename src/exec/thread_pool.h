#ifndef HADAD_EXEC_THREAD_POOL_H_
#define HADAD_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hadad::exec {

// Fixed-size worker pool shared by the DAG scheduler (inter-operator
// parallelism: independent plan nodes run on different workers) and the
// blocked kernels (intra-operator parallelism via ParallelFor).
//
// `threads` is the total degree of parallelism: the pool spawns that many
// workers; `threads <= 1` spawns none and every entry point runs inline on
// the caller, which keeps single-threaded execution allocation- and
// lock-free on the hot path and makes the 1-thread configuration byte-
// identical to sequential execution.
class ThreadPool {
 public:
  // `threads <= 0` resolves to std::thread::hardware_concurrency().
  // `always_spawn` forces spawning workers even at 1 thread, so Submit()
  // runs tasks asynchronously — background services (the adaptive view
  // materializer) need a real worker where query execution wants the
  // inline fast path.
  explicit ThreadPool(int threads, bool always_spawn = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // The resolved degree of parallelism (>= 1).
  int threads() const { return threads_; }
  // Number of spawned workers (threads(), or 0 in inline mode).
  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` for a worker. In inline mode the task runs on the
  // calling thread before Submit returns.
  void Submit(std::function<void()> task) HADAD_EXCLUDES(mu_);

  // Runs body(begin, end) over a partition of [0, n) into contiguous chunks
  // of at most `grain` items, blocking until every chunk completed. The
  // caller participates (claims chunks itself), so ParallelFor may be called
  // from inside a pool task without deadlock. Chunk boundaries depend only
  // on `grain`, never on the worker count: any kernel whose per-item work is
  // deterministic produces bit-identical results at every thread count.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

 private:
  void WorkerLoop() HADAD_EXCLUDES(mu_);

  // Immutable after the constructor returns (workers only dequeue; they
  // never touch these), so reads need no capability.
  int threads_ = 1;
  std::vector<std::thread> workers_;

  common::Mutex mu_;
  common::CondVar cv_;
  std::deque<std::function<void()>> queue_ HADAD_GUARDED_BY(mu_);
  bool stop_ HADAD_GUARDED_BY(mu_) = false;
};

}  // namespace hadad::exec

#endif  // HADAD_EXEC_THREAD_POOL_H_
