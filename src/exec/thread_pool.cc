#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hadad::exec {

ThreadPool::ThreadPool(int threads, bool always_spawn) {
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  threads_ = threads;
  if (threads_ <= 1 && !always_spawn) return;  // Inline mode.
  workers_.reserve(static_cast<size_t>(threads_));
  for (int i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(&mu_);
      // Explicit predicate loop: the thread-safety analysis tracks the
      // held capability through CondVar::wait(lock) but not through a
      // predicate lambda, which it would treat as an unlocked function.
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    common::MutexLock lock(&mu_);
    HADAD_CHECK_MSG(!stop_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

namespace {

// Shared by the caller and any helper tasks of one ParallelFor. Heap-held
// via shared_ptr: a helper task may start (and immediately find no chunk
// left) after the caller already returned.
struct ParallelForState {
  int64_t n = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  std::function<void(int64_t, int64_t)> body;

  std::atomic<int64_t> next_chunk{0};
  common::Mutex mu;
  common::CondVar cv;
  int64_t done_chunks HADAD_GUARDED_BY(mu) = 0;

  // Claims and runs chunks until none remain; returns how many it ran.
  int64_t Drain() {
    int64_t ran = 0;
    for (;;) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const int64_t begin = c * grain;
      const int64_t end = std::min(n, begin + grain);
      body(begin, end);
      ++ran;
    }
    return ran;
  }

  void MarkDone(int64_t count) {
    if (count == 0) return;
    common::MutexLock lock(&mu);
    done_chunks += count;
    if (done_chunks == num_chunks) cv.notify_all();
  }
};

}  // namespace

void ThreadPool::ParallelFor(int64_t n, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  HADAD_CHECK_GT(grain, 0);
  if (workers_.empty() || n <= grain) {
    body(0, n);
    return;
  }
  auto state = std::make_shared<ParallelForState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = (n + grain - 1) / grain;
  state->body = body;

  // One helper per worker, capped at chunks-1 (the caller takes chunks too).
  const int64_t helpers =
      std::min<int64_t>(worker_count(), state->num_chunks - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    Submit([state] { state->MarkDone(state->Drain()); });
  }
  state->MarkDone(state->Drain());
  common::MutexLock lock(&state->mu);
  while (state->done_chunks != state->num_chunks) state->cv.wait(lock);
}

}  // namespace hadad::exec
