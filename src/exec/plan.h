#ifndef HADAD_EXEC_PLAN_H_
#define HADAD_EXEC_PLAN_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "cost/estimator.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/blocked_kernels.h"

namespace hadad::exec {

// Physical kernel chosen per node at compile time from operand shapes, nnz
// estimates, and representations (cost::Estimator stats over the same VREM
// relations the optimizer costs with). The scheduler re-checks the actual
// runtime representation and falls back to kGeneric on a mismatch — an
// estimate can never make a result wrong, only slower.
enum class KernelKind {
  kLoad,         // Leaf: borrow the named matrix from the workspace.
  kScalarConst,  // Leaf: materialize a 1x1 constant.
  kGemmBlocked,  // Dense x dense product: cache-blocked, row-partitioned.
  kGemmFusedTranspose,  // t(A) x B on dense A, B without materializing t(A).
  kSpmm,         // Sparse (CSR) x dense product, row-parallel; covers SpMV.
  kSpGemm,       // Sparse x sparse product, row-parallel Gustavson.
  // A maximal elementwise chain (add / hadamard / scalar-multiply over one
  // shape) collapsed into one row-parallel single-pass stack program — no
  // per-operator intermediates. The node's `program` indexes
  // CompiledPlan::programs.
  kFusedElementwise,
  // sum / rowSums / colSums / mean / colMeans pushed into the producing
  // dense GEMM: the node takes the product's operands directly and reduces
  // on the fly without materializing the product. The mean variants divide
  // the finished sums once, exactly as the unfused aggregate does.
  kGemmSumReduce,
  kGemmRowSumsReduce,
  kGemmColSumsReduce,
  kGemmMeanReduce,
  kGemmColMeansReduce,
  kGeneric,      // Sequential engine::ApplyOp (everything else).
};

const char* KernelName(KernelKind kind);

// One physical operator of the compiled DAG. `inputs`/`consumers` index
// into CompiledPlan::nodes; nodes are stored in a topological order
// (inputs strictly before their consumers).
struct PlanNode {
  la::OpKind op = la::OpKind::kMatrixRef;
  const la::Expr* expr = nullptr;  // Borrowed; CompiledPlan keeps the root.
  KernelKind kernel = KernelKind::kGeneric;
  std::vector<int32_t> inputs;
  std::vector<int32_t> consumers;
  cost::ClassMeta meta;  // Estimated shape + nnz of this node's output.
  // kFusedElementwise: index into CompiledPlan::programs; -1 otherwise.
  int32_t program = -1;
};

struct CompiledPlan {
  la::ExprPtr root_expr;  // Owns every Expr the nodes borrow.
  std::vector<PlanNode> nodes;
  int32_t root = -1;
  // Expression-tree nodes folded into existing DAG nodes by hash-consing on
  // the canonical (la::ToString) form — the plan cache's key, reused here.
  int64_t cse_hits = 0;
  // Every workspace name the plan loads (sorted, unique) — the compiled
  // plan's dependency set, exposed for tooling and tests. api::Session
  // stamps workspace epochs at the expression level before compiling (the
  // compiler introduces no loads beyond the expression's refs, so the two
  // sets agree); a kernel chosen for stale shapes never runs on mutated
  // data because stale plans re-derive before execution.
  std::vector<std::string> leaf_names;
  // Stack programs of the kFusedElementwise nodes (PlanNode::program). The
  // semantic form keeps la::OpKind for the non-dense runtime fallback; the
  // kernel form (same indices) is the dense-path lowering, translated once
  // here so executions — cached-plan hits included — pay no per-run setup.
  std::vector<la::ElemProgram> programs;
  std::vector<matrix::FusedElementwiseProgram> kernel_programs;
  // Fusion-pass outcome: physical nodes that fuse several logical operators
  // (elementwise chains + reducing GEMMs), and the operator nodes — one
  // materialized intermediate each — the pass eliminated.
  int64_t fused_nodes = 0;
  int64_t fused_ops_eliminated = 0;
  // Canonical forms of the operator nodes fusion eliminated (chain
  // interiors, folded products). Callers that cache compiled plans check
  // these against their current fusion-barrier set: if a canonical later
  // becomes a barrier (an adaptive-view candidate crossing its hit
  // threshold), the cached plan must be recompiled so the subexpression
  // gets its own node again.
  std::set<std::string> fused_canonicals;

  std::string ToString() const;  // One node per line, for tests/debugging.
};

struct CompileOptions {
  bool enable_cse = true;
  // Products whose output has fewer cells than this stay on kGeneric.
  // Tier-aware default: lower on vector tiers, where the blocked kernels'
  // SIMD microkernels beat the scalar generic path at smaller outputs.
  int64_t parallel_cell_threshold = cost::DefaultParallelCellThreshold();
  // Estimated density at or above which an operand is treated as dense when
  // choosing between kGemmBlocked and kSpmm.
  double dense_sparsity_threshold = 0.5;
  // Run the operator-fusion pass after CSE: collapse elementwise chains
  // into kFusedElementwise nodes and push sum/rowSums/colSums into their
  // producing dense GEMM. Fused plans are bit-identical to unfused plans at
  // every thread count; disable to compare or debug. Elementwise-chain
  // fusion additionally requires enable_cse (the pass relies on the CSE
  // memo to prove an interior node is not shared).
  bool enable_fusion = true;
  // Canonical (la::ToString) forms that must stay materialized as their own
  // plan nodes — the session passes its adaptive-view candidate roots so
  // WorkloadMonitor cost attribution and imminent view installs keep seeing
  // these subexpressions as distinct operators. Borrowed; may be null, and
  // only needs to outlive the Compile call.
  const std::set<std::string>* fusion_barriers = nullptr;
};

// Lowers `expr` into a physical DAG: hash-consing CSE over canonical
// subexpression text, estimator-driven kernel selection, transpose fusion
// for t(A) %*% B, then the operator-fusion pass (elementwise chains and
// aggregation pushdown — see CompileOptions::enable_fusion). Leaf metadata
// comes from `catalog` when present, else from the workspace matrix itself
// (exact shape + nnz). Unknown names and shape mismatches surface as
// Status. Pure function of its arguments; safe to call concurrently.
// `workspace` may be a live Workspace (implicitly converted) or a pinned
// engine::Snapshot — compilation against a snapshot sees the pinned
// versions only.
Result<CompiledPlan> Compile(const la::ExprPtr& expr,
                             engine::WorkspaceView workspace,
                             const la::MetaCatalog* catalog,
                             const CompileOptions& options);

}  // namespace hadad::exec

#endif  // HADAD_EXEC_PLAN_H_
