#ifndef HADAD_EXEC_PLAN_H_
#define HADAD_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/estimator.h"
#include "engine/workspace.h"
#include "la/expr.h"

namespace hadad::exec {

// Physical kernel chosen per node at compile time from operand shapes, nnz
// estimates, and representations (cost::Estimator stats over the same VREM
// relations the optimizer costs with). The scheduler re-checks the actual
// runtime representation and falls back to kGeneric on a mismatch — an
// estimate can never make a result wrong, only slower.
enum class KernelKind {
  kLoad,         // Leaf: borrow the named matrix from the workspace.
  kScalarConst,  // Leaf: materialize a 1x1 constant.
  kGemmBlocked,  // Dense x dense product: cache-blocked, row-partitioned.
  kGemmFusedTranspose,  // t(A) x B on dense A, B without materializing t(A).
  kSpmm,         // Sparse (CSR) x dense product, row-parallel; covers SpMV.
  kSpGemm,       // Sparse x sparse product, row-parallel Gustavson.
  kGeneric,      // Sequential engine::ApplyOp (everything else).
};

const char* KernelName(KernelKind kind);

// One physical operator of the compiled DAG. `inputs`/`consumers` index
// into CompiledPlan::nodes; nodes are stored in a topological order
// (inputs strictly before their consumers).
struct PlanNode {
  la::OpKind op = la::OpKind::kMatrixRef;
  const la::Expr* expr = nullptr;  // Borrowed; CompiledPlan keeps the root.
  KernelKind kernel = KernelKind::kGeneric;
  std::vector<int32_t> inputs;
  std::vector<int32_t> consumers;
  cost::ClassMeta meta;  // Estimated shape + nnz of this node's output.
};

struct CompiledPlan {
  la::ExprPtr root_expr;  // Owns every Expr the nodes borrow.
  std::vector<PlanNode> nodes;
  int32_t root = -1;
  // Expression-tree nodes folded into existing DAG nodes by hash-consing on
  // the canonical (la::ToString) form — the plan cache's key, reused here.
  int64_t cse_hits = 0;
  // Every workspace name the plan loads (sorted, unique) — the compiled
  // plan's dependency set, exposed for tooling and tests. api::Session
  // stamps workspace epochs at the expression level before compiling (the
  // compiler introduces no loads beyond the expression's refs, so the two
  // sets agree); a kernel chosen for stale shapes never runs on mutated
  // data because stale plans re-derive before execution.
  std::vector<std::string> leaf_names;

  std::string ToString() const;  // One node per line, for tests/debugging.
};

struct CompileOptions {
  bool enable_cse = true;
  // Products whose output has fewer cells than this stay on kGeneric.
  int64_t parallel_cell_threshold = 4096;
  // Estimated density at or above which an operand is treated as dense when
  // choosing between kGemmBlocked and kSpmm.
  double dense_sparsity_threshold = 0.5;
};

// Lowers `expr` into a physical DAG: hash-consing CSE over canonical
// subexpression text, estimator-driven kernel selection, transpose fusion
// for t(A) %*% B. Leaf metadata comes from `catalog` when present, else
// from the workspace matrix itself (exact shape + nnz). Unknown names and
// shape mismatches surface as Status.
Result<CompiledPlan> Compile(const la::ExprPtr& expr,
                             const engine::Workspace& workspace,
                             const la::MetaCatalog* catalog,
                             const CompileOptions& options);

}  // namespace hadad::exec

#endif  // HADAD_EXEC_PLAN_H_
