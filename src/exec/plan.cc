#include "exec/plan.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "cost/cost_model.h"

namespace hadad::exec {

namespace {

using la::Expr;
using la::ExprPtr;
using la::OpKind;

bool IsScalarMeta(const cost::ClassMeta& m) {
  return m.shape.rows == 1 && m.shape.cols == 1;
}

// Lowers the semantic stack program to the matrix layer's dense-path form:
// hadamard and the scalar-path multiply are both per-element products.
matrix::FusedElementwiseProgram LowerProgram(const la::ElemProgram& program) {
  matrix::FusedElementwiseProgram lowered;
  lowered.max_stack = program.max_stack;
  lowered.steps.reserve(program.steps.size());
  for (const la::ElemStep& step : program.steps) {
    matrix::FusedStep fs;
    switch (step.kind) {
      case la::ElemStep::Kind::kPushInput:
        fs.code = matrix::FusedStep::Code::kPushInput;
        fs.input = step.input;
        break;
      case la::ElemStep::Kind::kPushConst:
        fs.code = matrix::FusedStep::Code::kPushConst;
        fs.value = step.value;
        break;
      case la::ElemStep::Kind::kApply:
        fs.code = step.op == la::OpKind::kAdd
                      ? matrix::FusedStep::Code::kAdd
                      : matrix::FusedStep::Code::kMul;
        break;
    }
    lowered.steps.push_back(fs);
  }
  return lowered;
}

// Estimated density in [0, 1]; unknown nnz counts as fully dense.
double EstimatedDensity(const cost::ClassMeta& m) {
  return m.shape.Sparsity();
}

class Compiler {
 public:
  Compiler(engine::WorkspaceView workspace, const la::MetaCatalog* catalog,
           const CompileOptions& options)
      : workspace_(workspace), catalog_(catalog), options_(options) {}

  Result<CompiledPlan> Run(const ExprPtr& expr) {
    plan_.root_expr = expr;
    HADAD_ASSIGN_OR_RETURN(int32_t root, Lower(expr));
    plan_.root = root;
    RebuildEdges();
    if (options_.enable_fusion) {
      FuseElementwiseChains();
      PushDownAggregations();
      EliminateDeadNodes();
    }
    return std::move(plan_);
  }

 private:
  // Lowers one expression tree node, returning its DAG node id. Children
  // are lowered first, so node order is topological by construction.
  Result<int32_t> Lower(const ExprPtr& e) {
    std::string key;
    if (options_.enable_cse) {
      key = la::ToString(e);
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        ++plan_.cse_hits;
        // Duplicate tree objects resolve to the memoized node, so the
        // fusion pass can map any expr in the tree without re-stringifying.
        expr_node_.emplace(e.get(), it->second);
        return it->second;
      }
    }

    PlanNode node;
    node.op = e->kind();
    node.expr = e.get();

    switch (e->kind()) {
      case OpKind::kMatrixRef: {
        node.kernel = KernelKind::kLoad;
        HADAD_ASSIGN_OR_RETURN(node.meta, LeafMeta(e->name()));
        break;
      }
      case OpKind::kScalarConst: {
        node.kernel = KernelKind::kScalarConst;
        node.meta.shape.rows = 1;
        node.meta.shape.cols = 1;
        node.meta.shape.nnz = e->scalar_value() == 0.0 ? 0.0 : 1.0;
        break;
      }
      default: {
        // Transpose fusion: lower t(A) %*% B as one fused node over A and B
        // when both operands look dense and the product is heavy enough for
        // the blocked kernels. The transpose node itself is only created if
        // fusion declines or some other consumer references it.
        if (e->kind() == OpKind::kMultiply &&
            e->child(0)->kind() == OpKind::kTranspose) {
          return LowerTransposedMultiply(e, std::move(key));
        }
        std::vector<cost::ClassMeta> in_meta;
        for (const ExprPtr& c : e->children()) {
          HADAD_ASSIGN_OR_RETURN(int32_t id, Lower(c));
          node.inputs.push_back(id);
          in_meta.push_back(plan_.nodes[static_cast<size_t>(id)].meta);
        }
        HADAD_ASSIGN_OR_RETURN(node.meta, PropagateMeta(*e, in_meta));
        node.kernel = SelectKernel(*e, in_meta, node.meta);
        break;
      }
    }

    return Emit(std::move(node), std::move(key));
  }

  // Lowers (t(inner)) %*% rhs. Children are lowered once; the fused kernel
  // is chosen when the operands qualify, otherwise an explicit transpose
  // node feeds a generically-selected multiply.
  Result<int32_t> LowerTransposedMultiply(const ExprPtr& e, std::string key) {
    const ExprPtr& transpose = e->child(0);
    const ExprPtr& inner = transpose->child(0);
    const ExprPtr& rhs = e->child(1);
    HADAD_ASSIGN_OR_RETURN(int32_t inner_id, Lower(inner));
    HADAD_ASSIGN_OR_RETURN(int32_t rhs_id, Lower(rhs));
    const cost::ClassMeta am = plan_.nodes[static_cast<size_t>(inner_id)].meta;
    const cost::ClassMeta bm = plan_.nodes[static_cast<size_t>(rhs_id)].meta;

    const double cells = static_cast<double>(am.shape.cols) *
                         static_cast<double>(bm.shape.cols);
    const bool fusible =
        !IsScalarMeta(am) && !IsScalarMeta(bm) &&
        am.shape.rows == bm.shape.rows &&
        EstimatedDensity(am) >= options_.dense_sparsity_threshold &&
        EstimatedDensity(bm) >= options_.dense_sparsity_threshold &&
        cells >= static_cast<double>(options_.parallel_cell_threshold);
    if (fusible) {
      PlanNode node;
      node.op = OpKind::kMultiply;
      node.expr = e.get();
      node.kernel = KernelKind::kGemmFusedTranspose;
      node.inputs = {inner_id, rhs_id};
      node.meta.shape.rows = am.shape.cols;
      node.meta.shape.cols = bm.shape.cols;
      node.meta.shape.nnz = -1.0;  // Dense product: treat as full.
      return Emit(std::move(node), std::move(key));
    }

    // No fusion: materialize the transpose, then multiply generically.
    int32_t t_id;
    std::string t_key;
    if (options_.enable_cse) {
      t_key = la::ToString(transpose);
      auto it = memo_.find(t_key);
      if (it != memo_.end()) {
        ++plan_.cse_hits;
        t_id = it->second;
        expr_node_.emplace(transpose.get(), t_id);
      } else {
        HADAD_ASSIGN_OR_RETURN(t_id, EmitTranspose(transpose, inner_id, am,
                                                   std::move(t_key)));
      }
    } else {
      HADAD_ASSIGN_OR_RETURN(t_id,
                             EmitTranspose(transpose, inner_id, am, ""));
    }

    PlanNode node;
    node.op = e->kind();
    node.expr = e.get();
    node.inputs = {t_id, rhs_id};
    const std::vector<cost::ClassMeta> in_meta = {
        plan_.nodes[static_cast<size_t>(t_id)].meta, bm};
    HADAD_ASSIGN_OR_RETURN(node.meta, PropagateMeta(*e, in_meta));
    node.kernel = SelectKernel(*e, in_meta, node.meta);
    return Emit(std::move(node), std::move(key));
  }

  Result<int32_t> EmitTranspose(const ExprPtr& transpose, int32_t inner_id,
                                const cost::ClassMeta& inner_meta,
                                std::string key) {
    PlanNode node;
    node.op = OpKind::kTranspose;
    node.expr = transpose.get();
    node.kernel = KernelKind::kGeneric;
    node.inputs = {inner_id};
    HADAD_ASSIGN_OR_RETURN(node.meta,
                           PropagateMeta(*transpose, {inner_meta}));
    return Emit(std::move(node), std::move(key));
  }

  int32_t Emit(PlanNode node, std::string key) {
    const int32_t id = static_cast<int32_t>(plan_.nodes.size());
    expr_node_.emplace(node.expr, id);
    plan_.nodes.push_back(std::move(node));
    // Keep the canonical alongside the node: the fusion pass needs it for
    // barrier checks and fused_canonicals without re-stringifying subtrees.
    canonicals_.push_back(key);
    if (options_.enable_cse) memo_.emplace(std::move(key), id);
    return id;
  }

  // The node's canonical form, computed lazily when CSE did not provide it
  // (enable_cse off, or the CSE-hit branch of LowerTransposedMultiply).
  const std::string& CanonicalOf(int32_t id) {
    std::string& canonical = canonicals_[static_cast<size_t>(id)];
    if (canonical.empty()) {
      canonical =
          la::ToString(*plan_.nodes[static_cast<size_t>(id)].expr);
    }
    return canonical;
  }

  Result<cost::ClassMeta> LeafMeta(const std::string& name) {
    if (catalog_ != nullptr) {
      auto it = catalog_->find(name);
      if (it != catalog_->end()) {
        return estimator_.MakeBase(it->second, workspace_.Find(name));
      }
    }
    const matrix::Matrix* m = workspace_.Find(name);
    if (m == nullptr) {
      return Status::NotFound("no matrix named '" + name + "' in workspace");
    }
    la::MatrixMeta meta;
    meta.rows = m->rows();
    meta.cols = m->cols();
    meta.nnz = static_cast<double>(m->Nnz());
    return estimator_.MakeBase(meta, m);
  }

  // Shape + nnz propagation through the same VREM relations the cost model
  // estimates γ with.
  Result<cost::ClassMeta> PropagateMeta(
      const Expr& e, const std::vector<cost::ClassMeta>& in_meta) {
    const bool lhs_scalar = !in_meta.empty() && IsScalarMeta(in_meta[0]);
    const bool rhs_scalar = in_meta.size() > 1 && IsScalarMeta(in_meta[1]);
    HADAD_ASSIGN_OR_RETURN(cost::OpRelation rel,
                           cost::RelationFor(e, lhs_scalar, rhs_scalar));
    std::vector<cost::ClassMeta> inputs = in_meta;
    if (rel.swap_args && inputs.size() == 2) {
      std::swap(inputs[0], inputs[1]);
    }
    auto meta = estimator_.Propagate(rel.relation, inputs, rel.output_index);
    if (!meta.has_value()) {
      return Status::DimensionMismatch("cannot compile " + la::ToString(e) +
                                       ": incompatible operand shapes");
    }
    return *meta;
  }

  KernelKind SelectKernel(const Expr& e,
                          const std::vector<cost::ClassMeta>& in_meta,
                          const cost::ClassMeta& out_meta) const {
    if (e.kind() != OpKind::kMultiply || in_meta.size() != 2) {
      return KernelKind::kGeneric;
    }
    const cost::ClassMeta& a = in_meta[0];
    const cost::ClassMeta& b = in_meta[1];
    if (IsScalarMeta(a) || IsScalarMeta(b)) return KernelKind::kGeneric;
    if (a.shape.cols != b.shape.rows) return KernelKind::kGeneric;
    if (!cost::HeavyEnoughForParallel(out_meta,
                                      options_.parallel_cell_threshold)) {
      return KernelKind::kGeneric;
    }
    const bool a_dense =
        cost::TreatAsDense(a, options_.dense_sparsity_threshold);
    const bool b_dense =
        cost::TreatAsDense(b, options_.dense_sparsity_threshold);
    if (!b_dense) {
      // Sparse rhs: row-parallel Gustavson when the lhs is sparse too;
      // dense x sparse stays on the sequential generic kernel.
      return a_dense ? KernelKind::kGeneric : KernelKind::kSpGemm;
    }
    return a_dense ? KernelKind::kGemmBlocked : KernelKind::kSpmm;
  }

  // --- Operator-fusion pass (runs after lowering + CSE) -------------------

  const cost::ClassMeta& Meta(int32_t id) const {
    return plan_.nodes[static_cast<size_t>(id)].meta;
  }

  static bool SameShape(const cost::ClassMeta& x, const cost::ClassMeta& y) {
    return x.shape.rows == y.shape.rows && x.shape.cols == y.shape.cols;
  }

  // True when the node's canonical form must stay a materialized plan node
  // (adaptive-view candidate roots the session asked us not to fuse over).
  bool IsBarrier(int32_t id) {
    return options_.fusion_barriers != nullptr &&
           options_.fusion_barriers->count(CanonicalOf(id)) > 0;
  }

  // Recomputes consumer edges and the leaf dependency set from `inputs`.
  void RebuildEdges() {
    for (PlanNode& node : plan_.nodes) node.consumers.clear();
    std::set<std::string> leaves;
    for (int32_t id = 0; id < static_cast<int32_t>(plan_.nodes.size()); ++id) {
      const PlanNode& node = plan_.nodes[static_cast<size_t>(id)];
      for (int32_t in : node.inputs) {
        plan_.nodes[static_cast<size_t>(in)].consumers.push_back(id);
      }
      if (node.kernel == KernelKind::kLoad) leaves.insert(node.expr->name());
    }
    plan_.leaf_names.assign(leaves.begin(), leaves.end());
  }

  // Whether `node` computes an elementwise operator the fused interpreter
  // reproduces exactly: same-shape add, hadamard (with scalar broadcast),
  // or kMultiply in the form where matrix::Multiply takes the scalar path.
  bool ElementwiseFusable(const PlanNode& node) const {
    if (node.kernel != KernelKind::kGeneric) return false;
    if (!la::IsElementwiseFusableKind(node.op)) return false;
    if (node.inputs.size() != 2) return false;
    if (IsScalarMeta(node.meta)) return false;  // Scalar chains: not worth it.
    // Sparse chains keep their per-operator sparse kernels: the fused
    // interpreter's single pass only wins on dense rows (a wrong estimate
    // still executes correctly through the scheduler's matrix-level
    // fallback — this gate is purely about not pessimizing).
    if (!cost::TreatAsDense(node.meta, options_.dense_sparsity_threshold)) {
      return false;
    }
    const cost::ClassMeta& a = Meta(node.inputs[0]);
    const cost::ClassMeta& b = Meta(node.inputs[1]);
    switch (node.op) {
      case OpKind::kAdd:
        return SameShape(a, node.meta) && SameShape(b, node.meta);
      case OpKind::kHadamard:
        return (IsScalarMeta(a) || SameShape(a, node.meta)) &&
               (IsScalarMeta(b) || SameShape(b, node.meta));
      case OpKind::kMultiply:
        // Elementwise only as scalar-times-matrix — and only when
        // matrix::Multiply would actually take the scalar path (operand
        // inner dimensions mismatch): a 1x1 times a 1xC row vector is a
        // true matrix product with different zero semantics.
        if (IsScalarMeta(a) && !IsScalarMeta(b)) {
          return b.shape.rows > 1 && SameShape(b, node.meta);
        }
        if (IsScalarMeta(b) && !IsScalarMeta(a)) {
          return a.shape.cols > 1 && SameShape(a, node.meta);
        }
        return false;
      default:
        return false;
    }
  }

  // The DAG node computing `e`. Every expr object the fusion pass can
  // reach was seen by Lower() and recorded in expr_node_; the memo lookup
  // is a defensive fallback.
  int32_t ResolveNode(const Expr& e) const {
    auto it = expr_node_.find(&e);
    if (it != expr_node_.end()) return it->second;
    auto memo_it = memo_.find(la::ToString(e));
    HADAD_CHECK_MSG(memo_it != memo_.end(),
                    "fusion: subexpression missing from the CSE memo");
    return memo_it->second;
  }

  // Collapses maximal same-shape elementwise subtrees into single
  // kFusedElementwise nodes. An interior node joins its consumer's chain
  // only when that consumer is its ONLY consumer (so CSE-shared
  // subexpressions stay materialized — sharing still pays once) and its
  // canonical form is not a fusion barrier. Interior nodes become dead and
  // are swept by EliminateDeadNodes.
  void FuseElementwiseChains() {
    // The pass proves "not shared" through consumer counts of the
    // hash-consed DAG; without CSE two tree occurrences of one
    // subexpression are distinct nodes and the memo is empty.
    if (!options_.enable_cse) return;
    const size_t n = plan_.nodes.size();
    std::vector<bool> fusable(n, false), absorbable(n, false);
    for (size_t i = 0; i < n; ++i) fusable[i] = ElementwiseFusable(plan_.nodes[i]);
    for (size_t i = 0; i < n; ++i) {
      const PlanNode& node = plan_.nodes[i];
      if (!fusable[i] || node.consumers.size() != 1) continue;
      const size_t consumer = static_cast<size_t>(node.consumers[0]);
      absorbable[i] = fusable[consumer] &&
                      SameShape(node.meta, plan_.nodes[consumer].meta) &&
                      !IsBarrier(static_cast<int32_t>(i));
    }
    for (size_t i = 0; i < n; ++i) {
      if (!fusable[i] || absorbable[i]) continue;  // Chain roots only.
      // Members: the root plus transitively absorbable children (each has
      // exactly one consumer, which is its parent in the chain).
      std::set<int32_t> members;
      std::vector<int32_t> frontier = {static_cast<int32_t>(i)};
      while (!frontier.empty()) {
        const int32_t id = frontier.back();
        frontier.pop_back();
        members.insert(id);
        for (int32_t in : plan_.nodes[static_cast<size_t>(id)].inputs) {
          if (absorbable[static_cast<size_t>(in)]) frontier.push_back(in);
        }
      }
      if (members.size() < 2) continue;  // Nothing to eliminate.

      std::unordered_map<int32_t, int32_t> slot_of;
      std::vector<int32_t> slot_nodes;
      const auto classify = [&](const Expr& e) -> int32_t {
        const int32_t id = ResolveNode(e);
        if (members.count(id) > 0) return -1;
        auto [it, inserted] =
            slot_of.try_emplace(id, static_cast<int32_t>(slot_nodes.size()));
        if (inserted) slot_nodes.push_back(id);
        return it->second;
      };
      PlanNode& root = plan_.nodes[i];
      la::ElemProgram program = la::FlattenElementwise(*root.expr, classify);
      root.kernel = KernelKind::kFusedElementwise;
      root.program = static_cast<int32_t>(plan_.programs.size());
      root.inputs = std::move(slot_nodes);
      plan_.kernel_programs.push_back(LowerProgram(program));
      plan_.programs.push_back(std::move(program));
      ++plan_.fused_nodes;
      plan_.fused_ops_eliminated +=
          static_cast<int64_t>(members.size()) - 1;
      for (int32_t member : members) {
        if (member == static_cast<int32_t>(i)) continue;  // Root survives.
        plan_.fused_canonicals.insert(CanonicalOf(member));
      }
    }
  }

  // Rewrites sum/rowSums/colSums/mean/colMeans over a blocked dense GEMM
  // into a reducing GEMM node that takes the product's operands directly —
  // the product is never materialized. Requires the product to have no
  // other consumer and not be a fusion barrier. (rowMeans has no kernel
  // yet: it would need the row count threaded per row — cheap but untested;
  // it stays on the generic path.)
  void PushDownAggregations() {
    for (PlanNode& node : plan_.nodes) {
      if (node.op != OpKind::kSum && node.op != OpKind::kRowSums &&
          node.op != OpKind::kColSums && node.op != OpKind::kMean &&
          node.op != OpKind::kColMeans) {
        continue;
      }
      if (node.kernel != KernelKind::kGeneric || node.inputs.size() != 1) {
        continue;
      }
      const int32_t product_id = node.inputs[0];
      const PlanNode& product =
          plan_.nodes[static_cast<size_t>(product_id)];
      if (product.op != OpKind::kMultiply ||
          product.kernel != KernelKind::kGemmBlocked ||
          product.consumers.size() != 1 || product.inputs.size() != 2 ||
          IsBarrier(product_id)) {
        continue;
      }
      if (!cost::ReducingGemmProfitable(
              Meta(product.inputs[0]), Meta(product.inputs[1]), product.meta,
              options_.dense_sparsity_threshold,
              options_.parallel_cell_threshold)) {
        continue;
      }
      switch (node.op) {
        case OpKind::kSum: node.kernel = KernelKind::kGemmSumReduce; break;
        case OpKind::kRowSums:
          node.kernel = KernelKind::kGemmRowSumsReduce;
          break;
        case OpKind::kColSums:
          node.kernel = KernelKind::kGemmColSumsReduce;
          break;
        case OpKind::kMean: node.kernel = KernelKind::kGemmMeanReduce; break;
        default: node.kernel = KernelKind::kGemmColMeansReduce; break;
      }
      node.inputs = product.inputs;
      ++plan_.fused_nodes;
      ++plan_.fused_ops_eliminated;  // The materialized product.
      plan_.fused_canonicals.insert(CanonicalOf(product_id));
    }
  }

  // Drops nodes no longer reachable from the root (interior chain members,
  // folded products, orphaned constants), preserving topological order, and
  // recomputes edges and leaf names.
  void EliminateDeadNodes() {
    const size_t n = plan_.nodes.size();
    std::vector<bool> live(n, false);
    std::vector<int32_t> stack = {plan_.root};
    live[static_cast<size_t>(plan_.root)] = true;
    while (!stack.empty()) {
      const int32_t id = stack.back();
      stack.pop_back();
      for (int32_t in : plan_.nodes[static_cast<size_t>(id)].inputs) {
        if (!live[static_cast<size_t>(in)]) {
          live[static_cast<size_t>(in)] = true;
          stack.push_back(in);
        }
      }
    }
    std::vector<int32_t> newid(n, -1);
    std::vector<PlanNode> kept;
    kept.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      newid[i] = static_cast<int32_t>(kept.size());
      kept.push_back(std::move(plan_.nodes[i]));
    }
    for (PlanNode& node : kept) {
      for (int32_t& in : node.inputs) in = newid[static_cast<size_t>(in)];
    }
    plan_.nodes = std::move(kept);
    plan_.root = newid[static_cast<size_t>(plan_.root)];
    RebuildEdges();
  }

  engine::WorkspaceView workspace_;
  const la::MetaCatalog* catalog_;
  const CompileOptions& options_;
  cost::NaiveMetadataEstimator estimator_;
  CompiledPlan plan_;
  std::unordered_map<std::string, int32_t> memo_;
  // Fusion-pass lookups, filled during lowering: node id -> canonical form
  // (parallel to plan_.nodes; empty until needed when CSE is off) and
  // expression object -> node id (CSE duplicates map to the memoized node).
  // Both go stale at EliminateDeadNodes, which runs after every use.
  std::vector<std::string> canonicals_;
  std::unordered_map<const Expr*, int32_t> expr_node_;
};

}  // namespace

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kLoad: return "load";
    case KernelKind::kScalarConst: return "const";
    case KernelKind::kGemmBlocked: return "gemm_blocked";
    case KernelKind::kGemmFusedTranspose: return "gemm_tn_fused";
    case KernelKind::kSpmm: return "spmm_row_parallel";
    case KernelKind::kSpGemm: return "spgemm_row_parallel";
    case KernelKind::kFusedElementwise: return "fused_elementwise";
    case KernelKind::kGemmSumReduce: return "gemm_sum_reduce";
    case KernelKind::kGemmRowSumsReduce: return "gemm_rowsums_reduce";
    case KernelKind::kGemmColSumsReduce: return "gemm_colsums_reduce";
    case KernelKind::kGemmMeanReduce: return "gemm_mean_reduce";
    case KernelKind::kGemmColMeansReduce: return "gemm_colmeans_reduce";
    case KernelKind::kGeneric: return "generic";
  }
  return "unknown";
}

std::string CompiledPlan::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& n = nodes[i];
    out << "#" << i << " " << la::OpName(n.op) << " [" << KernelName(n.kernel)
        << "] " << n.meta.shape.rows << "x" << n.meta.shape.cols << " <-";
    for (int32_t in : n.inputs) out << " #" << in;
    if (n.op == la::OpKind::kMatrixRef) out << " '" << n.expr->name() << "'";
    if (n.program >= 0) {
      out << " prog(" << programs[static_cast<size_t>(n.program)].fused_ops
          << " ops)";
    }
    out << "\n";
  }
  out << "root #" << root << ", cse_hits " << cse_hits << ", fused_nodes "
      << fused_nodes << ", fused_ops_eliminated " << fused_ops_eliminated
      << "\n";
  return out.str();
}

Result<CompiledPlan> Compile(const ExprPtr& expr,
                             engine::WorkspaceView workspace,
                             const la::MetaCatalog* catalog,
                             const CompileOptions& options) {
  Compiler compiler(workspace, catalog, options);
  return compiler.Run(expr);
}

}  // namespace hadad::exec
