#include "exec/plan.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "cost/cost_model.h"

namespace hadad::exec {

namespace {

using la::Expr;
using la::ExprPtr;
using la::OpKind;

bool IsScalarMeta(const cost::ClassMeta& m) {
  return m.shape.rows == 1 && m.shape.cols == 1;
}

// Estimated density in [0, 1]; unknown nnz counts as fully dense.
double EstimatedDensity(const cost::ClassMeta& m) {
  return m.shape.Sparsity();
}

class Compiler {
 public:
  Compiler(const engine::Workspace& workspace, const la::MetaCatalog* catalog,
           const CompileOptions& options)
      : workspace_(workspace), catalog_(catalog), options_(options) {}

  Result<CompiledPlan> Run(const ExprPtr& expr) {
    plan_.root_expr = expr;
    HADAD_ASSIGN_OR_RETURN(int32_t root, Lower(expr));
    plan_.root = root;
    std::set<std::string> leaves;
    for (int32_t id = 0; id < static_cast<int32_t>(plan_.nodes.size()); ++id) {
      const PlanNode& node = plan_.nodes[static_cast<size_t>(id)];
      for (int32_t in : node.inputs) {
        plan_.nodes[static_cast<size_t>(in)].consumers.push_back(id);
      }
      if (node.kernel == KernelKind::kLoad) leaves.insert(node.expr->name());
    }
    plan_.leaf_names.assign(leaves.begin(), leaves.end());
    return std::move(plan_);
  }

 private:
  // Lowers one expression tree node, returning its DAG node id. Children
  // are lowered first, so node order is topological by construction.
  Result<int32_t> Lower(const ExprPtr& e) {
    std::string key;
    if (options_.enable_cse) {
      key = la::ToString(e);
      auto it = memo_.find(key);
      if (it != memo_.end()) {
        ++plan_.cse_hits;
        return it->second;
      }
    }

    PlanNode node;
    node.op = e->kind();
    node.expr = e.get();

    switch (e->kind()) {
      case OpKind::kMatrixRef: {
        node.kernel = KernelKind::kLoad;
        HADAD_ASSIGN_OR_RETURN(node.meta, LeafMeta(e->name()));
        break;
      }
      case OpKind::kScalarConst: {
        node.kernel = KernelKind::kScalarConst;
        node.meta.shape.rows = 1;
        node.meta.shape.cols = 1;
        node.meta.shape.nnz = e->scalar_value() == 0.0 ? 0.0 : 1.0;
        break;
      }
      default: {
        // Transpose fusion: lower t(A) %*% B as one fused node over A and B
        // when both operands look dense and the product is heavy enough for
        // the blocked kernels. The transpose node itself is only created if
        // fusion declines or some other consumer references it.
        if (e->kind() == OpKind::kMultiply &&
            e->child(0)->kind() == OpKind::kTranspose) {
          return LowerTransposedMultiply(e, std::move(key));
        }
        std::vector<cost::ClassMeta> in_meta;
        for (const ExprPtr& c : e->children()) {
          HADAD_ASSIGN_OR_RETURN(int32_t id, Lower(c));
          node.inputs.push_back(id);
          in_meta.push_back(plan_.nodes[static_cast<size_t>(id)].meta);
        }
        HADAD_ASSIGN_OR_RETURN(node.meta, PropagateMeta(*e, in_meta));
        node.kernel = SelectKernel(*e, in_meta, node.meta);
        break;
      }
    }

    return Emit(std::move(node), std::move(key));
  }

  // Lowers (t(inner)) %*% rhs. Children are lowered once; the fused kernel
  // is chosen when the operands qualify, otherwise an explicit transpose
  // node feeds a generically-selected multiply.
  Result<int32_t> LowerTransposedMultiply(const ExprPtr& e, std::string key) {
    const ExprPtr& transpose = e->child(0);
    const ExprPtr& inner = transpose->child(0);
    const ExprPtr& rhs = e->child(1);
    HADAD_ASSIGN_OR_RETURN(int32_t inner_id, Lower(inner));
    HADAD_ASSIGN_OR_RETURN(int32_t rhs_id, Lower(rhs));
    const cost::ClassMeta am = plan_.nodes[static_cast<size_t>(inner_id)].meta;
    const cost::ClassMeta bm = plan_.nodes[static_cast<size_t>(rhs_id)].meta;

    const double cells = static_cast<double>(am.shape.cols) *
                         static_cast<double>(bm.shape.cols);
    const bool fusible =
        !IsScalarMeta(am) && !IsScalarMeta(bm) &&
        am.shape.rows == bm.shape.rows &&
        EstimatedDensity(am) >= options_.dense_sparsity_threshold &&
        EstimatedDensity(bm) >= options_.dense_sparsity_threshold &&
        cells >= static_cast<double>(options_.parallel_cell_threshold);
    if (fusible) {
      PlanNode node;
      node.op = OpKind::kMultiply;
      node.expr = e.get();
      node.kernel = KernelKind::kGemmFusedTranspose;
      node.inputs = {inner_id, rhs_id};
      node.meta.shape.rows = am.shape.cols;
      node.meta.shape.cols = bm.shape.cols;
      node.meta.shape.nnz = -1.0;  // Dense product: treat as full.
      return Emit(std::move(node), std::move(key));
    }

    // No fusion: materialize the transpose, then multiply generically.
    int32_t t_id;
    std::string t_key;
    if (options_.enable_cse) {
      t_key = la::ToString(transpose);
      auto it = memo_.find(t_key);
      if (it != memo_.end()) {
        ++plan_.cse_hits;
        t_id = it->second;
      } else {
        HADAD_ASSIGN_OR_RETURN(t_id, EmitTranspose(transpose, inner_id, am,
                                                   std::move(t_key)));
      }
    } else {
      HADAD_ASSIGN_OR_RETURN(t_id,
                             EmitTranspose(transpose, inner_id, am, ""));
    }

    PlanNode node;
    node.op = e->kind();
    node.expr = e.get();
    node.inputs = {t_id, rhs_id};
    const std::vector<cost::ClassMeta> in_meta = {
        plan_.nodes[static_cast<size_t>(t_id)].meta, bm};
    HADAD_ASSIGN_OR_RETURN(node.meta, PropagateMeta(*e, in_meta));
    node.kernel = SelectKernel(*e, in_meta, node.meta);
    return Emit(std::move(node), std::move(key));
  }

  Result<int32_t> EmitTranspose(const ExprPtr& transpose, int32_t inner_id,
                                const cost::ClassMeta& inner_meta,
                                std::string key) {
    PlanNode node;
    node.op = OpKind::kTranspose;
    node.expr = transpose.get();
    node.kernel = KernelKind::kGeneric;
    node.inputs = {inner_id};
    HADAD_ASSIGN_OR_RETURN(node.meta,
                           PropagateMeta(*transpose, {inner_meta}));
    return Emit(std::move(node), std::move(key));
  }

  int32_t Emit(PlanNode node, std::string key) {
    const int32_t id = static_cast<int32_t>(plan_.nodes.size());
    plan_.nodes.push_back(std::move(node));
    if (options_.enable_cse) memo_.emplace(std::move(key), id);
    return id;
  }

  Result<cost::ClassMeta> LeafMeta(const std::string& name) {
    if (catalog_ != nullptr) {
      auto it = catalog_->find(name);
      if (it != catalog_->end()) {
        return estimator_.MakeBase(it->second, workspace_.Find(name));
      }
    }
    const matrix::Matrix* m = workspace_.Find(name);
    if (m == nullptr) {
      return Status::NotFound("no matrix named '" + name + "' in workspace");
    }
    la::MatrixMeta meta;
    meta.rows = m->rows();
    meta.cols = m->cols();
    meta.nnz = static_cast<double>(m->Nnz());
    return estimator_.MakeBase(meta, m);
  }

  // Shape + nnz propagation through the same VREM relations the cost model
  // estimates γ with.
  Result<cost::ClassMeta> PropagateMeta(
      const Expr& e, const std::vector<cost::ClassMeta>& in_meta) {
    const bool lhs_scalar = !in_meta.empty() && IsScalarMeta(in_meta[0]);
    const bool rhs_scalar = in_meta.size() > 1 && IsScalarMeta(in_meta[1]);
    HADAD_ASSIGN_OR_RETURN(cost::OpRelation rel,
                           cost::RelationFor(e, lhs_scalar, rhs_scalar));
    std::vector<cost::ClassMeta> inputs = in_meta;
    if (rel.swap_args && inputs.size() == 2) {
      std::swap(inputs[0], inputs[1]);
    }
    auto meta = estimator_.Propagate(rel.relation, inputs, rel.output_index);
    if (!meta.has_value()) {
      return Status::DimensionMismatch("cannot compile " + la::ToString(e) +
                                       ": incompatible operand shapes");
    }
    return *meta;
  }

  KernelKind SelectKernel(const Expr& e,
                          const std::vector<cost::ClassMeta>& in_meta,
                          const cost::ClassMeta& out_meta) const {
    if (e.kind() != OpKind::kMultiply || in_meta.size() != 2) {
      return KernelKind::kGeneric;
    }
    const cost::ClassMeta& a = in_meta[0];
    const cost::ClassMeta& b = in_meta[1];
    if (IsScalarMeta(a) || IsScalarMeta(b)) return KernelKind::kGeneric;
    if (a.shape.cols != b.shape.rows) return KernelKind::kGeneric;
    if (out_meta.shape.Cells() <
        static_cast<double>(options_.parallel_cell_threshold)) {
      return KernelKind::kGeneric;
    }
    const bool a_dense =
        EstimatedDensity(a) >= options_.dense_sparsity_threshold;
    const bool b_dense =
        EstimatedDensity(b) >= options_.dense_sparsity_threshold;
    if (!b_dense) {
      // Sparse rhs: row-parallel Gustavson when the lhs is sparse too;
      // dense x sparse stays on the sequential generic kernel.
      return a_dense ? KernelKind::kGeneric : KernelKind::kSpGemm;
    }
    return a_dense ? KernelKind::kGemmBlocked : KernelKind::kSpmm;
  }

  const engine::Workspace& workspace_;
  const la::MetaCatalog* catalog_;
  const CompileOptions& options_;
  cost::NaiveMetadataEstimator estimator_;
  CompiledPlan plan_;
  std::unordered_map<std::string, int32_t> memo_;
};

}  // namespace

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kLoad: return "load";
    case KernelKind::kScalarConst: return "const";
    case KernelKind::kGemmBlocked: return "gemm_blocked";
    case KernelKind::kGemmFusedTranspose: return "gemm_tn_fused";
    case KernelKind::kSpmm: return "spmm_row_parallel";
    case KernelKind::kSpGemm: return "spgemm_row_parallel";
    case KernelKind::kGeneric: return "generic";
  }
  return "unknown";
}

std::string CompiledPlan::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& n = nodes[i];
    out << "#" << i << " " << la::OpName(n.op) << " [" << KernelName(n.kernel)
        << "] " << n.meta.shape.rows << "x" << n.meta.shape.cols << " <-";
    for (int32_t in : n.inputs) out << " #" << in;
    if (n.op == la::OpKind::kMatrixRef) out << " '" << n.expr->name() << "'";
    out << "\n";
  }
  out << "root #" << root << ", cse_hits " << cse_hits << "\n";
  return out.str();
}

Result<CompiledPlan> Compile(const ExprPtr& expr,
                             const engine::Workspace& workspace,
                             const la::MetaCatalog* catalog,
                             const CompileOptions& options) {
  Compiler compiler(workspace, catalog, options);
  return compiler.Run(expr);
}

}  // namespace hadad::exec
