#ifndef HADAD_EXEC_SCHEDULER_H_
#define HADAD_EXEC_SCHEDULER_H_

#include "common/status.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "exec/cancel.h"
#include "exec/plan.h"
#include "exec/thread_pool.h"
#include "matrix/matrix.h"
#include "obs/trace.h"

namespace hadad::exec {

// Executes a CompiledPlan over a workspace. Inter-operator parallelism:
// every node carries a dependency count; when it drops to zero the node is
// submitted to the pool, so independent subtrees run concurrently.
// Intra-operator parallelism: the blocked kernels split their row range via
// ThreadPool::ParallelFor. With a pool in inline mode (<= 1 thread) the DAG
// runs sequentially in topological order — same kernels, same results.
//
// An intermediate is freed as soon as its last consumer finished, so peak
// memory tracks the DAG frontier, not the whole plan.
class Scheduler {
 public:
  explicit Scheduler(ThreadPool* pool) : pool_(pool) {}

  // Runs `plan`; on success returns the root node's result. The first
  // kernel error aborts the run (queued nodes finish, new ones are not
  // scheduled) and is returned. When `stats` is set, fills the per-operator
  // breakdown (op_timings, node_timings, work/span, cse_hits, plan_nodes,
  // threads). When `trace` carries a recorder, one "kernel" span per
  // executed operator node is published under `trace->parent` — measured
  // in-line (start timestamp + thread captured per node task) but emitted
  // in one batch after the run, so tracing adds no lock traffic to the
  // execution critical path. `cancel`, when non-null, is consulted before
  // every node launch: a cancelled or past-deadline token aborts the run
  // through the same first-error machinery as a kernel failure — queued
  // nodes finish, new ones are not scheduled, and the typed
  // Cancelled/DeadlineExceeded status is returned once the pool drains.
  // `workspace` may be a live Workspace (implicitly converted; the caller
  // keeps it stable for the duration) or a pinned engine::Snapshot — the
  // MVCC read path, needing no lock at all.
  Result<matrix::Matrix> Run(const CompiledPlan& plan,
                             engine::WorkspaceView workspace,
                             engine::ExecStats* stats = nullptr,
                             const obs::TraceContext* trace = nullptr,
                             const CancelToken* cancel = nullptr) const;

 private:
  ThreadPool* pool_;
};

}  // namespace hadad::exec

#endif  // HADAD_EXEC_SCHEDULER_H_
