#include "exec/scheduler.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "matrix/blocked_kernels.h"
#include "matrix/simd.h"

namespace hadad::exec {

namespace {

using matrix::Matrix;

// Result slot of one plan node: either a borrowed pointer into the
// workspace (kLoad — no copy) or an owned intermediate.
struct Slot {
  const Matrix* view = nullptr;
  std::optional<Matrix> owned;

  const Matrix* get() const { return owned.has_value() ? &*owned : view; }
  void Set(Matrix m) {
    owned.emplace(std::move(m));
    view = nullptr;
  }
  void Release() {
    owned.reset();
    view = nullptr;
  }
};

// Adapts the shared pool to the matrix kernels' RangeRunner signature with
// a fixed grain, so chunking (and results) never depend on thread count.
matrix::RangeRunner PoolRunner(ThreadPool* pool) {
  if (pool == nullptr || pool->worker_count() == 0) return nullptr;
  return [pool](int64_t n, const std::function<void(int64_t, int64_t)>& body) {
    pool->ParallelFor(n, matrix::kRowGrain, body);
  };
}

// Per-run mutable state, shared by all node tasks.
struct RunState {
  const CompiledPlan* plan = nullptr;
  ThreadPool* pool = nullptr;
  bool collect_stats = false;
  // Non-null when tracing: node tasks additionally capture their start
  // timestamp (recorder time base) and executing thread, written to the
  // per-node vectors below — each node is written by exactly one task, so
  // no lock is needed until the post-run batch emission.
  obs::TraceRecorder* recorder = nullptr;
  // Non-null when the run is cancellable (server requests).
  const CancelToken* cancel = nullptr;

  std::vector<Slot> slots;
  std::vector<std::atomic<int>> pending;         // Unfinished inputs.
  std::vector<std::atomic<int>> consumers_left;  // For early release.
  std::vector<double> node_seconds;
  std::vector<double> node_nnz;
  std::vector<int64_t> node_start_us;
  std::vector<uint64_t> node_thread;

  std::atomic<bool> failed{false};
  common::Mutex error_mu;
  Status error HADAD_GUARDED_BY(error_mu);

  common::Mutex done_mu;
  common::CondVar done_cv;
  // Scheduled-but-unfinished node tasks.
  int64_t outstanding HADAD_GUARDED_BY(done_mu) = 0;

  explicit RunState(size_t n)
      : slots(n), pending(n), consumers_left(n), node_seconds(n, 0.0),
        node_nnz(n, 0.0), node_start_us(n, 0), node_thread(n, 0) {}

  void Fail(Status status) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      common::MutexLock lock(&error_mu);
      error = std::move(status);
    }
  }
};

// Evaluates a kFusedElementwise node. Fast path: every same-shape input is
// dense — the whole chain runs as one row-parallel pass with cache-hot
// scratch rows. Otherwise the program is interpreted one operator at a time
// over whole matrices with the exact matrix:: kernels the unfused plan
// would have used, so results (and errors) match the unfused plan
// bit-for-bit in every representation mix.
Result<Matrix> EvalFusedElementwise(const PlanNode& node,
                                    const la::ElemProgram& program,
                                    const matrix::FusedElementwiseProgram&
                                        kernel_program,
                                    const std::vector<const Matrix*>& in,
                                    ThreadPool* pool) {
  const int64_t rows = node.meta.shape.rows;
  const int64_t cols = node.meta.shape.cols;
  bool all_dense = true;
  std::vector<matrix::FusedInput> inputs(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    const Matrix& m = *in[i];
    if (m.rows() == 1 && m.cols() == 1) {
      inputs[i].scalar = m.At(0, 0);  // Broadcast scalar (any rep).
    } else if (m.is_dense() && m.rows() == rows && m.cols() == cols) {
      inputs[i].dense = &m.dense();
    } else {
      all_dense = false;
      break;
    }
  }
  if (all_dense) {
    return Matrix(matrix::EvalFusedElementwise(kernel_program, inputs, rows,
                                               cols, PoolRunner(pool)));
  }

  // Matrix-level fallback: replay the original operators in program order.
  // Inputs are borrowed, never copied — only operator results are owned.
  using StackVal = std::variant<const Matrix*, Matrix>;
  const auto deref = [](const StackVal& v) -> const Matrix& {
    return std::holds_alternative<const Matrix*>(v)
               ? *std::get<const Matrix*>(v)
               : std::get<Matrix>(v);
  };
  std::vector<StackVal> stack;
  for (const la::ElemStep& step : program.steps) {
    switch (step.kind) {
      case la::ElemStep::Kind::kPushInput:
        stack.emplace_back(in[static_cast<size_t>(step.input)]);
        break;
      case la::ElemStep::Kind::kPushConst:
        stack.emplace_back(Matrix::Scalar(step.value));
        break;
      case la::ElemStep::Kind::kApply: {
        StackVal b = std::move(stack.back());
        stack.pop_back();
        StackVal a = std::move(stack.back());
        stack.pop_back();
        Result<Matrix> r =
            step.op == la::OpKind::kAdd ? matrix::Add(deref(a), deref(b))
            : step.op == la::OpKind::kHadamard
                ? matrix::ElementwiseMultiply(deref(a), deref(b))
                : matrix::Multiply(deref(a), deref(b));
        if (!r.ok()) return r.status();
        stack.emplace_back(std::move(r).value());
        break;
      }
    }
  }
  HADAD_CHECK_MSG(stack.size() == 1, "fused program left a non-unit stack");
  if (std::holds_alternative<Matrix>(stack.back())) {
    return std::move(std::get<Matrix>(stack.back()));
  }
  return *std::get<const Matrix*>(stack.back());  // Bare input: copy once.
}

Result<Matrix> EvalNode(RunState& state, int32_t id) {
  const PlanNode& node = state.plan->nodes[static_cast<size_t>(id)];
  std::vector<const Matrix*> in;
  in.reserve(node.inputs.size());
  for (int32_t input : node.inputs) {
    const Matrix* m = state.slots[static_cast<size_t>(input)].get();
    HADAD_CHECK_MSG(m != nullptr, "input slot released before use");
    in.push_back(m);
  }

  switch (node.kernel) {
    case KernelKind::kLoad: {
      // Resolved during setup; unreachable here.
      return Status::Internal("load node reached EvalNode");
    }
    case KernelKind::kScalarConst:
      return Matrix::Scalar(node.expr->scalar_value());
    case KernelKind::kGemmBlocked:
      if (in[0]->is_dense() && in[1]->is_dense()) {
        return Matrix(matrix::MultiplyDenseBlocked(in[0]->dense(),
                                                   in[1]->dense(),
                                                   PoolRunner(state.pool)));
      }
      break;  // Estimate was wrong about representation: generic fallback.
    case KernelKind::kSpmm:
      if (in[0]->is_sparse() && in[1]->is_dense()) {
        return Matrix(matrix::MultiplySparseDenseParallel(
            in[0]->sparse(), in[1]->dense(), PoolRunner(state.pool)));
      }
      break;
    case KernelKind::kSpGemm:
      if (in[0]->is_sparse() && in[1]->is_sparse()) {
        return Matrix(matrix::MultiplySparseSparseParallel(
            in[0]->sparse(), in[1]->sparse(), PoolRunner(state.pool)));
      }
      break;
    case KernelKind::kGemmFusedTranspose:
      if (in[0]->is_dense() && in[1]->is_dense()) {
        return Matrix(matrix::MultiplyTransposedDenseBlocked(
            in[0]->dense(), in[1]->dense(), PoolRunner(state.pool)));
      }
      // Fallback must reproduce t(A) %*% B, not A %*% B.
      {
        const Matrix t = matrix::Transpose(*in[0]);
        return matrix::Multiply(t, *in[1]);
      }
    case KernelKind::kFusedElementwise:
      return EvalFusedElementwise(
          node, state.plan->programs[static_cast<size_t>(node.program)],
          state.plan->kernel_programs[static_cast<size_t>(node.program)], in,
          state.pool);
    case KernelKind::kGemmSumReduce:
    case KernelKind::kGemmRowSumsReduce:
    case KernelKind::kGemmColSumsReduce:
    case KernelKind::kGemmMeanReduce:
    case KernelKind::kGemmColMeansReduce: {
      if (in[0]->is_dense() && in[1]->is_dense()) {
        const matrix::DenseMatrix& a = in[0]->dense();
        const matrix::DenseMatrix& b = in[1]->dense();
        matrix::RangeRunner runner = PoolRunner(state.pool);
        switch (node.kernel) {
          case KernelKind::kGemmSumReduce:
            return Matrix::Scalar(matrix::GemmSum(a, b, runner));
          case KernelKind::kGemmRowSumsReduce:
            return Matrix(matrix::GemmRowSums(a, b, runner));
          case KernelKind::kGemmColSumsReduce:
            return Matrix(matrix::GemmColSums(a, b, runner));
          case KernelKind::kGemmMeanReduce:
            return Matrix::Scalar(matrix::GemmMean(a, b, runner));
          default:
            return Matrix(matrix::GemmColMeans(a, b, runner));
        }
      }
      // Representation estimate was wrong: reproduce the unfused pipeline
      // exactly — materialize the product with the kernel the unfused plan
      // would have fallen back to, then aggregate.
      HADAD_ASSIGN_OR_RETURN(Matrix product,
                             matrix::Multiply(*in[0], *in[1]));
      switch (node.kernel) {
        case KernelKind::kGemmSumReduce:
          return Matrix::Scalar(matrix::Sum(product));
        case KernelKind::kGemmRowSumsReduce:
          return matrix::RowSums(product);
        case KernelKind::kGemmColSumsReduce:
          return matrix::ColSums(product);
        case KernelKind::kGemmMeanReduce:
          return Matrix::Scalar(matrix::Mean(product));
        default:
          return matrix::ColMeans(product);
      }
    }
    case KernelKind::kGeneric:
      break;
  }
  return engine::ApplyOp(*node.expr, in);
}

// Runs node `id`'s kernel, stores its result, releases exhausted inputs,
// and returns the consumers that became ready.
std::vector<int32_t> CompleteNode(RunState& state, int32_t id) {
  const PlanNode& node = state.plan->nodes[static_cast<size_t>(id)];
  // Cooperative cancellation point: a timed-out or client-cancelled run
  // stops here, before the kernel launches — the in-flight kernels on
  // other workers finish (they are not interruptible) and the dependency
  // counters below still drain, so the pool is never wedged.
  if (state.cancel != nullptr &&
      !state.failed.load(std::memory_order_acquire)) {
    Status proceed = state.cancel->CheckProceed();
    if (!proceed.ok()) state.Fail(std::move(proceed));
  }
  if (!state.failed.load(std::memory_order_acquire)) {
    if (state.recorder != nullptr) {
      state.node_start_us[static_cast<size_t>(id)] =
          state.recorder->NowMicros();
      state.node_thread[static_cast<size_t>(id)] =
          std::hash<std::thread::id>{}(std::this_thread::get_id());
    }
    Timer timer;
    Result<Matrix> out = EvalNode(state, id);
    if (out.ok()) {
      state.node_seconds[static_cast<size_t>(id)] = timer.ElapsedSeconds();
      if (state.collect_stats && id != state.plan->root &&
          node.kernel != KernelKind::kLoad) {
        state.node_nnz[static_cast<size_t>(id)] =
            static_cast<double>(out.value().Nnz());
      }
      state.slots[static_cast<size_t>(id)].Set(std::move(out).value());
    } else {
      state.Fail(out.status());
    }
  }

  // Release inputs whose consumers have all finished (even on failure, so
  // memory drains); never release the root.
  for (int32_t input : node.inputs) {
    if (state.consumers_left[static_cast<size_t>(input)].fetch_sub(
            1, std::memory_order_acq_rel) == 1 &&
        input != state.plan->root) {
      state.slots[static_cast<size_t>(input)].Release();
    }
  }

  std::vector<int32_t> ready;
  if (!state.failed.load(std::memory_order_acquire)) {
    for (int32_t consumer : node.consumers) {
      if (state.pending[static_cast<size_t>(consumer)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        ready.push_back(consumer);
      }
    }
  }
  return ready;
}

void ScheduleNode(RunState& state, int32_t id);

void NodeTask(RunState& state, int32_t id) {
  std::vector<int32_t> ready = CompleteNode(state, id);
  {
    common::MutexLock lock(&state.done_mu);
    state.outstanding += static_cast<int64_t>(ready.size()) - 1;
    if (state.outstanding == 0) state.done_cv.notify_all();
  }
  for (int32_t next : ready) ScheduleNode(state, next);
}

void ScheduleNode(RunState& state, int32_t id) {
  state.pool->Submit([&state, id] { NodeTask(state, id); });
}

void FillStats(const RunState& state, const CompiledPlan& plan,
               engine::ExecStats* stats) {
  stats->cse_hits = plan.cse_hits;
  stats->plan_nodes = static_cast<int64_t>(plan.nodes.size());
  stats->fused_nodes = plan.fused_nodes;
  stats->fused_ops_eliminated = plan.fused_ops_eliminated;
  stats->node_timings.resize(plan.nodes.size());
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    stats->node_timings[i].seconds = state.node_seconds[i];
    stats->node_timings[i].nnz = state.node_nnz[i];
  }
  std::map<std::string, engine::OpTiming> by_op;
  std::vector<double> span(plan.nodes.size(), 0.0);
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    const double secs = state.node_seconds[i];
    double input_span = 0.0;
    for (int32_t in : node.inputs) {
      input_span = std::max(input_span, span[static_cast<size_t>(in)]);
    }
    span[i] = input_span + secs;
    if (node.kernel == KernelKind::kLoad ||
        node.kernel == KernelKind::kScalarConst) {
      continue;
    }
    ++stats->operators;
    stats->intermediate_nnz += state.node_nnz[i];
    stats->total_operator_seconds += secs;
    engine::OpTiming& t = by_op[la::OpName(node.op)];
    t.op = la::OpName(node.op);
    ++t.count;
    t.seconds += secs;
  }
  stats->critical_path_seconds =
      plan.root >= 0 ? span[static_cast<size_t>(plan.root)] : 0.0;
  stats->op_timings.reserve(by_op.size());
  for (auto& [name, timing] : by_op) stats->op_timings.push_back(timing);
  std::sort(stats->op_timings.begin(), stats->op_timings.end(),
            [](const engine::OpTiming& a, const engine::OpTiming& b) {
              return a.seconds > b.seconds;
            });
}

// Publishes one "kernel" span per executed operator node, batched after
// the run from the timings the node tasks captured in-line. Loads are
// skipped (borrowed views, no kernel ran).
void EmitKernelSpans(const RunState& state, const CompiledPlan& plan,
                     const obs::TraceContext& trace) {
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.kernel == KernelKind::kLoad) continue;
    if (state.node_thread[i] == 0) continue;  // Never ran (aborted run).
    std::vector<std::pair<std::string, std::string>> attrs;
    attrs.reserve(6);
    attrs.emplace_back("node", "#" + std::to_string(i));
    attrs.emplace_back("op", la::OpName(node.op));
    attrs.emplace_back("tier", matrix::TierName(matrix::ActiveTier()));
    attrs.emplace_back("rows", std::to_string(node.meta.shape.rows));
    attrs.emplace_back("cols", std::to_string(node.meta.shape.cols));
    attrs.emplace_back(
        "nnz", std::to_string(static_cast<int64_t>(state.node_nnz[i])));
    trace.recorder->AddCompleteSpan(
        KernelName(node.kernel), "kernel", trace.parent, state.node_start_us[i],
        static_cast<int64_t>(state.node_seconds[i] * 1e6),
        state.node_thread[i], std::move(attrs));
  }
}

}  // namespace

Result<Matrix> Scheduler::Run(const CompiledPlan& plan,
                              engine::WorkspaceView workspace,
                              engine::ExecStats* stats,
                              const obs::TraceContext* trace,
                              const CancelToken* cancel) const {
  Timer timer;
  if (plan.root < 0 || plan.nodes.empty()) {
    return Status::InvalidArgument("empty plan");
  }
  // A request that spent its whole deadline queued fails before any node
  // is scheduled.
  if (cancel != nullptr) HADAD_RETURN_IF_ERROR(cancel->CheckProceed());
  const bool tracing = trace != nullptr && trace->recorder != nullptr &&
                       trace->recorder->enabled();
  RunState state(plan.nodes.size());
  state.plan = &plan;
  state.pool = pool_;
  state.collect_stats = stats != nullptr || tracing;
  state.recorder = tracing ? trace->recorder : nullptr;
  state.cancel = cancel;

  // Resolve loads up front (borrowed views, no copy) and wire counters.
  std::vector<int32_t> initial_ready;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    state.pending[i].store(static_cast<int>(node.inputs.size()),
                           std::memory_order_relaxed);
    state.consumers_left[i].store(static_cast<int>(node.consumers.size()),
                                  std::memory_order_relaxed);
    if (node.kernel == KernelKind::kLoad) {
      HADAD_ASSIGN_OR_RETURN(const Matrix* m,
                             workspace.Get(node.expr->name()));
      state.slots[i].view = m;
    }
  }
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.kernel == KernelKind::kLoad) {
      // Already resolved: only propagate readiness to consumers.
      for (int32_t consumer : node.consumers) {
        if (state.pending[static_cast<size_t>(consumer)].fetch_sub(
                1, std::memory_order_relaxed) == 1) {
          initial_ready.push_back(consumer);
        }
      }
    } else if (node.inputs.empty()) {
      initial_ready.push_back(static_cast<int32_t>(i));
    }
  }

  const bool parallel = pool_ != nullptr && pool_->worker_count() > 0;
  if (!parallel) {
    // Sequential: nodes are already in topological order.
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      if (plan.nodes[i].kernel == KernelKind::kLoad) continue;
      CompleteNode(state, static_cast<int32_t>(i));
      if (state.failed.load(std::memory_order_relaxed)) break;
    }
  } else {
    {
      common::MutexLock lock(&state.done_mu);
      state.outstanding = static_cast<int64_t>(initial_ready.size());
    }
    // A plan whose root is a bare load has no tasks at all.
    if (!initial_ready.empty()) {
      for (int32_t id : initial_ready) ScheduleNode(state, id);
      common::MutexLock lock(&state.done_mu);
      while (state.outstanding != 0) state.done_cv.wait(lock);
    }
  }

  if (state.failed.load(std::memory_order_acquire)) {
    common::MutexLock lock(&state.error_mu);
    return state.error;
  }
  Slot& root_slot = state.slots[static_cast<size_t>(plan.root)];
  HADAD_CHECK_MSG(root_slot.get() != nullptr,
                  "scheduler finished without a root result");
  // Move an owned root out; a bare-load root copies the workspace matrix.
  Matrix result = root_slot.owned.has_value() ? std::move(*root_slot.owned)
                                              : *root_slot.view;
  if (stats != nullptr) {
    stats->threads = pool_ == nullptr ? 1 : pool_->threads();
    stats->kernel_tier = matrix::TierName(matrix::ActiveTier());
    FillStats(state, plan, stats);
    stats->seconds = timer.ElapsedSeconds();
  }
  if (tracing) EmitKernelSpans(state, plan, *trace);
  return result;
}

}  // namespace hadad::exec
