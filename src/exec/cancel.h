#ifndef HADAD_EXEC_CANCEL_H_
#define HADAD_EXEC_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace hadad::exec {

// Cooperative cancellation handle threaded through the execution stack
// (server request -> api::Session -> exec::Scheduler node dispatch). A
// cancelled or past-deadline token makes the scheduler stop launching new
// DAG nodes and fail the run with a typed error; the node currently inside
// a kernel finishes (kernels are not interruptible), so the pool always
// drains cleanly.
//
// Thread-safety: Cancel()/cancelled() are safe from any thread at any time
// (one atomic flag). set_deadline() is a configure-once call — the owner
// sets it before sharing the token, and the handoff that publishes the
// token (the server's queue mutex) orders the write for every reader.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  // Absolute deadline on the scheduler's steady clock. Call before the
  // token is shared (see class comment).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  bool deadline_exceeded() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  // OK while the work may proceed; the typed serving error otherwise.
  // Checked by the scheduler before every node launch — one atomic load on
  // the hot path, plus a clock read only when a deadline is armed.
  Status CheckProceed() const {
    if (cancelled()) return Status::Cancelled("request cancelled");
    if (deadline_exceeded()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace hadad::exec

#endif  // HADAD_EXEC_CANCEL_H_
