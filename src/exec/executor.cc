#include "exec/executor.h"

#include "common/timer.h"
#include "matrix/blocked_kernels.h"

namespace hadad::exec {

Executor::Executor(const engine::ExecOptions& options) : options_(options) {
  compile_options_.enable_cse = options.enable_cse;
  compile_options_.parallel_cell_threshold = options.parallel_cell_threshold;
  compile_options_.enable_fusion = options.enable_fusion;
  pool_ = std::make_unique<ThreadPool>(options.threads);
}

Result<CompiledPlan> Executor::Compile(
    const la::ExprPtr& expr, engine::WorkspaceView workspace,
    const la::MetaCatalog* catalog,
    const std::set<std::string>* fusion_barriers) const {
  CompileOptions options = compile_options_;
  options.fusion_barriers = fusion_barriers;
  return exec::Compile(expr, workspace, catalog, options);
}

Result<matrix::Matrix> Executor::Run(
    const la::ExprPtr& expr, engine::WorkspaceView workspace,
    engine::ExecStats* stats, const la::MetaCatalog* catalog,
    const std::set<std::string>* fusion_barriers) const {
  HADAD_ASSIGN_OR_RETURN(
      CompiledPlan plan, Compile(expr, workspace, catalog, fusion_barriers));
  return RunCompiled(plan, workspace, stats);
}

Result<matrix::Matrix> Executor::RunCompiled(
    const CompiledPlan& plan, engine::WorkspaceView workspace,
    engine::ExecStats* stats, const obs::TraceContext* trace,
    const CancelToken* cancel) const {
  Scheduler scheduler(pool_.get());
  return scheduler.Run(plan, workspace, stats, trace, cancel);
}

matrix::RangeRunner Executor::range_runner() const {
  ThreadPool* pool = pool_.get();
  if (pool == nullptr || pool->worker_count() == 0) return nullptr;
  return [pool](int64_t n,
                const std::function<void(int64_t, int64_t)>& body) {
    pool->ParallelFor(n, matrix::kRowGrain, body);
  };
}

}  // namespace hadad::exec

namespace hadad::engine {

// Declared in engine/evaluator.h; lives here so engine/ carries no link-time
// dependency cycle — the exec subsystem implements the overload.
Result<matrix::Matrix> Execute(const la::Expr& expr,
                               WorkspaceView workspace,
                               const ExecOptions& options, ExecStats* stats) {
  // The Expr tree is immutable and outlives this call; alias it without
  // taking ownership so callers keep passing `const la::Expr&`.
  la::ExprPtr alias(&expr, [](const la::Expr*) {});
  exec::Executor executor(options);
  return executor.Run(alias, workspace, stats);
}

}  // namespace hadad::engine
