#ifndef HADAD_API_SESSION_H_
#define HADAD_API_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chase/ast.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/profiles.h"
#include "engine/workspace.h"
#include "exec/executor.h"
#include "la/expr.h"
#include "matrix/matrix.h"
#include "morpheus/engine.h"
#include "morpheus/normalized_matrix.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pacb/optimizer.h"
#include "views/adaptive.h"

namespace hadad::api {

class Session;

// Counters a Session accumulates across Prepare()/Run() calls — a
// point-in-time read view over the session's obs::MetricsRegistry (the
// counters live there; stats() snapshots them, so this struct and
// Session::MetricsText() can never drift apart). Every field is a
// monotonically increasing event count unless noted otherwise.
struct SessionStats {
  // Optimizer invocations — calls, each one pays RW_find.
  int64_t prepares = 0;
  // Prepare()/Run() calls answered from the plan cache — calls.
  int64_t cache_hits = 0;
  // Prepare()/Run() calls that missed (or found a stale plan) — calls.
  int64_t cache_misses = 0;
  // Misses that waited for a concurrent in-flight derivation of the same
  // expression instead of duplicating RW_find — calls.
  int64_t plan_builds_coalesced = 0;
  // Session::Run() invocations — calls.
  int64_t runs = 0;
  // Physical-DAG compilations — plans (executor sessions only; the hit
  // path reuses the DAG cached inside PreparedPlan instead of recompiling).
  int64_t compiled_plans = 0;
  // Operator-fusion outcome summed over this session's physical-DAG
  // compilations (executor sessions only): plan nodes that fuse several
  // logical operators, and the operator nodes — one materialized
  // intermediate each — the fusion pass eliminated. Per-run values travel
  // in engine::ExecStats.
  int64_t fused_nodes = 0;
  int64_t fused_ops_eliminated = 0;
  // Successful Update()/Append()/Remove()/Put() calls — mutations.
  int64_t data_mutations = 0;
  // The adaptive_* fields mirror the adaptive-view subsystem (all zero
  // unless SessionBuilder::AdaptiveViews was called).
  int64_t adaptive_views_created = 0;   // Views materialized + installed.
  int64_t adaptive_views_evicted = 0;   // Budget evictions.
  // Adaptive views dropped because a mutation changed a referenced leaf.
  int64_t adaptive_views_invalidated = 0;
  // Append-driven incremental refreshes installed (V ← V + f(Δ)).
  int64_t adaptive_views_refreshed = 0;
  // Executions whose plan scanned at least one adaptive view — runs.
  int64_t adaptive_view_hit_runs = 0;
  int64_t adaptive_bytes_in_use = 0;  // Level, bytes (not a counter).
  int64_t adaptive_budget_bytes = 0;  // Level, bytes (not a counter).
};

// One entry of a Session::Mutate batch. Build entries with the factories;
// `value` carries the new matrix for Update/Put, the appended rows for
// Append, and is unused (empty) for Remove.
struct Mutation {
  enum class Op { kUpdate, kAppend, kRemove, kPut };
  Op op = Op::kUpdate;
  std::string name;
  matrix::Matrix value;

  static Mutation Update(std::string name, matrix::Matrix m) {
    return Mutation{Op::kUpdate, std::move(name), std::move(m)};
  }
  static Mutation Append(std::string name, matrix::Matrix rows) {
    return Mutation{Op::kAppend, std::move(name), std::move(rows)};
  }
  static Mutation Remove(std::string name) {
    return Mutation{Op::kRemove, std::move(name), matrix::Matrix()};
  }
  static Mutation Put(std::string name, matrix::Matrix m) {
    return Mutation{Op::kPut, std::move(name), std::move(m)};
  }
};

// An immutable optimized plan: the parsed pipeline plus HADAD's rewriting of
// it. Shared between the session's plan cache and any PreparedQuery handles.
struct PreparedPlan {
  std::string canonical;  // ToString(original): the plan-cache key.
  la::ExprPtr original;
  pacb::RewriteResult rewrite;
  // View generation the optimizer saw. When the adaptive subsystem lands or
  // evicts a view the session generation moves past this and the plan is
  // re-derived on its next use (so rewrites can reach the new views).
  int64_t generation = 0;
  // Leaf dependency set recorded at derivation time: the epoch of every
  // workspace name the original or rewritten form scans. A mutation that
  // moves any of them (Update/Append/Remove, user-view refresh) makes the
  // plan re-derive on next use; mutating unrelated names leaves it warm.
  engine::WorkspaceSnapshot data_snapshot;
  // Workspace generation at which data_snapshot was last verified current —
  // the per-run fast path (one atomic compare) when nothing mutated.
  mutable std::atomic<int64_t> verified_generation{-1};

  // Lazily compiled physical DAG of rewrite.best (executor sessions): built
  // on first execution, reused afterwards so the hit path skips DAG
  // recompilation.
  mutable common::Mutex compile_mu;
  mutable std::shared_ptr<const exec::CompiledPlan> compiled
      HADAD_GUARDED_BY(compile_mu);
};

// A reusable optimized pipeline bound to its session. Parse + PACB rewrite
// already happened (once); Execute() only pays execution. Copyable; keeps the
// session alive, so it may outlive the caller's session handle. All methods
// are const and safe to call concurrently (execution takes the session
// state lock shared, like Session::Run).
class PreparedQuery {
 public:
  // Runs the minimum-cost rewriting.
  Result<matrix::Matrix> Execute(engine::ExecStats* stats = nullptr) const;
  // Runs the pipeline exactly as stated (the paper's Q_exec baseline).
  Result<matrix::Matrix> ExecuteOriginal(engine::ExecStats* stats = nullptr) const;

  // Human-readable report: original vs. rewritten expression, γ estimates,
  // RW_find time, chase statistics, and the alternative rewritings found.
  std::string Explain() const;

  // Executes the rewriting once with per-node measurement and renders the
  // physical DAG annotated with what actually happened: measured kernel
  // wall-clock per node (and its share of total operator work), measured
  // output nnz (the paper's γ per intermediate), the chosen kernel, fusion
  // and CSE provenance (see obs::RenderExplainAnalyze). Sessions without
  // the DAG engine (no SessionBuilder::Threads, or Morpheus) report the
  // per-operator aggregate instead. Runs the query — same cost as
  // Execute().
  Result<std::string> ExplainAnalyze() const;

  const la::ExprPtr& original() const { return plan_->original; }
  // The expression Execute() runs (== rewrite().best).
  const la::ExprPtr& plan() const { return plan_->rewrite.best; }
  const pacb::RewriteResult& rewrite() const { return plan_->rewrite; }
  const std::string& canonical_text() const { return plan_->canonical; }
  // True when Prepare() found this plan in the session's cache instead of
  // invoking the optimizer.
  bool from_cache() const { return from_cache_; }

 private:
  friend class Session;
  PreparedQuery(std::shared_ptr<const Session> session,
                std::shared_ptr<const PreparedPlan> plan, bool from_cache)
      : session_(std::move(session)),
        plan_(std::move(plan)),
        from_cache_(from_cache) {}

  std::shared_ptr<const Session> session_;
  std::shared_ptr<const PreparedPlan> plan_;
  bool from_cache_;
};

// The library's front door: one object owning the workspace (data + views),
// the PACB optimizer, and an execution engine, with a plan cache in front of
// the optimizer so repeated pipelines pay RW_find once (§9.1.3's "overhead
// must stay negligible" contract).
//
//   auto session = api::SessionBuilder()
//                      .Put("M", ...).Put("N", ...)
//                      .Build().value();
//   auto result = session->Run("(M %*% N) %*% M");
//
// Prepare()/Run() are safe to call concurrently from multiple threads: the
// plan cache is guarded by a shared_mutex (readers run in parallel) and
// execution is MVCC: a query takes the session state lock shared only long
// enough to verify plan freshness and pin an immutable workspace snapshot,
// then runs the DAG/tree with NO session lock held. Writers never block
// readers — a mutation installs new matrix versions under the writer
// critical section while in-flight queries keep reading their pinned
// versions; superseded versions are reclaimed when the last pinned reader
// drains.
//
// The data layer is *versioned and mutable*: Update()/Append()/Remove()
// change base matrices after Build() and propagate through every dependent
// layer — optimizer base-metadata facts, user views (refreshed in place,
// incrementally on appends when the definition allows), adaptive views
// (invalidated or delta-refreshed in the background), the exec leaf
// catalog, and the plan cache (per-leaf epoch invalidation). In-flight
// queries are snapshot-isolated: they never observe a half-applied
// mutation, and they finish against the exact versions they pinned.
// Mutate() applies a whole batch under one writer critical section with a
// single view-refresh wave and one adaptive propagation.
//
// The expert layers stay reachable — workspace()/optimizer()/engine() —
// as read-only views; all mutation goes through the Session so every layer
// stays consistent.
class Session : public std::enable_shared_from_this<Session> {
 public:
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Parse + optimize `text` (or fetch the cached plan for its canonical
  // form) and return a reusable handle. Errors (parse failure, unknown
  // names, shape mismatches) surface as Status — never exceptions.
  Result<PreparedQuery> Prepare(const std::string& text) const;

  // One-liner: Prepare (cache-backed) + Execute the best rewriting.
  Result<matrix::Matrix> Run(const std::string& text,
                             engine::ExecStats* stats = nullptr) const;

  // Run with serving-layer hooks (src/server/ calls this; plain Run is the
  // cancel-free special case). `cancel`, when non-null, is checked before
  // optimization and then cooperatively at every DAG node launch — a
  // cancelled or past-deadline token aborts the run with the typed
  // kCancelled/kDeadlineExceeded status (executor sessions; engines without
  // the DAG scheduler only honor the pre-execution check). `client`, when
  // non-empty, is stamped on the root trace span.
  Result<matrix::Matrix> RunCancellable(const std::string& text,
                                        const exec::CancelToken* cancel,
                                        const std::string& client = "",
                                        engine::ExecStats* stats = nullptr)
      const;

  // --- Mutable data layer --------------------------------------------------
  //
  // All mutators run a short writer critical section and return without
  // waiting for in-flight queries: readers keep the versions they pinned
  // (MVCC), so a long-running query never delays a mutation and vice versa.

  // Replaces base matrix `name` (shape, sparsity, and representation may
  // all change). Dependent user views are re-materialized synchronously (in
  // registration order, so views over views cascade); dependent adaptive
  // views are invalidated; cached plans whose leaves moved re-derive on
  // next use. Errors: NotFound (unknown name), InvalidArgument (views and
  // Morpheus-declared names are derived/declared, not updatable — and a
  // new shape that breaks a dependent view's definition is rejected before
  // anything is applied).
  Status Update(const std::string& name, matrix::Matrix m)
      HADAD_EXCLUDES(views_mu_);

  // Appends rows below base matrix `name` (column counts must match).
  // Dependent user views whose definitions are append-additive refresh
  // incrementally (V ← V + f(Δ)); others re-materialize. Dependent
  // adaptive views delta-refresh on the background worker when additive,
  // and are invalidated otherwise. Same error contract as Update.
  Status Append(const std::string& name, const matrix::Matrix& rows)
      HADAD_EXCLUDES(views_mu_);

  // Unbinds base matrix `name`. InvalidArgument while a user view or a
  // Morpheus declaration references it; adaptive views over it are
  // invalidated. Cached plans over it fail on their next use (NotFound).
  Status Remove(const std::string& name) HADAD_EXCLUDES(views_mu_);

  // Binds base matrix `name` after Build(). A genuinely new name joins the
  // session like a builder-time Put: the optimizer gains its base-metadata
  // facts (shape, nnz, structural flags up to the flag-detect limit) and
  // the exec leaf catalog its entry, so the very next Prepare() can plan
  // over it — while cached plans for unrelated leaves stay warm (the new
  // name's epoch was never stamped into them). An existing base name takes
  // the full Update path instead (view refresh, rollback, adaptive
  // propagation). InvalidArgument for empty/reserved names, view names, and
  // Morpheus-declared names.
  Status Put(const std::string& name, matrix::Matrix m)
      HADAD_EXCLUDES(views_mu_);

  // Applies a batch of mutations atomically: every entry installs under ONE
  // writer critical section, dependent user views refresh once (one wave,
  // in registration order, full re-evaluation), cached plans see one epoch
  // move per touched leaf, and the adaptive subsystem gets one propagation.
  // All-or-nothing: a validation or refresh failure rolls the whole batch
  // back and returns the failing entry's error (annotated with its index).
  // A single-entry batch behaves exactly like the corresponding
  // Update/Append/Remove/Put call (including incremental view refresh for
  // appends); an empty batch is OK(). Entries apply in order, so later
  // entries may reference names an earlier Put introduced.
  Status Mutate(std::vector<Mutation> mutations) HADAD_EXCLUDES(views_mu_);

  // Read-only view of the session's data catalog. Do not hold the
  // reference across a mutation from another thread; all writes go through
  // Update/Append/Remove so every dependent layer stays consistent.
  const engine::Workspace& workspace() const { return workspace_; }
  // Read-only view of the PACB optimizer (facts, views, chase budgets).
  const pacb::Optimizer& optimizer() const { return *optimizer_; }
  // Read-only view of the execution engine (profile, evaluator).
  const engine::Engine& engine() const { return *engine_; }
  // Non-null iff normalized matrices were registered; execution then routes
  // through the Morpheus engine. Stable for the session's lifetime.
  const morpheus::MorpheusEngine* morpheus() const { return morpheus_.get(); }
  // Non-null iff SessionBuilder::Threads was called; execution then routes
  // through the parallel DAG engine (src/exec/). Stable for the session's
  // lifetime.
  const exec::Executor* executor() const { return executor_.get(); }
  // Non-null iff SessionBuilder::AdaptiveViews was called. Stable for the
  // session's lifetime; the manager's own accessors are thread-safe.
  const views::AdaptiveViewManager* adaptive() const {
    return adaptive_.get();
  }

  // Blocks until queued adaptive-view materializations are installed.
  // No-op without AdaptiveViews; tests and benchmarks use it to make the
  // warmed state deterministic. Safe to call from any thread.
  void WaitForAdaptiveViews() const;

  // Point-in-time counter snapshot (a read view over the metrics registry;
  // lock-free counter loads). Thread-safe.
  SessionStats stats() const;
  // Prometheus text exposition of every session metric (counters,
  // histograms, and gauges — the gauges are refreshed from live state
  // first: plan-cache size, thread-pool width, adaptive-view store,
  // workload-monitor population). Thread-safe.
  std::string MetricsText() const HADAD_EXCLUDES(cache_mu_);
  // The registry behind stats()/MetricsText(). Gauges are only as fresh as
  // the last MetricsText() call; counters and histograms are always live.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  // Writable registry handle: the serving layer (src/server/) registers its
  // hadad_server_* metrics here so one scrape covers the whole process.
  // Registration is internally locked; see MetricsRegistry.
  obs::MetricsRegistry& mutable_metrics() { return metrics_; }
  // Writable recorder handle (null without Tracing()): the serving layer
  // parents its per-request spans under the session recorder.
  obs::TraceRecorder* mutable_trace() { return trace_.get(); }
  // Non-null iff SessionBuilder::Tracing was called. Stable for the
  // session's lifetime; the recorder's own methods are thread-safe.
  const obs::TraceRecorder* trace() const { return trace_.get(); }
  // Writes every span recorded so far as Chrome trace-event JSON (load in
  // Perfetto / chrome://tracing). InvalidArgument when the session was
  // built without Tracing(); IoError when the file cannot be written.
  Status DumpTrace(const std::string& path) const;
  // Cached plans by canonical text. Thread-safe (shared cache lock).
  int64_t plan_cache_size() const HADAD_EXCLUDES(cache_mu_);
  // Drops every cached plan; in-flight PreparedQuery handles keep their
  // shared plan alive. Thread-safe (unique cache lock).
  void ClearPlanCache() HADAD_EXCLUDES(cache_mu_);

 private:
  friend class SessionBuilder;
  friend class PreparedQuery;
  Session() = default;

  enum class MutationKind { kUpdate, kAppend, kRemove };

  // Refresh bookkeeping for one user view restored on rollback.
  struct RefreshedView {
    std::string name;
    la::ExprPtr def;
    matrix::Matrix old_value;
  };

  // Journal entry for one applied base mutation of a Mutate batch.
  struct BaseChange {
    Mutation::Op op = Mutation::Op::kUpdate;
    std::string name;
    // Prior value for kUpdate/kRemove and Put-over-existing.
    std::optional<matrix::Matrix> old_value;
    int64_t old_rows = 0;  // kAppend: row count before the grow.
    bool added = false;    // kPut that introduced the name.
  };

  // Cache lookup by canonical text; on miss (or when the cached plan is
  // stale — view generation or a leaf epoch moved) runs the optimizer and
  // inserts. `parent` (here and below) is the enclosing trace span; child
  // spans nest under it, and kNoSpan / disabled tracing short-circuits to
  // no recording at all.
  Result<std::shared_ptr<const PreparedPlan>> GetOrBuildPlan(
      const std::string& text, bool* from_cache,
      obs::SpanId parent = obs::kNoSpan) const
      HADAD_EXCLUDES(cache_mu_, views_mu_, builds_mu_);
  // The miss path of GetOrBuildPlan: runs the optimizer (outside the cache
  // lock) and publishes the plan. Exactly one caller per canonical text is
  // in here at a time — GetOrBuildPlan coalesces the rest.
  Result<std::shared_ptr<const PreparedPlan>> BuildAndInsertPlan(
      la::ExprPtr expr, std::string canonical, obs::SpanId parent) const
      HADAD_EXCLUDES(cache_mu_, views_mu_, builds_mu_);
  // True when the plan's view generation matches and none of its recorded
  // leaf epochs moved. Lock-free fast path on the verified generation.
  bool PlanFresh(const PreparedPlan& plan) const;
  // The shared mutation path. `value` is consumed for kUpdate; `rows`
  // borrowed for kAppend.
  Status MutateLocked(const std::string& name, MutationKind kind,
                      matrix::Matrix* value, const matrix::Matrix* rows,
                      obs::SpanId parent = obs::kNoSpan)
      HADAD_REQUIRES(views_mu_);
  // The multi-entry Mutate path: validates the whole batch against a
  // simulated catalog, applies every base mutation (journaling prior state),
  // runs ONE view-refresh wave, and rolls everything back on any failure.
  // Consumes `mutations`.
  Status MutateBatchLocked(std::vector<Mutation>* mutations,
                           obs::SpanId parent) HADAD_REQUIRES(views_mu_);
  // Undoes a half-applied Mutate batch: restores refreshed view values,
  // then bases in reverse journal order, then re-derives the optimizer and
  // exec-catalog facts and view registrations from the restored state.
  void RollbackBatch(std::vector<BaseChange>* journal,
                     std::vector<RefreshedView>* refreshed)
      HADAD_REQUIRES(views_mu_);
  // Undoes a half-applied mutation of `name` after a view-refresh failure:
  // restores the refreshed views' old values and the base matrix, then
  // re-derives the dependent optimizer/exec-catalog entries.
  void RollbackMutation(const std::string& name, MutationKind kind,
                        int64_t old_rows, matrix::Matrix* old_base,
                        std::vector<RefreshedView>* refreshed,
                        bool delta_staged) HADAD_REQUIRES(views_mu_);
  // The refreshed value of user view `vname` under the mutation of `name`:
  // incremental (V + f(Δ), staging the delta rows once) when only the
  // appended leaf moved and the definition allows, full re-evaluation
  // otherwise.
  Result<matrix::Matrix> ComputeViewRefresh(const std::string& vname,
                                            const la::ExprPtr& def,
                                            bool touches_changed,
                                            const std::string& name,
                                            const matrix::Matrix* rows,
                                            bool* delta_staged)
      HADAD_REQUIRES(views_mu_);
  // Evaluates a view definition over the current workspace (Morpheus-aware).
  Result<matrix::Matrix> EvaluateDefinition(const la::ExprPtr& def) const
      HADAD_REQUIRES_SHARED(views_mu_);
  // Executes a prepared plan (rewrite.best, or `original` as stated),
  // re-deriving it first when adaptive views moved the generation, and
  // feeding the adaptive monitor afterwards.
  Result<matrix::Matrix> RunPlan(std::shared_ptr<const PreparedPlan> plan,
                                 engine::ExecStats* stats, bool original,
                                 obs::SpanId parent = obs::kNoSpan,
                                 const exec::CancelToken* cancel = nullptr)
      const HADAD_EXCLUDES(views_mu_);
  // One plan execution under the shared state hold — the Morpheus route
  // (factorized data lives inside that engine, not in a pinnable workspace
  // version) and ExplainAnalyze use it; the common DAG/tree path in RunPlan
  // executes lock-free against a pinned snapshot instead.
  Result<matrix::Matrix> ExecutePlanLocked(const PreparedPlan& plan,
                                           bool use_original,
                                           engine::ExecStats* stats,
                                           obs::SpanId parent,
                                           const exec::CancelToken* cancel =
                                               nullptr) const
      HADAD_REQUIRES_SHARED(views_mu_);
  // Raw single-expression execution; the shared hold keeps the workspace
  // from mutating mid-evaluation.
  Result<matrix::Matrix> ExecuteExpr(const la::ExprPtr& expr,
                                     engine::ExecStats* stats,
                                     obs::SpanId parent = obs::kNoSpan,
                                     const exec::CancelToken* cancel = nullptr)
      const HADAD_REQUIRES_SHARED(views_mu_);
  // Compiles an engine-planned expression on the session executor with the
  // given fusion barriers, accumulating the compiled-plans and fused-*
  // counters. executor_ non-null.
  Result<exec::CompiledPlan> CompileExpr(
      const la::ExprPtr& planned,
      const std::set<std::string>* fusion_barriers) const
      HADAD_REQUIRES_SHARED(views_mu_);
  // Profile-plans `expr` and compiles it with the current fusion barriers
  // under a "dag_compile" span — the uncached compile RunPlan and
  // ExecuteExpr share for expressions without a resident DAG. executor_
  // non-null.
  Result<exec::CompiledPlan> CompileForExecution(const la::ExprPtr& expr,
                                                 obs::SpanId parent) const
      HADAD_REQUIRES_SHARED(views_mu_);
  // The cached physical DAG for plan.rewrite.best (compiles on first use).
  Result<std::shared_ptr<const exec::CompiledPlan>> GetOrCompile(
      const PreparedPlan& plan, obs::SpanId parent = obs::kNoSpan) const
      HADAD_REQUIRES_SHARED(views_mu_);
  // Backs PreparedQuery::ExplainAnalyze: executes the rewriting with stats
  // (and kernel spans when tracing) and renders the measured report.
  Result<std::string> ExplainAnalyzePlan(const PreparedPlan& plan) const
      HADAD_EXCLUDES(views_mu_);
  // Stamps a fresh query id + the query text onto a root "session" span
  // (no-op when tracing is off).
  void AnnotateRoot(const obs::ScopedSpan& root,
                    const std::string& query) const;

  // The workspace is multi-version (MVCC): mutations install new versions
  // under the unique views_mu_ hold; queries pin a snapshot under a shared
  // hold and then read it with no session lock at all (the Workspace's own
  // internal mutex guards only the version-chain bookkeeping). It is not
  // GUARDED_BY-annotated: its epoch/generation surface is read lock-free
  // (e.g. PlanFresh), and the public workspace() accessor hands out
  // read-only references. The annotated boundary is the catalogs/views
  // below.
  engine::Workspace workspace_;
  std::unique_ptr<pacb::Optimizer> optimizer_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<morpheus::MorpheusEngine> morpheus_;
  std::unique_ptr<exec::Executor> executor_;
  // User views in registration order (later definitions may reference
  // earlier names), for maintenance under mutation.
  std::vector<std::pair<std::string, la::ExprPtr>> user_views_
      HADAD_GUARDED_BY(views_mu_);
  // Names bound into Morpheus declarations (join members, normalized
  // matrices): immutable — the declared relationships would silently break.
  std::set<std::string> morpheus_names_ HADAD_GUARDED_BY(views_mu_);
  int64_t flag_detect_limit_ = 0;
  // Leaf metadata (shapes + exact nnz, views included) handed to the plan
  // compiler so Execute never rescans the workspace. Data mutations, view
  // refreshes, and adaptive install/evict all write through it.
  la::MetaCatalog exec_catalog_ HADAD_GUARDED_BY(views_mu_);

  mutable common::SharedMutex cache_mu_;
  mutable std::unordered_map<std::string, std::shared_ptr<const PreparedPlan>>
      plan_cache_ HADAD_GUARDED_BY(cache_mu_);

  // One in-flight plan derivation; concurrent misses on the same canonical
  // text share it — the leader runs RW_find, followers wait on `cv` and
  // then re-read the cache (the serving-layer thundering-herd guard).
  // Never held together with cache_mu_ or views_mu_.
  struct PlanBuild {
    common::Mutex mu;
    common::CondVar cv;
    bool done HADAD_GUARDED_BY(mu) = false;
  };
  mutable common::Mutex builds_mu_;
  mutable std::unordered_map<std::string, std::shared_ptr<PlanBuild>>
      plan_builds_ HADAD_GUARDED_BY(builds_mu_);

  // Observability. The counter/gauge/histogram handles point into
  // metrics_, are registered once at Build() (docs/OBSERVABILITY.md
  // catalogs them; scripts/check_invariants.py diffs the two), and are
  // updated lock-free from any thread. SessionStats is a read view over
  // the counters. trace_ is null unless SessionBuilder::Tracing was called
  // — the disabled path is one null check per hook, no allocation.
  obs::MetricsRegistry metrics_;
  obs::Counter* prepares_ = nullptr;
  obs::Counter* cache_hits_ = nullptr;
  obs::Counter* cache_misses_ = nullptr;
  obs::Counter* coalesced_builds_ = nullptr;
  obs::Counter* runs_ = nullptr;
  obs::Counter* compiled_plans_ = nullptr;
  obs::Counter* fused_nodes_ = nullptr;
  obs::Counter* fused_ops_eliminated_ = nullptr;
  obs::Counter* mutations_ = nullptr;
  // Mirrors engine::Workspace::RetiredTotal() into the exposition
  // (AdvanceTo CAS-max — concurrent MetricsText calls converge).
  obs::Counter* workspace_retired_ = nullptr;
  obs::Histogram* run_seconds_ = nullptr;
  obs::Histogram* prepare_seconds_ = nullptr;
  obs::Gauge* plan_cache_gauge_ = nullptr;
  obs::Gauge* threads_gauge_ = nullptr;
  obs::Gauge* adaptive_views_gauge_ = nullptr;
  obs::Gauge* adaptive_bytes_gauge_ = nullptr;
  obs::Gauge* adaptive_budget_gauge_ = nullptr;
  obs::Gauge* monitor_tracked_gauge_ = nullptr;
  obs::Gauge* kernel_tier_gauge_ = nullptr;
  obs::Gauge* workspace_versions_gauge_ = nullptr;
  obs::Gauge* pinned_snapshots_gauge_ = nullptr;
  std::unique_ptr<obs::TraceRecorder> trace_;
  // Monotone id stamped on root spans, so every span tree in a dumped
  // trace joins back to one top-level query.
  mutable std::atomic<int64_t> query_seq_{0};

  // The session state lock: views_mu_ guards the mutable session state
  // (optimizer facts and views, exec_catalog_, and the workspace's live
  // name→version binding). Optimization and plan compilation take it
  // shared; data mutation and view install/evict/refresh take it unique.
  // Query EXECUTION does not hold it at all: RunPlan pins an MVCC workspace
  // snapshot under a brief shared hold and runs lock-free against the
  // pinned versions — writers never block readers, and snapshot isolation
  // holds because pinned versions are immutable. view_generation_
  // increments on every view-set change; plans remember the generation they
  // were derived under (per-leaf data staleness is tracked separately via
  // workspace epochs).
  mutable common::SharedMutex views_mu_;
  mutable std::atomic<int64_t> view_generation_{0};
  // Declared last: destroyed first, joining background materializations
  // while the state they touch is still alive.
  std::unique_ptr<views::AdaptiveViewManager> adaptive_;
};

// Fluent configuration for a Session. Declare data, views, Morpheus joins,
// estimator/engine choices, and extra MMC constraints, then Build() turns
// them into a live Session (base data stays mutable through
// Session::Update/Append/Remove):
//
//   auto session = api::SessionBuilder()
//                      .Put("X", x).Put("y", y)
//                      .AddView("V", "inv(X)")
//                      .SetEstimator(pacb::EstimatorKind::kMnc)
//                      .Build();
//
// Configuration errors (bad view definitions, duplicate names, unknown
// Morpheus operands) are deferred to Build(), which returns the first
// failure as a Status. A builder is single-use: Build() consumes it.
class SessionBuilder {
 public:
  SessionBuilder() = default;

  // Binds matrix `name` in the session workspace (base data).
  SessionBuilder& Put(std::string name, matrix::Matrix m);

  // Registers a materialized view: `definition_text` is evaluated once at
  // Build() (materialized into the workspace) and registered with the
  // optimizer so rewritings may answer queries from it. Views may reference
  // earlier views.
  SessionBuilder& AddView(std::string name, std::string definition_text);

  // Declares m = [t | k u] so the Morpheus factorization rules fire on
  // expressions over `m` (§9.2). All four names must be bound.
  SessionBuilder& AddMorpheusJoin(pacb::MorpheusJoinDecl decl);

  // Registers `name` as a normalized (factorized) matrix. Execution then
  // routes through the Morpheus engine, which pushes operators through the
  // factorization where its rules allow.
  SessionBuilder& AddNormalizedMatrix(std::string name,
                                      morpheus::NormalizedMatrix nm);

  // Routes execution through the parallel DAG engine (src/exec/): plans are
  // compiled to a physical operator DAG (CSE + blocked kernels) and
  // scheduled on a session-owned pool of `n` threads (0 = one per hardware
  // core; 1 = sequential DAG execution, still with CSE). Without this call
  // the session keeps the single-threaded tree-walking evaluator. Sessions
  // with normalized (Morpheus) matrices keep the Morpheus engine regardless.
  SessionBuilder& Threads(int n);

  // Turns on span tracing (src/obs/): Run/Prepare/mutations become root
  // spans with children for plan-cache lookups, rewrite derivation, DAG
  // compilation, per-operator kernel execution, and view maintenance —
  // exported as Chrome trace-event JSON via Session::DumpTrace. Without
  // this call the session has no recorder at all and every hook is a null
  // check.
  SessionBuilder& Tracing(obs::TraceOptions options = {});

  // Turns on the adaptive materialized-view subsystem (src/views/): the
  // session monitors executed plans, and subexpressions recomputed at least
  // `min_hits` times are materialized in the background (within
  // `budget_bytes`, with benefit-weighted eviction) and registered so later
  // rewrites answer from them — exactly like user views, no query changes.
  SessionBuilder& AdaptiveViews(int64_t budget_bytes, int64_t min_hits);
  // Full control (materialization mode, store caps, sweep width).
  SessionBuilder& AdaptiveViews(views::AdaptiveOptions options);

  // Sparsity estimator for the cost model γ (default: naive metadata).
  SessionBuilder& SetEstimator(pacb::EstimatorKind kind);
  // Execution profile (default: kNaive, run-as-stated).
  SessionBuilder& SetProfile(engine::Profile profile);
  // Full optimizer control (chase budgets, pruning, rewrite caps). A later
  // SetEstimator() still wins for the estimator field.
  SessionBuilder& SetOptimizerOptions(pacb::OptimizerOptions options);
  // Extends the MMC constraint knowledge base (§1's extensibility contract).
  SessionBuilder& AddConstraints(std::vector<chase::Constraint> constraints);
  // Detect structural flags (triangular/orthogonal/SPD) for square matrices
  // up to `limit` rows when building the metadata catalog.
  SessionBuilder& SetFlagDetectLimit(int64_t limit);

  Result<std::shared_ptr<Session>> Build();

 private:
  struct PendingView {
    std::string name;
    std::string text;
  };

  std::vector<std::pair<std::string, matrix::Matrix>> matrices_;
  std::vector<PendingView> views_;
  std::vector<pacb::MorpheusJoinDecl> morpheus_joins_;
  std::vector<std::pair<std::string, morpheus::NormalizedMatrix>> normalized_;
  std::vector<chase::Constraint> constraints_;
  pacb::OptimizerOptions options_;
  std::optional<pacb::EstimatorKind> estimator_;
  std::optional<int> exec_threads_;
  std::optional<views::AdaptiveOptions> adaptive_;
  std::optional<obs::TraceOptions> tracing_;
  engine::Profile profile_ = engine::Profile::kNaive;
  int64_t flag_detect_limit_ = 0;
  bool built_ = false;
};

}  // namespace hadad::api

#endif  // HADAD_API_SESSION_H_
