#include "api/session.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <sstream>

#include "engine/evaluator.h"
#include "la/parser.h"

namespace hadad::api {

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

Result<matrix::Matrix> PreparedQuery::Execute(engine::ExecStats* stats) const {
  return session_->RunPlan(plan_, stats, /*original=*/false);
}

Result<matrix::Matrix> PreparedQuery::ExecuteOriginal(
    engine::ExecStats* stats) const {
  return session_->RunPlan(plan_, stats, /*original=*/true);
}

std::string PreparedQuery::Explain() const {
  const pacb::RewriteResult& rw = plan_->rewrite;
  std::ostringstream out;
  out << "pipeline:  " << plan_->canonical << "\n";
  out << "  γ estimate " << rw.original_cost << "\n";
  if (rw.improved) {
    out << "rewriting: " << la::ToString(rw.best) << "\n";
    out << "  γ estimate " << rw.best_cost << "\n";
  } else {
    out << "rewriting: (already optimal as stated)\n";
  }
  out << "RW_find:   " << rw.optimize_seconds * 1e3 << " ms";
  out << "  (chase: " << rw.chase_stats.rounds << " rounds, "
      << rw.chase_stats.tgd_applications << " TGD applications, "
      << rw.chase_stats.facts_added << " facts, "
      << rw.chase_stats.pruned_applications << " pruned";
  if (rw.chase_stats.budget_exhausted) out << ", budget exhausted";
  out << ")\n";
  out << "alternatives: " << rw.rewrites.size() << " equivalent rewriting"
      << (rw.rewrites.size() == 1 ? "" : "s") << "\n";
  constexpr size_t kMaxListed = 5;
  for (size_t i = 0; i < rw.rewrites.size() && i < kMaxListed; ++i) {
    out << "  " << (i + 1) << ". " << la::ToString(rw.rewrites[i]) << "\n";
  }
  if (rw.rewrites.size() > kMaxListed) {
    out << "  ... " << rw.rewrites.size() - kMaxListed << " more\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const PreparedPlan>> Session::GetOrBuildPlan(
    const std::string& text, bool* from_cache) const {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr expr, la::ParseExpression(text));
  std::string canonical = la::ToString(expr);
  // Snapshot the view generation before optimizing: a view that lands
  // mid-optimize leaves the plan stamped stale, so its next use re-derives.
  const int64_t generation = view_generation_.load(std::memory_order_acquire);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = plan_cache_.find(canonical);
    if (it != plan_cache_.end() && it->second->generation == generation) {
      ++cache_hits_;
      *from_cache = true;
      return it->second;
    }
  }
  ++cache_misses_;
  // Optimize outside the cache lock: RW_find dominates, and concurrent
  // misses on different expressions must not serialize. Adaptive sessions
  // hold the state lock shared so views cannot be dropped mid-optimize.
  Result<pacb::RewriteResult> rewrite = [&]() -> Result<pacb::RewriteResult> {
    std::shared_lock<std::shared_mutex> state(views_mu_, std::defer_lock);
    if (adaptive_ != nullptr) state.lock();
    return optimizer_->Optimize(expr);
  }();
  if (!rewrite.ok()) return rewrite.status();
  auto plan = std::make_shared<PreparedPlan>();
  plan->canonical = std::move(canonical);
  plan->original = std::move(expr);
  plan->rewrite = std::move(rewrite).value();
  plan->generation = generation;
  ++prepares_;
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  // Two threads may have optimized the same expression concurrently; first
  // insertion wins so every holder shares one plan — unless ours was derived
  // under a newer view generation, which supersedes the cached one.
  auto [it, inserted] = plan_cache_.try_emplace(plan->canonical, plan);
  if (!inserted && it->second->generation < plan->generation) {
    it->second = plan;
  }
  *from_cache = false;
  return it->second;
}

Result<matrix::Matrix> Session::ExecuteExpr(const la::ExprPtr& expr,
                                            engine::ExecStats* stats) const {
  if (morpheus_ != nullptr) return morpheus_->Run(expr, stats);
  if (executor_ != nullptr) {
    // Respect the engine profile (kSmart applies its internal rewrites
    // before execution), then hand the plan to the parallel DAG engine.
    HADAD_ASSIGN_OR_RETURN(la::ExprPtr planned, engine_->Plan(expr));
    ++compiled_plans_;
    return executor_->Run(planned, workspace_, stats, &exec_catalog_);
  }
  return engine_->Run(expr, stats);
}

Result<std::shared_ptr<const exec::CompiledPlan>> Session::GetOrCompile(
    const PreparedPlan& plan) const {
  {
    std::lock_guard<std::mutex> lock(plan.compile_mu);
    if (plan.compiled != nullptr) return plan.compiled;
  }
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr planned,
                         engine_->Plan(plan.rewrite.best));
  HADAD_ASSIGN_OR_RETURN(
      exec::CompiledPlan compiled,
      executor_->Compile(planned, workspace_, &exec_catalog_));
  ++compiled_plans_;
  std::lock_guard<std::mutex> lock(plan.compile_mu);
  if (plan.compiled == nullptr) {
    plan.compiled =
        std::make_shared<const exec::CompiledPlan>(std::move(compiled));
  }
  return plan.compiled;
}

Result<matrix::Matrix> Session::RunPlan(
    std::shared_ptr<const PreparedPlan> plan, engine::ExecStats* stats,
    bool original) const {
  const bool adaptive = adaptive_ != nullptr;
  // A plan derived before the last view install/evict may miss the new view
  // (or reference an evicted one): re-derive through the cache, bounded in
  // case the view set keeps churning.
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    if (adaptive && !original &&
        plan->generation != view_generation_.load(std::memory_order_acquire)) {
      bool from_cache = false;
      auto fresh = GetOrBuildPlan(plan->canonical, &from_cache);
      if (fresh.ok()) plan = std::move(*fresh);
    }
    std::shared_lock<std::shared_mutex> state(views_mu_, std::defer_lock);
    if (adaptive) state.lock();
    // Under the shared lock the view set cannot move: a generation match
    // means every view the rewrite references is installed.
    const bool stale =
        adaptive && !original &&
        plan->generation != view_generation_.load(std::memory_order_acquire);
    if (stale && attempt + 1 < kMaxAttempts) continue;
    // Extreme-churn fallback: the original expression references only
    // session-durable names, so it always executes.
    const bool use_original = original || stale;

    engine::ExecStats local_stats;
    engine::ExecStats* exec_stats =
        stats != nullptr ? stats
                         : (adaptive && !original ? &local_stats : nullptr);
    Result<matrix::Matrix> result = [&]() -> Result<matrix::Matrix> {
      if (use_original) return ExecuteExpr(plan->original, exec_stats);
      if (morpheus_ == nullptr && executor_ != nullptr) {
        // Hit path for executor sessions: reuse the physical DAG cached in
        // the plan instead of recompiling it.
        auto compiled = GetOrCompile(*plan);
        if (!compiled.ok()) return compiled.status();
        return executor_->RunCompiled(**compiled, workspace_, exec_stats);
      }
      return ExecuteExpr(plan->rewrite.best, exec_stats);
    }();

    if (adaptive && !original && result.ok()) {
      state.unlock();  // OnExecution takes the state lock itself.
      adaptive_->OnExecution(
          use_original ? plan->original : plan->rewrite.best, exec_stats);
    }
    return result;
  }
}

Result<PreparedQuery> Session::Prepare(const std::string& text) const {
  bool from_cache = false;
  HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         GetOrBuildPlan(text, &from_cache));
  return PreparedQuery(shared_from_this(), std::move(plan), from_cache);
}

Result<matrix::Matrix> Session::Run(const std::string& text,
                                    engine::ExecStats* stats) const {
  bool from_cache = false;
  HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         GetOrBuildPlan(text, &from_cache));
  ++runs_;
  return RunPlan(std::move(plan), stats, /*original=*/false);
}

void Session::WaitForAdaptiveViews() const {
  if (adaptive_ != nullptr) adaptive_->Drain();
}

SessionStats Session::stats() const {
  SessionStats s;
  s.prepares = prepares_.load();
  s.cache_hits = cache_hits_.load();
  s.cache_misses = cache_misses_.load();
  s.runs = runs_.load();
  s.compiled_plans = compiled_plans_.load();
  if (adaptive_ != nullptr) {
    views::AdaptiveViewStats a = adaptive_->stats();
    s.adaptive_views_created = a.views_created;
    s.adaptive_views_evicted = a.views_evicted;
    s.adaptive_view_hit_runs = a.view_hit_runs;
    s.adaptive_bytes_in_use = a.bytes_in_use;
    s.adaptive_budget_bytes = a.budget_bytes;
  }
  return s;
}

int64_t Session::plan_cache_size() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  return static_cast<int64_t>(plan_cache_.size());
}

void Session::ClearPlanCache() {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  plan_cache_.clear();
}

// ---------------------------------------------------------------------------
// SessionBuilder
// ---------------------------------------------------------------------------

SessionBuilder& SessionBuilder::Put(std::string name, matrix::Matrix m) {
  matrices_.emplace_back(std::move(name), std::move(m));
  return *this;
}

SessionBuilder& SessionBuilder::AddView(std::string name,
                                        std::string definition_text) {
  views_.push_back(PendingView{std::move(name), std::move(definition_text)});
  return *this;
}

SessionBuilder& SessionBuilder::AddMorpheusJoin(pacb::MorpheusJoinDecl decl) {
  morpheus_joins_.push_back(std::move(decl));
  return *this;
}

SessionBuilder& SessionBuilder::AddNormalizedMatrix(
    std::string name, morpheus::NormalizedMatrix nm) {
  normalized_.emplace_back(std::move(name), std::move(nm));
  return *this;
}

SessionBuilder& SessionBuilder::Threads(int n) {
  exec_threads_ = n;
  return *this;
}

SessionBuilder& SessionBuilder::AdaptiveViews(int64_t budget_bytes,
                                              int64_t min_hits) {
  views::AdaptiveOptions options;
  options.budget_bytes = budget_bytes;
  options.min_hits = min_hits;
  return AdaptiveViews(options);
}

SessionBuilder& SessionBuilder::AdaptiveViews(views::AdaptiveOptions options) {
  adaptive_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::SetEstimator(pacb::EstimatorKind kind) {
  estimator_ = kind;
  return *this;
}

SessionBuilder& SessionBuilder::SetProfile(engine::Profile profile) {
  profile_ = profile;
  return *this;
}

SessionBuilder& SessionBuilder::SetOptimizerOptions(
    pacb::OptimizerOptions options) {
  options_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::AddConstraints(
    std::vector<chase::Constraint> constraints) {
  for (chase::Constraint& c : constraints) {
    constraints_.push_back(std::move(c));
  }
  return *this;
}

SessionBuilder& SessionBuilder::SetFlagDetectLimit(int64_t limit) {
  flag_detect_limit_ = limit;
  return *this;
}

Result<std::shared_ptr<Session>> SessionBuilder::Build() {
  if (built_) {
    return Status::InvalidArgument(
        "SessionBuilder::Build() already called; builders are single-use");
  }
  built_ = true;

  // Every bound name — base matrix, view, normalized matrix — must be
  // distinct; catching collisions here beats a confusing late failure.
  std::set<std::string> names;
  auto claim = [&names](const std::string& name,
                        const char* what) -> Status {
    if (name.empty()) {
      return Status::InvalidArgument(std::string(what) + " with empty name");
    }
    if (!names.insert(name).second) {
      return Status::InvalidArgument("name '" + name +
                                     "' bound more than once in the session");
    }
    return Status::OK();
  };
  for (const auto& [name, m] : matrices_) {
    HADAD_RETURN_IF_ERROR(claim(name, "matrix"));
  }
  for (const PendingView& v : views_) {
    HADAD_RETURN_IF_ERROR(claim(v.name, "view"));
  }
  for (const auto& [name, nm] : normalized_) {
    HADAD_RETURN_IF_ERROR(claim(name, "normalized matrix"));
  }

  auto session = std::shared_ptr<Session>(new Session());
  for (auto& [name, m] : matrices_) {
    session->workspace_.Put(name, std::move(m));
  }

  // The optimizer's base catalog: stored matrices plus the shapes of any
  // normalized matrices (their data lives in the Morpheus engine, not the
  // workspace). View shapes are registered below by AddView itself.
  la::MetaCatalog catalog =
      session->workspace_.BuildMetaCatalog(flag_detect_limit_);
  if (!normalized_.empty()) {
    session->morpheus_ =
        std::make_unique<morpheus::MorpheusEngine>(&session->workspace_);
    for (auto& [name, nm] : normalized_) {
      la::MatrixMeta meta;
      meta.rows = nm.rows();
      meta.cols = nm.cols();
      meta.nnz = static_cast<double>(nm.rows()) *
                 static_cast<double>(nm.cols());
      catalog[name] = meta;
      session->morpheus_->Register(name, std::move(nm));
    }
  }

  pacb::OptimizerOptions options = options_;
  if (estimator_.has_value()) options.estimator = *estimator_;
  session->optimizer_ =
      std::make_unique<pacb::Optimizer>(std::move(catalog), options);
  session->optimizer_->SetData(&session->workspace_.data());

  // Materialize views into the workspace (so execution can scan them) and
  // register their definitions with the optimizer (so rewritings can reach
  // them). Later views may reference earlier ones; definitions over
  // normalized matrices evaluate through the Morpheus engine.
  for (const PendingView& v : views_) {
    auto def = la::ParseExpression(v.text);
    if (!def.ok()) {
      return Status(def.status().code(), "view '" + v.name +
                                             "': " + def.status().message());
    }
    Result<matrix::Matrix> value =
        session->morpheus_ != nullptr
            ? session->morpheus_->Run(def.value())
            : engine::Execute(*def.value(), session->workspace_);
    if (!value.ok()) {
      return Status(value.status().code(),
                    "view '" + v.name + "': " + value.status().message());
    }
    session->workspace_.Put(v.name, std::move(value).value());
    HADAD_RETURN_IF_ERROR(session->optimizer_->AddView(v.name, def.value()));
  }

  for (const pacb::MorpheusJoinDecl& decl : morpheus_joins_) {
    HADAD_RETURN_IF_ERROR(session->optimizer_->AddMorpheusJoin(decl));
  }
  if (!constraints_.empty()) {
    session->optimizer_->AddConstraints(std::move(constraints_));
  }

  session->engine_ = std::make_unique<engine::Engine>(profile_,
                                                      &session->workspace_);
  if (exec_threads_.has_value()) {
    engine::ExecOptions exec_options;
    exec_options.threads = *exec_threads_;
    session->executor_ = std::make_unique<exec::Executor>(exec_options);
    // Rebuild after view materialization so view leaves resolve without a
    // per-query workspace scan.
    session->exec_catalog_ = session->workspace_.BuildMetaCatalog();
  }

  if (adaptive_.has_value()) {
    std::unique_ptr<cost::SparsityEstimator> advisor_estimator;
    if (estimator_.has_value() && *estimator_ == pacb::EstimatorKind::kMnc) {
      advisor_estimator = std::make_unique<cost::MncEstimator>();
    } else {
      advisor_estimator = std::make_unique<cost::NaiveMetadataEstimator>();
    }
    views::AdaptiveViewManager::Host host;
    Session* raw = session.get();  // The manager is a member; never outlives.
    host.workspace = &raw->workspace_;
    host.optimizer = raw->optimizer_.get();
    host.exec_catalog =
        exec_threads_.has_value() ? &raw->exec_catalog_ : nullptr;
    host.state_mu = &raw->views_mu_;
    host.evaluate = [raw](const la::ExprPtr& def) -> Result<matrix::Matrix> {
      if (raw->morpheus_ != nullptr) return raw->morpheus_->Run(def);
      return engine::Execute(*def, raw->workspace_);
    };
    host.on_views_changed = [raw] {
      raw->view_generation_.fetch_add(1, std::memory_order_release);
    };
    session->adaptive_ = std::make_unique<views::AdaptiveViewManager>(
        std::move(host), *adaptive_, std::move(advisor_estimator));
  }
  return session;
}

}  // namespace hadad::api
