#include "api/session.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <sstream>

#include "engine/evaluator.h"
#include "la/parser.h"

namespace hadad::api {

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

Result<matrix::Matrix> PreparedQuery::Execute(engine::ExecStats* stats) const {
  return session_->ExecuteExpr(plan_->rewrite.best, stats);
}

Result<matrix::Matrix> PreparedQuery::ExecuteOriginal(
    engine::ExecStats* stats) const {
  return session_->ExecuteExpr(plan_->original, stats);
}

std::string PreparedQuery::Explain() const {
  const pacb::RewriteResult& rw = plan_->rewrite;
  std::ostringstream out;
  out << "pipeline:  " << plan_->canonical << "\n";
  out << "  γ estimate " << rw.original_cost << "\n";
  if (rw.improved) {
    out << "rewriting: " << la::ToString(rw.best) << "\n";
    out << "  γ estimate " << rw.best_cost << "\n";
  } else {
    out << "rewriting: (already optimal as stated)\n";
  }
  out << "RW_find:   " << rw.optimize_seconds * 1e3 << " ms";
  out << "  (chase: " << rw.chase_stats.rounds << " rounds, "
      << rw.chase_stats.tgd_applications << " TGD applications, "
      << rw.chase_stats.facts_added << " facts, "
      << rw.chase_stats.pruned_applications << " pruned";
  if (rw.chase_stats.budget_exhausted) out << ", budget exhausted";
  out << ")\n";
  out << "alternatives: " << rw.rewrites.size() << " equivalent rewriting"
      << (rw.rewrites.size() == 1 ? "" : "s") << "\n";
  constexpr size_t kMaxListed = 5;
  for (size_t i = 0; i < rw.rewrites.size() && i < kMaxListed; ++i) {
    out << "  " << (i + 1) << ". " << la::ToString(rw.rewrites[i]) << "\n";
  }
  if (rw.rewrites.size() > kMaxListed) {
    out << "  ... " << rw.rewrites.size() - kMaxListed << " more\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const PreparedPlan>> Session::GetOrBuildPlan(
    const std::string& text, bool* from_cache) const {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr expr, la::ParseExpression(text));
  std::string canonical = la::ToString(expr);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mu_);
    auto it = plan_cache_.find(canonical);
    if (it != plan_cache_.end()) {
      ++cache_hits_;
      *from_cache = true;
      return it->second;
    }
  }
  ++cache_misses_;
  // Optimize outside any lock: RW_find dominates, and concurrent misses on
  // different expressions must not serialize.
  HADAD_ASSIGN_OR_RETURN(pacb::RewriteResult rewrite,
                         optimizer_->Optimize(expr));
  auto plan = std::make_shared<PreparedPlan>();
  plan->canonical = std::move(canonical);
  plan->original = std::move(expr);
  plan->rewrite = std::move(rewrite);
  ++prepares_;
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  // Two threads may have optimized the same expression concurrently; first
  // insertion wins so every holder shares one plan.
  auto [it, inserted] = plan_cache_.emplace(plan->canonical, plan);
  *from_cache = false;
  return it->second;
}

Result<matrix::Matrix> Session::ExecuteExpr(const la::ExprPtr& expr,
                                            engine::ExecStats* stats) const {
  if (morpheus_ != nullptr) return morpheus_->Run(expr, stats);
  if (executor_ != nullptr) {
    // Respect the engine profile (kSmart applies its internal rewrites
    // before execution), then hand the plan to the parallel DAG engine.
    HADAD_ASSIGN_OR_RETURN(la::ExprPtr planned, engine_->Plan(expr));
    return executor_->Run(planned, workspace_, stats, &exec_catalog_);
  }
  return engine_->Run(expr, stats);
}

Result<PreparedQuery> Session::Prepare(const std::string& text) const {
  bool from_cache = false;
  HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         GetOrBuildPlan(text, &from_cache));
  return PreparedQuery(shared_from_this(), std::move(plan), from_cache);
}

Result<matrix::Matrix> Session::Run(const std::string& text,
                                    engine::ExecStats* stats) const {
  bool from_cache = false;
  HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         GetOrBuildPlan(text, &from_cache));
  ++runs_;
  return ExecuteExpr(plan->rewrite.best, stats);
}

SessionStats Session::stats() const {
  SessionStats s;
  s.prepares = prepares_.load();
  s.cache_hits = cache_hits_.load();
  s.cache_misses = cache_misses_.load();
  s.runs = runs_.load();
  return s;
}

int64_t Session::plan_cache_size() const {
  std::shared_lock<std::shared_mutex> lock(cache_mu_);
  return static_cast<int64_t>(plan_cache_.size());
}

void Session::ClearPlanCache() {
  std::unique_lock<std::shared_mutex> lock(cache_mu_);
  plan_cache_.clear();
}

// ---------------------------------------------------------------------------
// SessionBuilder
// ---------------------------------------------------------------------------

SessionBuilder& SessionBuilder::Put(std::string name, matrix::Matrix m) {
  matrices_.emplace_back(std::move(name), std::move(m));
  return *this;
}

SessionBuilder& SessionBuilder::AddView(std::string name,
                                        std::string definition_text) {
  views_.push_back(PendingView{std::move(name), std::move(definition_text)});
  return *this;
}

SessionBuilder& SessionBuilder::AddMorpheusJoin(pacb::MorpheusJoinDecl decl) {
  morpheus_joins_.push_back(std::move(decl));
  return *this;
}

SessionBuilder& SessionBuilder::AddNormalizedMatrix(
    std::string name, morpheus::NormalizedMatrix nm) {
  normalized_.emplace_back(std::move(name), std::move(nm));
  return *this;
}

SessionBuilder& SessionBuilder::Threads(int n) {
  exec_threads_ = n;
  return *this;
}

SessionBuilder& SessionBuilder::SetEstimator(pacb::EstimatorKind kind) {
  estimator_ = kind;
  return *this;
}

SessionBuilder& SessionBuilder::SetProfile(engine::Profile profile) {
  profile_ = profile;
  return *this;
}

SessionBuilder& SessionBuilder::SetOptimizerOptions(
    pacb::OptimizerOptions options) {
  options_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::AddConstraints(
    std::vector<chase::Constraint> constraints) {
  for (chase::Constraint& c : constraints) {
    constraints_.push_back(std::move(c));
  }
  return *this;
}

SessionBuilder& SessionBuilder::SetFlagDetectLimit(int64_t limit) {
  flag_detect_limit_ = limit;
  return *this;
}

Result<std::shared_ptr<Session>> SessionBuilder::Build() {
  if (built_) {
    return Status::InvalidArgument(
        "SessionBuilder::Build() already called; builders are single-use");
  }
  built_ = true;

  // Every bound name — base matrix, view, normalized matrix — must be
  // distinct; catching collisions here beats a confusing late failure.
  std::set<std::string> names;
  auto claim = [&names](const std::string& name,
                        const char* what) -> Status {
    if (name.empty()) {
      return Status::InvalidArgument(std::string(what) + " with empty name");
    }
    if (!names.insert(name).second) {
      return Status::InvalidArgument("name '" + name +
                                     "' bound more than once in the session");
    }
    return Status::OK();
  };
  for (const auto& [name, m] : matrices_) {
    HADAD_RETURN_IF_ERROR(claim(name, "matrix"));
  }
  for (const PendingView& v : views_) {
    HADAD_RETURN_IF_ERROR(claim(v.name, "view"));
  }
  for (const auto& [name, nm] : normalized_) {
    HADAD_RETURN_IF_ERROR(claim(name, "normalized matrix"));
  }

  auto session = std::shared_ptr<Session>(new Session());
  for (auto& [name, m] : matrices_) {
    session->workspace_.Put(name, std::move(m));
  }

  // The optimizer's base catalog: stored matrices plus the shapes of any
  // normalized matrices (their data lives in the Morpheus engine, not the
  // workspace). View shapes are registered below by AddView itself.
  la::MetaCatalog catalog =
      session->workspace_.BuildMetaCatalog(flag_detect_limit_);
  if (!normalized_.empty()) {
    session->morpheus_ =
        std::make_unique<morpheus::MorpheusEngine>(&session->workspace_);
    for (auto& [name, nm] : normalized_) {
      la::MatrixMeta meta;
      meta.rows = nm.rows();
      meta.cols = nm.cols();
      meta.nnz = static_cast<double>(nm.rows()) *
                 static_cast<double>(nm.cols());
      catalog[name] = meta;
      session->morpheus_->Register(name, std::move(nm));
    }
  }

  pacb::OptimizerOptions options = options_;
  if (estimator_.has_value()) options.estimator = *estimator_;
  session->optimizer_ =
      std::make_unique<pacb::Optimizer>(std::move(catalog), options);
  session->optimizer_->SetData(&session->workspace_.data());

  // Materialize views into the workspace (so execution can scan them) and
  // register their definitions with the optimizer (so rewritings can reach
  // them). Later views may reference earlier ones; definitions over
  // normalized matrices evaluate through the Morpheus engine.
  for (const PendingView& v : views_) {
    auto def = la::ParseExpression(v.text);
    if (!def.ok()) {
      return Status(def.status().code(), "view '" + v.name +
                                             "': " + def.status().message());
    }
    Result<matrix::Matrix> value =
        session->morpheus_ != nullptr
            ? session->morpheus_->Run(def.value())
            : engine::Execute(*def.value(), session->workspace_);
    if (!value.ok()) {
      return Status(value.status().code(),
                    "view '" + v.name + "': " + value.status().message());
    }
    session->workspace_.Put(v.name, std::move(value).value());
    HADAD_RETURN_IF_ERROR(session->optimizer_->AddView(v.name, def.value()));
  }

  for (const pacb::MorpheusJoinDecl& decl : morpheus_joins_) {
    HADAD_RETURN_IF_ERROR(session->optimizer_->AddMorpheusJoin(decl));
  }
  if (!constraints_.empty()) {
    session->optimizer_->AddConstraints(std::move(constraints_));
  }

  session->engine_ = std::make_unique<engine::Engine>(profile_,
                                                      &session->workspace_);
  if (exec_threads_.has_value()) {
    engine::ExecOptions exec_options;
    exec_options.threads = *exec_threads_;
    session->executor_ = std::make_unique<exec::Executor>(exec_options);
    // Rebuild after view materialization so view leaves resolve without a
    // per-query workspace scan.
    session->exec_catalog_ = session->workspace_.BuildMetaCatalog();
  }
  return session;
}

}  // namespace hadad::api
