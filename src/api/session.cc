#include "api/session.h"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "common/mutex.h"
#include "common/timer.h"
#include "engine/evaluator.h"
#include "la/parser.h"
#include "matrix/simd.h"
#include "obs/explain.h"
#include "views/maintenance.h"

namespace hadad::api {

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

Result<matrix::Matrix> PreparedQuery::Execute(engine::ExecStats* stats) const {
  return session_->RunPlan(plan_, stats, /*original=*/false);
}

Result<matrix::Matrix> PreparedQuery::ExecuteOriginal(
    engine::ExecStats* stats) const {
  return session_->RunPlan(plan_, stats, /*original=*/true);
}

Result<std::string> PreparedQuery::ExplainAnalyze() const {
  return session_->ExplainAnalyzePlan(*plan_);
}

std::string PreparedQuery::Explain() const {
  const pacb::RewriteResult& rw = plan_->rewrite;
  std::ostringstream out;
  out << "pipeline:  " << plan_->canonical << "\n";
  out << "  γ estimate " << rw.original_cost << "\n";
  if (rw.improved) {
    out << "rewriting: " << la::ToString(rw.best) << "\n";
    out << "  γ estimate " << rw.best_cost << "\n";
  } else {
    out << "rewriting: (already optimal as stated)\n";
  }
  out << "RW_find:   " << rw.optimize_seconds * 1e3 << " ms";
  out << "  (chase: " << rw.chase_stats.rounds << " rounds, "
      << rw.chase_stats.tgd_applications << " TGD applications, "
      << rw.chase_stats.facts_added << " facts, "
      << rw.chase_stats.pruned_applications << " pruned";
  if (rw.chase_stats.budget_exhausted) out << ", budget exhausted";
  out << ")\n";
  out << "alternatives: " << rw.rewrites.size() << " equivalent rewriting"
      << (rw.rewrites.size() == 1 ? "" : "s") << "\n";
  constexpr size_t kMaxListed = 5;
  for (size_t i = 0; i < rw.rewrites.size() && i < kMaxListed; ++i) {
    out << "  " << (i + 1) << ". " << la::ToString(rw.rewrites[i]) << "\n";
  }
  if (rw.rewrites.size() > kMaxListed) {
    out << "  ... " << rw.rewrites.size() - kMaxListed << " more\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

bool Session::PlanFresh(const PreparedPlan& plan) const {
  if (plan.generation != view_generation_.load(std::memory_order_acquire)) {
    return false;
  }
  const int64_t gen = workspace_.generation();
  if (plan.verified_generation.load(std::memory_order_acquire) == gen) {
    return true;
  }
  // The workspace moved since the last verification — but only mutations of
  // the plan's own leaves matter. Re-verify per leaf and restore the fast
  // path (stamping the pre-check generation: a mutation racing the check
  // forces one more per-leaf pass, never a wrong hit).
  if (!workspace_.SnapshotCurrent(plan.data_snapshot)) return false;
  plan.verified_generation.store(gen, std::memory_order_release);
  return true;
}

Result<std::shared_ptr<const PreparedPlan>> Session::GetOrBuildPlan(
    const std::string& text, bool* from_cache, obs::SpanId parent) const {
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr expr, la::ParseExpression(text));
  std::string canonical = la::ToString(expr);
  for (;;) {
    {
      obs::ScopedSpan lookup(trace_.get(), "plan_cache_lookup", "cache",
                             parent);
      common::ReaderMutexLock lock(&cache_mu_);
      auto it = plan_cache_.find(canonical);
      if (it != plan_cache_.end()) {
        if (PlanFresh(*it->second)) {
          lookup.Annotate("outcome", "hit");
          cache_hits_->Inc();
          *from_cache = true;
          return it->second;
        }
        lookup.Annotate("outcome", "stale");
      } else {
        lookup.Annotate("outcome", "miss");
      }
    }
    // Join or lead the in-flight derivation of this canonical text. Without
    // coalescing, N clients missing on the same expression each pay the
    // full RW_find only for first-insertion-wins to discard N-1 results —
    // the serving-layer thundering herd.
    std::shared_ptr<PlanBuild> build;
    bool leader = false;
    {
      common::MutexLock lock(&builds_mu_);
      auto [it, inserted] = plan_builds_.try_emplace(canonical, nullptr);
      if (inserted) {
        it->second = std::make_shared<PlanBuild>();
        leader = true;
      }
      build = it->second;
    }
    if (!leader) {
      // Wait for the leader, then re-run the lookup: normally a fresh hit;
      // after a leader failure (or staleness) this thread leads a new lap.
      obs::ScopedSpan wait(trace_.get(), "plan_build_wait", "cache", parent);
      coalesced_builds_->Inc();
      common::MutexLock lock(&build->mu);
      while (!build->done) build->cv.wait(lock);
      continue;
    }
    cache_misses_->Inc();
    Result<std::shared_ptr<const PreparedPlan>> built =
        BuildAndInsertPlan(std::move(expr), canonical, parent);
    {
      common::MutexLock lock(&builds_mu_);
      plan_builds_.erase(canonical);
    }
    {
      common::MutexLock lock(&build->mu);
      build->done = true;
    }
    build->cv.notify_all();
    *from_cache = false;
    return built;
  }
}

Result<std::shared_ptr<const PreparedPlan>> Session::BuildAndInsertPlan(
    la::ExprPtr expr, std::string canonical, obs::SpanId parent) const {
  auto plan = std::make_shared<PreparedPlan>();
  // Optimize outside the cache lock: RW_find dominates, and concurrent
  // misses on different expressions must not serialize. The state lock is
  // held shared so neither views nor data can move mid-optimize — the
  // generation and leaf epochs stamped below are exactly what the rewrite
  // was derived against.
  {
    obs::ScopedSpan derive(trace_.get(), "plan_derivation", "plan", parent);
    common::ReaderMutexLock state(&views_mu_);
    Result<pacb::RewriteResult> rewrite = optimizer_->Optimize(expr);
    if (!rewrite.ok()) return rewrite.status();
    plan->rewrite = std::move(rewrite).value();
    if (derive.active()) {
      derive.Annotate("canonical", canonical);
      derive.Annotate("improved",
                      plan->rewrite.improved ? "true" : "false");
      derive.Annotate("optimize_seconds", plan->rewrite.optimize_seconds);
    }
    plan->generation = view_generation_.load(std::memory_order_acquire);
    std::set<std::string> leaves;
    la::CollectMatrixRefs(*expr, &leaves);
    la::CollectMatrixRefs(*plan->rewrite.best, &leaves);
    plan->data_snapshot = workspace_.SnapshotFor(
        std::vector<std::string>(leaves.begin(), leaves.end()));
    plan->verified_generation.store(plan->data_snapshot.generation,
                                    std::memory_order_release);
  }
  prepare_seconds_->Observe(plan->rewrite.optimize_seconds);
  plan->canonical = std::move(canonical);
  plan->original = std::move(expr);
  prepares_->Inc();
  common::WriterMutexLock lock(&cache_mu_);
  // Coalescing keeps duplicate derivations of one expression out, but a
  // stale resident plan may still sit here from an earlier generation;
  // first insertion wins so every holder shares one plan — unless the
  // resident plan is stale (older view generation or moved leaf epochs),
  // which ours supersedes.
  auto [it, inserted] = plan_cache_.try_emplace(plan->canonical, plan);
  if (!inserted && it->second != plan &&
      (it->second->generation < plan->generation ||
       !workspace_.SnapshotCurrent(it->second->data_snapshot))) {
    it->second = plan;
  }
  return it->second;
}

Result<matrix::Matrix> Session::ExecuteExpr(const la::ExprPtr& expr,
                                            engine::ExecStats* stats,
                                            obs::SpanId parent,
                                            const exec::CancelToken* cancel)
    const {
  if (morpheus_ != nullptr &&
      (executor_ == nullptr || morpheus_->ReferencesNormalized(*expr))) {
    // Factorized data lives inside the Morpheus engine, so expressions
    // touching it must evaluate there — but it borrows the executor's pool
    // (and the trace recorder) so pushdown kernels still parallelize and
    // show up as per-kernel spans. Expressions over plain workspace names
    // fall through to the DAG engine below.
    const obs::TraceContext ctx{trace_.get(), parent};
    return morpheus_->Run(expr, stats,
                          executor_ != nullptr ? executor_->range_runner()
                                               : matrix::RangeRunner(nullptr),
                          &ctx);
  }
  if (executor_ != nullptr) {
    HADAD_ASSIGN_OR_RETURN(exec::CompiledPlan compiled,
                           CompileForExecution(expr, parent));
    const obs::TraceContext ctx{trace_.get(), parent};
    return executor_->RunCompiled(compiled, workspace_, stats, &ctx, cancel);
  }
  return engine_->Run(expr, stats);
}

Result<exec::CompiledPlan> Session::CompileForExecution(
    const la::ExprPtr& expr, obs::SpanId parent) const {
  // Respect the engine profile (kSmart applies its internal rewrites
  // before execution), then hand the plan to the parallel DAG engine.
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr planned, engine_->Plan(expr));
  const std::set<std::string> barriers =
      adaptive_ != nullptr ? adaptive_->FusionBarriers()
                           : std::set<std::string>();
  obs::ScopedSpan compile(trace_.get(), "dag_compile", "compile", parent);
  HADAD_ASSIGN_OR_RETURN(
      exec::CompiledPlan compiled,
      CompileExpr(planned, adaptive_ != nullptr ? &barriers : nullptr));
  if (compile.active()) {
    compile.Annotate("cached", "false");
    compile.Annotate("plan_nodes",
                     static_cast<int64_t>(compiled.nodes.size()));
    compile.Annotate("cse_hits", compiled.cse_hits);
    compile.Annotate("fused_nodes", compiled.fused_nodes);
    compile.Annotate("fused_ops_eliminated", compiled.fused_ops_eliminated);
  }
  return compiled;
}

Result<exec::CompiledPlan> Session::CompileExpr(
    const la::ExprPtr& planned,
    const std::set<std::string>* fusion_barriers) const {
  HADAD_ASSIGN_OR_RETURN(
      exec::CompiledPlan compiled,
      executor_->Compile(planned, workspace_, &exec_catalog_,
                         fusion_barriers));
  compiled_plans_->Inc();
  fused_nodes_->Inc(compiled.fused_nodes);
  fused_ops_eliminated_->Inc(compiled.fused_ops_eliminated);
  return compiled;
}

Result<std::shared_ptr<const exec::CompiledPlan>> Session::GetOrCompile(
    const PreparedPlan& plan, obs::SpanId parent) const {
  obs::ScopedSpan compile(trace_.get(), "dag_compile", "compile", parent);
  const auto annotate = [&compile](const exec::CompiledPlan& compiled,
                                   const char* cached) {
    if (!compile.active()) return;
    compile.Annotate("cached", cached);
    compile.Annotate("plan_nodes",
                     static_cast<int64_t>(compiled.nodes.size()));
    compile.Annotate("cse_hits", compiled.cse_hits);
    compile.Annotate("fused_nodes", compiled.fused_nodes);
    compile.Annotate("fused_ops_eliminated", compiled.fused_ops_eliminated);
  };
  // Subexpressions that are (or just became) adaptive-view candidates stay
  // unfused so the workload monitor keeps attributing their cost. The
  // barrier set evolves with the workload, so a CACHED compiled plan is
  // reusable only while none of the canonicals it fused away has become a
  // barrier since — otherwise the candidate would stay swallowed forever on
  // the hot path, starving attribution right where it matters most.
  // Without adaptive views there are no barriers, and plans that fused
  // nothing can never go barrier-stale: return those without querying the
  // barrier set at all.
  {
    common::MutexLock lock(&plan.compile_mu);
    if (plan.compiled != nullptr &&
        (adaptive_ == nullptr || plan.compiled->fused_canonicals.empty())) {
      annotate(*plan.compiled, "true");
      return plan.compiled;
    }
  }
  const std::set<std::string> barriers =
      adaptive_ != nullptr ? adaptive_->FusionBarriers()
                           : std::set<std::string>();
  const auto barrier_clean = [&](const exec::CompiledPlan& compiled) {
    for (const std::string& canonical : compiled.fused_canonicals) {
      if (barriers.count(canonical) > 0) return false;
    }
    return true;
  };
  {
    common::MutexLock lock(&plan.compile_mu);
    if (plan.compiled != nullptr && barrier_clean(*plan.compiled)) {
      annotate(*plan.compiled, "true");
      return plan.compiled;
    }
  }
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr planned,
                         engine_->Plan(plan.rewrite.best));
  HADAD_ASSIGN_OR_RETURN(
      exec::CompiledPlan compiled,
      CompileExpr(planned, adaptive_ != nullptr ? &barriers : nullptr));
  common::MutexLock lock(&plan.compile_mu);
  if (plan.compiled == nullptr || !barrier_clean(*plan.compiled)) {
    plan.compiled =
        std::make_shared<const exec::CompiledPlan>(std::move(compiled));
  }
  annotate(*plan.compiled, "false");
  return plan.compiled;
}

Result<matrix::Matrix> Session::RunPlan(
    std::shared_ptr<const PreparedPlan> plan, engine::ExecStats* stats,
    bool original, obs::SpanId parent, const exec::CancelToken* cancel)
    const {
  // Calls arriving without an enclosing span (PreparedQuery::Execute) get
  // their own root; Session::Run passes its "Run" span instead.
  obs::ScopedSpan root(parent == obs::kNoSpan ? trace_.get() : nullptr,
                       original ? "ExecuteOriginal" : "Execute", "session");
  if (root.active()) AnnotateRoot(root, plan->canonical);
  const obs::SpanId span = root.active() ? root.id() : parent;

  const bool adaptive = adaptive_ != nullptr;
  // A plan derived before the last view install/evict or data mutation may
  // reference a gone view or carry kernels chosen for stale shapes:
  // re-derive through the cache, bounded in case the state keeps churning.
  constexpr int kMaxAttempts = 3;
  for (int attempt = 0;; ++attempt) {
    if (!original && !PlanFresh(*plan)) {
      bool from_cache = false;
      auto fresh = GetOrBuildPlan(plan->canonical, &from_cache, span);
      if (fresh.ok()) plan = std::move(*fresh);
    }
    engine::ExecStats local_stats;
    engine::ExecStats* exec_stats =
        stats != nullptr ? stats
                         : (adaptive && !original ? &local_stats : nullptr);
    bool use_original = false;
    std::optional<Result<matrix::Matrix>> result;
    // Execution state prepared under the shared hold, consumed lock-free
    // below: the pinned MVCC snapshot plus whichever plan form this
    // session executes (cached DAG, freshly compiled DAG, or the profile-
    // planned expression tree).
    engine::SnapshotPtr snapshot;
    std::shared_ptr<const exec::CompiledPlan> compiled;
    std::optional<exec::CompiledPlan> compiled_local;
    la::ExprPtr planned;
    {
      common::ReaderMutexLock state(&views_mu_);
      // Under the shared lock neither the view set nor the live data
      // binding can move: the freshness verdict, the pinned snapshot, and
      // the compiled plan below all describe the same state.
      const bool stale = !original && !PlanFresh(*plan);
      if (stale && attempt + 1 < kMaxAttempts) continue;
      // Extreme-churn fallback: the original expression references only
      // session-durable names, so it executes against the current data.
      use_original = original || stale;
      const la::ExprPtr& expr =
          use_original ? plan->original : plan->rewrite.best;
      if (morpheus_ != nullptr &&
          (executor_ == nullptr || morpheus_->ReferencesNormalized(*expr))) {
        // Morpheus route: factorized data lives inside that engine, not in
        // a pinnable workspace version — execute under the hold as before.
        result.emplace(ExecutePlanLocked(*plan, use_original, exec_stats,
                                         span, cancel));
      } else {
        // MVCC read path: pin the snapshot and prepare the physical plan
        // under the hold, then execute below with NO session lock held —
        // writers proceed concurrently and never block this query.
        snapshot = workspace_.PinSnapshot();
        if (executor_ != nullptr) {
          if (use_original) {
            auto c = CompileForExecution(plan->original, span);
            if (!c.ok()) {
              result.emplace(c.status());
            } else {
              compiled_local.emplace(std::move(*c));
            }
          } else {
            auto c = GetOrCompile(*plan, span);
            if (!c.ok()) {
              result.emplace(c.status());
            } else {
              compiled = std::move(*c);
            }
          }
        } else {
          auto p = engine_->Plan(expr);
          if (!p.ok()) {
            result.emplace(p.status());
          } else {
            planned = std::move(*p);
          }
        }
      }
    }
    if (!result.has_value()) {
      // Lock-free execution against the pinned snapshot (leaf loads
      // resolve to the pinned immutable versions).
      if (executor_ != nullptr) {
        const obs::TraceContext ctx{trace_.get(), span};
        const exec::CompiledPlan& plan_to_run =
            compiled != nullptr ? *compiled : *compiled_local;
        result.emplace(executor_->RunCompiled(plan_to_run, *snapshot,
                                              exec_stats, &ctx, cancel));
      } else {
        result.emplace(engine::Execute(*planned, *snapshot, exec_stats));
      }
    }
    // Unpin before adaptive propagation: OnExecution may schedule work that
    // takes the state lock, and the snapshot's versions are done serving.
    snapshot.reset();
    if (adaptive && !original && result->ok()) {
      // OnExecution takes the state lock itself, hence outside the scope.
      adaptive_->OnExecution(
          use_original ? plan->original : plan->rewrite.best, exec_stats);
    }
    return std::move(*result);
  }
}

Result<matrix::Matrix> Session::ExecutePlanLocked(
    const PreparedPlan& plan, bool use_original,
    engine::ExecStats* exec_stats, obs::SpanId parent,
    const exec::CancelToken* cancel) const {
  if (use_original) {
    return ExecuteExpr(plan.original, exec_stats, parent, cancel);
  }
  if (executor_ != nullptr &&
      (morpheus_ == nullptr ||
       !morpheus_->ReferencesNormalized(*plan.rewrite.best))) {
    // Hit path for executor sessions: reuse the physical DAG cached in
    // the plan instead of recompiling it. (Plans over normalized matrices
    // stay on the Morpheus engine via ExecuteExpr — their data is not in
    // the workspace the DAG compiler plans against.)
    auto compiled = GetOrCompile(plan, parent);
    if (!compiled.ok()) return compiled.status();
    const obs::TraceContext ctx{trace_.get(), parent};
    return executor_->RunCompiled(**compiled, workspace_, exec_stats, &ctx,
                                  cancel);
  }
  return ExecuteExpr(plan.rewrite.best, exec_stats, parent, cancel);
}

void Session::AnnotateRoot(const obs::ScopedSpan& root,
                           const std::string& query) const {
  if (!root.active()) return;
  root.Annotate("query", query);
  root.Annotate("query_id",
                query_seq_.fetch_add(1, std::memory_order_relaxed));
}

Result<PreparedQuery> Session::Prepare(const std::string& text) const {
  obs::ScopedSpan root(trace_.get(), "Prepare", "session");
  AnnotateRoot(root, text);
  bool from_cache = false;
  HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         GetOrBuildPlan(text, &from_cache, root.id()));
  return PreparedQuery(shared_from_this(), std::move(plan), from_cache);
}

Result<matrix::Matrix> Session::Run(const std::string& text,
                                    engine::ExecStats* stats) const {
  return RunCancellable(text, /*cancel=*/nullptr, /*client=*/"", stats);
}

Result<matrix::Matrix> Session::RunCancellable(
    const std::string& text, const exec::CancelToken* cancel,
    const std::string& client, engine::ExecStats* stats) const {
  obs::ScopedSpan root(trace_.get(), "Run", "session");
  AnnotateRoot(root, text);
  if (!client.empty()) root.Annotate("client", client);
  // A request that spent its whole deadline queued (or was cancelled while
  // waiting) fails before paying for optimization.
  if (cancel != nullptr) HADAD_RETURN_IF_ERROR(cancel->CheckProceed());
  Timer timer;
  bool from_cache = false;
  HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedPlan> plan,
                         GetOrBuildPlan(text, &from_cache, root.id()));
  runs_->Inc();
  Result<matrix::Matrix> result = RunPlan(std::move(plan), stats,
                                          /*original=*/false, root.id(),
                                          cancel);
  run_seconds_->Observe(timer.ElapsedSeconds());
  return result;
}

Result<std::string> Session::ExplainAnalyzePlan(
    const PreparedPlan& plan) const {
  obs::ScopedSpan root(trace_.get(), "ExplainAnalyze", "session");
  AnnotateRoot(root, plan.canonical);
  engine::ExecStats stats;
  common::ReaderMutexLock state(&views_mu_);
  if (executor_ != nullptr &&
      (morpheus_ == nullptr ||
       !morpheus_->ReferencesNormalized(*plan.rewrite.best))) {
    HADAD_ASSIGN_OR_RETURN(std::shared_ptr<const exec::CompiledPlan> compiled,
                           GetOrCompile(plan, root.id()));
    const obs::TraceContext ctx{trace_.get(), root.id()};
    HADAD_ASSIGN_OR_RETURN(
        matrix::Matrix value,
        executor_->RunCompiled(*compiled, workspace_, &stats, &ctx));
    (void)value;
    return obs::RenderExplainAnalyze(*compiled, stats);
  }
  // No physical DAG to report on (tree evaluator / Morpheus): fall back to
  // the per-operator aggregate the engine does measure.
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix value,
                         ExecuteExpr(plan.rewrite.best, &stats, root.id()));
  (void)value;
  std::ostringstream out;
  out << "EXPLAIN ANALYZE  (no physical DAG: "
      << (morpheus_ != nullptr ? "Morpheus engine" : "tree evaluator")
      << ")\n";
  out << "pipeline: " << la::ToString(plan.rewrite.best) << "\n";
  out << "wall " << stats.seconds * 1e3 << "ms, operators "
      << stats.operators << ", gamma " << stats.intermediate_nnz << "\n";
  return out.str();
}

void Session::WaitForAdaptiveViews() const {
  if (adaptive_ != nullptr) adaptive_->Drain();
}

// ---------------------------------------------------------------------------
// Mutable data layer
// ---------------------------------------------------------------------------

namespace {

// Workspace name the appended rows ride under while a user-view delta
// evaluates (reserved; never visible to queries — it exists only inside the
// unique state lock).
constexpr char kUserDeltaName[] = "__delta_rows";

bool ReferencesAny(const la::Expr& e, const std::set<std::string>& names) {
  std::set<std::string> leaves;
  la::CollectMatrixRefs(e, &leaves);
  for (const std::string& leaf : leaves) {
    if (names.contains(leaf)) return true;
  }
  return false;
}

}  // namespace

Result<matrix::Matrix> Session::EvaluateDefinition(
    const la::ExprPtr& def) const {
  if (morpheus_ != nullptr) return morpheus_->Run(def);
  return engine::Execute(*def, workspace_);
}

Status Session::Update(const std::string& name, matrix::Matrix m) {
  obs::ScopedSpan root(trace_.get(), "Update", "session");
  root.Annotate("name", name);
  common::WriterMutexLock state(&views_mu_);
  return MutateLocked(name, MutationKind::kUpdate, &m, nullptr, root.id());
}

Status Session::Append(const std::string& name, const matrix::Matrix& rows) {
  obs::ScopedSpan root(trace_.get(), "Append", "session");
  root.Annotate("name", name);
  common::WriterMutexLock state(&views_mu_);
  return MutateLocked(name, MutationKind::kAppend, nullptr, &rows,
                      root.id());
}

Status Session::Remove(const std::string& name) {
  obs::ScopedSpan root(trace_.get(), "Remove", "session");
  root.Annotate("name", name);
  common::WriterMutexLock state(&views_mu_);
  return MutateLocked(name, MutationKind::kRemove, nullptr, nullptr,
                      root.id());
}

Status Session::Put(const std::string& name, matrix::Matrix m) {
  obs::ScopedSpan root(trace_.get(), "Put", "session");
  root.Annotate("name", name);
  common::WriterMutexLock state(&views_mu_);
  if (workspace_.Find(name) != nullptr) {
    // An existing base name keeps full Update semantics: dependent views
    // refresh, failures roll back, adaptive views invalidate. (Views and
    // Morpheus names are rejected there.)
    return MutateLocked(name, MutationKind::kUpdate, &m, nullptr, root.id());
  }
  if (name.empty()) {
    return Status::InvalidArgument("cannot bind a matrix with an empty name");
  }
  if (name.rfind("__delta", 0) == 0) {
    return Status::InvalidArgument(
        "name '" + name + "' uses the reserved '__delta' prefix");
  }
  if (morpheus_names_.contains(name)) {
    // Normalized matrices live in the Morpheus engine, not the workspace,
    // so the existence check above does not cover them.
    return Status::InvalidArgument(
        "'" + name + "' is bound into a Morpheus declaration; declared "
        "factorizations are immutable");
  }
  workspace_.Put(name, std::move(m));
  la::MatrixMeta meta = engine::Workspace::MetaFor(*workspace_.Find(name),
                                                   flag_detect_limit_);
  Status added = optimizer_->AddBaseMeta(name, meta);
  if (!added.ok()) {
    // Nothing else was applied yet; unbind to keep the layers consistent.
    workspace_.Erase(name);
    return added;
  }
  if (executor_ != nullptr) exec_catalog_[name] = meta;
  // No cached plan can reference a name that did not exist when it was
  // prepared (Prepare fails on unknown names), so warm plans stay valid;
  // the fresh epoch stamped by workspace_.Put covers any future ones.
  mutations_->Inc();
  return Status::OK();
}

Status Session::Mutate(std::vector<Mutation> mutations) {
  if (mutations.empty()) return Status::OK();
  if (mutations.size() == 1) {
    // Single-entry batches keep the exact semantics of the public mutators
    // (including incremental view refresh for appends).
    Mutation& m = mutations.front();
    switch (m.op) {
      case Mutation::Op::kUpdate:
        return Update(m.name, std::move(m.value));
      case Mutation::Op::kAppend:
        return Append(m.name, m.value);
      case Mutation::Op::kRemove:
        return Remove(m.name);
      case Mutation::Op::kPut:
        return Put(m.name, std::move(m.value));
    }
    return Status::InvalidArgument("unknown mutation op");
  }
  obs::ScopedSpan root(trace_.get(), "Mutate", "session");
  root.Annotate("batch_size", static_cast<int64_t>(mutations.size()));
  common::WriterMutexLock state(&views_mu_);
  return MutateBatchLocked(&mutations, root.id());
}

Status Session::MutateBatchLocked(std::vector<Mutation>* mutations,
                                  obs::SpanId parent) {
  // --- Validation against a simulated catalog: nothing is applied until
  //     the whole batch is known to leave every layer well-defined.
  //     Entries apply in order, so the simulation threads state through
  //     them (a Put can introduce a name a later Append grows). ----------
  la::MetaCatalog trial = optimizer_->catalog();
  std::set<std::string> trial_changed;
  for (size_t i = 0; i < mutations->size(); ++i) {
    const Mutation& m = (*mutations)[i];
    const std::string at = "Mutate[" + std::to_string(i) + "]: ";
    if (morpheus_names_.contains(m.name)) {
      return Status::InvalidArgument(
          at + "'" + m.name + "' is bound into a Morpheus declaration; "
          "declared factorizations are immutable");
    }
    for (const auto& [vname, def] : user_views_) {
      if (vname == m.name) {
        return Status::InvalidArgument(
            at + "'" + m.name + "' is a view; views are derived — mutate "
            "the base matrices their definitions reference");
      }
    }
    if (adaptive_ != nullptr && adaptive_->IsAdaptiveViewName(m.name)) {
      return Status::InvalidArgument(
          at + "'" + m.name +
          "' is an adaptive view; mutate base matrices instead");
    }
    const bool exists = trial.contains(m.name);
    switch (m.op) {
      case Mutation::Op::kPut:
        if (m.name.empty()) {
          return Status::InvalidArgument(
              at + "cannot bind a matrix with an empty name");
        }
        if (m.name.rfind("__delta", 0) == 0) {
          return Status::InvalidArgument(
              at + "name '" + m.name +
              "' uses the reserved '__delta' prefix");
        }
        trial[m.name].rows = m.value.rows();
        trial[m.name].cols = m.value.cols();
        trial[m.name].nnz = -1.0;
        trial_changed.insert(m.name);
        break;
      case Mutation::Op::kUpdate:
        if (!exists) {
          return Status::NotFound(at + "no matrix named '" + m.name +
                                  "' in workspace");
        }
        trial[m.name].rows = m.value.rows();
        trial[m.name].cols = m.value.cols();
        trial[m.name].nnz = -1.0;
        trial_changed.insert(m.name);
        break;
      case Mutation::Op::kAppend:
        if (!exists) {
          return Status::NotFound(at + "no matrix named '" + m.name +
                                  "' in workspace");
        }
        if (m.value.cols() != trial[m.name].cols) {
          return Status::DimensionMismatch(
              at + "cannot append " + std::to_string(m.value.rows()) + "x" +
              std::to_string(m.value.cols()) + " rows to '" + m.name +
              "' (" + std::to_string(trial[m.name].rows) + "x" +
              std::to_string(trial[m.name].cols) + ")");
        }
        trial[m.name].rows += m.value.rows();
        trial_changed.insert(m.name);
        break;
      case Mutation::Op::kRemove:
        if (!exists) {
          return Status::NotFound(at + "no matrix named '" + m.name +
                                  "' in workspace");
        }
        for (const auto& [vname, def] : user_views_) {
          if (la::ReferencesMatrix(*def, m.name)) {
            return Status::InvalidArgument(at + "cannot remove '" + m.name +
                                           "': view '" + vname +
                                           "' references it");
          }
        }
        trial.erase(m.name);
        trial_changed.insert(m.name);
        break;
    }
  }
  // Dry-run shape inference over the post-batch catalog: every dependent
  // user view must stay well-typed, cascading through views over views.
  for (const auto& [vname, def] : user_views_) {
    if (!ReferencesAny(*def, trial_changed)) continue;
    Result<la::MatrixMeta> shape = la::InferShape(*def, trial);
    if (!shape.ok()) {
      return Status::InvalidArgument("Mutate: batch breaks view '" + vname +
                                     "': " + shape.status().message());
    }
    trial[vname] = std::move(shape).value();
    trial_changed.insert(vname);
  }

  // --- Apply every base mutation, journaling what a rollback needs (the
  //     shape dry-run cannot catch value-level refresh failures). Each
  //     install is one MVCC version: in-flight readers keep their pinned
  //     versions and never see the batch half-applied. -------------------
  std::vector<BaseChange> journal;
  journal.reserve(mutations->size());
  std::set<std::string> changed;
  std::vector<RefreshedView> refreshed;  // In registration order.

  for (size_t i = 0; i < mutations->size(); ++i) {
    Mutation& m = (*mutations)[i];
    BaseChange c;
    c.op = m.op;
    c.name = m.name;
    switch (m.op) {
      case Mutation::Op::kUpdate:
        c.old_value = workspace_.Take(m.name);
        workspace_.Put(m.name, std::move(m.value));
        break;
      case Mutation::Op::kPut:
        if (workspace_.Find(m.name) != nullptr) {
          c.old_value = workspace_.Take(m.name);
        } else {
          c.added = true;
        }
        workspace_.Put(m.name, std::move(m.value));
        break;
      case Mutation::Op::kAppend: {
        c.old_rows = workspace_.Find(m.name)->rows();
        Status appended = workspace_.Append(m.name, m.value);
        if (!appended.ok()) {
          RollbackBatch(&journal, &refreshed);
          return appended;
        }
        break;
      }
      case Mutation::Op::kRemove:
        c.old_value = workspace_.Take(m.name);
        (void)optimizer_->RemoveBaseMeta(m.name);
        exec_catalog_.erase(m.name);
        break;
    }
    const bool added = c.added;
    journal.push_back(std::move(c));
    changed.insert(m.name);
    if (m.op != Mutation::Op::kRemove) {
      la::MatrixMeta meta = engine::Workspace::MetaFor(
          *workspace_.Find(m.name), flag_detect_limit_);
      Status registered = added ? optimizer_->AddBaseMeta(m.name, meta)
                                : optimizer_->UpdateBaseMeta(m.name, meta);
      if (!registered.ok()) {
        RollbackBatch(&journal, &refreshed);
        return registered;
      }
      if (executor_ != nullptr) exec_catalog_[m.name] = meta;
    }
  }

  // --- ONE view-refresh wave over the whole batch, in registration order
  //     (refreshed values cascade through views over views). Batches
  //     re-evaluate definitions fully — with several entries potentially
  //     touching one view, a per-entry append delta no longer applies. ---
  for (const auto& [vname, def] : user_views_) {
    if (!ReferencesAny(*def, changed)) continue;
    obs::ScopedSpan refresh(trace_.get(), "view_refresh", "views", parent);
    refresh.Annotate("view", vname);
    Result<matrix::Matrix> fresh = EvaluateDefinition(def);
    if (!fresh.ok()) {
      RollbackBatch(&journal, &refreshed);
      return Status(fresh.status().code(),
                    "refreshing view '" + vname + "': " +
                        fresh.status().message() + " (batch rolled back)");
    }
    refreshed.push_back(
        RefreshedView{vname, def, std::move(*workspace_.Take(vname))});
    workspace_.Put(vname, std::move(*fresh));
    Status reregistered = optimizer_->RemoveView(vname);
    if (reregistered.ok()) reregistered = optimizer_->AddView(vname, def);
    if (!reregistered.ok()) {
      RollbackBatch(&journal, &refreshed);
      return Status(reregistered.code(),
                    "re-registering view '" + vname + "': " +
                        reregistered.message() + " (batch rolled back)");
    }
    if (executor_ != nullptr) {
      exec_catalog_[vname] =
          engine::Workspace::MetaFor(*workspace_.Find(vname));
    }
    changed.insert(vname);
  }

  // --- ONE adaptive propagation for the whole batch. --------------------
  if (adaptive_ != nullptr) {
    obs::ScopedSpan propagate(trace_.get(), "mutation_propagation", "views",
                              parent);
    adaptive_->OnDataMutation(changed, nullptr, nullptr);
  }
  mutations_->Inc(static_cast<int64_t>(mutations->size()));
  return Status::OK();
}

Status Session::MutateLocked(const std::string& name, MutationKind kind,
                             matrix::Matrix* value,
                             const matrix::Matrix* rows,
                             obs::SpanId parent) {
  // --- Validation: nothing is applied until the whole mutation is known
  //     to leave every layer well-defined. ---------------------------------
  if (morpheus_names_.contains(name)) {
    return Status::InvalidArgument(
        "'" + name + "' is bound into a Morpheus declaration; declared "
        "factorizations are immutable");
  }
  for (const auto& [vname, def] : user_views_) {
    if (vname == name) {
      return Status::InvalidArgument(
          "'" + name + "' is a view; views are derived — mutate the base "
          "matrices their definitions reference");
    }
  }
  if (adaptive_ != nullptr && adaptive_->IsAdaptiveViewName(name)) {
    return Status::InvalidArgument(
        "'" + name + "' is an adaptive view; mutate base matrices instead");
  }
  const matrix::Matrix* existing = workspace_.Find(name);
  if (existing == nullptr) {
    return Status::NotFound("no matrix named '" + name + "' in workspace");
  }
  if (kind == MutationKind::kAppend && rows->cols() != existing->cols()) {
    return Status::DimensionMismatch(
        "cannot append " + std::to_string(rows->rows()) + "x" +
        std::to_string(rows->cols()) + " rows to '" + name + "' (" +
        std::to_string(existing->rows()) + "x" +
        std::to_string(existing->cols()) + ")");
  }
  if (kind == MutationKind::kRemove) {
    for (const auto& [vname, def] : user_views_) {
      if (la::ReferencesMatrix(*def, name)) {
        return Status::InvalidArgument("cannot remove '" + name +
                                       "': view '" + vname +
                                       "' references it");
      }
    }
  }

  // Dry-run shape inference: every dependent user view must stay
  // well-typed against the mutated catalog (a view over inv(X) breaks if X
  // stops being square, a product breaks if an appended dimension no
  // longer matches). Rejecting here keeps mutations atomic.
  {
    la::MetaCatalog trial = optimizer_->catalog();
    std::set<std::string> trial_changed = {name};
    switch (kind) {
      case MutationKind::kUpdate:
        trial[name].rows = value->rows();
        trial[name].cols = value->cols();
        trial[name].nnz = -1.0;
        break;
      case MutationKind::kAppend:
        trial[name].rows += rows->rows();
        break;
      case MutationKind::kRemove:
        trial.erase(name);
        break;
    }
    for (const auto& [vname, def] : user_views_) {
      if (!ReferencesAny(*def, trial_changed)) continue;
      Result<la::MatrixMeta> shape = la::InferShape(*def, trial);
      if (!shape.ok()) {
        return Status::InvalidArgument(
            "mutation of '" + name + "' breaks view '" + vname +
            "': " + shape.status().message());
      }
      trial[vname] = std::move(shape).value();
      trial_changed.insert(vname);
    }
  }

  // --- Apply the base mutation, keeping what a rollback needs: the shape
  //     dry-run above cannot catch value-level refresh failures (e.g. a
  //     singular matrix under inv), and a half-applied mutation would let
  //     queries silently serve stale views. -------------------------------
  const int64_t old_rows = existing->rows();
  std::optional<matrix::Matrix> old_base;  // kUpdate only.
  switch (kind) {
    case MutationKind::kUpdate:
      old_base = workspace_.Take(name);
      workspace_.Put(name, std::move(*value));
      break;
    case MutationKind::kAppend:
      HADAD_RETURN_IF_ERROR(workspace_.Append(name, *rows));
      break;
    case MutationKind::kRemove:
      // Nothing after this point can fail for a removal: no user view
      // references the name (validated above), so no rollback is needed.
      workspace_.Erase(name);
      HADAD_RETURN_IF_ERROR(optimizer_->RemoveBaseMeta(name));
      exec_catalog_.erase(name);
      break;
  }
  if (kind != MutationKind::kRemove) {
    la::MatrixMeta meta = engine::Workspace::MetaFor(*workspace_.Find(name),
                                                     flag_detect_limit_);
    HADAD_RETURN_IF_ERROR(optimizer_->UpdateBaseMeta(name, meta));
    if (executor_ != nullptr) exec_catalog_[name] = meta;
  }

  // --- User-view maintenance, in registration order (later definitions
  //     may reference earlier names, so refreshed values cascade). On a
  //     refresh failure everything applied so far is restored — optimizer
  //     and exec-catalog entries re-derive from the restored values. ------
  std::vector<RefreshedView> refreshed;  // In registration order.
  bool delta_staged = false;
  matrix::Matrix* old_base_ptr =
      old_base.has_value() ? &*old_base : nullptr;

  std::set<std::string> changed;  // Names whose value changed arbitrarily.
  if (kind != MutationKind::kAppend) changed.insert(name);
  for (const auto& [vname, def] : user_views_) {
    const bool touches_changed = ReferencesAny(*def, changed);
    const bool touches_append = kind == MutationKind::kAppend &&
                                la::ReferencesMatrix(*def, name);
    if (!touches_changed && !touches_append) continue;
    obs::ScopedSpan refresh(trace_.get(), "view_refresh", "views", parent);
    refresh.Annotate("view", vname);
    Result<matrix::Matrix> fresh = ComputeViewRefresh(
        vname, def, touches_changed, name, rows, &delta_staged);
    if (!fresh.ok()) {
      RollbackMutation(name, kind, old_rows, old_base_ptr, &refreshed,
                       delta_staged);
      return Status(fresh.status().code(), "refreshing view '" + vname +
                                               "': " +
                                               fresh.status().message() +
                                               " (mutation rolled back)");
    }
    refreshed.push_back(
        RefreshedView{vname, def, std::move(*workspace_.Take(vname))});
    workspace_.Put(vname, std::move(*fresh));
    // Re-register so the catalog entry and view-IO constraints track the
    // refreshed value.
    Status reregistered = optimizer_->RemoveView(vname);
    if (reregistered.ok()) reregistered = optimizer_->AddView(vname, def);
    if (!reregistered.ok()) {
      RollbackMutation(name, kind, old_rows, old_base_ptr, &refreshed,
                       delta_staged);
      return Status(reregistered.code(),
                    "re-registering view '" + vname + "': " +
                        reregistered.message() + " (mutation rolled back)");
    }
    if (executor_ != nullptr) {
      exec_catalog_[vname] =
          engine::Workspace::MetaFor(*workspace_.Find(vname));
    }
    changed.insert(vname);
  }
  if (delta_staged) workspace_.Erase(kUserDeltaName);

  // --- Adaptive propagation: invalidate or queue delta refreshes. ---------
  if (adaptive_ != nullptr) {
    obs::ScopedSpan propagate(trace_.get(), "mutation_propagation", "views",
                              parent);
    adaptive_->OnDataMutation(
        changed, kind == MutationKind::kAppend ? &name : nullptr,
        kind == MutationKind::kAppend ? rows : nullptr);
  }
  mutations_->Inc();
  return Status::OK();
}

void Session::RollbackMutation(const std::string& name, MutationKind kind,
                               int64_t old_rows, matrix::Matrix* old_base,
                               std::vector<RefreshedView>* refreshed,
                               bool delta_staged) {
  if (delta_staged) workspace_.Erase(kUserDeltaName);
  // Restore every workspace value first — view catalog entries derive
  // from the catalog, so re-registration must wait until the base facts
  // (and all earlier values) describe the restored state again.
  for (RefreshedView& v : *refreshed) {
    workspace_.Put(v.name, std::move(v.old_value));
  }
  if (kind == MutationKind::kUpdate) {
    workspace_.Put(name, std::move(*old_base));
  } else {  // kAppend: drop the appended rows in place.
    std::optional<matrix::Matrix> grown = workspace_.Take(name);
    (void)matrix::TruncateRows(&*grown, old_rows);
    workspace_.Put(name, std::move(*grown));
  }
  la::MatrixMeta meta = engine::Workspace::MetaFor(*workspace_.Find(name),
                                                   flag_detect_limit_);
  (void)optimizer_->UpdateBaseMeta(name, meta);
  if (executor_ != nullptr) exec_catalog_[name] = meta;
  // Re-register in forward registration order, as Build() did: each
  // entry's shape/constraints then derive from already-restored names.
  for (const RefreshedView& v : *refreshed) {
    (void)optimizer_->RemoveView(v.name);
    (void)optimizer_->AddView(v.name, v.def);
    if (executor_ != nullptr) {
      exec_catalog_[v.name] =
          engine::Workspace::MetaFor(*workspace_.Find(v.name));
    }
  }
}

void Session::RollbackBatch(std::vector<BaseChange>* journal,
                            std::vector<RefreshedView>* refreshed) {
  // Restore every workspace value first — refreshed view values, then
  // bases in reverse journal order so repeated mutations of one name
  // unwind to the pre-batch state.
  for (RefreshedView& v : *refreshed) {
    workspace_.Put(v.name, std::move(v.old_value));
  }
  for (auto it = journal->rbegin(); it != journal->rend(); ++it) {
    switch (it->op) {
      case Mutation::Op::kUpdate:
        workspace_.Put(it->name, std::move(*it->old_value));
        break;
      case Mutation::Op::kPut:
        if (it->added) {
          workspace_.Erase(it->name);
        } else {
          workspace_.Put(it->name, std::move(*it->old_value));
        }
        break;
      case Mutation::Op::kAppend: {
        std::optional<matrix::Matrix> grown = workspace_.Take(it->name);
        (void)matrix::TruncateRows(&*grown, it->old_rows);
        workspace_.Put(it->name, std::move(*grown));
        break;
      }
      case Mutation::Op::kRemove:
        workspace_.Put(it->name, std::move(*it->old_value));
        break;
    }
  }
  // Re-derive the dependent facts from the restored values.
  for (const BaseChange& c : *journal) {
    const matrix::Matrix* cur = workspace_.Find(c.name);
    if (cur == nullptr) {
      // A rolled-back Put: the name is gone again.
      (void)optimizer_->RemoveBaseMeta(c.name);
      exec_catalog_.erase(c.name);
      continue;
    }
    la::MatrixMeta meta = engine::Workspace::MetaFor(*cur,
                                                     flag_detect_limit_);
    if (!optimizer_->UpdateBaseMeta(c.name, meta).ok()) {
      (void)optimizer_->AddBaseMeta(c.name, meta);  // Restored removal.
    }
    if (executor_ != nullptr) exec_catalog_[c.name] = meta;
  }
  // Re-register views in forward registration order, as Build() did.
  for (const RefreshedView& v : *refreshed) {
    (void)optimizer_->RemoveView(v.name);
    (void)optimizer_->AddView(v.name, v.def);
    if (executor_ != nullptr) {
      exec_catalog_[v.name] =
          engine::Workspace::MetaFor(*workspace_.Find(v.name));
    }
  }
}

Result<matrix::Matrix> Session::ComputeViewRefresh(
    const std::string& vname, const la::ExprPtr& def, bool touches_changed,
    const std::string& name, const matrix::Matrix* rows,
    bool* delta_staged) {
  if (!touches_changed) {
    // Only the appended leaf moved: refresh incrementally when the
    // definition is append-additive in it. The delta rows are staged
    // into the workspace once per mutation, not once per view.
    std::optional<la::ExprPtr> delta_expr =
        views::BuildAppendDelta(def, name, kUserDeltaName);
    if (delta_expr.has_value()) {
      if (!*delta_staged) {
        workspace_.Put(kUserDeltaName, *rows);
        *delta_staged = true;
      }
      Result<matrix::Matrix> delta = EvaluateDefinition(*delta_expr);
      if (delta.ok()) {
        return matrix::Add(*workspace_.Find(vname), *delta);
      }
    }
  }
  return EvaluateDefinition(def);
}

SessionStats Session::stats() const {
  SessionStats s;
  s.prepares = prepares_->Value();
  s.cache_hits = cache_hits_->Value();
  s.cache_misses = cache_misses_->Value();
  s.plan_builds_coalesced = coalesced_builds_->Value();
  s.runs = runs_->Value();
  s.compiled_plans = compiled_plans_->Value();
  s.fused_nodes = fused_nodes_->Value();
  s.fused_ops_eliminated = fused_ops_eliminated_->Value();
  s.data_mutations = mutations_->Value();
  if (adaptive_ != nullptr) {
    views::AdaptiveViewStats a = adaptive_->stats();
    s.adaptive_views_created = a.views_created;
    s.adaptive_views_evicted = a.views_evicted;
    s.adaptive_views_invalidated = a.views_invalidated;
    s.adaptive_views_refreshed = a.views_refreshed;
    s.adaptive_view_hit_runs = a.view_hit_runs;
    s.adaptive_bytes_in_use = a.bytes_in_use;
    s.adaptive_budget_bytes = a.budget_bytes;
  }
  return s;
}

std::string Session::MetricsText() const {
  // Gauges describe point-in-time levels; refresh them from live state so
  // the rendered exposition is coherent as of this call.
  plan_cache_gauge_->Set(static_cast<double>(plan_cache_size()));
  threads_gauge_->Set(
      executor_ != nullptr ? static_cast<double>(executor_->threads()) : 1.0);
  workspace_versions_gauge_->Set(
      static_cast<double>(workspace_.LiveVersions()));
  pinned_snapshots_gauge_->Set(
      static_cast<double>(workspace_.PinnedSnapshots()));
  // The retirement count lives in the workspace; AdvanceTo mirrors it
  // without a delta race between concurrent scrapes.
  workspace_retired_->AdvanceTo(workspace_.RetiredTotal());
  if (adaptive_ != nullptr) {
    views::AdaptiveViewStats a = adaptive_->stats();
    adaptive_views_gauge_->Set(
        static_cast<double>(adaptive_->StoredViews().size()));
    adaptive_bytes_gauge_->Set(static_cast<double>(a.bytes_in_use));
    adaptive_budget_gauge_->Set(static_cast<double>(a.budget_bytes));
    monitor_tracked_gauge_->Set(
        static_cast<double>(adaptive_->MonitorTrackedCount()));
  }
  return metrics_.Render();
}

Status Session::DumpTrace(const std::string& path) const {
  if (trace_ == nullptr) {
    return Status::InvalidArgument(
        "tracing is not enabled; build the session with "
        "SessionBuilder::Tracing()");
  }
  return trace_->WriteChromeTrace(path);
}

int64_t Session::plan_cache_size() const {
  common::ReaderMutexLock lock(&cache_mu_);
  return static_cast<int64_t>(plan_cache_.size());
}

void Session::ClearPlanCache() {
  common::WriterMutexLock lock(&cache_mu_);
  plan_cache_.clear();
}

// ---------------------------------------------------------------------------
// SessionBuilder
// ---------------------------------------------------------------------------

SessionBuilder& SessionBuilder::Put(std::string name, matrix::Matrix m) {
  matrices_.emplace_back(std::move(name), std::move(m));
  return *this;
}

SessionBuilder& SessionBuilder::AddView(std::string name,
                                        std::string definition_text) {
  views_.push_back(PendingView{std::move(name), std::move(definition_text)});
  return *this;
}

SessionBuilder& SessionBuilder::AddMorpheusJoin(pacb::MorpheusJoinDecl decl) {
  morpheus_joins_.push_back(std::move(decl));
  return *this;
}

SessionBuilder& SessionBuilder::AddNormalizedMatrix(
    std::string name, morpheus::NormalizedMatrix nm) {
  normalized_.emplace_back(std::move(name), std::move(nm));
  return *this;
}

SessionBuilder& SessionBuilder::Threads(int n) {
  exec_threads_ = n;
  return *this;
}

SessionBuilder& SessionBuilder::AdaptiveViews(int64_t budget_bytes,
                                              int64_t min_hits) {
  views::AdaptiveOptions options;
  options.budget_bytes = budget_bytes;
  options.min_hits = min_hits;
  return AdaptiveViews(options);
}

SessionBuilder& SessionBuilder::AdaptiveViews(views::AdaptiveOptions options) {
  adaptive_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::Tracing(obs::TraceOptions options) {
  tracing_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::SetEstimator(pacb::EstimatorKind kind) {
  estimator_ = kind;
  return *this;
}

SessionBuilder& SessionBuilder::SetProfile(engine::Profile profile) {
  profile_ = profile;
  return *this;
}

SessionBuilder& SessionBuilder::SetOptimizerOptions(
    pacb::OptimizerOptions options) {
  options_ = options;
  return *this;
}

SessionBuilder& SessionBuilder::AddConstraints(
    std::vector<chase::Constraint> constraints) {
  for (chase::Constraint& c : constraints) {
    constraints_.push_back(std::move(c));
  }
  return *this;
}

SessionBuilder& SessionBuilder::SetFlagDetectLimit(int64_t limit) {
  flag_detect_limit_ = limit;
  return *this;
}

Result<std::shared_ptr<Session>> SessionBuilder::Build() {
  if (built_) {
    return Status::InvalidArgument(
        "SessionBuilder::Build() already called; builders are single-use");
  }
  built_ = true;

  // Every bound name — base matrix, view, normalized matrix — must be
  // distinct; catching collisions here beats a confusing late failure.
  std::set<std::string> names;
  auto claim = [&names](const std::string& name,
                        const char* what) -> Status {
    if (name.empty()) {
      return Status::InvalidArgument(std::string(what) + " with empty name");
    }
    if (name.rfind("__delta", 0) == 0) {
      // Reserved for the incremental-refresh machinery: the appended rows
      // ride in the workspace under these names while a delta evaluates.
      return Status::InvalidArgument(std::string(what) + " name '" + name +
                                     "' uses the reserved '__delta' prefix");
    }
    if (!names.insert(name).second) {
      return Status::InvalidArgument("name '" + name +
                                     "' bound more than once in the session");
    }
    return Status::OK();
  };
  for (const auto& [name, m] : matrices_) {
    HADAD_RETURN_IF_ERROR(claim(name, "matrix"));
  }
  for (const PendingView& v : views_) {
    HADAD_RETURN_IF_ERROR(claim(v.name, "view"));
  }
  for (const auto& [name, nm] : normalized_) {
    HADAD_RETURN_IF_ERROR(claim(name, "normalized matrix"));
  }

  auto session = std::shared_ptr<Session>(new Session());
  Session* raw = session.get();
  if (tracing_.has_value()) {
    raw->trace_ = std::make_unique<obs::TraceRecorder>(*tracing_);
  }
  // Metric registration happens exactly once, here, before any handle is
  // used; docs/OBSERVABILITY.md catalogs these names and
  // scripts/check_invariants.py diffs the catalog against this code.
  {
    obs::MetricsRegistry& m = raw->metrics_;
    raw->prepares_ = m.AddCounter("hadad_session_prepares_total",
        "Optimizer invocations (each pays RW_find). Unit: calls.");
    raw->cache_hits_ = m.AddCounter("hadad_session_plan_cache_hits_total",
        "Prepare/Run calls answered from the plan cache. Unit: calls.");
    raw->cache_misses_ = m.AddCounter("hadad_session_plan_cache_misses_total",
        "Prepare/Run calls that missed or found a stale plan. Unit: calls.");
    raw->coalesced_builds_ =
        m.AddCounter("hadad_session_plan_builds_coalesced_total",
        "Misses that waited for an in-flight derivation of the same "
        "expression instead of duplicating RW_find. Unit: calls.");
    raw->runs_ = m.AddCounter("hadad_session_runs_total",
        "Session::Run invocations. Unit: calls.");
    raw->compiled_plans_ = m.AddCounter("hadad_session_compiled_plans_total",
        "Physical-DAG compilations (executor sessions). Unit: plans.");
    raw->fused_nodes_ = m.AddCounter("hadad_session_fused_nodes_total",
        "Plan nodes fusing several logical operators. Unit: nodes.");
    raw->fused_ops_eliminated_ =
        m.AddCounter("hadad_session_fused_ops_eliminated_total",
        "Operator nodes eliminated by fusion. Unit: nodes.");
    raw->mutations_ = m.AddCounter("hadad_session_mutations_total",
        "Successful Update/Append/Remove/Put calls. Unit: mutations.");
    raw->workspace_retired_ = m.AddCounter("hadad_workspace_retired_total",
        "Matrix versions retired by MVCC mutations since session build "
        "(refreshed on scrape). Unit: versions.");
    const std::vector<double> latency{1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};
    raw->run_seconds_ = m.AddHistogram("hadad_run_seconds",
        "End-to-end Session::Run latency. Unit: seconds.", latency);
    raw->prepare_seconds_ = m.AddHistogram("hadad_prepare_seconds",
        "Optimizer RW_find latency per derivation. Unit: seconds.", latency);
    raw->plan_cache_gauge_ = m.AddGauge("hadad_plan_cache_size",
        "Cached plans by canonical text. Unit: plans.");
    raw->threads_gauge_ = m.AddGauge("hadad_threadpool_threads",
        "Degree of parallelism execution is scheduled with. Unit: threads.");
    raw->adaptive_views_gauge_ = m.AddGauge("hadad_adaptive_views",
        "Installed adaptive views. Unit: views.");
    raw->adaptive_bytes_gauge_ = m.AddGauge("hadad_adaptive_bytes_in_use",
        "Bytes held by the adaptive-view store. Unit: bytes.");
    raw->adaptive_budget_gauge_ = m.AddGauge("hadad_adaptive_budget_bytes",
        "Byte budget of the adaptive-view store. Unit: bytes.");
    raw->monitor_tracked_gauge_ = m.AddGauge("hadad_workload_monitor_tracked",
        "Distinct canonical subexpressions tracked. Unit: expressions.");
    raw->kernel_tier_gauge_ = m.AddGauge("hadad_kernel_tier",
        "Active SIMD kernel tier: 0=scalar, 1=avx2, 2=avx512. Unit: enum.");
    raw->workspace_versions_gauge_ = m.AddGauge("hadad_workspace_versions",
        "Matrix versions held by the MVCC workspace (live + retained for "
        "pinned readers). Unit: versions.");
    raw->pinned_snapshots_gauge_ =
        m.AddGauge("hadad_workspace_pinned_snapshots",
        "Currently pinned MVCC read snapshots. Unit: snapshots.");
    // Resolved once per process at first kernel use; constant thereafter.
    raw->kernel_tier_gauge_->Set(
        static_cast<double>(matrix::ActiveTier()));
  }
  // No other thread can reach the session until Build() returns it, but the
  // state members below are lock-guarded for the session's lifetime — take
  // the writer lock so the initialization writes type-check like any other.
  common::WriterMutexLock state(&raw->views_mu_);
  for (auto& [name, m] : matrices_) {
    session->workspace_.Put(name, std::move(m));
  }

  // The optimizer's base catalog: stored matrices plus the shapes of any
  // normalized matrices (their data lives in the Morpheus engine, not the
  // workspace). View shapes are registered below by AddView itself.
  la::MetaCatalog catalog =
      session->workspace_.BuildMetaCatalog(flag_detect_limit_);
  if (!normalized_.empty()) {
    session->morpheus_ =
        std::make_unique<morpheus::MorpheusEngine>(&session->workspace_);
    for (auto& [name, nm] : normalized_) {
      la::MatrixMeta meta;
      meta.rows = nm.rows();
      meta.cols = nm.cols();
      meta.nnz = static_cast<double>(nm.rows()) *
                 static_cast<double>(nm.cols());
      catalog[name] = meta;
      session->morpheus_->Register(name, std::move(nm));
    }
  }

  pacb::OptimizerOptions options = options_;
  if (estimator_.has_value()) options.estimator = *estimator_;
  session->optimizer_ =
      std::make_unique<pacb::Optimizer>(std::move(catalog), options);
  session->optimizer_->SetData(&session->workspace_.data());

  // Materialize views into the workspace (so execution can scan them) and
  // register their definitions with the optimizer (so rewritings can reach
  // them). Later views may reference earlier ones; definitions over
  // normalized matrices evaluate through the Morpheus engine.
  for (const PendingView& v : views_) {
    auto def = la::ParseExpression(v.text);
    if (!def.ok()) {
      return Status(def.status().code(), "view '" + v.name +
                                             "': " + def.status().message());
    }
    Result<matrix::Matrix> value =
        session->morpheus_ != nullptr
            ? session->morpheus_->Run(def.value())
            : engine::Execute(*def.value(), session->workspace_);
    if (!value.ok()) {
      return Status(value.status().code(),
                    "view '" + v.name + "': " + value.status().message());
    }
    session->workspace_.Put(v.name, std::move(value).value());
    HADAD_RETURN_IF_ERROR(session->optimizer_->AddView(v.name, def.value()));
    raw->user_views_.emplace_back(v.name, def.value());
  }

  for (const pacb::MorpheusJoinDecl& decl : morpheus_joins_) {
    HADAD_RETURN_IF_ERROR(session->optimizer_->AddMorpheusJoin(decl));
    for (const std::string& n : {decl.t, decl.k, decl.u, decl.m}) {
      raw->morpheus_names_.insert(n);
    }
  }
  for (const auto& [name, nm] : normalized_) {
    raw->morpheus_names_.insert(name);
  }
  session->flag_detect_limit_ = flag_detect_limit_;
  if (!constraints_.empty()) {
    session->optimizer_->AddConstraints(std::move(constraints_));
  }

  session->engine_ = std::make_unique<engine::Engine>(profile_,
                                                      &session->workspace_);
  if (exec_threads_.has_value()) {
    engine::ExecOptions exec_options;
    exec_options.threads = *exec_threads_;
    session->executor_ = std::make_unique<exec::Executor>(exec_options);
    // Rebuild after view materialization so view leaves resolve without a
    // per-query workspace scan.
    raw->exec_catalog_ = session->workspace_.BuildMetaCatalog();
  }

  if (adaptive_.has_value()) {
    std::unique_ptr<cost::SparsityEstimator> advisor_estimator;
    if (estimator_.has_value() && *estimator_ == pacb::EstimatorKind::kMnc) {
      advisor_estimator = std::make_unique<cost::MncEstimator>();
    } else {
      advisor_estimator = std::make_unique<cost::NaiveMetadataEstimator>();
    }
    views::AdaptiveViewManager::Host host;
    // `raw` is safe to capture: the manager is a member and never outlives.
    host.workspace = &raw->workspace_;
    host.optimizer = raw->optimizer_.get();
    host.exec_catalog =
        exec_threads_.has_value() ? &raw->exec_catalog_ : nullptr;
    host.state_mu = &raw->views_mu_;
    host.trace = raw->trace_.get();
    host.evaluate = [raw](const la::ExprPtr& def, engine::WorkspaceView ws,
                          bool state_locked) -> Result<matrix::Matrix> {
      if (raw->morpheus_ != nullptr) {
        // Factorized data lives inside the Morpheus engine, not in `ws`;
        // its state follows the session state lock, so take it shared
        // unless the caller (synchronous-mode refresh) already holds it
        // unique.
        if (state_locked) return raw->morpheus_->Run(def);
        common::ReaderMutexLock state(&raw->views_mu_);
        return raw->morpheus_->Run(def);
      }
      return engine::Execute(*def, ws);
    };
    host.on_views_changed = [raw] {
      raw->view_generation_.fetch_add(1, std::memory_order_release);
    };
    session->adaptive_ = std::make_unique<views::AdaptiveViewManager>(
        std::move(host), *adaptive_, std::move(advisor_estimator));
  }
  return session;
}

}  // namespace hadad::api
