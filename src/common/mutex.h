#ifndef HADAD_COMMON_MUTEX_H_
#define HADAD_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Capability-annotated wrappers over the standard mutexes. Clang's
// thread-safety analysis only tracks types marked HADAD_CAPABILITY, and the
// standard library's are not (libc++ annotates std::mutex behind a config
// macro; libstdc++ never does) — so the concurrency stack locks through
// these instead. They are zero-overhead: each is exactly the std type plus
// attributes, and every method inlines to the std call.
//
// Locking style: prefer the scoped lockers (MutexLock / ReaderMutexLock /
// WriterMutexLock) — the analysis then checks release on every path for
// free. Manual lock()/unlock() is for the rare hand-over-hand or
// conditional-release site, and each such site must be annotation-visible
// (no unlocking through aliases).

namespace hadad::common {

// Exclusive mutex (std::mutex + capability attributes).
class HADAD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HADAD_ACQUIRE() { mu_.lock(); }
  void unlock() HADAD_RELEASE() { mu_.unlock(); }
  bool try_lock() HADAD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Reader-writer mutex (std::shared_mutex + capability attributes).
class HADAD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() HADAD_ACQUIRE() { mu_.lock(); }
  void unlock() HADAD_RELEASE() { mu_.unlock(); }
  bool try_lock() HADAD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() HADAD_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() HADAD_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() HADAD_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

// Condition variable usable with MutexLock (which is BasicLockable).
// condition_variable_any's internal unlock/relock happens inside the
// standard library, outside the analysis — callers keep the capability
// held across wait() as far as the checker can see, which matches the
// wait-morphing reality on return.
using CondVar = std::condition_variable_any;

// Scoped exclusive lock on a Mutex. Also BasicLockable (lock/unlock) so
// CondVar::wait(MutexLock&) type-checks; do not call those manually —
// outside a CondVar wait the scope IS the critical section.
class HADAD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HADAD_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() HADAD_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable surface for CondVar::wait. The analysis treats the
  // capability as continuously held across the wait (see CondVar above).
  void lock() HADAD_NO_THREAD_SAFETY_ANALYSIS { mu_->lock(); }
  void unlock() HADAD_NO_THREAD_SAFETY_ANALYSIS { mu_->unlock(); }

 private:
  Mutex* const mu_;
};

// Scoped exclusive lock on a SharedMutex (the writer side).
class HADAD_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) HADAD_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() HADAD_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Scoped shared lock on a SharedMutex (the reader side). The destructor
// annotation is the generic release — scoped capabilities release whatever
// mode they acquired.
class HADAD_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) HADAD_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() HADAD_RELEASE_GENERIC() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace hadad::common

#endif  // HADAD_COMMON_MUTEX_H_
