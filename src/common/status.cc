#include "common/status.h"

namespace hadad {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kDimensionMismatch:
      return "DimensionMismatch";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotInvertible:
      return "NotInvertible";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hadad
