#ifndef HADAD_COMMON_TIMER_H_
#define HADAD_COMMON_TIMER_H_

#include <chrono>

namespace hadad {

// Wall-clock stopwatch used by the benchmark harness to report Q_exec,
// RW_exec and RW_find times (§9 of the paper).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hadad

#endif  // HADAD_COMMON_TIMER_H_
