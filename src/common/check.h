#ifndef HADAD_COMMON_CHECK_H_
#define HADAD_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal-invariant checks. These fire in all build modes: a failed check is
// a bug in this library, not a recoverable user error (user errors return
// Status). Mirrors the CHECK idiom used by Arrow/RocksDB.
#define HADAD_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HADAD_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HADAD_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "HADAD_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define HADAD_CHECK_EQ(a, b) HADAD_CHECK((a) == (b))
#define HADAD_CHECK_NE(a, b) HADAD_CHECK((a) != (b))
#define HADAD_CHECK_LT(a, b) HADAD_CHECK((a) < (b))
#define HADAD_CHECK_LE(a, b) HADAD_CHECK((a) <= (b))
#define HADAD_CHECK_GT(a, b) HADAD_CHECK((a) > (b))
#define HADAD_CHECK_GE(a, b) HADAD_CHECK((a) >= (b))

#endif  // HADAD_COMMON_CHECK_H_
