#include "common/strings.h"

#include <cctype>

namespace hadad {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace hadad
