#ifndef HADAD_COMMON_THREAD_ANNOTATIONS_H_
#define HADAD_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety (capability) analysis annotations.
//
// These macros attach compile-time lock-discipline contracts to the
// session/workspace/views/exec concurrency stack: which mutex guards which
// member, which capability a method requires, and which scoped types
// acquire/release them. Under `clang++ -Wthread-safety` every violation —
// a guarded member touched without its lock, a REQUIRES method called
// outside the lock, a shared hold where exclusive is needed — is a
// compile error on every path, not just the interleavings a TSan run
// happens to exercise. `scripts/ci.sh lint` builds the tree with
// `-Werror=thread-safety`; docs/STATIC_ANALYSIS.md has the capability map
// and the annotation how-to.
//
// Every macro expands to nothing when the attribute is unavailable
// (`__has_attribute` missing or the attribute unsupported), so the GCC
// tier-1 build is unaffected. Use the `HADAD_*` spellings, never raw
// `__attribute__` — the no-op fallback is what keeps non-clang builds
// clean.

#if defined(__has_attribute)
#define HADAD_TSA_HAS_ATTRIBUTE__(x) __has_attribute(x)
#else
#define HADAD_TSA_HAS_ATTRIBUTE__(x) 0
#endif

// --- Capability types -------------------------------------------------------

// Marks a class as a capability ("mutex", "shared_mutex", ...). The
// analysis only tracks acquisition/release of capability-annotated types;
// raw std::mutex members are invisible to it, which is why the stack locks
// through common::Mutex / common::SharedMutex (common/mutex.h).
#if HADAD_TSA_HAS_ATTRIBUTE__(capability)
#define HADAD_CAPABILITY(x) __attribute__((capability(x)))
#else
#define HADAD_CAPABILITY(x)
#endif

// Marks an RAII class whose constructor acquires and destructor releases a
// capability (common::MutexLock and friends).
#if HADAD_TSA_HAS_ATTRIBUTE__(scoped_lockable)
#define HADAD_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#else
#define HADAD_SCOPED_CAPABILITY
#endif

// --- Data annotations -------------------------------------------------------

// The member may only be read while `x` is held (shared or exclusive) and
// only be written while `x` is held exclusively.
#if HADAD_TSA_HAS_ATTRIBUTE__(guarded_by)
#define HADAD_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define HADAD_GUARDED_BY(x)
#endif

// For pointers: the *pointed-to* data follows the GUARDED_BY rules; the
// pointer itself may be read freely.
#if HADAD_TSA_HAS_ATTRIBUTE__(pt_guarded_by)
#define HADAD_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))
#else
#define HADAD_PT_GUARDED_BY(x)
#endif

// --- Function annotations ---------------------------------------------------

// The caller must hold the capability exclusively when calling.
#if HADAD_TSA_HAS_ATTRIBUTE__(requires_capability)
#define HADAD_REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
#else
#define HADAD_REQUIRES(...)
#endif

// The caller must hold the capability at least shared when calling.
#if HADAD_TSA_HAS_ATTRIBUTE__(requires_shared_capability)
#define HADAD_REQUIRES_SHARED(...) \
  __attribute__((requires_shared_capability(__VA_ARGS__)))
#else
#define HADAD_REQUIRES_SHARED(...)
#endif

// The function acquires the capability exclusively and does not release it.
#if HADAD_TSA_HAS_ATTRIBUTE__(acquire_capability)
#define HADAD_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#else
#define HADAD_ACQUIRE(...)
#endif

// The function acquires the capability shared and does not release it.
#if HADAD_TSA_HAS_ATTRIBUTE__(acquire_shared_capability)
#define HADAD_ACQUIRE_SHARED(...) \
  __attribute__((acquire_shared_capability(__VA_ARGS__)))
#else
#define HADAD_ACQUIRE_SHARED(...)
#endif

// The function releases the capability (exclusive / shared / either).
#if HADAD_TSA_HAS_ATTRIBUTE__(release_capability)
#define HADAD_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#else
#define HADAD_RELEASE(...)
#endif

#if HADAD_TSA_HAS_ATTRIBUTE__(release_shared_capability)
#define HADAD_RELEASE_SHARED(...) \
  __attribute__((release_shared_capability(__VA_ARGS__)))
#else
#define HADAD_RELEASE_SHARED(...)
#endif

#if HADAD_TSA_HAS_ATTRIBUTE__(release_generic_capability)
#define HADAD_RELEASE_GENERIC(...) \
  __attribute__((release_generic_capability(__VA_ARGS__)))
#else
#define HADAD_RELEASE_GENERIC(...)
#endif

// The function acquires the capability iff it returns `b` (try_lock).
#if HADAD_TSA_HAS_ATTRIBUTE__(try_acquire_capability)
#define HADAD_TRY_ACQUIRE(...) \
  __attribute__((try_acquire_capability(__VA_ARGS__)))
#else
#define HADAD_TRY_ACQUIRE(...)
#endif

#if HADAD_TSA_HAS_ATTRIBUTE__(try_acquire_shared_capability)
#define HADAD_TRY_ACQUIRE_SHARED(...) \
  __attribute__((try_acquire_shared_capability(__VA_ARGS__)))
#else
#define HADAD_TRY_ACQUIRE_SHARED(...)
#endif

// The caller must NOT hold the capability (deadlock prevention for
// functions that acquire it themselves).
#if HADAD_TSA_HAS_ATTRIBUTE__(locks_excluded)
#define HADAD_EXCLUDES(...) __attribute__((locks_excluded(__VA_ARGS__)))
#else
#define HADAD_EXCLUDES(...)
#endif

// Tells the analysis the capability is held without acquiring it (runtime-
// checked entry points). Use sparingly; prefer REQUIRES.
#if HADAD_TSA_HAS_ATTRIBUTE__(assert_capability)
#define HADAD_ASSERT_CAPABILITY(x) __attribute__((assert_capability(x)))
#else
#define HADAD_ASSERT_CAPABILITY(x)
#endif

// The function returns a reference to the given capability (getters).
#if HADAD_TSA_HAS_ATTRIBUTE__(lock_returned)
#define HADAD_RETURN_CAPABILITY(x) __attribute__((lock_returned(x)))
#else
#define HADAD_RETURN_CAPABILITY(x)
#endif

// Static lock-ordering declarations (deadlock detection).
#if HADAD_TSA_HAS_ATTRIBUTE__(acquired_before)
#define HADAD_ACQUIRED_BEFORE(...) \
  __attribute__((acquired_before(__VA_ARGS__)))
#else
#define HADAD_ACQUIRED_BEFORE(...)
#endif

#if HADAD_TSA_HAS_ATTRIBUTE__(acquired_after)
#define HADAD_ACQUIRED_AFTER(...) __attribute__((acquired_after(__VA_ARGS__)))
#else
#define HADAD_ACQUIRED_AFTER(...)
#endif

// Opts a function out of the analysis entirely. Reserved for code the
// analysis cannot model (conditional locking across aliased capabilities);
// every use needs a written rationale next to it — see
// docs/STATIC_ANALYSIS.md.
#if HADAD_TSA_HAS_ATTRIBUTE__(no_thread_safety_analysis)
#define HADAD_NO_THREAD_SAFETY_ANALYSIS \
  __attribute__((no_thread_safety_analysis))
#else
#define HADAD_NO_THREAD_SAFETY_ANALYSIS
#endif

#endif  // HADAD_COMMON_THREAD_ANNOTATIONS_H_
