#ifndef HADAD_COMMON_STATUS_H_
#define HADAD_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace hadad {

// Error categories used throughout the library. Library code never throws;
// fallible operations return Status or Result<T> (Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kDimensionMismatch,
  kNotFound,
  kOutOfRange,
  kNotInvertible,
  kNotSupported,
  kIoError,
  kBudgetExhausted,
  kInternal,
  // Serving-layer outcomes (src/server/): a request rejected by admission
  // control, one whose deadline elapsed before it finished, and one the
  // client withdrew. Typed so callers can branch (retry/backoff vs. fail).
  kOverloaded,
  kDeadlineExceeded,
  kCancelled,
};

// A success-or-error value. Cheap to copy on the success path (no message
// allocation), carries a human-readable message on failure.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status DimensionMismatch(std::string msg) {
    return Status(StatusCode::kDimensionMismatch, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotInvertible(std::string msg) {
    return Status(StatusCode::kNotInvertible, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a T or an error Status. Accessing the value of an
// error result is a programming error (checked in debug via CHECK).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates an error Status from an expression that yields Status.
#define HADAD_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::hadad::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Evaluates a Result<T>-yielding expression; assigns the value on success,
// returns its Status on failure. `lhs` must be a declaration or assignable.
#define HADAD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define HADAD_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define HADAD_ASSIGN_OR_RETURN_CONCAT(a, b) HADAD_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define HADAD_ASSIGN_OR_RETURN(lhs, expr) \
  HADAD_ASSIGN_OR_RETURN_IMPL(            \
      HADAD_ASSIGN_OR_RETURN_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace hadad

#endif  // HADAD_COMMON_STATUS_H_
