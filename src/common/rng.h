#ifndef HADAD_COMMON_RNG_H_
#define HADAD_COMMON_RNG_H_

#include <cstdint>

namespace hadad {

// Deterministic, seedable xorshift128+ generator. Data generators use this so
// every bench/test run sees identical matrices regardless of platform or
// standard-library implementation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) {
    s0_ = seed ^ 0x9E3779B97F4A7C15ull;
    s1_ = (seed << 1) | 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 16; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return Next() % n; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace hadad

#endif  // HADAD_COMMON_RNG_H_
