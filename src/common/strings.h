#ifndef HADAD_COMMON_STRINGS_H_
#define HADAD_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace hadad {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

// Removes leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace hadad

#endif  // HADAD_COMMON_STRINGS_H_
