#include "obs/explain.h"

#include <cstdio>
#include <sstream>
#include <string>

#include "la/expr.h"

namespace hadad::obs {

namespace {

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  return buf;
}

std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 1e2);
  return buf;
}

// γ values are counts; render without a fractional part.
std::string Nnz(double nnz) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", nnz);
  return buf;
}

}  // namespace

std::string RenderExplainAnalyze(const exec::CompiledPlan& plan,
                                 const engine::ExecStats& stats) {
  const bool timed = stats.node_timings.size() == plan.nodes.size();
  const double work = stats.total_operator_seconds;

  std::ostringstream out;
  out << "EXPLAIN ANALYZE  (" << plan.nodes.size() << " nodes, "
      << stats.threads << (stats.threads == 1 ? " thread" : " threads");
  if (!stats.kernel_tier.empty()) out << ", tier " << stats.kernel_tier;
  out << ", wall " << Ms(stats.seconds) << ")\n";
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const exec::PlanNode& n = plan.nodes[i];
    out << "#" << i << " " << la::OpName(n.op) << " ["
        << exec::KernelName(n.kernel) << "] " << n.meta.shape.rows << "x"
        << n.meta.shape.cols << " <-";
    for (int32_t in : n.inputs) out << " #" << in;
    if (n.op == la::OpKind::kMatrixRef) out << " '" << n.expr->name() << "'";
    out << "  ";
    if (timed) {
      const engine::NodeTiming& t = stats.node_timings[i];
      out << Ms(t.seconds);
      if (work > 0.0) out << " (" << Pct(t.seconds / work) << ")";
      // Loads/root carry no γ (not intermediates); print only where it
      // means something.
      if (t.nnz > 0.0) out << " nnz=" << Nnz(t.nnz);
    } else {
      out << "-";
    }
    if (n.program >= 0) {
      out << " fused="
          << plan.programs[static_cast<size_t>(n.program)].fused_ops << "ops";
    } else if (n.kernel == exec::KernelKind::kGemmSumReduce ||
               n.kernel == exec::KernelKind::kGemmRowSumsReduce ||
               n.kernel == exec::KernelKind::kGemmColSumsReduce ||
               n.kernel == exec::KernelKind::kGemmMeanReduce ||
               n.kernel == exec::KernelKind::kGemmColMeansReduce) {
      out << " fused=2ops";
    }
    if (n.consumers.size() > 1) {
      out << " shared(x" << n.consumers.size() << ")";
    }
    out << "\n";
  }
  out << "root #" << plan.root << "  work " << Ms(work) << ", span "
      << Ms(stats.critical_path_seconds) << ", gamma "
      << Nnz(stats.intermediate_nnz) << ", operators " << stats.operators
      << ", cse_hits " << stats.cse_hits << ", fused_ops_eliminated "
      << stats.fused_ops_eliminated << "\n";
  return out.str();
}

}  // namespace hadad::obs
