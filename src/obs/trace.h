#ifndef HADAD_OBS_TRACE_H_
#define HADAD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace hadad::obs {

// Handle for one recorded span. Ids are assigned in start order; kNoSpan
// marks "no parent" and is also what a disabled/saturated recorder hands
// back — every mutating entry point accepts it as a no-op, so callers
// never branch on whether their span was actually kept.
using SpanId = int64_t;
inline constexpr SpanId kNoSpan = -1;

struct TraceOptions {
  // Record spans. A Session built without Tracing() has no recorder at
  // all (null pointer — the disabled path is one branch, no allocation);
  // this flag exists so a recorder can be constructed-but-off in tests.
  bool enabled = true;
  // Hard cap on retained spans; beyond it StartSpan returns kNoSpan and
  // `dropped()` counts what was lost (a trace that lies by truncating
  // silently would be worse than no trace). Ignored when ring_capacity > 0.
  size_t max_spans = size_t{1} << 20;
  // Non-zero switches the recorder to ring mode: it retains the *newest*
  // `ring_capacity` spans, evicting the oldest instead of refusing new
  // ones. Long-running servers use this — the interesting spans are the
  // most recent, and memory stays bounded forever. `dropped()` then counts
  // evictions, preserving its "spans lost" meaning; ids stay monotone
  // across evictions so parent links into evicted spans are detectable.
  size_t ring_capacity = 0;
};

// One hierarchical span: a named interval on one thread, optionally linked
// to a parent span, carrying string attributes ("args" in the Chrome trace
// rendering).
struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::string category;
  int64_t start_us = 0;      // Relative to the recorder's epoch.
  int64_t duration_us = -1;  // -1 while the span is still open.
  uint64_t thread = 0;       // std::hash of the recording std::thread::id.
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Thread-safe hierarchical span recorder with Chrome-trace-event export.
// All methods may be called concurrently; recording serializes on one
// internal mutex (spans are emitted at operator granularity — tens per
// query — so the lock is never on a per-element hot path; bulk producers
// like the scheduler batch via AddCompleteSpan after the run).
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceOptions options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return options_.enabled; }

  // Microseconds since the recorder was constructed (steady clock — the
  // time base every span start/duration is expressed in).
  int64_t NowMicros() const;

  // Opens a span; returns kNoSpan when disabled or at capacity.
  SpanId StartSpan(const std::string& name, const std::string& category,
                   SpanId parent = kNoSpan) HADAD_EXCLUDES(trace_mu_);
  // Closes `id` (no-op for kNoSpan or an already-closed span).
  void EndSpan(SpanId id) HADAD_EXCLUDES(trace_mu_);

  // Attaches a key/value attribute to an open or closed span.
  void Annotate(SpanId id, const std::string& key, std::string value)
      HADAD_EXCLUDES(trace_mu_);
  void Annotate(SpanId id, const std::string& key, int64_t value);
  void Annotate(SpanId id, const std::string& key, double value);

  // Records an already-measured interval in one call — how the scheduler
  // publishes per-kernel spans after the run without taking the trace lock
  // inside the execution critical path.
  SpanId AddCompleteSpan(
      std::string name, std::string category, SpanId parent, int64_t start_us,
      int64_t duration_us, uint64_t thread,
      std::vector<std::pair<std::string, std::string>> attrs)
      HADAD_EXCLUDES(trace_mu_);

  // Point-in-time copy of every retained span, in id (start) order — in
  // ring mode that is the newest ring_capacity spans (tests, tooling).
  std::vector<Span> Snapshot() const HADAD_EXCLUDES(trace_mu_);
  int64_t span_count() const HADAD_EXCLUDES(trace_mu_);
  // Spans lost: rejected by the max_spans cap (bounded mode) or evicted by
  // newer spans (ring mode).
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Chrome trace-event JSON ("X" complete events), loadable by
  // chrome://tracing and Perfetto. Open spans are emitted with their
  // duration so far. Thread ids are compacted to small integers in
  // first-seen order; the original hash and the span hierarchy ride in
  // each event's "args" ("tid_hash", "id", "parent").
  void WriteChromeTrace(std::ostream& out) const HADAD_EXCLUDES(trace_mu_);
  Status WriteChromeTrace(const std::string& path) const;

 private:
  // Claims the slot for the next span under trace_mu_, evicting in ring
  // mode; null when the recorder is at the bounded-mode cap (the caller
  // then bumps dropped_ and hands back kNoSpan).
  Span* ClaimSlotLocked(SpanId* id) HADAD_REQUIRES(trace_mu_);
  // Resolves an id to its retained span; null when out of range or (ring
  // mode) already evicted — mutations of evicted spans are silent no-ops.
  Span* FindLocked(SpanId id) HADAD_REQUIRES(trace_mu_);

  const TraceOptions options_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable common::Mutex trace_mu_;
  // Bounded mode: span id == index (ids dense from 0). Ring mode: slot
  // index == id % ring_capacity, and each slot's `id` field says which
  // generation currently occupies it.
  std::vector<Span> spans_ HADAD_GUARDED_BY(trace_mu_);
  // Next span id to assign (monotone; equals spans_.size() in bounded mode).
  int64_t next_id_ HADAD_GUARDED_BY(trace_mu_) = 0;
  std::atomic<int64_t> dropped_{0};
};

// Borrowed recorder + parent span, threaded through execution layers
// (Session → Executor → Scheduler) as one pointer. Null pointer (or null
// recorder) means tracing is off; every consumer checks once and skips.
struct TraceContext {
  TraceRecorder* recorder = nullptr;
  SpanId parent = kNoSpan;
};

// RAII span. Tolerates a null recorder: construction is then two pointer
// stores and no allocation — the disabled path api::Session compiles every
// hook down to.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name, const char* category,
             SpanId parent = kNoSpan)
      : recorder_(recorder),
        id_(recorder == nullptr ? kNoSpan
                                : recorder->StartSpan(name, category, parent)) {
  }
  ~ScopedSpan() {
    if (recorder_ != nullptr) recorder_->EndSpan(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // kNoSpan when tracing is off — safe to pass on as a parent.
  SpanId id() const { return id_; }
  bool active() const { return id_ != kNoSpan; }

  void Annotate(const std::string& key, std::string value) const {
    if (recorder_ != nullptr) {
      recorder_->Annotate(id_, key, std::move(value));
    }
  }
  void Annotate(const std::string& key, int64_t value) const {
    if (recorder_ != nullptr) recorder_->Annotate(id_, key, value);
  }
  void Annotate(const std::string& key, double value) const {
    if (recorder_ != nullptr) recorder_->Annotate(id_, key, value);
  }

 private:
  TraceRecorder* const recorder_;
  const SpanId id_;
};

}  // namespace hadad::obs

#endif  // HADAD_OBS_TRACE_H_
