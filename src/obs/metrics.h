#ifndef HADAD_OBS_METRICS_H_
#define HADAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hadad::obs {

// Monotone event count. The hot path is one relaxed atomic add — safe from
// any thread, never locks.
class Counter {
 public:
  void Inc(int64_t delta = 1) {
    count_.fetch_add(delta, std::memory_order_relaxed);
  }
  // Raises the counter to `value` if it is below it (CAS-max; no-op
  // otherwise). For mirroring an external monotone count into the
  // exposition: concurrent callers converge on the max instead of
  // compounding deltas.
  void AdvanceTo(int64_t value) {
    int64_t cur = count_.load(std::memory_order_relaxed);
    while (cur < value && !count_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> count_{0};
};

// Point-in-time level (bytes in use, cache size, ...). Set/Value are single
// atomic operations.
class Gauge {
 public:
  void Set(double value) {
    gauge_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return gauge_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> gauge_{0.0};
};

// Fixed-bucket latency/size histogram. Bounds are the inclusive upper
// edges of each bucket (ascending, strict); one implicit +Inf bucket
// catches the rest. Observe is lock-free: one binary search over the
// immutable bounds plus three relaxed atomic adds (C++20 atomic<double>
// fetch_add for the sum).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) count; index bounds_.size() is +Inf.
  int64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  int64_t Count() const {
    return observations_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1 slots.
  std::atomic<double> sum_{0.0};
  std::atomic<int64_t> observations_{0};
};

// Estimated q-quantile (q in [0, 1]) of a histogram's observations by
// linear interpolation inside the bucket where the quantile falls — the
// same estimate Prometheus's histogram_quantile() computes. Returns 0 for
// an empty histogram. For the +Inf bucket the last finite bound is
// returned (no upper edge to interpolate toward).
double HistogramQuantile(const Histogram& h, double q);

// Named metric registry with Prometheus-text-format rendering. Register
// once (at session build), then hammer the returned handles lock-free from
// any thread — the registry mutex only guards registration and Render's
// iteration, never a metric update. Handles stay valid for the registry's
// lifetime (metrics are never unregistered).
//
// Naming convention (checked against the catalog table in
// docs/OBSERVABILITY.md by scripts/check_invariants.py): snake_case with a
// `hadad_` prefix; counters end in `_total`; seconds-valued metrics end in
// `_seconds`; byte-valued ones in `_bytes`.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent per (name, type): re-adding a name returns
  // the existing handle; nullptr if the name is already bound to a
  // different metric type (caller bug worth surfacing over crashing).
  Counter* AddCounter(const std::string& name, std::string help)
      HADAD_EXCLUDES(metrics_mu_);
  Gauge* AddGauge(const std::string& name, std::string help)
      HADAD_EXCLUDES(metrics_mu_);
  Histogram* AddHistogram(const std::string& name, std::string help,
                          std::vector<double> bounds)
      HADAD_EXCLUDES(metrics_mu_);

  // Lookup by name; nullptr when absent or of another type.
  const Counter* FindCounter(const std::string& name) const
      HADAD_EXCLUDES(metrics_mu_);
  const Gauge* FindGauge(const std::string& name) const
      HADAD_EXCLUDES(metrics_mu_);
  const Histogram* FindHistogram(const std::string& name) const
      HADAD_EXCLUDES(metrics_mu_);

  // Prometheus text exposition format (# HELP / # TYPE lines, histogram
  // `_bucket{le=...}` series with cumulative counts plus `_sum`/`_count`),
  // metrics sorted by name.
  std::string Render() const HADAD_EXCLUDES(metrics_mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type = Type::kCounter;
    std::string help;
    // Exactly one is non-null, matching `type`. unique_ptr keeps handle
    // addresses stable across map rehashing/insertion.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable common::Mutex metrics_mu_;
  std::map<std::string, Entry> entries_ HADAD_GUARDED_BY(metrics_mu_);
};

}  // namespace hadad::obs

#endif  // HADAD_OBS_METRICS_H_
