#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace hadad::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HADAD_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bucket bounds must be strictly ascending");
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; past-the-end = +Inf.
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // upper_bound finds the first bound strictly greater; Prometheus buckets
  // are inclusive (le), so step back when the value sits exactly on an edge.
  const size_t idx =
      bucket > 0 && bounds_[bucket - 1] == value ? bucket - 1 : bucket;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  observations_.fetch_add(1, std::memory_order_relaxed);
}

double HistogramQuantile(const Histogram& h, double q) {
  const int64_t total = h.Count();
  if (total <= 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // The rank'th observation (1-based) carries the quantile; walk buckets
  // until the cumulative count reaches it, then interpolate linearly
  // between the bucket's edges — Prometheus's histogram_quantile estimate.
  const double rank = q * static_cast<double>(total);
  int64_t cumulative = 0;
  const size_t n = h.bounds().size();
  for (size_t i = 0; i <= n; ++i) {
    const int64_t in_bucket = h.BucketCount(i);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (i == n) {
        // +Inf bucket: no finite upper edge; report the last finite bound
        // (or the mean when there are no finite bounds at all).
        return n > 0 ? h.bounds()[n - 1]
                     : h.Sum() / static_cast<double>(total);
      }
      const double lo = i == 0 ? 0.0 : h.bounds()[i - 1];
      const double hi = h.bounds()[i];
      const double fraction =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative += in_bucket;
  }
  return n > 0 ? h.bounds()[n - 1] : 0.0;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     std::string help) {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.type == Type::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.type = Type::kCounter;
  entry.help = std::move(help);
  entry.counter = std::make_unique<Counter>();
  Counter* handle = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name, std::string help) {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.type == Type::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.type = Type::kGauge;
  entry.help = std::move(help);
  entry.gauge = std::make_unique<Gauge>();
  Gauge* handle = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         std::string help,
                                         std::vector<double> bounds) {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.type == Type::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.type = Type::kHistogram;
  entry.help = std::move(help);
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* handle = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.type == Type::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.type == Type::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.type == Type::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

namespace {

// Prometheus floats: plain shortest-round-trip decimal; integral values
// render without an exponent so counters read naturally.
std::string Num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<int64_t>(v);
    return out.str();
  }
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::Render() const {
  common::MutexLock lock(&metrics_mu_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    switch (entry.type) {
      case Type::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << entry.counter->Value() << "\n";
        break;
      case Type::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << Num(entry.gauge->Value()) << "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << name << " histogram\n";
        int64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out << name << "_bucket{le=\"" << Num(h.bounds()[i]) << "\"} "
              << cumulative << "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        out << name << "_sum " << Num(h.Sum()) << "\n";
        out << name << "_count " << h.Count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace hadad::obs
