#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace hadad::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HADAD_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bucket bounds must be strictly ascending");
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; past-the-end = +Inf.
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // upper_bound finds the first bound strictly greater; Prometheus buckets
  // are inclusive (le), so step back when the value sits exactly on an edge.
  const size_t idx =
      bucket > 0 && bounds_[bucket - 1] == value ? bucket - 1 : bucket;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  observations_.fetch_add(1, std::memory_order_relaxed);
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     std::string help) {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.type == Type::kCounter ? it->second.counter.get()
                                             : nullptr;
  }
  Entry entry;
  entry.type = Type::kCounter;
  entry.help = std::move(help);
  entry.counter = std::make_unique<Counter>();
  Counter* handle = entry.counter.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name, std::string help) {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.type == Type::kGauge ? it->second.gauge.get() : nullptr;
  }
  Entry entry;
  entry.type = Type::kGauge;
  entry.help = std::move(help);
  entry.gauge = std::make_unique<Gauge>();
  Gauge* handle = entry.gauge.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         std::string help,
                                         std::vector<double> bounds) {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.type == Type::kHistogram ? it->second.histogram.get()
                                               : nullptr;
  }
  Entry entry;
  entry.type = Type::kHistogram;
  entry.help = std::move(help);
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* handle = entry.histogram.get();
  entries_.emplace(name, std::move(entry));
  return handle;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.type == Type::kCounter
             ? it->second.counter.get()
             : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.type == Type::kGauge
             ? it->second.gauge.get()
             : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  common::MutexLock lock(&metrics_mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.type == Type::kHistogram
             ? it->second.histogram.get()
             : nullptr;
}

namespace {

// Prometheus floats: plain shortest-round-trip decimal; integral values
// render without an exponent so counters read naturally.
std::string Num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream out;
    out << static_cast<int64_t>(v);
    return out.str();
  }
  std::ostringstream out;
  out.precision(9);
  out << v;
  return out.str();
}

}  // namespace

std::string MetricsRegistry::Render() const {
  common::MutexLock lock(&metrics_mu_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    out << "# HELP " << name << " " << entry.help << "\n";
    switch (entry.type) {
      case Type::kCounter:
        out << "# TYPE " << name << " counter\n";
        out << name << " " << entry.counter->Value() << "\n";
        break;
      case Type::kGauge:
        out << "# TYPE " << name << " gauge\n";
        out << name << " " << Num(entry.gauge->Value()) << "\n";
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << name << " histogram\n";
        int64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.BucketCount(i);
          out << name << "_bucket{le=\"" << Num(h.bounds()[i]) << "\"} "
              << cumulative << "\n";
        }
        cumulative += h.BucketCount(h.bounds().size());
        out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
        out << name << "_sum " << Num(h.Sum()) << "\n";
        out << name << "_count " << h.Count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace hadad::obs
