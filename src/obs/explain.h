#ifndef HADAD_OBS_EXPLAIN_H_
#define HADAD_OBS_EXPLAIN_H_

#include <string>

#include "engine/evaluator.h"
#include "exec/plan.h"

namespace hadad::obs {

// Renders the EXPLAIN ANALYZE report for one executed plan: the physical
// DAG in topological order — one node per line, in CompiledPlan::ToString
// style — joined with what actually happened at run time. Per node:
// measured kernel wall-clock (and its share of the total operator work),
// measured output non-zeros (the paper's γ per intermediate), the chosen
// kernel (representation choice), fusion provenance (how many logical
// operators the node absorbed) and a `shared` marker for CSE'd nodes with
// multiple consumers. A header/footer carries threads, wall seconds, work
// (total_operator_seconds), span (critical_path_seconds) and total γ.
//
// `stats.node_timings` must be index-aligned with `plan.nodes` (it is when
// both came out of the same exec::Scheduler run); when it is absent — a
// run recorded before timings existed — per-node columns render as `-`.
std::string RenderExplainAnalyze(const exec::CompiledPlan& plan,
                                 const engine::ExecStats& stats);

}  // namespace hadad::obs

#endif  // HADAD_OBS_EXPLAIN_H_
