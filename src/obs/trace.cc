#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

namespace hadad::obs {

namespace {

// Minimal JSON string escaping: quotes, backslashes, and control bytes
// (query texts and attribute values are the only user-influenced content).
std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TraceRecorder::TraceRecorder(TraceOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Span* TraceRecorder::ClaimSlotLocked(SpanId* id) {
  if (options_.ring_capacity > 0) {
    *id = next_id_++;
    const size_t idx = static_cast<size_t>(*id) % options_.ring_capacity;
    if (idx >= spans_.size()) {
      spans_.emplace_back();
      return &spans_.back();
    }
    // Slot occupied by a span ring_capacity generations older: evict it.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    spans_[idx] = Span{};
    return &spans_[idx];
  }
  if (spans_.size() >= options_.max_spans) return nullptr;
  *id = next_id_++;
  spans_.emplace_back();
  return &spans_.back();
}

Span* TraceRecorder::FindLocked(SpanId id) {
  if (id < 0) return nullptr;
  if (options_.ring_capacity > 0) {
    const size_t idx = static_cast<size_t>(id) % options_.ring_capacity;
    if (idx >= spans_.size()) return nullptr;
    Span& span = spans_[idx];
    return span.id == id ? &span : nullptr;  // else evicted
  }
  if (static_cast<size_t>(id) >= spans_.size()) return nullptr;
  return &spans_[static_cast<size_t>(id)];
}

SpanId TraceRecorder::StartSpan(const std::string& name,
                                const std::string& category, SpanId parent) {
  if (!options_.enabled) return kNoSpan;
  const int64_t now = NowMicros();
  const uint64_t tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  common::MutexLock lock(&trace_mu_);
  SpanId id = kNoSpan;
  Span* span = ClaimSlotLocked(&id);
  if (span == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kNoSpan;
  }
  span->id = id;
  span->parent = parent;
  span->name = name;
  span->category = category;
  span->start_us = now;
  span->thread = tid;
  return id;
}

void TraceRecorder::EndSpan(SpanId id) {
  if (id == kNoSpan) return;
  const int64_t now = NowMicros();
  common::MutexLock lock(&trace_mu_);
  Span* span = FindLocked(id);
  if (span == nullptr) return;
  if (span->duration_us < 0) span->duration_us = now - span->start_us;
}

void TraceRecorder::Annotate(SpanId id, const std::string& key,
                             std::string value) {
  if (id == kNoSpan) return;
  common::MutexLock lock(&trace_mu_);
  Span* span = FindLocked(id);
  if (span == nullptr) return;
  span->attrs.emplace_back(key, std::move(value));
}

void TraceRecorder::Annotate(SpanId id, const std::string& key,
                             int64_t value) {
  if (id == kNoSpan) return;
  Annotate(id, key, std::to_string(value));
}

void TraceRecorder::Annotate(SpanId id, const std::string& key, double value) {
  if (id == kNoSpan) return;
  std::ostringstream out;
  out << value;
  Annotate(id, key, out.str());
}

SpanId TraceRecorder::AddCompleteSpan(
    std::string name, std::string category, SpanId parent, int64_t start_us,
    int64_t duration_us, uint64_t thread,
    std::vector<std::pair<std::string, std::string>> attrs) {
  if (!options_.enabled) return kNoSpan;
  common::MutexLock lock(&trace_mu_);
  SpanId id = kNoSpan;
  Span* span = ClaimSlotLocked(&id);
  if (span == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kNoSpan;
  }
  span->id = id;
  span->parent = parent;
  span->name = std::move(name);
  span->category = std::move(category);
  span->start_us = start_us;
  span->duration_us = duration_us < 0 ? 0 : duration_us;
  span->thread = thread;
  span->attrs = std::move(attrs);
  return id;
}

std::vector<Span> TraceRecorder::Snapshot() const {
  std::vector<Span> spans;
  {
    common::MutexLock lock(&trace_mu_);
    spans = spans_;
  }
  // Ring slots hold spans in id % capacity order; present them in id
  // (start) order, matching the bounded mode's layout.
  std::sort(spans.begin(), spans.end(),
            [](const Span& a, const Span& b) { return a.id < b.id; });
  return spans;
}

int64_t TraceRecorder::span_count() const {
  common::MutexLock lock(&trace_mu_);
  return static_cast<int64_t>(spans_.size());
}

void TraceRecorder::WriteChromeTrace(std::ostream& out) const {
  const int64_t now = NowMicros();
  std::vector<Span> spans = Snapshot();
  // Compact thread hashes to small row ids in first-seen order, so the
  // Perfetto timeline shows one stable row per thread.
  std::map<uint64_t, int> tids;
  for (const Span& s : spans) {
    tids.emplace(s.thread, static_cast<int>(tids.size()) + 1);
  }
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    const int64_t dur = s.duration_us >= 0 ? s.duration_us
                                           : now - s.start_us;
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"name\": \"" << JsonEscaped(s.name) << "\", \"cat\": \""
        << JsonEscaped(s.category) << "\", \"ph\": \"X\", \"ts\": "
        << s.start_us << ", \"dur\": " << dur << ", \"pid\": 1, \"tid\": "
        << tids.at(s.thread) << ", \"args\": {\"id\": " << s.id
        << ", \"parent\": " << s.parent << ", \"tid_hash\": \"" << std::hex
        << s.thread << std::dec << "\"";
    for (const auto& [key, value] : s.attrs) {
      out << ", \"" << JsonEscaped(key) << "\": \"" << JsonEscaped(value)
          << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  WriteChromeTrace(out);
  out.flush();
  if (!out) return Status::IoError("error writing trace to '" + path + "'");
  return Status::OK();
}

}  // namespace hadad::obs
