#include "server/hadad_c.h"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "api/session.h"
#include "matrix/matrix.h"
#include "server/server.h"

namespace {

using hadad::Result;
using hadad::Status;
using hadad::StatusCode;

// Per-thread error slot: no locking, no cross-thread clobbering, and the
// pointer stays valid until the thread's next failing call.
thread_local std::string t_last_error = "";

hadad_code CodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return HADAD_OK;
    case StatusCode::kInvalidArgument:
    case StatusCode::kDimensionMismatch:
    case StatusCode::kOutOfRange:
      return HADAD_ERR_INVALID;
    case StatusCode::kNotFound:
      return HADAD_ERR_NOT_FOUND;
    case StatusCode::kOverloaded:
      return HADAD_ERR_OVERLOADED;
    case StatusCode::kDeadlineExceeded:
      return HADAD_ERR_DEADLINE_EXCEEDED;
    case StatusCode::kCancelled:
      return HADAD_ERR_CANCELLED;
    default:
      return HADAD_ERR_OTHER;
  }
}

hadad_code Fail(const Status& status) {
  t_last_error = status.ToString();
  return CodeFor(status);
}

// malloc-backed copy so C callers pair it with free() via
// hadad_string_free regardless of how the C++ side was built.
char* MallocString(const std::string& s) {
  char* out = static_cast<char*>(std::malloc(s.size() + 1));
  if (out == nullptr) return nullptr;
  std::memcpy(out, s.c_str(), s.size() + 1);
  return out;
}

}  // namespace

// Opaque handle bodies: thin ownership shims over the C++ objects.
struct hadad_server {
  std::shared_ptr<hadad::server::Server> server;
};
struct hadad_request {
  hadad::server::RequestHandle request;
};

extern "C" {

hadad_server* hadad_server_open(int threads, int max_in_flight,
                                int max_queue) {
  hadad::obs::TraceOptions tracing;
  tracing.ring_capacity = size_t{1} << 16;  // Bounded memory, newest spans.
  auto session = hadad::api::SessionBuilder()
                     .Threads(threads)
                     .Tracing(tracing)
                     .Build();
  if (!session.ok()) {
    (void)Fail(session.status());
    return nullptr;
  }
  hadad::server::ServerOptions options;
  options.max_in_flight = max_in_flight;
  options.max_queue = max_queue;
  auto server = hadad::server::Server::Create(std::move(*session), options);
  if (!server.ok()) {
    (void)Fail(server.status());
    return nullptr;
  }
  auto* handle = new hadad_server();
  handle->server = std::move(*server);
  return handle;
}

void hadad_server_close(hadad_server* server) {
  if (server == nullptr) return;
  server->server->Shutdown();
  delete server;
}

hadad_code hadad_register_matrix(hadad_server* server, const char* name,
                                 const double* data, int64_t rows,
                                 int64_t cols) {
  if (server == nullptr || name == nullptr || data == nullptr || rows < 1 ||
      cols < 1) {
    return Fail(Status::InvalidArgument(
        "hadad_register_matrix: null handle/name/data or non-positive dims"));
  }
  hadad::matrix::DenseMatrix m(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      m.At(i, j) = data[i * cols + j];
    }
  }
  Status put = server->server->session().Put(
      name, hadad::matrix::Matrix(std::move(m)));
  if (!put.ok()) return Fail(put);
  return HADAD_OK;
}

hadad_request* hadad_submit(hadad_server* server, const char* client,
                            const char* text, int64_t deadline_ms) {
  if (server == nullptr || client == nullptr || text == nullptr) {
    (void)Fail(Status::InvalidArgument(
        "hadad_submit: null server/client/text"));
    return nullptr;
  }
  hadad::server::RequestOptions options;
  if (deadline_ms > 0) {
    options.deadline = std::chrono::milliseconds(deadline_ms);
  }
  auto submitted = server->server->Submit(client, text, options);
  if (!submitted.ok()) {
    (void)Fail(submitted.status());
    return nullptr;
  }
  auto* handle = new hadad_request();
  handle->request = std::move(*submitted);
  return handle;
}

int hadad_request_done(const hadad_request* request) {
  return request != nullptr && request->request->done() ? 1 : 0;
}

hadad_code hadad_request_wait(hadad_request* request) {
  if (request == nullptr) {
    return Fail(Status::InvalidArgument("hadad_request_wait: null request"));
  }
  const Result<hadad::matrix::Matrix>& outcome = request->request->result();
  if (!outcome.ok()) return Fail(outcome.status());
  return HADAD_OK;
}

void hadad_request_cancel(hadad_request* request) {
  if (request != nullptr) request->request->Cancel();
}

hadad_code hadad_result_dims(hadad_request* request, int64_t* rows,
                             int64_t* cols) {
  if (request == nullptr || rows == nullptr || cols == nullptr) {
    return Fail(
        Status::InvalidArgument("hadad_result_dims: null request/out"));
  }
  const Result<hadad::matrix::Matrix>& outcome = request->request->result();
  if (!outcome.ok()) return Fail(outcome.status());
  *rows = outcome->rows();
  *cols = outcome->cols();
  return HADAD_OK;
}

hadad_code hadad_result_copy(hadad_request* request, double* out,
                             size_t capacity) {
  if (request == nullptr || out == nullptr) {
    return Fail(
        Status::InvalidArgument("hadad_result_copy: null request/out"));
  }
  const Result<hadad::matrix::Matrix>& outcome = request->request->result();
  if (!outcome.ok()) return Fail(outcome.status());
  const int64_t rows = outcome->rows();
  const int64_t cols = outcome->cols();
  if (capacity < static_cast<size_t>(rows) * static_cast<size_t>(cols)) {
    return Fail(Status::InvalidArgument(
        "hadad_result_copy: capacity " + std::to_string(capacity) +
        " < " + std::to_string(rows * cols) + " result elements"));
  }
  const hadad::matrix::DenseMatrix dense = outcome->ToDense();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      out[i * cols + j] = dense.At(i, j);
    }
  }
  return HADAD_OK;
}

void hadad_request_free(hadad_request* request) { delete request; }

char* hadad_metrics(hadad_server* server) {
  if (server == nullptr) {
    (void)Fail(Status::InvalidArgument("hadad_metrics: null server"));
    return nullptr;
  }
  return MallocString(server->server->session().MetricsText());
}

char* hadad_trace_json(hadad_server* server) {
  if (server == nullptr) {
    (void)Fail(Status::InvalidArgument("hadad_trace_json: null server"));
    return nullptr;
  }
  const hadad::obs::TraceRecorder* recorder =
      server->server->session().trace();
  if (recorder == nullptr) {
    (void)Fail(Status::InvalidArgument(
        "hadad_trace_json: server was opened without tracing"));
    return nullptr;
  }
  std::ostringstream out;
  recorder->WriteChromeTrace(out);
  return MallocString(out.str());
}

void hadad_string_free(char* s) { std::free(s); }

const char* hadad_last_error(void) { return t_last_error.c_str(); }

}  // extern "C"
