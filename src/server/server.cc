#include "server/server.h"

#include <utility>

#include "obs/trace.h"

namespace hadad::server {

// ---------------------------------------------------------------------------
// Request
// ---------------------------------------------------------------------------

bool Request::done() const {
  common::MutexLock lock(&request_mu_);
  return done_;
}

void Request::Wait() const {
  common::MutexLock lock(&request_mu_);
  request_cv_.wait(lock, [this]() HADAD_REQUIRES(request_mu_) {
    return done_;
  });
}

bool Request::WaitFor(std::chrono::milliseconds timeout) const {
  common::MutexLock lock(&request_mu_);
  return request_cv_.wait_for(lock, timeout,
                              [this]() HADAD_REQUIRES(request_mu_) {
                                return done_;
                              });
}

const Result<matrix::Matrix>& Request::result() const {
  Wait();
  common::MutexLock lock(&request_mu_);
  return *outcome_;
}

void Request::Finish(Result<matrix::Matrix> outcome) {
  {
    common::MutexLock lock(&request_mu_);
    outcome_.emplace(std::move(outcome));
    done_ = true;
  }
  request_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

Status RequestQueue::Push(RequestHandle request) {
  {
    common::MutexLock lock(&queue_mu_);
    if (queue_closed_) {
      return Status::Cancelled("server is shut down; request not accepted");
    }
    if (queued_count_ >= capacity_) {
      return Status::Overloaded(
          "request queue full (" + std::to_string(capacity_) +
          " queued); retry with backoff");
    }
    auto [it, inserted] =
        client_queues_.try_emplace(request->client());
    if (inserted) round_robin_.push_back(request->client());
    it->second.push_back(std::move(request));
    ++queued_count_;
  }
  queue_cv_.notify_one();
  return Status::OK();
}

RequestHandle RequestQueue::Pop() {
  common::MutexLock lock(&queue_mu_);
  queue_cv_.wait(lock, [this]() HADAD_REQUIRES(queue_mu_) {
    return queued_count_ > 0 || queue_closed_;
  });
  if (queued_count_ == 0) return nullptr;  // Closed and drained.
  // Fairness: resume the round-robin walk where the last Pop left off and
  // take the first client lane with pending work.
  const size_t lanes = round_robin_.size();
  for (size_t step = 0; step < lanes; ++step) {
    const size_t lane = (rr_cursor_ + step) % lanes;
    std::deque<RequestHandle>& q = client_queues_[round_robin_[lane]];
    if (q.empty()) continue;
    RequestHandle out = std::move(q.front());
    q.pop_front();
    --queued_count_;
    rr_cursor_ = (lane + 1) % lanes;
    return out;
  }
  return nullptr;  // Unreachable: queued_count_ > 0 implies a non-empty lane.
}

std::vector<RequestHandle> RequestQueue::Close() {
  std::vector<RequestHandle> orphans;
  {
    common::MutexLock lock(&queue_mu_);
    queue_closed_ = true;
    // Drain in the same fair order Pop would have used.
    for (size_t step = 0; queued_count_ > 0; ++step) {
      std::deque<RequestHandle>& q =
          client_queues_[round_robin_[(rr_cursor_ + step) %
                                      round_robin_.size()]];
      while (!q.empty()) {
        orphans.push_back(std::move(q.front()));
        q.pop_front();
        --queued_count_;
      }
    }
  }
  queue_cv_.notify_all();
  return orphans;
}

int64_t RequestQueue::depth() const {
  common::MutexLock lock(&queue_mu_);
  return static_cast<int64_t>(queued_count_);
}

// ---------------------------------------------------------------------------
// ClientSession
// ---------------------------------------------------------------------------

Result<RequestHandle> ClientSession::Submit(const std::string& text,
                                            const RequestOptions& options) {
  return server_->Submit(client_name_, text, options);
}

Result<matrix::Matrix> ClientSession::Run(const std::string& text,
                                          const RequestOptions& options) {
  HADAD_ASSIGN_OR_RETURN(RequestHandle request, Submit(text, options));
  return request->result();
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(std::shared_ptr<api::Session> session,
               const ServerOptions& options)
    : session_(std::move(session)),
      options_(options),
      queue_(static_cast<size_t>(options.max_queue)) {}

Result<std::shared_ptr<Server>> Server::Create(
    std::shared_ptr<api::Session> session, const ServerOptions& options) {
  if (session == nullptr) {
    return Status::InvalidArgument("Server::Create requires a session");
  }
  if (options.max_in_flight < 1) {
    return Status::InvalidArgument("ServerOptions::max_in_flight must be >= 1");
  }
  if (options.max_queue < 1) {
    return Status::InvalidArgument("ServerOptions::max_queue must be >= 1");
  }
  auto server =
      std::shared_ptr<Server>(new Server(std::move(session), options));
  obs::MetricsRegistry& m = server->session_->mutable_metrics();
  server->queue_depth_gauge_ = m.AddGauge("hadad_server_queue_depth",
      "Requests accepted but not yet dispatched. Unit: requests.");
  server->requests_total_ = m.AddCounter("hadad_server_requests_total",
      "Requests accepted by admission control. Unit: requests.");
  server->rejected_total_ = m.AddCounter("hadad_server_rejected_total",
      "Requests rejected because the queue was full. Unit: requests.");
  server->deadline_exceeded_total_ =
      m.AddCounter("hadad_server_deadline_exceeded_total",
      "Requests failed by their deadline. Unit: requests.");
  server->queue_wait_seconds_ = m.AddHistogram("hadad_server_queue_wait_seconds",
      "Time from Submit to dispatch. Unit: seconds.",
      {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});
  common::MutexLock lock(&server->lifecycle_mu_);
  server->dispatchers_.reserve(static_cast<size_t>(options.max_in_flight));
  for (int i = 0; i < options.max_in_flight; ++i) {
    // The raw pointer is safe: Shutdown() joins these threads before the
    // last shared_ptr can release the Server.
    Server* raw = server.get();
    server->dispatchers_.emplace_back([raw] { raw->DispatchLoop(); });
  }
  return server;
}

Server::~Server() { Shutdown(); }

std::shared_ptr<ClientSession> Server::Connect(
    const std::string& client_name) {
  common::MutexLock lock(&clients_mu_);
  auto it = clients_.find(client_name);
  if (it != clients_.end()) return it->second;
  auto client = std::shared_ptr<ClientSession>(
      new ClientSession(shared_from_this(), client_name));
  clients_.emplace(client_name, client);
  return client;
}

Result<RequestHandle> Server::Submit(const std::string& client,
                                     const std::string& text,
                                     const RequestOptions& options) {
  if (client.empty()) {
    return Status::InvalidArgument("client name must be non-empty");
  }
  auto request =
      std::shared_ptr<Request>(new Request(client, text));
  if (options.deadline.count() > 0) {
    request->cancel_.set_deadline(std::chrono::steady_clock::now() +
                                  options.deadline);
  }
  request->enqueue_time_ = std::chrono::steady_clock::now();
  Status admitted = queue_.Push(request);
  if (!admitted.ok()) {
    if (admitted.code() == StatusCode::kOverloaded) rejected_total_->Inc();
    return admitted;
  }
  requests_total_->Inc();
  queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
  return request;
}

void Server::DispatchLoop() {
  for (;;) {
    RequestHandle request = queue_.Pop();
    if (request == nullptr) return;  // Queue closed and drained.
    queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      request->enqueue_time_)
            .count();
    queue_wait_seconds_->Observe(waited);
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    obs::ScopedSpan span(session_->mutable_trace(), "server_dispatch",
                         "server");
    span.Annotate("client", request->client());
    span.Annotate("queue_wait_seconds", waited);
    Result<matrix::Matrix> outcome = session_->RunCancellable(
        request->text(), &request->cancel_, request->client());
    if (!outcome.ok() &&
        outcome.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_total_->Inc();
    }
    span.Annotate("outcome", outcome.ok() ? "ok" : outcome.status().ToString());
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    request->Finish(std::move(outcome));
  }
}

void Server::Shutdown() {
  std::vector<std::thread> to_join;
  {
    common::MutexLock lock(&lifecycle_mu_);
    if (stopped_) return;
    stopped_ = true;
    to_join = std::move(dispatchers_);
    dispatchers_.clear();
  }
  // Fail everything still queued instead of running it: shutdown is a
  // deadline of "now" for work that never started.
  std::vector<RequestHandle> orphans = queue_.Close();
  for (const RequestHandle& request : orphans) {
    request->Finish(
        Status::Cancelled("server shut down before the request dispatched"));
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  queue_depth_gauge_->Set(0.0);
  // Release the client registry: each ClientSession holds a shared_ptr
  // back to this Server, so the registry's strong references form a
  // Server ↔ ClientSession cycle that would outlive every external
  // handle. Handles the caller still holds stay valid (they own their
  // ClientSession directly); their submits fail typed against the closed
  // queue.
  {
    common::MutexLock lock(&clients_mu_);
    clients_.clear();
  }
}

}  // namespace hadad::server
