/* Embeddable C API over the HADAD serving layer (src/server/).
 *
 * Everything is behind two opaque handle types: a hadad_server owns one
 * shared substrate (workspace + optimizer + plan cache + DAG executor +
 * metrics/trace) plus the admission queue and dispatcher pool; a
 * hadad_request is one submitted query. All functions are thread-safe
 * unless noted. The library never throws across this boundary; failures
 * come back as hadad_code plus a per-thread message (hadad_last_error).
 *
 * Quickstart:
 *   hadad_server* srv = hadad_server_open(4, 4, 64);
 *   double m[4] = {1, 2, 3, 4};
 *   hadad_register_matrix(srv, "M", m, 2, 2);
 *   hadad_request* req = hadad_submit(srv, "alice", "M %*% M", 1000);
 *   if (req && hadad_request_wait(req) == HADAD_OK) {
 *     int64_t rows, cols;
 *     hadad_result_dims(req, &rows, &cols);
 *     double out[4];
 *     hadad_result_copy(req, out, 4);
 *   }
 *   hadad_request_free(req);
 *   hadad_server_close(srv);
 */
#ifndef HADAD_SERVER_HADAD_C_H_
#define HADAD_SERVER_HADAD_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct hadad_server hadad_server;   /* opaque */
typedef struct hadad_request hadad_request; /* opaque */

/* Coarse outcome buckets a C caller can branch on; the full message is in
 * hadad_last_error() / the request's error string. */
typedef enum hadad_code {
  HADAD_OK = 0,
  HADAD_ERR_INVALID = 1,           /* bad arguments, parse/shape errors */
  HADAD_ERR_NOT_FOUND = 2,         /* unknown matrix name */
  HADAD_ERR_OVERLOADED = 3,        /* admission control rejected; back off */
  HADAD_ERR_DEADLINE_EXCEEDED = 4, /* deadline elapsed (queued or mid-run) */
  HADAD_ERR_CANCELLED = 5,         /* withdrawn, or server shut down */
  HADAD_ERR_OTHER = 6,
} hadad_code;

/* Opens a server over a fresh session. `threads`: execution pool width
 * (0 = one per hardware core, 1 = sequential kernels); `max_in_flight`:
 * concurrent executions (dispatcher threads); `max_queue`: admission bound
 * on waiting requests. Tracing is on in ring mode (memory stays bounded;
 * the newest spans win). NULL on failure — see hadad_last_error(). */
hadad_server* hadad_server_open(int threads, int max_in_flight,
                                int max_queue);

/* Shuts down (queued requests fail with HADAD_ERR_CANCELLED, in-flight
 * ones finish) and frees the server. Outstanding hadad_request handles
 * stay valid until hadad_request_free. NULL is a no-op. */
void hadad_server_close(hadad_server* server);

/* Binds a dense row-major `rows` x `cols` matrix under `name` (replacing
 * any existing binding; dependent state updates atomically). */
hadad_code hadad_register_matrix(hadad_server* server, const char* name,
                                 const double* data, int64_t rows,
                                 int64_t cols);

/* Submits `text` (e.g. "colSums(M %*% N)") on behalf of `client`.
 * `deadline_ms` <= 0 means no deadline. Returns immediately; NULL when
 * rejected (overloaded / shut down / bad arguments) — hadad_last_error()
 * says which. The returned handle must be freed with hadad_request_free. */
hadad_request* hadad_submit(hadad_server* server, const char* client,
                            const char* text, int64_t deadline_ms);

/* Non-blocking completion poll: 1 when the result (or error) is ready. */
int hadad_request_done(const hadad_request* request);

/* Blocks until completion; returns the outcome code (also sets the
 * per-thread error message on failure). */
hadad_code hadad_request_wait(hadad_request* request);

/* Cooperative cancellation: the request fails with HADAD_ERR_CANCELLED at
 * its next cancellation point (queue exit, pre-optimization, or the next
 * DAG node launch). */
void hadad_request_cancel(hadad_request* request);

/* Result accessors; both block until completion and return the request's
 * error code when it failed. */
hadad_code hadad_result_dims(hadad_request* request, int64_t* rows,
                             int64_t* cols);
/* Copies the result row-major into `out` (capacity in doubles; must be >=
 * rows*cols or HADAD_ERR_INVALID). */
hadad_code hadad_result_copy(hadad_request* request, double* out,
                             size_t capacity);

void hadad_request_free(hadad_request* request);

/* Prometheus text exposition of every server + session metric. Returns a
 * malloc'd string; free with hadad_string_free. */
char* hadad_metrics(hadad_server* server);

/* Chrome trace-event JSON of the retained span ring (load in Perfetto).
 * malloc'd; free with hadad_string_free. */
char* hadad_trace_json(hadad_server* server);

void hadad_string_free(char* s);

/* Message for the last failing call on THIS thread (valid until the next
 * failing call on the same thread). Never NULL. */
const char* hadad_last_error(void);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HADAD_SERVER_HADAD_C_H_ */
