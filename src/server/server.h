#ifndef HADAD_SERVER_SERVER_H_
#define HADAD_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/cancel.h"
#include "matrix/matrix.h"
#include "obs/metrics.h"

namespace hadad::server {

class Server;

// Serving-layer knobs. The defaults fit an embedded deployment: a handful
// of concurrent executions over one shared substrate, with a queue deep
// enough to absorb bursts but shallow enough that rejection beats
// unbounded latency.
struct ServerOptions {
  // Dispatcher threads == concurrent Session executions. Each dispatcher
  // runs one request end-to-end on its own thread (requests must NOT run
  // on the session's exec pool — a request blocking in the pool waiting
  // for pool workers would deadlock under load).
  int max_in_flight = 4;
  // Admission bound on *queued* (accepted, not yet dispatched) requests.
  // Submit fails with StatusCode::kOverloaded beyond it.
  int max_queue = 64;
};

// Per-request knobs.
struct RequestOptions {
  // Wall-clock budget from Submit; <= 0 means none. An expired request
  // fails with StatusCode::kDeadlineExceeded — before optimization if it
  // spent the budget queued, or mid-DAG via the cooperative cancel check
  // in exec::Scheduler.
  std::chrono::milliseconds deadline{0};
};

// One in-flight query: submitted text plus a future-like completion slot.
// Handles are shared_ptrs — the submitting client, the queue, and the
// dispatcher each hold one, so a request outlives whichever side loses
// interest first. All methods are thread-safe.
class Request {
 public:
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  const std::string& client() const { return client_; }
  const std::string& text() const { return text_; }

  // Withdraws the request: fails promptly with StatusCode::kCancelled —
  // before dispatch, before optimization, or at the next DAG node launch
  // when already executing. Queued work the scheduler already launched
  // still drains cleanly (first-error abort semantics).
  void Cancel() { cancel_.Cancel(); }

  bool done() const HADAD_EXCLUDES(request_mu_);
  void Wait() const HADAD_EXCLUDES(request_mu_);
  // False on timeout (the request keeps running — pair with Cancel() to
  // give up for real).
  bool WaitFor(std::chrono::milliseconds timeout) const
      HADAD_EXCLUDES(request_mu_);
  // Blocks until completion, then returns the outcome. The reference is
  // valid for the request's lifetime (the slot is written once).
  const Result<matrix::Matrix>& result() const HADAD_EXCLUDES(request_mu_);

 private:
  friend class Server;
  friend class RequestQueue;
  Request(std::string client, std::string text)
      : client_(std::move(client)), text_(std::move(text)) {}

  // Publishes the outcome and wakes every waiter. Called exactly once.
  void Finish(Result<matrix::Matrix> outcome) HADAD_EXCLUDES(request_mu_);

  const std::string client_;
  const std::string text_;
  // Written only between construction and Push (configure-once deadline);
  // the cancel flag itself is an atomic any thread may set.
  exec::CancelToken cancel_;
  // Stamped at Submit; read by the dispatcher for the queue-wait
  // histogram. Published by the queue mutex hand-off.
  std::chrono::steady_clock::time_point enqueue_time_{};

  mutable common::Mutex request_mu_;
  mutable common::CondVar request_cv_;
  bool done_ HADAD_GUARDED_BY(request_mu_) = false;
  std::optional<Result<matrix::Matrix>> outcome_
      HADAD_GUARDED_BY(request_mu_);
};

using RequestHandle = std::shared_ptr<Request>;

// Bounded multi-producer multi-consumer admission queue with per-client
// fairness: FIFO within a client, round-robin across clients with pending
// work — one chatty client cannot starve the rest. Thread-safe.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  // kOverloaded when full, kCancelled after Close (both typed so callers
  // can branch: back off vs. give up).
  Status Push(RequestHandle request) HADAD_EXCLUDES(queue_mu_);
  // Blocks for the next request (fair order); null once closed and
  // drained — the dispatcher's exit signal.
  RequestHandle Pop() HADAD_EXCLUDES(queue_mu_);
  // Rejects future Pushes, wakes all Pops, and hands back everything still
  // queued so the server can fail those requests instead of running them.
  std::vector<RequestHandle> Close() HADAD_EXCLUDES(queue_mu_);

  int64_t depth() const HADAD_EXCLUDES(queue_mu_);

 private:
  const size_t capacity_;
  mutable common::Mutex queue_mu_;
  common::CondVar queue_cv_;
  // Per-client FIFO lanes; fairness walks round_robin_ from rr_cursor_.
  std::map<std::string, std::deque<RequestHandle>> client_queues_
      HADAD_GUARDED_BY(queue_mu_);
  // Every client name ever seen, in first-submit order (lanes are kept —
  // client sets are small and stable in a serving process).
  std::vector<std::string> round_robin_ HADAD_GUARDED_BY(queue_mu_);
  size_t rr_cursor_ HADAD_GUARDED_BY(queue_mu_) = 0;
  size_t queued_count_ HADAD_GUARDED_BY(queue_mu_) = 0;
  bool queue_closed_ HADAD_GUARDED_BY(queue_mu_) = false;
};

// A named client bound to a Server. Cheap handle: all state is shared —
// every client sees one workspace, one plan cache, one view store, one
// metrics registry. Thread-safe; holds the server alive.
class ClientSession {
 public:
  const std::string& name() const { return client_name_; }

  // Enqueues `text`; returns the handle immediately (kOverloaded when the
  // queue is full, kCancelled after shutdown).
  Result<RequestHandle> Submit(const std::string& text,
                               const RequestOptions& options = {});
  // Submit + Wait + result: the blocking convenience path.
  Result<matrix::Matrix> Run(const std::string& text,
                             const RequestOptions& options = {});

 private:
  friend class Server;
  ClientSession(std::shared_ptr<Server> server, std::string name)
      : server_(std::move(server)), client_name_(std::move(name)) {}

  const std::shared_ptr<Server> server_;
  const std::string client_name_;
};

// Concurrent serving front end over one shared api::Session: admission
// control (bounded queue + max-in-flight), per-request deadlines and
// cancellation, and a pool of dispatcher threads that execute accepted
// requests against the shared substrate. Results are bit-identical to
// running the same queries sequentially on the Session — concurrency
// changes scheduling, never numerics (see exec::ThreadPool's fixed-grain
// contract).
//
//   auto session = api::SessionBuilder().Put("M", m).Threads(4).Build();
//   auto server = server::Server::Create(*session).value();
//   auto alice = server->Connect("alice");
//   auto req = alice->Submit("M %*% M", {.deadline = 100ms}).value();
//   req->Wait();
//
// Server metrics (hadad_server_*) register into the session's registry, so
// Session::MetricsText() scrapes the whole process.
class Server : public std::enable_shared_from_this<Server> {
 public:
  // The session must outlive nothing — the server shares ownership.
  static Result<std::shared_ptr<Server>> Create(
      std::shared_ptr<api::Session> session, const ServerOptions& options = {});

  ~Server();  // Implies Shutdown().
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The named client handle (one shared instance per name). Thread-safe.
  std::shared_ptr<ClientSession> Connect(const std::string& client_name)
      HADAD_EXCLUDES(clients_mu_);

  // Direct submit (ClientSession forwards here). Thread-safe.
  Result<RequestHandle> Submit(const std::string& client,
                               const std::string& text,
                               const RequestOptions& options = {});

  // The shared substrate (register data via session().Put, scrape
  // session().MetricsText(), ...).
  api::Session& session() { return *session_; }
  const api::Session& session() const { return *session_; }

  int64_t queue_depth() const { return queue_.depth(); }
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  const ServerOptions& options() const { return options_; }

  // Stops admission, fails still-queued requests with kCancelled, lets
  // in-flight requests finish, and joins the dispatchers. Idempotent;
  // called by the destructor.
  void Shutdown() HADAD_EXCLUDES(lifecycle_mu_);

 private:
  Server(std::shared_ptr<api::Session> session, const ServerOptions& options);

  // Dispatcher thread body: pop → run on the shared session → publish.
  void DispatchLoop();

  const std::shared_ptr<api::Session> session_;
  const ServerOptions options_;
  RequestQueue queue_;
  // Requests currently executing on dispatcher threads (gauge-style; the
  // admission bound is structural — one execution per dispatcher).
  std::atomic<int64_t> in_flight_{0};

  // Metric handles live in the session's registry (registered at Create;
  // docs/OBSERVABILITY.md catalogs the names).
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* rejected_total_ = nullptr;
  obs::Counter* deadline_exceeded_total_ = nullptr;
  obs::Histogram* queue_wait_seconds_ = nullptr;

  mutable common::Mutex clients_mu_;
  std::map<std::string, std::shared_ptr<ClientSession>> clients_
      HADAD_GUARDED_BY(clients_mu_);

  common::Mutex lifecycle_mu_;
  bool stopped_ HADAD_GUARDED_BY(lifecycle_mu_) = false;
  // Started in Create, joined in Shutdown; the vector itself is written
  // before any thread runs and read only under lifecycle_mu_ afterwards.
  std::vector<std::thread> dispatchers_ HADAD_GUARDED_BY(lifecycle_mu_);
};

}  // namespace hadad::server

#endif  // HADAD_SERVER_SERVER_H_
