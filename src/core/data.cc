#include "core/data.h"

#include "matrix/generate.h"

namespace hadad::core {

namespace {

matrix::Matrix DenseOrSparse(Rng& rng, int64_t rows, int64_t cols,
                             double sparsity) {
  if (sparsity < 0) return matrix::RandomDense(rng, rows, cols);
  return matrix::RandomSparse(rng, rows, cols, sparsity);
}

}  // namespace

engine::Workspace MakeLaBenchWorkspace(Rng& rng, const LaBenchConfig& c) {
  engine::Workspace ws;
  ws.Put("A", DenseOrSparse(rng, c.n_a, c.k, c.a_sparsity));
  ws.Put("B", matrix::RandomDense(rng, c.n_a, c.k));
  ws.Put("C", matrix::RandomInvertible(rng, c.n_c));
  ws.Put("D", matrix::RandomInvertible(rng, c.n_c));
  ws.Put("M", DenseOrSparse(rng, c.n_m, c.k, c.m_sparsity));
  ws.Put("N", matrix::RandomDense(rng, c.k, c.n_m));
  ws.Put("R", matrix::RandomDense(rng, c.n_r, c.n_r));
  ws.Put("X", DenseOrSparse(rng, c.x_rows, c.x_cols, c.x_sparsity));
  ws.Put("v1", matrix::RandomDense(rng, c.k, 1));
  ws.Put("v2", matrix::RandomDense(rng, c.x_cols, 1));
  ws.Put("u1", matrix::RandomDense(rng, c.x_rows, 1));
  ws.Put("vd", matrix::RandomDense(rng, c.n_c, 1));
  return ws;
}

std::vector<DatasetSpec> PaperDatasets(const LaBenchConfig& c) {
  return {
      {"Amazon/AS (as M)", c.n_m, c.k, 0.000075, "50K x 100, 0.0075%"},
      {"Netflix/NS (as M)", c.n_m, c.k, 0.014, "50K x 100, 1.39%"},
      {"Amazon/AL1 (as A)", c.n_a, c.k, 0.000065, "1M x 100, 0.0065%"},
      {"Netflix/NL1 (as A)", c.n_a, c.k, 0.0067, "1M x 100, 0.67%"},
      {"Amazon/AL3 (as X)", c.x_rows, c.x_cols, 0.002, "100K x 50K, 0.002"},
      {"Netflix/NL3 (as X)", c.x_rows, c.x_cols, 0.00307,
       "100K x 50K, 0.307%"},
      {"Syn1 (as M)", c.n_m, c.k, 1.0, "50K x 100 dense"},
      {"Syn2 (as N)", c.k, c.n_m, 1.0, "100 x 50K dense"},
      {"Syn3 (as A,B)", c.n_a, c.k, 1.0, "1M x 100 dense"},
      {"Syn5 (as C,D)", c.n_c, c.n_c, 1.0, "10K x 10K dense"},
      {"Syn7 (as v1)", c.k, 1, 1.0, "100 x 1 dense"},
      {"Syn8 (as v2)", c.x_cols, 1, 1.0, "50K x 1 dense"},
      {"Syn9 (as u1)", c.x_rows, 1, 1.0, "100K x 1 dense"},
      {"Syn10 (as R)", c.n_r, c.n_r, 1.0, "100 x 100 dense"},
  };
}

}  // namespace hadad::core
