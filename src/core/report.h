#ifndef HADAD_CORE_REPORT_H_
#define HADAD_CORE_REPORT_H_

#include <string>

#include "common/status.h"
#include "engine/profiles.h"
#include "pacb/optimizer.h"

namespace hadad::core {

// One benchmark comparison in the paper's reporting vocabulary (§9.1.1):
// Q_exec = running the pipeline as stated, RW_exec = running HADAD's
// rewriting, RW_find = optimizer time, overhead = RW_find / (Q_exec +
// RW_find) (§9.1.3).
struct ComparisonRow {
  std::string id;
  std::string original;
  std::string rewrite;
  double q_exec_seconds = 0.0;
  double rw_exec_seconds = 0.0;
  double rw_find_seconds = 0.0;
  double speedup = 1.0;
  double overhead_pct = 0.0;
  bool improved = false;
  bool values_agree = true;
};

// Optimizes `pipeline_text` with `optimizer`, executes original and
// rewriting on `engine` (`repeats` runs each, best time kept) and verifies
// the two results agree.
Result<ComparisonRow> ComparePipeline(const std::string& id,
                                      const std::string& pipeline_text,
                                      const pacb::Optimizer& optimizer,
                                      const engine::Engine& engine,
                                      int repeats = 3);

// Fixed-width table output helpers shared by the bench binaries.
void PrintComparisonHeader(const std::string& title);
void PrintComparisonRow(const ComparisonRow& row);

}  // namespace hadad::core

#endif  // HADAD_CORE_REPORT_H_
