#ifndef HADAD_CORE_WORKLOADS_H_
#define HADAD_CORE_WORKLOADS_H_

#include <string>
#include <vector>

namespace hadad::core {

// The LA benchmark of §9.1 (Tables 2 and 3): 57 pipelines over the Table 6
// bindings (A, B, C, D, M, N, R, X, v1, v2, u1, and vd — see
// MakeLaBenchWorkspace). `expected_rewrite` transcribes Tables 12/13 (the
// P¬Opt rewrites HADAD found in the paper); empty when the paper lists
// none. kOpt pipelines are "already optimal" without views (§9.1.3).
enum class PipelineClass { kNotOpt, kOpt };

struct Pipeline {
  std::string id;                // "P1.1" ... "P2.27".
  std::string text;              // Parser syntax.
  PipelineClass cls;
  std::string expected_rewrite;  // From Tables 12/13; may be empty.
};

const std::vector<Pipeline>& LaBenchmark();

// Looks a pipeline up by id; nullptr if absent.
const Pipeline* FindPipeline(const std::string& id);

// The materialized views V_exp of §9.1.2 (Table 14).
struct ViewSpec {
  std::string name;
  std::string definition;
};
const std::vector<ViewSpec>& VexpViews();

// A sample of the views-based rewrites of Table 15 (pipeline id → the
// rewriting over V_exp the paper reports), used by tests and by
// bench_fig7_view_rewrites.
struct ViewRewrite {
  std::string pipeline_id;
  std::string rewrite;
};
const std::vector<ViewRewrite>& Table15Rewrites();

}  // namespace hadad::core

#endif  // HADAD_CORE_WORKLOADS_H_
