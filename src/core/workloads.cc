#include "core/workloads.h"

namespace hadad::core {

namespace {

constexpr PipelineClass kNo = PipelineClass::kNotOpt;
constexpr PipelineClass kOp = PipelineClass::kOpt;

std::vector<Pipeline> BuildBenchmark() {
  return {
      // ---- Table 2 (P1.*) -------------------------------------------------
      {"P1.1", "t(M %*% N)", kNo, "t(N) %*% t(M)"},
      {"P1.2", "t(A) + t(B)", kNo, "t(A + B)"},
      {"P1.3", "inv(C) %*% inv(D)", kNo, "inv(D %*% C)"},
      {"P1.4", "(A + B) %*% v1", kNo, "A %*% v1 + B %*% v1"},
      {"P1.5", "inv(inv(D))", kNo, "D"},
      {"P1.6", "trace(2 * D)", kNo, "2 * trace(D)"},
      {"P1.7", "t(t(A))", kNo, "A"},
      {"P1.8", "2 * A + 3 * A", kNo, "(2 + 3) * A"},
      {"P1.9", "det(t(D))", kNo, "det(D)"},
      {"P1.10", "rowSums(t(A))", kNo, "t(colSums(A))"},
      {"P1.11", "rowSums(t(A) + t(B))", kNo, "t(colSums(A + B))"},
      {"P1.12", "colSums(M %*% N)", kNo, "colSums(M) %*% N"},
      {"P1.13", "sum(M %*% N)", kNo, "sum(t(colSums(M)) * rowSums(N))"},
      {"P1.14", "sum(colSums(t(N) %*% t(M)))", kNo,
       "sum(t(colSums(M)) * rowSums(N))"},
      {"P1.15", "(M %*% N) %*% M", kNo, "M %*% (N %*% M)"},
      {"P1.16", "sum(t(A))", kNo, "sum(A)"},
      {"P1.17", "det(C %*% D %*% C)", kNo, "det(C) * det(D) * det(C)"},
      {"P1.18", "sum(colSums(A))", kNo, "sum(A)"},
      {"P1.19", "inv(t(C))", kOp, ""},
      {"P1.20", "trace(inv(C))", kOp, ""},
      {"P1.21", "t(C + inv(D))", kOp, ""},
      {"P1.22", "trace(inv(C + D))", kOp, ""},
      {"P1.23", "det(inv(C %*% D) + D)", kOp, ""},
      {"P1.24", "trace(inv(C %*% D)) + trace(D)", kOp, ""},
      {"P1.25", "M * (t(N) / (M %*% N %*% t(N)))", kNo,
       "M * (t(N) / (M %*% (N %*% t(N))))"},
      {"P1.26", "N * (t(M) / (t(M) %*% M %*% N))", kOp, ""},
      {"P1.27", "trace(D %*% t(C %*% D))", kOp, ""},
      {"P1.28", "A * (A * B + A)", kOp, ""},
      {"P1.29", "D %*% C %*% C %*% C", kOp, ""},
      {"P1.30", "(N %*% M) * (N %*% M %*% t(R))", kOp, ""},
      // ---- Table 3 (P2.*) -------------------------------------------------
      {"P2.1", "trace(C + D)", kNo, "trace(C) + trace(D)"},
      {"P2.2", "det(inv(D))", kNo, "1 / det(D)"},
      {"P2.3", "trace(t(D))", kNo, "trace(D)"},
      {"P2.4", "2 * A + 2 * B", kNo, "2 * (A + B)"},
      {"P2.5", "det(inv(C + D))", kNo, "1 / det(C + D)"},
      {"P2.6", "t(C) %*% inv(t(D))", kNo, "t(inv(D) %*% C)"},
      {"P2.7", "D %*% inv(D) %*% C", kNo, "C"},
      {"P2.8", "det(t(C) %*% D)", kNo, "det(C) * det(D)"},
      {"P2.9", "trace(t(C) %*% t(D) + D)", kNo,
       "trace(D %*% C) + trace(D)"},
      {"P2.10", "rowSums(M %*% N)", kNo, "M %*% rowSums(N)"},
      {"P2.11", "sum(A + B)", kNo, "sum(A) + sum(B)"},
      {"P2.12", "sum(rowSums(t(N) %*% t(M)))", kNo,
       "sum(t(colSums(M)) * rowSums(N))"},
      {"P2.13", "t((M %*% N) %*% M)", kNo, "t(M %*% (N %*% M))"},
      {"P2.14", "((M %*% N) %*% M) %*% N", kNo, "(M %*% (N %*% M)) %*% N"},
      {"P2.15", "sum(rowSums(A))", kNo, "sum(A)"},
      {"P2.16", "trace(inv(C) %*% inv(D)) + trace(D)", kNo,
       "trace(inv(D %*% C)) + trace(D)"},
      {"P2.17", "t(inv(C + D)) %*% inv(inv(D)) %*% inv(C) %*% C", kNo,
       "t(inv(C + D)) %*% D"},
      {"P2.18", "colSums(t(A) + t(B))", kNo, "t(rowSums(A + B))"},
      {"P2.19", "inv(t(C) %*% D)", kOp, ""},
      {"P2.20", "t(M %*% (N %*% M))", kOp, ""},
      {"P2.21", "inv(t(D) %*% D) %*% (t(D) %*% vd)", kOp, ""},
      {"P2.22", "exp(t(C + D))", kOp, ""},
      {"P2.23", "det(C) * det(D) * det(C)", kOp, ""},
      {"P2.24", "t(inv(D) %*% C)", kOp, ""},
      {"P2.25", "(u1 %*% t(v2) - X) %*% v2", kNo,
       "u1 %*% (t(v2) %*% v2) - X %*% v2"},
      {"P2.26", "exp(inv(C + D))", kOp, ""},
      {"P2.27", "t(inv(t(C + D))) %*% D %*% C", kOp, ""},
  };
}

}  // namespace

const std::vector<Pipeline>& LaBenchmark() {
  static const auto* kBenchmark = new std::vector<Pipeline>(BuildBenchmark());
  return *kBenchmark;
}

const Pipeline* FindPipeline(const std::string& id) {
  for (const Pipeline& p : LaBenchmark()) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const std::vector<ViewSpec>& VexpViews() {
  static const auto* kViews = new std::vector<ViewSpec>{
      {"V1", "inv(D)"},
      {"V2", "inv(t(C))"},
      {"V3", "N %*% M"},
      {"V4", "u1 %*% t(v2)"},
      {"V5", "D %*% C"},
      {"V6", "A + B"},
      {"V7", "inv(C)"},
      {"V8", "t(C) %*% D"},
      {"V9", "inv(D + C)"},
      {"V10", "det(C %*% D)"},
      {"V11", "det(D %*% C)"},
      {"V12", "t(D %*% C)"},
  };
  return *kViews;
}

const std::vector<ViewRewrite>& Table15Rewrites() {
  static const auto* kRewrites = new std::vector<ViewRewrite>{
      {"P1.2", "t(V6)"},
      {"P1.3", "V7 %*% V1"},
      {"P1.4", "V6 %*% v1"},
      {"P1.11", "t(colSums(V6))"},
      {"P1.15", "M %*% V3"},
      {"P1.19", "V2"},
      {"P1.20", "trace(V7)"},
      {"P1.22", "trace(V9)"},
      {"P2.2", "det(V1)"},
      {"P2.5", "det(V9)"},
      {"P2.9", "trace(V12) + trace(D)"},
      {"P2.11", "sum(V6)"},
      {"P2.13", "t(M %*% V3)"},
      {"P2.14", "M %*% V3 %*% N"},
      {"P2.17", "t(V9) %*% D"},
      {"P2.18", "t(rowSums(V6))"},
      {"P2.20", "t(M %*% V3)"},
      {"P2.21", "V1 %*% (t(V1) %*% (t(D) %*% vd))"},
      {"P2.25", "V4 %*% v2 - X %*% v2"},
      {"P2.26", "exp(V9)"},
      {"P2.27", "t(V9) %*% V5"},
  };
  return *kRewrites;
}

}  // namespace hadad::core
