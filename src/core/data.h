#ifndef HADAD_CORE_DATA_H_
#define HADAD_CORE_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/workspace.h"

namespace hadad::core {

// Matrix-name bindings of the LA benchmark (Table 6), scaled to laptop
// size while preserving aspect ratios and sparsity fractions (see
// DESIGN.md's substitution table). Paper sizes in comments.
struct LaBenchConfig {
  int64_t n_a = 20000;  // A, B rows            (paper: 1M,   AL1/NL1/Syn3).
  int64_t n_m = 1000;   // M rows / N cols      (paper: 50K,  AS/NS/Syn1).
  int64_t k = 100;      // Feature width        (paper: 100).
  int64_t n_c = 256;    // C, D side            (paper: 10K,  Syn5).
  int64_t n_r = 100;    // R side               (paper: 100,  Syn10).
  int64_t x_rows = 2000;  // X rows             (paper: 100K, AL3/NL3).
  int64_t x_cols = 1000;  // X cols             (paper: 50K).

  // Sparse bindings (the "AS in the role of M" variations, §9.1.1):
  // fraction of non-zero cells, negative = dense.
  double a_sparsity = -1.0;  // Amazon-like A would be 0.000075.
  double m_sparsity = -1.0;  // AS: 0.000075; NS: 0.014.
  double x_sparsity = 0.002;  // AL3-like X (always sparse in the paper).
};

// Builds the benchmark workspace: A, B, C, D, M, N, R, X, v1, v2, u1, vd.
// vd is a D-compatible vector (the paper's Table 6 binds v1 = Syn7 even
// where a D-length vector is required, e.g. P2.21; we bind vd explicitly).
// C and D are diagonally dominated so inverse-heavy pipelines are well
// conditioned.
engine::Workspace MakeLaBenchWorkspace(Rng& rng,
                                       const LaBenchConfig& config = {});

// Table 4/5 dataset inventory (scaled): used by bench_datasets to print the
// data the benchmarks run on.
struct DatasetSpec {
  std::string name;
  int64_t rows;
  int64_t cols;
  double sparsity;  // Non-zero fraction; 1.0 = dense.
  std::string paper_shape;  // The unscaled shape the paper used.
};
std::vector<DatasetSpec> PaperDatasets(const LaBenchConfig& config = {});

}  // namespace hadad::core

#endif  // HADAD_CORE_DATA_H_
