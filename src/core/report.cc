#include "core/report.h"

#include <algorithm>
#include <cstdio>

#include "la/parser.h"

namespace hadad::core {

namespace {

// Best-of-N wall time for one plan.
Result<double> TimeExecution(const engine::Engine& eng,
                             const la::ExprPtr& expr, int repeats,
                             matrix::Matrix* last_result) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    engine::ExecStats stats;
    Result<matrix::Matrix> out = eng.Run(expr, &stats);
    if (!out.ok()) return out.status();
    best = std::min(best, stats.seconds);
    if (last_result != nullptr) *last_result = std::move(out).value();
  }
  return best;
}

}  // namespace

Result<ComparisonRow> ComparePipeline(const std::string& id,
                                      const std::string& pipeline_text,
                                      const pacb::Optimizer& optimizer,
                                      const engine::Engine& engine,
                                      int repeats) {
  ComparisonRow row;
  row.id = id;
  row.original = pipeline_text;
  HADAD_ASSIGN_OR_RETURN(la::ExprPtr original,
                         la::ParseExpression(pipeline_text));
  HADAD_ASSIGN_OR_RETURN(pacb::RewriteResult rewrite,
                         optimizer.Optimize(original));
  row.rewrite = la::ToString(rewrite.best);
  row.rw_find_seconds = rewrite.optimize_seconds;
  row.improved = rewrite.improved;

  matrix::Matrix original_value;
  HADAD_ASSIGN_OR_RETURN(
      row.q_exec_seconds,
      TimeExecution(engine, original, repeats, &original_value));
  matrix::Matrix rewrite_value;
  HADAD_ASSIGN_OR_RETURN(
      row.rw_exec_seconds,
      TimeExecution(engine, rewrite.best, repeats, &rewrite_value));
  row.values_agree = original_value.ApproxEquals(rewrite_value, 1e-5);
  row.speedup = row.rw_exec_seconds > 0
                    ? row.q_exec_seconds / row.rw_exec_seconds
                    : 1.0;
  const double total = row.q_exec_seconds + row.rw_find_seconds;
  row.overhead_pct = total > 0 ? 100.0 * row.rw_find_seconds / total : 0.0;
  return row;
}

void PrintComparisonHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-7s %12s %12s %12s %9s %9s %-6s %s\n", "id", "Qexec[ms]",
              "RWexec[ms]", "RWfind[ms]", "speedup", "ovhd[%]", "agree",
              "rewriting");
}

void PrintComparisonRow(const ComparisonRow& row) {
  std::printf("%-7s %12.3f %12.3f %12.3f %8.2fx %9.2f %-6s %s\n",
              row.id.c_str(), row.q_exec_seconds * 1e3,
              row.rw_exec_seconds * 1e3, row.rw_find_seconds * 1e3,
              row.speedup, row.overhead_pct,
              row.values_agree ? "yes" : "NO", row.rewrite.c_str());
}

}  // namespace hadad::core
