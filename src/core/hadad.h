#ifndef HADAD_CORE_HADAD_H_
#define HADAD_CORE_HADAD_H_

// Umbrella header: the public API of the HADAD library.
//
// Quick tour (see examples/quickstart.cpp):
//   1. Declare data, views, and Morpheus joins on an api::SessionBuilder;
//      Build() freezes them into an api::Session — the library's front door.
//   2. session->Prepare("t(M %*% N)") parses + rewrites once (the PACB
//      chase under the MMC constraint knowledge base) and returns a
//      reusable PreparedQuery with Execute()/ExecuteOriginal()/Explain().
//   3. session->Run(text) is the serving one-liner: a shared plan cache
//      keyed by the canonical expression makes repeated pipelines pay
//      RW_find once, even across threads.
//
// Expert layers (what Session wires together) remain public: put matrices
// in an engine::Workspace, build a pacb::Optimizer over
// workspace.BuildMetaCatalog(), and execute with engine::Engine or
// morpheus::MorpheusEngine.

#include "api/session.h"
#include "core/data.h"
#include "core/report.h"
#include "core/workloads.h"
#include "cost/cost_model.h"
#include "cost/estimator.h"
#include "engine/evaluator.h"
#include "engine/profiles.h"
#include "engine/view_catalog.h"
#include "engine/workspace.h"
#include "hybrid/dataset.h"
#include "hybrid/queries.h"
#include "la/catalog.h"
#include "la/encoder.h"
#include "la/expr.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"
#include "matrix/matrix_io.h"
#include "morpheus/engine.h"
#include "morpheus/generator.h"
#include "pacb/optimizer.h"
#include "relational/casting.h"
#include "relational/operators.h"
#include "relational/table.h"

#endif  // HADAD_CORE_HADAD_H_
