#ifndef HADAD_CORE_HADAD_H_
#define HADAD_CORE_HADAD_H_

// Umbrella header: the public API of the HADAD library.
//
// Quick tour (see examples/quickstart.cc):
//   1. Put matrices into an engine::Workspace.
//   2. Build a pacb::Optimizer over workspace.BuildMetaCatalog(); register
//      views (AddViewText) and Morpheus joins (AddMorpheusJoin).
//   3. OptimizeText("t(M %*% N)") returns the minimum-cost equivalent
//      rewriting under the MMC constraint knowledge base.
//   4. Execute either expression with engine::Engine.

#include "core/data.h"
#include "core/report.h"
#include "core/workloads.h"
#include "cost/cost_model.h"
#include "cost/estimator.h"
#include "engine/evaluator.h"
#include "engine/profiles.h"
#include "engine/view_catalog.h"
#include "engine/workspace.h"
#include "hybrid/dataset.h"
#include "hybrid/queries.h"
#include "la/catalog.h"
#include "la/encoder.h"
#include "la/expr.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"
#include "matrix/matrix_io.h"
#include "morpheus/engine.h"
#include "morpheus/generator.h"
#include "pacb/optimizer.h"
#include "relational/casting.h"
#include "relational/operators.h"
#include "relational/table.h"

#endif  // HADAD_CORE_HADAD_H_
