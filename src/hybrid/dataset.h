#ifndef HADAD_HYBRID_DATASET_H_
#define HADAD_HYBRID_DATASET_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "matrix/matrix.h"
#include "relational/table.h"

namespace hadad::hybrid {

// The two hybrid micro-benchmarks of §9.2.2, regenerated synthetically at
// laptop scale (DESIGN.md's substitution table):
//  * kTwitter — User/Tweet tables joined into the dense feature matrix M,
//    plus a tweet-hashtag-filterlevel fact table (the JSON extraction)
//    filtered on keyword+country that casts into the ultra-sparse matrix N.
//  * kMimic — Patients/Admissions joined into M (with a one-hot encoded
//    care-unit column), plus a patient-service-outcome fact table for N.
enum class BenchmarkKind { kTwitter, kMimic };

struct DatasetConfig {
  BenchmarkKind kind = BenchmarkKind::kTwitter;
  int64_t num_entities = 2000;   // Tweets / admissions (rows of M and N).
  int64_t num_dims = 500;        // Users / patients (join partner rows).
  int64_t num_categories = 100;  // Hashtags / services (columns of N).
  // Fraction of fact rows surviving the RA-stage selection (keyword+country
  // for Twitter; care-unit for MIMIC). The paper's selectivity sweeps
  // (Figures 10b/10c, 11b/11c) vary this.
  double selection_fraction = 1.0;
  // Fact rows per entity (controls N's sparsity).
  double facts_per_entity = 2.0;
};

struct Dataset {
  DatasetConfig config;
  // Fact side ("Tweet" / "Admission"): key column + numeric features +
  // selection attributes.
  relational::Table fact_table;
  // Dimension side ("User" / "Patient"): key column + numeric features.
  relational::Table dim_table;
  // Sparse fact source ("TweetHashtagJSON" / "Callout⋈Service"): entity row,
  // category id, level/outcome, plus the selection attributes.
  relational::Table sparse_facts;
  // Column names for matrix casting.
  std::vector<std::string> fact_features;
  std::vector<std::string> dim_features;
};

Dataset GenerateDataset(Rng& rng, const DatasetConfig& config);

// The Q_RA stage's outputs: the normalized-join pieces and the sparse
// analysis matrix.
struct Preprocessed {
  matrix::Matrix t;  // Fact-side features, num_entities x dT.
  matrix::Matrix k;  // PK-FK indicator, num_entities x num_dims (sparse).
  matrix::Matrix u;  // Dimension-side features, num_dims x dU.
  matrix::Matrix m;  // Materialized join output [T | K U].
  matrix::Matrix n;  // Sparse entity-category matrix.
  double ra_seconds = 0.0;
};

// Runs the Q_RA stage: joins + matrix casting + building N from the fact
// source under the keyword/country (resp. care-unit) selection.
// `push_level_filter`: HADAD's combined rewriting additionally pushes the
// LA-stage level predicate (level <= max_level) into this relational stage
// (§2's filter-level example); the engines' original plans apply it later
// via FilterLevelAtMost.
Result<Preprocessed> Preprocess(const Dataset& dataset, bool push_level_filter,
                                double max_level);

// The Q_FLA stage: keeps only cells with value <= level (SystemML's
// ifelse(N <= level, N, 0)).
matrix::Matrix FilterLevelAtMost(const matrix::Matrix& n, double level);

}  // namespace hadad::hybrid

#endif  // HADAD_HYBRID_DATASET_H_
