#include "hybrid/dataset.h"

#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/timer.h"
#include "relational/casting.h"
#include "relational/operators.h"

namespace hadad::hybrid {

namespace {

using relational::ColumnSpec;
using relational::CompareOp;
using relational::Predicate;
using relational::Row;
using relational::Table;
using relational::Value;
using relational::ValueType;

constexpr int kFactFeatureCount = 7;  // Tweet engagement / admission vitals.
constexpr int kDimFeatureCount = 5;   // User profile / patient profile.

}  // namespace

Dataset GenerateDataset(Rng& rng, const DatasetConfig& config) {
  Dataset out;
  out.config = config;
  const bool twitter = config.kind == BenchmarkKind::kTwitter;

  // --- Dimension table (User / Patient). --------------------------------
  std::vector<ColumnSpec> dim_schema{{twitter ? "uid" : "patient_id",
                                      ValueType::kInt}};
  for (int f = 0; f < kDimFeatureCount; ++f) {
    std::string name = (twitter ? "u_f" : "p_f") + std::to_string(f);
    dim_schema.push_back({name, ValueType::kDouble});
    out.dim_features.push_back(name);
  }
  out.dim_table = Table(dim_schema);
  for (int64_t i = 0; i < config.num_dims; ++i) {
    Row row{Value(i)};
    for (int f = 0; f < kDimFeatureCount; ++f) {
      row.push_back(rng.Uniform(0.0, 1.0));
    }
    HADAD_CHECK(out.dim_table.AppendRow(std::move(row)).ok());
  }

  // --- Fact table (Tweet / Admission). -----------------------------------
  std::vector<ColumnSpec> fact_schema{
      {twitter ? "tid" : "adm_id", ValueType::kInt},
      {twitter ? "uid" : "patient_id", ValueType::kInt}};
  for (int f = 0; f < kFactFeatureCount; ++f) {
    std::string name = (twitter ? "t_f" : "a_f") + std::to_string(f);
    fact_schema.push_back({name, ValueType::kDouble});
    out.fact_features.push_back(name);
  }
  out.fact_table = Table(fact_schema);
  for (int64_t i = 0; i < config.num_entities; ++i) {
    Row row{Value(i),
            Value(static_cast<int64_t>(rng.NextBelow(
                static_cast<uint64_t>(config.num_dims))))};
    for (int f = 0; f < kFactFeatureCount; ++f) {
      row.push_back(rng.Uniform(0.0, 1.0));
    }
    HADAD_CHECK(out.fact_table.AppendRow(std::move(row)).ok());
  }

  // --- Sparse fact source. ------------------------------------------------
  // Twitter: (tweet row, hashtag, filter_level, text, country).
  // MIMIC:   (admission row, service, outcome, note, care_unit).
  out.sparse_facts = Table({{"entity", ValueType::kInt},
                            {"category", ValueType::kInt},
                            {"level", ValueType::kDouble},
                            {twitter ? "text" : "note", ValueType::kString},
                            {twitter ? "country" : "care_unit",
                             ValueType::kString}});
  const int64_t num_facts = static_cast<int64_t>(
      config.facts_per_entity * static_cast<double>(config.num_entities));
  // One fact per (entity, category) pair — a tweet mentions a hashtag at one
  // filter level — so relational and LA-stage level filters agree cell-wise.
  std::unordered_set<int64_t> used_pairs;
  for (int64_t i = 0; i < num_facts; ++i) {
    const bool selected = rng.NextDouble() < config.selection_fraction;
    std::string text;
    std::string region;
    if (twitter) {
      text = selected ? "breaking covid news" : "cat pictures";
      region = selected ? "US" : "FR";
    } else {
      text = "routine";
      region = selected ? "CCU" : "MICU";
    }
    int64_t entity = 0;
    int64_t category = 0;
    bool found_free_pair = false;
    for (int attempt = 0; attempt < 16; ++attempt) {
      entity = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(config.num_entities)));
      category = static_cast<int64_t>(
          rng.NextBelow(static_cast<uint64_t>(config.num_categories)));
      if (used_pairs.insert(entity * config.num_categories + category)
              .second) {
        found_free_pair = true;
        break;
      }
    }
    if (!found_free_pair) continue;  // Saturated; skip this fact.
    Row row{Value(entity), Value(category),
            Value(1.0 + static_cast<double>(rng.NextBelow(6))),  // 1..6.
            Value(text), Value(region)};
    HADAD_CHECK(out.sparse_facts.AppendRow(std::move(row)).ok());
  }
  return out;
}

Result<Preprocessed> Preprocess(const Dataset& dataset, bool push_level_filter,
                                double max_level) {
  Timer timer;
  const bool twitter = dataset.config.kind == BenchmarkKind::kTwitter;
  Preprocessed out;

  // M = fact ⋈ dim, cast as matrices (kept factorized as T, K, U and also
  // materialized for engines that want the denormalized form).
  const std::string key = twitter ? "uid" : "patient_id";
  HADAD_ASSIGN_OR_RETURN(
      out.t, relational::TableToMatrix(dataset.fact_table,
                                       dataset.fact_features));
  HADAD_ASSIGN_OR_RETURN(
      out.u, relational::TableToMatrix(dataset.dim_table,
                                       dataset.dim_features));
  // Indicator K from the FK column.
  {
    HADAD_ASSIGN_OR_RETURN(int64_t fk, dataset.fact_table.ColumnIndex(key));
    std::vector<matrix::Triplet> triplets;
    triplets.reserve(static_cast<size_t>(dataset.fact_table.num_rows()));
    for (int64_t i = 0; i < dataset.fact_table.num_rows(); ++i) {
      HADAD_ASSIGN_OR_RETURN(
          double d, relational::AsDouble(
                        dataset.fact_table.row(i)[static_cast<size_t>(fk)]));
      triplets.push_back({i, static_cast<int64_t>(d), 1.0});
    }
    out.k = matrix::Matrix(matrix::SparseMatrix::FromTriplets(
        dataset.fact_table.num_rows(), dataset.dim_table.num_rows(),
        std::move(triplets)));
  }
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix ku, matrix::Multiply(out.k, out.u));
  HADAD_ASSIGN_OR_RETURN(out.m, matrix::Cbind(out.t, ku));

  // N: select the relevant fact rows, then cast to a sparse matrix.
  relational::PredicatePtr selection =
      twitter ? Predicate::And(
                    Predicate::Compare("text", CompareOp::kContains,
                                       std::string("covid")),
                    Predicate::Compare("country", CompareOp::kEq,
                                       std::string("US")))
              : Predicate::Compare("care_unit", CompareOp::kEq,
                                   std::string("CCU"));
  if (push_level_filter) {
    // HADAD's combined rewriting: the LA-stage level predicate moves into
    // the relational selection (§2).
    selection = Predicate::And(
        selection, Predicate::Compare("level", CompareOp::kLe, max_level));
  }
  HADAD_ASSIGN_OR_RETURN(relational::Table selected,
                         relational::Select(dataset.sparse_facts, selection));
  HADAD_ASSIGN_OR_RETURN(
      out.n, relational::FactsToSparseMatrix(
                 selected, "entity", "category", "level",
                 dataset.config.num_entities, dataset.config.num_categories));
  out.ra_seconds = timer.ElapsedSeconds();
  return out;
}

matrix::Matrix FilterLevelAtMost(const matrix::Matrix& n, double level) {
  matrix::SparseMatrix s = n.ToSparse();
  std::vector<matrix::Triplet> kept;
  kept.reserve(static_cast<size_t>(s.nnz()));
  for (int64_t i = 0; i < s.rows(); ++i) {
    for (int64_t p = s.row_ptr()[static_cast<size_t>(i)];
         p < s.row_ptr()[static_cast<size_t>(i) + 1]; ++p) {
      double v = s.values()[static_cast<size_t>(p)];
      if (v <= level) {
        kept.push_back({i, s.col_idx()[static_cast<size_t>(p)], v});
      }
    }
  }
  return matrix::Matrix(
      matrix::SparseMatrix::FromTriplets(s.rows(), s.cols(), std::move(kept)));
}

}  // namespace hadad::hybrid
