#include "hybrid/queries.h"

#include "matrix/generate.h"

namespace hadad::hybrid {

std::vector<HybridQuery> MicroBenchmarkQueries() {
  return {
      // Q1: V3 via Morpheus rowSums pushdown + distributing the vector
      // multiplication over the sparse NF (the §2 ALS example).
      {"Q1", "rowSums(X %*% M) + X %*% ((u %*% t(v) + NF) %*% v)"},
      // Q2: colSums(t(X M)) = t(rowSums(X M)) = t(X V3).
      {"Q2", "u5 %*% colSums(t(X %*% M))"},
      // Q3: distribute (NF + X2) v; colSums(M) = V4.
      {"Q3", "((NF + X2) %*% v) %*% colSums(M)"},
      // Q4: distribute sum over +; sum(NF C2) via the sum-product rule.
      {"Q4", "sum(X2 + NF %*% C2)"},
      // Q5: colSums(M Y) = colSums(M) Y = V4 Y.
      {"Q5", "u5 %*% colSums(M %*% Y)"},
      // Q6: V4 again, plus the cheap sparse product t(NF) u.
      {"Q6", "t(colSums(M %*% Y)) + t(NF) %*% u"},
      // Q7: chain reordering around the ultra-sparse NF.
      {"Q7", "(X %*% NF) %*% u6"},
      // Q8: distribute trace; V4; optimal chain order.
      {"Q8", "NF * trace(C2 + v %*% (colSums(M %*% Y) %*% C2))"},
      // Q9: sum(colSums(C5)^T (*) rowSums(M)) = sum(C5 M) = sum(V5).
      {"Q9", "X2 * sum(t(colSums(C5)) * rowSums(M)) + NF"},
      // Q10: distribute M over +; C5 M = V5.
      {"Q10", "NF * sum((X4 + C5) %*% M)"},
  };
}

std::vector<HybridView> HybridViews() {
  return {
      {"V3", "rowSums(T) + K %*% rowSums(U)"},
      {"V4", "cbind(colSums(T), colSums(K) %*% U)"},
      {"V5", "cbind(C5 %*% T, (C5 %*% K) %*% U)"},
  };
}

Result<std::shared_ptr<api::Session>> BuildHybridSession(
    Rng& rng, const Preprocessed& pre, matrix::Matrix nf,
    pacb::EstimatorKind estimator) {
  const int64_t n_s = pre.m.rows();
  const int64_t d_m = pre.m.cols();
  const int64_t n_h = nf.cols();
  const int64_t q = 50;

  pacb::OptimizerOptions options;
  options.estimator = estimator;
  // Micro-hybrid pipelines need only short derivation chains to reach the
  // views; capping rounds keeps RW_find low (the paper's overhead story).
  options.chase.max_rounds = 6;
  options.chase.max_facts = 9000;

  api::SessionBuilder builder;
  builder.SetOptimizerOptions(options)
      .Put("T", pre.t)
      .Put("K", pre.k)
      .Put("U", pre.u)
      .Put("M", pre.m)
      .Put("NF", std::move(nf))
      .Put("X", matrix::RandomDense(rng, q, n_s))
      .Put("X2", matrix::RandomDense(rng, n_s, n_h))
      .Put("X4", matrix::RandomDense(rng, q, n_s))
      .Put("C5", matrix::RandomDense(rng, q, n_s))
      .Put("C2", matrix::RandomDense(rng, n_h, n_h))
      .Put("Y", matrix::RandomDense(rng, d_m, n_h))
      .Put("u", matrix::RandomDense(rng, n_s, 1))
      .Put("v", matrix::RandomDense(rng, n_h, 1))
      .Put("u5", matrix::RandomDense(rng, n_h, 1))
      .Put("u6", matrix::RandomDense(rng, n_h, 1))
      .AddMorpheusJoin({"T", "K", "U", "M"});
  for (const HybridView& v : HybridViews()) {
    builder.AddView(v.name, v.definition);
  }
  return builder.Build();
}

}  // namespace hadad::hybrid
