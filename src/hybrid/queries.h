#ifndef HADAD_HYBRID_QUERIES_H_
#define HADAD_HYBRID_QUERIES_H_

#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "common/status.h"
#include "hybrid/dataset.h"
#include "pacb/optimizer.h"

namespace hadad::hybrid {

// The ten micro-hybrid Q_LA pipelines (Table 7, adapted to self-consistent
// scaled shapes; see DESIGN.md). Names: M the join matrix, NF the filtered
// sparse matrix, T/K/U the normalized pieces, and synthetic aux matrices
// X (q x nS), X2 (nS x nH), X4/C5 (q x nS), C2 (nH x nH), Y (dM x nH),
// u (nS x 1), v/u5/u6 (nH x 1).
struct HybridQuery {
  std::string id;
  std::string qla;
};
std::vector<HybridQuery> MicroBenchmarkQueries();

// Hybrid views (§9.2.2): defined over the *base* tables-as-matrices, so a
// rewriting can only reach them through Morpheus's rules + LA properties:
//   V3 = rowSums(T) + K rowSums(U)            ( = rowSums(M) )
//   V4 = [colSums(T) | colSums(K) U]          ( = colSums(M) )
//   V5 = [C5 T | (C5 K) U]                    ( = C5 M )
struct HybridView {
  std::string name;
  std::string definition;
};
std::vector<HybridView> HybridViews();

// Builds the benchmark api::Session: workspace with T/K/U/M/NF, aux
// matrices and the materialized hybrid views, optimizer configured with the
// morpheusJoin declaration and view constraints. `nf` is the (already
// filtered) analysis matrix bound as "NF".
Result<std::shared_ptr<api::Session>> BuildHybridSession(
    Rng& rng, const Preprocessed& pre, matrix::Matrix nf,
    pacb::EstimatorKind estimator);

}  // namespace hadad::hybrid

#endif  // HADAD_HYBRID_QUERIES_H_
