#include "views/maintenance.h"

namespace hadad::views {

namespace {

using la::Expr;
using la::ExprPtr;
using la::OpKind;

bool IsScalarLit(const ExprPtr& e) {
  return e->kind() == OpKind::kScalarConst;
}

// Row-partitioned substitution: returns `e` with leaf→delta when the rows
// of `e` track the rows of the leaf (e([A; Δ]) = [e(A); e(Δ)]); nullopt
// otherwise. The base case is the leaf itself, so an A-free expression is
// never row-partitioned (its rows do not grow with the append).
std::optional<ExprPtr> RowPartitionedSub(const ExprPtr& e,
                                         const std::string& leaf,
                                         const std::string& delta_name) {
  switch (e->kind()) {
    case OpKind::kMatrixRef:
      if (e->name() == leaf) return Expr::MatrixRef(delta_name);
      return std::nullopt;
    case OpKind::kMultiply: {
      const ExprPtr& lhs = e->child(0);
      const ExprPtr& rhs = e->child(1);
      // s %*% R: scalar multiply scales every row in place.
      if (IsScalarLit(lhs)) {
        auto sub = RowPartitionedSub(rhs, leaf, delta_name);
        if (sub.has_value()) return Expr::Binary(OpKind::kMultiply, lhs, *sub);
        return std::nullopt;
      }
      // R %*% C: row i of the product depends on row i of R only; C must
      // not reference the leaf (its value is constant under the append).
      if (!la::ReferencesMatrix(*rhs, leaf)) {
        auto sub = RowPartitionedSub(lhs, leaf, delta_name);
        if (sub.has_value()) return Expr::Binary(OpKind::kMultiply, *sub, rhs);
      }
      return std::nullopt;
    }
    case OpKind::kHadamard:
    case OpKind::kDivide: {
      // Element-wise scale by a scalar literal keeps rows in place.
      const ExprPtr& lhs = e->child(0);
      const ExprPtr& rhs = e->child(1);
      if (IsScalarLit(rhs)) {
        auto sub = RowPartitionedSub(lhs, leaf, delta_name);
        if (sub.has_value()) return Expr::Binary(e->kind(), *sub, rhs);
      }
      if (e->kind() == OpKind::kHadamard && IsScalarLit(lhs)) {
        auto sub = RowPartitionedSub(rhs, leaf, delta_name);
        if (sub.has_value()) return Expr::Binary(e->kind(), lhs, *sub);
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<la::ExprPtr> BuildAppendDelta(const la::ExprPtr& definition,
                                            const std::string& leaf,
                                            const std::string& delta_name) {
  if (definition == nullptr || !la::ReferencesMatrix(*definition, leaf)) {
    return std::nullopt;
  }
  switch (definition->kind()) {
    case OpKind::kColSums:
    case OpKind::kSum: {
      auto sub = RowPartitionedSub(definition->child(0), leaf, delta_name);
      if (sub.has_value()) return Expr::Unary(definition->kind(), *sub);
      return std::nullopt;
    }
    case OpKind::kMultiply: {
      const ExprPtr& lhs = definition->child(0);
      const ExprPtr& rhs = definition->child(1);
      // t(R1) %*% R2: t([X1; D1]) %*% [X2; D2] = t(X1) X2 + t(D1) D2.
      if (lhs->kind() == OpKind::kTranspose) {
        auto s1 = RowPartitionedSub(lhs->child(0), leaf, delta_name);
        auto s2 = RowPartitionedSub(rhs, leaf, delta_name);
        if (s1.has_value() && s2.has_value()) {
          return Expr::Binary(OpKind::kMultiply,
                              Expr::Unary(OpKind::kTranspose, *s1), *s2);
        }
        return std::nullopt;
      }
      // s %*% f: the scale distributes over the delta.
      if (IsScalarLit(lhs)) {
        auto delta = BuildAppendDelta(rhs, leaf, delta_name);
        if (delta.has_value()) {
          return Expr::Binary(OpKind::kMultiply, lhs, *delta);
        }
      }
      return std::nullopt;
    }
    case OpKind::kAdd: {
      // Each addend either carries a delta or is A-free (contributes none);
      // at least one must carry (ReferencesMatrix above guarantees it).
      const ExprPtr& lhs = definition->child(0);
      const ExprPtr& rhs = definition->child(1);
      std::optional<ExprPtr> dl, dr;
      if (la::ReferencesMatrix(*lhs, leaf)) {
        dl = BuildAppendDelta(lhs, leaf, delta_name);
        if (!dl.has_value()) return std::nullopt;
      }
      if (la::ReferencesMatrix(*rhs, leaf)) {
        dr = BuildAppendDelta(rhs, leaf, delta_name);
        if (!dr.has_value()) return std::nullopt;
      }
      if (dl.has_value() && dr.has_value()) {
        return Expr::Binary(OpKind::kAdd, *dl, *dr);
      }
      return dl.has_value() ? dl : dr;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace hadad::views
