#include "views/advisor.h"

#include <algorithm>
#include <utility>

namespace hadad::views {

namespace {

bool ReferencesAnyMatrix(const la::Expr& e) {
  if (e.kind() == la::OpKind::kMatrixRef) return true;
  for (const la::ExprPtr& child : e.children()) {
    if (ReferencesAnyMatrix(*child)) return true;
  }
  return false;
}

}  // namespace

double EstimateBytes(const cost::ClassMeta& meta) {
  const double cells = meta.shape.Cells();
  const double nnz = meta.shape.NnzOrDense();
  const double dense_bytes = cells * 8.0;
  // CSR: value + column index per non-zero, plus the row-pointer array.
  const double sparse_bytes =
      nnz * 16.0 + (static_cast<double>(meta.shape.rows) + 1.0) * 8.0;
  return (cells > 0 && nnz / cells < 0.5) ? sparse_bytes : dense_bytes;
}

ViewAdvisor::ViewAdvisor(std::unique_ptr<cost::SparsityEstimator> estimator)
    : estimator_(std::move(estimator)) {
  if (estimator_ == nullptr) {
    estimator_ = std::make_unique<cost::NaiveMetadataEstimator>();
  }
}

std::vector<Recommendation> ViewAdvisor::Recommend(
    const std::vector<SubexprStat>& observed, const la::MetaCatalog& catalog,
    const cost::DataCatalog* data, const AdvisorOptions& options,
    const std::function<bool(const SubexprStat&)>& skip) const {
  std::vector<Recommendation> recs;
  for (const SubexprStat& stat : observed) {
    // Threshold on the decayed mass (== raw hits when decay is off): a
    // form that crossed min_hits long ago but stopped running no longer
    // qualifies on a long-lived session.
    if (stat.weight < static_cast<double>(options.min_hits)) continue;
    if (stat.expr == nullptr || stat.expr->is_leaf()) continue;
    // A view of pure scalar arithmetic saves nothing worth storing.
    if (!ReferencesAnyMatrix(*stat.expr)) continue;
    if (skip != nullptr && skip(stat)) continue;

    auto est = cost::EstimateExpression(*stat.expr, catalog, *estimator_,
                                        data);
    if (!est.ok()) continue;  // Shape moved under us; not a candidate.

    Recommendation rec;
    rec.canonical = stat.canonical;
    rec.definition = stat.expr;
    rec.hits = stat.hits;
    // Recompute estimate: intermediates (γ) plus producing the output
    // itself — reading a materialized view pays neither.
    rec.est_recompute_cost = est->cost + est->output.SizeEstimate();
    rec.est_bytes = EstimateBytes(est->output);
    if (options.max_bytes > 0 &&
        rec.est_bytes > static_cast<double>(options.max_bytes)) {
      continue;
    }
    rec.measured_seconds_per_hit =
        stat.weight > 0.0 ? stat.measured_seconds / stat.weight : 0.0;
    // Benefit per execution: prefer the measured signal; fall back to the
    // size-based estimate when the engine reported no timings. Either way
    // the unit is consistent across one session's candidates. Frequency is
    // the decayed weight, so the current mix outranks stale workloads.
    const double per_hit = rec.measured_seconds_per_hit > 0.0
                               ? rec.measured_seconds_per_hit
                               : rec.est_recompute_cost;
    rec.score = stat.weight * per_hit / std::max(1.0, rec.est_bytes);
    recs.push_back(std::move(rec));
  }
  std::sort(recs.begin(), recs.end(),
            [](const Recommendation& a, const Recommendation& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.canonical < b.canonical;
            });
  if (recs.size() > options.max_recommendations) {
    recs.resize(options.max_recommendations);
  }
  return recs;
}

}  // namespace hadad::views
