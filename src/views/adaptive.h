#ifndef HADAD_VIEWS_ADAPTIVE_H_
#define HADAD_VIEWS_ADAPTIVE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cost/estimator.h"
#include "engine/workspace.h"
#include "exec/thread_pool.h"
#include "la/expr.h"
#include "matrix/matrix.h"
#include "obs/trace.h"
#include "pacb/optimizer.h"
#include "views/advisor.h"
#include "views/view_store.h"
#include "views/workload_monitor.h"

namespace hadad::views {

struct AdaptiveOptions {
  // Byte budget for all adaptively materialized views together; the store
  // never exceeds it (eviction runs before admission).
  int64_t budget_bytes = int64_t{256} << 20;
  // Executions of a subexpression before it becomes a candidate.
  int64_t min_hits = 3;
  // At most this many materializations are queued per advisor sweep (one
  // sweep runs after each observed execution, skipped while one is
  // already in flight).
  int max_views_per_sweep = 1;
  // Entry-count cap for the store (each view extends the rewrite search).
  size_t max_views = 16;
  // Candidates the advisor ranks per sweep.
  size_t max_candidates = 4;
  // Half-life (in observed executions) of the workload monitor's decayed
  // hit weights; 0 keeps raw lifetime counts. On long-lived sessions a
  // positive half-life stops week-old workloads from outranking the
  // current mix.
  double monitor_half_life_runs = 0.0;
  // Materialize inline inside OnExecution instead of on the background
  // worker — deterministic single-threaded behavior for tests.
  bool synchronous = false;
};

struct AdaptiveViewStats {
  int64_t views_created = 0;
  int64_t views_evicted = 0;
  // Views dropped because a base-data mutation changed a referenced leaf
  // (distinct from budget evictions above).
  int64_t views_invalidated = 0;
  // Append-driven incremental delta refreshes installed (V ← V + f(Δ)).
  int64_t views_refreshed = 0;
  // Executions whose plan scanned at least one adaptive view.
  int64_t view_hit_runs = 0;
  int64_t materialize_failures = 0;
  int64_t bytes_in_use = 0;
  int64_t budget_bytes = 0;
  int64_t pending = 0;  // Materializations or refreshes queued or in flight.
};

// Closes the loop from observed workload to rewrite-usable views: monitors
// executed plans, asks the advisor for candidates, materializes winners in
// the background, and installs them into the host's workspace + optimizer
// so subsequent rewrites can answer from them — with budgeted eviction
// keeping the store bounded.
//
// Locking contract: `host.state_mu` guards the host's workspace, optimizer,
// and exec catalog. The manager takes it shared to evaluate definitions and
// score candidates, and unique to install/evict views. Callers must NOT
// hold it when invoking OnExecution. `host.on_views_changed` is called
// (under the unique lock) whenever the view set changes; hosts use it to
// invalidate cached plans (api::Session bumps its view generation).
class AdaptiveViewManager {
 public:
  struct Host {
    engine::Workspace* workspace = nullptr;
    pacb::Optimizer* optimizer = nullptr;
    // Optional: the host's maintained leaf-metadata catalog for the exec plan
    // compiler; installed/evicted views are mirrored into it.
    la::MetaCatalog* exec_catalog = nullptr;
    common::SharedMutex* state_mu = nullptr;
    // Evaluates a view definition over `ws` — a pinned workspace snapshot
    // on the background paths (called with NO state lock held; writers
    // proceed concurrently) or the live workspace on the synchronous-mode
    // refresh path, where `state_locked` is true because the caller's
    // mutation already holds the unique state lock. An implementation that
    // must consult state beyond `ws` (the session's Morpheus engine) takes
    // the shared state lock itself only when `state_locked` is false.
    std::function<Result<matrix::Matrix>(
        const la::ExprPtr&, engine::WorkspaceView ws, bool state_locked)>
        evaluate;
    // View-set change notification, called under the unique state lock.
    std::function<void()> on_views_changed;
    // Optional span recorder (borrowed; must outlive the manager). The
    // manager emits "views"-category spans for materializations, delta
    // refreshes, evictions, and mutation propagation. Null = no tracing.
    obs::TraceRecorder* trace = nullptr;
  };

  // `estimator` drives advisor scoring (nullptr = naive metadata).
  AdaptiveViewManager(Host host, AdaptiveOptions options,
                      std::unique_ptr<cost::SparsityEstimator> estimator);
  // Drains in-flight materializations before destruction.
  ~AdaptiveViewManager();

  AdaptiveViewManager(const AdaptiveViewManager&) = delete;
  AdaptiveViewManager& operator=(const AdaptiveViewManager&) = delete;

  // Feeds one executed plan into the monitor, credits view hits, and — when
  // a candidate crosses min_hits — queues its background materialization.
  void OnExecution(const la::ExprPtr& executed,
                   const engine::ExecStats* stats) HADAD_EXCLUDES(admin_mu_);

  // Propagates a base-data mutation into the store. MUST be called under
  // the host's *unique* state lock (the session's mutation path holds it).
  //
  // `changed` holds every name whose value changed arbitrarily (the mutated
  // base plus any user views refreshed from it): stored views referencing
  // one are invalidated — evicted from the store/optimizer/exec catalog,
  // with WorkloadMonitor::Forget keeping advisor stats honest. When the
  // mutation was a row-append, `appended`/`delta_rows` name the grown leaf:
  // a view whose definition is append-additive in it (and touches no
  // `changed` name) is detached and queued for an incremental delta refresh
  // (V ← V + f(Δ)) on the background worker instead of recomputation; it is
  // invisible to rewrites until the refresh installs.
  void OnDataMutation(const std::set<std::string>& changed,
                      const std::string* appended,
                      const matrix::Matrix* delta_rows)
      HADAD_EXCLUDES(admin_mu_);

  // Blocks until every queued materialization has been installed (or
  // failed). Foreground queries never need this; tests and benchmarks use
  // it to make warm-up deterministic.
  void Drain() HADAD_EXCLUDES(admin_mu_);

  // Point-in-time counter snapshot. Thread-safe; may be called anytime.
  AdaptiveViewStats stats() const HADAD_EXCLUDES(admin_mu_);
  // Current adaptive views, deterministically ordered by name. Thread-safe.
  std::vector<StoredView> StoredViews() const HADAD_EXCLUDES(admin_mu_);
  // True when `name` is one of the store's installed views. Thread-safe.
  bool IsAdaptiveViewName(const std::string& name) const
      HADAD_EXCLUDES(admin_mu_);
  // The options this manager was built with. Thread-safe (immutable).
  const AdaptiveOptions& options() const { return options_; }

  // Distinct canonical subexpressions the workload monitor currently
  // tracks (the session exposes this as a gauge). Thread-safe.
  int64_t MonitorTrackedCount() const { return monitor_.tracked_count(); }

  // Canonical forms of the current *viable* materialization candidates:
  // the advisor's latest recommendation set (size-filtered against the
  // budget, failure-filtered) plus everything queued or in flight. The
  // session hands these to the exec plan compiler as fusion barriers, so a
  // subexpression about to become a view keeps its own plan node (operator
  // fusion would otherwise swallow it and starve the monitor's cost
  // attribution). Subexpressions that can never materialize (over budget,
  // failed) are deliberately NOT barriers — fusion stays on for them.
  // Thread-safe and cheap (one mutex + small set copy); called per Run on
  // executor sessions.
  std::set<std::string> FusionBarriers() const HADAD_EXCLUDES(admin_mu_);

 private:
  // One detached view awaiting its incremental refresh: the old value plus
  // the delta expression (which references `temp_name`, a workspace entry
  // holding the appended rows). `deps` stamps the definition's leaves at
  // schedule time — if any moves before install, the refresh is discarded
  // (the data it was computed for is gone).
  struct RefreshTask {
    StoredView meta;
    matrix::Matrix old_value;
    la::ExprPtr delta_expr;
    std::string temp_name;
    engine::WorkspaceSnapshot deps;
  };

  void MaybeScheduleMaterializations() HADAD_EXCLUDES(admin_mu_);
  void MaterializeOne(Recommendation rec) HADAD_EXCLUDES(admin_mu_);
  // `caller_holds_state_lock` is true only on the synchronous-mode path,
  // where the session's mutation call already holds the unique state lock.
  void RefreshOne(RefreshTask task, bool caller_holds_state_lock)
      HADAD_EXCLUDES(admin_mu_);
  // Evaluates old_value + f(Δ) for a detached view against `ws` — a pinned
  // snapshot on the background path (lock-free; writers never wait), the
  // live workspace in synchronous mode (`state_locked` true: the caller's
  // mutation holds the unique state lock).
  Result<matrix::Matrix> ComputeRefreshValue(const RefreshTask& task,
                                             engine::WorkspaceView ws,
                                             bool state_locked);
  // Re-admits the refreshed value (or records the discard) and erases the
  // temp delta entry. The unique state hold covers the workspace/optimizer/
  // exec-catalog writes.
  void InstallRefresh(RefreshTask task, Result<matrix::Matrix> fresh)
      HADAD_REQUIRES(host_.state_mu) HADAD_EXCLUDES(admin_mu_);
  void FinishPending(const std::string& canonical, bool failed)
      HADAD_EXCLUDES(admin_mu_);
  std::string NextViewName() HADAD_REQUIRES(admin_mu_);
  // Tells the analysis the host's state lock is held on the synchronous-
  // mode path, where the session's mutation call holds it through its own
  // alias (api::Session::views_mu_ IS *host_.state_mu) — a cross-object
  // identity the analysis cannot see. The contract itself is runtime-
  // enforced by the session (OnDataMutation documents MUST-hold-unique).
  void AssertStateLockHeld() const HADAD_ASSERT_CAPABILITY(host_.state_mu) {}

  const Host host_;
  const AdaptiveOptions options_;
  WorkloadMonitor monitor_;
  ViewAdvisor advisor_;

  // Guards the store and the scheduling bookkeeping below. Ordering:
  // state_mu (outer) before admin_mu_ (inner); never the reverse.
  mutable common::Mutex admin_mu_;
  common::CondVar drain_cv_;
  ViewStore store_ HADAD_GUARDED_BY(admin_mu_);
  // Canonical texts queued or in flight.
  std::set<std::string> pending_ HADAD_GUARDED_BY(admin_mu_);
  // The advisor's latest recommendation set (canonical texts): the viable
  // candidates the fusion-barrier query answers from. Refreshed wholesale
  // each sweep; installed/filtered candidates drop out on the next one.
  std::set<std::string> candidate_canonicals_ HADAD_GUARDED_BY(admin_mu_);
  // Canonicals whose materialization failed (evaluation error or over
  // budget): never re-queued, so a doomed candidate cannot thrash.
  std::set<std::string> failed_ HADAD_GUARDED_BY(admin_mu_);
  int64_t name_seq_ HADAD_GUARDED_BY(admin_mu_) = 0;
  int64_t hit_seq_ HADAD_GUARDED_BY(admin_mu_) = 0;

  std::atomic<int64_t> created_{0};
  std::atomic<int64_t> evicted_{0};
  std::atomic<int64_t> invalidated_{0};
  std::atomic<int64_t> refreshed_{0};
  std::atomic<int64_t> hit_runs_{0};
  std::atomic<int64_t> failures_{0};
  // Uniquifies temp delta names.
  int64_t refresh_seq_ HADAD_GUARDED_BY(admin_mu_) = 0;

  // Single background worker; null in synchronous mode. Declared last so
  // its destructor joins in-flight tasks while everything above is alive.
  std::unique_ptr<exec::ThreadPool> worker_;
};

}  // namespace hadad::views

#endif  // HADAD_VIEWS_ADAPTIVE_H_
