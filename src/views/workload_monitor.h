#ifndef HADAD_VIEWS_WORKLOAD_MONITOR_H_
#define HADAD_VIEWS_WORKLOAD_MONITOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "engine/evaluator.h"
#include "la/expr.h"

namespace hadad::views {

// One canonical subexpression observed across the session's executed plans.
struct SubexprStat {
  // The plan-cache canonical form (la::ToString) — the same key the exec
  // compiler hash-conses DAG nodes on, so a subexpression shared by many
  // pipelines accumulates into one entry.
  std::string canonical;
  la::ExprPtr expr;  // A representative tree for this canonical form.
  // Executions that computed this subexpression (counted once per run, the
  // hash-consed-DAG view of a plan: `A + A` hits `A` once). Raw lifetime
  // count, never decayed — kept for reporting.
  int64_t hits = 0;
  // Decayed hit mass: each observed run before this one multiplies by
  // 2^(-runs_since / half_life) before the new hit adds 1. Equal to `hits`
  // when decay is off. The advisor thresholds and scores on this, so a
  // workload that stopped running stops outranking the current mix.
  double weight = 0.0;
  // Summed wall-clock attributed to recomputing this subtree, derived from
  // ExecStats::op_timings (per-operator-kind average seconds mapped over
  // the subtree's operators). Zero under the tree-walking evaluator, which
  // leaves op_timings empty; the advisor then falls back to γ estimates.
  // Decays alongside `weight` so seconds-per-weighted-hit stays meaningful.
  double measured_seconds = 0.0;
  // Run index (monitor-local) of the last observation; drives lazy decay.
  int64_t last_run = 0;
};

// Records the canonical subexpressions of every executed plan with hit
// counts and measured costs — the workload signal the ViewAdvisor scores.
// Thread-safe: concurrent Observe()/Snapshot() calls are serialized on an
// internal mutex (Observe is off the execution critical path).
class WorkloadMonitor {
 public:
  // `max_tracked` caps the number of distinct canonical forms kept. At
  // capacity a new form replaces a single-hit entry (one-off forms churn,
  // repeated ones stay); if every entry repeats, new forms are dropped.
  // `half_life_runs` > 0 halves every entry's decayed weight (and measured
  // seconds) per that many observed runs of inactivity — long-lived
  // sessions then rank by the current mix, not by week-old workloads.
  // 0 disables decay (weight == hits).
  explicit WorkloadMonitor(size_t max_tracked = 1024,
                           double half_life_runs = 0.0)
      : max_tracked_(max_tracked), half_life_runs_(half_life_runs) {}

  // Records every non-leaf subexpression of `executed` (each counted once
  // per call). `stats`, when it carries op_timings, supplies the measured
  // per-node cost attribution.
  void Observe(const la::ExprPtr& executed, const engine::ExecStats* stats);

  // Stable-ordered copy of the accumulated statistics (sorted by canonical
  // text, for deterministic advisor input).
  std::vector<SubexprStat> Snapshot() const;

  // Drops the statistics of `root` and every subtree of it. Called when a
  // view over `root` materializes: pipelines rewritten onto the view stop
  // recomputing these, so their accumulated benefit is no longer evidence
  // (a subexpression still computed elsewhere re-accumulates from later
  // observations).
  void Forget(const la::ExprPtr& root);

  int64_t observed_runs() const;
  // Distinct canonical forms currently tracked (<= max_tracked).
  int64_t tracked_count() const;
  void Clear();

 private:
  // 2^(-(runs_ - last_run) / half_life); 1 when decay is off. Caller holds
  // mu_ (reads runs_).
  double DecaySince(int64_t last_run) const HADAD_REQUIRES(mu_);

  const size_t max_tracked_;
  const double half_life_runs_;
  mutable common::Mutex mu_;
  std::unordered_map<std::string, SubexprStat> stats_ HADAD_GUARDED_BY(mu_);
  int64_t runs_ HADAD_GUARDED_BY(mu_) = 0;
};

}  // namespace hadad::views

#endif  // HADAD_VIEWS_WORKLOAD_MONITOR_H_
