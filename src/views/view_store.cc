#include "views/view_store.h"

#include <algorithm>
#include <utility>

namespace hadad::views {

ViewStore::ViewStore(engine::Workspace* workspace, int64_t budget_bytes,
                     size_t max_views)
    : budget_bytes_(budget_bytes),
      max_views_(max_views),
      catalog_(workspace) {}

bool ViewStore::ContainsCanonical(const std::string& canonical) const {
  for (const auto& [name, v] : views_) {
    if (v.canonical == canonical) return true;
  }
  return false;
}

bool ViewStore::ContainsName(const std::string& name) const {
  return views_.contains(name);
}

double ViewStore::Retention(const StoredView& v) const {
  return v.benefit * static_cast<double>(1 + v.hits) /
         static_cast<double>(std::max<int64_t>(1, v.bytes));
}

bool ViewStore::PlanAdmission(int64_t bytes,
                              std::vector<std::string>* evict) const {
  evict->clear();
  if (bytes > budget_bytes_) return false;

  std::vector<const StoredView*> order;
  order.reserve(views_.size());
  for (const auto& [name, v] : views_) order.push_back(&v);
  std::sort(order.begin(), order.end(),
            [this](const StoredView* a, const StoredView* b) {
              const double ra = Retention(*a);
              const double rb = Retention(*b);
              if (ra != rb) return ra < rb;
              if (a->last_use != b->last_use) return a->last_use < b->last_use;
              return a->name < b->name;
            });

  int64_t free_bytes = budget_bytes_ - bytes_in_use();
  size_t remaining = views_.size();
  for (const StoredView* v : order) {
    if (free_bytes >= bytes && remaining < max_views_) break;
    evict->push_back(v->name);
    free_bytes += v->bytes;
    --remaining;
  }
  return free_bytes >= bytes && remaining < max_views_;
}

Status ViewStore::Admit(StoredView meta, matrix::Matrix value) {
  meta.bytes = matrix::ApproxBytes(value);
  if (bytes_in_use() + meta.bytes > budget_bytes_ ||
      views_.size() >= max_views_) {
    return Status::BudgetExhausted(
        "admitting view '" + meta.name + "' (" + std::to_string(meta.bytes) +
        " bytes) would exceed the store budget");
  }
  HADAD_RETURN_IF_ERROR(
      catalog_.Install(meta.name, meta.definition, std::move(value)));
  std::string name = meta.name;
  views_.emplace(std::move(name), std::move(meta));
  return Status::OK();
}

Status ViewStore::Evict(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no adaptive view named '" + name + "'");
  }
  HADAD_RETURN_IF_ERROR(catalog_.Drop(name));
  views_.erase(it);
  return Status::OK();
}

Result<std::pair<StoredView, matrix::Matrix>> ViewStore::Detach(
    const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no adaptive view named '" + name + "'");
  }
  Result<matrix::Matrix> value = catalog_.Detach(name);
  if (!value.ok()) return value.status();
  std::pair<StoredView, matrix::Matrix> out(std::move(it->second),
                                            std::move(value).value());
  views_.erase(it);
  return out;
}

void ViewStore::RecordHit(const std::string& name, int64_t sequence) {
  auto it = views_.find(name);
  if (it == views_.end()) return;
  it->second.hits += 1;
  it->second.last_use = sequence;
}

}  // namespace hadad::views
