#ifndef HADAD_VIEWS_VIEW_STORE_H_
#define HADAD_VIEWS_VIEW_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/view_catalog.h"
#include "engine/workspace.h"
#include "la/expr.h"
#include "matrix/matrix.h"

namespace hadad::views {

// Bookkeeping for one adaptively materialized view.
struct StoredView {
  std::string name;       // Workspace/scan name (e.g. "av_3").
  std::string canonical;  // Canonical definition text.
  la::ExprPtr definition;
  int64_t bytes = 0;      // Actual matrix::ApproxBytes of the value.
  double benefit = 0.0;   // Advisor score at admission.
  int64_t hits = 0;       // Executed plans that scanned this view.
  int64_t last_use = 0;   // Monotone sequence number of the last hit.
};

// A byte-budgeted store of adaptively materialized views wrapping
// engine::ViewCatalog (which does the workspace bookkeeping). Admission
// never exceeds the budget: PlanAdmission picks evictions — lowest
// benefit-weighted-LRU retention first — and fails when even a full sweep
// cannot make room. Not thread-safe; the AdaptiveViewManager serializes
// access under its host's state lock.
class ViewStore {
 public:
  // `max_views` additionally caps the entry count (each view adds rewrite-
  // search constraints, so unbounded counts would tax RW_find).
  ViewStore(engine::Workspace* workspace, int64_t budget_bytes,
            size_t max_views = 16);

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t bytes_in_use() const { return catalog_.total_bytes(); }
  size_t size() const { return views_.size(); }

  bool ContainsCanonical(const std::string& canonical) const;
  bool ContainsName(const std::string& name) const;
  // Deterministically ordered (by name).
  const std::map<std::string, StoredView>& views() const { return views_; }

  // Chooses the evictions required to admit `bytes` more: fills `evict`
  // (possibly empty) and returns true, or returns false when the candidate
  // cannot fit even with every current view evicted. Eviction order is
  // ascending retention = benefit x (1 + hits) / bytes, ties to least
  // recently used, then name.
  bool PlanAdmission(int64_t bytes, std::vector<std::string>* evict) const;

  // Installs an already-materialized value under `meta.name` (value bytes
  // are measured here, overriding meta.bytes). Fails if the name is taken
  // or admission would exceed the budget — call PlanAdmission + Evict
  // first.
  Status Admit(StoredView meta, matrix::Matrix value);

  // Drops `name` from the store, the catalog, and the workspace.
  Status Evict(const std::string& name);

  // Evict, but returns the bookkeeping entry and the materialized value —
  // the incremental-refresh path computes V + f(Δ) from them and re-admits.
  // The store's budget no longer counts the detached bytes.
  Result<std::pair<StoredView, matrix::Matrix>> Detach(
      const std::string& name);

  // Records that an executed plan scanned `name` (no-op for unknown names).
  void RecordHit(const std::string& name, int64_t sequence);

 private:
  double Retention(const StoredView& v) const;

  int64_t budget_bytes_;
  size_t max_views_;
  engine::ViewCatalog catalog_;
  std::map<std::string, StoredView> views_;
};

}  // namespace hadad::views

#endif  // HADAD_VIEWS_VIEW_STORE_H_
