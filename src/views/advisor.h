#ifndef HADAD_VIEWS_ADVISOR_H_
#define HADAD_VIEWS_ADVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/estimator.h"
#include "la/expr.h"
#include "views/workload_monitor.h"

namespace hadad::views {

struct AdvisorOptions {
  // A subexpression must have been executed at least this often to qualify.
  int64_t min_hits = 3;
  // Ranked recommendations returned per call.
  size_t max_recommendations = 4;
  // Candidates whose estimated materialized size exceeds this are skipped
  // outright (<= 0 disables the check).
  int64_t max_bytes = 0;
};

// One advisor-ranked materialization candidate.
struct Recommendation {
  std::string canonical;   // Canonical definition text (plan-cache form).
  la::ExprPtr definition;
  int64_t hits = 0;
  // γ-based recomputation estimate (intermediates + output, in estimated
  // non-zeros) from cost::Estimator over the session catalog.
  double est_recompute_cost = 0.0;
  // Estimated materialized size, from the estimator's output ClassMeta.
  double est_bytes = 0.0;
  // Observed per-execution seconds (0 when the engine reports no timings).
  double measured_seconds_per_hit = 0.0;
  // Ranking key: frequency x per-recompute benefit per materialized byte.
  double score = 0.0;
};

// Scores WorkloadMonitor statistics into a ranked recommendation set:
// benefit is the estimated recomputation cost (measured seconds when the
// DAG engine reported op timings, else the γ estimate) times observed
// frequency, weighed against the estimated materialized size. Ranking is
// deterministic for identical inputs: ties fall to canonical text.
class ViewAdvisor {
 public:
  // `estimator` scores candidates (nullptr falls back to the naive
  // metadata estimator).
  explicit ViewAdvisor(std::unique_ptr<cost::SparsityEstimator> estimator);

  // `catalog`/`data` describe the session's current leaves (views
  // included); `skip` filters candidates the caller already materialized
  // or queued — return true to drop the candidate.
  std::vector<Recommendation> Recommend(
      const std::vector<SubexprStat>& observed, const la::MetaCatalog& catalog,
      const cost::DataCatalog* data, const AdvisorOptions& options,
      const std::function<bool(const SubexprStat&)>& skip = nullptr) const;

 private:
  std::unique_ptr<cost::SparsityEstimator> estimator_;
};

// Estimated resident bytes of a matrix with metadata `meta` (CSR when the
// estimated density is below 0.5, dense otherwise) — the admission-control
// counterpart of matrix::ApproxBytes.
double EstimateBytes(const cost::ClassMeta& meta);

}  // namespace hadad::views

#endif  // HADAD_VIEWS_ADVISOR_H_
