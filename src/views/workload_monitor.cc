#include "views/workload_monitor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

namespace hadad::views {

namespace {

// Sums the per-operator average seconds over every operator node of `e`.
double AttributeSeconds(
    const la::Expr& e,
    const std::unordered_map<std::string, double>& avg_op_seconds) {
  if (e.is_leaf()) return 0.0;
  double total = 0.0;
  auto it = avg_op_seconds.find(la::OpName(e.kind()));
  if (it != avg_op_seconds.end()) total += it->second;
  for (const la::ExprPtr& child : e.children()) {
    total += AttributeSeconds(*child, avg_op_seconds);
  }
  return total;
}

// Collects each distinct non-leaf subtree (by canonical text) once.
void CollectSubtrees(const la::ExprPtr& e,
                     std::map<std::string, la::ExprPtr>* out) {
  if (e->is_leaf()) return;
  out->emplace(la::ToString(e), e);
  for (const la::ExprPtr& child : e->children()) {
    CollectSubtrees(child, out);
  }
}

}  // namespace

double WorkloadMonitor::DecaySince(int64_t last_run) const {
  if (half_life_runs_ <= 0.0) return 1.0;
  const double idle = static_cast<double>(runs_ - last_run);
  if (idle <= 0.0) return 1.0;
  return std::exp2(-idle / half_life_runs_);
}

void WorkloadMonitor::Observe(const la::ExprPtr& executed,
                              const engine::ExecStats* stats) {
  if (executed == nullptr) return;
  std::unordered_map<std::string, double> avg_op_seconds;
  if (stats != nullptr) {
    for (const engine::OpTiming& t : stats->op_timings) {
      if (t.count > 0) avg_op_seconds[t.op] = t.seconds / t.count;
    }
  }
  std::map<std::string, la::ExprPtr> subtrees;
  CollectSubtrees(executed, &subtrees);

  common::MutexLock lock(&mu_);
  ++runs_;
  for (auto& [canonical, expr] : subtrees) {
    auto it = stats_.find(canonical);
    if (it == stats_.end()) {
      if (stats_.size() >= max_tracked_) {
        // Replace a cold singleton so a burst of one-off forms cannot
        // permanently blind the advisor; repeated forms (hits > 1) stay.
        auto victim =
            std::find_if(stats_.begin(), stats_.end(),
                         [](const auto& kv) { return kv.second.hits <= 1; });
        if (victim == stats_.end()) continue;
        stats_.erase(victim);
      }
      it = stats_.emplace(canonical,
                          SubexprStat{canonical, expr, 0, 0.0, 0.0, runs_})
               .first;
    }
    SubexprStat& s = it->second;
    const double decay = DecaySince(s.last_run);
    s.hits += 1;
    s.weight = s.weight * decay + 1.0;
    s.measured_seconds = s.measured_seconds * decay +
                         AttributeSeconds(*expr, avg_op_seconds);
    s.last_run = runs_;
  }
}

std::vector<SubexprStat> WorkloadMonitor::Snapshot() const {
  std::vector<SubexprStat> out;
  {
    common::MutexLock lock(&mu_);
    out.reserve(stats_.size());
    for (const auto& [canonical, stat] : stats_) {
      SubexprStat copy = stat;
      // Surface the as-of-now decayed mass; the stored entry stays lazy.
      const double decay = DecaySince(copy.last_run);
      copy.weight *= decay;
      copy.measured_seconds *= decay;
      out.push_back(std::move(copy));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SubexprStat& a, const SubexprStat& b) {
              return a.canonical < b.canonical;
            });
  return out;
}

void WorkloadMonitor::Forget(const la::ExprPtr& root) {
  if (root == nullptr) return;
  std::map<std::string, la::ExprPtr> subtrees;
  CollectSubtrees(root, &subtrees);
  common::MutexLock lock(&mu_);
  for (const auto& [canonical, expr] : subtrees) stats_.erase(canonical);
}

int64_t WorkloadMonitor::observed_runs() const {
  common::MutexLock lock(&mu_);
  return runs_;
}

int64_t WorkloadMonitor::tracked_count() const {
  common::MutexLock lock(&mu_);
  return static_cast<int64_t>(stats_.size());
}

void WorkloadMonitor::Clear() {
  common::MutexLock lock(&mu_);
  stats_.clear();
  runs_ = 0;
}

}  // namespace hadad::views
