#ifndef HADAD_VIEWS_MAINTENANCE_H_
#define HADAD_VIEWS_MAINTENANCE_H_

#include <optional>
#include <string>

#include "la/expr.h"

namespace hadad::views {

// View-maintenance policy under base-data mutation (ROADMAP: "view
// maintenance under data updates").
//
// Arbitrary mutation of a leaf invalidates every view whose definition
// references it — there is no general incremental story. Row *appends* are
// different: when rows Δ are appended to leaf A ([A; Δ]), a definition f
// that is *append-additive* in A satisfies
//
//     f([A; Δ]) = f(A) + f(Δ)
//
// so the stored value refreshes with one O(|Δ|)-input evaluation plus an
// element-wise add, instead of a full recomputation over [A; Δ].
//
// The additive family is derived compositionally. Row-partitioned forms R
// (the rows of R track the rows of A: R([A; Δ]) = [R(A); R(Δ)]):
//
//     R ::= A | R %*% C | s %*% R | R * s | R / s | s * R
//
// with C any A-free expression (a constant matrix under this mutation) and
// s a scalar literal. Append-additive forms f:
//
//     f ::= colSums(R) | sum(R) | t(R1) %*% R2 | f + f | f + C | C + f
//         | s %*% f
//
// t(R1) %*% R2 covers the Gram-style subexpressions (t(A) %*% A,
// t(A %*% W) %*% (A %*% W)) that dominate the paper's ML pipelines. Every
// additive form collapses the appended dimension, so a view's shape is
// stable across appends — reinstalling one never changes catalog shapes.

// Returns the delta expression f(Δ) — `definition` with every occurrence of
// `leaf` substituted by `delta_name` — when `definition` is append-additive
// in `leaf`; nullopt when it is not (the caller falls back to invalidation
// or full recomputation). The delta references `delta_name` plus the
// definition's A-free leaves only, never `leaf` itself.
std::optional<la::ExprPtr> BuildAppendDelta(const la::ExprPtr& definition,
                                            const std::string& leaf,
                                            const std::string& delta_name);

}  // namespace hadad::views

#endif  // HADAD_VIEWS_MAINTENANCE_H_
