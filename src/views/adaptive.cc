#include "views/adaptive.h"

#include <algorithm>
#include <utility>

namespace hadad::views {

namespace {

void CollectLeafNames(const la::Expr& e, std::set<std::string>* out) {
  if (e.kind() == la::OpKind::kMatrixRef) {
    out->insert(e.name());
    return;
  }
  for (const la::ExprPtr& child : e.children()) {
    CollectLeafNames(*child, out);
  }
}

}  // namespace

AdaptiveViewManager::AdaptiveViewManager(
    Host host, AdaptiveOptions options,
    std::unique_ptr<cost::SparsityEstimator> estimator)
    : host_(std::move(host)),
      options_(options),
      advisor_(std::move(estimator)),
      store_(host_.workspace, options.budget_bytes, options.max_views) {
  if (!options_.synchronous) {
    worker_ = std::make_unique<exec::ThreadPool>(1, /*always_spawn=*/true);
  }
}

AdaptiveViewManager::~AdaptiveViewManager() {
  // The pool destructor drains queued tasks; waiting here keeps the
  // invariant explicit and surfaces a stuck task as a hang in the owner's
  // destructor rather than a use-after-free.
  Drain();
}

void AdaptiveViewManager::OnExecution(const la::ExprPtr& executed,
                                      const engine::ExecStats* stats) {
  if (executed == nullptr) return;
  monitor_.Observe(executed, stats);

  std::set<std::string> leaves;
  CollectLeafNames(*executed, &leaves);
  {
    std::lock_guard<std::mutex> admin(admin_mu_);
    ++hit_seq_;
    bool any = false;
    for (const std::string& name : leaves) {
      if (!store_.ContainsName(name)) continue;
      store_.RecordHit(name, hit_seq_);
      any = true;
    }
    if (any) hit_runs_.fetch_add(1, std::memory_order_relaxed);
  }

  MaybeScheduleMaterializations();
}

void AdaptiveViewManager::MaybeScheduleMaterializations() {
  // Copy the exclusion state up front so the advisor's skip callback runs
  // lock-free (state_mu is held shared while it scores; admin_mu_ must
  // stay inner to it).
  std::set<std::string> excluded_canonicals;
  std::set<std::string> adaptive_names;
  {
    std::lock_guard<std::mutex> admin(admin_mu_);
    // One materialization wave at a time: while any is in flight the sweep
    // (snapshot + candidate scoring) is skipped outright, keeping the
    // steady-state foreground overhead to this lock + check.
    if (!pending_.empty()) return;
    excluded_canonicals = failed_;
    for (const auto& [name, v] : store_.views()) {
      excluded_canonicals.insert(v.canonical);
      adaptive_names.insert(name);
    }
  }

  AdvisorOptions advisor_options;
  advisor_options.min_hits = options_.min_hits;
  advisor_options.max_recommendations = options_.max_candidates;
  advisor_options.max_bytes = options_.budget_bytes;
  auto skip = [&excluded_canonicals,
               &adaptive_names](const SubexprStat& stat) {
    if (excluded_canonicals.contains(stat.canonical)) return true;
    // Views over adaptive views would chain eviction dependencies; keep
    // every definition in terms of the session's durable names.
    std::set<std::string> leaves;
    CollectLeafNames(*stat.expr, &leaves);
    for (const std::string& leaf : leaves) {
      if (adaptive_names.contains(leaf)) return true;
    }
    return false;
  };

  std::vector<Recommendation> recs;
  {
    std::shared_lock<std::shared_mutex> state(*host_.state_mu);
    recs = advisor_.Recommend(monitor_.Snapshot(), host_.optimizer->catalog(),
                              &host_.workspace->data(), advisor_options, skip);
  }

  int scheduled = 0;
  for (Recommendation& rec : recs) {
    if (scheduled >= options_.max_views_per_sweep) break;
    {
      std::lock_guard<std::mutex> admin(admin_mu_);
      if (pending_.contains(rec.canonical) ||
          store_.ContainsCanonical(rec.canonical)) {
        continue;  // Raced with another sweep.
      }
      pending_.insert(rec.canonical);
    }
    ++scheduled;
    if (worker_ != nullptr) {
      worker_->Submit([this, rec = std::move(rec)]() mutable {
        MaterializeOne(std::move(rec));
      });
    } else {
      MaterializeOne(std::move(rec));
    }
  }
}

void AdaptiveViewManager::MaterializeOne(Recommendation rec) {
  // Compute outside any exclusive lock: foreground queries keep running
  // (they share the state lock) while the view value materializes.
  Result<matrix::Matrix> value = [&]() -> Result<matrix::Matrix> {
    std::shared_lock<std::shared_mutex> state(*host_.state_mu);
    return host_.evaluate(rec.definition);
  }();
  if (!value.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    FinishPending(rec.canonical, /*failed=*/true);
    return;
  }

  la::MatrixMeta value_meta;
  value_meta.rows = value->rows();
  value_meta.cols = value->cols();
  value_meta.nnz = static_cast<double>(value->Nnz());
  const int64_t bytes = matrix::ApproxBytes(*value);

  bool changed = false;
  bool installed = false;
  {
    std::unique_lock<std::shared_mutex> state(*host_.state_mu);
    std::lock_guard<std::mutex> admin(admin_mu_);
    std::vector<std::string> evict;
    if (!store_.PlanAdmission(bytes, &evict)) {
      failures_.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (const std::string& name : evict) {
        if (!store_.Evict(name).ok()) continue;
        (void)host_.optimizer->RemoveView(name);
        if (host_.exec_catalog != nullptr) host_.exec_catalog->erase(name);
        evicted_.fetch_add(1, std::memory_order_relaxed);
        changed = true;
      }
      const std::string name = NextViewName();
      StoredView meta;
      meta.name = name;
      meta.canonical = rec.canonical;
      meta.definition = rec.definition;
      meta.bytes = bytes;
      meta.benefit = rec.score;
      meta.last_use = hit_seq_;
      Status admitted = store_.Admit(std::move(meta), std::move(*value));
      if (!admitted.ok()) {
        failures_.fetch_add(1, std::memory_order_relaxed);
      } else {
        Status registered = host_.optimizer->AddView(name, rec.definition);
        if (!registered.ok()) {
          (void)store_.Evict(name);
          failures_.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (host_.exec_catalog != nullptr) {
            (*host_.exec_catalog)[name] = value_meta;
          }
          created_.fetch_add(1, std::memory_order_relaxed);
          changed = true;
          installed = true;
        }
      }
    }
    if (changed && host_.on_views_changed) host_.on_views_changed();
  }
  // Subtrees of the new view stop being recomputed once rewrites land on
  // it; their accumulated counts would otherwise look like benefit. A
  // rejected candidate's stats go too — its canonical is blacklisted, so
  // keeping them would only waste monitor capacity.
  monitor_.Forget(rec.definition);
  FinishPending(rec.canonical, /*failed=*/!installed);
}

void AdaptiveViewManager::FinishPending(const std::string& canonical,
                                        bool failed) {
  {
    std::lock_guard<std::mutex> admin(admin_mu_);
    pending_.erase(canonical);
    if (failed) failed_.insert(canonical);
  }
  drain_cv_.notify_all();
}

std::string AdaptiveViewManager::NextViewName() {
  // Caller holds both the unique state lock (workspace reads) and
  // admin_mu_ (name_seq_).
  for (;;) {
    std::string name = "av_" + std::to_string(name_seq_++);
    if (!host_.workspace->Has(name)) return name;
  }
}

void AdaptiveViewManager::Drain() {
  std::unique_lock<std::mutex> admin(admin_mu_);
  drain_cv_.wait(admin, [this] { return pending_.empty(); });
}

AdaptiveViewStats AdaptiveViewManager::stats() const {
  AdaptiveViewStats s;
  s.views_created = created_.load(std::memory_order_relaxed);
  s.views_evicted = evicted_.load(std::memory_order_relaxed);
  s.view_hit_runs = hit_runs_.load(std::memory_order_relaxed);
  s.materialize_failures = failures_.load(std::memory_order_relaxed);
  s.budget_bytes = options_.budget_bytes;
  std::lock_guard<std::mutex> admin(admin_mu_);
  s.bytes_in_use = store_.bytes_in_use();
  s.pending = static_cast<int64_t>(pending_.size());
  return s;
}

std::vector<StoredView> AdaptiveViewManager::StoredViews() const {
  std::lock_guard<std::mutex> admin(admin_mu_);
  std::vector<StoredView> out;
  out.reserve(store_.views().size());
  for (const auto& [name, v] : store_.views()) out.push_back(v);
  return out;
}

bool AdaptiveViewManager::IsAdaptiveViewName(const std::string& name) const {
  std::lock_guard<std::mutex> admin(admin_mu_);
  return store_.ContainsName(name);
}

}  // namespace hadad::views
