#include "views/adaptive.h"

#include <algorithm>
#include <utility>

#include "views/maintenance.h"

namespace hadad::views {

namespace {

// Pending-set key for a queued incremental refresh of view `name`. Distinct
// from materialization keys (canonical texts) so both share the drain/sweep
// gating machinery without colliding.
std::string RefreshKey(const std::string& name) { return "refresh:" + name; }

}  // namespace

AdaptiveViewManager::AdaptiveViewManager(
    Host host, AdaptiveOptions options,
    std::unique_ptr<cost::SparsityEstimator> estimator)
    : host_(std::move(host)),
      options_(options),
      monitor_(/*max_tracked=*/1024, options.monitor_half_life_runs),
      advisor_(std::move(estimator)),
      store_(host_.workspace, options.budget_bytes, options.max_views) {
  if (!options_.synchronous) {
    worker_ = std::make_unique<exec::ThreadPool>(1, /*always_spawn=*/true);
  }
}

AdaptiveViewManager::~AdaptiveViewManager() {
  // The pool destructor drains queued tasks; waiting here keeps the
  // invariant explicit and surfaces a stuck task as a hang in the owner's
  // destructor rather than a use-after-free.
  Drain();
}

void AdaptiveViewManager::OnExecution(const la::ExprPtr& executed,
                                      const engine::ExecStats* stats) {
  if (executed == nullptr) return;
  monitor_.Observe(executed, stats);

  std::set<std::string> leaves;
  la::CollectMatrixRefs(*executed, &leaves);
  {
    common::MutexLock admin(&admin_mu_);
    ++hit_seq_;
    bool any = false;
    for (const std::string& name : leaves) {
      if (!store_.ContainsName(name)) continue;
      store_.RecordHit(name, hit_seq_);
      any = true;
    }
    if (any) hit_runs_.fetch_add(1, std::memory_order_relaxed);
  }

  MaybeScheduleMaterializations();
}

void AdaptiveViewManager::OnDataMutation(const std::set<std::string>& changed,
                                         const std::string* appended,
                                         const matrix::Matrix* delta_rows) {
  obs::ScopedSpan propagate(host_.trace, "adaptive_propagation", "views");
  int64_t invalidated_here = 0;
  int64_t refreshes_queued = 0;
  std::vector<RefreshTask> refreshes;
  {
    common::MutexLock admin(&admin_mu_);
    // Names first: Detach/Evict mutate the store while we walk it.
    std::vector<std::string> names;
    names.reserve(store_.views().size());
    for (const auto& [name, v] : store_.views()) names.push_back(name);

    bool views_changed = false;
    for (const std::string& name : names) {
      const StoredView& view = store_.views().at(name);
      la::ExprPtr def = view.definition;
      std::set<std::string> leaves;
      la::CollectMatrixRefs(*def, &leaves);
      bool touches_changed = false;
      for (const std::string& leaf : leaves) {
        if (changed.contains(leaf)) {
          touches_changed = true;
          break;
        }
      }
      const bool touches_append =
          appended != nullptr && leaves.contains(*appended);
      if (!touches_changed && !touches_append) continue;

      // Incremental path: only the appended leaf moved, and the definition
      // is append-additive in it.
      if (!touches_changed && delta_rows != nullptr) {
        const std::string temp_name =
            "__delta_" + std::to_string(refresh_seq_++);
        std::optional<la::ExprPtr> delta =
            BuildAppendDelta(def, *appended, temp_name);
        if (delta.has_value()) {
          auto detached = store_.Detach(name);
          if (detached.ok()) {
            (void)host_.optimizer->RemoveView(name);
            if (host_.exec_catalog != nullptr) host_.exec_catalog->erase(name);
            views_changed = true;
            // The delta rows ride along in the workspace under a reserved
            // name until the background task installs (and erases it).
            host_.workspace->Put(temp_name, *delta_rows);
            RefreshTask task;
            task.meta = std::move(detached->first);
            task.old_value = std::move(detached->second);
            task.delta_expr = *delta;
            task.temp_name = temp_name;
            task.deps = host_.workspace->SnapshotFor(
                std::vector<std::string>(leaves.begin(), leaves.end()));
            pending_.insert(RefreshKey(task.meta.name));
            refreshes.push_back(std::move(task));
            ++refreshes_queued;
            continue;
          }
        }
      }

      // Invalidate: the stored value no longer matches its definition, and
      // no incremental identity applies.
      if (store_.Evict(name).ok()) {
        (void)host_.optimizer->RemoveView(name);
        if (host_.exec_catalog != nullptr) host_.exec_catalog->erase(name);
        invalidated_.fetch_add(1, std::memory_order_relaxed);
        ++invalidated_here;
        views_changed = true;
        // The monitor's accumulated evidence was measured against the old
        // data; keep the advisor honest by dropping it.
        monitor_.Forget(def);
      }
    }
    if (views_changed && host_.on_views_changed) host_.on_views_changed();
  }
  if (propagate.active()) {
    propagate.Annotate("invalidated", invalidated_here);
    propagate.Annotate("refreshes_queued", refreshes_queued);
  }

  for (RefreshTask& task : refreshes) {
    if (worker_ != nullptr) {
      worker_->Submit([this, t = std::move(task)]() mutable {
        RefreshOne(std::move(t), /*caller_holds_state_lock=*/false);
      });
    } else {
      // Synchronous mode: the session's mutation path already holds the
      // unique state lock, so the refresh must not re-acquire it.
      RefreshOne(std::move(task), /*caller_holds_state_lock=*/true);
    }
  }
}

void AdaptiveViewManager::RefreshOne(RefreshTask task,
                                     bool caller_holds_state_lock) {
  // InstallRefresh consumes the task; the drain key outlives it. A
  // discarded refresh is never blacklisted — it is a data-change casualty,
  // not a doomed candidate — so both paths finish with failed=false.
  obs::ScopedSpan span(host_.trace, "adaptive_refresh", "views");
  span.Annotate("view", task.meta.name);
  const std::string refresh_key = RefreshKey(task.meta.name);
  if (caller_holds_state_lock) {
    // Synchronous mode: the session's mutation path already holds the
    // unique state lock (through its own alias of *host_.state_mu), so
    // this path must not re-acquire it — evaluate against the live
    // workspace directly.
    AssertStateLockHeld();
    Result<matrix::Matrix> fresh =
        ComputeRefreshValue(task, *host_.workspace, /*state_locked=*/true);
    InstallRefresh(std::move(task), std::move(fresh));
    FinishPending(refresh_key, /*failed=*/false);
    return;
  }
  // Background mode: pin a workspace snapshot under a brief shared hold,
  // then evaluate the refreshed value with NO lock held — foreground
  // queries and writers both keep running meanwhile. InstallRefresh
  // re-checks the dependency stamps under the exclusive lock, so mutations
  // landing in the gap discard the refresh rather than corrupt it.
  engine::SnapshotPtr snap;
  {
    common::ReaderMutexLock state(host_.state_mu);
    snap = host_.workspace->PinSnapshot();
  }
  Result<matrix::Matrix> fresh =
      ComputeRefreshValue(task, *snap, /*state_locked=*/false);
  snap.reset();  // Unpin before taking the exclusive lock.
  {
    common::WriterMutexLock state(host_.state_mu);
    InstallRefresh(std::move(task), std::move(fresh));
  }
  FinishPending(refresh_key, /*failed=*/false);
}

Result<matrix::Matrix> AdaptiveViewManager::ComputeRefreshValue(
    const RefreshTask& task, engine::WorkspaceView ws, bool state_locked) {
  HADAD_ASSIGN_OR_RETURN(matrix::Matrix delta,
                         host_.evaluate(task.delta_expr, ws, state_locked));
  return matrix::Add(task.old_value, delta);
}

void AdaptiveViewManager::InstallRefresh(RefreshTask task,
                                         Result<matrix::Matrix> fresh) {
  bool installed = false;
  common::MutexLock admin(&admin_mu_);
  host_.workspace->Erase(task.temp_name);
  bool views_changed = false;
  // Install only if every dependency is still exactly as stamped: a
  // second mutation in the window means old_value + f(Δ) no longer
  // describes the current data, so the refresh is discarded.
  const bool current = host_.workspace->SnapshotCurrent(task.deps) &&
                       !store_.ContainsCanonical(task.meta.canonical);
  if (fresh.ok() && current) {
    la::MatrixMeta value_meta;
    value_meta.rows = fresh->rows();
    value_meta.cols = fresh->cols();
    value_meta.nnz = static_cast<double>(fresh->Nnz());
    const int64_t bytes = matrix::ApproxBytes(*fresh);
    std::vector<std::string> evict;
    if (store_.PlanAdmission(bytes, &evict)) {
      for (const std::string& victim : evict) {
        if (!store_.Evict(victim).ok()) continue;
        obs::ScopedSpan evict_span(host_.trace, "view_evict", "views");
        evict_span.Annotate("view", victim);
        (void)host_.optimizer->RemoveView(victim);
        if (host_.exec_catalog != nullptr) {
          host_.exec_catalog->erase(victim);
        }
        evicted_.fetch_add(1, std::memory_order_relaxed);
        views_changed = true;
      }
      StoredView meta = task.meta;
      meta.bytes = bytes;
      if (store_.Admit(std::move(meta), std::move(*fresh)).ok()) {
        Status registered =
            host_.optimizer->AddView(task.meta.name, task.meta.definition);
        if (registered.ok()) {
          if (host_.exec_catalog != nullptr) {
            (*host_.exec_catalog)[task.meta.name] = value_meta;
          }
          refreshed_.fetch_add(1, std::memory_order_relaxed);
          views_changed = true;
          installed = true;
        } else {
          (void)store_.Evict(task.meta.name);
        }
      }
    }
  }
  if (!installed) {
    // The view stays gone — count it with the invalidations and drop its
    // now-stale monitor evidence (the workload may rebuild it later).
    if (!fresh.ok()) failures_.fetch_add(1, std::memory_order_relaxed);
    invalidated_.fetch_add(1, std::memory_order_relaxed);
    monitor_.Forget(task.meta.definition);
  }
  if (views_changed && host_.on_views_changed) host_.on_views_changed();
}

void AdaptiveViewManager::MaybeScheduleMaterializations() {
  // Copy the exclusion state up front so the advisor's skip callback runs
  // lock-free (state_mu is held shared while it scores; admin_mu_ must
  // stay inner to it).
  std::set<std::string> excluded_canonicals;
  std::set<std::string> adaptive_names;
  {
    common::MutexLock admin(&admin_mu_);
    // One materialization wave at a time: while any is in flight the sweep
    // (snapshot + candidate scoring) is skipped outright, keeping the
    // steady-state foreground overhead to this lock + check.
    if (!pending_.empty()) return;
    excluded_canonicals = failed_;
    for (const auto& [name, v] : store_.views()) {
      excluded_canonicals.insert(v.canonical);
      adaptive_names.insert(name);
    }
  }

  AdvisorOptions advisor_options;
  advisor_options.min_hits = options_.min_hits;
  advisor_options.max_recommendations = options_.max_candidates;
  advisor_options.max_bytes = options_.budget_bytes;
  auto skip = [&excluded_canonicals,
               &adaptive_names](const SubexprStat& stat) {
    if (excluded_canonicals.contains(stat.canonical)) return true;
    // Views over adaptive views would chain eviction dependencies; keep
    // every definition in terms of the session's durable names.
    std::set<std::string> leaves;
    la::CollectMatrixRefs(*stat.expr, &leaves);
    for (const std::string& leaf : leaves) {
      if (adaptive_names.contains(leaf)) return true;
    }
    return false;
  };

  std::vector<Recommendation> recs;
  {
    common::ReaderMutexLock state(host_.state_mu);
    recs = advisor_.Recommend(monitor_.Snapshot(), host_.optimizer->catalog(),
                              &host_.workspace->data(), advisor_options, skip);
  }
  {
    // Publish the viable-candidate set for FusionBarriers(): exactly the
    // subexpressions that may materialize soon and therefore must keep
    // their own plan nodes for cost attribution.
    common::MutexLock admin(&admin_mu_);
    candidate_canonicals_.clear();
    for (const Recommendation& rec : recs) {
      candidate_canonicals_.insert(rec.canonical);
    }
  }

  int scheduled = 0;
  for (Recommendation& rec : recs) {
    if (scheduled >= options_.max_views_per_sweep) break;
    {
      common::MutexLock admin(&admin_mu_);
      if (pending_.contains(rec.canonical) ||
          store_.ContainsCanonical(rec.canonical)) {
        continue;  // Raced with another sweep.
      }
      pending_.insert(rec.canonical);
    }
    ++scheduled;
    if (worker_ != nullptr) {
      worker_->Submit([this, rec = std::move(rec)]() mutable {
        MaterializeOne(std::move(rec));
      });
    } else {
      MaterializeOne(std::move(rec));
    }
  }
}

void AdaptiveViewManager::MaterializeOne(Recommendation rec) {
  obs::ScopedSpan span(host_.trace, "adaptive_materialize", "views");
  span.Annotate("canonical", rec.canonical);
  // Compute with no lock held at all: the state lock is taken shared only
  // long enough to stamp the definition's leaf epochs and pin an MVCC
  // snapshot; evaluation then runs against the pinned versions while
  // foreground queries AND writers proceed. If a data mutation lands
  // before install, the stamp check discards the stale value.
  engine::WorkspaceSnapshot deps;
  engine::SnapshotPtr snap;
  {
    common::ReaderMutexLock state(host_.state_mu);
    std::set<std::string> leaves;
    la::CollectMatrixRefs(*rec.definition, &leaves);
    deps = host_.workspace->SnapshotFor(
        std::vector<std::string>(leaves.begin(), leaves.end()));
    snap = host_.workspace->PinSnapshot();
  }
  Result<matrix::Matrix> value =
      host_.evaluate(rec.definition, *snap, /*state_locked=*/false);
  snap.reset();  // Unpin before any exclusive-lock work below.
  if (!value.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    FinishPending(rec.canonical, /*failed=*/true);
    return;
  }

  la::MatrixMeta value_meta;
  value_meta.rows = value->rows();
  value_meta.cols = value->cols();
  value_meta.nnz = static_cast<double>(value->Nnz());
  const int64_t bytes = matrix::ApproxBytes(*value);

  bool changed = false;
  bool installed = false;
  bool discarded = false;
  {
    common::WriterMutexLock state(host_.state_mu);
    common::MutexLock admin(&admin_mu_);
    std::vector<std::string> evict;
    if (!host_.workspace->SnapshotCurrent(deps)) {
      // A mutation raced the materialization: the computed value describes
      // data that no longer exists. Discard without blacklisting — the
      // workload may legitimately rebuild the candidate on the new data.
      discarded = true;
    } else if (!store_.PlanAdmission(bytes, &evict)) {
      failures_.fetch_add(1, std::memory_order_relaxed);
    } else {
      for (const std::string& name : evict) {
        if (!store_.Evict(name).ok()) continue;
        obs::ScopedSpan evict_span(host_.trace, "view_evict", "views");
        evict_span.Annotate("view", name);
        (void)host_.optimizer->RemoveView(name);
        if (host_.exec_catalog != nullptr) host_.exec_catalog->erase(name);
        evicted_.fetch_add(1, std::memory_order_relaxed);
        changed = true;
      }
      const std::string name = NextViewName();
      StoredView meta;
      meta.name = name;
      meta.canonical = rec.canonical;
      meta.definition = rec.definition;
      meta.bytes = bytes;
      meta.benefit = rec.score;
      meta.last_use = hit_seq_;
      Status admitted = store_.Admit(std::move(meta), std::move(*value));
      if (!admitted.ok()) {
        failures_.fetch_add(1, std::memory_order_relaxed);
      } else {
        Status registered = host_.optimizer->AddView(name, rec.definition);
        if (!registered.ok()) {
          (void)store_.Evict(name);
          failures_.fetch_add(1, std::memory_order_relaxed);
        } else {
          if (host_.exec_catalog != nullptr) {
            (*host_.exec_catalog)[name] = value_meta;
          }
          created_.fetch_add(1, std::memory_order_relaxed);
          changed = true;
          installed = true;
        }
      }
    }
    if (changed && host_.on_views_changed) host_.on_views_changed();
  }
  span.Annotate("installed", static_cast<int64_t>(installed));
  span.Annotate("discarded", static_cast<int64_t>(discarded));
  // Subtrees of the new view stop being recomputed once rewrites land on
  // it; their accumulated counts would otherwise look like benefit. A
  // rejected candidate's stats go too — its canonical is blacklisted, so
  // keeping them would only waste monitor capacity. (A mutation-discarded
  // candidate also forgets — its evidence described the old data — but is
  // not blacklisted.)
  monitor_.Forget(rec.definition);
  FinishPending(rec.canonical, /*failed=*/!installed && !discarded);
}

void AdaptiveViewManager::FinishPending(const std::string& canonical,
                                        bool failed) {
  {
    common::MutexLock admin(&admin_mu_);
    pending_.erase(canonical);
    if (failed) failed_.insert(canonical);
  }
  drain_cv_.notify_all();
}

std::string AdaptiveViewManager::NextViewName() {
  // Caller holds both the unique state lock (workspace reads) and
  // admin_mu_ (name_seq_).
  for (;;) {
    std::string name = "av_" + std::to_string(name_seq_++);
    if (!host_.workspace->Has(name)) return name;
  }
}

void AdaptiveViewManager::Drain() {
  common::MutexLock admin(&admin_mu_);
  // Explicit predicate loop: the analysis tracks the held capability
  // through CondVar::wait(admin) but not through a predicate lambda.
  while (!pending_.empty()) drain_cv_.wait(admin);
}

AdaptiveViewStats AdaptiveViewManager::stats() const {
  AdaptiveViewStats s;
  s.views_created = created_.load(std::memory_order_relaxed);
  s.views_evicted = evicted_.load(std::memory_order_relaxed);
  s.views_invalidated = invalidated_.load(std::memory_order_relaxed);
  s.views_refreshed = refreshed_.load(std::memory_order_relaxed);
  s.view_hit_runs = hit_runs_.load(std::memory_order_relaxed);
  s.materialize_failures = failures_.load(std::memory_order_relaxed);
  s.budget_bytes = options_.budget_bytes;
  common::MutexLock admin(&admin_mu_);
  s.bytes_in_use = store_.bytes_in_use();
  s.pending = static_cast<int64_t>(pending_.size());
  return s;
}

std::vector<StoredView> AdaptiveViewManager::StoredViews() const {
  common::MutexLock admin(&admin_mu_);
  std::vector<StoredView> out;
  out.reserve(store_.views().size());
  for (const auto& [name, v] : store_.views()) out.push_back(v);
  return out;
}

bool AdaptiveViewManager::IsAdaptiveViewName(const std::string& name) const {
  common::MutexLock admin(&admin_mu_);
  return store_.ContainsName(name);
}

std::set<std::string> AdaptiveViewManager::FusionBarriers() const {
  common::MutexLock admin(&admin_mu_);
  std::set<std::string> barriers = candidate_canonicals_;
  for (const std::string& key : pending_) {
    // pending_ also tracks delta refreshes under "refresh:<name>" keys;
    // those are not canonical forms and never match a plan node.
    if (!key.starts_with("refresh:")) barriers.insert(key);
  }
  return barriers;
}

}  // namespace hadad::views
