// Edge cases of the optimizer facade: view-name queries, scalar pipelines,
// decomposition factors in queries, budget behaviour, and the naive-PACB
// (pruning off) mode.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/view_catalog.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "pacb/optimizer.h"

namespace hadad::pacb {
namespace {

la::MetaCatalog SmallCatalog() {
  la::MetaCatalog c;
  c["M"] = {.rows = 500, .cols = 60, .nnz = 30000};
  c["N"] = {.rows = 60, .cols = 500, .nnz = 30000};
  c["C"] = {.rows = 80, .cols = 80, .nnz = 6400};
  c["D"] = {.rows = 80, .cols = 80, .nnz = 6400};
  return c;
}

TEST(OptimizerEdgeTest, QueryThatIsExactlyAViewScan) {
  Optimizer opt(SmallCatalog());
  ASSERT_TRUE(opt.AddViewText("V", "M %*% N").ok());
  // Asking for the view itself returns the scan, cost 0.
  auto r = opt.OptimizeText("V");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "V");
  EXPECT_DOUBLE_EQ(r->best_cost, 0.0);
  // Asking for the definition answers from the view.
  auto r2 = opt.OptimizeText("M %*% N");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(la::ToString(r2->best), "V");
}

TEST(OptimizerEdgeTest, ViewDefinitionsMayReferenceEarlierViews) {
  Optimizer opt(SmallCatalog());
  ASSERT_TRUE(opt.AddViewText("V", "M %*% N").ok());
  ASSERT_TRUE(opt.AddViewText("W", "t(V)").ok());
  auto r = opt.OptimizeText("t(M %*% N)");
  ASSERT_TRUE(r.ok());
  // Either W directly or t(V); both are cost-0-ish. W is smaller.
  EXPECT_EQ(la::ToString(r->best), "W");
}

TEST(OptimizerEdgeTest, PureScalarPipeline) {
  Optimizer opt(SmallCatalog());
  auto r = opt.OptimizeText("det(C) * det(D) * det(C)");
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->best_cost, r->original_cost);
}

TEST(OptimizerEdgeTest, DecompositionFactorsInQueries) {
  la::MetaCatalog catalog = SmallCatalog();
  catalog["P"] = {.rows = 50, .cols = 50, .nnz = 2500, .symmetric_pd = true};
  Optimizer opt(catalog);
  // cho(P) %*% t(cho(P)) is P by I_cho; extraction should find the scan.
  auto r = opt.OptimizeText("cho(P) %*% t(cho(P))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "P");
  EXPECT_DOUBLE_EQ(r->best_cost, 0.0);
}

TEST(OptimizerEdgeTest, QrFixpointsViaTypes) {
  la::MetaCatalog catalog = SmallCatalog();
  catalog["Q"] = {.rows = 50, .cols = 50, .nnz = 2500, .orthogonal = true};
  Optimizer opt(catalog);
  // qr_q of an orthogonal matrix is the matrix itself (constraint (7)).
  auto r = opt.OptimizeText("qr_q(Q)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "Q");
}

TEST(OptimizerEdgeTest, TinyBudgetStillReturnsOriginal) {
  OptimizerOptions options;
  options.chase.max_facts = 8;   // Practically no room to derive anything.
  options.chase.max_rounds = 1;
  Optimizer opt(SmallCatalog(), options);
  auto r = opt.OptimizeText("t(M %*% N)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "t(M %*% N)");
  EXPECT_TRUE(r->chase_stats.budget_exhausted ||
              r->chase_stats.facts_added == 0);
}

TEST(OptimizerEdgeTest, RepeatedOptimizeCallsAreIndependent) {
  Optimizer opt(SmallCatalog());
  auto r1 = opt.OptimizeText("t(M %*% N)");
  auto r2 = opt.OptimizeText("t(M %*% N)");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(la::ToString(r1->best), la::ToString(r2->best));
  EXPECT_DOUBLE_EQ(r1->best_cost, r2->best_cost);
}

TEST(OptimizerEdgeTest, MorpheusJoinValidation) {
  Optimizer opt(SmallCatalog());
  EXPECT_FALSE(opt.AddMorpheusJoin({"M", "N", "nope", "C"}).ok());
}

TEST(OptimizerEdgeTest, NaivePacbEnumeratesMoreButAgreesOnBest) {
  OptimizerOptions pruned_options;
  OptimizerOptions naive_options;
  naive_options.prune = false;
  Optimizer pruned(SmallCatalog(), pruned_options);
  Optimizer naive(SmallCatalog(), naive_options);
  for (const char* text : {"t(M %*% N)", "trace(C + D)", "(M %*% N) %*% M"}) {
    auto a = pruned.OptimizeText(text);
    auto b = naive.OptimizeText(text);
    ASSERT_TRUE(a.ok()) << text;
    ASSERT_TRUE(b.ok()) << text;
    EXPECT_EQ(la::ToString(a->best), la::ToString(b->best)) << text;
    EXPECT_GE(b->rewrites.size(), a->rewrites.size()) << text;
  }
}

TEST(OptimizerEdgeTest, SubtractionPipelinesRoundTrip) {
  Rng rng(6);
  engine::Workspace ws;
  ws.Put("M", matrix::RandomDense(rng, 40, 30));
  ws.Put("N", matrix::RandomDense(rng, 40, 30));
  ws.Put("w", matrix::RandomDense(rng, 30, 1));
  Optimizer opt(ws.BuildMetaCatalog());
  auto r = opt.OptimizeText("(M - N) %*% w");
  ASSERT_TRUE(r.ok());
  auto a = engine::Execute(*la::ParseExpression("(M - N) %*% w").value(), ws);
  auto b = engine::Execute(*r->best, ws);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 1e-8));
}

TEST(OptimizerEdgeTest, ZeroCostQueriesDoNotRegress) {
  // Single scans and single ops have γ = 0; the optimizer must return them
  // unchanged (or an equal-cost smaller plan) without exploding.
  Optimizer opt(SmallCatalog());
  for (const char* text : {"M", "t(M)", "sum(M)", "M %*% N"}) {
    auto r = opt.OptimizeText(text);
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_DOUBLE_EQ(r->best_cost, 0.0) << text;
  }
}

}  // namespace
}  // namespace hadad::pacb
