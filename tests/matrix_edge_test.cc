// Edge-case and failure-injection coverage for the matrix substrate:
// degenerate shapes, representation boundaries, and numerical corner cases
// the main suite's happy paths do not reach.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/decompositions.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"

namespace hadad::matrix {
namespace {

TEST(EdgeTest, OneByOneMatrixBehavesAsScalarEverywhere) {
  Matrix s = Matrix::Scalar(3.0);
  EXPECT_TRUE(s.IsSquare());
  EXPECT_DOUBLE_EQ(Determinant(s).value(), 3.0);
  EXPECT_DOUBLE_EQ(Trace(s).value(), 3.0);
  EXPECT_DOUBLE_EQ(Sum(s), 3.0);
  EXPECT_TRUE(Inverse(s)->ApproxEquals(Matrix::Scalar(1.0 / 3.0)));
  EXPECT_TRUE(Multiply(s, s)->ApproxEquals(Matrix::Scalar(9.0)));
  EXPECT_TRUE(Transpose(s).ApproxEquals(s));
}

TEST(EdgeTest, VectorTimesVector) {
  // Outer product u v^T and inner product v^T v.
  Matrix u(DenseMatrix(3, 1, {1, 2, 3}));
  Matrix v(DenseMatrix(3, 1, {4, 5, 6}));
  auto outer = Multiply(u, Transpose(v));
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(outer->rows(), 3);
  EXPECT_EQ(outer->cols(), 3);
  EXPECT_DOUBLE_EQ(outer->At(2, 0), 12.0);
  auto inner = Multiply(Transpose(v), u);
  ASSERT_TRUE(inner.ok());
  EXPECT_TRUE(inner->IsScalar());
  EXPECT_DOUBLE_EQ(inner->ScalarValue(), 32.0);
}

TEST(EdgeTest, EmptySparseMatrix) {
  SparseMatrix s(5, 4);
  EXPECT_EQ(s.nnz(), 0);
  Matrix m(s);
  EXPECT_DOUBLE_EQ(Sum(m), 0.0);
  EXPECT_DOUBLE_EQ(Min(m), 0.0);
  EXPECT_DOUBLE_EQ(Max(m), 0.0);
  EXPECT_TRUE(Transpose(m).is_sparse());
  EXPECT_EQ(Transpose(m).rows(), 4);
  Matrix rs = RowSums(m);
  EXPECT_DOUBLE_EQ(rs.At(0, 0), 0.0);
}

TEST(EdgeTest, ScalarMultiplyByZeroPrunesSparse) {
  Rng rng(1);
  Matrix sp = RandomSparse(rng, 10, 10, 0.3);
  Matrix z = ScalarMultiply(0.0, sp);
  ASSERT_TRUE(z.is_sparse());
  EXPECT_EQ(z.sparse().nnz(), 0);
}

TEST(EdgeTest, AddCancellationPrunesSparse) {
  Rng rng(2);
  Matrix sp = RandomSparse(rng, 8, 8, 0.4);
  auto z = Add(sp, ScalarMultiply(-1.0, sp));
  ASSERT_TRUE(z.ok());
  ASSERT_TRUE(z->is_sparse());
  EXPECT_EQ(z->sparse().nnz(), 0);
}

TEST(EdgeTest, ReverseOnSparseStaysSparse) {
  SparseMatrix s = SparseMatrix::FromTriplets(3, 2, {{0, 1, 7.0}});
  Matrix r = Reverse(Matrix(s));
  EXPECT_TRUE(r.is_sparse());
  EXPECT_DOUBLE_EQ(r.At(2, 1), 7.0);
  EXPECT_DOUBLE_EQ(r.At(0, 1), 0.0);
}

TEST(EdgeTest, DirectSumMixedRepresentations) {
  Rng rng(3);
  Matrix dense = RandomDense(rng, 3, 3);
  Matrix sparse = RandomSparse(rng, 2, 2, 0.5);
  Matrix both = DirectSum(dense, sparse);
  EXPECT_TRUE(both.is_sparse());  // One sparse input keeps the block form.
  EXPECT_EQ(both.rows(), 5);
  Matrix dd = DirectSum(dense, dense);
  EXPECT_TRUE(dd.is_dense());
}

TEST(EdgeTest, KroneckerSizeGuard) {
  Matrix big(DenseMatrix(40000, 1));
  Matrix wide(DenseMatrix(1, 60000));
  auto r = KroneckerProduct(big, wide);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(EdgeTest, DiagOfOneByOne) {
  // 1x1 is square: diag extracts the single diagonal.
  auto d = Diag(Matrix::Scalar(5.0));
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->IsScalar());
  EXPECT_DOUBLE_EQ(d->ScalarValue(), 5.0);
}

TEST(EdgeTest, TriangularSolvePathsInInverse) {
  // Inverse of a triangular matrix (PLU pivoting exercises row swaps).
  Matrix l(DenseMatrix(3, 3, {2, 0, 0, 1, 3, 0, 4, 5, 6}));
  auto inv = Inverse(l);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(Multiply(l, *inv)->ApproxEquals(Matrix::Identity(3), 1e-10));
}

TEST(EdgeTest, NearSingularInverseRejected) {
  DenseMatrix a(3, 3, {1, 2, 3, 2, 4, 6.0000000000001, 1, 1, 1});
  auto inv = Inverse(Matrix(a));
  // Either rejected as singular or produced; if produced, A*inv(A) must be
  // close to identity (no silent garbage).
  if (inv.ok()) {
    auto prod = Multiply(Matrix(a), *inv);
    EXPECT_TRUE(prod->ApproxEquals(Matrix::Identity(3), 1e-2));
  } else {
    EXPECT_EQ(inv.status().code(), StatusCode::kNotInvertible);
  }
}

TEST(EdgeTest, ApproxEqualsToleratesRepresentation) {
  Rng rng(4);
  Matrix dense = RandomDense(rng, 6, 6);
  Matrix as_sparse(SparseMatrix::FromDense(dense.dense()));
  EXPECT_TRUE(dense.ApproxEquals(as_sparse));
  EXPECT_TRUE(as_sparse.ApproxEquals(dense));
  EXPECT_FALSE(dense.ApproxEquals(Matrix::Identity(6)));
  EXPECT_FALSE(dense.ApproxEquals(Matrix::Zero(6, 5)));
}

TEST(EdgeTest, MatrixExpOfLargeNormUsesSquaring) {
  // Norm >> 0.5 forces the scaling-and-squaring path.
  Matrix a(DenseMatrix(2, 2, {0, 6, -6, 0}));  // exp = rotation by 6 rad.
  auto e = MatrixExp(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->At(0, 0), std::cos(6.0), 1e-9);
  EXPECT_NEAR(e->At(0, 1), std::sin(6.0), 1e-9);
  // exp(A) exp(-A) = I.
  auto em = MatrixExp(ScalarMultiply(-1.0, a));
  EXPECT_TRUE(Multiply(*e, *em)->ApproxEquals(Matrix::Identity(2), 1e-9));
}

TEST(EdgeTest, SparseAtOutOfRangeDies) {
  SparseMatrix s = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}});
  EXPECT_DEATH(s.At(5, 0), "HADAD_CHECK");
}

TEST(EdgeTest, ScalarValueOnMatrixDies) {
  Matrix m(DenseMatrix(2, 2, {1, 2, 3, 4}));
  EXPECT_DEATH(m.ScalarValue(), "ScalarValue");
}

// Hadamard of two sparse matrices intersects supports.
TEST(EdgeTest, SparseSparseHadamardIntersects) {
  SparseMatrix a = SparseMatrix::FromTriplets(3, 3, {{0, 0, 2.0},
                                                     {1, 1, 3.0}});
  SparseMatrix b = SparseMatrix::FromTriplets(3, 3, {{1, 1, 4.0},
                                                     {2, 2, 5.0}});
  auto h = ElementwiseMultiply(Matrix(a), Matrix(b));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->sparse().nnz(), 1);
  EXPECT_DOUBLE_EQ(h->At(1, 1), 12.0);
}

TEST(EdgeTest, CholeskyOnIdentityIsIdentity) {
  auto l = CholeskyDecompose(Matrix::Identity(5));
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->ApproxEquals(Matrix::Identity(5)));
}

TEST(EdgeTest, AdjugateOfOneByOneIsOne) {
  auto adj = Adjugate(Matrix::Scalar(7.0));
  ASSERT_TRUE(adj.ok());
  EXPECT_DOUBLE_EQ(adj->ScalarValue(), 1.0);
}

TEST(EdgeDeathTest, DenseShapeProductOverflowIsCaught) {
  // 2^33 x 2^33 cells overflow both int64_t and size_t; the constructor
  // must trip its HADAD_CHECK instead of allocating a wrapped size.
  const int64_t huge = int64_t{1} << 33;
  EXPECT_DEATH(DenseMatrix(huge, huge), "overflow");
  // A product that fits size_t but not int64_t is rejected too.
  EXPECT_DEATH(DenseMatrix(int64_t{1} << 32, int64_t{1} << 31), "overflow");
}

}  // namespace
}  // namespace hadad::matrix
