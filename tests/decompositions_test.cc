#include "matrix/decompositions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/generate.h"

namespace hadad::matrix {
namespace {

TEST(LuTest, ReconstructsInput) {
  Rng rng(1);
  Matrix a = RandomInvertible(rng, 6);
  auto lu = LuDecompose(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(IsLowerTriangular(lu->l));
  EXPECT_TRUE(IsUpperTriangular(lu->u));
  auto prod = Multiply(lu->l, lu->u);
  EXPECT_TRUE(prod->ApproxEquals(a, 1e-8));
}

TEST(LuTest, ZeroPivotReportsNotSupported) {
  // First pivot is zero and no pivoting is allowed.
  Matrix a(DenseMatrix(2, 2, {0, 1, 1, 0}));
  auto lu = LuDecompose(a);
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.status().code(), StatusCode::kNotSupported);
}

TEST(PluTest, ReconstructsWithPermutation) {
  Rng rng(2);
  Matrix a = RandomDense(rng, 7, 7, -2.0, 2.0);
  auto plu = PluDecompose(a);
  ASSERT_TRUE(plu.ok());
  // P*A = L*U where P permutes rows per plu->perm.
  DenseMatrix pa(7, 7);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      pa.At(i, j) = a.At(plu->perm[static_cast<size_t>(i)], j);
    }
  }
  auto prod = Multiply(plu->l, plu->u);
  EXPECT_TRUE(prod->ApproxEquals(Matrix(pa), 1e-8));
}

TEST(PluTest, HandlesZeroLeadingPivot) {
  Matrix a(DenseMatrix(2, 2, {0, 1, 1, 0}));
  auto plu = PluDecompose(a);
  ASSERT_TRUE(plu.ok());
  EXPECT_DOUBLE_EQ(plu->sign, -1.0);
}

TEST(QrTest, OrthogonalTimesUpperTriangular) {
  Rng rng(3);
  Matrix a = RandomDense(rng, 8, 8, -1.0, 1.0);
  auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(IsOrthogonal(qr->q));
  EXPECT_TRUE(IsUpperTriangular(qr->r, 1e-9));
  auto prod = Multiply(qr->q, qr->r);
  EXPECT_TRUE(prod->ApproxEquals(a, 1e-8));
}

TEST(QrTest, NonSquareRejected) {
  Matrix a(DenseMatrix(2, 3, {1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(QrDecompose(a).ok());
}

TEST(CholeskyTest, SpdRoundTrip) {
  Rng rng(4);
  Matrix a = RandomSpd(rng, 9);
  auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(IsLowerTriangular(*l, 1e-10));
  auto prod = Multiply(*l, Transpose(*l));
  EXPECT_TRUE(prod->ApproxEquals(a, 1e-7));
}

TEST(CholeskyTest, RejectsNonSymmetric) {
  Matrix a(DenseMatrix(2, 2, {1, 2, 3, 4}));
  EXPECT_FALSE(CholeskyDecompose(a).ok());
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a(DenseMatrix(2, 2, {1, 2, 2, 1}));  // Symmetric, eigenvalues 3, -1.
  auto r = CholeskyDecompose(a);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(StructuralPredicatesTest, Classification) {
  EXPECT_TRUE(IsSymmetric(Matrix(DenseMatrix(2, 2, {1, 2, 2, 1}))));
  EXPECT_FALSE(IsSymmetric(Matrix(DenseMatrix(2, 2, {1, 2, 3, 1}))));
  EXPECT_TRUE(IsLowerTriangular(Matrix(DenseMatrix(2, 2, {1, 0, 5, 2}))));
  EXPECT_TRUE(IsUpperTriangular(Matrix(DenseMatrix(2, 2, {1, 5, 0, 2}))));
  EXPECT_TRUE(IsOrthogonal(Matrix::Identity(4)));
  EXPECT_FALSE(IsOrthogonal(Matrix(DenseMatrix(2, 2, {2, 0, 0, 2}))));
}

// QR fixed points encoded in MMC (§6.2.5): QR(Q) = [Q, I], QR(I) = [I, I].
TEST(QrTest, FixedPointOnIdentity) {
  auto qr = QrDecompose(Matrix::Identity(5));
  ASSERT_TRUE(qr.ok());
  EXPECT_TRUE(qr->q.ApproxEquals(Matrix::Identity(5)));
  EXPECT_TRUE(qr->r.ApproxEquals(Matrix::Identity(5)));
}

// Parameterized sweep: PLU determinant equals cofactor determinant on small
// random matrices (checks the sign bookkeeping).
class DetSweep : public ::testing::TestWithParam<int> {};

TEST_P(DetSweep, DetOfProductLaw) {
  Rng rng(static_cast<uint64_t>(GetParam() + 100));
  int64_t n = 2 + static_cast<int64_t>(rng.NextBelow(5));
  Matrix a = RandomDense(rng, n, n, -1.0, 1.0);
  Matrix b = RandomDense(rng, n, n, -1.0, 1.0);
  double lhs = Determinant(Multiply(a, b).value()).value();
  double rhs = Determinant(a).value() * Determinant(b).value();
  EXPECT_NEAR(lhs, rhs, 1e-8 + 1e-8 * std::fabs(rhs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetSweep, ::testing::Range(1, 17));

}  // namespace
}  // namespace hadad::matrix
