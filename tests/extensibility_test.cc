// The paper's extensibility contract (§1, §6): teaching HADAD a new LA
// property means *declaring* a constraint — no engine changes. These tests
// add knowledge at runtime via Optimizer::AddConstraints and watch the
// rewriting appear.

#include <gtest/gtest.h>

#include "chase/ast.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "la/vrem.h"
#include "matrix/generate.h"
#include "pacb/optimizer.h"

namespace hadad {
namespace {

using chase::MakeAtom;
using chase::MakeEgd;
using chase::MakeTgd;
using chase::Var;

la::MetaCatalog Catalog() {
  la::MetaCatalog c;
  c["A"] = {.rows = 2000, .cols = 100, .nnz = 200000};
  c["C"] = {.rows = 200, .cols = 200, .nnz = 40000};
  return c;
}

// rev(rev(M)) = M is true but deliberately absent from the built-in
// catalogs — declaring it as a TGD makes HADAD exploit it.
TEST(ExtensibilityTest, DeclaredInvolutionIsExploited) {
  {
    pacb::Optimizer without(Catalog());
    auto r = without.OptimizeText("rev(rev(A))");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(la::ToString(r->best), "rev(rev(A))");
  }
  pacb::Optimizer with(Catalog());
  with.AddConstraints({MakeTgd(
      "user:rev-involution",
      {MakeAtom(la::vrem::kRev, {Var("M"), Var("R")})},
      {MakeAtom(la::vrem::kRev, {Var("R"), Var("M")})})});
  auto r = with.OptimizeText("rev(rev(A))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "A");
  EXPECT_DOUBLE_EQ(r->best_cost, 0.0);
}

// A user-declared EGD can collapse classes: rev on a symmetric-use-case
// (here: declare that rev(rev(M)) merges back via an EGD on a helper
// relation chain is overkill; instead declare trace(rev(M)) = trace(M),
// another true identity the built-ins omit).
TEST(ExtensibilityTest, DeclaredAggregateRuleIsExploited) {
  pacb::Optimizer with(Catalog());
  with.AddConstraints({MakeTgd(
      "user:trace-rev",
      {MakeAtom(la::vrem::kRev, {Var("M"), Var("R1")}),
       MakeAtom(la::vrem::kTrace, {Var("R1"), Var("s")})},
      {MakeAtom(la::vrem::kTrace, {Var("M"), Var("s")})})});
  // trace(rev(C)) is NOT trace(C) in general — this test only checks the
  // machinery applies whatever the user declares; semantic responsibility
  // stays with the declarer (the paper's contract as well).
  auto r = with.OptimizeText("trace(rev(C))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(la::ToString(r->best), "trace(C)");
}

// The same declaration path drives rewriting *and* verification: a sound
// user rule (sum(rev) collapse already built in) must keep the oracle
// green end to end.
TEST(ExtensibilityTest, SoundUserRulePreservesSemantics) {
  Rng rng(5);
  engine::Workspace ws;
  ws.Put("A", matrix::RandomDense(rng, 50, 20));
  pacb::Optimizer opt(ws.BuildMetaCatalog());
  opt.AddConstraints({MakeTgd(
      "user:rev-involution",
      {MakeAtom(la::vrem::kRev, {Var("M"), Var("R")})},
      {MakeAtom(la::vrem::kRev, {Var("R"), Var("M")})})});
  auto r = opt.OptimizeText("sum(rev(rev(A)) + A)");
  ASSERT_TRUE(r.ok());
  auto original = engine::Execute(
      *la::ParseExpression("sum(rev(rev(A)) + A)").value(), ws);
  auto rewritten = engine::Execute(*r->best, ws);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_TRUE(original->ApproxEquals(*rewritten, 1e-9));
}

}  // namespace
}  // namespace hadad
