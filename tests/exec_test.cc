// Tests for the parallel physical execution engine (src/exec/): thread
// pool, DAG compilation (CSE + kernel selection), scheduler equivalence
// with the tree-walking evaluator, determinism across thread counts, and
// the api::Session Threads() routing.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "core/data.h"
#include "core/workloads.h"
#include "engine/evaluator.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/thread_pool.h"
#include "la/parser.h"
#include "matrix/blocked_kernels.h"
#include "matrix/generate.h"

namespace hadad::exec {
namespace {

using engine::ExecOptions;
using engine::ExecStats;
using matrix::Matrix;

la::ExprPtr Parse(const std::string& text) {
  auto e = la::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return *e;
}

// Bit-for-bit equality on the dense view (ApproxEquals would mask
// non-determinism).
bool ExactlyEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  matrix::DenseMatrix da = a.ToDense();
  matrix::DenseMatrix db = b.ToDense();
  for (int64_t i = 0; i < da.size(); ++i) {
    if (da.data()[i] != db.data()[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ResolvesThreadCounts) {
  EXPECT_GE(ThreadPool(0).threads(), 1);
  EXPECT_EQ(ThreadPool(1).threads(), 1);
  EXPECT_EQ(ThreadPool(1).worker_count(), 0);  // Inline mode.
  EXPECT_EQ(ThreadPool(4).threads(), 4);
  EXPECT_EQ(ThreadPool(4).worker_count(), 4);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 7, [&hits](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&pool, &total](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(10, 2, [&total](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

// ---------------------------------------------------------------------------
// Blocked kernels: bit-identical to the naive kernels in matrix.cc.
// ---------------------------------------------------------------------------

TEST(BlockedKernelTest, MatchesNaiveKernelsBitForBit) {
  Rng rng(7);
  const Matrix a = matrix::RandomDense(rng, 137, 310);
  const Matrix b = matrix::RandomDense(rng, 310, 71);
  const Matrix naive = matrix::Multiply(a, b).value();

  ThreadPool pool(4);
  matrix::RangeRunner runner = [&pool](int64_t n,
                                       const std::function<void(
                                           int64_t, int64_t)>& body) {
    pool.ParallelFor(n, matrix::kRowGrain, body);
  };
  const Matrix blocked_seq =
      Matrix(matrix::MultiplyDenseBlocked(a.dense(), b.dense()));
  const Matrix blocked_par =
      Matrix(matrix::MultiplyDenseBlocked(a.dense(), b.dense(), runner));
  EXPECT_TRUE(ExactlyEqual(naive, blocked_seq));
  EXPECT_TRUE(ExactlyEqual(naive, blocked_par));

  // Transpose-fused: t(a) * a against materialize-then-multiply.
  const Matrix t_naive =
      matrix::Multiply(matrix::Transpose(a), a).value();
  const Matrix t_fused =
      Matrix(matrix::MultiplyTransposedDenseBlocked(a.dense(), a.dense(),
                                                    runner));
  EXPECT_TRUE(ExactlyEqual(t_naive, t_fused));

  // SpMM row-parallel against the sequential sparse-dense kernel.
  const Matrix s = matrix::RandomSparse(rng, 200, 310, 0.05);
  const Matrix spmm_naive = matrix::Multiply(s, b).value();
  const Matrix spmm_par = Matrix(
      matrix::MultiplySparseDenseParallel(s.sparse(), b.dense(), runner));
  EXPECT_TRUE(ExactlyEqual(spmm_naive, spmm_par));
}

TEST(BlockedKernelTest, SpGemmMatchesSequentialGustavsonBitForBit) {
  Rng rng(17);
  const Matrix a = matrix::RandomSparse(rng, 211, 150, 0.04);
  const Matrix b = matrix::RandomSparse(rng, 150, 97, 0.06);
  const Matrix naive = matrix::Multiply(a, b).value();  // Sequential kernel.
  ASSERT_TRUE(naive.is_sparse());

  // Sequential call (null runner), pooled runner at the standard grain, and
  // a pathological runner with odd chunk boundaries: per-row accumulation
  // order never depends on the partition, so all are bit-identical.
  const Matrix seq =
      Matrix(matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse()));
  EXPECT_TRUE(ExactlyEqual(naive, seq));

  ThreadPool pool(4);
  matrix::RangeRunner runner = [&pool](int64_t n,
                                       const std::function<void(
                                           int64_t, int64_t)>& body) {
    pool.ParallelFor(n, matrix::kRowGrain, body);
  };
  const Matrix par = Matrix(
      matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse(), runner));
  EXPECT_TRUE(ExactlyEqual(naive, par));

  matrix::RangeRunner odd = [](int64_t n, const std::function<void(
                                              int64_t, int64_t)>& body) {
    for (int64_t begin = 0; begin < n; begin += 7) {
      body(begin, std::min(n, begin + 7));
    }
  };
  const Matrix odd_chunks = Matrix(
      matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse(), odd));
  EXPECT_TRUE(ExactlyEqual(naive, odd_chunks));

  // Exact CSR structural identity, not just values.
  EXPECT_EQ(par.sparse().row_ptr(), naive.sparse().row_ptr());
  EXPECT_EQ(par.sparse().col_idx(), naive.sparse().col_idx());
  EXPECT_EQ(par.sparse().values(), naive.sparse().values());
}

// ---------------------------------------------------------------------------
// Plan compilation: CSE and kernel selection.
// ---------------------------------------------------------------------------

class CompileTest : public ::testing::Test {
 protected:
  CompileTest() {
    Rng rng(3);
    workspace_.Put("X", matrix::RandomDense(rng, 120, 90));
    workspace_.Put("Y", matrix::RandomDense(rng, 90, 120));
    workspace_.Put("S", matrix::RandomSparse(rng, 200, 90, 0.02));
  }

  CompiledPlan MustCompile(const std::string& text,
                           const CompileOptions& options = {}) {
    auto plan = Compile(Parse(text), workspace_, nullptr, options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  // Kernel of the first node with the given op.
  KernelKind KernelOf(const CompiledPlan& plan, la::OpKind op) {
    for (const PlanNode& n : plan.nodes) {
      if (n.op == op && n.kernel != KernelKind::kLoad) return n.kernel;
    }
    ADD_FAILURE() << "no node with op " << la::OpName(op);
    return KernelKind::kGeneric;
  }

  engine::Workspace workspace_;
};

TEST_F(CompileTest, CseFoldsRepeatedSubtrees) {
  // X %*% Y appears twice; the second occurrence folds (its subtree,
  // leaves included, is never revisited).
  CompiledPlan plan = MustCompile("(X %*% Y) + (X %*% Y)");
  EXPECT_EQ(plan.cse_hits, 1);
  // Nodes: X, Y, X%*%Y, add. The expression tree has 7.
  EXPECT_EQ(plan.nodes.size(), 4u);
  EXPECT_EQ(Parse("(X %*% Y) + (X %*% Y)")->TreeSize(), 7);
}

TEST_F(CompileTest, CseDisabledKeepsTreeShape) {
  CompileOptions options;
  options.enable_cse = false;
  CompiledPlan plan = MustCompile("(X %*% Y) + (X %*% Y)", options);
  EXPECT_EQ(plan.cse_hits, 0);
  EXPECT_EQ(plan.nodes.size(), 7u);
}

TEST_F(CompileTest, SelectsBlockedGemmForLargeDenseProduct) {
  CompiledPlan plan = MustCompile("X %*% Y");
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kGemmBlocked);
}

TEST_F(CompileTest, SelectsSpmmForSparseLhs) {
  CompiledPlan plan = MustCompile("S %*% Y");
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kSpmm);
}

TEST_F(CompileTest, SelectsSpGemmForSparseSparseProduct) {
  Rng rng(5);
  workspace_.Put("S2", matrix::RandomSparse(rng, 90, 200, 0.02));
  CompiledPlan plan = MustCompile("S %*% S2");  // 200x200 output: parallel.
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kSpGemm);
}

TEST_F(CompileTest, RecordsLeafDependencySet) {
  CompiledPlan plan = MustCompile("(X %*% Y) + (X %*% Y)");
  EXPECT_EQ(plan.leaf_names, (std::vector<std::string>{"X", "Y"}));
}

TEST_F(CompileTest, FusesTransposedLhs) {
  CompiledPlan plan = MustCompile("t(X) %*% X");
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply),
            KernelKind::kGemmFusedTranspose);
  // The transpose was not materialized as its own node.
  for (const PlanNode& n : plan.nodes) {
    EXPECT_NE(n.op, la::OpKind::kTranspose);
  }
}

TEST_F(CompileTest, SmallProductsStayGeneric) {
  CompileOptions options;
  options.parallel_cell_threshold = 1 << 30;
  CompiledPlan plan = MustCompile("X %*% Y", options);
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kGeneric);
}

TEST_F(CompileTest, UnknownNameFails) {
  auto plan = Compile(Parse("X %*% Missing"), workspace_, nullptr, {});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(CompileTest, ShapeMismatchFails) {
  auto plan = Compile(Parse("X + Y"), workspace_, nullptr, {});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDimensionMismatch);
}

// ---------------------------------------------------------------------------
// Execution equivalence with the tree-walking evaluator.
// ---------------------------------------------------------------------------

core::LaBenchConfig TestConfig() {
  core::LaBenchConfig config;
  config.n_a = 800;
  config.n_m = 200;
  config.k = 30;
  config.n_c = 48;
  config.n_r = 30;
  config.x_rows = 300;
  config.x_cols = 200;
  return config;
}

TEST(ExecEquivalenceTest, MatchesSequentialAcrossBenchmarkPipelines) {
  Rng rng(17);
  engine::Workspace workspace = core::MakeLaBenchWorkspace(rng, TestConfig());
  Executor executor(ExecOptions{.threads = 2});
  int checked = 0;
  for (const core::Pipeline& p : core::LaBenchmark()) {
    la::ExprPtr expr = Parse(p.text);
    Result<Matrix> sequential = engine::Execute(*expr, workspace);
    Result<Matrix> parallel = executor.Run(expr, workspace);
    ASSERT_EQ(sequential.ok(), parallel.ok()) << p.id;
    if (!sequential.ok()) continue;
    EXPECT_TRUE(sequential->ApproxEquals(*parallel, 1e-9))
        << p.id << ": " << p.text;
    ++checked;
  }
  EXPECT_GT(checked, 40);  // The benchmark defines 57 pipelines.
}

TEST(ExecEquivalenceTest, DeterministicAcrossThreadCounts) {
  Rng rng(23);
  engine::Workspace workspace;
  workspace.Put("X", matrix::RandomDense(rng, 150, 130));
  workspace.Put("Y", matrix::RandomDense(rng, 130, 150));
  workspace.Put("S", matrix::RandomSparse(rng, 150, 150, 0.03));
  const std::vector<std::string> cases = {
      "(X %*% Y) %*% (X %*% Y)",
      "t(X) %*% X",
      "S %*% (X %*% Y)",
      "S %*% S",  // Parallel Gustavson SpGEMM path.
      "colSums(X %*% Y) %*% rowSums(X %*% Y)",
  };
  for (const std::string& text : cases) {
    la::ExprPtr expr = Parse(text);
    Result<Matrix> baseline =
        Executor(ExecOptions{.threads = 1}).Run(expr, workspace);
    ASSERT_TRUE(baseline.ok()) << text << ": " << baseline.status().ToString();
    for (int threads : {2, 4, 8}) {
      Executor executor(ExecOptions{.threads = threads});
      // Repeat: scheduling races would make results flap run to run.
      for (int rep = 0; rep < 3; ++rep) {
        Result<Matrix> out = executor.Run(expr, workspace);
        ASSERT_TRUE(out.ok()) << text;
        EXPECT_TRUE(ExactlyEqual(*baseline, *out))
            << text << " at " << threads << " threads, rep " << rep;
      }
    }
  }
}

TEST(ExecEquivalenceTest, ExecOptionsOverloadOfExecute) {
  Rng rng(29);
  engine::Workspace workspace;
  workspace.Put("X", matrix::RandomDense(rng, 100, 80));
  workspace.Put("Y", matrix::RandomDense(rng, 80, 100));
  la::ExprPtr expr = Parse("(X %*% Y) + (X %*% Y)");

  ExecStats stats;
  Result<Matrix> parallel =
      engine::Execute(*expr, workspace, ExecOptions{.threads = 4}, &stats);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  Result<Matrix> sequential = engine::Execute(*expr, workspace);
  ASSERT_TRUE(sequential.ok());
  EXPECT_TRUE(ExactlyEqual(*sequential, *parallel));

  EXPECT_EQ(stats.threads, 4);
  EXPECT_EQ(stats.cse_hits, 1);
  EXPECT_EQ(stats.plan_nodes, 4);
  EXPECT_EQ(stats.operators, 2);  // One shared product + one add.
  EXPECT_FALSE(stats.op_timings.empty());
  EXPECT_GE(stats.total_operator_seconds, stats.critical_path_seconds);
  EXPECT_GT(stats.critical_path_seconds, 0.0);
}

TEST(ExecEquivalenceTest, ErrorsSurfaceAsStatusInParallelRuns) {
  Rng rng(31);
  engine::Workspace workspace;
  workspace.Put("C", matrix::RandomDense(rng, 64, 64));
  // A zero matrix: inv(Z) fails at runtime, mid-DAG.
  workspace.Put("Z", Matrix(matrix::DenseMatrix(64, 64)));
  la::ExprPtr expr = Parse("C %*% inv(Z)");
  Executor executor(ExecOptions{.threads = 4});
  Result<Matrix> out = executor.Run(expr, workspace);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotInvertible);
}

// ---------------------------------------------------------------------------
// Operator fusion: elementwise chains + aggregation pushdown.
// ---------------------------------------------------------------------------

class FusionTest : public ::testing::Test {
 protected:
  FusionTest() {
    Rng rng(51);
    // Same-shape dense operands for elementwise chains.
    workspace_.Put("A", matrix::RandomDense(rng, 100, 80));
    workspace_.Put("B", matrix::RandomDense(rng, 100, 80));
    workspace_.Put("C", matrix::RandomDense(rng, 100, 80));
    workspace_.Put("D", matrix::RandomDense(rng, 100, 80));
    // GEMM operands for aggregation pushdown.
    workspace_.Put("X", matrix::RandomDense(rng, 120, 90));
    workspace_.Put("Y", matrix::RandomDense(rng, 90, 120));
    // Sparse same-shape operands for the runtime fallback path.
    workspace_.Put("S1", matrix::RandomSparse(rng, 100, 80, 0.05));
    workspace_.Put("S2", matrix::RandomSparse(rng, 100, 80, 0.05));
  }

  CompiledPlan MustCompile(const std::string& text,
                           const CompileOptions& options = {}) {
    auto plan = Compile(Parse(text), workspace_, nullptr, options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  int CountKernel(const CompiledPlan& plan, KernelKind kind) {
    int count = 0;
    for (const PlanNode& n : plan.nodes) count += n.kernel == kind ? 1 : 0;
    return count;
  }

  int CountOp(const CompiledPlan& plan, la::OpKind op) {
    int count = 0;
    for (const PlanNode& n : plan.nodes) count += n.op == op ? 1 : 0;
    return count;
  }

  engine::Workspace workspace_;
};

TEST_F(FusionTest, ElementwiseChainCollapsesToOneNode) {
  // A + B*C - D = add(add(A, B∘C), (-1)∘D): four elementwise operators,
  // three materialized intermediates eliminated.
  CompiledPlan plan = MustCompile("A + B * C - D");
  EXPECT_EQ(plan.fused_nodes, 1);
  EXPECT_EQ(plan.fused_ops_eliminated, 3);
  EXPECT_EQ(CountKernel(plan, KernelKind::kFusedElementwise), 1);
  // Loads A, B, C, D plus the fused node; interior adds/hadamards are gone.
  EXPECT_EQ(plan.nodes.size(), 5u);
  EXPECT_EQ(CountOp(plan, la::OpKind::kHadamard), 0);
  ASSERT_EQ(plan.programs.size(), 1u);
  EXPECT_EQ(plan.programs[0].fused_ops, 4);
  EXPECT_EQ(plan.programs[0].input_count, 4);
  // The eliminated interiors are recorded for cached-plan barrier checks.
  EXPECT_EQ(plan.fused_canonicals.size(), 3u);
  EXPECT_EQ(plan.fused_canonicals.count(la::ToString(Parse("B * C"))), 1u);
}

TEST_F(FusionTest, FusionDisabledKeepsEveryOperator) {
  CompileOptions options;
  options.enable_fusion = false;
  CompiledPlan plan = MustCompile("A + B * C - D", options);
  EXPECT_EQ(plan.fused_nodes, 0);
  EXPECT_EQ(CountKernel(plan, KernelKind::kFusedElementwise), 0);
  EXPECT_EQ(CountOp(plan, la::OpKind::kAdd), 2);
  EXPECT_EQ(CountOp(plan, la::OpKind::kHadamard), 2);
}

TEST_F(FusionTest, CseSharedInteriorNodeIsAFusionBarrier) {
  // B*C also feeds the transpose, so it is CSE-shared: it must stay its own
  // node (computed once), and the two-operand chain around it is too small
  // to fuse.
  CompiledPlan plan = MustCompile("(A + B * C) %*% t(B * C)");
  EXPECT_EQ(plan.fused_nodes, 0);
  EXPECT_EQ(plan.cse_hits, 1);
  EXPECT_EQ(CountOp(plan, la::OpKind::kHadamard), 1);
}

TEST_F(FusionTest, ExplicitBarrierKeepsCandidateRootMaterialized) {
  // With B*C declared an adaptive-view candidate root, the chain fuses
  // around it: B*C stays a materialized node feeding the fused chain.
  const std::set<std::string> barriers = {la::ToString(Parse("B * C"))};
  CompileOptions options;
  options.fusion_barriers = &barriers;
  CompiledPlan plan = MustCompile("A + B * C - D", options);
  EXPECT_EQ(plan.fused_nodes, 1);
  EXPECT_EQ(plan.fused_ops_eliminated, 2);
  EXPECT_EQ(CountOp(plan, la::OpKind::kHadamard), 1);  // B*C survives.
  EXPECT_EQ(CountKernel(plan, KernelKind::kFusedElementwise), 1);
}

TEST_F(FusionTest, AggregationPushesIntoGemm) {
  struct Case {
    const char* text;
    KernelKind kernel;
  };
  for (const Case& c :
       {Case{"colSums(X %*% Y)", KernelKind::kGemmColSumsReduce},
        Case{"rowSums(X %*% Y)", KernelKind::kGemmRowSumsReduce},
        Case{"sum(X %*% Y)", KernelKind::kGemmSumReduce},
        Case{"mean(X %*% Y)", KernelKind::kGemmMeanReduce},
        Case{"colMeans(X %*% Y)", KernelKind::kGemmColMeansReduce}}) {
    CompiledPlan plan = MustCompile(c.text);
    EXPECT_EQ(CountKernel(plan, c.kernel), 1) << c.text;
    // The product node is gone: loads X, Y plus the reducing node.
    EXPECT_EQ(plan.nodes.size(), 3u) << c.text;
    EXPECT_EQ(CountOp(plan, la::OpKind::kMultiply), 0) << c.text;
    EXPECT_EQ(plan.fused_nodes, 1) << c.text;
    EXPECT_EQ(plan.fused_ops_eliminated, 1) << c.text;
    EXPECT_EQ(plan.fused_canonicals.count(la::ToString(Parse("X %*% Y"))),
              1u)
        << c.text;
  }
}

TEST_F(FusionTest, SharedProductBlocksAggregationPushdown) {
  // X %*% Y feeds both aggregates: materializing it once beats computing it
  // twice inside two reducing kernels.
  CompiledPlan plan = MustCompile("colSums(X %*% Y) %*% rowSums(X %*% Y)");
  EXPECT_EQ(plan.fused_nodes, 0);
  EXPECT_EQ(CountKernel(plan, KernelKind::kGemmBlocked), 1);
}

TEST_F(FusionTest, FusedPlansAreBitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> cases = {
      "A + B * C - D",
      "2 * (A + B) - C",
      "(A + B - C) %*% t(D)",
      "colSums(X %*% Y)",
      "rowSums(X %*% Y)",
      "sum(X %*% Y)",
      "mean(X %*% Y)",
      "colMeans(X %*% Y)",
      "sum(X %*% Y) * (A + B) - D",
      "mean(X %*% Y) * (A + B) - D",
      "S1 + S2 - S1",  // Sparse chain: density gate keeps it unfused.
  };
  for (const std::string& text : cases) {
    la::ExprPtr expr = Parse(text);
    Result<Matrix> unfused =
        Executor(ExecOptions{.threads = 1, .enable_fusion = false})
            .Run(expr, workspace_);
    ASSERT_TRUE(unfused.ok()) << text << ": " << unfused.status().ToString();
    for (int threads : {1, 2, 4, 8}) {
      Executor executor(ExecOptions{.threads = threads});
      for (int rep = 0; rep < 2; ++rep) {
        Result<Matrix> fused = executor.Run(expr, workspace_);
        ASSERT_TRUE(fused.ok()) << text;
        EXPECT_TRUE(ExactlyEqual(*unfused, *fused))
            << text << " at " << threads << " threads, rep " << rep;
      }
    }
  }
}

TEST_F(FusionTest, SparseChainsStayUnfusedByDensityGate) {
  // Fusing a sparse chain would force the matrix-level fallback every run
  // — all the unfused work with none of the single-pass win.
  CompiledPlan plan = MustCompile("S1 + S2 - S1");
  EXPECT_EQ(plan.fused_nodes, 0);
  EXPECT_EQ(CountOp(plan, la::OpKind::kAdd), 2);
}

TEST_F(FusionTest, RuntimeRepresentationMissFallsBackExactly) {
  // Force the estimate wrong: with the density threshold at 0 everything
  // is "dense enough" to fuse, but the operands are sparse at runtime, so
  // the fused node must take the matrix-level fallback and still match the
  // unfused plan bit for bit.
  CompileOptions fuse_anyway;
  fuse_anyway.dense_sparsity_threshold = 0.0;
  CompiledPlan plan = MustCompile("S1 + S2 - S1", fuse_anyway);
  ASSERT_EQ(plan.fused_nodes, 1);

  Result<Matrix> unfused =
      Executor(ExecOptions{.threads = 1, .enable_fusion = false})
          .Run(Parse("S1 + S2 - S1"), workspace_);
  ASSERT_TRUE(unfused.ok());
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    Scheduler scheduler(&pool);
    Result<Matrix> fused = scheduler.Run(plan, workspace_);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    EXPECT_TRUE(ExactlyEqual(*unfused, *fused)) << threads << " threads";
  }
}

TEST_F(FusionTest, ReducingGemmFallsBackExactlyOnSparseOperands) {
  // Same forced-estimate trick for aggregation pushdown: sparse operands
  // pass ReducingGemmProfitable at threshold 0, so the reducing node's
  // runtime dense check fails and the materialize-then-aggregate fallback
  // must reproduce the unfused pipeline bit for bit.
  Rng rng(61);
  workspace_.Put("SA", matrix::RandomSparse(rng, 150, 90, 0.05));
  workspace_.Put("SB", matrix::RandomSparse(rng, 90, 150, 0.05));
  CompileOptions fuse_anyway;
  fuse_anyway.dense_sparsity_threshold = 0.0;
  for (const char* text :
       {"colSums(SA %*% SB)", "rowSums(SA %*% SB)", "sum(SA %*% SB)",
        "mean(SA %*% SB)", "colMeans(SA %*% SB)"}) {
    CompiledPlan plan = MustCompile(text, fuse_anyway);
    ASSERT_EQ(plan.fused_nodes, 1) << text;

    Result<Matrix> unfused =
        Executor(ExecOptions{.threads = 1, .enable_fusion = false})
            .Run(Parse(text), workspace_);
    ASSERT_TRUE(unfused.ok()) << text;
    for (int threads : {1, 4}) {
      ThreadPool pool(threads);
      Scheduler scheduler(&pool);
      Result<Matrix> fused = scheduler.Run(plan, workspace_);
      ASSERT_TRUE(fused.ok()) << text << ": " << fused.status().ToString();
      EXPECT_TRUE(ExactlyEqual(*unfused, *fused))
          << text << " at " << threads << " threads";
    }
  }
}

TEST_F(FusionTest, MatchesTreeEvaluatorOnChains) {
  for (const char* text : {"A + B * C - D", "colSums(X %*% Y)",
                           "S1 + S2 - S1"}) {
    la::ExprPtr expr = Parse(text);
    Result<Matrix> tree = engine::Execute(*expr, workspace_);
    Result<Matrix> fused = Executor(ExecOptions{.threads = 2})
                               .Run(expr, workspace_);
    ASSERT_TRUE(tree.ok()) << text;
    ASSERT_TRUE(fused.ok()) << text;
    EXPECT_TRUE(ExactlyEqual(*tree, *fused)) << text;
  }
}

TEST_F(FusionTest, ExecStatsRecordFusion) {
  la::ExprPtr expr = Parse("A + B * C - D");
  ExecStats stats;
  Result<Matrix> out = engine::Execute(*expr, workspace_,
                                       ExecOptions{.threads = 2}, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.fused_nodes, 1);
  EXPECT_EQ(stats.fused_ops_eliminated, 3);
  EXPECT_EQ(stats.operators, 1);   // The whole chain is one physical op.
  EXPECT_EQ(stats.plan_nodes, 5);  // Four loads + the fused node.

  ExecStats unfused_stats;
  Result<Matrix> unfused = engine::Execute(
      *expr, workspace_,
      ExecOptions{.threads = 2, .enable_fusion = false}, &unfused_stats);
  ASSERT_TRUE(unfused.ok());
  EXPECT_EQ(unfused_stats.fused_nodes, 0);
  EXPECT_EQ(unfused_stats.operators, 4);
  // Fusion eliminates the interior intermediates from the γ measure.
  EXPECT_LT(stats.intermediate_nnz, unfused_stats.intermediate_nnz);
}

// ---------------------------------------------------------------------------
// api::Session integration
// ---------------------------------------------------------------------------

TEST(SessionThreadsTest, ThreadsRoutesThroughDagEngine) {
  Rng rng(41);
  const Matrix x = matrix::RandomDense(rng, 150, 100);
  const Matrix y = matrix::RandomDense(rng, 100, 150);

  auto sequential =
      api::SessionBuilder().Put("X", x).Put("Y", y).Build().value();
  auto parallel = api::SessionBuilder()
                      .Put("X", x)
                      .Put("Y", y)
                      .Threads(4)
                      .Build()
                      .value();
  ASSERT_NE(parallel->executor(), nullptr);
  EXPECT_EQ(parallel->executor()->threads(), 4);
  EXPECT_EQ(sequential->executor(), nullptr);

  const std::string text = "(X %*% Y) %*% (X %*% Y)";
  ExecStats stats;
  Result<Matrix> par = parallel->Run(text, &stats);
  Result<Matrix> seq = sequential->Run(text);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(ExactlyEqual(*seq, *par));
  EXPECT_EQ(stats.threads, 4);
  EXPECT_GT(stats.cse_hits, 0);

  // PreparedQuery handles route through the same engine.
  auto prepared = parallel->Prepare(text);
  ASSERT_TRUE(prepared.ok());
  ExecStats prep_stats;
  Result<Matrix> via_prepared = prepared->Execute(&prep_stats);
  ASSERT_TRUE(via_prepared.ok());
  EXPECT_TRUE(ExactlyEqual(*seq, *via_prepared));
  EXPECT_EQ(prep_stats.threads, 4);
}

TEST(SessionThreadsTest, SessionStatsAccumulateFusion) {
  Rng rng(47);
  auto session = api::SessionBuilder()
                     .Put("A", matrix::RandomDense(rng, 100, 80))
                     .Put("B", matrix::RandomDense(rng, 100, 80))
                     .Put("C", matrix::RandomDense(rng, 100, 80))
                     .Threads(2)
                     .Build()
                     .value();
  ExecStats stats;
  Result<Matrix> out = session->Run("A + B * C - A", &stats);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(stats.fused_nodes, 1);
  EXPECT_GT(stats.fused_ops_eliminated, 0);
  api::SessionStats s = session->stats();
  EXPECT_EQ(s.fused_nodes, 1);
  EXPECT_EQ(s.fused_ops_eliminated, stats.fused_ops_eliminated);
  // The plan (and its fusion) is cached: a second run compiles nothing new.
  ASSERT_TRUE(session->Run("A + B * C - A").ok());
  EXPECT_EQ(session->stats().fused_nodes, 1);
}

TEST(SessionThreadsTest, CachedPlanRecompilesWhenCandidateBecomesBarrier) {
  Rng rng(53);
  views::AdaptiveOptions options;
  options.min_hits = 2;
  // Candidates are recommended (viable) but never scheduled, so they stay
  // candidates indefinitely — the window the barrier protects.
  options.max_views_per_sweep = 0;
  options.synchronous = true;
  auto session = api::SessionBuilder()
                     .Put("A", matrix::RandomDense(rng, 100, 80))
                     .Put("B", matrix::RandomDense(rng, 100, 80))
                     .Put("C", matrix::RandomDense(rng, 100, 80))
                     .Threads(1)
                     .AdaptiveViews(options)
                     .Build()
                     .value();
  const std::string text = "A + B * C - A";
  ExecStats first, third;
  Result<Matrix> r1 = session->Run(text, &first);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(first.fused_nodes, 1);  // No candidates yet: chain fuses.
  ASSERT_TRUE(session->Run(text).ok());
  // The interior subexpressions have now crossed min_hits and are viable
  // candidates, so they are fusion barriers: the CACHED compiled plan must
  // be recompiled with them unfused, or the monitor would never see them
  // as distinct operators again.
  Result<Matrix> r3 = session->Run(text, &third);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(third.fused_nodes, 0);
  EXPECT_TRUE(ExactlyEqual(*r1, *r3));
  EXPECT_GE(session->stats().compiled_plans, 2);
}

TEST(SessionThreadsTest, NonViableCandidatesDoNotDefuseHotQueries) {
  Rng rng(59);
  views::AdaptiveOptions options;
  options.min_hits = 2;
  options.budget_bytes = 1;  // Every candidate is over budget: not viable.
  options.synchronous = true;
  auto session = api::SessionBuilder()
                     .Put("A", matrix::RandomDense(rng, 100, 80))
                     .Put("B", matrix::RandomDense(rng, 100, 80))
                     .Put("C", matrix::RandomDense(rng, 100, 80))
                     .Threads(1)
                     .AdaptiveViews(options)
                     .Build()
                     .value();
  const std::string text = "A + B * C - A";
  ExecStats stats;
  for (int run = 0; run < 4; ++run) {
    stats = ExecStats();
    ASSERT_TRUE(session->Run(text, &stats).ok());
    // Subexpressions that can never materialize must not cost the hot
    // query its fusion win.
    EXPECT_EQ(stats.fused_nodes, 1) << "run " << run;
  }
}

TEST(SessionThreadsTest, ViewsResolveUnderDagEngine) {
  Rng rng(43);
  auto session = api::SessionBuilder()
                     .Put("X", matrix::RandomDense(rng, 120, 80))
                     .AddView("V", "t(X) %*% X")
                     .Threads(2)
                     .Build()
                     .value();
  Result<Matrix> out = session->Run("V %*% t(X)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rows(), 80);
  EXPECT_EQ(out->cols(), 120);
}

}  // namespace
}  // namespace hadad::exec
