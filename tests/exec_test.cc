// Tests for the parallel physical execution engine (src/exec/): thread
// pool, DAG compilation (CSE + kernel selection), scheduler equivalence
// with the tree-walking evaluator, determinism across thread counts, and
// the api::Session Threads() routing.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "core/data.h"
#include "core/workloads.h"
#include "engine/evaluator.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "exec/thread_pool.h"
#include "la/parser.h"
#include "matrix/blocked_kernels.h"
#include "matrix/generate.h"

namespace hadad::exec {
namespace {

using engine::ExecOptions;
using engine::ExecStats;
using matrix::Matrix;

la::ExprPtr Parse(const std::string& text) {
  auto e = la::ParseExpression(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return *e;
}

// Bit-for-bit equality on the dense view (ApproxEquals would mask
// non-determinism).
bool ExactlyEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  matrix::DenseMatrix da = a.ToDense();
  matrix::DenseMatrix db = b.ToDense();
  for (int64_t i = 0; i < da.size(); ++i) {
    if (da.data()[i] != db.data()[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ResolvesThreadCounts) {
  EXPECT_GE(ThreadPool(0).threads(), 1);
  EXPECT_EQ(ThreadPool(1).threads(), 1);
  EXPECT_EQ(ThreadPool(1).worker_count(), 0);  // Inline mode.
  EXPECT_EQ(ThreadPool(4).threads(), 4);
  EXPECT_EQ(ThreadPool(4).worker_count(), 4);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 7, [&hits](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) {
        hits[static_cast<size_t>(i)].fetch_add(1);
      }
    });
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&pool, &total](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      pool.ParallelFor(10, 2, [&total](int64_t b, int64_t e) {
        total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

// ---------------------------------------------------------------------------
// Blocked kernels: bit-identical to the naive kernels in matrix.cc.
// ---------------------------------------------------------------------------

TEST(BlockedKernelTest, MatchesNaiveKernelsBitForBit) {
  Rng rng(7);
  const Matrix a = matrix::RandomDense(rng, 137, 310);
  const Matrix b = matrix::RandomDense(rng, 310, 71);
  const Matrix naive = matrix::Multiply(a, b).value();

  ThreadPool pool(4);
  matrix::RangeRunner runner = [&pool](int64_t n,
                                       const std::function<void(
                                           int64_t, int64_t)>& body) {
    pool.ParallelFor(n, matrix::kRowGrain, body);
  };
  const Matrix blocked_seq =
      Matrix(matrix::MultiplyDenseBlocked(a.dense(), b.dense()));
  const Matrix blocked_par =
      Matrix(matrix::MultiplyDenseBlocked(a.dense(), b.dense(), runner));
  EXPECT_TRUE(ExactlyEqual(naive, blocked_seq));
  EXPECT_TRUE(ExactlyEqual(naive, blocked_par));

  // Transpose-fused: t(a) * a against materialize-then-multiply.
  const Matrix t_naive =
      matrix::Multiply(matrix::Transpose(a), a).value();
  const Matrix t_fused =
      Matrix(matrix::MultiplyTransposedDenseBlocked(a.dense(), a.dense(),
                                                    runner));
  EXPECT_TRUE(ExactlyEqual(t_naive, t_fused));

  // SpMM row-parallel against the sequential sparse-dense kernel.
  const Matrix s = matrix::RandomSparse(rng, 200, 310, 0.05);
  const Matrix spmm_naive = matrix::Multiply(s, b).value();
  const Matrix spmm_par = Matrix(
      matrix::MultiplySparseDenseParallel(s.sparse(), b.dense(), runner));
  EXPECT_TRUE(ExactlyEqual(spmm_naive, spmm_par));
}

TEST(BlockedKernelTest, SpGemmMatchesSequentialGustavsonBitForBit) {
  Rng rng(17);
  const Matrix a = matrix::RandomSparse(rng, 211, 150, 0.04);
  const Matrix b = matrix::RandomSparse(rng, 150, 97, 0.06);
  const Matrix naive = matrix::Multiply(a, b).value();  // Sequential kernel.
  ASSERT_TRUE(naive.is_sparse());

  // Sequential call (null runner), pooled runner at the standard grain, and
  // a pathological runner with odd chunk boundaries: per-row accumulation
  // order never depends on the partition, so all are bit-identical.
  const Matrix seq =
      Matrix(matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse()));
  EXPECT_TRUE(ExactlyEqual(naive, seq));

  ThreadPool pool(4);
  matrix::RangeRunner runner = [&pool](int64_t n,
                                       const std::function<void(
                                           int64_t, int64_t)>& body) {
    pool.ParallelFor(n, matrix::kRowGrain, body);
  };
  const Matrix par = Matrix(
      matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse(), runner));
  EXPECT_TRUE(ExactlyEqual(naive, par));

  matrix::RangeRunner odd = [](int64_t n, const std::function<void(
                                              int64_t, int64_t)>& body) {
    for (int64_t begin = 0; begin < n; begin += 7) {
      body(begin, std::min(n, begin + 7));
    }
  };
  const Matrix odd_chunks = Matrix(
      matrix::MultiplySparseSparseParallel(a.sparse(), b.sparse(), odd));
  EXPECT_TRUE(ExactlyEqual(naive, odd_chunks));

  // Exact CSR structural identity, not just values.
  EXPECT_EQ(par.sparse().row_ptr(), naive.sparse().row_ptr());
  EXPECT_EQ(par.sparse().col_idx(), naive.sparse().col_idx());
  EXPECT_EQ(par.sparse().values(), naive.sparse().values());
}

// ---------------------------------------------------------------------------
// Plan compilation: CSE and kernel selection.
// ---------------------------------------------------------------------------

class CompileTest : public ::testing::Test {
 protected:
  CompileTest() {
    Rng rng(3);
    workspace_.Put("X", matrix::RandomDense(rng, 120, 90));
    workspace_.Put("Y", matrix::RandomDense(rng, 90, 120));
    workspace_.Put("S", matrix::RandomSparse(rng, 200, 90, 0.02));
  }

  CompiledPlan MustCompile(const std::string& text,
                           const CompileOptions& options = {}) {
    auto plan = Compile(Parse(text), workspace_, nullptr, options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  // Kernel of the first node with the given op.
  KernelKind KernelOf(const CompiledPlan& plan, la::OpKind op) {
    for (const PlanNode& n : plan.nodes) {
      if (n.op == op && n.kernel != KernelKind::kLoad) return n.kernel;
    }
    ADD_FAILURE() << "no node with op " << la::OpName(op);
    return KernelKind::kGeneric;
  }

  engine::Workspace workspace_;
};

TEST_F(CompileTest, CseFoldsRepeatedSubtrees) {
  // X %*% Y appears twice; the second occurrence folds (its subtree,
  // leaves included, is never revisited).
  CompiledPlan plan = MustCompile("(X %*% Y) + (X %*% Y)");
  EXPECT_EQ(plan.cse_hits, 1);
  // Nodes: X, Y, X%*%Y, add. The expression tree has 7.
  EXPECT_EQ(plan.nodes.size(), 4u);
  EXPECT_EQ(Parse("(X %*% Y) + (X %*% Y)")->TreeSize(), 7);
}

TEST_F(CompileTest, CseDisabledKeepsTreeShape) {
  CompileOptions options;
  options.enable_cse = false;
  CompiledPlan plan = MustCompile("(X %*% Y) + (X %*% Y)", options);
  EXPECT_EQ(plan.cse_hits, 0);
  EXPECT_EQ(plan.nodes.size(), 7u);
}

TEST_F(CompileTest, SelectsBlockedGemmForLargeDenseProduct) {
  CompiledPlan plan = MustCompile("X %*% Y");
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kGemmBlocked);
}

TEST_F(CompileTest, SelectsSpmmForSparseLhs) {
  CompiledPlan plan = MustCompile("S %*% Y");
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kSpmm);
}

TEST_F(CompileTest, SelectsSpGemmForSparseSparseProduct) {
  Rng rng(5);
  workspace_.Put("S2", matrix::RandomSparse(rng, 90, 200, 0.02));
  CompiledPlan plan = MustCompile("S %*% S2");  // 200x200 output: parallel.
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kSpGemm);
}

TEST_F(CompileTest, RecordsLeafDependencySet) {
  CompiledPlan plan = MustCompile("(X %*% Y) + (X %*% Y)");
  EXPECT_EQ(plan.leaf_names, (std::vector<std::string>{"X", "Y"}));
}

TEST_F(CompileTest, FusesTransposedLhs) {
  CompiledPlan plan = MustCompile("t(X) %*% X");
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply),
            KernelKind::kGemmFusedTranspose);
  // The transpose was not materialized as its own node.
  for (const PlanNode& n : plan.nodes) {
    EXPECT_NE(n.op, la::OpKind::kTranspose);
  }
}

TEST_F(CompileTest, SmallProductsStayGeneric) {
  CompileOptions options;
  options.parallel_cell_threshold = 1 << 30;
  CompiledPlan plan = MustCompile("X %*% Y", options);
  EXPECT_EQ(KernelOf(plan, la::OpKind::kMultiply), KernelKind::kGeneric);
}

TEST_F(CompileTest, UnknownNameFails) {
  auto plan = Compile(Parse("X %*% Missing"), workspace_, nullptr, {});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(CompileTest, ShapeMismatchFails) {
  auto plan = Compile(Parse("X + Y"), workspace_, nullptr, {});
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDimensionMismatch);
}

// ---------------------------------------------------------------------------
// Execution equivalence with the tree-walking evaluator.
// ---------------------------------------------------------------------------

core::LaBenchConfig TestConfig() {
  core::LaBenchConfig config;
  config.n_a = 800;
  config.n_m = 200;
  config.k = 30;
  config.n_c = 48;
  config.n_r = 30;
  config.x_rows = 300;
  config.x_cols = 200;
  return config;
}

TEST(ExecEquivalenceTest, MatchesSequentialAcrossBenchmarkPipelines) {
  Rng rng(17);
  engine::Workspace workspace = core::MakeLaBenchWorkspace(rng, TestConfig());
  Executor executor(ExecOptions{.threads = 2});
  int checked = 0;
  for (const core::Pipeline& p : core::LaBenchmark()) {
    la::ExprPtr expr = Parse(p.text);
    Result<Matrix> sequential = engine::Execute(*expr, workspace);
    Result<Matrix> parallel = executor.Run(expr, workspace);
    ASSERT_EQ(sequential.ok(), parallel.ok()) << p.id;
    if (!sequential.ok()) continue;
    EXPECT_TRUE(sequential->ApproxEquals(*parallel, 1e-9))
        << p.id << ": " << p.text;
    ++checked;
  }
  EXPECT_GT(checked, 40);  // The benchmark defines 57 pipelines.
}

TEST(ExecEquivalenceTest, DeterministicAcrossThreadCounts) {
  Rng rng(23);
  engine::Workspace workspace;
  workspace.Put("X", matrix::RandomDense(rng, 150, 130));
  workspace.Put("Y", matrix::RandomDense(rng, 130, 150));
  workspace.Put("S", matrix::RandomSparse(rng, 150, 150, 0.03));
  const std::vector<std::string> cases = {
      "(X %*% Y) %*% (X %*% Y)",
      "t(X) %*% X",
      "S %*% (X %*% Y)",
      "S %*% S",  // Parallel Gustavson SpGEMM path.
      "colSums(X %*% Y) %*% rowSums(X %*% Y)",
  };
  for (const std::string& text : cases) {
    la::ExprPtr expr = Parse(text);
    Result<Matrix> baseline =
        Executor(ExecOptions{.threads = 1}).Run(expr, workspace);
    ASSERT_TRUE(baseline.ok()) << text << ": " << baseline.status().ToString();
    for (int threads : {2, 4, 8}) {
      Executor executor(ExecOptions{.threads = threads});
      // Repeat: scheduling races would make results flap run to run.
      for (int rep = 0; rep < 3; ++rep) {
        Result<Matrix> out = executor.Run(expr, workspace);
        ASSERT_TRUE(out.ok()) << text;
        EXPECT_TRUE(ExactlyEqual(*baseline, *out))
            << text << " at " << threads << " threads, rep " << rep;
      }
    }
  }
}

TEST(ExecEquivalenceTest, ExecOptionsOverloadOfExecute) {
  Rng rng(29);
  engine::Workspace workspace;
  workspace.Put("X", matrix::RandomDense(rng, 100, 80));
  workspace.Put("Y", matrix::RandomDense(rng, 80, 100));
  la::ExprPtr expr = Parse("(X %*% Y) + (X %*% Y)");

  ExecStats stats;
  Result<Matrix> parallel =
      engine::Execute(*expr, workspace, ExecOptions{.threads = 4}, &stats);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  Result<Matrix> sequential = engine::Execute(*expr, workspace);
  ASSERT_TRUE(sequential.ok());
  EXPECT_TRUE(ExactlyEqual(*sequential, *parallel));

  EXPECT_EQ(stats.threads, 4);
  EXPECT_EQ(stats.cse_hits, 1);
  EXPECT_EQ(stats.plan_nodes, 4);
  EXPECT_EQ(stats.operators, 2);  // One shared product + one add.
  EXPECT_FALSE(stats.op_timings.empty());
  EXPECT_GE(stats.total_operator_seconds, stats.critical_path_seconds);
  EXPECT_GT(stats.critical_path_seconds, 0.0);
}

TEST(ExecEquivalenceTest, ErrorsSurfaceAsStatusInParallelRuns) {
  Rng rng(31);
  engine::Workspace workspace;
  workspace.Put("C", matrix::RandomDense(rng, 64, 64));
  // A zero matrix: inv(Z) fails at runtime, mid-DAG.
  workspace.Put("Z", Matrix(matrix::DenseMatrix(64, 64)));
  la::ExprPtr expr = Parse("C %*% inv(Z)");
  Executor executor(ExecOptions{.threads = 4});
  Result<Matrix> out = executor.Run(expr, workspace);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotInvertible);
}

// ---------------------------------------------------------------------------
// api::Session integration
// ---------------------------------------------------------------------------

TEST(SessionThreadsTest, ThreadsRoutesThroughDagEngine) {
  Rng rng(41);
  const Matrix x = matrix::RandomDense(rng, 150, 100);
  const Matrix y = matrix::RandomDense(rng, 100, 150);

  auto sequential =
      api::SessionBuilder().Put("X", x).Put("Y", y).Build().value();
  auto parallel = api::SessionBuilder()
                      .Put("X", x)
                      .Put("Y", y)
                      .Threads(4)
                      .Build()
                      .value();
  ASSERT_NE(parallel->executor(), nullptr);
  EXPECT_EQ(parallel->executor()->threads(), 4);
  EXPECT_EQ(sequential->executor(), nullptr);

  const std::string text = "(X %*% Y) %*% (X %*% Y)";
  ExecStats stats;
  Result<Matrix> par = parallel->Run(text, &stats);
  Result<Matrix> seq = sequential->Run(text);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(ExactlyEqual(*seq, *par));
  EXPECT_EQ(stats.threads, 4);
  EXPECT_GT(stats.cse_hits, 0);

  // PreparedQuery handles route through the same engine.
  auto prepared = parallel->Prepare(text);
  ASSERT_TRUE(prepared.ok());
  ExecStats prep_stats;
  Result<Matrix> via_prepared = prepared->Execute(&prep_stats);
  ASSERT_TRUE(via_prepared.ok());
  EXPECT_TRUE(ExactlyEqual(*seq, *via_prepared));
  EXPECT_EQ(prep_stats.threads, 4);
}

TEST(SessionThreadsTest, ViewsResolveUnderDagEngine) {
  Rng rng(43);
  auto session = api::SessionBuilder()
                     .Put("X", matrix::RandomDense(rng, 120, 80))
                     .AddView("V", "t(X) %*% X")
                     .Threads(2)
                     .Build()
                     .value();
  Result<Matrix> out = session->Run("V %*% t(X)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rows(), 80);
  EXPECT_EQ(out->cols(), 120);
}

}  // namespace
}  // namespace hadad::exec
