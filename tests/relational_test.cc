#include "relational/operators.h"

#include <gtest/gtest.h>

#include "relational/casting.h"
#include "relational/table.h"

namespace hadad::relational {
namespace {

Table MakeUsers() {
  Table t({{"id", ValueType::kInt},
           {"name", ValueType::kString},
           {"followers", ValueType::kInt}});
  HADAD_CHECK(t.AppendRow({int64_t{1}, std::string("ada"), int64_t{100}}).ok());
  HADAD_CHECK(t.AppendRow({int64_t{2}, std::string("bob"), int64_t{5}}).ok());
  HADAD_CHECK(t.AppendRow({int64_t{3}, std::string("eve"), int64_t{42}}).ok());
  return t;
}

Table MakeTweets() {
  Table t({{"tid", ValueType::kInt},
           {"uid", ValueType::kInt},
           {"text", ValueType::kString},
           {"retweets", ValueType::kDouble}});
  HADAD_CHECK(
      t.AppendRow({int64_t{10}, int64_t{1}, std::string("covid news"), 3.0})
          .ok());
  HADAD_CHECK(
      t.AppendRow({int64_t{11}, int64_t{1}, std::string("hello"), 0.0}).ok());
  HADAD_CHECK(
      t.AppendRow({int64_t{12}, int64_t{3}, std::string("covid again"), 7.0})
          .ok());
  HADAD_CHECK(
      t.AppendRow({int64_t{13}, int64_t{9}, std::string("orphan"), 1.0}).ok());
  return t;
}

TEST(TableTest, SchemaEnforcement) {
  Table t({{"a", ValueType::kInt}});
  EXPECT_TRUE(t.AppendRow({int64_t{1}}).ok());
  EXPECT_FALSE(t.AppendRow({std::string("x")}).ok());
  EXPECT_FALSE(t.AppendRow({int64_t{1}, int64_t{2}}).ok());
  EXPECT_FALSE(t.ColumnIndex("missing").ok());
  EXPECT_EQ(t.ColumnIndex("a").value(), 0);
}

TEST(SelectTest, ComparisonPredicates) {
  Table users = MakeUsers();
  auto rich = Select(
      users, Predicate::Compare("followers", CompareOp::kGt, int64_t{10}));
  ASSERT_TRUE(rich.ok());
  EXPECT_EQ(rich->num_rows(), 2);
  auto exact =
      Select(users, Predicate::Compare("name", CompareOp::kEq,
                                       std::string("bob")));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->num_rows(), 1);
}

TEST(SelectTest, ContainsAndBooleanComposition) {
  Table tweets = MakeTweets();
  auto covid = Select(tweets, Predicate::Compare("text", CompareOp::kContains,
                                                 std::string("covid")));
  ASSERT_TRUE(covid.ok());
  EXPECT_EQ(covid->num_rows(), 2);
  auto both = Select(
      tweets,
      Predicate::And(Predicate::Compare("text", CompareOp::kContains,
                                        std::string("covid")),
                     Predicate::Compare("retweets", CompareOp::kGe, 5.0)));
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(both->num_rows(), 1);
  auto either = Select(
      tweets,
      Predicate::Or(Predicate::Compare("retweets", CompareOp::kEq, 0.0),
                    Predicate::Compare("retweets", CompareOp::kEq, 1.0)));
  ASSERT_TRUE(either.ok());
  EXPECT_EQ(either->num_rows(), 2);
}

TEST(SelectTest, TypeMismatchIsError) {
  Table users = MakeUsers();
  auto bad = Select(
      users, Predicate::Compare("name", CompareOp::kLt, int64_t{3}));
  EXPECT_FALSE(bad.ok());
}

TEST(ProjectTest, ReordersAndDrops) {
  Table users = MakeUsers();
  auto p = Project(users, {"followers", "id"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_cols(), 2);
  EXPECT_EQ(p->schema()[0].name, "followers");
  EXPECT_EQ(std::get<int64_t>(p->row(0)[1]), 1);
  EXPECT_FALSE(Project(users, {"nope"}).ok());
}

TEST(HashJoinTest, PkFkJoin) {
  Table users = MakeUsers();
  Table tweets = MakeTweets();
  auto joined = HashJoin(tweets, "uid", users, "id");
  ASSERT_TRUE(joined.ok());
  // Tweets 10, 11 (ada) and 12 (eve) match; 13 is dangling.
  EXPECT_EQ(joined->num_rows(), 3);
  // Schema: tweets' 4 cols + users' (name, followers).
  EXPECT_EQ(joined->num_cols(), 6);
  EXPECT_TRUE(joined->ColumnIndex("name").ok());
  EXPECT_TRUE(joined->ColumnIndex("followers").ok());
}

TEST(HashJoinTest, NameCollisionGetsSuffix) {
  Table a({{"id", ValueType::kInt}, {"x", ValueType::kInt}});
  Table b({{"id", ValueType::kInt}, {"x", ValueType::kInt}});
  HADAD_CHECK(a.AppendRow({int64_t{1}, int64_t{2}}).ok());
  HADAD_CHECK(b.AppendRow({int64_t{1}, int64_t{3}}).ok());
  auto j = HashJoin(a, "id", b, "id");
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->ColumnIndex("x").ok());
  EXPECT_TRUE(j->ColumnIndex("x_r").ok());
}

TEST(OneHotTest, EncodesCategoricals) {
  Table t({{"unit", ValueType::kString}, {"age", ValueType::kInt}});
  HADAD_CHECK(t.AppendRow({std::string("CCU"), int64_t{60}}).ok());
  HADAD_CHECK(t.AppendRow({std::string("MICU"), int64_t{50}}).ok());
  HADAD_CHECK(t.AppendRow({std::string("CCU"), int64_t{70}}).ok());
  auto enc = OneHotEncode(t, "unit");
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->num_cols(), 3);  // age + 2 indicators.
  int64_t ccu = enc->ColumnIndex("unit=CCU").value();
  int64_t micu = enc->ColumnIndex("unit=MICU").value();
  EXPECT_DOUBLE_EQ(std::get<double>(enc->row(0)[static_cast<size_t>(ccu)]),
                   1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(enc->row(1)[static_cast<size_t>(micu)]),
                   1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(enc->row(1)[static_cast<size_t>(ccu)]),
                   0.0);
}

TEST(CastingTest, TableToMatrix) {
  Table users = MakeUsers();
  auto m = TableToMatrix(users, {"id", "followers"});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 3);
  EXPECT_EQ(m->cols(), 2);
  EXPECT_DOUBLE_EQ(m->At(2, 1), 42.0);
  // String column cannot be cast.
  EXPECT_FALSE(TableToMatrix(users, {"name"}).ok());
}

TEST(CastingTest, FactsToSparseMatrix) {
  Table facts({{"r", ValueType::kInt},
               {"c", ValueType::kInt},
               {"v", ValueType::kDouble}});
  HADAD_CHECK(facts.AppendRow({int64_t{0}, int64_t{2}, 3.0}).ok());
  HADAD_CHECK(facts.AppendRow({int64_t{4}, int64_t{1}, 2.0}).ok());
  auto m = FactsToSparseMatrix(facts, "r", "c", "v", 5, 3);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->is_sparse());
  EXPECT_EQ(m->sparse().nnz(), 2);
  EXPECT_DOUBLE_EQ(m->At(4, 1), 2.0);
  // Out-of-bounds coordinate is an error.
  Table bad = facts;
  HADAD_CHECK(bad.AppendRow({int64_t{9}, int64_t{0}, 1.0}).ok());
  EXPECT_FALSE(FactsToSparseMatrix(bad, "r", "c", "v", 5, 3).ok());
}

TEST(CastingTest, MatrixToTableRoundTrip) {
  matrix::DenseMatrix d(2, 2, {1, 2, 3, 4});
  auto t = MatrixToTable(matrix::Matrix(d), "f");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(t->schema()[1].name, "f1");
  auto back = TableToMatrix(*t, {"f0", "f1"});
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(matrix::Matrix(d)));
}

TEST(GroupByTest, AggregatesPerGroup) {
  Table t({{"g", ValueType::kString}, {"x", ValueType::kDouble}});
  HADAD_CHECK(t.AppendRow({std::string("a"), 1.0}).ok());
  HADAD_CHECK(t.AppendRow({std::string("b"), 10.0}).ok());
  HADAD_CHECK(t.AppendRow({std::string("a"), 3.0}).ok());
  HADAD_CHECK(t.AppendRow({std::string("b"), 2.0}).ok());
  auto sum = GroupByAggregate(t, "g", "x", AggKind::kSum);
  ASSERT_TRUE(sum.ok());
  ASSERT_EQ(sum->num_rows(), 2);
  EXPECT_EQ(sum->schema()[1].name, "sum_x");
  EXPECT_DOUBLE_EQ(std::get<double>(sum->row(0)[1]), 4.0);   // Group "a".
  EXPECT_DOUBLE_EQ(std::get<double>(sum->row(1)[1]), 12.0);  // Group "b".
  auto cnt = GroupByAggregate(t, "g", "x", AggKind::kCount);
  EXPECT_DOUBLE_EQ(std::get<double>(cnt->row(0)[1]), 2.0);
  auto mn = GroupByAggregate(t, "g", "x", AggKind::kMin);
  EXPECT_DOUBLE_EQ(std::get<double>(mn->row(1)[1]), 2.0);
  auto mx = GroupByAggregate(t, "g", "x", AggKind::kMax);
  EXPECT_DOUBLE_EQ(std::get<double>(mx->row(1)[1]), 10.0);
  auto mean = GroupByAggregate(t, "g", "x", AggKind::kMean);
  EXPECT_DOUBLE_EQ(std::get<double>(mean->row(0)[1]), 2.0);
}

TEST(GroupByTest, ErrorsOnNonNumericValueColumn) {
  Table t({{"g", ValueType::kInt}, {"s", ValueType::kString}});
  HADAD_CHECK(t.AppendRow({int64_t{1}, std::string("x")}).ok());
  EXPECT_FALSE(GroupByAggregate(t, "g", "s", AggKind::kSum).ok());
  EXPECT_FALSE(GroupByAggregate(t, "nope", "s", AggKind::kSum).ok());
}

TEST(PredicateTest, ToStringIsReadable) {
  auto p = Predicate::And(
      Predicate::Compare("filter_level", CompareOp::kLt, int64_t{4}),
      Predicate::Compare("country", CompareOp::kEq, std::string("US")));
  EXPECT_EQ(p->ToString(), "(filter_level < 4 AND country = US)");
}

}  // namespace
}  // namespace hadad::relational
