#include "la/encoder.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "la/catalog.h"
#include "la/parser.h"
#include "la/vrem.h"

namespace hadad::la {
namespace {

MetaCatalog TestCatalog() {
  MetaCatalog catalog;
  catalog["M"] = {.rows = 50, .cols = 10, .nnz = 500};
  catalog["N"] = {.rows = 10, .cols = 50, .nnz = 500};
  catalog["C"] = {.rows = 20, .cols = 20, .nnz = 400};
  catalog["y"] = {.rows = 50, .cols = 1, .nnz = 50};
  return catalog;
}

ExprPtr Parse(const std::string& s) {
  auto r = ParseExpression(s);
  HADAD_CHECK(r.ok());
  return r.value();
}

int CountAtoms(const EncodedExpr& enc, const std::string& pred) {
  int n = 0;
  for (const chase::Atom& a : enc.query.body) {
    if (a.predicate == pred) ++n;
  }
  return n;
}

TEST(EncoderTest, Example61TransposedProduct) {
  // The paper's Example 6.1: enc((MN)^T) = tr(R1,R2) ∧ multiM(M,N,R1) ∧
  // name(M,"M") ∧ name(N,"N").
  auto enc = EncodeExpression(*Parse("t(M %*% N)"), TestCatalog());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->query.body.size(), 4u);
  EXPECT_EQ(CountAtoms(*enc, vrem::kName), 2);
  EXPECT_EQ(CountAtoms(*enc, vrem::kMultiM), 1);
  EXPECT_EQ(CountAtoms(*enc, vrem::kTr), 1);
  EXPECT_EQ(enc->query.head.size(), 1u);
  // Head variable is the transpose's output.
  const chase::Atom* tr_atom = nullptr;
  for (const chase::Atom& a : enc->query.body) {
    if (a.predicate == vrem::kTr) tr_atom = &a;
  }
  ASSERT_NE(tr_atom, nullptr);
  EXPECT_EQ(tr_atom->args[1].text, enc->root_var);
}

TEST(EncoderTest, SharedSubexpressionsShareVariables) {
  // det(C)*det(C): the two det(C) occurrences must encode to one variable.
  auto enc = EncodeExpression(*Parse("det(C) * det(C)"), TestCatalog());
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(CountAtoms(*enc, vrem::kDet), 1);
  EXPECT_EQ(CountAtoms(*enc, vrem::kMultiS), 1);
}

TEST(EncoderTest, ScalarFlavoringPicksRelations) {
  MetaCatalog catalog = TestCatalog();
  // Scalar times matrix -> multiMS with the scalar first.
  auto e1 = EncodeExpression(*Parse("3 * M"), catalog);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(CountAtoms(*e1, vrem::kMultiMS), 1);
  EXPECT_EQ(CountAtoms(*e1, vrem::kSconst), 1);
  // Matrix times scalar (either operator spelling) also -> multiMS.
  auto e2 = EncodeExpression(*Parse("M * 3"), catalog);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(CountAtoms(*e2, vrem::kMultiMS), 1);
  // Scalar-scalar product -> multiS; scalar-scalar sum -> addS.
  auto e3 = EncodeExpression(*Parse("det(C) * trace(C)"), catalog);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(CountAtoms(*e3, vrem::kMultiS), 1);
  auto e4 = EncodeExpression(*Parse("det(C) + trace(C)"), catalog);
  ASSERT_TRUE(e4.ok());
  EXPECT_EQ(CountAtoms(*e4, vrem::kAddS), 1);
  // Matrix-matrix everything.
  auto e5 = EncodeExpression(*Parse("M %*% N"), catalog);
  ASSERT_TRUE(e5.ok());
  EXPECT_EQ(CountAtoms(*e5, vrem::kMultiM), 1);
}

TEST(EncoderTest, HadamardVsScalar) {
  MetaCatalog catalog = TestCatalog();
  catalog["M2"] = {.rows = 50, .cols = 10, .nnz = 250};
  auto e = EncodeExpression(*Parse("M * M2"), catalog);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(CountAtoms(*e, vrem::kMultiE), 1);
}

TEST(EncoderTest, MetadataRecordedPerVariable) {
  auto enc = EncodeExpression(*Parse("t(M) %*% y"), TestCatalog());
  ASSERT_TRUE(enc.ok());
  const MatrixMeta& root = enc->var_meta.at(enc->root_var);
  EXPECT_EQ(root.rows, 10);
  EXPECT_EQ(root.cols, 1);
}

TEST(EncoderTest, InvalidExpressionFailsEncoding) {
  EXPECT_FALSE(EncodeExpression(*Parse("M %*% M"), TestCatalog()).ok());
  EXPECT_FALSE(EncodeExpression(*Parse("Zz"), TestCatalog()).ok());
}

TEST(CatalogTest, FamiliesAreNonEmptyAndWellFormed) {
  for (const auto& family :
       {MmcCoreKeys(), MmcFunctionalKeys(), MmcLaProperties(),
        MmcDecompositions(), MmcStatAgg(), MorpheusRules()}) {
    EXPECT_FALSE(family.empty());
    for (const chase::Constraint& c : family) {
      EXPECT_FALSE(c.name.empty());
      EXPECT_FALSE(c.premise.empty()) << c.name;
      if (c.kind == chase::Constraint::Kind::kTgd) {
        EXPECT_FALSE(c.conclusion.empty()) << c.name;
      } else {
        EXPECT_FALSE(c.equalities.empty()) << c.name;
      }
    }
  }
}

TEST(CatalogTest, BuildMmcRespectsOptions) {
  CatalogOptions all;
  CatalogOptions none;
  none.stat_agg = false;
  none.decompositions = false;
  none.morpheus = false;
  EXPECT_GT(BuildMmc(all).size(), BuildMmc(none).size());
}

TEST(CatalogTest, EqualityRulesComeInBothDirections) {
  int forward = 0, backward = 0;
  for (const chase::Constraint& c : MmcLaProperties()) {
    if (c.name.ends_with(">")) ++forward;
    if (c.name.ends_with("<")) ++backward;
  }
  EXPECT_EQ(forward, backward);
  EXPECT_GT(forward, 10);
}

TEST(ViewEncodingTest, ProducesIoOiPair) {
  // The paper's Figure 3 view: V = t(N) + inv(t(M)).
  MetaCatalog catalog;
  catalog["M"] = {.rows = 20, .cols = 20, .nnz = 400};
  catalog["N"] = {.rows = 20, .cols = 20, .nnz = 400};
  auto constraints =
      EncodeViewConstraints("V", *Parse("t(N) + inv(t(M))"), catalog);
  ASSERT_TRUE(constraints.ok());
  ASSERT_EQ(constraints->size(), 2u);
  const chase::Constraint& io = (*constraints)[0];
  const chase::Constraint& oi = (*constraints)[1];
  // IO: body pattern → name(root, "V").
  EXPECT_EQ(io.conclusion.size(), 1u);
  EXPECT_EQ(io.conclusion[0].predicate, vrem::kName);
  EXPECT_EQ(io.conclusion[0].args[1].text, "V");
  // OI: name(root, "V") → body pattern.
  EXPECT_EQ(oi.premise.size(), 1u);
  EXPECT_EQ(oi.premise[0].predicate, vrem::kName);
  EXPECT_GE(oi.conclusion.size(), 4u);
}

TEST(ViewEncodingTest, InvalidViewDefinitionFails) {
  MetaCatalog catalog;
  catalog["M"] = {.rows = 20, .cols = 10, .nnz = 200};
  EXPECT_FALSE(EncodeViewConstraints("V", *Parse("inv(M)"), catalog).ok());
}

}  // namespace
}  // namespace hadad::la
