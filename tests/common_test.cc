#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace hadad {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  HADAD_ASSIGN_OR_RETURN(int h, Half(x));
  HADAD_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());   // 6/2 = 3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StringsTest, SplitTrimJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("%%MatrixMarket", "%%"));
  EXPECT_FALSE(StartsWith("x", "xyz"));
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Rng(7).Next(), c.Next());
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    EXPECT_LT(r.NextBelow(10), 10u);
    double u = r.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

}  // namespace
}  // namespace hadad
