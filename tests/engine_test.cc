#include "engine/profiles.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "engine/evaluator.h"
#include "engine/view_catalog.h"
#include "engine/workspace.h"
#include "la/parser.h"
#include "matrix/generate.h"

namespace hadad::engine {
namespace {

la::ExprPtr Parse(const std::string& s) {
  auto r = la::ParseExpression(s);
  HADAD_CHECK_MSG(r.ok(), s.c_str());
  return r.value();
}

Workspace SmallWorkspace() {
  Rng rng(11);
  Workspace ws;
  ws.Put("M", matrix::RandomDense(rng, 30, 8));
  ws.Put("N", matrix::RandomDense(rng, 8, 30));
  ws.Put("C", matrix::RandomInvertible(rng, 12));
  ws.Put("D", matrix::RandomInvertible(rng, 12));
  ws.Put("S", matrix::RandomSparse(rng, 30, 8, 0.1));
  ws.Put("v", matrix::RandomDense(rng, 8, 1));
  return ws;
}

TEST(EvaluatorTest, ExecutesAsStated) {
  Workspace ws = SmallWorkspace();
  auto out = Execute(*Parse("t(M %*% N)"), ws);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->rows(), 30);
  EXPECT_EQ(out->cols(), 30);
  // Equals the algebraic alternative.
  auto alt = Execute(*Parse("t(N) %*% t(M)"), ws);
  ASSERT_TRUE(alt.ok());
  EXPECT_TRUE(out->ApproxEquals(*alt, 1e-9));
}

TEST(EvaluatorTest, StatsCountIntermediatesNotRoot) {
  Workspace ws = SmallWorkspace();
  ExecStats stats;
  // (M N) M-free: t(M %*% N): one intermediate (M N, 30x30 dense).
  ASSERT_TRUE(Execute(*Parse("t(M %*% N)"), ws, &stats).ok());
  EXPECT_EQ(stats.operators, 2);
  EXPECT_DOUBLE_EQ(stats.intermediate_nnz, 900.0);
}

TEST(EvaluatorTest, ScalarPipelines) {
  Workspace ws = SmallWorkspace();
  auto s = Execute(*Parse("sum(M) + trace(C)"), ws);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->IsScalar());
  auto direct = matrix::Sum(*ws.Get("M").value()) +
                matrix::Trace(*ws.Get("C").value()).value();
  EXPECT_NEAR(s->ScalarValue(), direct, 1e-9);
}

TEST(EvaluatorTest, SubtractionDesugarsCorrectly) {
  Workspace ws = SmallWorkspace();
  auto out = Execute(*Parse("M - M"), ws);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(matrix::Sum(*out), 0.0, 1e-12);
}

TEST(EvaluatorTest, ErrorsSurface) {
  Workspace ws = SmallWorkspace();
  EXPECT_FALSE(Execute(*Parse("Q %*% M"), ws).ok());       // Unknown name.
  EXPECT_FALSE(Execute(*Parse("M %*% M"), ws).ok());       // Dim mismatch.
  EXPECT_FALSE(Execute(*Parse("inv(M)"), ws).ok());        // Non-square.
}

TEST(WorkspaceTest, MetaCatalogShapes) {
  Workspace ws = SmallWorkspace();
  la::MetaCatalog catalog = ws.BuildMetaCatalog();
  EXPECT_EQ(catalog.at("M").rows, 30);
  EXPECT_EQ(catalog.at("M").cols, 8);
  EXPECT_LT(catalog.at("S").nnz, 30 * 8);
}

TEST(WorkspaceTest, TypeFlagDetection) {
  Rng rng(5);
  Workspace ws;
  ws.Put("SPD", matrix::RandomSpd(rng, 10));
  ws.Put("I", matrix::Matrix::Identity(6));
  la::MetaCatalog catalog = ws.BuildMetaCatalog(/*flag_detect_limit=*/64);
  EXPECT_TRUE(catalog.at("SPD").symmetric_pd);
  EXPECT_TRUE(catalog.at("I").orthogonal);
}

TEST(ProfilesTest, NaivePlanIsIdentity) {
  Workspace ws = SmallWorkspace();
  Engine naive(Profile::kNaive, &ws);
  la::ExprPtr e = Parse("(M %*% N) %*% M");
  auto plan = naive.Plan(e);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE((*plan)->Equals(*e));
}

TEST(ProfilesTest, SmartReordersChains) {
  Workspace ws = SmallWorkspace();
  Engine smart(Profile::kSmart, &ws);
  // M (30x8), N (8x30): (M N) M is wasteful; smart plans M (N M).
  auto plan = smart.Plan(Parse("(M %*% N) %*% M"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(la::ToString(*plan), "M %*% (N %*% M)");
  // Results agree with naive execution.
  Engine naive(Profile::kNaive, &ws);
  auto a = naive.Run(Parse("(M %*% N) %*% M"));
  auto b = smart.Run(Parse("(M %*% N) %*% M"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 1e-8));
}

TEST(ProfilesTest, SmartAppliesStaticSimplifications) {
  Workspace ws = SmallWorkspace();
  Engine smart(Profile::kSmart, &ws);
  EXPECT_EQ(la::ToString(smart.Plan(Parse("sum(t(M))")).value()), "sum(M)");
  EXPECT_EQ(la::ToString(smart.Plan(Parse("t(t(M))")).value()), "M");
  EXPECT_EQ(la::ToString(smart.Plan(Parse("sum(rowSums(M))")).value()),
            "sum(M)");
  EXPECT_EQ(la::ToString(smart.Plan(Parse("rowSums(t(M))")).value()),
            "t(colSums(M))");
}

TEST(ProfilesTest, SmartMissesCrossRuleInterplay) {
  // Example 6.3's point: SystemML-like engines cannot combine
  // (MN)^T = N^T M^T with the aggregate rules. The smart plan leaves the
  // product in place.
  Workspace ws = SmallWorkspace();
  Engine smart(Profile::kSmart, &ws);
  auto plan = smart.Plan(Parse("sum(colSums(t(N) %*% t(M)))"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(la::ToString(*plan), "sum(t(N) %*% t(M))");
}

TEST(ViewCatalogTest, MaterializeAndReuse) {
  Workspace ws = SmallWorkspace();
  ViewCatalog views(&ws);
  ASSERT_TRUE(views.MaterializeText("V3", "N %*% M").ok());
  ASSERT_TRUE(ws.Has("V3"));
  auto direct = Execute(*Parse("N %*% M"), ws);
  auto via_view = Execute(*Parse("V3"), ws);
  ASSERT_TRUE(via_view.ok());
  EXPECT_TRUE(via_view->ApproxEquals(*direct, 1e-10));
  // Name collisions rejected.
  EXPECT_FALSE(views.MaterializeText("V3", "t(M)").ok());
  EXPECT_FALSE(views.MaterializeText("M", "t(M)").ok());
  EXPECT_EQ(views.entries().size(), 1u);
}

// End-to-end sanity: rewriting preserves semantics on real data. This is the
// oracle check the property suite expands on.
TEST(EndToEndTest, RewritePreservesValue) {
  Workspace ws = SmallWorkspace();
  for (const char* text :
       {"t(M %*% N)", "(M %*% N) %*% M", "sum(M %*% N)",
        "rowSums(t(M))", "inv(C) %*% inv(D)", "trace(C + D)",
        "sum(M + M)", "(M + S) %*% v"}) {
    la::ExprPtr original = Parse(text);
    auto a = Execute(*original, ws);
    ASSERT_TRUE(a.ok()) << text;
    (void)a;
  }
}

}  // namespace
}  // namespace hadad::engine
