#include "matrix/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/generate.h"

namespace hadad::matrix {
namespace {

DenseMatrix Make(int64_t rows, int64_t cols, std::vector<double> vals) {
  return DenseMatrix(rows, cols, std::move(vals));
}

TEST(DenseMatrixTest, BasicAccessors) {
  DenseMatrix m = Make(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 6);
  EXPECT_EQ(m.CountNonZeros(), 6);
}

TEST(DenseMatrixTest, IdentityAndZero) {
  DenseMatrix id = DenseMatrix::Identity(3);
  EXPECT_DOUBLE_EQ(id.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id.At(0, 1), 0.0);
  EXPECT_EQ(DenseMatrix::Zero(2, 2).CountNonZeros(), 0);
}

TEST(SparseMatrixTest, FromTripletsSortsAndMergesDuplicates) {
  SparseMatrix s = SparseMatrix::FromTriplets(
      3, 3, {{2, 1, 5.0}, {0, 0, 1.0}, {2, 1, 2.0}, {1, 2, -1.0}});
  EXPECT_EQ(s.nnz(), 3);
  EXPECT_DOUBLE_EQ(s.At(2, 1), 7.0);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.At(1, 2), -1.0);
  EXPECT_DOUBLE_EQ(s.At(1, 1), 0.0);
}

TEST(SparseMatrixTest, DuplicatesCancellingToZeroArePruned) {
  SparseMatrix s =
      SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}, {0, 0, -1.0}});
  EXPECT_EQ(s.nnz(), 0);
}

TEST(SparseMatrixTest, DenseRoundTrip) {
  DenseMatrix d = Make(2, 3, {0, 2, 0, 3, 0, 4});
  SparseMatrix s = SparseMatrix::FromDense(d);
  EXPECT_EQ(s.nnz(), 3);
  EXPECT_TRUE(s.ToDense().ApproxEquals(d));
}

TEST(SparseMatrixTest, Transpose) {
  SparseMatrix s =
      SparseMatrix::FromTriplets(2, 3, {{0, 2, 1.0}, {1, 0, 2.0}});
  SparseMatrix t = s.Transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.At(0, 1), 2.0);
}

TEST(SparseMatrixTest, NnzHistograms) {
  SparseMatrix s = SparseMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {2, 1, 1.0}});
  EXPECT_EQ(s.RowNnzCounts(), (std::vector<int64_t>{2, 0, 1}));
  EXPECT_EQ(s.ColNnzCounts(), (std::vector<int64_t>{1, 2, 0}));
}

TEST(MultiplyTest, DenseDense) {
  Matrix a(Make(2, 3, {1, 2, 3, 4, 5, 6}));
  Matrix b(Make(3, 2, {7, 8, 9, 10, 11, 12}));
  auto r = Multiply(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->At(0, 0), 58);
  EXPECT_DOUBLE_EQ(r->At(0, 1), 64);
  EXPECT_DOUBLE_EQ(r->At(1, 0), 139);
  EXPECT_DOUBLE_EQ(r->At(1, 1), 154);
}

TEST(MultiplyTest, DimensionMismatchIsAnError) {
  Matrix a(Make(2, 3, {1, 2, 3, 4, 5, 6}));
  Matrix b(Make(2, 2, {1, 0, 0, 1}));
  auto r = Multiply(a, b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDimensionMismatch);
}

TEST(MultiplyTest, ScalarOperandBroadcasts) {
  Matrix a(Make(2, 2, {1, 2, 3, 4}));
  auto r = Multiply(Matrix::Scalar(2.0), a);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->At(1, 1), 8.0);
  auto r2 = Multiply(a, Matrix::Scalar(3.0));
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->At(0, 0), 3.0);
}

TEST(MultiplyTest, SparseDenseAgreesWithDense) {
  Rng rng(7);
  Matrix sp = RandomSparse(rng, 20, 15, 0.2);
  Matrix dn = RandomDense(rng, 15, 8);
  auto fast = Multiply(sp, dn);
  auto ref = Multiply(Matrix(sp.ToDense()), dn);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(fast->ApproxEquals(*ref));
  EXPECT_TRUE(fast->is_dense());
}

TEST(MultiplyTest, DenseSparseAgreesWithDense) {
  Rng rng(8);
  Matrix dn = RandomDense(rng, 10, 12);
  Matrix sp = RandomSparse(rng, 12, 9, 0.3);
  auto fast = Multiply(dn, sp);
  auto ref = Multiply(dn, Matrix(sp.ToDense()));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(fast->ApproxEquals(*ref));
}

TEST(MultiplyTest, SparseSparseAgreesWithDenseAndStaysSparse) {
  Rng rng(9);
  Matrix a = RandomSparse(rng, 18, 14, 0.15);
  Matrix b = RandomSparse(rng, 14, 11, 0.15);
  auto fast = Multiply(a, b);
  auto ref = Multiply(Matrix(a.ToDense()), Matrix(b.ToDense()));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(ref.ok());
  EXPECT_TRUE(fast->ApproxEquals(*ref));
  EXPECT_TRUE(fast->is_sparse());
}

TEST(AddTest, DenseAndSparseCombinations) {
  Rng rng(10);
  Matrix sp1 = RandomSparse(rng, 6, 6, 0.3);
  Matrix sp2 = RandomSparse(rng, 6, 6, 0.3);
  Matrix dn = RandomDense(rng, 6, 6);
  auto ss = Add(sp1, sp2);
  ASSERT_TRUE(ss.ok());
  EXPECT_TRUE(ss->is_sparse());
  auto ref = Add(Matrix(sp1.ToDense()), Matrix(sp2.ToDense()));
  EXPECT_TRUE(ss->ApproxEquals(*ref));
  auto sd = Add(sp1, dn);
  ASSERT_TRUE(sd.ok());
  EXPECT_TRUE(sd->is_dense());
}

TEST(AddTest, SubtractMatchesAddOfNegation) {
  Matrix a(Make(2, 2, {5, 6, 7, 8}));
  Matrix b(Make(2, 2, {1, 2, 3, 4}));
  auto diff = Subtract(a, b);
  ASSERT_TRUE(diff.ok());
  auto alt = Add(a, ScalarMultiply(-1.0, b));
  EXPECT_TRUE(diff->ApproxEquals(*alt));
}

TEST(AddTest, MismatchedShapesError) {
  Matrix a(Make(2, 2, {1, 2, 3, 4}));
  Matrix b(Make(2, 3, {1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(Add(a, b).ok());
}

TEST(ElementwiseTest, HadamardSparseShortcut) {
  Rng rng(11);
  Matrix sp = RandomSparse(rng, 8, 8, 0.2);
  Matrix dn = RandomDense(rng, 8, 8);
  auto h = ElementwiseMultiply(sp, dn);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(h->is_sparse());
  auto ref = ElementwiseMultiply(Matrix(sp.ToDense()), dn);
  EXPECT_TRUE(h->ApproxEquals(*ref));
}

TEST(ElementwiseTest, DivideByZeroIsAnError) {
  Matrix a(Make(1, 2, {1, 2}));
  Matrix b(Make(1, 2, {1, 0}));
  auto r = ElementwiseDivide(a, b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ElementwiseTest, DivideComputesRatios) {
  Matrix a(Make(2, 2, {2, 4, 6, 8}));
  Matrix b(Make(2, 2, {2, 2, 3, 4}));
  auto r = ElementwiseDivide(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->ApproxEquals(Matrix(Make(2, 2, {1, 2, 2, 2}))));
}

TEST(TransposeTest, DoubleTransposeIsIdentityOnValue) {
  Rng rng(12);
  Matrix a = RandomDense(rng, 5, 7);
  EXPECT_TRUE(Transpose(Transpose(a)).ApproxEquals(a));
  Matrix s = RandomSparse(rng, 5, 7, 0.4);
  EXPECT_TRUE(Transpose(Transpose(s)).ApproxEquals(s));
}

TEST(TransposeTest, MultiplyTransposeLaw) {
  // (MN)^T = N^T M^T — the LA property HADAD encodes as a TGD.
  Rng rng(13);
  Matrix m = RandomDense(rng, 4, 6);
  Matrix n = RandomDense(rng, 6, 5);
  auto lhs = Transpose(Multiply(m, n).value());
  auto rhs = Multiply(Transpose(n), Transpose(m));
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(lhs.ApproxEquals(*rhs));
}

TEST(InverseTest, InverseTimesSelfIsIdentity) {
  Rng rng(14);
  Matrix a = RandomInvertible(rng, 8);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  auto prod = Multiply(a, *inv);
  ASSERT_TRUE(prod.ok());
  EXPECT_TRUE(prod->ApproxEquals(Matrix::Identity(8), 1e-8));
}

TEST(InverseTest, SingularMatrixIsAnError) {
  Matrix a(Make(2, 2, {1, 2, 2, 4}));
  auto inv = Inverse(a);
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.status().code(), StatusCode::kNotInvertible);
}

TEST(InverseTest, NonSquareIsAnError) {
  Matrix a(Make(2, 3, {1, 2, 3, 4, 5, 6}));
  EXPECT_FALSE(Inverse(a).ok());
}

TEST(InverseTest, ProductInverseLaw) {
  // (CD)^{-1} = D^{-1} C^{-1} — the property behind pipeline P1.3.
  Rng rng(15);
  Matrix c = RandomInvertible(rng, 6);
  Matrix d = RandomInvertible(rng, 6);
  auto lhs = Inverse(Multiply(c, d).value());
  auto rhs = Multiply(Inverse(d).value(), Inverse(c).value());
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  EXPECT_TRUE(lhs->ApproxEquals(*rhs, 1e-7));
}

TEST(DeterminantTest, KnownValuesAndProductLaw) {
  Matrix a(Make(2, 2, {3, 1, 4, 2}));
  auto det = Determinant(a);
  ASSERT_TRUE(det.ok());
  EXPECT_NEAR(*det, 2.0, 1e-12);
  Rng rng(16);
  Matrix c = RandomInvertible(rng, 5);
  Matrix d = RandomInvertible(rng, 5);
  double lhs = Determinant(Multiply(c, d).value()).value();
  double rhs = Determinant(c).value() * Determinant(d).value();
  EXPECT_NEAR(lhs, rhs, 1e-6 * std::fabs(rhs));
}

TEST(TraceTest, TraceLaws) {
  Rng rng(17);
  Matrix c = RandomDense(rng, 6, 6);
  Matrix d = RandomDense(rng, 6, 6);
  // trace(C + D) = trace(C) + trace(D).
  EXPECT_NEAR(Trace(Add(c, d).value()).value(),
              Trace(c).value() + Trace(d).value(), 1e-9);
  // trace(CD) = trace(DC).
  EXPECT_NEAR(Trace(Multiply(c, d).value()).value(),
              Trace(Multiply(d, c).value()).value(), 1e-8);
  EXPECT_FALSE(Trace(Matrix(Make(2, 3, {1, 2, 3, 4, 5, 6}))).ok());
}

TEST(DiagTest, VectorToDiagonalAndBack) {
  Matrix v(Make(3, 1, {1, 2, 3}));
  auto d = Diag(v);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rows(), 3);
  EXPECT_EQ(d->cols(), 3);
  EXPECT_DOUBLE_EQ(d->At(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d->At(0, 1), 0.0);
  auto back = Diag(*d);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ApproxEquals(v));
}

TEST(MatrixExpTest, ExpOfZeroIsIdentity) {
  auto e = MatrixExp(Matrix::Zero(4, 4));
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->ApproxEquals(Matrix::Identity(4)));
}

TEST(MatrixExpTest, DiagonalCase) {
  Matrix a(Make(2, 2, {1, 0, 0, 2}));
  auto e = MatrixExp(a);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(e->At(0, 0), std::exp(1.0), 1e-10);
  EXPECT_NEAR(e->At(1, 1), std::exp(2.0), 1e-9);
  EXPECT_NEAR(e->At(0, 1), 0.0, 1e-12);
}

TEST(MatrixExpTest, TransposeLaw) {
  // exp(M^T) = exp(M)^T.
  Rng rng(18);
  Matrix m = RandomDense(rng, 5, 5, -0.5, 0.5);
  auto lhs = MatrixExp(Transpose(m));
  auto rhs = Transpose(MatrixExp(m).value());
  ASSERT_TRUE(lhs.ok());
  EXPECT_TRUE(lhs->ApproxEquals(rhs, 1e-9));
}

TEST(AdjugateTest, FundamentalIdentity) {
  // A * adj(A) = det(A) * I.
  Rng rng(19);
  Matrix a = RandomInvertible(rng, 5);
  auto adj = Adjugate(a);
  ASSERT_TRUE(adj.ok());
  auto prod = Multiply(a, *adj);
  double det = Determinant(a).value();
  EXPECT_TRUE(prod->ApproxEquals(ScalarMultiply(det, Matrix::Identity(5)),
                                 1e-6));
}

TEST(AdjugateTest, SingularSmallMatrixViaCofactors) {
  Matrix a(Make(2, 2, {1, 2, 2, 4}));  // Singular.
  auto adj = Adjugate(a);
  ASSERT_TRUE(adj.ok());
  EXPECT_TRUE(adj->ApproxEquals(Matrix(Make(2, 2, {4, -2, -2, 1}))));
}

TEST(DirectSumTest, BlockStructure) {
  Matrix a(Make(1, 2, {1, 2}));
  Matrix b(Make(2, 1, {3, 4}));
  Matrix s = DirectSum(a, b);
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.cols(), 3);
  EXPECT_DOUBLE_EQ(s.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(s.At(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(s.At(0, 2), 0.0);
}

TEST(KroneckerTest, SmallKnownCase) {
  Matrix a(Make(2, 2, {1, 2, 3, 4}));
  Matrix b(Make(2, 2, {0, 1, 1, 0}));
  auto k = KroneckerProduct(a, b);
  ASSERT_TRUE(k.ok());
  EXPECT_EQ(k->rows(), 4);
  EXPECT_DOUBLE_EQ(k->At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(k->At(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(k->At(3, 0), 3.0);
}

TEST(KroneckerTest, SparseAgreesWithDense) {
  Rng rng(20);
  Matrix a = RandomSparse(rng, 4, 3, 0.4);
  Matrix b = RandomSparse(rng, 3, 4, 0.4);
  auto sp = KroneckerProduct(a, b);
  auto dn = KroneckerProduct(Matrix(a.ToDense()), Matrix(b.ToDense()));
  ASSERT_TRUE(sp.ok());
  EXPECT_TRUE(sp->ApproxEquals(*dn));
}

TEST(AggregationTest, SumsAndPartialSums) {
  Matrix m(Make(2, 3, {1, 2, 3, 4, 5, 6}));
  EXPECT_DOUBLE_EQ(Sum(m), 21.0);
  Matrix rs = RowSums(m);
  EXPECT_EQ(rs.rows(), 2);
  EXPECT_EQ(rs.cols(), 1);
  EXPECT_DOUBLE_EQ(rs.At(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(rs.At(1, 0), 15.0);
  Matrix cs = ColSums(m);
  EXPECT_EQ(cs.rows(), 1);
  EXPECT_DOUBLE_EQ(cs.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(cs.At(0, 2), 9.0);
}

TEST(AggregationTest, SparseAggregationsCountImplicitZeros) {
  SparseMatrix s = SparseMatrix::FromTriplets(2, 2, {{0, 0, 5.0}});
  Matrix m(s);
  EXPECT_DOUBLE_EQ(Sum(m), 5.0);
  EXPECT_DOUBLE_EQ(Min(m), 0.0);  // Implicit zeros count.
  EXPECT_DOUBLE_EQ(Max(m), 5.0);
  EXPECT_DOUBLE_EQ(Mean(m), 1.25);
}

TEST(AggregationTest, SystemMlRuleIdentities) {
  // The MMC_StatAgg rules must be true of the kernels themselves:
  // sum(MN) = sum(colSums(M)^T (*) rowSums(N)).
  Rng rng(21);
  Matrix m = RandomDense(rng, 7, 5);
  Matrix n = RandomDense(rng, 5, 6);
  double lhs = Sum(Multiply(m, n).value());
  Matrix cs_t = Transpose(ColSums(m));
  Matrix rs = RowSums(n);
  double rhs = Sum(ElementwiseMultiply(cs_t, rs).value());
  EXPECT_NEAR(lhs, rhs, 1e-8);
  // sum(M^T) = sum(M), sum(rowSums(M)) = sum(M).
  EXPECT_NEAR(Sum(Transpose(m)), Sum(m), 1e-10);
  EXPECT_NEAR(Sum(RowSums(m)), Sum(m), 1e-10);
  EXPECT_NEAR(Sum(ColSums(m)), Sum(m), 1e-10);
  // trace(MN) = sum(M (*) N^T).
  Matrix sq1 = RandomDense(rng, 6, 6);
  Matrix sq2 = RandomDense(rng, 6, 6);
  EXPECT_NEAR(Trace(Multiply(sq1, sq2).value()).value(),
              Sum(ElementwiseMultiply(sq1, Transpose(sq2)).value()), 1e-8);
}

TEST(AggregationTest, StatFamilies) {
  Matrix m(Make(2, 2, {1, 3, 5, 7}));
  EXPECT_DOUBLE_EQ(Min(m), 1.0);
  EXPECT_DOUBLE_EQ(Max(m), 7.0);
  EXPECT_DOUBLE_EQ(Mean(m), 4.0);
  EXPECT_NEAR(Var(m), 20.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(RowMins(m).At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(RowMaxs(m).At(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(RowMeans(m).At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ColMins(m).At(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(ColMaxs(m).At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(ColMeans(m).At(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(RowVars(m).At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ColVars(m).At(0, 0), 8.0);
}

TEST(ReverseTest, ReversesRowOrder) {
  Matrix m(Make(3, 1, {1, 2, 3}));
  Matrix r = Reverse(m);
  EXPECT_DOUBLE_EQ(r.At(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(r.At(2, 0), 1.0);
  // sum(rev(M)) = sum(M) — MMC_StatAgg rule.
  EXPECT_DOUBLE_EQ(Sum(r), Sum(m));
}

TEST(CbindTest, Concatenates) {
  Matrix a(Make(2, 1, {1, 2}));
  Matrix b(Make(2, 2, {3, 4, 5, 6}));
  auto c = Cbind(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->cols(), 3);
  EXPECT_DOUBLE_EQ(c->At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c->At(0, 2), 4.0);
  EXPECT_FALSE(Cbind(a, Matrix(Make(3, 1, {1, 2, 3}))).ok());
}

TEST(ScalarTest, ScalarValueAndLifting) {
  Matrix s = Matrix::Scalar(2.5);
  EXPECT_TRUE(s.IsScalar());
  EXPECT_DOUBLE_EQ(s.ScalarValue(), 2.5);
}

// Property sweep: multiplication distributes over addition for random shapes.
class DistributivityTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributivityTest, MulDistributesOverAdd) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  int64_t n = 2 + static_cast<int64_t>(rng.NextBelow(6));
  int64_t k = 2 + static_cast<int64_t>(rng.NextBelow(6));
  int64_t m = 2 + static_cast<int64_t>(rng.NextBelow(6));
  Matrix a = RandomDense(rng, n, k);
  Matrix b = RandomDense(rng, k, m);
  Matrix c = RandomDense(rng, k, m);
  auto lhs = Multiply(a, Add(b, c).value());
  auto rhs = Add(Multiply(a, b).value(), Multiply(a, c).value());
  ASSERT_TRUE(lhs.ok());
  EXPECT_TRUE(lhs->ApproxEquals(*rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributivityTest,
                         ::testing::Range(1, 13));

// Property sweep: associativity of multiplication for random shapes.
class AssociativityTest : public ::testing::TestWithParam<int> {};

TEST_P(AssociativityTest, MulIsAssociative) {
  Rng rng(static_cast<uint64_t>(GetParam() * 31 + 5));
  int64_t d1 = 2 + static_cast<int64_t>(rng.NextBelow(5));
  int64_t d2 = 2 + static_cast<int64_t>(rng.NextBelow(5));
  int64_t d3 = 2 + static_cast<int64_t>(rng.NextBelow(5));
  int64_t d4 = 2 + static_cast<int64_t>(rng.NextBelow(5));
  Matrix a = RandomDense(rng, d1, d2);
  Matrix b = RandomDense(rng, d2, d3);
  Matrix c = RandomDense(rng, d3, d4);
  auto lhs = Multiply(Multiply(a, b).value(), c);
  auto rhs = Multiply(a, Multiply(b, c).value());
  ASSERT_TRUE(lhs.ok());
  EXPECT_TRUE(lhs->ApproxEquals(*rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssociativityTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace hadad::matrix
