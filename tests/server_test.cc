// Tests for the concurrent serving layer (src/server/): shared-substrate
// multi-client execution (bit-identical to sequential), admission control,
// per-request deadlines and cancellation, per-client fairness, and the
// embeddable C API. Part of the TSan suite (scripts/ci.sh tsan) — the
// concurrency assertions here are what that job is for.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "matrix/generate.h"
#include "matrix/matrix.h"
#include "server/hadad_c.h"
#include "server/server.h"

namespace hadad::server {
namespace {

using std::chrono::milliseconds;

// Exact elementwise equality — the serving contract is bit-identity, not
// tolerance: concurrency must change scheduling, never numerics.
void ExpectBitIdentical(const matrix::Matrix& a, const matrix::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const matrix::DenseMatrix da = a.ToDense();
  const matrix::DenseMatrix db = b.ToDense();
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(da.At(i, j), db.At(i, j)) << "at (" << i << "," << j << ")";
    }
  }
}

// M (96x80), N (80x64) back the fast queries; L (400x400) backs kHeavy,
// a right-deep GEMM chain (no repeated subtree, so CSE cannot collapse it)
// that runs long enough that "the dispatcher is busy" is a stable state to
// test admission/fairness/deadlines against, not a race to win.
std::shared_ptr<api::Session> MakeSession(int threads) {
  Rng rng(7);
  auto session = api::SessionBuilder()
                     .Put("M", matrix::RandomDense(rng, 96, 80, -1.0, 1.0))
                     .Put("N", matrix::RandomDense(rng, 80, 64, -1.0, 1.0))
                     .Put("L", matrix::RandomDense(rng, 400, 400, -0.1, 0.1))
                     .Threads(threads)
                     .Build();
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *session;
}

const char* kHeavy = "L %*% (L %*% (L %*% (L %*% (L %*% (L %*% L)))))";

const char* kQueries[] = {
    "colSums(M %*% N)",
    "t(N) %*% t(M)",
    "rowSums(M %*% N)",
    "sum(M %*% N)",
    "(M %*% N) %*% t(N)",
};

// Spin until `predicate` holds (bounded); serving-state transitions (a
// dispatcher popping a request) have no completion signal to wait on.
template <typename Pred>
bool SpinUntil(Pred predicate, milliseconds budget = milliseconds(30000)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

TEST(ServerTest, ConcurrentClientsBitIdenticalToSequential) {
  // Reference: the same queries on a single-threaded, serverless session.
  std::shared_ptr<api::Session> reference = MakeSession(1);
  std::vector<matrix::Matrix> expected;
  for (const char* q : kQueries) {
    auto r = reference->Run(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  auto server = Server::Create(MakeSession(4)).value();
  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  std::vector<std::vector<RequestHandle>> handles(kClients);
  std::vector<std::thread> submitters;
  for (int c = 0; c < kClients; ++c) {
    submitters.emplace_back([&, c] {
      auto client = server->Connect("client" + std::to_string(c));
      for (int r = 0; r < kRounds; ++r) {
        auto submitted = client->Submit(kQueries[(c + r) % 5]);
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        handles[c].push_back(std::move(*submitted));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(handles[c].size(), static_cast<size_t>(kRounds));
    for (int r = 0; r < kRounds; ++r) {
      const Result<matrix::Matrix>& got = handles[c][r]->result();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(expected[(c + r) % 5], *got);
    }
  }
  // One shared plan cache served all clients: 5 distinct canonical forms,
  // each derived exactly once — concurrent first-misses coalesce onto the
  // in-flight build instead of duplicating RW_find, so the counters are
  // exact no matter how the clients interleave.
  EXPECT_EQ(server->session().plan_cache_size(), 5);
  const api::SessionStats stats = server->session().stats();
  EXPECT_EQ(stats.prepares, 5);
  EXPECT_EQ(stats.cache_misses, 5);
  EXPECT_EQ(stats.cache_hits, stats.runs - 5);
  server->Shutdown();
}

TEST(ServerTest, ColdMissesOnOneExpressionCoalesce) {
  // All clients race the same never-seen expression: exactly one RW_find
  // runs (the leader's); followers either coalesce onto the in-flight
  // build or — if they arrive after it published — take the plain hit
  // path. Every outcome of the race yields these exact counters.
  auto server = Server::Create(MakeSession(4)).value();
  constexpr int kClients = 4;
  std::vector<std::thread> racers;
  std::vector<Result<matrix::Matrix>> results(
      kClients, Result<matrix::Matrix>(Status::Internal("unset")));
  for (int c = 0; c < kClients; ++c) {
    racers.emplace_back([&, c] {
      auto client = server->Connect("racer" + std::to_string(c));
      results[static_cast<size_t>(c)] = client->Run(kHeavy);
    });
  }
  for (std::thread& t : racers) t.join();
  for (const auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (int c = 1; c < kClients; ++c) {
    ExpectBitIdentical(*results[0], *results[static_cast<size_t>(c)]);
  }
  const api::SessionStats stats = server->session().stats();
  EXPECT_EQ(stats.prepares, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.cache_hits, kClients - 1);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.runs);
  server->Shutdown();
}

TEST(ServerTest, AdmissionControlRejectsWhenFull) {
  ServerOptions options;
  options.max_in_flight = 1;
  options.max_queue = 2;
  auto server = Server::Create(MakeSession(1), options).value();
  auto client = server->Connect("greedy");

  // Occupy the single dispatcher with the heavy chain, then fill the
  // queue exactly. The dispatcher stays busy for the whole window.
  auto blocker = client->Submit(kHeavy).value();
  ASSERT_TRUE(SpinUntil([&] { return server->in_flight() == 1; }));
  auto q1 = client->Submit(kQueries[0]).value();
  auto q2 = client->Submit(kQueries[1]).value();
  ASSERT_EQ(server->queue_depth(), 2);

  // Queue full + dispatcher busy: admission fails with the typed code.
  auto overflow = client->Submit(kQueries[2]);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOverloaded);
  const obs::MetricsRegistry& metrics = server->session().metrics();
  EXPECT_GE(metrics.FindCounter("hadad_server_rejected_total")->Value(), 1);

  // Everything accepted still completes.
  EXPECT_TRUE(blocker->result().ok());
  EXPECT_TRUE(q1->result().ok());
  EXPECT_TRUE(q2->result().ok());
  server->Shutdown();
}

TEST(ServerTest, DeadlineFiresMidDagAndPoolDrainsClean) {
  auto server = Server::Create(MakeSession(2)).value();
  auto client = server->Connect("hurried");

  // Warm the plan so the deadline cannot burn on optimization alone, then
  // submit with a budget far below the chain's execution time: the token
  // passes the pre-run checks and trips inside the scheduler's per-node
  // cancellation point.
  ASSERT_TRUE(client->Run(kHeavy).ok());
  RequestOptions hurried;
  hurried.deadline = milliseconds(25);
  const Result<matrix::Matrix>& out = client->Run(kHeavy, hurried);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(server->session()
                .metrics()
                .FindCounter("hadad_server_deadline_exceeded_total")
                ->Value(),
            1);

  // The abort drained cleanly: the pool and the shared substrate keep
  // serving (including the very plan that was aborted).
  for (const char* q : kQueries) {
    EXPECT_TRUE(client->Run(q).ok()) << q;
  }
  EXPECT_TRUE(client->Run(kHeavy).ok());
  server->Shutdown();
}

TEST(ServerTest, CancellationLeavesSharedStateConsistent) {
  Rng rng(3);
  matrix::Matrix base = matrix::RandomDense(rng, 64, 64, -1.0, 1.0);
  auto built = api::SessionBuilder()
                   .Put("M", base)
                   .AddView("V", "t(M) %*% M")
                   .Threads(2)
                   .Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto server = Server::Create(*built).value();
  auto client = server->Connect("flaky");

  // Cancel a batch of requests at various stages of their lifecycle.
  for (int i = 0; i < 8; ++i) {
    auto submitted = client->Submit("V %*% (t(M) %*% M)");
    ASSERT_TRUE(submitted.ok());
    (*submitted)->Cancel();
    const Result<matrix::Matrix>& out = (*submitted)->result();
    // Raced with execution: either withdrawn in time (typed error) or it
    // completed before the flag was seen — both are valid outcomes, a
    // half-executed state is not.
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
    }
  }

  // The shared plan cache and view store still serve correct results.
  auto expected_session = api::SessionBuilder()
                              .Put("M", std::move(base))
                              .AddView("V", "t(M) %*% M")
                              .Threads(1)
                              .Build();
  ASSERT_TRUE(expected_session.ok());
  auto want = (*expected_session)->Run("V %*% (t(M) %*% M)");
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  auto got = client->Run("V %*% (t(M) %*% M)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectBitIdentical(*want, *got);
  server->Shutdown();
}

TEST(ServerTest, PerClientFairnessUnderSingleDispatcher) {
  ServerOptions options;
  options.max_in_flight = 1;
  options.max_queue = 16;
  auto server = Server::Create(MakeSession(1), options).value();
  auto chatty = server->Connect("chatty");
  auto quiet = server->Connect("quiet");

  // Occupy the dispatcher, then queue chatty's heavy backlog before
  // quiet's one fast request.
  auto blocker = chatty->Submit(kHeavy).value();
  ASSERT_TRUE(SpinUntil([&] { return server->in_flight() == 1; }));
  auto a1 = chatty->Submit(kHeavy).value();
  auto a2 = chatty->Submit(kHeavy).value();
  auto a3 = chatty->Submit(kHeavy).value();
  auto b1 = quiet->Submit(kQueries[0]).value();

  // Round-robin across client lanes dispatches b1 after at most one of
  // chatty's queued requests (strict FIFO would run it dead last). When
  // b1 completes, a2 has at best just started its long chain — so it
  // cannot be done, and a3 has not even dispatched.
  b1->Wait();
  EXPECT_FALSE(a2->done());
  EXPECT_FALSE(a3->done());
  EXPECT_TRUE(b1->result().ok());
  EXPECT_TRUE(a1->result().ok());
  EXPECT_TRUE(a3->result().ok());
  server->Shutdown();
}

TEST(ServerTest, ShutdownFailsQueuedRequestsTyped) {
  ServerOptions options;
  options.max_in_flight = 1;
  options.max_queue = 8;
  auto server = Server::Create(MakeSession(1), options).value();
  auto client = server->Connect("late");
  auto blocker = client->Submit(kHeavy).value();
  ASSERT_TRUE(SpinUntil([&] { return server->in_flight() == 1; }));
  auto queued = client->Submit(kQueries[0]).value();
  server->Shutdown();
  // In-flight finished; queued failed typed; new submits are refused.
  EXPECT_TRUE(blocker->result().ok());
  ASSERT_TRUE(queued->done());
  EXPECT_EQ(queued->result().status().code(), StatusCode::kCancelled);
  auto refused = client->Submit(kQueries[1]);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCancelled);
}

TEST(ServerTest, QueueWaitHistogramAndRequestCountersPopulate) {
  auto server = Server::Create(MakeSession(2)).value();
  auto client = server->Connect("observed");
  ASSERT_TRUE(client->Run(kQueries[0]).ok());
  const obs::MetricsRegistry& metrics = server->session().metrics();
  const obs::Histogram* wait =
      metrics.FindHistogram("hadad_server_queue_wait_seconds");
  ASSERT_NE(wait, nullptr);
  EXPECT_GE(wait->Count(), 1);
  EXPECT_GE(metrics.FindCounter("hadad_server_requests_total")->Value(), 1);
  EXPECT_EQ(server->queue_depth(), 0);
  server->Shutdown();
}

TEST(ServerTest, MixedReadWriteWorkloadStaysSnapshotConsistent) {
  // The writer walks M through kVersions values via the server's shared
  // substrate while clients keep querying. MVCC means no Submit is ever
  // rejected or stalled by the writer, and every result is bit-identical
  // to the oracle at exactly one committed version — never a torn mix.
  Rng rng(13);
  constexpr int kVersions = 5;
  std::vector<matrix::Matrix> m_versions;
  for (int v = 0; v < kVersions; ++v) {
    m_versions.push_back(matrix::RandomDense(rng, 96, 80, -1.0, 1.0));
  }
  matrix::Matrix n = matrix::RandomDense(rng, 80, 64, -1.0, 1.0);

  // Single-threaded oracle replay of every query at every version.
  std::vector<std::vector<matrix::Matrix>> expected(kVersions);
  {
    auto ref = api::SessionBuilder()
                   .Put("M", m_versions[0])
                   .Put("N", n)
                   .Threads(1)
                   .Build()
                   .value();
    for (int v = 0; v < kVersions; ++v) {
      if (v > 0) ASSERT_TRUE(ref->Update("M", m_versions[v]).ok());
      for (const char* q : kQueries) {
        auto r = ref->Run(q);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        expected[v].push_back(std::move(*r));
      }
    }
  }

  auto live = api::SessionBuilder()
                  .Put("M", m_versions[0])
                  .Put("N", n)
                  .Threads(4)
                  .Build()
                  .value();
  auto server = Server::Create(live).value();

  constexpr int kClients = 3;
  constexpr int kRounds = 16;
  std::vector<std::vector<RequestHandle>> handles(kClients);
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      auto client = server->Connect("reader" + std::to_string(c));
      for (int r = 0; r < kRounds; ++r) {
        auto submitted = client->Submit(kQueries[(c + r) % 5]);
        // Admission must never trip on writer activity (the queue bound
        // is sized for the readers alone).
        ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
        handles[c].push_back(std::move(*submitted));
        if (r % 4 == 3) (*handles[c].rbegin())->result();  // Mix in waits.
      }
    });
  }
  workers.emplace_back([&] {
    for (int v = 1; v < kVersions; ++v) {
      std::this_thread::sleep_for(milliseconds(3));
      ASSERT_TRUE(server->session().Update("M", m_versions[v]).ok());
    }
  });
  for (std::thread& t : workers) t.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(handles[c].size(), static_cast<size_t>(kRounds));
    for (int r = 0; r < kRounds; ++r) {
      const Result<matrix::Matrix>& got = handles[c][r]->result();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const matrix::Matrix& m = *got;
      bool matched = false;
      for (int v = 0; v < kVersions && !matched; ++v) {
        const matrix::Matrix& want = expected[v][(c + r) % 5];
        if (m.rows() != want.rows() || m.cols() != want.cols()) continue;
        matched = true;
        for (int64_t i = 0; i < m.rows() && matched; ++i) {
          for (int64_t j = 0; j < m.cols() && matched; ++j) {
            if (m.At(i, j) != want.At(i, j)) matched = false;
          }
        }
      }
      EXPECT_TRUE(matched)
          << "client " << c << " round " << r
          << ": result matches no committed version of M";
    }
  }
  EXPECT_EQ(server->session().workspace().PinnedSnapshots(), 0);
  server->Shutdown();
}

TEST(ServerTest, DeadlineAndCancelFireMidMutationChurn) {
  auto server = Server::Create(MakeSession(2)).value();
  auto client = server->Connect("hurried");
  ASSERT_TRUE(client->Run(kHeavy).ok());  // Warm the plan.

  // Writer churns L (the heavy chain's base) while hurried requests race
  // their deadlines and cancellations mid-DAG: every outcome must be a
  // typed error or a clean value, and the substrate must drain to zero
  // pinned snapshots afterwards.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng wrng(29);
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(
          server->session()
              .Update("L", matrix::RandomDense(wrng, 400, 400, -0.1, 0.1))
              .ok());
      std::this_thread::sleep_for(milliseconds(2));
    }
  });

  RequestOptions hurried;
  hurried.deadline = milliseconds(25);
  int deadline_hits = 0;
  for (int i = 0; i < 3; ++i) {
    const Result<matrix::Matrix>& out = client->Run(kHeavy, hurried);
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
      ++deadline_hits;
    }
  }
  EXPECT_GE(deadline_hits, 1);

  for (int i = 0; i < 3; ++i) {
    auto submitted = client->Submit(kHeavy);
    ASSERT_TRUE(submitted.ok());
    (*submitted)->Cancel();
    const Result<matrix::Matrix>& out = (*submitted)->result();
    if (!out.ok()) {
      EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  // Aborted mid-DAG runs released their snapshots; serving continues.
  EXPECT_EQ(server->session().workspace().PinnedSnapshots(), 0);
  for (const char* q : kQueries) {
    EXPECT_TRUE(client->Run(q).ok()) << q;
  }
  server->Shutdown();
}

// ---------------------------------------------------------------------------
// C API
// ---------------------------------------------------------------------------

TEST(CApiTest, RoundTrip) {
  hadad_server* srv = hadad_server_open(/*threads=*/2, /*max_in_flight=*/2,
                                        /*max_queue=*/16);
  ASSERT_NE(srv, nullptr) << hadad_last_error();

  const double m[6] = {1, 2, 3, 4, 5, 6};     // 2x3 row-major
  const double n[6] = {7, 8, 9, 10, 11, 12};  // 3x2 row-major
  ASSERT_EQ(hadad_register_matrix(srv, "M", m, 2, 3), HADAD_OK)
      << hadad_last_error();
  ASSERT_EQ(hadad_register_matrix(srv, "N", n, 3, 2), HADAD_OK);

  hadad_request* req = hadad_submit(srv, "c-client", "M %*% N",
                                    /*deadline_ms=*/0);
  ASSERT_NE(req, nullptr) << hadad_last_error();
  ASSERT_EQ(hadad_request_wait(req), HADAD_OK) << hadad_last_error();
  EXPECT_EQ(hadad_request_done(req), 1);

  int64_t rows = 0, cols = 0;
  ASSERT_EQ(hadad_result_dims(req, &rows, &cols), HADAD_OK);
  EXPECT_EQ(rows, 2);
  EXPECT_EQ(cols, 2);
  double out[4] = {0, 0, 0, 0};
  ASSERT_EQ(hadad_result_copy(req, out, 4), HADAD_OK);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154].
  EXPECT_EQ(out[0], 58.0);
  EXPECT_EQ(out[1], 64.0);
  EXPECT_EQ(out[2], 139.0);
  EXPECT_EQ(out[3], 154.0);
  // Undersized buffer is refused, not overrun.
  EXPECT_EQ(hadad_result_copy(req, out, 3), HADAD_ERR_INVALID);
  hadad_request_free(req);

  // Typed errors surface through the C enum: unknown matrix name.
  hadad_request* missing = hadad_submit(srv, "c-client", "NOPE %*% M", 0);
  ASSERT_NE(missing, nullptr) << hadad_last_error();
  EXPECT_EQ(hadad_request_wait(missing), HADAD_ERR_NOT_FOUND);
  EXPECT_NE(std::string(hadad_last_error()).find("NOPE"), std::string::npos);
  hadad_request_free(missing);

  char* metrics = hadad_metrics(srv);
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(std::string(metrics).find("hadad_server_requests_total"),
            std::string::npos);
  hadad_string_free(metrics);

  char* trace = hadad_trace_json(srv);
  ASSERT_NE(trace, nullptr);
  EXPECT_NE(std::string(trace).find("traceEvents"), std::string::npos);
  hadad_string_free(trace);

  hadad_server_close(srv);
}

TEST(CApiTest, NullAndErrorPaths) {
  EXPECT_EQ(hadad_register_matrix(nullptr, "M", nullptr, 0, 0),
            HADAD_ERR_INVALID);
  EXPECT_EQ(hadad_submit(nullptr, "c", "M", 0), nullptr);
  EXPECT_EQ(hadad_request_done(nullptr), 0);
  EXPECT_NE(hadad_last_error(), nullptr);
  hadad_request_free(nullptr);
  hadad_string_free(nullptr);
  hadad_server_close(nullptr);
}

}  // namespace
}  // namespace hadad::server
