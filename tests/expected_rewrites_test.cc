#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "core/data.h"
#include "core/workloads.h"
#include "cost/cost_model.h"
#include "engine/evaluator.h"
#include "engine/view_catalog.h"
#include "la/parser.h"
#include "pacb/optimizer.h"

namespace hadad::core {
namespace {

// Shrunken bindings so all 57 optimizations + executions stay fast.
LaBenchConfig TestConfig() {
  LaBenchConfig config;
  config.n_a = 1500;
  config.n_m = 300;
  config.k = 40;
  config.n_c = 64;
  config.n_r = 40;
  config.x_rows = 400;
  config.x_cols = 250;
  return config;
}

class LaBenchmarkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2024);
    workspace_ = new engine::Workspace(MakeLaBenchWorkspace(rng, TestConfig()));
    optimizer_ = new pacb::Optimizer(workspace_->BuildMetaCatalog());
    optimizer_->SetData(&workspace_->data());
  }
  static void TearDownTestSuite() {
    delete optimizer_;
    delete workspace_;
    optimizer_ = nullptr;
    workspace_ = nullptr;
  }

  static engine::Workspace* workspace_;
  static pacb::Optimizer* optimizer_;
};

engine::Workspace* LaBenchmarkTest::workspace_ = nullptr;
pacb::Optimizer* LaBenchmarkTest::optimizer_ = nullptr;

TEST_F(LaBenchmarkTest, BenchmarkHasAll57Pipelines) {
  EXPECT_EQ(LaBenchmark().size(), 57u);
  int not_opt = 0;
  for (const Pipeline& p : LaBenchmark()) {
    if (p.cls == PipelineClass::kNotOpt) ++not_opt;
  }
  EXPECT_EQ(not_opt, 38);  // §9.1's P¬Opt count.
  EXPECT_NE(FindPipeline("P2.21"), nullptr);
  EXPECT_EQ(FindPipeline("P9.99"), nullptr);
}

TEST_F(LaBenchmarkTest, AllPipelinesParseAndTypeCheck) {
  la::MetaCatalog catalog = workspace_->BuildMetaCatalog();
  for (const Pipeline& p : LaBenchmark()) {
    auto expr = la::ParseExpression(p.text);
    ASSERT_TRUE(expr.ok()) << p.id << ": " << p.text;
    EXPECT_TRUE(la::InferShape(**expr, catalog).ok()) << p.id;
    if (!p.expected_rewrite.empty()) {
      auto rw = la::ParseExpression(p.expected_rewrite);
      ASSERT_TRUE(rw.ok()) << p.id << " rewrite";
      EXPECT_TRUE(la::InferShape(**rw, catalog).ok()) << p.id << " rewrite";
    }
  }
}

// Tables 12/13: on every P¬Opt pipeline HADAD's rewriting must be at least
// as cheap as the rewriting the paper reports, and semantically equal to
// the original on real data.
TEST_F(LaBenchmarkTest, NotOptPipelinesMatchOrBeatPaperRewrites) {
  cost::NaiveMetadataEstimator estimator;
  la::MetaCatalog catalog = workspace_->BuildMetaCatalog();
  for (const Pipeline& p : LaBenchmark()) {
    if (p.cls != PipelineClass::kNotOpt) continue;
    auto r = optimizer_->OptimizeText(p.text);
    ASSERT_TRUE(r.ok()) << p.id << ": " << r.status().ToString();
    EXPECT_TRUE(r->improved) << p.id << " found no rewriting";
    if (!p.expected_rewrite.empty()) {
      auto expected = la::ParseExpression(p.expected_rewrite).value();
      auto expected_cost = cost::EstimateExpression(
          *expected, catalog, estimator, &workspace_->data());
      ASSERT_TRUE(expected_cost.ok()) << p.id;
      EXPECT_LE(r->best_cost, expected_cost->cost * 1.0001 + 1.0)
          << p.id << ": best " << la::ToString(r->best) << " vs paper "
          << p.expected_rewrite;
    }
    // Semantics: original and rewriting agree on the actual matrices.
    auto original_value = engine::Execute(
        *la::ParseExpression(p.text).value(), *workspace_);
    ASSERT_TRUE(original_value.ok()) << p.id;
    auto rewrite_value = engine::Execute(*r->best, *workspace_);
    ASSERT_TRUE(rewrite_value.ok())
        << p.id << " -> " << la::ToString(r->best);
    EXPECT_TRUE(original_value->ApproxEquals(*rewrite_value, 1e-5))
        << p.id << " -> " << la::ToString(r->best);
  }
}

// P_Opt pipelines are already optimal: HADAD must not make them worse, and
// its result must stay semantically equal.
TEST_F(LaBenchmarkTest, OptPipelinesNeverRegress) {
  for (const Pipeline& p : LaBenchmark()) {
    if (p.cls != PipelineClass::kOpt) continue;
    auto r = optimizer_->OptimizeText(p.text);
    ASSERT_TRUE(r.ok()) << p.id << ": " << r.status().ToString();
    EXPECT_LE(r->best_cost, r->original_cost + 1e-6) << p.id;
    auto original_value = engine::Execute(
        *la::ParseExpression(p.text).value(), *workspace_);
    ASSERT_TRUE(original_value.ok()) << p.id;
    auto rewrite_value = engine::Execute(*r->best, *workspace_);
    ASSERT_TRUE(rewrite_value.ok())
        << p.id << " -> " << la::ToString(r->best);
    EXPECT_TRUE(original_value->ApproxEquals(*rewrite_value, 1e-5))
        << p.id << " -> " << la::ToString(r->best);
  }
}

// Table 15: with V_exp materialized, HADAD's rewriting must be at least as
// cheap as the paper's views-based rewriting, and evaluate to the same
// value through the materialized views.
TEST(VexpViewsTest, Table15RewritesMatchedOrBeaten) {
  Rng rng(77);
  engine::Workspace workspace = MakeLaBenchWorkspace(rng, TestConfig());
  engine::ViewCatalog views(&workspace);
  for (const ViewSpec& v : VexpViews()) {
    ASSERT_TRUE(views.MaterializeText(v.name, v.definition).ok()) << v.name;
  }
  la::MetaCatalog base_catalog = workspace.BuildMetaCatalog();
  for (const ViewSpec& v : VexpViews()) base_catalog.erase(v.name);
  pacb::Optimizer optimizer(base_catalog);
  optimizer.SetData(&workspace.data());
  for (const ViewSpec& v : VexpViews()) {
    ASSERT_TRUE(optimizer.AddViewText(v.name, v.definition).ok()) << v.name;
  }
  cost::NaiveMetadataEstimator estimator;
  int views_used = 0;
  for (const ViewRewrite& vr : Table15Rewrites()) {
    const Pipeline* p = FindPipeline(vr.pipeline_id);
    ASSERT_NE(p, nullptr) << vr.pipeline_id;
    auto r = optimizer.OptimizeText(p->text);
    ASSERT_TRUE(r.ok()) << p->id << ": " << r.status().ToString();
    auto expected = la::ParseExpression(vr.rewrite);
    ASSERT_TRUE(expected.ok()) << p->id;
    auto expected_cost = cost::EstimateExpression(
        **expected, optimizer.catalog(), estimator, &workspace.data());
    ASSERT_TRUE(expected_cost.ok()) << p->id << ": " << vr.rewrite;
    EXPECT_LE(r->best_cost, expected_cost->cost * 1.0001 + 1.0)
        << p->id << ": best " << la::ToString(r->best) << " vs paper "
        << vr.rewrite;
    if (la::ToString(r->best).find('V') != std::string::npos) ++views_used;
    // Execute through the materialized views.
    auto original_value = engine::Execute(
        *la::ParseExpression(p->text).value(), workspace);
    auto rewrite_value = engine::Execute(*r->best, workspace);
    ASSERT_TRUE(rewrite_value.ok())
        << p->id << " -> " << la::ToString(r->best);
    EXPECT_TRUE(original_value->ApproxEquals(*rewrite_value, 1e-4))
        << p->id << " -> " << la::ToString(r->best);
  }
  // Most Table 15 pipelines should actually reach a view.
  EXPECT_GE(views_used, static_cast<int>(Table15Rewrites().size() / 2));
}

}  // namespace
}  // namespace hadad::core
