#include "morpheus/engine.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "la/parser.h"
#include "matrix/generate.h"
#include "morpheus/generator.h"

namespace hadad::morpheus {
namespace {

la::ExprPtr Parse(const std::string& s) {
  auto r = la::ParseExpression(s);
  HADAD_CHECK_MSG(r.ok(), s.c_str());
  return r.value();
}

NormalizedMatrix SmallNm(uint64_t seed = 3) {
  Rng rng(seed);
  PkFkConfig config;
  config.n_r = 40;
  config.d_s = 5;
  config.tuple_ratio = 4.0;   // nS = 160.
  config.feature_ratio = 2.0; // dR = 10.
  return GeneratePkFk(rng, config);
}

TEST(NormalizedMatrixTest, ShapeAndMaterialization) {
  NormalizedMatrix nm = SmallNm();
  EXPECT_EQ(nm.rows(), 160);
  EXPECT_EQ(nm.cols(), 15);
  auto m = nm.Materialize();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 160);
  EXPECT_EQ(m->cols(), 15);
  // Every K row has exactly one 1 (PK-FK).
  matrix::Matrix rs = matrix::RowSums(nm.k());
  for (int64_t i = 0; i < rs.rows(); ++i) {
    EXPECT_DOUBLE_EQ(rs.At(i, 0), 1.0);
  }
}

TEST(NormalizedMatrixTest, FactorizedOpsMatchMaterialized) {
  NormalizedMatrix nm = SmallNm();
  matrix::Matrix m = nm.Materialize().value();
  Rng rng(9);
  // Right multiply.
  matrix::Matrix n = matrix::RandomDense(rng, nm.cols(), 7);
  EXPECT_TRUE(nm.RightMultiply(n)->ApproxEquals(
      matrix::Multiply(m, n).value(), 1e-9));
  // Left multiply.
  matrix::Matrix c = matrix::RandomDense(rng, 6, nm.rows());
  EXPECT_TRUE(nm.LeftMultiply(c)->ApproxEquals(
      matrix::Multiply(c, m).value(), 1e-9));
  // Aggregates.
  EXPECT_TRUE(nm.ColSums()->ApproxEquals(matrix::ColSums(m), 1e-9));
  EXPECT_TRUE(nm.RowSums()->ApproxEquals(matrix::RowSums(m), 1e-9));
  EXPECT_NEAR(nm.Sum().value(), matrix::Sum(m), 1e-7);
}

TEST(NormalizedMatrixTest, DimensionErrors) {
  NormalizedMatrix nm = SmallNm();
  Rng rng(1);
  matrix::Matrix bad = matrix::RandomDense(rng, nm.cols() + 1, 3);
  EXPECT_FALSE(nm.RightMultiply(bad).ok());
  EXPECT_FALSE(nm.LeftMultiply(bad).ok());
}

class MorpheusEngineTest : public ::testing::Test {
 protected:
  MorpheusEngineTest() : engine_(&workspace_) {
    nm_ = std::make_unique<NormalizedMatrix>(SmallNm());
    m_ = nm_->Materialize().value();
    engine_.Register("M", *nm_);
    Rng rng(21);
    workspace_.Put("N", matrix::RandomDense(rng, 15, 9));
    workspace_.Put("X", matrix::RandomDense(rng, 9, 160));
    workspace_.Put("plainM", m_);
  }

  engine::Workspace workspace_;
  MorpheusEngine engine_;
  std::unique_ptr<NormalizedMatrix> nm_;
  matrix::Matrix m_;
};

TEST_F(MorpheusEngineTest, PushdownPatternsMatchPlainEvaluation) {
  struct Case {
    const char* morpheus_text;  // Over normalized "M".
    const char* plain_text;     // Over materialized "plainM".
  };
  const Case cases[] = {
      {"colSums(M)", "colSums(plainM)"},
      {"rowSums(M)", "rowSums(plainM)"},
      {"sum(M)", "sum(plainM)"},
      {"M %*% N", "plainM %*% N"},
      {"X %*% M", "X %*% plainM"},
      {"colSums(t(M))", "colSums(t(plainM))"},
      {"rowSums(t(M))", "rowSums(t(plainM))"},
      {"sum(t(M))", "sum(t(plainM))"},
      {"t(M) %*% t(X)", "t(plainM) %*% t(X)"},
      {"colSums(M %*% N)", "colSums(plainM %*% N)"},
      {"sum(rowSums(M))", "sum(rowSums(plainM))"},
      {"sum(M %*% N + M %*% N)", "sum(plainM %*% N + plainM %*% N)"},
  };
  for (const Case& c : cases) {
    auto factorized = engine_.Run(Parse(c.morpheus_text));
    ASSERT_TRUE(factorized.ok()) << c.morpheus_text;
    auto plain = engine::Execute(*Parse(c.plain_text), workspace_);
    ASSERT_TRUE(plain.ok()) << c.plain_text;
    EXPECT_TRUE(factorized->ApproxEquals(*plain, 1e-8)) << c.morpheus_text;
  }
}

TEST_F(MorpheusEngineTest, FactorizedAggregateAvoidsMaterialization) {
  // colSums(M) factorized touches only T, K, U — the intermediate stats
  // must be far below materializing M (160x15).
  engine::ExecStats factorized_stats;
  ASSERT_TRUE(engine_.Run(Parse("colSums(M)"), &factorized_stats).ok());
  engine::ExecStats materialized_stats;
  ASSERT_TRUE(engine::Execute(*Parse("colSums(plainM)"), workspace_,
                              &materialized_stats)
                  .ok());
  // The plain path scans the materialized matrix but creates no
  // intermediates; what matters is the factorized path stays small too.
  EXPECT_LT(factorized_stats.intermediate_nnz, 100.0);
}

TEST_F(MorpheusEngineTest, ElementwiseOpsMaterialize) {
  // Morpheus does not factorize element-wise operations (P2.11): N + M
  // materializes M. The value must still be correct.
  Rng rng(33);
  workspace_.Put("E", matrix::RandomDense(rng, 160, 15));
  auto out = engine_.Run(Parse("sum(E + M)"));
  ASSERT_TRUE(out.ok());
  auto plain = engine::Execute(*Parse("sum(E + plainM)"), workspace_);
  EXPECT_NEAR(out->ScalarValue(), plain->ScalarValue(), 1e-7);
}

TEST_F(MorpheusEngineTest, HadadRewriteEnablesBetterPushdown) {
  // The §2 example: colSums(M N) runs the factorized multiply first
  // (intermediate nS x 9), while HADAD's rewriting colSums(M) N enables the
  // colSums pushdown (intermediate 1 x 15): far smaller intermediates, same
  // value.
  engine::ExecStats original_stats;
  auto original = engine_.Run(Parse("colSums(M %*% N)"), &original_stats);
  ASSERT_TRUE(original.ok());
  engine::ExecStats rewrite_stats;
  auto rewrite = engine_.Run(Parse("colSums(M) %*% N"), &rewrite_stats);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_TRUE(original->ApproxEquals(*rewrite, 1e-8));
  EXPECT_LT(rewrite_stats.intermediate_nnz,
            original_stats.intermediate_nnz / 10);
}

TEST(GeneratorTest, RespectsRatios) {
  Rng rng(7);
  PkFkConfig config;
  config.n_r = 100;
  config.d_s = 4;
  config.tuple_ratio = 3.0;
  config.feature_ratio = 5.0;
  NormalizedMatrix nm = GeneratePkFk(rng, config);
  EXPECT_EQ(nm.rows(), 300);
  EXPECT_EQ(nm.t().cols(), 4);
  EXPECT_EQ(nm.u().cols(), 20);
  EXPECT_EQ(nm.k().cols(), 100);
  EXPECT_TRUE(nm.k().is_sparse());
}

}  // namespace
}  // namespace hadad::morpheus
