// Expected to FAIL -Werror=thread-safety: writes a guarded member while
// holding only the shared (reader) side of the SharedMutex. See README.md.
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Registry {
 public:
  void Bump() {
    hadad::common::ReaderMutexLock lock(&state_mu_);
    ++generation_;  // BUG: writing under a shared hold.
  }

 private:
  hadad::common::SharedMutex state_mu_;
  int64_t generation_ HADAD_GUARDED_BY(state_mu_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.Bump();
  return 0;
}
