// Expected to FAIL -Werror=thread-safety: calls a HADAD_REQUIRES method
// without holding the required mutex. See README.md in this directory.
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Ledger {
 public:
  void Deposit(int64_t amount) {
    ApplyLocked(amount);  // BUG: caller must hold mu_ but does not.
  }

 private:
  void ApplyLocked(int64_t amount) HADAD_REQUIRES(mu_) { balance_ += amount; }

  hadad::common::Mutex mu_;
  int64_t balance_ HADAD_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger l;
  l.Deposit(1);
  return 0;
}
