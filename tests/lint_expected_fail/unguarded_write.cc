// Expected to FAIL -Werror=thread-safety: writes a guarded member with no
// lock held. See README.md in this directory.
#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // BUG: count_mu_ not held.
  }

 private:
  hadad::common::Mutex count_mu_;
  int64_t value_ HADAD_GUARDED_BY(count_mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return 0;
}
